// Electrodynamic transducer (Fig. 2d) as a miniature loudspeaker driver:
// a voice coil in a radial magnet field driving a diaphragm (mass +
// suspension spring + acoustic damping). Demonstrates
//   * the AC analysis: electrical impedance showing the motional resonance,
//   * the transient analysis: tone-burst response,
// on the same model — "dc, ac and transient SPICE analysis domains".
#include <cmath>
#include <iostream>

#include "api/api.hpp"
#include "common/constants.hpp"
#include "common/table.hpp"
#include "core/transducers.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;

namespace {

struct Speaker {
  spice::Circuit ckt;
  int amp = -1;
  int coil = -1;
  int cone = -1;
  spice::VSource* src = nullptr;
};

/// 8-ohm micro-speaker-ish parameters.
void build(Speaker& s, std::unique_ptr<spice::Waveform> wave, double ac_mag) {
  core::TransducerGeometry g;
  g.turns = 40;
  g.radius = 8e-3;
  g.b_field = 0.9;
  s.amp = s.ckt.add_node("amp", Nature::electrical);
  s.coil = s.ckt.add_node("coil", Nature::electrical);
  s.cone = s.ckt.add_node("cone", Nature::mechanical_translation);
  s.src = &s.ckt.add<spice::VSource>("Vamp", s.amp, spice::Circuit::kGround,
                                     std::move(wave), Nature::electrical, ac_mag, 0.0);
  s.ckt.add<spice::Resistor>("Rdc", s.amp, s.coil, 8.0);  // coil resistance
  s.ckt.add<core::ElectrodynamicTransducer>("Xvc", s.coil, spice::Circuit::kGround,
                                            s.cone, spice::Circuit::kGround, g);
  s.ckt.add<spice::Mass>("Mms", s.cone, 1.5e-3);                        // moving mass
  s.ckt.add<spice::Spring>("Kms", s.cone, spice::Circuit::kGround, 800.0);  // suspension
  s.ckt.add<spice::Damper>("Rms", s.cone, spice::Circuit::kGround, 0.35);   // losses
}

}  // namespace

int main() {
  std::cout << "=== electrodynamic voice-coil speaker (Fig. 2d transducer) ===\n\n";
  const double f0 = std::sqrt(800.0 / 1.5e-3) / (2.0 * kPi);
  std::cout << "mechanical resonance f0 ~ " << fmt_num(f0, 4) << " Hz\n\n";

  // --- AC: electrical input impedance |v/i| over frequency ------------------
  Speaker ac;
  build(ac, std::make_unique<spice::DcWave>(0.0), 1.0);
  spice::AcOptions aco;
  aco.f_start = 10.0;
  aco.f_stop = 2e3;
  aco.points = 12;
  const auto acr = api::ac_sweep(ac.ckt, aco);
  if (!acr.ok) {
    std::cerr << "ac failed: " << acr.error << "\n";
    return 1;
  }
  AsciiTable t({"f [Hz]", "|Z_in| [ohm]", "cone |v| [mm/s per V]"});
  for (std::size_t k = 0; k < acr.freq.size(); k += 6) {
    const auto i_src = acr.at(k, ac.src->branch());
    const double z = 1.0 / std::abs(i_src);  // 1 V AC drive
    t.add_row({fmt_num(acr.freq[k], 4), fmt_num(z, 4),
               fmt_num(std::abs(acr.at(k, ac.cone)) * 1e3, 4)});
  }
  t.print(std::cout);
  std::cout << "(the impedance peaks at the motional resonance — the classic\n"
               " loudspeaker signature produced by the back-EMF term T*u)\n\n";

  // --- transient: 300 Hz tone burst ------------------------------------------
  Speaker tr;
  build(tr, std::make_unique<spice::SinWave>(0.0, 2.0, 300.0), 0.0);
  spice::TranOptions topt;
  topt.tstop = 20e-3;
  topt.dt_max = 2e-5;
  const auto trr = api::transient(tr.ckt, topt);
  if (!trr.ok) {
    std::cerr << "transient failed: " << trr.error << "\n";
    return 1;
  }
  AsciiTable b({"t [ms]", "v_amp [V]", "cone velocity [mm/s]"});
  for (double time = 0.0; time <= 20e-3; time += 2e-3) {
    b.add_row({fmt_num(time * 1e3), fmt_num(trr.sample(time, tr.amp), 4),
               fmt_num(trr.sample(time, tr.cone) * 1e3, 4)});
  }
  b.print(std::cout);
  return 0;
}
