#include "core/netlist_ext.hpp"

#include <cmath>

#include "core/linearized.hpp"
#include "core/transducers.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/devices_passive.hpp"

namespace usys::core {

using spice::NetlistError;
using spice::param_or;
using spice::require_param;
using spice::sparam_or;
using spice::XDeviceArgs;

namespace {

struct Pins {
  int ea, eb, mc, md;
};

Pins transducer_pins(XDeviceArgs& a) {
  if (a.pins.size() != 4)
    throw NetlistError(a.line, "transducer takes 4 pins: e+ e- mech_free mech_ref");
  return {a.node(a.pins[0], Nature::electrical), a.node(a.pins[1], Nature::electrical),
          a.node(a.pins[2], Nature::mechanical_translation),
          a.node(a.pins[3], Nature::mechanical_translation)};
}

/// Execution mode for an HDL card: per-card `mode=` wins, then the
/// `.options hdl=` in effect, then the bytecode default.
hdl::HdlExecMode hdl_mode(const XDeviceArgs& a) {
  const std::string text = sparam_or(a, "mode", sparam_or(a, "hdl", "bytecode"));
  hdl::HdlExecMode mode{};
  if (!hdl::parse_exec_mode(text, mode))
    throw NetlistError(a.line, "device '" + a.name + "': bad HDL exec mode '" + text +
                           "' (ast|bytecode|codegen)");
  return mode;
}

/// Registers one 4-pin HDL-AT stdlib transducer card. `generic_of_param`
/// maps lowercase card keys to the model's generic names; keys absent from
/// the card fall back to the entity's declared defaults.
void register_hdl_card(spice::NetlistParser& parser, const std::string& type,
                       std::string (*source)(), const char* entity,
                       std::vector<std::pair<std::string, std::string>> generic_of_param) {
  parser.register_xdevice(
      type, [source, entity, generic_of_param = std::move(generic_of_param)](
                XDeviceArgs& a) {
        const Pins p = transducer_pins(a);
        std::map<std::string, double> generics;
        for (const auto& [param, generic] : generic_of_param) {
          if (const auto it = a.params.find(param); it != a.params.end())
            generics[generic] = it->second;
        }
        a.circuit->add_device(hdl::instantiate(a.name, source(), entity, generics,
                                               {p.ea, p.eb, p.mc, p.md}, hdl_mode(a)));
      });
}

}  // namespace

void register_transducer_devices(spice::NetlistParser& parser) {
  // `.options hdl=<mode>` selects the executor for HDL cards that follow;
  // per-card `mode=<mode>` overrides. Values validated at parse time; the
  // card-level key must be registered so its value bypasses the strict
  // numeric parameter contract.
  parser.register_string_option("hdl", [](const std::string& v) {
    hdl::HdlExecMode m{};
    return hdl::parse_exec_mode(v, m);
  });
  parser.register_string_param("mode");

  // HDL-AT stdlib transducers, executed by the HDL engine (interpreted /
  // bytecode / native codegen) rather than the hand-written C++ devices —
  // the netlist-level handle on the paper's central trade-off.
  register_hdl_card(parser, "HDLTRANSV", &hdl::stdlib::paper_listing1, "eletran",
                    {{"a", "A"}, {"d", "d"}, {"er", "er"}});
  register_hdl_card(parser, "HDLTRANSE", &hdl::stdlib::transverse_energy, "etransverse",
                    {{"a", "A"}, {"d", "d"}, {"er", "er"}});
  register_hdl_card(parser, "HDLTRANSP", &hdl::stdlib::parallel_electrostatic,
                    "eparallel", {{"h", "h"}, {"l", "l"}, {"d", "d"}, {"er", "er"}});
  register_hdl_card(parser, "HDLMAG", &hdl::stdlib::electromagnetic, "emagnetic",
                    {{"a", "A"}, {"d", "d"}, {"n", "N"}});
  register_hdl_card(parser, "HDLDYN", &hdl::stdlib::electrodynamic, "edynamic",
                    {{"n", "N"}, {"r", "r"}, {"b", "B"}});

  parser.register_xdevice("ETRANSV", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    TransducerGeometry g;
    g.area = require_param(a, "a");
    g.gap = require_param(a, "d");
    g.eps_r = param_or(a, "er", 1.0);
    auto& dev = a.circuit->add<TransverseElectrostatic>(a.name, p.ea, p.eb, p.mc, p.md, g);
    dev.set_initial_displacement(param_or(a, "x0", 0.0));
  });

  parser.register_xdevice("ETRANSP", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    TransducerGeometry g;
    g.depth = require_param(a, "h");
    g.length = require_param(a, "l");
    g.gap = require_param(a, "d");
    g.eps_r = param_or(a, "er", 1.0);
    auto& dev = a.circuit->add<ParallelElectrostatic>(a.name, p.ea, p.eb, p.mc, p.md, g);
    dev.set_initial_displacement(param_or(a, "x0", 0.0));
  });

  parser.register_xdevice("EMAG", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    TransducerGeometry g;
    g.area = require_param(a, "a");
    g.gap = require_param(a, "d");
    g.turns = static_cast<int>(require_param(a, "n"));
    auto& dev =
        a.circuit->add<ElectromagneticTransducer>(a.name, p.ea, p.eb, p.mc, p.md, g);
    dev.set_initial_displacement(param_or(a, "x0", 0.0));
  });

  parser.register_xdevice("EDYN", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    TransducerGeometry g;
    g.turns = static_cast<int>(require_param(a, "n"));
    g.radius = require_param(a, "r");
    g.b_field = require_param(a, "b");
    a.circuit->add<ElectrodynamicTransducer>(a.name, p.ea, p.eb, p.mc, p.md, g);
  });

  parser.register_xdevice("TRANSARRAY", [](XDeviceArgs& a) {
    if (a.pins.size() != 2)
      throw NetlistError(a.line, "TRANSARRAY takes 2 pins: e+ e- (shared bus)");
    const double nv = require_param(a, "n");
    const int count = static_cast<int>(nv);
    if (nv != count || count < 1 || count > 10'000'000)
      throw NetlistError(a.line, "TRANSARRAY n must be an integer in [1, 1e7]");
    const int ea = a.node(a.pins[0], Nature::electrical);
    const int eb = a.node(a.pins[1], Nature::electrical);
    TransducerGeometry g;
    g.area = require_param(a, "a");
    g.gap = require_param(a, "d");
    g.eps_r = param_or(a, "er", 1.0);
    const double mass = require_param(a, "m");
    const double stiffness = require_param(a, "k");
    const double alpha = param_or(a, "alpha", 0.0);
    const double dspread = param_or(a, "dspread", 0.0);
    if (!(std::abs(dspread) < 1.0))
      throw NetlistError(a.line,
                         "TRANSARRAY dspread must satisfy |dspread| < 1 (the gap "
                         "gradient must keep every element's gap positive)");
    const double x0 = param_or(a, "x0", 0.0);
    const double base_gap = g.gap;
    for (int i = 0; i < count; ++i) {
      const std::string tag = a.name + "_" + std::to_string(i);
      const int mech =
          a.node(a.name + "_v" + std::to_string(i), Nature::mechanical_translation);
      // Linear fabrication gradient: gap varies by +-dspread across the array.
      const double lever = count > 1 ? 2.0 * i / (count - 1) - 1.0 : 0.0;
      g.gap = base_gap * (1.0 + dspread * lever);
      auto& dev = a.circuit->add<TransverseElectrostatic>(tag + "_xd", ea, eb, mech,
                                                          spice::Circuit::kGround, g);
      dev.set_initial_displacement(x0);
      a.circuit->add<spice::Mass>(tag + "_m", mech, mass);
      a.circuit->add<spice::Spring>(tag + "_k", mech, spice::Circuit::kGround, stiffness);
      if (alpha > 0.0)
        a.circuit->add<spice::Damper>(tag + "_b", mech, spice::Circuit::kGround, alpha);
    }
  });

  parser.register_xdevice("LINTRANSV", [](XDeviceArgs& a) {
    const Pins p = transducer_pins(a);
    ResonatorParams rp;
    rp.geom.area = require_param(a, "a");
    rp.geom.gap = require_param(a, "d");
    rp.geom.eps_r = param_or(a, "er", 1.0);
    rp.v_bias = require_param(a, "v0");
    rp.mass = require_param(a, "m");
    rp.stiffness = require_param(a, "k");
    rp.damping = param_or(a, "alpha", 40e-3);
    LinearizationOptions lo;
    lo.gamma = param_or(a, "secant", 1.0) != 0.0 ? GammaKind::secant : GammaKind::tangent;
    lo.include_spring_softening = param_or(a, "soften", 0.0) != 0.0;
    a.circuit->add<LinearizedTransverseElectrostatic>(a.name, p.ea, p.eb, p.mc, p.md,
                                                      linearize_transverse(rp, lo));
  });
}

spice::NetlistParser make_full_parser() {
  spice::NetlistParser parser;
  register_transducer_devices(parser);
  return parser;
}

}  // namespace usys::core
