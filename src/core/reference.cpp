#include "core/reference.hpp"

#include <cmath>
#include <stdexcept>

namespace usys::core {

double capacitance_transverse(const TransducerGeometry& g, double x) {
  return g.eps0 * g.eps_r * g.area / (g.gap + x);
}

double capacitance_parallel(const TransducerGeometry& g, double x) {
  return g.eps0 * g.eps_r * g.depth * (g.length - x) / g.gap;
}

double inductance_electromagnetic(const TransducerGeometry& g, double x) {
  const double n = static_cast<double>(g.turns);
  return g.mu0 * g.area * n * n / (2.0 * (g.gap + x));
}

double inductance_electrodynamic(const TransducerGeometry& g) {
  const double n = static_cast<double>(g.turns);
  return g.mu0 * n * n * g.radius / 2.0;
}

double energy_transverse(const TransducerGeometry& g, double v, double x) {
  return 0.5 * capacitance_transverse(g, x) * v * v;
}

double energy_parallel(const TransducerGeometry& g, double v, double x) {
  return 0.5 * capacitance_parallel(g, x) * v * v;
}

double energy_electromagnetic(const TransducerGeometry& g, double i, double x) {
  return 0.5 * inductance_electromagnetic(g, x) * i * i;
}

double energy_electrodynamic(const TransducerGeometry& g, double i) {
  return 0.5 * inductance_electrodynamic(g) * i * i;
}

double force_transverse(const TransducerGeometry& g, double v, double x) {
  const double gap = g.gap + x;
  return -g.eps0 * g.eps_r * g.area * v * v / (2.0 * gap * gap);
}

double force_parallel(const TransducerGeometry& g, double v) {
  return -g.eps0 * g.eps_r * g.depth * v * v / (2.0 * g.gap);
}

double force_electromagnetic(const TransducerGeometry& g, double i, double x) {
  const double n = static_cast<double>(g.turns);
  const double gap = g.gap + x;
  return -g.mu0 * g.area * n * n * i * i / (4.0 * gap * gap);
}

double transduction_electrodynamic(const TransducerGeometry& g) {
  return 2.0 * kPi * static_cast<double>(g.turns) * g.radius * g.b_field;
}

double force_electrodynamic(const TransducerGeometry& g, double i) {
  return transduction_electrodynamic(g) * i;
}

double static_displacement_transverse(const ResonatorParams& p, double v) {
  // Solve k*x = F(v, x) = -eps*A*v^2 / (2 (d+x)^2) by Newton on
  // r(x) = k*x + eps*A*v^2/(2 (d+x)^2); starts at x = 0.
  const double c = p.geom.eps0 * p.geom.eps_r * p.geom.area * v * v / 2.0;
  double x = 0.0;
  for (int it = 0; it < 100; ++it) {
    const double gap = p.geom.gap + x;
    if (gap <= 0.0) throw std::domain_error("static displacement: pull-in (gap collapsed)");
    const double r = p.stiffness * x + c / (gap * gap);
    const double dr = p.stiffness - 2.0 * c / (gap * gap * gap);
    const double dx = -r / dr;
    x += dx;
    if (std::abs(dx) < 1e-18 + 1e-12 * std::abs(x)) return x;
  }
  return x;
}

double bias_capacitance(const ResonatorParams& p) {
  const double x0 = static_displacement_transverse(p, p.v_bias);
  return capacitance_transverse(p.geom, x0);
}

double gamma_tangent(const ResonatorParams& p) {
  const double x0 = static_displacement_transverse(p, p.v_bias);
  const double gap = p.geom.gap + x0;
  return p.geom.eps0 * p.geom.eps_r * p.geom.area * p.v_bias / (gap * gap);
}

double gamma_secant(const ResonatorParams& p) {
  const double x0 = static_displacement_transverse(p, p.v_bias);
  return std::abs(force_transverse(p.geom, p.v_bias, x0)) / p.v_bias;
}

double omega0(const ResonatorParams& p) { return std::sqrt(p.stiffness / p.mass); }

double damping_ratio(const ResonatorParams& p) {
  return p.damping / (2.0 * std::sqrt(p.stiffness * p.mass));
}

double pull_in_voltage(const ResonatorParams& p) {
  const double d3 = p.geom.gap * p.geom.gap * p.geom.gap;
  return std::sqrt(8.0 * p.stiffness * d3 /
                   (27.0 * p.geom.eps0 * p.geom.eps_r * p.geom.area));
}

double pull_in_displacement(const ResonatorParams& p) { return -p.geom.gap / 3.0; }

}  // namespace usys::core
