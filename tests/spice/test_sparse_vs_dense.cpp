// Integration regression: DC, transient, and AC results must be identical
// (to tight relative tolerance) between the dense and the sparse
// pattern-cached MNA paths, on linear ladders, an RLC tank, the
// electromagnetic relay pull-in circuit, and an interpreted HDL model.
// Also pins the "symbolic factorization at most once per analysis"
// guarantee via the solver stats.
// GCC 12's libstdc++ trips a -Wrestrict false positive (GCC PR105651) on
// short string concatenations in some inlining contexts; no real aliasing
// exists. Scoped to GCC 12 so newer compilers keep the check.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "api/api.hpp"
#include "core/transducers.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_nonlinear.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

using CircuitBuilder = std::function<std::unique_ptr<Circuit>()>;

/// Max relative mismatch between two unknown vectors.
double rel_diff(const DVector& a, const DVector& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

/// Newton options tightened far below the 1e-9 comparison tolerance so both
/// backends converge to (near) machine precision on identical iterates.
NewtonOptions tight_newton(MatrixBackend backend) {
  NewtonOptions o;
  o.reltol = 1e-12;
  o.backend = backend;
  return o;
}

// --- circuits ---------------------------------------------------------------

std::unique_ptr<Circuit> rc_ladder(int sections) {
  auto ckt = std::make_unique<Circuit>();
  int prev = ckt->add_node("in", Nature::electrical);
  ckt->add<VSource>("V1", prev, Circuit::kGround,
                    std::make_unique<PulseWave>(0.0, 1.0, 0.0, 1e-6, 1e-6, 1.0),
                    Nature::electrical, /*ac_mag=*/1.0);
  for (int k = 0; k < sections; ++k) {
    const int node = ckt->add_node("n" + std::to_string(k), Nature::electrical);
    ckt->add<Resistor>("R" + std::to_string(k), prev, node, 1e3);
    ckt->add<Capacitor>("C" + std::to_string(k), node, Circuit::kGround, 1e-9);
    prev = node;
  }
  return ckt;
}

std::unique_ptr<Circuit> rlc_tank() {
  auto ckt = std::make_unique<Circuit>();
  const int in = ckt->add_node("in", Nature::electrical);
  const int mid = ckt->add_node("mid", Nature::electrical);
  ckt->add<VSource>("V1", in, Circuit::kGround,
                    std::make_unique<PulseWave>(0.0, 1.0, 0.0, 1e-7, 1e-7, 1.0),
                    Nature::electrical, /*ac_mag=*/1.0);
  ckt->add<Resistor>("R1", in, mid, 50.0);
  ckt->add<Inductor>("L1", mid, Circuit::kGround, 1e-3);
  ckt->add<Capacitor>("C1", mid, Circuit::kGround, 1e-6);
  ckt->add<Diode>("D1", mid, Circuit::kGround);
  return ckt;
}

/// The relay pull-in circuit of examples/relay_pull_in.cpp, driven below
/// the pull-in threshold (strongly nonlinear but deterministic endpoint).
std::unique_ptr<Circuit> relay(double v_coil) {
  core::TransducerGeometry g;
  g.area = 4e-5;
  g.gap = 0.4e-3;
  g.turns = 600;
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int coil = ckt->add_node("coil", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  const int disp = ckt->add_node("disp", Nature::mechanical_translation);
  ckt->add<VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, v_coil}, {1.0, v_coil}}));
  ckt->add<Resistor>("Rcoil", drive, coil, 60.0);
  ckt->add<core::ElectromagneticTransducer>("Xrel", coil, Circuit::kGround, vel,
                                            Circuit::kGround, g);
  ckt->add<Mass>("Marm", vel, 2e-3);
  ckt->add<Spring>("Karm", vel, Circuit::kGround, 900.0);
  ckt->add<Damper>("Darm", vel, Circuit::kGround, 0.8);
  ckt->add<StateIntegrator>("XD", disp, vel);
  return ckt;
}

/// Interpreted HDL transducer (paper Listing 1) in a resonator, exercising
/// the HdlDevice footprint and the cross-footprint CSR fallback.
std::unique_ptr<Circuit> hdl_resonator() {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  ckt->add<VSource>("V1", drive, Circuit::kGround,
                    std::make_unique<PulseWave>(0.0, 10.0, 0.0, 1e-4, 1e-4, 0.05));
  ckt->add_device(hdl::instantiate(
      "XT", hdl::stdlib::paper_listing1(), "eletran",
      {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
      {drive, Circuit::kGround, vel, Circuit::kGround}));
  ckt->add<Mass>("M1", vel, 1e-4);
  ckt->add<Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt->add<Damper>("D1", vel, Circuit::kGround, 40e-3);
  return ckt;
}

// --- parity harnesses -------------------------------------------------------

void expect_dc_parity(const CircuitBuilder& build) {
  DcOptions dense;
  dense.newton = tight_newton(MatrixBackend::dense);
  DcOptions sparse;
  sparse.newton = tight_newton(MatrixBackend::sparse);

  auto ckt_d = build();
  const DcResult rd = api::solve_dc(*ckt_d, dense);
  auto ckt_s = build();
  const DcResult rs = api::solve_dc(*ckt_s, sparse);

  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(rs.converged);
  EXPECT_FALSE(rd.used_sparse);
  EXPECT_TRUE(rs.used_sparse);
  EXPECT_LT(rel_diff(rd.x, rs.x), 1e-9);
  // One analysis, one symbolic factorization — every Newton iteration (and
  // gmin stage) reuses it.
  EXPECT_EQ(rs.symbolic_factorizations, 1);
}

void expect_tran_parity(const CircuitBuilder& build, double tstop, double dt) {
  TranOptions opts;
  opts.tstop = tstop;
  opts.dt_init = dt;
  opts.dt_max = dt;
  opts.adaptive = false;  // identical step sequences on both backends
  opts.newton = tight_newton(MatrixBackend::dense);
  opts.dc.newton = tight_newton(MatrixBackend::dense);

  auto ckt_d = build();
  const TranResult rd = api::transient(*ckt_d, opts);

  opts.newton.backend = MatrixBackend::sparse;
  opts.dc.newton.backend = MatrixBackend::sparse;
  auto ckt_s = build();
  const TranResult rs = api::transient(*ckt_s, opts);

  ASSERT_TRUE(rd.ok) << rd.error;
  ASSERT_TRUE(rs.ok) << rs.error;
  EXPECT_FALSE(rd.used_sparse);
  EXPECT_TRUE(rs.used_sparse);
  ASSERT_EQ(rd.time.size(), rs.time.size());
  double worst = 0.0;
  for (std::size_t k = 0; k < rd.x.size(); ++k) worst = std::max(worst, rel_diff(rd.x[k], rs.x[k]));
  EXPECT_LT(worst, 1e-9);
  EXPECT_EQ(rs.symbolic_factorizations, 1);
}

void expect_ac_parity(const CircuitBuilder& build) {
  AcOptions opts;
  opts.f_start = 1.0;
  opts.f_stop = 1e6;
  opts.points = 20;
  opts.dc.newton = tight_newton(MatrixBackend::dense);

  auto ckt_d = build();
  const AcResult rd = api::ac_sweep(*ckt_d, opts);

  opts.dc.newton.backend = MatrixBackend::sparse;
  auto ckt_s = build();
  const AcResult rs = api::ac_sweep(*ckt_s, opts);

  ASSERT_TRUE(rd.ok) << rd.error;
  ASSERT_TRUE(rs.ok) << rs.error;
  EXPECT_FALSE(rd.used_sparse);
  EXPECT_TRUE(rs.used_sparse);
  ASSERT_EQ(rd.freq.size(), rs.freq.size());
  for (std::size_t k = 0; k < rd.x.size(); ++k) {
    for (std::size_t i = 0; i < rd.x[k].size(); ++i) {
      const double scale =
          std::max({std::abs(rd.x[k][i]), std::abs(rs.x[k][i]), 1e-12});
      EXPECT_LT(std::abs(rd.x[k][i] - rs.x[k][i]) / scale, 1e-9)
          << "f=" << rd.freq[k] << " unknown=" << i;
    }
  }
}

// --- cases ------------------------------------------------------------------

TEST(SparseVsDense, DcRcLadder) {
  expect_dc_parity([] { return rc_ladder(40); });
}

TEST(SparseVsDense, DcRelay) {
  expect_dc_parity([] { return relay(6.0); });
}

TEST(SparseVsDense, TranRcLadder) {
  expect_tran_parity([] { return rc_ladder(25); }, 2e-5, 2e-7);
}

TEST(SparseVsDense, TranRlcWithDiode) {
  expect_tran_parity([] { return rlc_tank(); }, 5e-4, 1e-6);
}

TEST(SparseVsDense, TranRelayPullIn) {
  expect_tran_parity([] { return relay(6.0); }, 1e-2, 2e-5);
}

TEST(SparseVsDense, TranHdlListing1) {
  expect_tran_parity([] { return hdl_resonator(); }, 5e-3, 5e-5);
}

TEST(SparseVsDense, AcRcLadder) {
  expect_ac_parity([] { return rc_ladder(40); });
}

TEST(SparseVsDense, AcRlc) {
  expect_ac_parity([] { return rlc_tank(); });
}

TEST(SparseVsDense, AcSymbolicFactorizationComputedOncePerSweep) {
  AcOptions opts;
  opts.points = 30;
  opts.dc.newton = tight_newton(MatrixBackend::sparse);
  auto ckt = rc_ladder(40);
  const AcResult r = api::ac_sweep(*ckt, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.used_sparse);
  EXPECT_EQ(r.symbolic_factorizations, 1);
}

TEST(SparseVsDense, AutoSelectCrossesOverOnSize) {
  // Small circuit: auto stays dense. Large ladder: auto goes sparse.
  {
    auto small = rlc_tank();
    DcOptions opts;  // default backend = auto_select
    const DcResult r = api::solve_dc(*small, opts);
    ASSERT_TRUE(r.converged);
    EXPECT_FALSE(r.used_sparse);
  }
  {
    auto big = rc_ladder(100);
    DcOptions opts;
    const DcResult r = api::solve_dc(*big, opts);
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(r.used_sparse);
  }
}

/// A device that declines to declare its footprint must force the whole
/// circuit onto the dense path — silently correct, never wrong.
class OpaqueResistor final : public Resistor {
 public:
  using Resistor::Resistor;
  bool stamp_footprint(std::vector<int>& out) const override {
    (void)out;
    return false;
  }
};

TEST(SparseVsDense, UnknownFootprintFallsBackToDense) {
  auto ckt = rc_ladder(30);
  const int a = ckt->node("n3");
  const int b = ckt->node("n7");
  ckt->add<OpaqueResistor>("Ropaque", a, b, 2e3);
  DcOptions opts;
  opts.newton = tight_newton(MatrixBackend::sparse);  // forced, but incomplete
  const DcResult r = api::solve_dc(*ckt, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.used_sparse);
  EXPECT_EQ(r.symbolic_factorizations, 0);
}

}  // namespace
}  // namespace usys::spice
