// Counter-based deterministic RNG for Monte Carlo parameter draws.
//
// Every draw is a pure function of (seed, counter, key): there is no
// generator state to advance, so the value drawn for sweep point i and
// parameter p is the same no matter which thread, shard, or resumed
// process computes it — the determinism guarantees of the statistical
// sweep engine (docs/sweeps.md) reduce to this file being stateless.
//
//   seed    — the user-visible `--seed` value (whole-run entropy),
//   counter — the global sweep point index,
//   key     — a hash of the parameter name (stream separation).
//
// The mixer is a SplitMix64-style avalanche chain (Steele et al.,
// "Fast splittable pseudorandom number generators"): each input word is
// absorbed and fully avalanched before the next, so sequential counters
// within one (seed, key) stream are injective and adjacent streams are
// decorrelated. Statistical quality is ample for tolerance analysis;
// it is not a cryptographic generator.
#pragma once

#include <cstdint>
#include <string_view>

namespace usys {

/// Finalizing avalanche (bijective on uint64).
std::uint64_t rng_mix64(std::uint64_t x) noexcept;

/// FNV-1a hash of a parameter name, used as the per-parameter stream key.
/// Case-sensitive: sweep parameter names are case-sensitive placeholders.
std::uint64_t rng_hash_name(std::string_view name) noexcept;

/// The core draw: uniform 64-bit value for (seed, counter, key).
std::uint64_t rng_draw_u64(std::uint64_t seed, std::uint64_t counter,
                           std::uint64_t key) noexcept;

/// Uniform double in [0, 1) with 53 random bits.
double rng_uniform01(std::uint64_t seed, std::uint64_t counter,
                     std::uint64_t key) noexcept;

/// Uniform double in [lo, hi).
double rng_uniform(std::uint64_t seed, std::uint64_t counter, std::uint64_t key,
                   double lo, double hi) noexcept;

/// Normal draw N(mu, sigma^2) via the inverse CDF of a single uniform,
/// so exactly one counter value is consumed per draw (stateless — no
/// Box-Muller pair caching).
double rng_normal(std::uint64_t seed, std::uint64_t counter, std::uint64_t key,
                  double mu, double sigma) noexcept;

/// Inverse standard-normal CDF (quantile function) for p in (0, 1).
/// Acklam's rational approximation refined by one Halley step against
/// erfc, accurate to ~1 ulp over the full open interval. Exposed for the
/// statistics golden tests.
double inverse_normal_cdf(double p) noexcept;

}  // namespace usys
