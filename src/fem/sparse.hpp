// Sparse linear algebra for the FEM assembly: COO-to-CSR conversion and a
// Jacobi-preconditioned conjugate-gradient solver (the stiffness matrices of
// the electrostatic problems are symmetric positive definite after Dirichlet
// elimination).
#pragma once

#include <cstddef>
#include <vector>

namespace usys::fem {

/// Compressed sparse row matrix (square).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets, summing duplicates.
  static CsrMatrix from_triplets(int n,
                                 const std::vector<int>& rows,
                                 const std::vector<int>& cols,
                                 const std::vector<double>& vals);

  int size() const noexcept { return n_; }
  std::size_t nonzeros() const noexcept { return vals_.size(); }

  /// y = A x
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  double diagonal(int i) const;

  const std::vector<int>& row_ptr() const noexcept { return row_ptr_; }
  const std::vector<int>& col_idx() const noexcept { return col_idx_; }
  const std::vector<double>& values() const noexcept { return vals_; }

 private:
  int n_ = 0;
  std::vector<int> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> vals_;
};

struct CgOptions {
  int max_iters = 10'000;
  double rtol = 1e-12;
};

struct CgResult {
  bool converged = false;
  int iterations = 0;
  double residual = 0.0;
};

/// Solves A x = b (A SPD) with Jacobi-preconditioned CG. `x` is the initial
/// guess on input, the solution on output.
CgResult cg_solve(const CsrMatrix& a, const std::vector<double>& b,
                  std::vector<double>& x, const CgOptions& opts = {});

}  // namespace usys::fem
