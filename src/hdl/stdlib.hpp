// Standard library of HDL-AT transducer models.
//
// `paper_listing1()` is the paper's Listing 1 verbatim (modulo whitespace):
// the transverse electrostatic transducer with the quasi-static electrical
// branch i = C(x)*ddt(V). Note that the listing omits the motional-current
// term dC/dx * S * V, making the electrical side slightly non-conservative;
// `transverse_energy()` is the energy-complete variant (both terms). The
// benches compare the two (an ablation the paper could not run).
//
// Sign note: our '%=' semantics is uniformly "flow absorbed at the first
// pin"; the mechanical contribution is therefore +dW/dx, whose *delivered*
// force equals the (negative) Table 3 value. The listing is reproduced with
// the sign adapted accordingly; see DESIGN.md.
#pragma once

#include <string>

namespace usys::hdl::stdlib {

/// Listing 1: transverse electrostatic transducer, entity `eletran`,
/// generics A, d, er; pins a,b electrical, c,d mechanical1.
std::string paper_listing1();

/// Energy-complete transverse electrostatic transducer, entity `etransverse`.
std::string transverse_energy();

/// Parallel (sliding plate) electrostatic transducer, entity `eparallel`;
/// generics h, l, d, er.
std::string parallel_electrostatic();

/// Electromagnetic reluctance transducer, entity `emagnetic`; generics
/// A, d, N. Uses an effort ('.v %=') electrical port with a readable branch
/// current.
std::string electromagnetic();

/// Electrodynamic voice-coil transducer, entity `edynamic`; generics N, r, B.
std::string electrodynamic();

/// All models concatenated (convenient for parser round-trip tests).
std::string all_models();

}  // namespace usys::hdl::stdlib
