// Golden-diagnostic tests for the static circuit analyzer (spice/lint.hpp):
// one defect netlist per rule under tests/spice/lint/, plus the clean-corpus
// guarantee that every shipped example (and the HDL stdlib in all three
// executors) lints without findings, and the engine-preflight contract
// (errors reject with FailureKind::lint_rejected, warnings never block).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/netlist_ext.hpp"
#include "spice/engine.hpp"
#include "spice/lint.hpp"
#include "spice/netlist.hpp"

using namespace usys;
using namespace usys::spice;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string corpus(const char* name) {
  return read_file(std::string(USYS_SOURCE_DIR "/tests/spice/lint/") + name);
}

/// Replaces every `{key}` in `text` (sweep-style placeholders in examples).
std::string substitute(std::string text, const std::string& key,
                       const std::string& value) {
  const std::string pat = "{" + key + "}";
  for (std::size_t p = text.find(pat); p != std::string::npos;
       p = text.find(pat, p)) {
    text.replace(p, pat.size(), value);
    p += value.size();
  }
  return text;
}

LintReport lint_text(const std::string& text, const LintOptions& opts = {}) {
  auto parser = core::make_full_parser();
  Netlist net = parser.parse(text);
  return lint_circuit(*net.circuit, opts);
}

bool has_rule(const LintReport& rep, const std::string& rule,
              LintSeverity sev) {
  return std::any_of(rep.diags.begin(), rep.diags.end(), [&](const LintDiag& d) {
    return d.rule == rule && d.severity == sev;
  });
}

int count_rule(const LintReport& rep, const std::string& rule) {
  return static_cast<int>(
      std::count_if(rep.diags.begin(), rep.diags.end(),
                    [&](const LintDiag& d) { return d.rule == rule; }));
}

TEST(Lint, FloatingIslandWarns) {
  const auto rep = lint_text(corpus("float_node.cir"));
  EXPECT_TRUE(has_rule(rep, "float-node", LintSeverity::warning));
  EXPECT_EQ(rep.error_count(), 0);
  // The finding names the island members and carries the card's line.
  const auto it = std::find_if(rep.diags.begin(), rep.diags.end(),
                               [](const LintDiag& d) { return d.rule == "float-node"; });
  ASSERT_NE(it, rep.diags.end());
  EXPECT_NE(it->message.find("isl1"), std::string::npos);
  EXPECT_EQ(it->line, 5);
}

TEST(Lint, VoltageLoopIsError) {
  const auto rep = lint_text(corpus("vloop.cir"));
  EXPECT_TRUE(has_rule(rep, "vloop", LintSeverity::error));
  // The probed-pattern matching independently confirms the all-analyses
  // singularity (two identical branch rows).
  EXPECT_TRUE(has_rule(rep, "struct-singular", LintSeverity::warning));
}

TEST(Lint, InductorDcLoopWarns) {
  const auto rep = lint_text(corpus("vloop_dc.cir"));
  EXPECT_TRUE(has_rule(rep, "vloop-dc", LintSeverity::warning));
  EXPECT_EQ(rep.error_count(), 0) << rep.to_text();
}

TEST(Lint, IsourceCutsetWarns) {
  const auto rep = lint_text(corpus("isource_cutset.cir"));
  EXPECT_TRUE(has_rule(rep, "isource-cutset", LintSeverity::warning));
  EXPECT_EQ(rep.error_count(), 0);
}

TEST(Lint, StructuralSingularityAtDcWarns) {
  // Two effort-port HDL transducers in parallel: the DC Jf pattern has no
  // perfect matching. The warning is a true positive — this netlist's .op
  // genuinely fails with singular-matrix after the whole rescue ladder.
  const auto rep = lint_text(corpus("struct_singular.cir"));
  EXPECT_TRUE(has_rule(rep, "struct-singular", LintSeverity::warning));
  EXPECT_EQ(rep.error_count(), 0) << rep.to_text();
}

TEST(Lint, ParameterSanity) {
  const auto rep = lint_text(corpus("bad_param.cir"));
  EXPECT_TRUE(has_rule(rep, "param-zero", LintSeverity::error));
  EXPECT_TRUE(has_rule(rep, "param-magnitude", LintSeverity::warning));
}

TEST(Lint, UnconnectedArrayCells) {
  const auto rep = lint_text(corpus("array_unconnected.cir"));
  EXPECT_EQ(count_rule(rep, "array-unconnected"), 3);  // one per isolated cell
  EXPECT_EQ(rep.error_count(), 0);
}

TEST(Lint, OptionsDisableAnalyses) {
  LintOptions opts;
  opts.connectivity = false;
  opts.matching = false;
  const auto rep = lint_text(corpus("float_node.cir"), opts);
  EXPECT_EQ(count_rule(rep, "float-node"), 0);
}

TEST(Lint, TextAndJsonRendering) {
  const auto rep = lint_text(corpus("vloop.cir"));
  const std::string text = rep.to_text();
  EXPECT_NE(text.find("error[vloop]"), std::string::npos);
  EXPECT_NE(text.find("device 'V2'"), std::string::npos);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"vloop\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

// --- engine preflight --------------------------------------------------------

TEST(LintPreflight, ErrorsRejectWithStructuredFailure) {
  auto parser = core::make_full_parser();
  Netlist net = parser.parse(corpus("bad_param.cir"));
  AnalysisEngine engine(*net.circuit);
  EXPECT_TRUE(engine.preflight().has_errors());
  const DcResult dc = engine.run_dc();
  EXPECT_FALSE(dc.converged);
  EXPECT_EQ(dc.failure.kind, FailureKind::lint_rejected);
  EXPECT_NE(dc.failure.detail.find("param-zero"), std::string::npos);
  // The verdict propagates through the dependent analyses too.
  TranOptions tran;
  tran.tstop = 1e-6;
  tran.dt_init = 1e-7;
  const TranResult tr = engine.run_tran(tran);
  EXPECT_FALSE(tr.ok);
  EXPECT_EQ(tr.failure.kind, FailureKind::lint_rejected);
}

TEST(LintPreflight, WarningsNeverBlockAnalysis) {
  // Floating island: a warning-severity defect gmin rescues numerically.
  auto parser = core::make_full_parser();
  Netlist net = parser.parse(corpus("float_node.cir"));
  AnalysisEngine engine(*net.circuit);
  EXPECT_FALSE(engine.preflight().has_errors());
  const DcResult dc = engine.run_dc();
  EXPECT_TRUE(dc.converged);
}

// --- clean corpus ------------------------------------------------------------

TEST(LintCleanCorpus, ShippedExamplesAreClean) {
  std::string text = read_file(USYS_SOURCE_DIR "/examples/transducer_array.cir");
  text = substitute(text, "gap", "2e-6");
  text = substitute(text, "vdrive", "1");
  const auto rep = lint_text(text);
  EXPECT_TRUE(rep.clean()) << rep.to_text();
}

TEST(LintCleanCorpus, HdlStdlibCleanInAllExecModes) {
  // Every stdlib transducer, one well-formed instance each, in all three
  // executors: the compiled bytecode must verify clean AND the circuit-level
  // lint must find nothing. (The executors share the compiled program, but
  // mode selection exercises the distinct bind paths.)
  const char* kNetlist =
      "* hdl stdlib clean corpus\n"
      "V1 vin 0 1\n"
      "R1 vin p 1k\n"
      "X1 p 0 m 0 HDLTRANSV a=1e-8 d=2e-6 er=1\n"
      "XM m MASS m=1e-9\n"
      "XS m 0 SPRING k=1\n"
      "XD m 0 DAMPER alpha=1e-6\n"
      ".op\n"
      ".end\n";
  for (const char* mode : {"ast", "bytecode", "codegen"}) {
    auto parser = core::make_full_parser();
    parser.set_option("hdl", mode);
    Netlist net = parser.parse(kNetlist);
    const auto rep = lint_circuit(*net.circuit);
    EXPECT_TRUE(rep.clean()) << "mode=" << mode << "\n" << rep.to_text();
  }
}

TEST(LintCleanCorpus, RuleCatalogIsClosed) {
  // Every rule id the analyzer can emit appears in kAllLintRules (the table
  // docs/diagnostics.md is cross-checked against); spot-check both levels.
  std::vector<std::string> rules;
  for (const char* const* r = kAllLintRules; *r != nullptr; ++r) rules.emplace_back(*r);
  for (const char* expect : {"float-node", "vloop", "struct-singular",
                             "param-zero", "array-unconnected",
                             "hdl-operand-bounds", "hdl-dead-code"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), expect), rules.end())
        << expect << " missing from kAllLintRules";
  }
}

}  // namespace
