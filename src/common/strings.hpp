// String utilities shared by the netlist and HDL-AT front ends.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace usys {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Splits on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string_view> split(std::string_view s, std::string_view delims = " \t");

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Case-insensitive comparison of ASCII strings.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Parses a SPICE-style number with engineering suffix:
///   1k = 1e3, 4.7meg = 4.7e6, 10u = 1e-5, 0.15m = 1.5e-4, 5p = 5e-12 ...
/// Recognized suffixes (case-insensitive): t g meg k m u n p f.
/// Trailing unit letters after the suffix are ignored (e.g. "10uF").
/// Returns nullopt if the leading characters do not form a number.
std::optional<double> parse_spice_number(std::string_view s) noexcept;

/// printf-style formatting into std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace usys
