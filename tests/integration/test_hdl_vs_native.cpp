// Cross-validation: the interpreted HDL-AT models against the native C++
// devices over the full Fig. 5 run, plus netlist-built vs API-built systems.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "core/netlist_ext.hpp"
#include "core/resonator_system.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys {
namespace {

using spice::Circuit;

spice::TranOptions fig5_opts() {
  spice::TranOptions o;
  o.tstop = 0.18;
  o.dt_max = 2e-4;
  return o;
}

TEST(HdlVsNative, Fig5TrajectoriesAgree) {
  core::ResonatorParams p;
  // Native run.
  auto native = core::build_resonator_system(
      p, core::TransducerModelKind::behavioral,
      spice::make_fig5_pulse_train({5.0, 10.0, 15.0}, 0.18, 2e-3, 2e-3));
  const auto rn = api::transient(*native.circuit, fig5_opts());
  ASSERT_TRUE(rn.ok) << rn.error;

  // HDL run (energy-complete model, same parameters).
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>("V1", drive, Circuit::kGround,
                          spice::make_fig5_pulse_train({5.0, 10.0, 15.0}, 0.18, 2e-3,
                                                       2e-3));
  ckt.add_device(hdl::instantiate("XT", hdl::stdlib::transverse_energy(), "etransverse",
                                  {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                                  {drive, Circuit::kGround, vel, Circuit::kGround}));
  ckt.add<spice::Mass>("M1", vel, p.mass);
  ckt.add<spice::Spring>("K1", vel, Circuit::kGround, p.stiffness);
  ckt.add<spice::Damper>("D1", vel, Circuit::kGround, p.damping);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);
  const auto rh = api::transient(ckt, fig5_opts());
  ASSERT_TRUE(rh.ok) << rh.error;

  double worst_rel = 0.0;
  double xmax = 0.0;
  for (double t = 0.01; t < 0.18; t += 0.005) {
    const double xn = rn.sample(t, native.node_disp);
    const double xh = rh.sample(t, disp);
    xmax = std::max(xmax, std::abs(xn));
    worst_rel = std::max(worst_rel, std::abs(xh - xn));
  }
  ASSERT_GT(xmax, 1e-9);
  EXPECT_LT(worst_rel / xmax, 0.03);
}

TEST(HdlVsNative, Listing1CloseToEnergyCompleteAtPaperScales) {
  // The missing motional-current term is negligible for x << d, so Listing 1
  // and the complete model coincide at Table 4 scales.
  Circuit a;
  Circuit b;
  auto build = [](Circuit& ckt, const std::string& src, const std::string& entity) {
    const int drive = ckt.add_node("drive", Nature::electrical);
    const int vel = ckt.add_node("vel", Nature::mechanical_translation);
    const int disp = ckt.add_node("disp", Nature::mechanical_translation);
    ckt.add<spice::VSource>(
        "V1", drive, Circuit::kGround,
        spice::make_fig5_pulse_train({10.0}, 0.06, 2e-3, 2e-3));
    ckt.add_device(hdl::instantiate("XT", src, entity,
                                    {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                                    {drive, Circuit::kGround, vel, Circuit::kGround}));
    ckt.add<spice::Mass>("M1", vel, 1e-4);
    ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 200.0);
    ckt.add<spice::Damper>("D1", vel, Circuit::kGround, 40e-3);
    ckt.add<spice::StateIntegrator>("XD", disp, vel);
    return disp;
  };
  const int da = build(a, hdl::stdlib::paper_listing1(), "eletran");
  const int db = build(b, hdl::stdlib::transverse_energy(), "etransverse");
  spice::TranOptions opts;
  opts.tstop = 0.06;
  opts.dt_max = 1e-4;
  const auto ra = api::transient(a, opts);
  const auto rb = api::transient(b, opts);
  ASSERT_TRUE(ra.ok && rb.ok);
  for (double t = 0.01; t < 0.06; t += 0.01) {
    EXPECT_NEAR(ra.sample(t, da), rb.sample(t, db),
                std::abs(rb.sample(t, db)) * 0.01 + 1e-13);
  }
}

TEST(HdlVsNative, NetlistBuildMatchesApiBuild) {
  auto parser = core::make_full_parser();
  const auto net = parser.parse(R"(* Fig. 3 via netlist
V1 drive 0 PWL(0 0 5m 10 1 10)
XT drive 0 vel 0 ETRANSV a=1e-4 d=0.15m er=1
Xm vel MASS m=1e-4
Xk vel 0 SPRING k=200
Xd vel 0 DAMPER alpha=40m
Xi disp vel INTEG
)");
  spice::TranOptions opts;
  opts.tstop = 80e-3;
  const auto rn = api::transient(*net.circuit, opts);
  ASSERT_TRUE(rn.ok) << rn.error;

  core::ResonatorParams p;
  auto api = core::build_resonator_system(
      p, core::TransducerModelKind::behavioral,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
  const auto ra = api::transient(*api.circuit, opts);
  ASSERT_TRUE(ra.ok);

  const double xn = rn.sample(80e-3, net.circuit->node("disp"));
  const double xa = ra.sample(80e-3, api.node_disp);
  EXPECT_NEAR(xn, xa, std::abs(xa) * 1e-3);
}

TEST(HdlVsNative, ParallelElectrostaticHdlMatchesNative) {
  core::TransducerGeometry g;
  g.depth = 1e-3;
  g.length = 2e-3;
  g.gap = 1e-5;
  g.eps0 = 8.8542e-12;

  auto run = [&](bool use_hdl) {
    Circuit ckt;
    const int drive = ckt.add_node("drive", Nature::electrical);
    const int vel = ckt.add_node("vel", Nature::mechanical_translation);
    const int disp = ckt.add_node("disp", Nature::mechanical_translation);
    ckt.add<spice::VSource>(
        "V1", drive, Circuit::kGround,
        std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0}, {1e-3, 10.0}, {1.0, 10.0}}));
    if (use_hdl) {
      ckt.add_device(hdl::instantiate(
          "XT", hdl::stdlib::parallel_electrostatic(), "eparallel",
          {{"h", g.depth}, {"l", g.length}, {"d", g.gap}, {"er", 1.0}},
          {drive, Circuit::kGround, vel, Circuit::kGround}));
    } else {
      ckt.add<core::ParallelElectrostatic>("XT", drive, Circuit::kGround, vel,
                                           Circuit::kGround, g);
    }
    ckt.add<spice::Mass>("M1", vel, 1e-5);
    ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 50.0);
    ckt.add<spice::Damper>("D1", vel, Circuit::kGround, 5e-3);
    ckt.add<spice::StateIntegrator>("XD", disp, vel);
    spice::TranOptions opts;
    opts.tstop = 30e-3;
    opts.dt_max = 5e-5;
    const auto res = api::transient(ckt, opts);
    return std::make_pair(res.ok, res.ok ? res.sample(30e-3, disp) : 0.0);
  };
  const auto [ok_h, x_h] = run(true);
  const auto [ok_n, x_n] = run(false);
  ASSERT_TRUE(ok_h && ok_n);
  EXPECT_NEAR(x_h, x_n, std::abs(x_n) * 0.01);
}

}  // namespace
}  // namespace usys
