// DC operating-point tests: resistive dividers, controlled sources,
// mechanical statics under the FI analogy, and the stepping fallbacks.
#include <gtest/gtest.h>

#include "api/api.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

TEST(Dc, ResistorDivider) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int mid = ckt.add_node("mid", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, 10.0);
  ckt.add<Resistor>("R1", in, mid, 1e3);
  ckt.add<Resistor>("R2", mid, Circuit::kGround, 3e3);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(in), 10.0, 1e-7);
  EXPECT_NEAR(op.at(mid), 7.5, 1e-7);  // gmin loads the node
}

TEST(Dc, SeriesResistorsCurrent) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  const int b = ckt.add_node("b", Nature::electrical);
  auto& vs = ckt.add<VSource>("V1", a, Circuit::kGround, 1.0);
  ckt.add<Resistor>("R1", a, b, 100.0);
  ckt.add<Resistor>("R2", b, Circuit::kGround, 100.0);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  // Source branch current: 1 V across 200 ohm, flowing out of the source.
  EXPECT_NEAR(op.x[static_cast<std::size_t>(vs.branch())], -1.0 / 200.0, 1e-10);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Circuit ckt;
  const int n = ckt.add_node("n", Nature::electrical);
  // 1 mA pulled from ground into n (SPICE convention: from n+ through source
  // to n-): ISource(gnd, n) pushes current INTO node n.
  ckt.add<ISource>("I1", Circuit::kGround, n, 1e-3);
  ckt.add<Resistor>("R1", n, Circuit::kGround, 1e3);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(n), 1.0, 1e-9);
}

TEST(Dc, InductorIsShortAtDc) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  const int b = ckt.add_node("b", Nature::electrical);
  ckt.add<VSource>("V1", a, Circuit::kGround, 2.0);
  ckt.add<Resistor>("R1", a, b, 1e3);
  ckt.add<Inductor>("L1", b, Circuit::kGround, 1e-3);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(b), 0.0, 1e-6);
}

TEST(Dc, CapacitorIsOpenAtDc) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  const int b = ckt.add_node("b", Nature::electrical);
  ckt.add<VSource>("V1", a, Circuit::kGround, 2.0);
  ckt.add<Resistor>("R1", a, b, 1e3);
  ckt.add<Capacitor>("C1", b, Circuit::kGround, 1e-9);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(b), 2.0, 1e-5);  // only gmin loads the node
}

TEST(Dc, VcvsGain) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, 0.5);
  ckt.add<Vcvs>("E1", out, Circuit::kGround, in, Circuit::kGround, 4.0);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(out), 2.0, 1e-9);
}

TEST(Dc, VccsIntoResistor) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, 1.0);
  // i = gm*v(in) flows out of `out` into ground inside the source.
  ckt.add<Vccs>("G1", out, Circuit::kGround, in, Circuit::kGround, 1e-3);
  ckt.add<Resistor>("R1", out, Circuit::kGround, 1e3);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(out), -1.0, 1e-9);
}

TEST(Dc, TransformerRatio) {
  Circuit ckt;
  const int p = ckt.add_node("p", Nature::electrical);
  const int s = ckt.add_node("s", Nature::electrical);
  ckt.add<VSource>("V1", p, Circuit::kGround, 10.0);
  ckt.add<IdealTransformer>("T1", p, Circuit::kGround, s, Circuit::kGround, 5.0);
  ckt.add<Resistor>("RL", s, Circuit::kGround, 100.0);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  // v1 = n*v2 -> v2 = 2 V.
  EXPECT_NEAR(op.at(s), 2.0, 1e-9);
}

TEST(Dc, GyratorConvertsVoltageToCurrent) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  const int b = ckt.add_node("b", Nature::electrical);
  ckt.add<VSource>("V1", a, Circuit::kGround, 3.0);
  ckt.add<Gyrator>("GY1", a, Circuit::kGround, b, Circuit::kGround, 0.01);
  ckt.add<Resistor>("RL", b, Circuit::kGround, 50.0);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  // i2 = -g*v1 = -0.03 A into node b KCL: f(b) = -g*v1 + v(b)/R = 0
  // => v(b) = g*v1*R = 1.5 V.
  EXPECT_NEAR(op.at(b), 1.5, 1e-9);
}

TEST(Dc, FloatingNodeHandledByGmin) {
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  ckt.add<Capacitor>("C1", a, Circuit::kGround, 1e-12);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(a), 0.0, 1e-9);
}

TEST(Dc, SingularWithoutGminFallsBackGracefully) {
  // Two ideal voltage sources in parallel with different values cannot be
  // satisfied; the solve must report failure rather than crash.
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  ckt.add<VSource>("V1", a, Circuit::kGround, 1.0);
  ckt.add<VSource>("V2", a, Circuit::kGround, 2.0);
  const OpResult op = api::operating_point(ckt);
  EXPECT_FALSE(op.converged);
}

}  // namespace
}  // namespace usys::spice
