#include "spice/solver.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "common/fault_inject.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "spice/engine.hpp"

namespace usys::spice {
namespace {

/// Interface seeds for the partitioner, from netlist structure: an unknown
/// stamped by two different .array/TRANSARRAY cells is a shared net — the
/// bus/hub the partitioner must cut anyway, so hand it over up front and
/// let the degree heuristic handle whatever provenance can't see.
/// Non-array circuits produce no seeds.
std::vector<int> partition_seeds(Circuit& circuit) {
  const int n = circuit.unknown_count();
  std::vector<int> first(static_cast<std::size_t>(n), -1);
  std::vector<char> shared(static_cast<std::size_t>(n), 0);
  std::map<std::pair<std::string, int>, int> cells;
  std::vector<int> fp;
  for (const auto& dev : circuit.devices()) {
    if (dev->array_name().empty()) continue;
    const auto key = std::make_pair(dev->array_name(), dev->array_cell());
    const int g = cells.emplace(key, static_cast<int>(cells.size())).first->second;
    fp.clear();
    if (!dev->stamp_footprint(fp)) continue;
    for (int u : fp) {
      if (u < 0 || u >= n) continue;
      if (first[static_cast<std::size_t>(u)] < 0)
        first[static_cast<std::size_t>(u)] = g;
      else if (first[static_cast<std::size_t>(u)] != g)
        shared[static_cast<std::size_t>(u)] = 1;
    }
  }
  std::vector<int> seeds;
  for (int u = 0; u < n; ++u)
    if (shared[static_cast<std::size_t>(u)]) seeds.push_back(u);
  return seeds;
}

}  // namespace

NewtonSolver::NewtonSolver(Circuit& circuit, NewtonOptions opts)
    : circuit_(circuit), opts_(opts) {
  circuit_.bind_all();
  const auto n = static_cast<std::size_t>(circuit_.unknown_count());
  f_.resize(n);
  q_.resize(n);
  resid_.resize(n);
  dx_.resize(n);

  bool want_sparse = opts_.backend == MatrixBackend::sparse;
  if (opts_.backend == MatrixBackend::auto_select)
    want_sparse = static_cast<int>(n) >= opts_.sparse_threshold;
  if (want_sparse) {
    const MnaPattern& pattern = circuit_.mna_pattern();
    if (pattern.complete()) {
      // Assembly and the triangular solves share one pool, sized for the
      // larger of the two requests (each side caps its own fan-out, so a
      // bigger pool never changes results — both passes are bit-identical
      // to serial for any thread count).
      const int asm_threads = ThreadPool::resolve_threads(opts_.assembly_threads);
      const int solve_threads = ThreadPool::resolve_threads(opts_.solve_threads);
      const int refactor_threads = ThreadPool::resolve_threads(opts_.refactor_threads);
      const int pool_threads = std::max({asm_threads, solve_threads, refactor_threads});
      if (pool_threads > 1) pool_ = std::make_unique<ThreadPool>(pool_threads);
      assembler_ = std::make_unique<MnaAssembler>(circuit_, pattern,
                                                  opts_.assembly_threads, pool_.get());
      lu_.analyze(pattern.size(), pattern.row_ptr(), pattern.col_idx(), opts_.ordering);
      if (solve_threads > 1 || refactor_threads > 1)
        lu_.set_parallel(pool_.get(), solve_threads);
      if (refactor_threads > 1) lu_.set_refactor_parallel(refactor_threads);
      jac_vals_.resize(pattern.nonzeros());
      if (opts_.partition == PartitionMode::auto_mode) {
        // The monolithic lu_ above stays analyzed regardless: it is the
        // fallback when the partitioner declines here or a block turns
        // singular mid-analysis.
        plan_ = partition_pattern(pattern.size(), pattern.row_ptr(), pattern.col_idx(),
                                  PartitionOptions{}, partition_seeds(circuit_));
        if (plan_.ok) {
          plu_ = std::make_unique<DPartitionedLu>();
          plu_->analyze(plan_, pattern.size(), pattern.row_ptr(), pattern.col_idx(),
                        opts_.ordering);
          if (pool_) plu_->set_parallel(pool_.get(), pool_threads);
          log_debug(str_format("partition: %d islands + %d interface unknowns (n=%d)",
                               plan_.n_blocks, static_cast<int>(plan_.interface.size()),
                               pattern.size()));
        } else {
          log_debug(std::string("partition: declined (") + plan_.decline_reason +
                    "), using the monolithic factorization");
        }
      }
    }
  }
  if (!assembler_) {
    // Dense fallback: the n x n scratch lives only on this path.
    jf_.resize(n, n);
    jq_.resize(n, n);
    jacobian_.resize(n, n);
  }
}

void NewtonSolver::stamp(EvalCtx ctx_proto, const DVector& x, DVector& f, DVector& q,
                         DMatrix& jf, DMatrix& jq) {
  const std::size_t n = x.size();
  f.assign(n, 0.0);
  q.assign(n, 0.0);
  if (jf.rows() != n || jf.cols() != n) {
    jf.resize(n, n);
  } else {
    jf.fill(0.0);
  }
  if (jq.rows() != n || jq.cols() != n) {
    jq.resize(n, n);
  } else {
    jq.fill(0.0);
  }
  EvalCtx ctx = ctx_proto;
  ctx.x = &x;
  ctx.f = &f;
  ctx.q = &q;
  ctx.jf = &jf;
  ctx.jq = &jq;
  ctx.sparse = nullptr;
  for (const auto& dev : circuit_.devices()) dev->evaluate(ctx);
  // gmin ties every *node* row weakly to ground, keeping the Jacobian
  // nonsingular for floating subnets (branch rows are exact constraints and
  // must not be polluted).
  if (opts_.gmin > 0.0) {
    const auto nodes = static_cast<std::size_t>(circuit_.node_count());
    for (std::size_t i = 0; i < nodes; ++i) {
      f[i] += opts_.gmin * x[i];
      jf(i, i) += opts_.gmin;
    }
  }
}

void NewtonSolver::stamp_values(EvalCtx ctx_proto, const DVector& x, DVector& f,
                                DVector& q) {
  const std::size_t n = x.size();
  f.assign(n, 0.0);
  q.assign(n, 0.0);
  EvalCtx ctx = ctx_proto;
  ctx.x = &x;
  ctx.f = &f;
  ctx.q = &q;
  ctx.jf = nullptr;  // Jacobian stamps are discarded (see EvalCtx::jf_add)
  ctx.jq = nullptr;
  ctx.sparse = nullptr;
  for (const auto& dev : circuit_.devices()) dev->evaluate(ctx);
  if (opts_.gmin > 0.0) {
    const auto nodes = static_cast<std::size_t>(circuit_.node_count());
    for (std::size_t i = 0; i < nodes; ++i) f[i] += opts_.gmin * x[i];
  }
}

void NewtonSolver::assemble_sparse(EvalCtx ctx_proto, const DVector& x, DVector& f,
                                   DVector& q) {
  assembler_->assemble(ctx_proto, x, f, q);
  if (opts_.gmin > 0.0) {
    const auto nodes = static_cast<std::size_t>(circuit_.node_count());
    for (std::size_t i = 0; i < nodes; ++i) {
      f[i] += opts_.gmin * x[i];
      assembler_->add_diag_jf(static_cast<int>(i), opts_.gmin);
    }
  }
}

NewtonResult NewtonSolver::solve(EvalCtx ctx_proto, double a0, const DVector& hist,
                                 DVector& x) {
  NewtonResult result;
  result.used_sparse = sparse_active();
  const std::size_t n = x.size();
  const DVector& abstol = circuit_.abstol();

  // Injected Newton stall: the whole solve reports divergence immediately,
  // exactly as a real never-converging iteration would after max_iters —
  // this is how tests drive the DC rescue ladder and the transient
  // step-rejection path on demand.
  if (USYS_FAULT_POINT("newton.stall")) {
    result.failure = FailureKind::newton_divergence;
    return result;
  }

  for (int iter = 0; iter < opts_.max_iters; ++iter) {
    // Deadline poll at the iteration boundary: a budgeted analysis can
    // never sit in the Newton loop past its budget, whatever the devices
    // or the matrix do.
    if (deadline_ != nullptr && deadline_->expired()) {
      result.failure = deadline_->exceeded_kind();
      result.iterations = iter;
      return result;
    }
    bool singular = false;
    if (sparse_active()) {
      assemble_sparse(ctx_proto, x, f_, q_);
      // Combined Newton matrix Jf + a0*Jq: one O(nnz) fuse over the flat
      // value arrays (they share the pattern's CSR layout).
      const std::vector<double>& jfv = assembler_->jf_values();
      const std::vector<double>& jqv = assembler_->jq_values();
      for (std::size_t k = 0; k < jac_vals_.size(); ++k)
        jac_vals_[k] = jfv[k] + a0 * jqv[k];
      for (std::size_t i = 0; i < n; ++i) {
        resid_[i] = f_[i] + a0 * q_[i] + (hist.empty() ? 0.0 : hist[i]);
        dx_[i] = -resid_[i];
      }
      try {
        if (plu_) {
          plu_->factor(jac_vals_);
          plu_->solve(dx_);
        } else {
          lu_.factor(jac_vals_);  // symbolic reused; numeric refactorization
          lu_.solve(dx_);
        }
      } catch (const SingularMatrixError&) {
        if (plu_) {
          // A singular island is not necessarily a singular system: the
          // monolithic factorization pivots globally, so retry this
          // iteration there — and stay there, the block split already
          // proved numerically fragile for this circuit.
          log_info("partition: singular block, falling back to the monolithic path");
          plu_.reset();
          for (std::size_t i = 0; i < n; ++i) dx_[i] = -resid_[i];
          try {
            lu_.factor(jac_vals_);
            lu_.solve(dx_);
          } catch (const SingularMatrixError&) {
            singular = true;
          } catch (const DeadlineError& e) {
            result.failure = e.kind();
            result.iterations = iter;
            return result;
          }
        } else {
          singular = true;
        }
      } catch (const DeadlineError& e) {
        result.failure = e.kind();
        result.iterations = iter;
        return result;
      }
    } else {
      stamp(ctx_proto, x, f_, q_, jf_, jq_);
      // resid = f + a0*q + hist ; jacobian = Jf + a0*Jq. The combine writes
      // straight into the factorization scratch — LU may destroy it, it is
      // rebuilt next iteration anyway (no deep copy).
      for (std::size_t i = 0; i < n; ++i) {
        resid_[i] = f_[i] + a0 * q_[i] + (hist.empty() ? 0.0 : hist[i]);
        dx_[i] = -resid_[i];
      }
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          jacobian_(r, c) = jf_(r, c) + a0 * jq_(r, c);
        }
      }
      try {
        lu_solve(jacobian_, dx_);
      } catch (const SingularMatrixError&) {
        singular = true;
      }
    }
    result.symbolic_factorizations = symbolic_factorizations();
    if (singular) {
      log_debug("newton: singular jacobian at iter " + std::to_string(iter));
      result.converged = false;
      result.failure = FailureKind::singular_matrix;
      result.iterations = iter + 1;
      return result;
    }

    // Optional step limiting (helps strongly nonlinear gap-closing regions).
    if (opts_.damping_limit > 0.0) {
      double scale = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double mag = std::abs(dx_[i]);
        if (mag > opts_.damping_limit) scale = std::min(scale, opts_.damping_limit / mag);
      }
      if (scale < 1.0) {
        for (auto& d : dx_) d *= scale;
      }
    }

    double max_weighted = 0.0;
    bool finite = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(dx_[i])) {
        finite = false;
        break;
      }
      const double tol = opts_.reltol * std::max(std::abs(x[i]), std::abs(x[i] + dx_[i])) +
                         abstol[i];
      max_weighted = std::max(max_weighted, std::abs(dx_[i]) / tol);
      x[i] += dx_[i];
    }
    result.iterations = iter + 1;
    result.final_error = max_weighted;
    if (!finite) {
      result.converged = false;
      result.failure = FailureKind::newton_divergence;
      return result;
    }
    if (max_weighted < 1.0) {
      result.converged = true;
      return result;
    }
  }
  result.converged = false;
  result.failure = FailureKind::newton_divergence;
  return result;
}

// solve_dc's deprecated wrapper definition lives in analysis.cpp beside its
// siblings (operating_point / transient / ac_sweep).

}  // namespace usys::spice
