#include <gtest/gtest.h>

#include <cmath>

#include "fem/sparse.hpp"

namespace usys::fem {
namespace {

TEST(Sparse, TripletsWithDuplicatesSum) {
  const CsrMatrix m = CsrMatrix::from_triplets(2, {0, 0, 1, 0}, {0, 1, 1, 0},
                                               {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.nonzeros(), 3u);  // (0,0) merged
  EXPECT_DOUBLE_EQ(m.diagonal(0), 5.0);
  EXPECT_DOUBLE_EQ(m.diagonal(1), 3.0);
}

TEST(Sparse, MultiplyMatchesDense) {
  // [2 1; 1 3] * [1; 2] = [4; 7]
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, {0, 0, 1, 1}, {0, 1, 0, 1}, {2.0, 1.0, 1.0, 3.0});
  std::vector<double> y;
  m.multiply({1.0, 2.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Sparse, CgSolvesSpdSystem) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, {0, 0, 1, 1}, {0, 1, 0, 1}, {4.0, 1.0, 1.0, 3.0});
  std::vector<double> x(2, 0.0);
  const CgResult r = cg_solve(m, {1.0, 2.0}, x);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(4.0 * x[0] + x[1], 1.0, 1e-10);
  EXPECT_NEAR(x[0] + 3.0 * x[1], 2.0, 1e-10);
}

TEST(Sparse, CgOnLaplacian1d) {
  // Tridiagonal Poisson: u'' = -1 on [0,1], u(0)=u(1)=0, h=1/(n+1).
  const int n = 50;
  std::vector<int> rows, cols;
  std::vector<double> vals;
  const double h = 1.0 / (n + 1);
  for (int i = 0; i < n; ++i) {
    rows.push_back(i);
    cols.push_back(i);
    vals.push_back(2.0 / (h * h));
    if (i > 0) {
      rows.push_back(i);
      cols.push_back(i - 1);
      vals.push_back(-1.0 / (h * h));
    }
    if (i < n - 1) {
      rows.push_back(i);
      cols.push_back(i + 1);
      vals.push_back(-1.0 / (h * h));
    }
  }
  const CsrMatrix m = CsrMatrix::from_triplets(n, rows, cols, vals);
  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const CgResult r = cg_solve(m, b, x);
  ASSERT_TRUE(r.converged);
  // Analytic: u(t) = t(1-t)/2; check mid-point.
  const double t_mid = (n / 2 + 1) * h;
  EXPECT_NEAR(x[static_cast<std::size_t>(n) / 2], t_mid * (1.0 - t_mid) / 2.0, 1e-4);
}

TEST(Sparse, CgSizeMismatchThrows) {
  const CsrMatrix m = CsrMatrix::from_triplets(2, {0, 1}, {0, 1}, {1.0, 1.0});
  std::vector<double> x(3, 0.0);
  EXPECT_THROW(cg_solve(m, {1.0, 2.0}, x), std::invalid_argument);
}

TEST(Sparse, CgWarmStartConvergesFaster) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, {0, 0, 1, 1}, {0, 1, 0, 1}, {4.0, 1.0, 1.0, 3.0});
  std::vector<double> cold(2, 0.0);
  const CgResult rc = cg_solve(m, {1.0, 2.0}, cold);
  std::vector<double> warm = cold;  // exact solution as the start
  const CgResult rw = cg_solve(m, {1.0, 2.0}, warm);
  EXPECT_LE(rw.iterations, rc.iterations);
}

}  // namespace
}  // namespace usys::fem
