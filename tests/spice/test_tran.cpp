// Transient integration accuracy: RC charging, LC oscillation, RLC ring-down,
// breakpoint handling, adaptive control, and both integration methods.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "api/api.hpp"
#include "common/constants.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

TEST(Tran, RcStepResponse) {
  // 1 V step into R=1k, C=1u: v(t) = 1 - exp(-t/tau), tau = 1 ms.
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround,
                   std::make_unique<PulseWave>(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-6);

  TranOptions opts;
  opts.tstop = 5e-3;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  for (double t : {1e-3, 2e-3, 4e-3}) {
    const double expected = 1.0 - std::exp(-t / 1e-3);
    EXPECT_NEAR(res.sample(t, out), expected, 2e-3) << "t=" << t;
  }
}

TEST(Tran, RcDischargeFromDcPoint) {
  // Start charged via the DC source at 2 V, then PWL drops the source to 0:
  // exercises the DC-initialized transient path.
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>(
      "V1", in, Circuit::kGround,
      std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 2.0}, {1e-6, 0.0}, {1.0, 0.0}}));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-6);

  TranOptions opts;
  opts.tstop = 3e-3;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(res.at(0, out), 2.0, 1e-5);  // DC point
  const double t = 2e-3;
  EXPECT_NEAR(res.sample(t, out), 2.0 * std::exp(-(t - 1e-6) / 1e-3), 5e-3);
}

TEST(Tran, LcOscillationFrequencyAndAmplitude) {
  // C charged via a 1 V source behind 1 mOhm, released into L: the series
  // V-R-C-L loop oscillates at f0 = 1/(2 pi sqrt(LC)) after the source
  // steps to 0.  Use an ideal LC tank kicked by a current pulse instead.
  Circuit ckt;
  const int n = ckt.add_node("n", Nature::electrical);
  ckt.add<ISource>("I1", Circuit::kGround, n,
                   std::make_unique<PulseWave>(0.0, 1e-3, 0.0, 1e-9, 1e-9, 1e-5));
  ckt.add<Capacitor>("C1", n, Circuit::kGround, 1e-6);
  ckt.add<Inductor>("L1", n, Circuit::kGround, 1e-3);

  TranOptions opts;
  opts.tstop = 1e-3;
  opts.dt_max = 2e-6;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;

  // Count zero crossings of v(n) to estimate the period.
  const auto v = res.signal(n);
  int crossings = 0;
  double first = -1.0;
  double last = -1.0;
  for (std::size_t k = 1; k < v.size(); ++k) {
    if (v[k - 1] < 0.0 && v[k] >= 0.0) {
      ++crossings;
      const double tc = res.time[k];
      if (first < 0) first = tc;
      last = tc;
    }
  }
  ASSERT_GE(crossings, 3);
  const double period = (last - first) / (crossings - 1);
  const double expected = 2.0 * kPi * std::sqrt(1e-3 * 1e-6);
  EXPECT_NEAR(period, expected, 0.02 * expected);
}

TEST(Tran, RlcDampedRingdownEnvelope) {
  // Series RLC driven by a step: underdamped response with known zeta.
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int mid = ckt.add_node("mid", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  const double r = 10.0;
  const double l = 1e-3;
  const double c = 1e-6;
  ckt.add<VSource>("V1", in, Circuit::kGround,
                   std::make_unique<PulseWave>(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0));
  ckt.add<Resistor>("R1", in, mid, r);
  ckt.add<Inductor>("L1", mid, out, l);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, c);

  TranOptions opts;
  opts.tstop = 2e-3;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;

  // Peak overshoot of v(out): 1 + exp(-pi zeta / sqrt(1 - zeta^2)).
  const double zeta = r / 2.0 * std::sqrt(c / l);
  double peak = 0.0;
  for (std::size_t k = 0; k < res.time.size(); ++k)
    peak = std::max(peak, res.at(k, out));
  const double expected_peak = 1.0 + std::exp(-kPi * zeta / std::sqrt(1.0 - zeta * zeta));
  EXPECT_NEAR(peak, expected_peak, 0.02);
}

TEST(Tran, BackwardEulerMatchesTrapezoidalOnSmoothRc) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround,
                   std::make_unique<SinWave>(0.0, 1.0, 100.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-7);

  TranOptions trap;
  trap.tstop = 10e-3;
  trap.method = IntegMethod::trapezoidal;
  TranOptions be = trap;
  be.method = IntegMethod::backward_euler;
  be.dt_max = 1e-5;  // BE is order 1: give it small steps

  const TranResult rt = api::transient(ckt, trap);
  ASSERT_TRUE(rt.ok) << rt.error;
  // Rebuild: devices hold no state between runs but circuits do get re-bound;
  // a fresh circuit keeps the comparison clean.
  Circuit ckt2;
  const int in2 = ckt2.add_node("in", Nature::electrical);
  const int out2 = ckt2.add_node("out", Nature::electrical);
  ckt2.add<VSource>("V1", in2, Circuit::kGround,
                    std::make_unique<SinWave>(0.0, 1.0, 100.0));
  ckt2.add<Resistor>("R1", in2, out2, 1e3);
  ckt2.add<Capacitor>("C1", out2, Circuit::kGround, 1e-7);
  const TranResult rb = api::transient(ckt2, be);
  ASSERT_TRUE(rb.ok) << rb.error;

  for (double t : {2e-3, 5e-3, 8e-3}) {
    EXPECT_NEAR(rt.sample(t, out), rb.sample(t, out2), 5e-3) << "t=" << t;
  }
}

TEST(Tran, BreakpointsAreHitExactly) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround,
                   std::make_unique<PulseWave>(0.0, 5.0, 1e-3, 1e-4, 1e-4, 2e-3));
  ckt.add<Resistor>("R1", in, Circuit::kGround, 1e3);
  TranOptions opts;
  opts.tstop = 5e-3;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  // The time axis must contain the pulse corners exactly.
  for (double corner : {1e-3, 1.1e-3, 3.1e-3, 3.2e-3}) {
    bool found = false;
    for (double t : res.time) {
      if (std::abs(t - corner) < 1e-12) found = true;
    }
    EXPECT_TRUE(found) << "missing breakpoint " << corner;
  }
}

TEST(Tran, StateIntegratorIntegratesVelocity) {
  // disp = integral of a 1 V-equivalent constant: ramp.
  Circuit ckt;
  const int v = ckt.add_node("v", Nature::electrical);
  const int d = ckt.add_node("d", Nature::electrical);
  ckt.add<VSource>("V1", v, Circuit::kGround, 2.0);
  ckt.add<StateIntegrator>("X1", d, v);
  TranOptions opts;
  opts.tstop = 1.0;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(res.sample(0.5, d), 1.0, 1e-6);
  EXPECT_NEAR(res.sample(1.0, d), 2.0, 1e-6);
}

TEST(Tran, SampleAndSignalOutOfRangeContract) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround,
                   std::make_unique<PulseWave>(0.0, 1.0, 0.0, 1e-5, 1e-5, 1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-8);
  TranOptions opts;
  opts.tstop = 1e-4;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_GE(res.time.size(), 2u);

  // t out of range clamps to the nearest accepted point — exactly.
  EXPECT_EQ(res.sample(-1.0, out), res.at(0, out));
  EXPECT_EQ(res.sample(res.time.front(), out), res.at(0, out));
  EXPECT_EQ(res.sample(2.0 * opts.tstop, out), res.at(res.time.size() - 1, out));
  // NaN time yields NaN, not an arbitrary point.
  EXPECT_TRUE(std::isnan(res.sample(std::nan(""), out)));

  // Negative unknown is the ground reference: always 0.
  EXPECT_EQ(res.sample(opts.tstop / 2, -1), 0.0);
  EXPECT_EQ(res.at(0, Circuit::kGround), 0.0);
  const auto ground = res.signal(-1);
  ASSERT_EQ(ground.size(), res.time.size());
  for (double g : ground) EXPECT_EQ(g, 0.0);

  // Unknown index past the vector throws instead of reading out of range.
  const int bogus = ckt.unknown_count();
  EXPECT_THROW(res.sample(opts.tstop / 2, bogus), std::out_of_range);
  EXPECT_THROW(res.at(0, bogus), std::out_of_range);
  EXPECT_THROW(res.signal(bogus), std::out_of_range);
  EXPECT_THROW(res.at(res.x.size(), out), std::out_of_range);

  // An empty result (failed run) samples to 0 everywhere.
  TranResult empty;
  EXPECT_EQ(empty.sample(0.5, 0), 0.0);
  EXPECT_TRUE(empty.signal(0).empty());
}

TEST(Tran, AdaptiveUsesFewerStepsThanFixed) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround,
                   std::make_unique<PulseWave>(0.0, 1.0, 1e-3, 1e-5, 1e-5, 1e-3));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-8);
  TranOptions fixed;
  fixed.tstop = 10e-3;
  fixed.adaptive = false;
  fixed.dt_init = 1e-6;
  const TranResult rf = api::transient(ckt, fixed);
  ASSERT_TRUE(rf.ok);

  Circuit ckt2;
  const int in2 = ckt2.add_node("in", Nature::electrical);
  const int out2 = ckt2.add_node("out", Nature::electrical);
  ckt2.add<VSource>("V1", in2, Circuit::kGround,
                    std::make_unique<PulseWave>(0.0, 1.0, 1e-3, 1e-5, 1e-5, 1e-3));
  ckt2.add<Resistor>("R1", in2, out2, 1e3);
  ckt2.add<Capacitor>("C1", out2, Circuit::kGround, 1e-8);
  TranOptions adaptive;
  adaptive.tstop = 10e-3;
  const TranResult ra = api::transient(ckt2, adaptive);
  ASSERT_TRUE(ra.ok);
  EXPECT_LT(ra.time.size(), rf.time.size() / 2);
}

}  // namespace
}  // namespace usys::spice
