// Newton-Raphson kernel shared by the DC and transient analyses.
//
// Solves F(x) = f(x) + a0*q(x) + hist = 0 with J = Jf + a0*Jq, where the
// caller chooses a0/hist (a0 = 0, hist = 0 recovers DC). Robustness aids:
// diagonal gmin on node rows, per-unknown weighted convergence (reltol +
// nature-dependent abstol), step limiting, and — for hard DC points —
// gmin stepping and source stepping continuation.
//
// Two matrix backends share the stamp contract:
//   * sparse (default above a crossover size): pattern-cached MNA assembly
//     (spice/mna.hpp) into flat CSR value arrays + SparseLu whose symbolic
//     factorization is computed once and reused across all iterations and
//     timesteps (the pattern is fixed after bind).
//   * dense: the original n x n path, kept for small systems (lower
//     constant factors) and as the oracle the sparse path is tested
//     against.
#pragma once

#include <memory>

#include "common/deadline.hpp"
#include "common/partition.hpp"
#include "common/sparse_lu.hpp"
#include "common/status.hpp"
#include "spice/circuit.hpp"
#include "spice/mna.hpp"

namespace usys::spice {

/// Jacobian storage / factorization backend selection.
enum class MatrixBackend {
  auto_select,  ///< sparse when the pattern is complete and n >= sparse_threshold
  dense,        ///< force the dense path
  sparse,       ///< force sparse (falls back to dense on incomplete patterns)
};

/// Island/Schur decomposition policy for the sparse backend
/// (common/partition.hpp; docs/partitioning.md).
enum class PartitionMode {
  off,   ///< always the monolithic factorization (the default)
  auto_mode,  ///< partition when the compiled pattern has usable island
              ///< structure; decline or a singular block falls back to the
              ///< monolithic path automatically
};

struct NewtonOptions {
  int max_iters = 100;
  double reltol = 1e-6;
  double gmin = 1e-12;        ///< always-on diagonal conductance on node rows
  double damping_limit = 0.0; ///< max |dx| per iteration per unknown; 0 = off
  MatrixBackend backend = MatrixBackend::auto_select;
  /// auto_select crossover (unknown count). Measured with
  /// `bench_solver_scaling --benchmark_filter='/(8|12|20)$'` on both bench
  /// topologies: dense still wins at n=8 (lower constant factors), the two
  /// backends break even around n~10-14, and sparse is ahead by ~1.6x at
  /// n=20 — so the default sits at the middle of the measured break-even
  /// band. Re-measure per platform when tuning.
  int sparse_threshold = 12;
  /// Threads for the sparse MNA assembly pass (spice/mna.hpp): 1 = serial,
  /// 0 = auto (hardware concurrency), N = exactly N. The parallel pass is
  /// deterministic — bit-identical to serial for any thread count. Only the
  /// sparse backend parallelizes; the dense path ignores this.
  int assembly_threads = 1;
  /// Threads for the level-scheduled sparse triangular solves
  /// (common/sparse_lu.hpp): same semantics as assembly_threads, same
  /// guarantee (bit-identical to serial for any thread count), same scope
  /// (sparse backend only). Assembly and solve share one thread pool.
  int solve_threads = 1;
  /// Threads for the level-scheduled parallel numeric refactorization
  /// (common/sparse_lu.hpp): same semantics and bit-identity guarantee as
  /// solve_threads, same scope (sparse backend only), same shared pool.
  /// Refactorization dominates each Newton iteration once assembly and
  /// solve are parallel, so this is usually the knob that pays most.
  int refactor_threads = 1;
  /// Island/Schur decomposition of the sparse system (docs/partitioning.md).
  /// auto_mode partitions weakly-coupled circuits (e.g. transducer arrays)
  /// into independently factored blocks plus a small dense interface and
  /// falls back to the monolithic factorization when the pattern has no
  /// usable structure or a block turns singular. Partitioned results match
  /// monolithic to solver tolerance but are not bit-identical to it (the
  /// monolithic factorization pivots globally); across thread counts the
  /// partitioned path itself IS bit-identical.
  PartitionMode partition = PartitionMode::off;
  /// Fill-reducing ordering for the sparse LU. AMD is the default; the
  /// simple min-degree variant remains selectable as the quality baseline
  /// (bench_solver_scaling compares the two).
  LuOrdering ordering = LuOrdering::amd;
  /// Wall-clock budget for the WHOLE analysis this options object drives
  /// (run_dc including its rescue ladder; run_tran including its initial
  /// operating point; run_ac including its sweep). 0 = unlimited. On expiry
  /// the analysis stops at the next poll — Newton iteration boundary,
  /// transient step boundary, or sparse factor/solve dispatch — and reports
  /// FailureKind::timeout. usim exposes this as --timeout (milliseconds).
  double timeout_ms = 0.0;
  /// Optional cooperative cancel token (non-owning; must outlive the run).
  /// Polled at the same sites as the timeout; firing reports
  /// FailureKind::cancelled. This is the server-mode kill switch.
  const CancelToken* cancel = nullptr;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double final_error = 0.0;  ///< max weighted update of the last iteration
  bool used_sparse = false;
  /// Full (pivot-searching) sparse factorizations this solver has run in
  /// total — stays at 1 across all iterations/timesteps of an analysis
  /// while the pattern and pivot order hold. 0 on the dense path.
  int symbolic_factorizations = 0;
  /// Why the solve stopped when converged is false: singular_matrix,
  /// newton_divergence (stall / max iters / non-finite update), timeout, or
  /// cancelled. none while converged.
  FailureKind failure = FailureKind::none;
};

/// One Newton solve at fixed (a0, hist, ctx template). `ctx_proto` supplies
/// mode/time/integ coefficients; x is the initial guess and the result.
class NewtonSolver {
 public:
  NewtonSolver(Circuit& circuit, NewtonOptions opts);

  /// hist may be empty (treated as zero).
  NewtonResult solve(EvalCtx ctx_proto, double a0, const DVector& hist, DVector& x);

  /// Evaluates f, q, Jf, Jq at x into dense matrices (single stamp pass;
  /// the AC dense path linearizes through this, and tests use it as the
  /// oracle). Includes the gmin contribution on node rows.
  void stamp(EvalCtx ctx_proto, const DVector& x, DVector& f, DVector& q, DMatrix& jf,
             DMatrix& jq);

  /// Evaluates f and q only; all Jacobian stamps are discarded. This is the
  /// cheap q-harvest the transient uses between steps — no n x n storage.
  void stamp_values(EvalCtx ctx_proto, const DVector& x, DVector& f, DVector& q);

  /// True when this solver assembles and factors sparsely.
  bool sparse_active() const noexcept { return assembler_ != nullptr; }

  /// Sparse assembly at x (f, q, and the flat Jf/Jq values retrievable via
  /// sparse_jf/sparse_jq), including gmin. Requires sparse_active(); the AC
  /// path linearizes through this.
  void assemble_sparse(EvalCtx ctx_proto, const DVector& x, DVector& f, DVector& q);
  const MnaPattern* pattern() const noexcept {
    return assembler_ ? &assembler_->pattern() : nullptr;
  }
  const std::vector<double>& sparse_jf() const { return assembler_->jf_values(); }
  const std::vector<double>& sparse_jq() const { return assembler_->jq_values(); }

  int symbolic_factorizations() const noexcept {
    return plu_ ? plu_->symbolic_factorizations() : lu_.symbolic_factorizations();
  }

  /// True while the island/Schur path is live (partition == auto_mode, the
  /// partitioner accepted the pattern, and no block has gone singular).
  bool partition_active() const noexcept { return plu_ != nullptr; }

  /// The partitioner's verdict on the compiled pattern (plan().ok == false
  /// carries the decline reason). Only meaningful with partition ==
  /// auto_mode on the sparse backend.
  const PartitionPlan& partition_plan() const noexcept { return plan_; }

  /// The pool shared by parallel assembly and the threaded triangular
  /// solves; null when both are serial (or on the dense path). The AC sweep
  /// borrows it for the complex per-frequency solves, so one solver means
  /// one pool across every analysis.
  ThreadPool* shared_pool() const noexcept { return pool_.get(); }

  /// Drops the sparse LU's recorded pivot order (no-op on the dense path),
  /// so the next solve pivots afresh. The engine calls this at the DC ->
  /// transient boundary: the transient matrix Jf + a0*Jq is a different
  /// numerical regime, and a fresh pivot search there reproduces the
  /// legacy fresh-solver-per-analysis behavior bit for bit.
  void refresh_pivot_order() noexcept {
    lu_.invalidate_pivot_order();
    if (plu_) plu_->invalidate_pivot_order();
  }

  /// Adjusts the diagonal gmin in place, so one solver — and its single
  /// symbolic factorization — serves every stage of the gmin-stepping
  /// continuation.
  void set_gmin(double gmin) noexcept { opts_.gmin = gmin; }

  /// Borrows the analysis-scope deadline (non-owning; null = none). Checked
  /// at every Newton iteration boundary and forwarded into the sparse LU's
  /// factor/solve dispatch. The engine clears it when the analysis returns
  /// (the deadline lives on the analysis call's stack).
  void set_deadline(const Deadline* deadline) noexcept {
    deadline_ = deadline;
    lu_.set_deadline(deadline);
    if (plu_) plu_->set_deadline(deadline);
  }

  /// Re-tunes the iteration controls (max_iters, reltol, gmin,
  /// damping_limit) without touching the allocated backend, so one solver —
  /// and its compiled pattern and symbolic factorization — can serve
  /// several analyses with different convergence settings. The caller must
  /// keep the backend-selection fields (backend, sparse_threshold,
  /// assembly_threads, solve_threads, refactor_threads, partition,
  /// ordering) unchanged; compare with same_backend_config first.
  void retune(const NewtonOptions& opts) noexcept {
    opts_.max_iters = opts.max_iters;
    opts_.reltol = opts.reltol;
    opts_.gmin = opts.gmin;
    opts_.damping_limit = opts.damping_limit;
    opts_.timeout_ms = opts.timeout_ms;
    opts_.cancel = opts.cancel;
  }

  /// True when `a` and `b` would build the same solver backend (the fields
  /// retune() cannot change).
  static bool same_backend_config(const NewtonOptions& a, const NewtonOptions& b) noexcept {
    return a.backend == b.backend && a.sparse_threshold == b.sparse_threshold &&
           a.assembly_threads == b.assembly_threads &&
           a.solve_threads == b.solve_threads &&
           a.refactor_threads == b.refactor_threads && a.partition == b.partition &&
           a.ordering == b.ordering;
  }

 private:
  Circuit& circuit_;
  NewtonOptions opts_;
  // Scratch, reused across iterations to avoid reallocations.
  DVector f_, q_, resid_, dx_;
  DMatrix jf_, jq_, jacobian_;          // dense backend only
  // One pool serves both the parallel assembly and the threaded triangular
  // solves (sized for the larger of the two requests); null when both are
  // serial. Declared before the assembler/LU that borrow it.
  std::unique_ptr<ThreadPool> pool_;         // sparse backend only
  std::unique_ptr<MnaAssembler> assembler_;  // sparse backend only
  DSparseLu lu_;
  // Island/Schur path (sparse backend, partition == auto_mode, plan ok).
  // plu_ is reset permanently if a block factorization turns singular —
  // the monolithic lu_ (analyzed up front as the fallback) takes over.
  PartitionPlan plan_;
  std::unique_ptr<DPartitionedLu> plu_;
  std::vector<double> jac_vals_;
  const Deadline* deadline_ = nullptr;  ///< non-owning; see set_deadline
};

/// Full DC operating point with gmin/source stepping fallbacks.
struct DcOptions {
  NewtonOptions newton;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
};

struct DcResult {
  bool converged = false;
  DVector x;
  int total_newton_iters = 0;
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;
  bool used_sparse = false;
  int symbolic_factorizations = 0;  ///< see NewtonResult
  /// Structured failure when converged is false (kind carries the LAST
  /// stage's verdict; rescue_attempts counts the ladder strategies tried:
  /// gmin stepping and source stepping each count one). ok() when converged.
  FailureInfo failure;
};

/// Deprecated: call usys::api::solve_dc (api/api.hpp); the wrapper forwards
/// to the facade (defined in analysis.cpp beside its siblings).
[[deprecated("use usys::api::solve_dc (api/api.hpp)")]]
DcResult solve_dc(Circuit& circuit, const DcOptions& opts = {});

}  // namespace usys::spice
