#include "common/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/fault_inject.hpp"

namespace usys {
namespace {

template <typename T>
double magnitude(const T& x) {
  if constexpr (std::is_same_v<T, double>) {
    return std::abs(x);
  } else {
    return std::abs(x);  // std::abs(complex) = modulus
  }
}

template <typename T>
void lu_solve_impl(Matrix<T>& a, std::vector<T>& b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n && b.size() == n);
  if (USYS_FAULT_POINT("dense_lu.singular")) throw SingularMatrixError(0);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the row with the largest magnitude in column k.
    std::size_t pivot = k;
    double best = magnitude(a(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = magnitude(a(r, k));
      if (m > best) {
        best = m;
        pivot = r;
      }
    }
    if (best < 1e-300) throw SingularMatrixError(k);
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(pivot, c));
      std::swap(b[k], b[pivot]);
    }
    const T inv_pivot = T(1) / a(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const T factor = a(r, k) * inv_pivot;
      if (factor == T{}) continue;
      a(r, k) = T{};
      for (std::size_t c = k + 1; c < n; ++c) a(r, c) -= factor * a(k, c);
      b[r] -= factor * b[k];
    }
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    T sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a(i, c) * b[c];
    b[i] = sum / a(i, i);
  }
}

}  // namespace

void lu_solve(DMatrix& a, DVector& b) { lu_solve_impl(a, b); }
void lu_solve(ZMatrix& a, ZVector& b) { lu_solve_impl(a, b); }

DVector least_squares(const DMatrix& a, const DVector& b, double damping) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  assert(b.size() == m);
  DMatrix ata(n, n);
  DVector atb(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < m; ++r) s += a(r, i) * a(r, j);
      ata(i, j) = s;
    }
    double s = 0.0;
    for (std::size_t r = 0; r < m; ++r) s += a(r, i) * b[r];
    atb[i] = s;
  }
  if (damping > 0.0) {
    for (std::size_t i = 0; i < n; ++i) ata(i, i) += damping;
  }
  lu_solve(ata, atb);
  return atb;
}

double norm2(const DVector& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(const DVector& v) {
  double s = 0.0;
  for (double x : v) s = std::max(s, std::abs(x));
  return s;
}

DVector subtract(const DVector& a, const DVector& b) {
  assert(a.size() == b.size());
  DVector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double dot(const DVector& a, const DVector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace usys
