// Structured failure taxonomy shared by every analysis layer.
//
// The solver, engine, sweep runner, and CLI used to report failure through
// ad-hoc strings ("transient: step underflow at t=...") that callers could
// neither branch on nor aggregate. FailureInfo replaces them with a typed
// record: a machine-readable kind plus the context a batch driver needs to
// decide what to do next (retry with escalated rescue options, skip the
// point, abort the shard). The strings remain — FailureInfo::to_string()
// renders the same human-readable one-liner the logs always carried — but
// they are now derived from the record instead of being the record.
//
// Kinds are closed-world on purpose: sweep checkpoints serialize them by
// name (spice/checkpoint.hpp), so renaming or removing a kind is a
// checkpoint-format change (see docs/robustness.md).
#pragma once

#include <limits>
#include <string>
#include <string_view>

namespace usys {

/// What ended an analysis early. `none` means success.
enum class FailureKind : int {
  none = 0,
  singular_matrix,     ///< no acceptable pivot (LU factorization failed)
  newton_divergence,   ///< Newton did not converge (stall, max iters, non-finite)
  step_underflow,      ///< transient step control fell below dt_min
  max_steps_exceeded,  ///< transient hit TranOptions::max_steps
  timeout,             ///< wall-clock deadline (NewtonOptions::timeout_ms) expired
  cancelled,           ///< cooperative cancel token fired
  codegen_fallback,    ///< native HDL codegen unavailable; ran on the bytecode VM
  assert_violation,    ///< an HDL ASSERT boundary condition fired
  alloc_failure,       ///< allocation failure (std::bad_alloc) inside an analysis
  internal_error,      ///< unexpected exception captured at an isolation boundary
  lint_rejected,       ///< static pre-solve diagnostics found an error-severity defect
};

/// Stable lower-case name ("singular-matrix", ...). Never returns null.
const char* to_string(FailureKind kind) noexcept;

/// Inverse of to_string; false (and *out untouched) for unknown names.
bool failure_kind_from_string(std::string_view name, FailureKind& out) noexcept;

/// One failure record: the kind plus where the analysis was when it died.
/// Default-constructed means "no failure" (kind == none, ok() == true).
struct FailureInfo {
  FailureKind kind = FailureKind::none;
  std::string analysis;  ///< "dc", "tran", "ac", "sweep", "codegen", ...
  /// Transient time point or AC frequency at failure; NaN when not applicable.
  double time = std::numeric_limits<double>::quiet_NaN();
  int iteration = -1;       ///< Newton iterations spent when it failed; -1 = n/a
  int rescue_attempts = 0;  ///< DC rescue-ladder strategies attempted (gmin, source)
  std::string detail;       ///< free-text context (site, stage, message)

  bool ok() const noexcept { return kind == FailureKind::none; }

  /// Human-readable one-liner, e.g.
  /// "tran: timeout at t=1.25e-05 (iters=7, rescue_attempts=0): deadline expired".
  std::string to_string() const;
};

/// Failure with the given kind and context (convenience builder).
FailureInfo make_failure(FailureKind kind, std::string analysis, std::string detail = "",
                         double time = std::numeric_limits<double>::quiet_NaN(),
                         int iteration = -1, int rescue_attempts = 0);

}  // namespace usys
