// Linearized equivalent-circuit model: coefficient derivation and the
// exact-at-bias / wrong-off-bias behavior the paper's Fig. 5 demonstrates.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "core/resonator_system.hpp"
#include "spice/analysis.hpp"

namespace usys::core {
namespace {

TEST(Linearized, CoefficientsAtPaperBias) {
  ResonatorParams p;
  const LinearizedCoefficients k = linearize_transverse(p, {});
  EXPECT_NEAR(k.c0, bias_capacitance(p), 1e-18);
  EXPECT_NEAR(k.gamma, gamma_secant(p), 1e-18);
  EXPECT_LT(k.x0, 0.0);
  EXPECT_LT(k.f0, 0.0);
  EXPECT_DOUBLE_EQ(k.k_soft, 0.0);
}

TEST(Linearized, TangentOptionDoublesGamma) {
  ResonatorParams p;
  LinearizationOptions tangent;
  tangent.gamma = GammaKind::tangent;
  const LinearizedCoefficients kt = linearize_transverse(p, tangent);
  const LinearizedCoefficients ks = linearize_transverse(p, {});
  EXPECT_NEAR(kt.gamma / ks.gamma, 2.0, 1e-9);
}

TEST(Linearized, SpringSofteningPositive) {
  ResonatorParams p;
  LinearizationOptions o;
  o.include_spring_softening = true;
  const LinearizedCoefficients k = linearize_transverse(p, o);
  EXPECT_GT(k.k_soft, 0.0);
  // k_e = eps A V0^2/(d+x0)^3 ~ 2.62e-2 N/m for Table 4 values.
  EXPECT_NEAR(k.k_soft, 2.62e-2, 0.02e-2);
}

TEST(Linearized, StaticDeflectionExactAtBias) {
  // Driven at exactly V0 the secant-linearized model settles to the same
  // displacement as the non-linear model ("converge perfectly for a
  // quasi-static load of 10 V").
  ResonatorParams p;
  auto drive = [] {
    return std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
        {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}});
  };
  auto lin = build_resonator_system(p, TransducerModelKind::linearized, drive());
  auto nonlin = build_resonator_system(p, TransducerModelKind::behavioral, drive());
  spice::TranOptions opts;
  opts.tstop = 80e-3;
  const auto rl = api::transient(*lin.circuit, opts);
  const auto rn = api::transient(*nonlin.circuit, opts);
  ASSERT_TRUE(rl.ok && rn.ok);
  const double xl = rl.sample(80e-3, lin.node_disp);
  const double xn = rn.sample(80e-3, nonlin.node_disp);
  EXPECT_NEAR(xl / xn, 1.0, 0.01);
}

class OffBias : public ::testing::TestWithParam<double> {};

TEST_P(OffBias, LinearModelWrongByVOverV0) {
  // F_lin/F_true = (Gamma_sec*V)/(Gamma_sec*V^2/V0) = V0/V: overshoot
  // below the bias, undershoot above it — the paper's Fig. 5 observation.
  ResonatorParams p;
  const double v = GetParam();
  auto drive = [v] {
    return std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
        {0.0, 0.0}, {5e-3, v}, {1.0, v}});
  };
  auto lin = build_resonator_system(p, TransducerModelKind::linearized, drive());
  auto nonlin = build_resonator_system(p, TransducerModelKind::behavioral, drive());
  spice::TranOptions opts;
  opts.tstop = 80e-3;
  const auto rl = api::transient(*lin.circuit, opts);
  const auto rn = api::transient(*nonlin.circuit, opts);
  ASSERT_TRUE(rl.ok && rn.ok);
  const double xl = rl.sample(80e-3, lin.node_disp);
  const double xn = rn.sample(80e-3, nonlin.node_disp);
  EXPECT_NEAR(xl / xn, 10.0 / v, 0.05 * 10.0 / v);
  if (v < 10.0) {
    EXPECT_GT(std::abs(xl), std::abs(xn));  // overshoot
  } else if (v > 10.0) {
    EXPECT_LT(std::abs(xl), std::abs(xn));  // undershoot
  }
}

INSTANTIATE_TEST_SUITE_P(PulseLevels, OffBias, ::testing::Values(5.0, 15.0));

TEST(Linearized, CouplingIsPowerConserving) {
  // Drive the linearized transducer with a sine and integrate electrical
  // input vs mechanical output + stored energy over one period: the
  // coupling itself must not create energy.
  ResonatorParams p;
  auto sys = build_resonator_system(
      p, TransducerModelKind::linearized,
      std::make_unique<spice::SinWave>(5.0, 2.0, 225.0));
  spice::TranOptions opts;
  opts.tstop = 40e-3;
  opts.dt_max = 2e-5;
  const auto res = api::transient(*sys.circuit, opts);
  ASSERT_TRUE(res.ok) << res.error;
  // The system is passive: displacement must stay bounded by a few times
  // the static deflection at the peak drive (no runaway from sign errors).
  double worst = 0.0;
  for (std::size_t k = 0; k < res.time.size(); ++k)
    worst = std::max(worst, std::abs(res.at(k, sys.node_disp)));
  const double bound = 10.0 * std::abs(static_displacement_transverse(p, 7.0));
  EXPECT_LT(worst, bound);
}

}  // namespace
}  // namespace usys::core
