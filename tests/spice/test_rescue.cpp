// Failure taxonomy end to end: every FailureKind an analysis can report is
// reachable here — through real inputs where possible (timeouts, cancel,
// max_steps, ASSERT) and through the deterministic fault-injection harness
// (USYS_FAULT_INJECT builds) for the paths no ordinary input reaches on
// demand: the DC rescue ladder, step underflow, singular pivots, the codegen
// fallback, and allocation failure inside the sweep isolation boundary.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "api/api.hpp"
#include "common/fault_inject.hpp"
#include "hdl/interpreter.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"
#include "spice/sweep.hpp"

namespace usys::spice {
namespace {

class RescueTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

/// 10 V across two 1 k resistors: plain Newton converges in a couple of
/// iterations, so any non-convergence here is injected, never numerical.
int build_divider(Circuit& ckt) {
  const int in = ckt.add_node("in", Nature::electrical);
  const int mid = ckt.add_node("mid", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, 10.0);
  ckt.add<Resistor>("R1", in, mid, 1e3);
  ckt.add<Resistor>("R2", mid, Circuit::kGround, 1e3);
  return mid;
}

/// RC lowpass (tau = 1 ms) for the transient failure paths.
int build_rc(Circuit& ckt) {
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, 1.0);
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-6);
  return out;
}

// ---------------------------------------------------------------------------
// Real-input failure paths (every build)
// ---------------------------------------------------------------------------

TEST_F(RescueTest, DcTimeoutReportsStructuredFailure) {
  Circuit ckt;
  build_divider(ckt);
  DcOptions opts;
  opts.newton.timeout_ms = 1e-6;  // expired by the first iteration poll
  const OpResult op = api::operating_point(ckt, opts);
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.failure.kind, FailureKind::timeout);
  EXPECT_EQ(op.failure.analysis, "dc");
  // A hard stop must not burn time on the rescue ladder.
  EXPECT_EQ(op.failure.rescue_attempts, 0);
  EXPECT_NE(op.failure.detail.find("plain newton"), std::string::npos);
}

TEST_F(RescueTest, CancelTokenStopsDcAsCancelled) {
  Circuit ckt;
  build_divider(ckt);
  CancelToken token;
  token.cancel();  // pre-cancelled: the first poll sees it
  DcOptions opts;
  opts.newton.cancel = &token;
  const OpResult op = api::operating_point(ckt, opts);
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.failure.kind, FailureKind::cancelled);
  EXPECT_EQ(op.failure.rescue_attempts, 0);
}

TEST_F(RescueTest, CancelTokenStopsTransient) {
  Circuit ckt;
  build_rc(ckt);
  CancelToken token;
  token.cancel();
  TranOptions opts;
  opts.tstop = 5e-3;
  opts.newton.cancel = &token;
  const TranResult res = api::transient(ckt, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failure.kind, FailureKind::cancelled);
  EXPECT_EQ(res.failure.analysis, "tran");
  EXPECT_EQ(res.error, res.failure.to_string());
}

TEST_F(RescueTest, MaxStepsCeilingEndsTransientStructurally) {
  Circuit ckt;
  const int out = build_rc(ckt);
  TranOptions opts;
  opts.tstop = 5e-3;
  opts.max_steps = 3;
  const TranResult res = api::transient(ckt, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failure.kind, FailureKind::max_steps_exceeded);
  EXPECT_NE(res.error.find("max-steps-exceeded"), std::string::npos);
  // The points computed before the ceiling are kept, not discarded.
  EXPECT_FALSE(res.time.empty());
  EXPECT_LE(res.time.size(), 4u);
  EXPECT_NO_THROW(res.sample(res.time.back(), out));
}

TEST_F(RescueTest, MaxStepsZeroDisablesTheCeiling) {
  Circuit ckt;
  build_rc(ckt);
  TranOptions opts;
  opts.tstop = 5e-3;
  opts.max_steps = 0;
  const TranResult res = api::transient(ckt, opts);
  EXPECT_TRUE(res.ok) << res.error;
}

TEST_F(RescueTest, FailOnAssertTurnsBoundaryViolationIntoFailure) {
  // A boundary-condition guard that a voltage ramp deterministically
  // violates mid-run (V crosses 1 at t = 0.5 ms). Default policy warns and
  // keeps integrating; with fail_on_assert the run ends with a
  // machine-readable verdict at the offending step.
  const char* model = R"(
ENTITY guard IS
  GENERIC (vmax : analog);
  PIN (a, b : electrical);
END ENTITY guard;
ARCHITECTURE x OF guard IS
  STATE V : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      V := [a, b].v;
      ASSERT vmax - V;
      [a, b].i %= 1e-9*V;
  END RELATION;
END ARCHITECTURE x;
)";
  const auto build = [&model](Circuit& ckt) {
    const int drive = ckt.add_node("drive", Nature::electrical);
    ckt.add<VSource>("V1", drive, Circuit::kGround,
                     std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
                         {0.0, 0.0}, {1e-3, 2.0}, {1.0, 2.0}}));
    ckt.add_device(hdl::instantiate("XG", model, "guard", {{"vmax", 1.0}},
                                    {drive, Circuit::kGround}));
  };
  TranOptions opts;
  opts.tstop = 1e-3;
  opts.fail_on_assert = true;
  {
    Circuit ckt;
    build(ckt);
    const TranResult res = api::transient(ckt, opts);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.failure.kind, FailureKind::assert_violation);
    EXPECT_EQ(res.failure.analysis, "tran");
    EXPECT_GT(res.failure.time, 0.0);  // fired mid-run, not at the OP
    EXPECT_LT(res.failure.time, 1e-3);
    EXPECT_FALSE(res.time.empty());    // the prefix up to the violation is kept
    EXPECT_NE(res.error.find("ASSERT"), std::string::npos);
  }
  {
    // Historical default: the same violation only warns; the run completes.
    Circuit ckt;
    build(ckt);
    opts.fail_on_assert = false;
    const TranResult res = api::transient(ckt, opts);
    EXPECT_TRUE(res.ok) << res.error;
  }
}

// ---------------------------------------------------------------------------
// Injected failure paths (USYS_FAULT_INJECT builds)
// ---------------------------------------------------------------------------

#define REQUIRE_FAULT_BUILD() \
  if (!fault::compiled_in()) GTEST_SKIP() << "needs -DUSYS_FAULT_INJECT=ON"

TEST_F(RescueTest, GminSteppingRescuesInjectedStall) {
  REQUIRE_FAULT_BUILD();
  Circuit ckt;
  const int mid = build_divider(ckt);
  fault::arm("newton.stall", 1, 1);  // plain Newton fails; the ladder is clean
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged) << op.failure.to_string();
  EXPECT_TRUE(op.used_gmin_stepping);
  EXPECT_FALSE(op.used_source_stepping);
  EXPECT_TRUE(op.failure.ok());
  EXPECT_NEAR(op.at(mid), 5.0, 1e-6);
  EXPECT_EQ(fault::fired("newton.stall"), 1);
}

TEST_F(RescueTest, SourceSteppingRescuesWhenGminIsDisabled) {
  REQUIRE_FAULT_BUILD();
  Circuit ckt;
  const int mid = build_divider(ckt);
  DcOptions opts;
  opts.allow_gmin_stepping = false;
  fault::arm("newton.stall", 1, 1);
  const OpResult op = api::operating_point(ckt, opts);
  ASSERT_TRUE(op.converged) << op.failure.to_string();
  EXPECT_TRUE(op.used_source_stepping);
  EXPECT_FALSE(op.used_gmin_stepping);
  EXPECT_NEAR(op.at(mid), 5.0, 1e-6);
}

TEST_F(RescueTest, WholeLadderFailingReportsDivergenceWithRescueCount) {
  REQUIRE_FAULT_BUILD();
  Circuit ckt;
  build_divider(ckt);
  fault::arm("newton.stall", 1, -1);  // every solve stalls, forever
  const OpResult op = api::operating_point(ckt);
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.failure.kind, FailureKind::newton_divergence);
  EXPECT_EQ(op.failure.analysis, "dc");
  EXPECT_EQ(op.failure.rescue_attempts, 2);  // gmin stepping AND source stepping tried
  EXPECT_NE(op.failure.detail.find("source stepping"), std::string::npos);
}

TEST_F(RescueTest, DisabledLadderFailsWithoutRescueAttempts) {
  REQUIRE_FAULT_BUILD();
  Circuit ckt;
  build_divider(ckt);
  DcOptions opts;
  opts.allow_gmin_stepping = false;
  opts.allow_source_stepping = false;
  fault::arm("newton.stall", 1, -1);
  const OpResult op = api::operating_point(ckt, opts);
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.failure.rescue_attempts, 0);
  EXPECT_NE(op.failure.detail.find("plain newton"), std::string::npos);
}

TEST_F(RescueTest, PersistentStallDrivesTransientStepUnderflow) {
  REQUIRE_FAULT_BUILD();
  Circuit ckt;
  build_rc(ckt);
  // Hit 1 is the initial operating point's plain-Newton solve (succeeds);
  // every transient step solve after it stalls, so the stepper halves h
  // until it falls below dt_min.
  fault::arm("newton.stall", 2, -1);
  TranOptions opts;
  opts.tstop = 5e-3;
  const TranResult res = api::transient(ckt, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failure.kind, FailureKind::step_underflow);
  EXPECT_EQ(res.failure.analysis, "tran");
  EXPECT_NE(res.failure.detail.find("dt_min"), std::string::npos);
  EXPECT_GT(res.rejected_steps, 0);
}

TEST_F(RescueTest, InjectedDeadlineExpiryTimesOutWithoutWaiting) {
  REQUIRE_FAULT_BUILD();
  Circuit ckt;
  build_rc(ckt);
  TranOptions opts;
  opts.tstop = 5e-3;
  opts.newton.timeout_ms = 3.6e6;  // an hour — only the injection can expire it
  fault::arm("deadline.expire", 1, -1);
  const TranResult res = api::transient(ckt, opts);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failure.kind, FailureKind::timeout);
  EXPECT_EQ(res.failure.analysis, "tran");
  EXPECT_GE(fault::fired("deadline.expire"), 1);
}

TEST_F(RescueTest, InjectedDenseSingularityReportsSingularMatrix) {
  REQUIRE_FAULT_BUILD();
  Circuit ckt;
  build_divider(ckt);  // small n: the dense backend is selected
  fault::arm("dense_lu.singular", 1, -1);
  const OpResult op = api::operating_point(ckt);
  EXPECT_FALSE(op.converged);
  EXPECT_FALSE(op.used_sparse);
  EXPECT_EQ(op.failure.kind, FailureKind::singular_matrix);
  EXPECT_EQ(op.failure.rescue_attempts, 2);  // the ladder ran and failed too
}

TEST_F(RescueTest, InjectedSparseSingularityReportsSingularMatrix) {
  REQUIRE_FAULT_BUILD();
  // A resistor chain long enough for the sparse backend.
  Circuit ckt;
  std::vector<int> nodes;
  for (int i = 0; i < 16; ++i)
    nodes.push_back(ckt.add_node("n" + std::to_string(i), Nature::electrical));
  ckt.add<VSource>("V1", nodes[0], Circuit::kGround, 1.0);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
    ckt.add<Resistor>("R" + std::to_string(i), nodes[i], nodes[i + 1], 100.0);
  ckt.add<Resistor>("Rend", nodes.back(), Circuit::kGround, 100.0);
  DcOptions opts;
  opts.newton.backend = MatrixBackend::sparse;
  {
    // Sanity: this circuit really runs on the sparse path when unarmed.
    const OpResult probe = api::operating_point(ckt, opts);
    ASSERT_TRUE(probe.converged);
    if (!probe.used_sparse) GTEST_SKIP() << "sparse backend unavailable here";
  }
  fault::arm("sparse_lu.singular", 1, -1);
  const OpResult op = api::operating_point(ckt, opts);
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.failure.kind, FailureKind::singular_matrix);
}

TEST_F(RescueTest, InjectedAllocFailureIsIsolatedPerSweepPoint) {
  REQUIRE_FAULT_BUILD();
  std::vector<SweepPoint> grid(2);
  grid[0].params = {{"k", 1.0}};
  grid[1].params = {{"k", 2.0}};
  fault::arm("engine.alloc", 1, 1);  // only the first run_tran throws
  const SweepRunner runner(1);
  const auto results = runner.run(grid, [](const SweepPoint& p) {
    Circuit ckt;
    const int out = build_rc(ckt);
    TranOptions opts;
    opts.tstop = 1e-3;
    const TranResult res = api::transient(ckt, opts);
    SweepOutcome o;
    o.ok = res.ok;
    o.error = res.error;
    o.failure = res.failure;
    if (res.ok) o.metrics = {{"vout", res.sample(1e-3, out) * p.value("k")}};
    return o;
  });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].failure.kind, FailureKind::alloc_failure);
  EXPECT_EQ(results[0].error, "allocation failure");
  EXPECT_TRUE(results[1].ok) << results[1].error;  // the batch survived
}

TEST_F(RescueTest, InjectedCompileFailureFallsBackToBytecodeVm) {
  REQUIRE_FAULT_BUILD();
  const char* model = R"(
ENTITY rmod IS
  GENERIC (g : analog);
  PIN (a, b : electrical);
END ENTITY rmod;
ARCHITECTURE x OF rmod IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].i %= g*[a, b].v;
  END RELATION;
END ARCHITECTURE x;
)";
  Circuit ckt;
  const int n = ckt.add_node("n", Nature::electrical);
  ckt.add<ISource>("I1", Circuit::kGround, n, 1e-3);
  auto dev = hdl::instantiate("XR", model, "rmod", {{"g", 1e-3}}, {n, Circuit::kGround},
                              hdl::HdlExecMode::codegen);
  const hdl::HdlDevice* raw = dev.get();
  ckt.add_device(std::move(dev));
  fault::arm("codegen.compile", 1, -1);
  TranOptions opts;
  opts.tstop = 1e-4;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;                 // the VM fallback carried the run
  EXPECT_FALSE(raw->codegen_active());              // ...and codegen never engaged
  EXPECT_GE(fault::fired("codegen.compile"), 1);    // the site was really reached
  EXPECT_NEAR(res.sample(1e-4, n), 1.0, 1e-6);      // 1 mA / 1 mS
}

}  // namespace
}  // namespace usys::spice
