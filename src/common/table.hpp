// ASCII table / CSV emitters used by the bench harnesses to regenerate the
// paper's tables and figure series in a uniform, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace usys {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with %g / fixed precision. Used by every bench binary so "the same rows
/// the paper reports" come out ready to eyeball.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Adds one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  void print(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly ("%.6g" by default).
std::string fmt_num(double v, int precision = 6);

/// Formats in scientific notation with fixed digits (for paper-style values).
std::string fmt_sci(double v, int precision = 5);

/// Writes rows of doubles as CSV with a header line; returns false on I/O
/// failure. Bench binaries use this to emit the Fig. 5 series for plotting.
bool write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<double>>& rows);

}  // namespace usys
