// Closed-form oracle (Tables 2-4): impedances, energies, forces, and the
// Table 4 operating point quantities.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "core/reference.hpp"

namespace usys::core {
namespace {

TransducerGeometry paper_geometry() {
  TransducerGeometry g;
  g.area = 1e-4;
  g.gap = 0.15e-3;
  g.eps_r = 1.0;
  return g;
}

TEST(Reference, Table2TransverseCapacitance) {
  const auto g = paper_geometry();
  EXPECT_NEAR(capacitance_transverse(g, 0.0), 8.8542e-12 * 1e-4 / 0.15e-3, 1e-18);
  // C shrinks as the gap opens.
  EXPECT_LT(capacitance_transverse(g, 1e-5), capacitance_transverse(g, 0.0));
}

TEST(Reference, Table2ParallelCapacitance) {
  TransducerGeometry g;
  g.depth = 1e-3;
  g.length = 2e-3;
  g.gap = 1e-5;
  EXPECT_NEAR(capacitance_parallel(g, 0.0), 8.8542e-12 * 1e-3 * 2e-3 / 1e-5, 1e-18);
  EXPECT_LT(capacitance_parallel(g, 1e-4), capacitance_parallel(g, 0.0));
}

TEST(Reference, Table2ElectromagneticInductance) {
  TransducerGeometry g;
  g.area = 1e-4;
  g.gap = 1e-3;
  g.turns = 100;
  EXPECT_NEAR(inductance_electromagnetic(g, 0.0),
              kMu0Classic * 1e-4 * 1e4 / (2.0 * 1e-3), 1e-12);
}

TEST(Reference, Table2EnergiesMatchHalfCV2) {
  const auto g = paper_geometry();
  for (double x : {-2e-5, 0.0, 3e-5}) {
    EXPECT_NEAR(energy_transverse(g, 10.0, x),
                0.5 * capacitance_transverse(g, x) * 100.0, 1e-18);
  }
  TransducerGeometry gm;
  gm.turns = 50;
  for (double i : {0.1, 1.0}) {
    EXPECT_NEAR(energy_electromagnetic(gm, i, 0.0),
                0.5 * inductance_electromagnetic(gm, 0.0) * i * i, 1e-15);
    EXPECT_NEAR(energy_electrodynamic(gm, i),
                0.5 * inductance_electrodynamic(gm) * i * i, 1e-15);
  }
}

TEST(Reference, Table3ForceIsEnergyGradient) {
  // F = -dW/dx at constant V for the transverse device (numeric check).
  const auto g = paper_geometry();
  const double v = 12.0;
  const double x = 1e-5;
  const double h = 1e-9;
  const double dw_dx = (energy_transverse(g, v, x + h) - energy_transverse(g, v, x - h)) /
                       (2.0 * h);
  // Constant-voltage co-energy theorem: F = +dW'/dx with W' = W here.
  EXPECT_NEAR(force_transverse(g, v, x), dw_dx, std::abs(dw_dx) * 1e-5);
}

TEST(Reference, Table3ParallelForceIndependentOfX) {
  TransducerGeometry g;
  g.depth = 1e-3;
  g.length = 2e-3;
  g.gap = 1e-5;
  EXPECT_DOUBLE_EQ(force_parallel(g, 10.0), force_parallel(g, 10.0));
  EXPECT_NEAR(force_parallel(g, 10.0), -8.8542e-12 * 1e-3 * 100.0 / (2.0 * 1e-5), 1e-12);
}

TEST(Reference, Table3ElectrodynamicLinearInCurrent) {
  TransducerGeometry g;
  g.turns = 100;
  g.radius = 5e-3;
  g.b_field = 1.2;
  const double t = 2.0 * kPi * 100.0 * 5e-3 * 1.2;
  EXPECT_NEAR(transduction_electrodynamic(g), t, 1e-12);
  EXPECT_NEAR(force_electrodynamic(g, 0.5), 0.5 * t, 1e-12);
  EXPECT_NEAR(force_electrodynamic(g, -0.5), -0.5 * t, 1e-12);
}

TEST(Reference, Table4StaticDisplacement) {
  // x0 at 10 V with Table 4 parameters: the paper quotes 1.0e-8 m.
  ResonatorParams p;
  const double x0 = static_displacement_transverse(p, 10.0);
  EXPECT_NEAR(std::abs(x0), 9.84e-9, 0.2e-9);
  EXPECT_LT(x0, 0.0);  // attraction closes the gap
}

TEST(Reference, Table4BiasCapacitanceNearPaperValue) {
  ResonatorParams p;
  // Paper: C0 = 5.8637e-12 F (quoted); self-consistent value with the
  // printed A, d: eps0*A/(d+x0) ~ 5.9035e-12. Accept the self-consistent
  // one and stay within 1% of the paper's.
  EXPECT_NEAR(bias_capacitance(p), 5.9035e-12, 0.01e-12);
  EXPECT_NEAR(bias_capacitance(p) / 5.8637e-12, 1.0, 0.02);
}

TEST(Reference, GammaTangentIsTwiceSecant) {
  // F ~ V^2: tangent slope at V0 is exactly twice the secant F0/V0.
  ResonatorParams p;
  EXPECT_NEAR(gamma_tangent(p) / gamma_secant(p), 2.0, 1e-9);
}

TEST(Reference, ResonatorDynamics) {
  ResonatorParams p;
  EXPECT_NEAR(omega0(p), std::sqrt(200.0 / 1e-4), 1e-9);
  EXPECT_NEAR(damping_ratio(p), 40e-3 / (2.0 * std::sqrt(200.0 * 1e-4)), 1e-12);
  EXPECT_LT(damping_ratio(p), 1.0);  // under-critical, as the paper states
}

TEST(Reference, PullInGuard) {
  // Far beyond pull-in the static solve must fail loudly, not wander.
  ResonatorParams p;
  p.stiffness = 1e-3;
  EXPECT_THROW(static_displacement_transverse(p, 500.0), std::domain_error);
}

class ForceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ForceSweep, TransverseForceQuadraticInVoltage) {
  const auto g = paper_geometry();
  const double v = GetParam();
  const double f1 = force_transverse(g, v, 0.0);
  const double f2 = force_transverse(g, 2.0 * v, 0.0);
  EXPECT_NEAR(f2 / f1, 4.0, 1e-9);
  EXPECT_LT(f1, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Voltages, ForceSweep, ::testing::Values(1.0, 5.0, 10.0, 15.0));

}  // namespace
}  // namespace usys::core
