#include "spice/mna.hpp"

#include <algorithm>

namespace usys::spice {

MnaPattern::MnaPattern(const Circuit& circuit) {
  if (!circuit.bound()) throw CircuitError("MnaPattern: circuit not bound");
  n_ = circuit.unknown_count();
  const auto n = static_cast<std::size_t>(n_);
  const auto& devices = circuit.devices();

  complete_ = true;
  footprints_.resize(devices.size());
  std::vector<std::vector<int>> cols(n);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    std::vector<int> u;
    if (!devices[d]->stamp_footprint(u)) {
      complete_ = false;
      break;
    }
    // Ground pins (-1) stamp nowhere; drop them along with duplicates.
    u.erase(std::remove_if(u.begin(), u.end(), [this](int i) { return i < 0 || i >= n_; }),
            u.end());
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
    for (int r : u) {
      auto& row = cols[static_cast<std::size_t>(r)];
      row.insert(row.end(), u.begin(), u.end());
    }
    footprints_[d].unknowns = std::move(u);
  }
  if (!complete_) {
    footprints_.clear();
    return;
  }

  // Always include the full diagonal: gmin lands on node rows, and a
  // structurally present diagonal gives the LU pivoting room on branch rows.
  for (std::size_t i = 0; i < n; ++i) cols[i].push_back(static_cast<int>(i));

  row_ptr_.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    auto& row = cols[r];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    row_ptr_[r + 1] = row_ptr_[r] + static_cast<int>(row.size());
  }
  col_idx_.reserve(static_cast<std::size_t>(row_ptr_[n]));
  for (std::size_t r = 0; r < n; ++r)
    col_idx_.insert(col_idx_.end(), cols[r].begin(), cols[r].end());

  diag_slot_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    diag_slot_[i] = slot(static_cast<int>(i), static_cast<int>(i));

  // Compile each device's k x k slot table; every pair is present by
  // construction.
  for (auto& fp : footprints_) {
    const auto k = fp.unknowns.size();
    fp.slots.resize(k * k);
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j < k; ++j)
        fp.slots[i * k + j] = slot(fp.unknowns[i], fp.unknowns[j]);
  }
}

int MnaPattern::slot(int r, int c) const noexcept {
  const auto first = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(r)];
  const auto last = col_idx_.begin() + row_ptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return -1;
  return static_cast<int>(it - col_idx_.begin());
}

MnaAssembler::MnaAssembler(Circuit& circuit, const MnaPattern& pattern)
    : circuit_(circuit), pattern_(pattern) {
  if (!pattern_.complete()) throw CircuitError("MnaAssembler: incomplete pattern");
  jf_vals_.assign(pattern_.nonzeros(), 0.0);
  jq_vals_.assign(pattern_.nonzeros(), 0.0);
  local_of_.assign(static_cast<std::size_t>(pattern_.size()), -1);
  sink_.jf_vals = jf_vals_.data();
  sink_.jq_vals = jq_vals_.data();
  sink_.row_ptr = pattern_.row_ptr().data();
  sink_.col_idx = pattern_.col_idx().data();
}

void MnaAssembler::assemble(const EvalCtx& ctx_proto, const DVector& x, DVector& f,
                            DVector& q) {
  const auto n = static_cast<std::size_t>(pattern_.size());
  f.assign(n, 0.0);
  q.assign(n, 0.0);
  std::fill(jf_vals_.begin(), jf_vals_.end(), 0.0);
  std::fill(jq_vals_.begin(), jq_vals_.end(), 0.0);

  EvalCtx ctx = ctx_proto;
  ctx.x = &x;
  ctx.f = &f;
  ctx.q = &q;
  ctx.jf = nullptr;
  ctx.jq = nullptr;
  ctx.sparse = &sink_;
  sink_.missed = 0;

  const auto& devices = circuit_.devices();
  const auto& footprints = pattern_.footprints();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& fp = footprints[d];
    for (std::size_t i = 0; i < fp.unknowns.size(); ++i)
      local_of_[static_cast<std::size_t>(fp.unknowns[i])] = static_cast<int>(i);
    sink_.local_of = local_of_.data();
    sink_.slots = fp.slots.data();
    sink_.k = static_cast<int>(fp.unknowns.size());
    devices[d]->evaluate(ctx);
    for (int u : fp.unknowns) local_of_[static_cast<std::size_t>(u)] = -1;
  }
  if (sink_.missed > 0) {
    throw CircuitError("sparse MNA assembly: a device stamped outside the compiled "
                       "pattern (stamp_footprint() declaration is not a superset)");
  }
}

}  // namespace usys::spice
