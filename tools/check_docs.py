#!/usr/bin/env python3
"""Documentation consistency gate.

Three checks over the repository's Markdown set (root *.md, docs/,
bench/baselines/):

1. **Links** — every relative Markdown link `[text](path)` must point at an
   existing file or directory (http/https/mailto and pure #anchor links are
   skipped; a trailing #anchor on a file link is stripped before the
   existence check).

2. **usim flags** — the CLI reference must match the binary, both ways:
   every `--flag` mentioned in the docs that is not a known foreign flag
   (benchmark/gtest/ctest/tool options, see KNOWN_FOREIGN) must exist in
   `usim --help`, and every flag `usim --help` advertises must be
   documented in README.md. This is what keeps the README from drifting
   from tools/usim.cpp.

3. **lint rules** — the rule catalog in docs/diagnostics.md must match
   kAllLintRules in src/spice/lint.cpp, both ways: every rule id the
   analyzer can emit appears as a `` `rule-id` `` table row, and the docs
   name no rule the table doesn't define.

Usage:  tools/check_docs.py --usim build/usim [--root .]
Exit codes: 0 = consistent, 1 = findings, 2 = usage/IO error.
"""

import argparse
import pathlib
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(?<![\w/-])(--[A-Za-z][A-Za-z_-]*)")

# Double-dash options that legitimately appear in the docs but belong to
# other tools (google-benchmark, gtest, ctest, cmake, gh, and our own python
# gates). Extend when docs start mentioning a new foreign tool.
KNOWN_FOREIGN = {
    "--baseline", "--current", "--threshold",     # tools/bench_compare.py
    "--usim", "--root",                           # this script
    "--output-on-failure",                        # ctest
    "--build",                                    # cmake --build
}
FOREIGN_PREFIXES = ("--benchmark", "--gtest", "--gates")


def md_files(root: pathlib.Path):
    files = sorted(root.glob("*.md"))
    for sub in ("docs", "bench/baselines"):
        files += sorted((root / sub).glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links(root: pathlib.Path, files):
    problems = []
    for f in files:
        text = f.read_text(encoding="utf-8")
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (f.parent / path).resolve()
            if not resolved.exists():
                problems.append(f"{f.relative_to(root)}: dead link -> {target}")
    return problems


def usim_help_flags(usim: pathlib.Path):
    try:
        out = subprocess.run(
            [str(usim), "--help"], capture_output=True, text=True, timeout=60
        )
    except OSError as e:
        print(f"check_docs: cannot run {usim}: {e}", file=sys.stderr)
        sys.exit(2)
    if out.returncode != 0:
        print(f"check_docs: '{usim} --help' exited {out.returncode}", file=sys.stderr)
        sys.exit(2)
    return set(FLAG_RE.findall(out.stdout + out.stderr))


def is_foreign(flag: str) -> bool:
    return flag in KNOWN_FOREIGN or flag.startswith(FOREIGN_PREFIXES)


def check_flags(root: pathlib.Path, files, help_flags):
    problems = []
    documented = set()
    for f in files:
        text = f.read_text(encoding="utf-8")
        for flag in set(FLAG_RE.findall(text)):
            if is_foreign(flag):
                continue
            documented.add(flag)
            if flag not in help_flags:
                problems.append(
                    f"{f.relative_to(root)}: mentions '{flag}' which is not in "
                    "'usim --help' (phantom flag, or add it to KNOWN_FOREIGN)"
                )
    readme = root / "README.md"
    readme_flags = set()
    if readme.is_file():
        readme_flags = set(FLAG_RE.findall(readme.read_text(encoding="utf-8")))
    for flag in sorted(help_flags):
        if flag not in readme_flags:
            problems.append(
                f"README.md: '{flag}' is in 'usim --help' but undocumented"
            )
    return problems


RULE_TABLE_RE = re.compile(
    r"kAllLintRules\[\]\s*=\s*\{(.*?)\}", re.DOTALL
)
RULE_ID_RE = re.compile(r'"([a-z][a-z0-9-]*)"')
DOC_RULE_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9-]*)`\s*\|", re.MULTILINE)


def check_lint_rules(root: pathlib.Path):
    """docs/diagnostics.md rule tables <-> kAllLintRules, both directions."""
    src = root / "src" / "spice" / "lint.cpp"
    doc = root / "docs" / "diagnostics.md"
    problems = []
    if not src.is_file() or not doc.is_file():
        return [f"lint-rule check needs {src.relative_to(root)} and "
                f"{doc.relative_to(root)}"]
    m = RULE_TABLE_RE.search(src.read_text(encoding="utf-8"))
    if not m:
        return [f"{src.relative_to(root)}: kAllLintRules table not found"]
    code_rules = set(RULE_ID_RE.findall(m.group(1)))
    doc_rules = set(DOC_RULE_ROW_RE.findall(doc.read_text(encoding="utf-8")))
    for rule in sorted(code_rules - doc_rules):
        problems.append(
            f"docs/diagnostics.md: rule '{rule}' (kAllLintRules) has no catalog row"
        )
    for rule in sorted(doc_rules - code_rules):
        problems.append(
            f"docs/diagnostics.md: documents '{rule}' which is not in kAllLintRules"
        )
    return problems


def main():
    ap = argparse.ArgumentParser(description="Markdown link + usim flag gate")
    ap.add_argument("--usim", required=True, help="path to the built usim binary")
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()
    usim = pathlib.Path(args.usim)
    if not usim.is_file():
        print(f"check_docs: no usim binary at {usim}", file=sys.stderr)
        return 2

    files = md_files(root)
    if not files:
        print(f"check_docs: no markdown files under {root}", file=sys.stderr)
        return 2
    problems = check_links(root, files)
    help_flags = usim_help_flags(usim)
    problems += check_flags(root, files, help_flags)
    problems += check_lint_rules(root)

    print(
        f"check_docs: {len(files)} markdown files, "
        f"{len(help_flags)} usim flags ({', '.join(sorted(help_flags))})"
    )
    for p in problems:
        print(f"  FAIL {p}")
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
