// SimServer — the `usim --serve` daemon (docs/server.md).
//
// A long-lived process that accepts simulation jobs as line-delimited JSON
// over a local Unix socket and amortizes everything amortizable across
// requests (ROADMAP item 1, the "millions of users" architecture gap):
//
//   * warm-engine LRU cache keyed by netlist content hash: an exact-hash
//     hit reuses the bound api::Session (skipping parse / bind / pattern
//     compile / symbolic factorization); a hit with parameter overrides
//     takes the rebind() delta path instead of a fresh bind. Eviction is
//     two-tier: entries pushed past the warm capacity are cool()ed first
//     (solver state shed, parse/bind kept), then fully evicted at 2x.
//   * result LRU cache of rendered frames: a byte-identical request replays
//     the stream without touching the engine at all — trivially
//     bit-identical, and where the big warm-vs-cold ratio comes from on
//     analysis-dominated workloads (bench_server_throughput).
//   * bounded job queue with structured busy rejection (never a hang),
//     N worker threads, and a monitor that cancels jobs via their
//     CancelToken when the client disconnects mid-stream or the per-job
//     deadline expires — the PR 6 plumbing, fired from outside the solver.
//   * /stats: jobs/s, cache hit rates, queue depth, p50/p99 latency.
#pragma once

#include <memory>
#include <string>

namespace usys::server {

struct ServerOptions {
  std::string socket_path;
  int workers = 2;               ///< job worker threads (>= 1)
  int queue_capacity = 16;       ///< queued (not yet running) jobs before busy
  int engine_cache_capacity = 8; ///< warm sessions; up to 2x kept cooled
  int result_cache_capacity = 32;
  int accept_timeout_ms = 2000;  ///< budget for a client to send its request
};

/// Point-in-time statistics (also serialized as the stats frame).
struct StatsSnapshot {
  long jobs_submitted = 0;
  long jobs_completed = 0;
  long jobs_ok = 0;
  long jobs_failed = 0;
  long jobs_cancelled = 0;
  long busy_rejected = 0;
  long bad_requests = 0;
  long parses = 0;        ///< cold jobs: fresh Session (parse + bind)
  long exact_hits = 0;    ///< engine-cache hits, no overrides
  long delta_hits = 0;    ///< engine-cache hits via the rebind() delta path
  long result_hits = 0;   ///< replayed from the result cache
  long evictions = 0;     ///< sessions fully dropped from the engine cache
  long cooled = 0;        ///< sessions demoted to the cool tier
  long symbolic_factorizations = 0;  ///< summed over all executed jobs
  int queue_depth = 0;
  int engines_cached = 0;
  int engines_warm = 0;
  double uptime_s = 0.0;
  double jobs_per_s = 0.0;
  double latency_p50_ms = 0.0;  ///< over the last <= 512 completed jobs
  double latency_p99_ms = 0.0;

  /// The `{"v":1,"frame":"stats",...}` wire line.
  std::string to_json() const;
};

class SimServer {
 public:
  explicit SimServer(ServerOptions opts);
  ~SimServer();

  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Binds the socket and launches the accept/worker/monitor threads.
  /// False (with `error` filled) when the socket cannot be bound.
  bool start(std::string* error = nullptr);

  /// Blocks until a shutdown request arrives (or stop() is called).
  void wait();

  /// Stops accepting, cancels queued jobs, joins all threads, unlinks the
  /// socket. Idempotent; also runs on destruction.
  void stop();

  const std::string& socket_path() const;
  StatsSnapshot stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience for `usim --serve`: start, announce on stdout, block until a
/// shutdown request. Returns a usim exit code (0, or 2 when binding fails).
int serve_blocking(const ServerOptions& opts);

}  // namespace usys::server
