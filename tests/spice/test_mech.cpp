// Mechanical elements under the FI analogy: statics, resonance, damping —
// plus nature checking across domains (Table 1 of the paper).
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "common/constants.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

TEST(Mech, StaticForceBalanceSpring) {
  // Constant force into spring: at DC the velocity is 0 and the spring
  // branch carries the applied force.
  Circuit ckt;
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add<ForceSource>("F1", vel, 1e-3);
  auto& spring = ckt.add<Spring>("K1", vel, Circuit::kGround, 200.0);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(vel), 0.0, 1e-9);
  EXPECT_NEAR(spring.displacement(op.x), 1e-3 / 200.0, 1e-12);
}

TEST(Mech, ResonatorNaturalFrequency) {
  // m-k-alpha resonator kicked by a force pulse: ring-down at
  // f = sqrt(k/m)/(2 pi) (Table 4 parameters: ~225 Hz).
  Circuit ckt;
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add<ForceSource>("F1", vel,
                       std::make_unique<PulseWave>(0.0, 1e-3, 0.0, 1e-5, 1e-5, 2e-4));
  ckt.add<Mass>("M1", vel, 1e-4);
  ckt.add<Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt.add<Damper>("D1", vel, Circuit::kGround, 40e-3);

  TranOptions opts;
  opts.tstop = 50e-3;
  opts.dt_max = 5e-5;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;

  const auto v = res.signal(vel);
  int crossings = 0;
  double first = -1.0;
  double last = -1.0;
  for (std::size_t k = 1; k < v.size(); ++k) {
    if (v[k - 1] < 0.0 && v[k] >= 0.0 && res.time[k] > 1e-3) {
      ++crossings;
      if (first < 0) first = res.time[k];
      last = res.time[k];
    }
  }
  ASSERT_GE(crossings, 3);
  const double period = (last - first) / (crossings - 1);
  const double f_meas = 1.0 / period;
  const double f0 = std::sqrt(200.0 / 1e-4) / (2.0 * kPi);
  // Damped frequency fd = f0 sqrt(1-zeta^2), zeta ~ 0.1414 -> ~1% below f0.
  const double zeta = 40e-3 / (2.0 * std::sqrt(200.0 * 1e-4));
  const double fd = f0 * std::sqrt(1.0 - zeta * zeta);
  EXPECT_NEAR(f_meas, fd, 0.03 * fd);
}

TEST(Mech, DamperDissipatesSteadyVelocity) {
  // Imposed velocity across a damper: force = alpha * v.
  Circuit ckt;
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  auto& src = ckt.add<VelocitySource>("U1", vel, std::make_unique<DcWave>(0.2));
  ckt.add<Damper>("D1", vel, Circuit::kGround, 0.5);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  // Source branch carries -alpha*v (force flowing back into the source).
  EXPECT_NEAR(op.x[static_cast<std::size_t>(src.branch())], -0.1, 1e-12);
}

TEST(Mech, NatureMismatchIsDiagnosed) {
  Circuit ckt;
  const int e = ckt.add_node("e", Nature::electrical);
  const int m = ckt.add_node("m", Nature::mechanical_translation);
  ckt.add<Resistor>("R1", e, m, 1e3);  // illegal: crosses domains
  EXPECT_THROW(ckt.bind_all(), CircuitError);
}

TEST(Mech, GroundConnectsAllDomains) {
  Circuit ckt;
  const int e = ckt.add_node("e", Nature::electrical);
  const int m = ckt.add_node("m", Nature::mechanical_translation);
  ckt.add<Resistor>("R1", e, Circuit::kGround, 1e3);
  ckt.add<Damper>("D1", m, Circuit::kGround, 1.0);
  EXPECT_NO_THROW(ckt.bind_all());
}

TEST(Mech, RotationalAndHydraulicNodesSupported) {
  Circuit ckt;
  const int rot = ckt.add_node("rot", Nature::mechanical_rotation);
  const int hyd = ckt.add_node("hyd", Nature::hydraulic);
  ckt.add<Resistor>("RR", rot, Circuit::kGround, 10.0, Nature::mechanical_rotation);
  ckt.add<Resistor>("RH", hyd, Circuit::kGround, 10.0, Nature::hydraulic);
  ckt.add<ISource>("TQ", Circuit::kGround, rot, 0.5, Nature::mechanical_rotation);
  ckt.add<ISource>("FL", Circuit::kGround, hyd, 0.1, Nature::hydraulic);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(rot), 5.0, 1e-9);   // angular velocity = torque * R
  EXPECT_NEAR(op.at(hyd), 1.0, 1e-9);   // pressure = flow * R
}

TEST(Mech, MassSpringEnergyConservesWithoutDamping) {
  // Kick an undamped m-k oscillator and check the energy
  // E = 1/2 m v^2 + 1/2 k x^2 stays constant (trapezoidal is symplectic-ish
  // on linear problems; tolerance allows LTE-level drift).
  Circuit ckt;
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<ForceSource>("F1", vel,
                       std::make_unique<PulseWave>(0.0, 1e-3, 0.0, 1e-6, 1e-6, 1e-4));
  ckt.add<Mass>("M1", vel, 1e-4);
  ckt.add<Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt.add<StateIntegrator>("XD", disp, vel);

  TranOptions opts;
  opts.tstop = 30e-3;
  opts.dt_max = 2e-5;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;

  double e_at_5ms = 0.0;
  double e_at_25ms = 0.0;
  auto energy = [&](double t) {
    const double v = res.sample(t, vel);
    const double x = res.sample(t, disp);
    return 0.5 * 1e-4 * v * v + 0.5 * 200.0 * x * x;
  };
  e_at_5ms = energy(5e-3);
  e_at_25ms = energy(25e-3);
  ASSERT_GT(e_at_5ms, 0.0);
  EXPECT_NEAR(e_at_25ms / e_at_5ms, 1.0, 0.02);
}

}  // namespace
}  // namespace usys::spice
