// Sparse LU v2 at the circuit level: AMD-vs-min-degree result parity on the
// relay and HDL circuits (the ordering must never change physics, only
// fill), AMD fill quality on the bench topologies (the acceptance number
// bench_solver_scaling reports), and solve_threads bit-identity through a
// full engine transient (the solve-side twin of
// ParallelAssembly.TransientTrajectoryBitIdentical — suite-named
// ParallelSolve so the TSan CI filter picks it up).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "api/api.hpp"
#include "common/thread_pool.hpp"
#include "core/netlist_ext.hpp"
#include "core/transducers.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"
#include "spice/engine.hpp"

namespace usys::spice {
namespace {

double rel_diff(const DVector& a, const DVector& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-12});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

// --- circuits (mirroring tests/spice/test_engine.cpp) -----------------------

std::unique_ptr<Circuit> relay(double v_coil) {
  core::TransducerGeometry g;
  g.area = 4e-5;
  g.gap = 0.4e-3;
  g.turns = 600;
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int coil = ckt->add_node("coil", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  const int disp = ckt->add_node("disp", Nature::mechanical_translation);
  ckt->add<VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, v_coil}, {1.0, v_coil}}));
  ckt->add<Resistor>("Rcoil", drive, coil, 60.0);
  ckt->add<core::ElectromagneticTransducer>("Xrel", coil, Circuit::kGround, vel,
                                            Circuit::kGround, g);
  ckt->add<Mass>("Marm", vel, 2e-3);
  ckt->add<Spring>("Karm", vel, Circuit::kGround, 900.0);
  ckt->add<Damper>("Darm", vel, Circuit::kGround, 0.8);
  ckt->add<StateIntegrator>("XD", disp, vel);
  return ckt;
}

std::unique_ptr<Circuit> hdl_resonator() {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  ckt->add<VSource>("V1", drive, Circuit::kGround,
                    std::make_unique<PulseWave>(0.0, 10.0, 0.0, 1e-4, 1e-4, 0.05),
                    Nature::electrical, /*ac_mag=*/1.0);
  ckt->add_device(hdl::instantiate(
      "XT", hdl::stdlib::paper_listing1(), "eletran",
      {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
      {drive, Circuit::kGround, vel, Circuit::kGround}));
  ckt->add<Mass>("M1", vel, 1e-4);
  ckt->add<Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt->add<Damper>("D1", vel, Circuit::kGround, 40e-3);
  return ckt;
}

std::string tag(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

std::unique_ptr<Circuit> transducer_array(int elements, double ac_mag = 0.0) {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  ckt->add<VSource>("V1", drive, Circuit::kGround, std::make_unique<DcWave>(2.0),
                    Nature::electrical, ac_mag);
  core::TransducerGeometry g;
  g.area = 1e-8;
  g.eps_r = 1.0;
  for (int i = 0; i < elements; ++i) {
    const int mech = ckt->add_node(tag("v", i), Nature::mechanical_translation);
    g.gap = 2e-6 * (1.0 + 0.1 * (elements > 1 ? 2.0 * i / (elements - 1) - 1.0 : 0.0));
    ckt->add<core::TransverseElectrostatic>(tag("XT", i), drive, Circuit::kGround, mech,
                                            Circuit::kGround, g);
    ckt->add<Mass>(tag("M", i), mech, 1e-9);
    ckt->add<Spring>(tag("K", i), mech, Circuit::kGround, 25.0);
    ckt->add<Damper>(tag("D", i), mech, Circuit::kGround, 1e-4);
  }
  return ckt;
}

/// The two bench_solver_scaling topology families, sized by unknown count.
std::unique_ptr<Circuit> rc_ladder(int sections) {
  auto ckt = std::make_unique<Circuit>();
  int prev = ckt->add_node("in", Nature::electrical);
  ckt->add<VSource>("V1", prev, Circuit::kGround, 1.0);
  for (int k = 0; k < sections; ++k) {
    const int node = ckt->add_node(tag("n", k), Nature::electrical);
    ckt->add<Resistor>(tag("R", k), prev, node, 1e3);
    ckt->add<Capacitor>(tag("C", k), node, Circuit::kGround, 1e-9);
    prev = node;
  }
  return ckt;
}

std::unique_ptr<Circuit> resonator_array(int count) {
  auto ckt = std::make_unique<Circuit>();
  const int first = ckt->add_node("m0", Nature::mechanical_translation);
  ckt->add<ForceSource>("F1", first, 1e-3);
  int prev = first;
  for (int k = 0; k < count; ++k) {
    const int node =
        k == 0 ? first : ckt->add_node(tag("m", k), Nature::mechanical_translation);
    ckt->add<Mass>(tag("M", k), node, 1e-4);
    ckt->add<Damper>(tag("D", k), node, Circuit::kGround, 1e-2);
    if (k > 0) ckt->add<Spring>(tag("K", k), prev, node, 250.0);
    ckt->add<Spring>(tag("Kg", k), node, Circuit::kGround, 400.0);
    prev = node;
  }
  return ckt;
}

TranOptions tran_opts(double tstop, double dt) {
  TranOptions opts;
  opts.tstop = tstop;
  opts.dt_init = dt;
  opts.dt_max = dt;
  opts.adaptive = false;
  return opts;
}

// --- AMD vs min-degree result parity ----------------------------------------

/// The column ordering changes fill and flop order, not the solution:
/// DC, transient, and AC results must agree to 1e-12 across orderings.
void expect_ordering_parity(const std::function<std::unique_ptr<Circuit>()>& build,
                            double tstop, double dt, bool with_ac) {
  DcOptions dc_amd;
  dc_amd.newton.backend = MatrixBackend::sparse;
  dc_amd.newton.ordering = LuOrdering::amd;
  DcOptions dc_mdg = dc_amd;
  dc_mdg.newton.ordering = LuOrdering::min_degree;

  auto ckt_amd = build();
  auto ckt_mdg = build();
  AnalysisEngine eng_amd(*ckt_amd);
  AnalysisEngine eng_mdg(*ckt_mdg);

  const DcResult dc_a = eng_amd.run_dc(dc_amd);
  const DcResult dc_m = eng_mdg.run_dc(dc_mdg);
  ASSERT_TRUE(dc_a.converged);
  ASSERT_TRUE(dc_m.converged);
  EXPECT_TRUE(dc_a.used_sparse);
  EXPECT_LT(rel_diff(dc_a.x, dc_m.x), 1e-12);

  TranOptions topts_amd = tran_opts(tstop, dt);
  topts_amd.newton = dc_amd.newton;
  topts_amd.dc = dc_amd;
  TranOptions topts_mdg = tran_opts(tstop, dt);
  topts_mdg.newton = dc_mdg.newton;
  topts_mdg.dc = dc_mdg;
  const TranResult tr_a = eng_amd.run_tran(topts_amd);
  const TranResult tr_m = eng_mdg.run_tran(topts_mdg);
  ASSERT_TRUE(tr_a.ok) << tr_a.error;
  ASSERT_TRUE(tr_m.ok) << tr_m.error;
  ASSERT_EQ(tr_a.time.size(), tr_m.time.size());
  double worst = 0.0;
  for (std::size_t k = 0; k < tr_a.x.size(); ++k)
    worst = std::max(worst, rel_diff(tr_a.x[k], tr_m.x[k]));
  EXPECT_LT(worst, 1e-12);

  if (with_ac) {
    AcOptions ac_amd;
    ac_amd.points = 10;
    ac_amd.dc = dc_amd;
    AcOptions ac_mdg = ac_amd;
    ac_mdg.dc = dc_mdg;
    const AcResult ac_a = eng_amd.run_ac(ac_amd);
    const AcResult ac_m = eng_mdg.run_ac(ac_mdg);
    ASSERT_TRUE(ac_a.ok) << ac_a.error;
    ASSERT_TRUE(ac_m.ok) << ac_m.error;
    ASSERT_EQ(ac_a.freq.size(), ac_m.freq.size());
    for (std::size_t k = 0; k < ac_a.x.size(); ++k) {
      for (std::size_t i = 0; i < ac_a.x[k].size(); ++i) {
        const double scale =
            std::max({std::abs(ac_a.x[k][i]), std::abs(ac_m.x[k][i]), 1e-12});
        EXPECT_LT(std::abs(ac_a.x[k][i] - ac_m.x[k][i]) / scale, 1e-12)
            << "f=" << ac_a.freq[k] << " unknown=" << i;
      }
    }
  }
}

TEST(SolverOrdering, ParityRelayPullIn) {
  expect_ordering_parity([] { return relay(6.0); }, 1e-2, 2e-5, /*with_ac=*/false);
}

TEST(SolverOrdering, ParityHdlListing1) {
  expect_ordering_parity([] { return hdl_resonator(); }, 5e-3, 5e-5, /*with_ac=*/true);
}

// --- AMD fill quality on the bench topologies --------------------------------

/// The acceptance number: on the n >= 500 bench topologies AMD's factor
/// nonzeros must not exceed the min-degree baseline's (it should also
/// analyze much faster; bench_solver_scaling records both).
TEST(SolverOrdering, AmdFillAtMostMinDegreeOnBenchTopologies) {
  const auto fill_of = [](Circuit& ckt, LuOrdering ord) {
    ckt.bind_all();
    const MnaPattern& pattern = ckt.mna_pattern();
    EXPECT_TRUE(pattern.complete());
    const auto n = static_cast<std::size_t>(ckt.unknown_count());
    NewtonOptions nopts;
    nopts.max_iters = 1;
    nopts.backend = MatrixBackend::sparse;
    NewtonSolver solver(ckt, nopts);
    EXPECT_TRUE(solver.sparse_active());
    EvalCtx ctx;
    ctx.mode = AnalysisMode::transient;
    ctx.time = 1e-6;
    ctx.integ_c1 = 1e-6;
    DVector x(n, 0.0), f, q;
    solver.assemble_sparse(ctx, x, f, q);
    const auto& jfv = solver.sparse_jf();
    const auto& jqv = solver.sparse_jq();
    std::vector<double> jac(jfv.size());
    const double a0 = 1e6;  // backward Euler at dt = 1 us, as in the bench
    for (std::size_t k = 0; k < jac.size(); ++k) jac[k] = jfv[k] + a0 * jqv[k];
    DSparseLu lu;
    lu.analyze(pattern.size(), pattern.row_ptr(), pattern.col_idx(), ord);
    lu.factor(jac);
    return lu.factor_nonzeros();
  };

  {
    auto ladder = rc_ladder(498);  // ~500 unknowns
    auto ladder2 = rc_ladder(498);
    EXPECT_LE(fill_of(*ladder, LuOrdering::amd),
              fill_of(*ladder2, LuOrdering::min_degree));
  }
  {
    auto res = resonator_array(250);  // ~500 unknowns
    auto res2 = resonator_array(250);
    EXPECT_LE(fill_of(*res, LuOrdering::amd),
              fill_of(*res2, LuOrdering::min_degree));
  }
}

// --- threaded-solve bit identity through the engine --------------------------

/// A full transient with 4 solve threads must take the exact step sequence
/// and produce the exact solutions of the serial run (same guarantee and
/// test shape as the parallel-assembly twin in test_engine.cpp).
TEST(ParallelSolve, TransientTrajectoryBitIdentical) {
  TranOptions opts = tran_opts(2e-4, 2e-6);
  opts.newton.backend = MatrixBackend::sparse;
  opts.dc.newton.backend = MatrixBackend::sparse;

  auto ckt_serial = transducer_array(40);
  const TranResult serial = api::transient(*ckt_serial, opts);
  ASSERT_TRUE(serial.ok) << serial.error;
  EXPECT_TRUE(serial.used_sparse);

  opts.newton.solve_threads = 4;
  opts.dc.newton.solve_threads = 4;
  auto ckt_par = transducer_array(40);
  const TranResult par = api::transient(*ckt_par, opts);
  ASSERT_TRUE(par.ok) << par.error;

  ASSERT_EQ(serial.time.size(), par.time.size());
  EXPECT_EQ(serial.time, par.time);
  for (std::size_t k = 0; k < serial.x.size(); ++k)
    EXPECT_EQ(serial.x[k], par.x[k]) << "point " << k;
}

/// AC: the complex per-frequency solves go through the same level schedule,
/// so solve_threads must leave every AC point bit-identical too.
TEST(ParallelSolve, AcSweepBitIdentical) {
  AcOptions opts;
  opts.points = 8;
  opts.dc.newton.backend = MatrixBackend::sparse;
  auto ckt_serial = transducer_array(60, /*ac_mag=*/1.0);
  AnalysisEngine eng_serial(*ckt_serial);
  const AcResult serial = eng_serial.run_ac(opts);
  ASSERT_TRUE(serial.ok) << serial.error;

  opts.dc.newton.solve_threads = 4;
  auto ckt_par = transducer_array(60, /*ac_mag=*/1.0);
  AnalysisEngine eng_par(*ckt_par);
  const AcResult par = eng_par.run_ac(opts);
  ASSERT_TRUE(par.ok) << par.error;

  ASSERT_EQ(serial.freq.size(), par.freq.size());
  double max_mag = 0.0;
  for (const auto& v : serial.x.front()) max_mag = std::max(max_mag, std::abs(v));
  EXPECT_GT(max_mag, 0.0) << "AC excitation missing: the comparison would be 0 == 0";
  for (std::size_t k = 0; k < serial.x.size(); ++k)
    EXPECT_EQ(serial.x[k], par.x[k]) << "frequency point " << k;
}

/// Operating point on an array big enough that whole levels clear the
/// parallel threshold — solve threads and the shared assembly pool together
/// must still reproduce the serial result exactly.
TEST(ParallelSolve, DcWithSharedAssemblyPoolBitIdentical) {
  DcOptions opts;
  opts.newton.backend = MatrixBackend::sparse;
  auto ckt_serial = transducer_array(150);
  AnalysisEngine eng_serial(*ckt_serial);
  const DcResult serial = eng_serial.run_dc(opts);
  ASSERT_TRUE(serial.converged);

  opts.newton.assembly_threads = 2;
  opts.newton.solve_threads = 4;
  auto ckt_par = transducer_array(150);
  AnalysisEngine eng_par(*ckt_par);
  const DcResult par = eng_par.run_dc(opts);
  ASSERT_TRUE(par.converged);
  EXPECT_EQ(serial.x, par.x);
}

}  // namespace
}  // namespace usys::spice
