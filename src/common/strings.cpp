#include "common/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace usys {

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::optional<double> parse_spice_number(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  const double base = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) return std::nullopt;
  // Overflow ("1e999") and the inf/nan literals strtod accepts are rejected:
  // a netlist value that is not a finite number is a typo, not a quantity.
  if (!std::isfinite(base)) return std::nullopt;
  std::string_view rest = trim(std::string_view(end));
  if (rest.empty()) return base;
  const std::string suffix = to_lower(rest);
  // "meg" must be matched before "m".
  struct Suffix {
    std::string_view text;
    double scale;
  };
  static constexpr Suffix kSuffixes[] = {
      {"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3}, {"m", 1e-3},
      {"u", 1e-6},  {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
  };
  for (const auto& sfx : kSuffixes) {
    if (suffix.rfind(sfx.text, 0) == 0) return base * sfx.scale;
  }
  // Unit letters only (e.g. "10V"): accept as plain number.
  for (char c : suffix) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return std::nullopt;
  }
  return base;
}

std::string str_format(const char* fmt, ...) {
  va_list args1;
  va_start(args1, fmt);
  va_list args2;
  va_copy(args2, args1);
  const int len = std::vsnprintf(nullptr, 0, fmt, args1);
  va_end(args1);
  std::string out(static_cast<std::size_t>(len), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace usys
