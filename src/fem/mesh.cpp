#include "fem/mesh.hpp"

#include <cmath>
#include <stdexcept>

namespace usys::fem {

int Mesh::add_point(double x, double y, BoundaryTag tag) {
  pts_.push_back({x, y});
  tags_.push_back(tag);
  return static_cast<int>(pts_.size()) - 1;
}

void Mesh::add_triangle(int a, int b, int c, int region) {
  tris_.push_back({{a, b, c}, region});
}

double Mesh::twice_area(int e) const {
  const Triangle& t = tris_[static_cast<std::size_t>(e)];
  const Point& p0 = pts_[static_cast<std::size_t>(t.n[0])];
  const Point& p1 = pts_[static_cast<std::size_t>(t.n[1])];
  const Point& p2 = pts_[static_cast<std::size_t>(t.n[2])];
  return (p1.x - p0.x) * (p2.y - p0.y) - (p2.x - p0.x) * (p1.y - p0.y);
}

std::vector<int> Mesh::nodes_with_tag(BoundaryTag tag) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] == tag) out.push_back(static_cast<int>(i));
  }
  return out;
}

Mesh make_plate_mesh(const PlateMeshSpec& spec) {
  if (spec.nx < 1 || spec.ny < 1) throw std::invalid_argument("plate mesh: nx, ny >= 1");
  if (spec.width <= 0 || spec.gap <= 0)
    throw std::invalid_argument("plate mesh: width and gap must be positive");

  Mesh mesh;
  const int margin_cells =
      spec.side_margin > 0.0
          ? (spec.margin_cells > 0
                 ? spec.margin_cells
                 : std::max(1, static_cast<int>(std::ceil(
                                   spec.side_margin / (spec.width / spec.nx)))))
          : 0;
  const int total_nx = spec.nx + 2 * margin_cells;
  const double x0 = -static_cast<double>(margin_cells) * spec.side_margin /
                    std::max(1, margin_cells);

  // x coordinates: margin | electrode span | margin.
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(total_nx) + 1);
  for (int i = 0; i <= total_nx; ++i) {
    double x = 0.0;
    if (i < margin_cells) {
      x = x0 + static_cast<double>(i) * (spec.side_margin / margin_cells);
    } else if (i <= margin_cells + spec.nx) {
      x = static_cast<double>(i - margin_cells) * (spec.width / spec.nx);
    } else {
      x = spec.width +
          static_cast<double>(i - margin_cells - spec.nx) *
              (spec.side_margin / margin_cells);
    }
    xs.push_back(x);
  }

  // Grid points, tagging the electrode spans on bottom/top rows. Margin
  // columns on the bottom/top are field boundaries, not electrodes.
  std::vector<std::vector<int>> grid(static_cast<std::size_t>(spec.ny) + 1);
  for (int j = 0; j <= spec.ny; ++j) {
    grid[static_cast<std::size_t>(j)].resize(static_cast<std::size_t>(total_nx) + 1);
    const double y = spec.gap * static_cast<double>(j) / spec.ny;
    for (int i = 0; i <= total_nx; ++i) {
      BoundaryTag tag = BoundaryTag::none;
      const bool on_electrode_span = (i >= margin_cells) && (i <= margin_cells + spec.nx);
      if (j == 0 && on_electrode_span) tag = BoundaryTag::bottom;
      if (j == spec.ny && on_electrode_span) tag = BoundaryTag::top;
      if (i == 0 && tag == BoundaryTag::none) tag = BoundaryTag::left;
      if (i == total_nx && tag == BoundaryTag::none) tag = BoundaryTag::right;
      grid[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
          mesh.add_point(xs[static_cast<std::size_t>(i)], y, tag);
    }
  }

  // Two CCW triangles per cell; margin cells are region 1.
  for (int j = 0; j < spec.ny; ++j) {
    for (int i = 0; i < total_nx; ++i) {
      const int region = (i < margin_cells || i >= margin_cells + spec.nx) ? 1 : 0;
      const int a = grid[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
      const int b = grid[static_cast<std::size_t>(j)][static_cast<std::size_t>(i) + 1];
      const int c = grid[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(i) + 1];
      const int d = grid[static_cast<std::size_t>(j) + 1][static_cast<std::size_t>(i)];
      mesh.add_triangle(a, b, c, region);
      mesh.add_triangle(a, c, d, region);
    }
  }
  return mesh;
}

}  // namespace usys::fem
