#include "common/partition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/deadline.hpp"
#include "common/thread_pool.hpp"
#include "common/union_find.hpp"

namespace usys {
namespace {

/// Matches the SparseLu / dense lu_solve singularity threshold.
constexpr double kSchurPivotFloor = 1e-300;

/// Symmetrized (pattern + pattern^T), diagonal-free adjacency in CSR form.
void symmetrized_adjacency(int n, const std::vector<int>& row_ptr,
                           const std::vector<int>& col_idx, std::vector<int>& adj_ptr,
                           std::vector<int>& adj) {
  std::vector<std::vector<int>> lists(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int s = row_ptr[static_cast<std::size_t>(r)];
         s < row_ptr[static_cast<std::size_t>(r) + 1]; ++s) {
      const int c = col_idx[static_cast<std::size_t>(s)];
      if (c == r) continue;
      lists[static_cast<std::size_t>(r)].push_back(c);
      lists[static_cast<std::size_t>(c)].push_back(r);
    }
  }
  adj_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  adj.clear();
  for (int v = 0; v < n; ++v) {
    auto& l = lists[static_cast<std::size_t>(v)];
    std::sort(l.begin(), l.end());
    l.erase(std::unique(l.begin(), l.end()), l.end());
    adj.insert(adj.end(), l.begin(), l.end());
    adj_ptr[static_cast<std::size_t>(v) + 1] = static_cast<int>(adj.size());
  }
}

}  // namespace

PartitionPlan partition_pattern(int n, const std::vector<int>& row_ptr,
                                const std::vector<int>& col_idx,
                                const PartitionOptions& opts,
                                const std::vector<int>& seed_interface) {
  if (n < 0 || row_ptr.size() != static_cast<std::size_t>(n) + 1)
    throw std::invalid_argument("partition_pattern: bad pattern dimensions");
  PartitionPlan plan;
  plan.n = n;
  const auto decline = [&plan](const char* why) {
    plan.ok = false;
    plan.decline_reason = why;
    plan.n_blocks = 0;
    plan.block_of.clear();
    plan.interface.clear();
    return plan;
  };
  if (n < opts.min_unknowns) return decline("system too small");

  std::vector<int> adj_ptr, adj;
  symmetrized_adjacency(n, row_ptr, col_idx, adj_ptr, adj);
  const int max_interface =
      opts.max_interface > 0 ? opts.max_interface : std::max(32, n / 8);

  const auto sn = static_cast<std::size_t>(n);
  std::vector<char> in_if(sn, 0);
  int n_if = 0;
  for (int v : seed_interface) {
    if (v < 0 || v >= n) continue;  // seeds are hints, not a contract
    if (!in_if[static_cast<std::size_t>(v)]) {
      in_if[static_cast<std::size_t>(v)] = 1;
      ++n_if;
    }
  }
  if (n_if > max_interface) return decline("interface budget exceeded");

  // Separator loop: peel the highest-degree vertex of the largest remaining
  // component into the interface until the graph falls apart (or give up).
  // Every selection ties on the smallest index, so the plan is
  // deterministic for a given pattern + seed set.
  std::vector<int> root_of(sn, -1);
  std::vector<int> size_of(sn, 0);
  for (int round = 0;; ++round) {
    // Interface absorption, to fixpoint: a vertex whose every neighbor sits
    // in the interface has an empty block row off-diagonal — e.g. a
    // V-source branch unknown whose node went into the interface. Its
    // block diagonal is numerically zero, so pull it into the interface
    // where the global Schur pivoting can handle it.
    for (bool changed = true; changed;) {
      changed = false;
      for (int v = 0; v < n; ++v) {
        const auto sv = static_cast<std::size_t>(v);
        if (in_if[sv]) continue;
        int inblk = 0, iface = 0;
        for (int p = adj_ptr[sv]; p < adj_ptr[sv + 1]; ++p) {
          if (in_if[static_cast<std::size_t>(adj[static_cast<std::size_t>(p)])])
            ++iface;
          else
            ++inblk;
        }
        if (inblk == 0 && iface > 0) {
          in_if[sv] = 1;
          ++n_if;
          changed = true;
        }
      }
    }
    if (n_if > max_interface) return decline("interface budget exceeded");

    // Components of the non-interface subgraph.
    UnionFind uf(n);
    for (int v = 0; v < n; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (in_if[sv]) continue;
      for (int p = adj_ptr[sv]; p < adj_ptr[sv + 1]; ++p) {
        const int u = adj[static_cast<std::size_t>(p)];
        if (u > v && !in_if[static_cast<std::size_t>(u)]) uf.unite(v, u);
      }
    }
    std::fill(size_of.begin(), size_of.end(), 0);
    int ncomp = 0;
    for (int v = 0; v < n; ++v) {
      if (in_if[static_cast<std::size_t>(v)]) {
        root_of[static_cast<std::size_t>(v)] = -1;
        continue;
      }
      const int r = uf.find(v);
      root_of[static_cast<std::size_t>(v)] = r;
      if (size_of[static_cast<std::size_t>(r)]++ == 0) ++ncomp;
    }
    int largest = 0, largest_root = -1;
    for (int r = 0; r < n; ++r) {
      if (size_of[static_cast<std::size_t>(r)] > largest) {
        largest = size_of[static_cast<std::size_t>(r)];
        largest_root = r;
      }
    }
    if (ncomp >= opts.min_islands &&
        static_cast<double>(largest) <= opts.max_island_fraction * n)
      break;  // success: root_of/size_of describe the final islands

    if (round >= opts.max_separator_rounds)
      return decline("no usable island structure");
    int hub = -1, hub_deg = -1;
    for (int v = 0; v < n; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (in_if[sv] || root_of[sv] != largest_root) continue;
      int deg = 0;
      for (int p = adj_ptr[sv]; p < adj_ptr[sv + 1]; ++p)
        if (!in_if[static_cast<std::size_t>(adj[static_cast<std::size_t>(p)])]) ++deg;
      if (deg > hub_deg) {
        hub_deg = deg;
        hub = v;
      }
    }
    if (hub < 0 || hub_deg < opts.min_hub_degree)
      return decline("no hub-like separator");
    in_if[static_cast<std::size_t>(hub)] = 1;
    ++n_if;
    if (n_if > max_interface) return decline("interface budget exceeded");
  }

  // Pack components into at most max_blocks blocks: biggest first onto the
  // lightest block, smallest-index ties everywhere, so block loads balance
  // and the packing is reproducible.
  struct Comp {
    int root, size, min_member;
  };
  std::vector<Comp> comps;
  {
    std::vector<int> min_member(sn, n);
    for (int v = 0; v < n; ++v) {
      const int r = root_of[static_cast<std::size_t>(v)];
      if (r >= 0 && v < min_member[static_cast<std::size_t>(r)])
        min_member[static_cast<std::size_t>(r)] = v;
    }
    for (int r = 0; r < n; ++r)
      if (size_of[static_cast<std::size_t>(r)] > 0)
        comps.push_back({r, size_of[static_cast<std::size_t>(r)],
                         min_member[static_cast<std::size_t>(r)]});
  }
  std::sort(comps.begin(), comps.end(), [](const Comp& a, const Comp& b) {
    if (a.size != b.size) return a.size > b.size;
    return a.min_member < b.min_member;
  });
  const int nb = std::min(opts.max_blocks, static_cast<int>(comps.size()));
  std::vector<long long> weight(static_cast<std::size_t>(nb), 0);
  std::vector<int> block_of_root(sn, -1);
  for (const Comp& c : comps) {
    int lightest = 0;
    for (int b = 1; b < nb; ++b)
      if (weight[static_cast<std::size_t>(b)] < weight[static_cast<std::size_t>(lightest)])
        lightest = b;
    block_of_root[static_cast<std::size_t>(c.root)] = lightest;
    weight[static_cast<std::size_t>(lightest)] += c.size;
  }

  plan.ok = true;
  plan.decline_reason = "";
  plan.n_blocks = nb;
  plan.block_of.assign(sn, -1);
  plan.interface.clear();
  for (int v = 0; v < n; ++v) {
    if (in_if[static_cast<std::size_t>(v)]) {
      plan.interface.push_back(v);
    } else {
      plan.block_of[static_cast<std::size_t>(v)] =
          block_of_root[static_cast<std::size_t>(root_of[static_cast<std::size_t>(v)])];
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// PartitionedLu
// ---------------------------------------------------------------------------

template <typename T>
void PartitionedLu<T>::analyze(const PartitionPlan& plan, int n,
                               const std::vector<int>& row_ptr,
                               const std::vector<int>& col_idx, LuOrdering ordering) {
  if (!plan.ok || plan.n != n)
    throw std::invalid_argument("PartitionedLu::analyze: plan does not match pattern");
  if (n < 0 || row_ptr.size() != static_cast<std::size_t>(n) + 1)
    throw std::invalid_argument("PartitionedLu::analyze: bad pattern dimensions");
  n_ = n;
  factored_ = false;
  interface_ = plan.interface;
  place_ = plan.block_of;
  blocks_.assign(static_cast<std::size_t>(plan.n_blocks), Block{});
  local_.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t s = 0; s < interface_.size(); ++s)
    local_[static_cast<std::size_t>(interface_[s])] = static_cast<int>(s);
  for (int v = 0; v < n; ++v) {
    const int b = place_[static_cast<std::size_t>(v)];
    if (b < 0) continue;
    auto& blk = blocks_[static_cast<std::size_t>(b)];
    local_[static_cast<std::size_t>(v)] = static_cast<int>(blk.globals.size());
    blk.globals.push_back(v);
  }

  // One classification pass over the CSR slots. Global rows of one block
  // arrive in ascending order, which is exactly ascending local order, so
  // each block's sub-CSR appends row by row; local column indices inherit
  // the CSR's within-row ascending order.
  struct BsEntry {
    int col, row, slot;  // interface position, local row, global slot
  };
  std::vector<std::vector<BsEntry>> bs(blocks_.size());
  ss_row_.clear();
  ss_col_.clear();
  ss_slot_.clear();
  for (auto& blk : blocks_) blk.row_ptr.assign(1, 0);
  for (int r = 0; r < n; ++r) {
    const int br = place_[static_cast<std::size_t>(r)];
    for (int s = row_ptr[static_cast<std::size_t>(r)];
         s < row_ptr[static_cast<std::size_t>(r) + 1]; ++s) {
      const int c = col_idx[static_cast<std::size_t>(s)];
      const int bc = place_[static_cast<std::size_t>(c)];
      if (br >= 0 && bc == br) {
        auto& blk = blocks_[static_cast<std::size_t>(br)];
        blk.col_idx.push_back(local_[static_cast<std::size_t>(c)]);
        blk.slot_map.push_back(s);
      } else if (br >= 0 && bc < 0) {
        bs[static_cast<std::size_t>(br)].push_back(
            {local_[static_cast<std::size_t>(c)], local_[static_cast<std::size_t>(r)], s});
      } else if (br < 0 && bc >= 0) {
        auto& blk = blocks_[static_cast<std::size_t>(bc)];
        blk.sb_row.push_back(local_[static_cast<std::size_t>(r)]);
        blk.sb_col.push_back(local_[static_cast<std::size_t>(c)]);
        blk.sb_slot.push_back(s);
      } else if (br < 0 && bc < 0) {
        ss_row_.push_back(local_[static_cast<std::size_t>(r)]);
        ss_col_.push_back(local_[static_cast<std::size_t>(c)]);
        ss_slot_.push_back(s);
      } else {
        throw std::invalid_argument(
            "PartitionedLu::analyze: pattern entry crosses two blocks");
      }
    }
    if (br >= 0) {
      auto& blk = blocks_[static_cast<std::size_t>(br)];
      blk.row_ptr.push_back(static_cast<int>(blk.col_idx.size()));
    }
  }

  // Regroup each block's A_bS entries by interface column (stable, so rows
  // stay ascending within a column), then hand the sub-patterns to SparseLu.
  for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
    auto& blk = blocks_[bi];
    auto& entries = bs[bi];
    std::stable_sort(entries.begin(), entries.end(),
                     [](const BsEntry& a, const BsEntry& b) { return a.col < b.col; });
    blk.cols.clear();
    blk.col_ptr.assign(1, 0);
    blk.rows.clear();
    blk.rslots.clear();
    for (const BsEntry& e : entries) {
      if (blk.cols.empty() || blk.cols.back() != e.col) {
        blk.cols.push_back(e.col);
        blk.col_ptr.push_back(static_cast<int>(blk.rows.size()));
      }
      blk.rows.push_back(e.row);
      blk.rslots.push_back(e.slot);
      blk.col_ptr.back() = static_cast<int>(blk.rows.size());
    }
    blk.lu.analyze(static_cast<int>(blk.globals.size()), blk.row_ptr, blk.col_idx,
                   ordering);
    blk.lu.set_deadline(deadline_);
    blk.vals.assign(blk.slot_map.size(), T{});
    blk.sb_vals.assign(blk.sb_slot.size(), T{});
    blk.w.clear();
    blk.y.assign(blk.globals.size(), T{});
  }
  const auto ns = interface_.size();
  schur_.assign(ns * ns, T{});
  spiv_.assign(ns, 0);
  sscale_.assign(ns, 1.0);
  xs_.assign(ns, T{});
}

template <typename T>
void PartitionedLu<T>::factor_block(Block& b, const std::vector<T>& csr_vals) {
  for (std::size_t k = 0; k < b.slot_map.size(); ++k)
    b.vals[k] = csr_vals[static_cast<std::size_t>(b.slot_map[k])];
  b.lu.factor(b.vals);  // throws SingularMatrixError / DeadlineError
  const auto nloc = b.globals.size();
  const auto ncols = b.cols.size();
  b.w.assign(nloc * ncols, T{});
  for (std::size_t ci = 0; ci < ncols; ++ci) {
    b.y.assign(nloc, T{});
    for (int p = b.col_ptr[ci]; p < b.col_ptr[ci + 1]; ++p)
      b.y[static_cast<std::size_t>(b.rows[static_cast<std::size_t>(p)])] =
          csr_vals[static_cast<std::size_t>(b.rslots[static_cast<std::size_t>(p)])];
    b.lu.solve(b.y);
    std::copy(b.y.begin(), b.y.end(), b.w.begin() + static_cast<std::ptrdiff_t>(ci * nloc));
  }
  for (std::size_t p = 0; p < b.sb_slot.size(); ++p)
    b.sb_vals[p] = csr_vals[static_cast<std::size_t>(b.sb_slot[p])];
}

template <typename T>
void PartitionedLu<T>::factor(const std::vector<T>& csr_vals) {
  if (!analyzed()) throw std::logic_error("PartitionedLu::factor before analyze");
  if (deadline_ != nullptr) deadline_->check("PartitionedLu::factor");
  factored_ = false;
  const int nb = static_cast<int>(blocks_.size());
  if (pool_ != nullptr && threads_ > 1) {
    // ThreadPool rethrows the first task exception on this thread, so a
    // singular block surfaces exactly like in the serial loop.
    pool_->run(nb, [&](int bi) {
      factor_block(blocks_[static_cast<std::size_t>(bi)], csr_vals);
    });
  } else {
    for (int bi = 0; bi < nb; ++bi)
      factor_block(blocks_[static_cast<std::size_t>(bi)], csr_vals);
  }

  // Schur assembly, serial in fixed block order (deterministic for any
  // thread count): S = A_SS - sum_b A_Sb W_b.
  const auto ns = interface_.size();
  const int nsi = static_cast<int>(ns);
  schur_.assign(ns * ns, T{});
  for (std::size_t k = 0; k < ss_slot_.size(); ++k)
    schur_[static_cast<std::size_t>(ss_row_[k]) * ns + static_cast<std::size_t>(ss_col_[k])] =
        csr_vals[static_cast<std::size_t>(ss_slot_[k])];
  for (const Block& b : blocks_) {
    const auto nloc = b.globals.size();
    const auto ncols = b.cols.size();
    for (std::size_t p = 0; p < b.sb_row.size(); ++p) {
      const T v = b.sb_vals[p];
      if (v == T{}) continue;
      const auto r = static_cast<std::size_t>(b.sb_row[p]);
      const auto lc = static_cast<std::size_t>(b.sb_col[p]);
      for (std::size_t ci = 0; ci < ncols; ++ci)
        schur_[r * ns + static_cast<std::size_t>(b.cols[ci])] -= v * b.w[ci * nloc + lc];
    }
  }

  // Dense LU of the interface system with row max-scaling and partial
  // pivoting (smallest-row ties). ns is small by the partitioner's budget,
  // so O(ns^3) here is the acceptable serial share.
  for (int r = 0; r < nsi; ++r) {
    double m = 0.0;
    for (int c = 0; c < nsi; ++c)
      m = std::max(m, std::abs(schur_[static_cast<std::size_t>(r) * ns +
                                      static_cast<std::size_t>(c)]));
    const double s = (m > 0.0) ? 1.0 / m : 1.0;
    sscale_[static_cast<std::size_t>(r)] = s;
    for (int c = 0; c < nsi; ++c)
      schur_[static_cast<std::size_t>(r) * ns + static_cast<std::size_t>(c)] *= s;
  }
  for (int k = 0; k < nsi; ++k) {
    int piv = k;
    double amax = std::abs(schur_[static_cast<std::size_t>(k) * ns +
                                  static_cast<std::size_t>(k)]);
    for (int r = k + 1; r < nsi; ++r) {
      const double m = std::abs(schur_[static_cast<std::size_t>(r) * ns +
                                       static_cast<std::size_t>(k)]);
      if (m > amax) {
        amax = m;
        piv = r;
      }
    }
    if (amax < kSchurPivotFloor)
      throw SingularMatrixError(static_cast<std::size_t>(interface_[static_cast<std::size_t>(piv)]));
    spiv_[static_cast<std::size_t>(k)] = piv;
    if (piv != k) {
      for (int c = 0; c < nsi; ++c)
        std::swap(schur_[static_cast<std::size_t>(k) * ns + static_cast<std::size_t>(c)],
                  schur_[static_cast<std::size_t>(piv) * ns + static_cast<std::size_t>(c)]);
    }
    const T d = schur_[static_cast<std::size_t>(k) * ns + static_cast<std::size_t>(k)];
    for (int r = k + 1; r < nsi; ++r) {
      const T mult = schur_[static_cast<std::size_t>(r) * ns + static_cast<std::size_t>(k)] / d;
      schur_[static_cast<std::size_t>(r) * ns + static_cast<std::size_t>(k)] = mult;
      if (mult != T{}) {
        for (int c = k + 1; c < nsi; ++c)
          schur_[static_cast<std::size_t>(r) * ns + static_cast<std::size_t>(c)] -=
              mult * schur_[static_cast<std::size_t>(k) * ns + static_cast<std::size_t>(c)];
      }
    }
  }
  factored_ = true;
}

template <typename T>
void PartitionedLu<T>::solve(std::vector<T>& b) const {
  if (!factored_) throw std::logic_error("PartitionedLu::solve before factor");
  if (b.size() != static_cast<std::size_t>(n_))
    throw std::invalid_argument("PartitionedLu::solve: rhs size mismatch");
  if (deadline_ != nullptr) deadline_->check("PartitionedLu::solve");
  const int nb = static_cast<int>(blocks_.size());

  // y_b = A_bb^{-1} b_b, independently per block.
  const auto block_forward = [&](int bi) {
    const Block& blk = blocks_[static_cast<std::size_t>(bi)];
    const auto nloc = blk.globals.size();
    blk.y.resize(nloc);
    for (std::size_t i = 0; i < nloc; ++i)
      blk.y[i] = b[static_cast<std::size_t>(blk.globals[i])];
    blk.lu.solve(blk.y);
  };
  const bool parallel = pool_ != nullptr && threads_ > 1;
  if (parallel) {
    pool_->run(nb, block_forward);
  } else {
    for (int bi = 0; bi < nb; ++bi) block_forward(bi);
  }

  // r_S = b_S - sum_b A_Sb y_b, serial in fixed block order.
  const auto ns = interface_.size();
  const int nsi = static_cast<int>(ns);
  xs_.resize(ns);
  for (std::size_t s = 0; s < ns; ++s)
    xs_[s] = b[static_cast<std::size_t>(interface_[s])];
  for (const Block& blk : blocks_) {
    for (std::size_t p = 0; p < blk.sb_row.size(); ++p)
      xs_[static_cast<std::size_t>(blk.sb_row[p])] -=
          blk.sb_vals[p] * blk.y[static_cast<std::size_t>(blk.sb_col[p])];
  }

  // Dense interface solve against the stored scaled/pivoted LU.
  for (std::size_t s = 0; s < ns; ++s) xs_[s] *= sscale_[s];
  for (int k = 0; k < nsi; ++k) {
    const int piv = spiv_[static_cast<std::size_t>(k)];
    if (piv != k) std::swap(xs_[static_cast<std::size_t>(k)], xs_[static_cast<std::size_t>(piv)]);
  }
  for (int k = 0; k < nsi; ++k) {
    const T v = xs_[static_cast<std::size_t>(k)];
    if (v == T{}) continue;
    for (int r = k + 1; r < nsi; ++r)
      xs_[static_cast<std::size_t>(r)] -=
          schur_[static_cast<std::size_t>(r) * ns + static_cast<std::size_t>(k)] * v;
  }
  for (int k = nsi; k-- > 0;) {
    T acc = xs_[static_cast<std::size_t>(k)];
    for (int c = k + 1; c < nsi; ++c)
      acc -= schur_[static_cast<std::size_t>(k) * ns + static_cast<std::size_t>(c)] *
             xs_[static_cast<std::size_t>(c)];
    xs_[static_cast<std::size_t>(k)] =
        acc / schur_[static_cast<std::size_t>(k) * ns + static_cast<std::size_t>(k)];
  }

  // x_b = y_b - W_b x_S, then scatter back, independently per block.
  const auto block_backward = [&](int bi) {
    const Block& blk = blocks_[static_cast<std::size_t>(bi)];
    const auto nloc = blk.globals.size();
    const auto ncols = blk.cols.size();
    for (std::size_t ci = 0; ci < ncols; ++ci) {
      const T v = xs_[static_cast<std::size_t>(blk.cols[ci])];
      if (v == T{}) continue;
      const T* w = blk.w.data() + static_cast<std::ptrdiff_t>(ci * nloc);
      for (std::size_t i = 0; i < nloc; ++i) blk.y[i] -= w[i] * v;
    }
    for (std::size_t i = 0; i < nloc; ++i)
      b[static_cast<std::size_t>(blk.globals[i])] = blk.y[i];
  };
  if (parallel) {
    pool_->run(nb, block_backward);
  } else {
    for (int bi = 0; bi < nb; ++bi) block_backward(bi);
  }
  for (std::size_t s = 0; s < ns; ++s)
    b[static_cast<std::size_t>(interface_[s])] = xs_[s];
}

template <typename T>
void PartitionedLu<T>::set_deadline(const Deadline* deadline) noexcept {
  deadline_ = deadline;
  for (auto& blk : blocks_) blk.lu.set_deadline(deadline);
}

template <typename T>
void PartitionedLu<T>::invalidate_pivot_order() noexcept {
  factored_ = false;
  for (auto& blk : blocks_) blk.lu.invalidate_pivot_order();
}

template <typename T>
int PartitionedLu<T>::symbolic_factorizations() const noexcept {
  int m = 0;
  for (const auto& blk : blocks_) m = std::max(m, blk.lu.symbolic_factorizations());
  return m;
}

template <typename T>
std::size_t PartitionedLu<T>::factor_nonzeros() const noexcept {
  if (!factored_) return 0;
  std::size_t s = schur_.size();
  for (const auto& blk : blocks_) s += blk.lu.factor_nonzeros() + blk.w.size();
  return s;
}

template class PartitionedLu<double>;
template class PartitionedLu<std::complex<double>>;

}  // namespace usys
