// Device-array scaling: serial vs parallel MNA assembly on N-element
// transverse-transducer arrays (the thousand-transducer MEMS workload the
// sparse path was built for), plus batch sweep throughput via SweepRunner.
//
// The arrays are built through the netlist front end's one-line constructs
// (`X... TRANSARRAY n=N ...`), so this bench also covers the ARRAY parse
// path at scale. Assembly benches time ONE MnaAssembler::assemble pass —
// the per-Newton-iteration device-evaluation cost the parallel gather
// targets; the summary table at exit reports the serial/parallel speedup at
// 2 and 4 threads (the acceptance metric: >= 2x at 4 threads on a >= 1000
// element array, hardware permitting — on fewer physical cores the
// speedup degrades toward 1x while results stay bit-identical).
//
// CI smoke mode: --benchmark_min_time=0.02s --benchmark_format=json
//                --benchmark_out=BENCH_array_scaling.json
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "core/netlist_ext.hpp"
#include "spice/engine.hpp"
#include "spice/sweep.hpp"

using namespace usys;

namespace {

std::string array_netlist(int elements, double gap) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "* transducer array\n"
                "V1 drive 0 2\n"
                "Xarr drive 0 TRANSARRAY n=%d a=1e-8 d=%g m=1e-9 k=25 "
                "alpha=1e-4 dspread=0.1\n",
                elements, gap);
  return buf;
}

std::unique_ptr<spice::Circuit> build_array(int elements, double gap = 2e-6) {
  auto parser = core::make_full_parser();
  return parser.parse(array_netlist(elements, gap)).circuit;
}

struct AssembleHarness {
  std::unique_ptr<spice::Circuit> ckt;
  std::unique_ptr<spice::MnaAssembler> assembler;
  DVector x, f, q;
  spice::EvalCtx ctx;

  AssembleHarness(int elements, int threads) : ckt(build_array(elements)) {
    ckt->bind_all();
    const spice::MnaPattern& pattern = ckt->mna_pattern();
    assembler = std::make_unique<spice::MnaAssembler>(*ckt, pattern, threads);
    x.assign(static_cast<std::size_t>(ckt->unknown_count()), 1e-3);
    ctx.mode = spice::AnalysisMode::transient;
    ctx.time = 1e-6;
    ctx.integ_c1 = 1e-6;
  }

  void run_one() {
    assembler->assemble(ctx, x, f, q);
    benchmark::DoNotOptimize(f.data());
  }
};

void BM_Assemble(benchmark::State& state) {
  AssembleHarness harness(static_cast<int>(state.range(0)),
                          static_cast<int>(state.range(1)));
  for (auto _ : state) harness.run_one();
  state.counters["unknowns"] = static_cast<double>(harness.ckt->unknown_count());
  state.counters["threads"] =
      static_cast<double>(harness.assembler->assembly_threads());
}

BENCHMARK(BM_Assemble)
    ->ArgsProduct({{256, 1024, 4096}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

/// Batch sweep: a 16-point gap x drive grid of operating points on a
/// 64-element array per point, fanned across the pool.
void BM_SweepOpGrid(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto grid =
      spice::sweep_grid({spice::SweepAxis::linspace("gap", 1.5e-6, 2.5e-6, 4),
                         spice::SweepAxis::linspace("vd", 0.5, 2.0, 4)});
  spice::SweepRunner runner(threads);
  int failures = 0;
  for (auto _ : state) {
    const auto results = runner.run(grid, [](const spice::SweepPoint& p) {
      auto ckt = build_array(64, p.value("gap"));
      spice::AnalysisEngine engine(*ckt);
      const spice::OpResult op = engine.run_op();
      spice::SweepOutcome out;
      out.ok = op.converged;
      return out;
    });
    for (const auto& r : results) failures += r.ok ? 0 : 1;
  }
  if (failures > 0) state.SkipWithError("sweep points failed");
  state.counters["points"] = static_cast<double>(grid.size());
}

BENCHMARK(BM_SweepOpGrid)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

/// Direct wall-clock summary (independent of google-benchmark's repetition
/// policy) — this is the table the acceptance criterion reads.
void print_summary() {
  using clock = std::chrono::steady_clock;
  std::printf("\n=== serial vs parallel assembly: time per stamp pass ===\n");
  std::printf("(hardware concurrency: %u)\n", std::thread::hardware_concurrency());
  std::printf("%8s %10s %14s %14s %14s %10s %10s\n", "elements", "unknowns",
              "serial [ms]", "2 thr [ms]", "4 thr [ms]", "speedup2", "speedup4");
  for (int elements : {256, 1024, 4096}) {
    double times[3] = {0.0, 0.0, 0.0};
    int unknowns = 0;
    const int variants[3] = {1, 2, 4};
    for (int v = 0; v < 3; ++v) {
      AssembleHarness harness(elements, variants[v]);
      unknowns = harness.ckt->unknown_count();
      harness.run_one();  // warm-up
      const int reps = elements >= 4096 ? 10 : 40;
      const auto t0 = clock::now();
      for (int r = 0; r < reps; ++r) harness.run_one();
      times[v] =
          std::chrono::duration<double, std::milli>(clock::now() - t0).count() / reps;
    }
    std::printf("%8d %10d %14.3f %14.3f %14.3f %9.2fx %9.2fx\n", elements, unknowns,
                times[0], times[1], times[2], times[0] / times[1], times[0] / times[2]);
  }
  std::printf("\nphase 1 (device evaluation) parallelizes across chunks; phase 2\n"
              "gathers each CSR slot in device order, so any thread count is\n"
              "bit-identical to serial. Speedups need physical cores to show.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
