#include "spice/circuit.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "spice/mna.hpp"

namespace usys::spice {

Circuit::Circuit() = default;
Circuit::~Circuit() = default;

const MnaPattern& Circuit::mna_pattern() {
  bind_all();
  if (!mna_pattern_) mna_pattern_ = std::make_unique<MnaPattern>(*this);
  return *mna_pattern_;
}

double effort_abstol(Nature n) noexcept {
  switch (n) {
    case Nature::electrical: return 1e-6;                // V
    case Nature::mechanical_translation: return 1e-12;   // m/s
    case Nature::mechanical_rotation: return 1e-12;      // rad/s
    case Nature::hydraulic: return 1e-3;                 // Pa
    case Nature::thermal: return 1e-6;                   // K
  }
  return 1e-9;
}

double flow_abstol(Nature n) noexcept {
  switch (n) {
    case Nature::electrical: return 1e-12;               // A
    case Nature::mechanical_translation: return 1e-12;   // N
    case Nature::mechanical_rotation: return 1e-12;      // N*m
    case Nature::hydraulic: return 1e-12;                // m^3/s
    case Nature::thermal: return 1e-9;                   // W
  }
  return 1e-12;
}

int Binder::alloc_branch(Nature through_nature) {
  return circuit_.alloc_branch_unknown(through_nature);
}

int Binder::unknown_watermark() const noexcept { return circuit_.unknown_count_; }

Nature Binder::node_nature(int node) const {
  if (node == Circuit::kGround) return Nature::electrical;  // ground is universal
  return circuit_.node_nature(node);
}

void Binder::require_nature(int node, Nature expected, const std::string& device_name) const {
  if (node == Circuit::kGround) return;  // ground connects to every domain
  const Nature actual = circuit_.node_nature(node);
  if (actual != expected) {
    throw CircuitError("device '" + device_name + "': pin expects nature '" +
                       std::string(to_string(expected)) + "' but node '" +
                       circuit_.node_name(node) + "' has nature '" +
                       std::string(to_string(actual)) + "'");
  }
}

int Circuit::add_node(std::string_view name, Nature nature) {
  if (bound_) throw CircuitError("add_node after bind_all");
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  if (const auto it = node_index_.find(name); it != node_index_.end()) {
    const NodeRec& rec = nodes_[static_cast<std::size_t>(it->second)];
    if (rec.nature != nature) {
      throw CircuitError("node '" + std::string(name) + "' redeclared with nature '" +
                         std::string(to_string(nature)) + "' (was '" +
                         std::string(to_string(rec.nature)) + "')");
    }
    return it->second;
  }
  nodes_.push_back({std::string(name), nature});
  const int id = static_cast<int>(nodes_.size()) - 1;
  node_index_.emplace(nodes_.back().name, id);
  return id;
}

void Circuit::set_node_line(int id, int line) {
  if (id < 0 || id >= node_count()) return;
  NodeRec& rec = nodes_[static_cast<std::size_t>(id)];
  if (rec.line == 0) rec.line = line;
}

std::optional<int> Circuit::find_node(std::string_view name) const noexcept {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  const auto it = node_index_.find(name);
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

int Circuit::node(std::string_view name) const {
  const auto id = find_node(name);
  if (!id) throw CircuitError("unknown node '" + std::string(name) + "'");
  return *id;
}

void Circuit::add_device(std::unique_ptr<Device> dev) {
  if (bound_) throw CircuitError("add_device after bind_all");
  if (device_index_.count(dev->name()) != 0U)
    throw CircuitError("duplicate device name '" + dev->name() + "'");
  device_index_.emplace(dev->name(), static_cast<int>(devices_.size()));
  devices_.push_back(std::move(dev));
}

Device* Circuit::find_device(std::string_view name) noexcept {
  const auto it = device_index_.find(name);
  if (it == device_index_.end()) return nullptr;
  return devices_[static_cast<std::size_t>(it->second)].get();
}

int Circuit::alloc_branch_unknown(Nature through_nature) {
  unknown_natures_.push_back(through_nature);
  abstol_.push_back(flow_abstol(through_nature));
  return unknown_count_++;
}

void Circuit::bind_all() {
  if (bound_) return;
  // Node unknowns come first, in declaration order.
  unknown_natures_.clear();
  abstol_.clear();
  unknown_natures_.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    unknown_natures_.push_back(n.nature);
    abstol_.push_back(effort_abstol(n.nature));
  }
  unknown_count_ = static_cast<int>(nodes_.size());
  Binder binder(*this);
  for (auto& d : devices_) d->bind(binder);
  bound_ = true;
}

}  // namespace usys::spice
