#include "spice/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "common/strings.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/stats.hpp"
#include "spice/devices_nonlinear.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

// Tokenizes one card, keeping parenthesized waveform argument groups intact:
// "V1 in 0 PULSE(0 10 5m) AC 1" -> {V1, in, 0, PULSE(0 10 5m), AC, 1}.
std::vector<std::string> tokenize_card(std::string_view line, int lineno) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : line) {
    if (c == '(') ++depth;
    if (c == ')') {
      --depth;
      if (depth < 0) throw NetlistError(lineno, "unbalanced ')'");
    }
    if ((std::isspace(static_cast<unsigned char>(c)) != 0) && depth == 0) {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (depth != 0) throw NetlistError(lineno, "unbalanced '('");
  if (!cur.empty()) out.push_back(cur);
  return out;
}

double parse_num(const std::string& tok, int lineno) {
  const auto v = parse_spice_number(tok);
  if (!v) throw NetlistError(lineno, "expected a number, got '" + tok + "'");
  return *v;
}

/// Parses "PULSE(a b c ...)" / "SIN(...)" / "PWL(...)" / plain number.
std::unique_ptr<Waveform> parse_waveform(const std::string& tok, int lineno) {
  const auto open = tok.find('(');
  if (open == std::string::npos) {
    return std::make_unique<DcWave>(parse_num(tok, lineno));
  }
  const std::string kind = to_lower(trim(std::string_view(tok).substr(0, open)));
  if (tok.back() != ')') throw NetlistError(lineno, "malformed waveform '" + tok + "'");
  const std::string inner(tok.begin() + static_cast<std::ptrdiff_t>(open) + 1,
                          tok.end() - 1);
  std::vector<double> vals;
  for (auto piece : split(inner, " \t,")) vals.push_back(parse_num(std::string(piece), lineno));

  if (kind == "pulse") {
    if (vals.size() < 6) throw NetlistError(lineno, "PULSE needs v1 v2 td tr tf pw [per]");
    return std::make_unique<PulseWave>(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5],
                                       vals.size() > 6 ? vals[6] : 0.0);
  }
  if (kind == "sin") {
    if (vals.size() < 3) throw NetlistError(lineno, "SIN needs vo va freq [td theta]");
    return std::make_unique<SinWave>(vals[0], vals[1], vals[2],
                                     vals.size() > 3 ? vals[3] : 0.0,
                                     vals.size() > 4 ? vals[4] : 0.0);
  }
  if (kind == "pwl") {
    if (vals.size() < 2 || vals.size() % 2 != 0)
      throw NetlistError(lineno, "PWL needs t0 v0 t1 v1 ...");
    std::vector<std::pair<double, double>> pts;
    for (std::size_t i = 0; i + 1 < vals.size(); i += 2) pts.emplace_back(vals[i], vals[i + 1]);
    return std::make_unique<PwlWave>(std::move(pts));
  }
  if (kind == "dc") {
    if (vals.size() != 1) throw NetlistError(lineno, "DC needs one value");
    return std::make_unique<DcWave>(vals[0]);
  }
  throw NetlistError(lineno, "unknown waveform kind '" + kind + "'");
}

void register_builtin_xdevices(NetlistParser& p) {
  p.register_xdevice("MASS", [](XDeviceArgs& a) {
    if (a.pins.size() != 1) throw NetlistError(a.line, "MASS takes 1 pin");
    const int n = a.node(a.pins[0], Nature::mechanical_translation);
    a.circuit->add<Mass>(a.name, n, require_param(a, "m"));
  });
  p.register_xdevice("SPRING", [](XDeviceArgs& a) {
    if (a.pins.size() != 2) throw NetlistError(a.line, "SPRING takes 2 pins");
    const int n1 = a.node(a.pins[0], Nature::mechanical_translation);
    const int n2 = a.node(a.pins[1], Nature::mechanical_translation);
    a.circuit->add<Spring>(a.name, n1, n2, require_param(a, "k"));
  });
  p.register_xdevice("DAMPER", [](XDeviceArgs& a) {
    if (a.pins.size() != 2) throw NetlistError(a.line, "DAMPER takes 2 pins");
    const int n1 = a.node(a.pins[0], Nature::mechanical_translation);
    const int n2 = a.node(a.pins[1], Nature::mechanical_translation);
    a.circuit->add<Damper>(a.name, n1, n2, require_param(a, "alpha"));
  });
  p.register_xdevice("FORCE", [](XDeviceArgs& a) {
    if (a.pins.size() != 1) throw NetlistError(a.line, "FORCE takes 1 pin");
    const int n = a.node(a.pins[0], Nature::mechanical_translation);
    a.circuit->add<ForceSource>(a.name, n, require_param(a, "f"));
  });
  // Nature-agnostic pins (couplers and probes): adopt an existing node's
  // nature when the node was created earlier in the netlist, so e.g.
  // `Xi disp vel INTEG` after mechanical cards keeps `vel` mechanical.
  const auto adopt = [](XDeviceArgs& a, const std::string& pin) {
    if (const auto existing = a.circuit->find_node(pin)) {
      if (*existing == Circuit::kGround) return *existing;
      return a.node(pin, a.circuit->node_nature(*existing));
    }
    return a.node(pin, Nature::electrical);
  };
  p.register_xdevice("XFMR", [adopt](XDeviceArgs& a) {
    if (a.pins.size() != 4) throw NetlistError(a.line, "XFMR takes 4 pins");
    a.circuit->add<IdealTransformer>(a.name, adopt(a, a.pins[0]), adopt(a, a.pins[1]),
                                     adopt(a, a.pins[2]), adopt(a, a.pins[3]),
                                     require_param(a, "n"));
  });
  p.register_xdevice("GYR", [adopt](XDeviceArgs& a) {
    if (a.pins.size() != 4) throw NetlistError(a.line, "GYR takes 4 pins");
    a.circuit->add<Gyrator>(a.name, adopt(a, a.pins[0]), adopt(a, a.pins[1]),
                            adopt(a, a.pins[2]), adopt(a, a.pins[3]),
                            require_param(a, "g"));
  });
  p.register_xdevice("INTEG", [adopt](XDeviceArgs& a) {
    if (a.pins.size() != 2) throw NetlistError(a.line, "INTEG takes 2 pins (out, in)");
    // The probe output node inherits the input's nature (displacement probe
    // of a mechanical node is itself mechanical).
    const int in = adopt(a, a.pins[1]);
    const Nature out_nature =
        in == Circuit::kGround ? Nature::electrical : a.circuit->node_nature(in);
    const int out = a.node(a.pins[0], out_nature);
    a.circuit->add<StateIntegrator>(a.name, out, in, param_or(a, "x0", 0.0));
  });
}

/// Expands .array placeholders in one token for element index `i`: every
/// `{i}`, `{i+N}`, or `{i-N}` group becomes the decimal element number.
std::string expand_array_token(const std::string& tok, int i, int lineno) {
  std::string out;
  out.reserve(tok.size());
  for (std::size_t p = 0; p < tok.size();) {
    if (tok[p] != '{') {
      out += tok[p++];
      continue;
    }
    const auto close = tok.find('}', p);
    if (close == std::string::npos)
      throw NetlistError(lineno, "unbalanced '{' in .array card token '" + tok + "'");
    const std::string expr(trim(tok.substr(p + 1, close - p - 1)));
    long val = i;
    bool ok = !expr.empty() && expr[0] == 'i';
    if (ok && expr.size() > 1) {
      const char op = expr[1];
      std::size_t digits = 0;
      long n = 0;
      try {
        n = std::stol(expr.substr(2), &digits);
      } catch (const std::exception&) {
        ok = false;
      }
      ok = ok && digits == expr.size() - 2 && n >= 0 && (op == '+' || op == '-');
      if (ok) val += op == '+' ? n : -n;
    }
    if (!ok)
      throw NetlistError(lineno, "array placeholder '{" + expr +
                                     "}' must be {i}, {i+N}, or {i-N}");
    out += std::to_string(val);
    p = close + 1;
  }
  return out;
}

}  // namespace

double require_param(const XDeviceArgs& args, const std::string& key) {
  const auto it = args.params.find(key);
  if (it == args.params.end())
    throw NetlistError(args.line, "device '" + args.name + "': missing parameter '" + key + "'");
  return it->second;
}

double param_or(const XDeviceArgs& args, const std::string& key, double fallback) {
  const auto it = args.params.find(key);
  return it == args.params.end() ? fallback : it->second;
}

std::string sparam_or(const XDeviceArgs& args, const std::string& key,
                      const std::string& fallback) {
  if (const auto it = args.sparams.find(key); it != args.sparams.end()) return it->second;
  if (args.options != nullptr) {
    if (const auto it = args.options->find(key); it != args.options->end())
      return it->second;
  }
  return fallback;
}

NetlistParser::NetlistParser() { register_builtin_xdevices(*this); }

void NetlistParser::register_xdevice(const std::string& type, XDeviceFactory factory) {
  xdevices_[to_lower(type)] = std::move(factory);
}

void NetlistParser::register_string_option(const std::string& key,
                                           OptionValidator validate) {
  string_option_keys_[to_lower(key)] = std::move(validate);
}

void NetlistParser::register_string_param(const std::string& key) {
  string_param_keys_.insert(to_lower(key));
}

void NetlistParser::set_option(const std::string& key, const std::string& value) {
  const std::string k = to_lower(key);
  const auto it = string_option_keys_.find(k);
  if (it == string_option_keys_.end())
    throw NetlistError(0, "unknown option '" + k + "'");
  if (it->second && !it->second(value))
    throw NetlistError(0, "bad value '" + value + "' for option '" + k + "'");
  default_options_[k] = value;
}

Netlist NetlistParser::parse(const std::string& text) {
  Netlist out;
  out.circuit = std::make_unique<Circuit>();
  Circuit& ckt = *out.circuit;

  // Pass 1: .node nature declarations (so later cards see the right natures).
  std::map<std::string, Nature> declared;
  {
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const auto t = trim(line);
      if (!t.starts_with(".node") && !t.starts_with(".NODE")) continue;
      const auto toks = tokenize_card(t, lineno);
      if (toks.size() != 3) throw NetlistError(lineno, ".node needs <name> <nature>");
      Nature n{};
      if (!parse_nature(to_lower(toks[2]), n))
        throw NetlistError(lineno, "unknown nature '" + toks[2] + "'");
      declared[toks[1]] = n;
    }
  }

  // Line of the card currently being processed, for diagnostic provenance
  // (device and node records carry the netlist line they first appeared on).
  int current_line = 0;

  auto get_node = [&](const std::string& name, Nature fallback) -> int {
    const auto it = declared.find(name);
    const int id = ckt.add_node(name, it != declared.end() ? it->second : fallback);
    ckt.set_node_line(id, current_line);
    return id;
  };

  StringMap soptions = default_options_;  // string .options in effect

  // One device card (anything that is not a '.' directive). Factored out so
  // .array can re-dispatch expanded card instances through the same path;
  // array instances pass their origin (array head token + element index) so
  // the devices they create can be attributed to a cell by the linter.
  auto process_card = [&](const std::vector<std::string>& toks, int lineno,
                          const std::string& array_name = {}, int array_cell = -1) {
    current_line = lineno;
    const std::size_t dev0 = ckt.devices().size();
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(toks[0][0])));
    const std::string& name = toks[0];
    switch (kind) {
      case 'r': {
        if (toks.size() != 4) throw NetlistError(lineno, "R card: R<id> a b <ohms>");
        ckt.add<Resistor>(name, get_node(toks[1], Nature::electrical),
                          get_node(toks[2], Nature::electrical), parse_num(toks[3], lineno));
        break;
      }
      case 'c': {
        if (toks.size() != 4) throw NetlistError(lineno, "C card: C<id> a b <farads>");
        ckt.add<Capacitor>(name, get_node(toks[1], Nature::electrical),
                           get_node(toks[2], Nature::electrical), parse_num(toks[3], lineno));
        break;
      }
      case 'l': {
        if (toks.size() != 4) throw NetlistError(lineno, "L card: L<id> a b <henries>");
        ckt.add<Inductor>(name, get_node(toks[1], Nature::electrical),
                          get_node(toks[2], Nature::electrical), parse_num(toks[3], lineno));
        break;
      }
      case 'v':
      case 'i': {
        if (toks.size() < 4) throw NetlistError(lineno, "source card: needs n+ n- value");
        const int a = get_node(toks[1], Nature::electrical);
        const int b = get_node(toks[2], Nature::electrical);
        auto wave = parse_waveform(toks[3], lineno);
        double ac_mag = 0.0;
        double ac_ph = 0.0;
        for (std::size_t i = 4; i < toks.size(); ++i) {
          if (iequals(toks[i], "ac")) {
            if (i + 1 >= toks.size()) throw NetlistError(lineno, "AC needs magnitude");
            ac_mag = parse_num(toks[i + 1], lineno);
            if (i + 2 < toks.size()) ac_ph = parse_num(toks[i + 2], lineno);
            break;
          }
        }
        const Nature nat =
            declared.count(toks[1]) != 0U
                ? declared[toks[1]]
                : (declared.count(toks[2]) != 0U ? declared[toks[2]] : Nature::electrical);
        if (kind == 'v') {
          ckt.add<VSource>(name, a, b, std::move(wave), nat, ac_mag, ac_ph);
        } else {
          ckt.add<ISource>(name, a, b, std::move(wave), nat, ac_mag, ac_ph);
        }
        break;
      }
      case 'e': {
        if (toks.size() != 6) throw NetlistError(lineno, "E card: E<id> o+ o- c+ c- <gain>");
        ckt.add<Vcvs>(name, get_node(toks[1], Nature::electrical),
                      get_node(toks[2], Nature::electrical),
                      get_node(toks[3], Nature::electrical),
                      get_node(toks[4], Nature::electrical), parse_num(toks[5], lineno));
        break;
      }
      case 'g': {
        if (toks.size() != 6) throw NetlistError(lineno, "G card: G<id> o+ o- c+ c- <gm>");
        ckt.add<Vccs>(name, get_node(toks[1], Nature::electrical),
                      get_node(toks[2], Nature::electrical),
                      get_node(toks[3], Nature::electrical),
                      get_node(toks[4], Nature::electrical), parse_num(toks[5], lineno));
        break;
      }
      case 'f': {
        if (toks.size() != 5) throw NetlistError(lineno, "F card: F<id> o+ o- <vsrc> <gain>");
        ckt.add<Cccs>(name, get_node(toks[1], Nature::electrical),
                      get_node(toks[2], Nature::electrical), toks[3],
                      parse_num(toks[4], lineno), ckt);
        break;
      }
      case 'h': {
        if (toks.size() != 5) throw NetlistError(lineno, "H card: H<id> o+ o- <vsrc> <r>");
        ckt.add<Ccvs>(name, get_node(toks[1], Nature::electrical),
                      get_node(toks[2], Nature::electrical), toks[3],
                      parse_num(toks[4], lineno), ckt);
        break;
      }
      case 'd': {
        if (toks.size() < 3 || toks.size() > 5)
          throw NetlistError(lineno, "D card: D<id> a k [Is] [n]");
        const double is = toks.size() > 3 ? parse_num(toks[3], lineno) : 1e-14;
        const double em = toks.size() > 4 ? parse_num(toks[4], lineno) : 1.0;
        ckt.add<Diode>(name, get_node(toks[1], Nature::electrical),
                       get_node(toks[2], Nature::electrical), is, em);
        break;
      }
      case 'x': {
        // X<name> pin1 ... pinN TYPE [k=v ...]
        XDeviceArgs args;
        args.name = name;
        args.circuit = &ckt;
        args.line = lineno;
        args.options = &soptions;
        args.node = get_node;
        std::string type;
        for (std::size_t i = 1; i < toks.size(); ++i) {
          const auto eq = toks[i].find('=');
          if (eq != std::string::npos) {
            // Registered string keys (e.g. mode=codegen on HDL cards) pass
            // verbatim; everything else keeps the strict numeric contract,
            // so value typos (er=one, m=1e--9) stay hard errors instead of
            // silently falling through to a factory default.
            const std::string key = to_lower(toks[i].substr(0, eq));
            const std::string val = toks[i].substr(eq + 1);
            if (string_param_keys_.count(key) != 0U) {
              args.sparams[key] = val;
            } else {
              args.params[key] = parse_num(val, lineno);
            }
          } else if (xdevices_.count(to_lower(toks[i])) != 0U) {
            type = to_lower(toks[i]);
          } else {
            if (!type.empty())
              throw NetlistError(lineno, "unexpected token '" + toks[i] + "' after type");
            args.pins.push_back(toks[i]);
          }
        }
        if (type.empty()) throw NetlistError(lineno, "X card without a known TYPE");
        xdevices_[type](args);
        break;
      }
      default:
        throw NetlistError(lineno, "unknown card '" + toks[0] + "'");
    }
    // Stamp provenance on every device this card created (X cards may add
    // more than one).
    for (std::size_t di = dev0; di < ckt.devices().size(); ++di) {
      Device& dev = *ckt.devices()[di];
      dev.set_netlist_line(lineno);
      if (!array_name.empty()) dev.set_array_cell(array_name, array_cell);
    }
  };

  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool first_content_line = true;
  TranOptions tran_defaults;  // accumulated from .options cards
  while (std::getline(is, line)) {
    ++lineno;
    // Strip ';' comments, then skip blank / '*' comment lines.
    if (const auto semi = line.find(';'); semi != std::string::npos) line.resize(semi);
    const std::string_view t = trim(line);
    if (t.empty() || t[0] == '*') {
      if (first_content_line && !t.empty()) {
        out.title = std::string(t.substr(1));
        first_content_line = false;
      }
      continue;
    }
    first_content_line = false;
    const auto toks = tokenize_card(t, lineno);
    const std::string head = to_lower(toks[0]);

    if (head[0] == '.') {
      if (head == ".node") continue;  // handled in pass 1
      // Statistical sweep cards are extracted from the raw text by the
      // parse_param_dists / parse_measures pre-passes (they drive {name}
      // placeholders this parser never sees substituted); inert here.
      if (head == ".param" || head == ".measure") continue;
      if (head == ".end") break;
      if (head == ".op") {
        AnalysisCard card;
        card.kind = AnalysisCard::Kind::op;
        out.analyses.push_back(card);
        continue;
      }
      if (head == ".tran") {
        if (toks.size() < 3) throw NetlistError(lineno, ".tran needs <dtinit> <tstop>");
        AnalysisCard card;
        card.kind = AnalysisCard::Kind::tran;
        card.tran = tran_defaults;
        card.tran.dt_init = parse_num(toks[1], lineno);
        card.tran.tstop = parse_num(toks[2], lineno);
        if (card.tran.dt_init <= 0.0 || card.tran.tstop <= 0.0)
          throw NetlistError(lineno, ".tran needs positive <dtinit> and <tstop>");
        out.analyses.push_back(card);
        continue;
      }
      if (head == ".options") {
        // .options [method=be|trap|gear] [dtmax=<s>] [reltol=<x>]
        for (std::size_t i = 1; i < toks.size(); ++i) {
          const auto eq = toks[i].find('=');
          if (eq == std::string::npos)
            throw NetlistError(lineno, ".options entries must be key=value");
          const std::string key = to_lower(toks[i].substr(0, eq));
          const std::string val = to_lower(toks[i].substr(eq + 1));
          if (key == "method") {
            if (val == "be") {
              tran_defaults.method = IntegMethod::backward_euler;
            } else if (val == "trap") {
              tran_defaults.method = IntegMethod::trapezoidal;
            } else if (val == "gear") {
              tran_defaults.method = IntegMethod::gear2;
            } else {
              throw NetlistError(lineno, "unknown method '" + val + "' (be|trap|gear)");
            }
          } else if (key == "dtmax") {
            tran_defaults.dt_max = parse_num(val, lineno);
          } else if (key == "reltol") {
            tran_defaults.newton.reltol = parse_num(val, lineno);
          } else if (const auto so = string_option_keys_.find(key);
                     so != string_option_keys_.end()) {
            if (so->second && !so->second(val))
              throw NetlistError(lineno,
                                 "bad value '" + val + "' for option '" + key + "'");
            soptions[key] = val;
          } else {
            throw NetlistError(lineno, "unknown option '" + key + "'");
          }
        }
        continue;
      }
      if (head == ".ac") {
        if (toks.size() < 5) throw NetlistError(lineno, ".ac needs dec|lin <pts> <f0> <f1>");
        AnalysisCard card;
        card.kind = AnalysisCard::Kind::ac;
        const std::string sweep = to_lower(toks[1]);
        if (sweep == "dec") {
          card.ac.sweep = SweepKind::decade;
        } else if (sweep == "lin") {
          card.ac.sweep = SweepKind::linear;
        } else {
          throw NetlistError(lineno, "unknown sweep kind '" + toks[1] + "'");
        }
        const double pts = parse_num(toks[2], lineno);
        card.ac.points = static_cast<int>(pts);
        if (pts != card.ac.points || card.ac.points < 1)
          throw NetlistError(lineno, ".ac point count must be a positive integer");
        card.ac.f_start = parse_num(toks[3], lineno);
        card.ac.f_stop = parse_num(toks[4], lineno);
        if (card.ac.f_start <= 0.0 || card.ac.f_stop < card.ac.f_start)
          throw NetlistError(lineno, ".ac needs 0 < f_start <= f_stop");
        out.analyses.push_back(card);
        continue;
      }
      if (head == ".array") {
        // .array <count> <device card with {i} / {i+N} / {i-N} placeholders>
        // expands to <count> card instances, element index 0..count-1 — so a
        // thousand-transducer array is one line of netlist.
        if (toks.size() < 3)
          throw NetlistError(lineno, ".array needs <count> <device card...>");
        const double countv = parse_num(toks[1], lineno);
        const int count = static_cast<int>(countv);
        if (countv != count || count < 1 || count > 10'000'000)
          throw NetlistError(lineno, ".array count must be an integer in [1, 1e7]");
        if (toks[2][0] == '.')
          throw NetlistError(lineno, ".array repeats device cards, not directives");
        std::vector<std::string> inst(toks.size() - 2);
        for (int i = 0; i < count; ++i) {
          for (std::size_t k = 2; k < toks.size(); ++k)
            inst[k - 2] = expand_array_token(toks[k], i, lineno);
          try {
            // The unexpanded head token (e.g. "XT{i}") names the array for
            // the linter's per-cell connectivity check.
            process_card(inst, lineno, toks[2], i);
          } catch (const CircuitError& e) {
            throw NetlistError(lineno, e.what());
          } catch (const std::invalid_argument& e) {
            throw NetlistError(lineno, "device '" + inst[0] + "': " + e.what());
          }
        }
        continue;
      }
      throw NetlistError(lineno, "unknown directive '" + toks[0] + "'");
    }

    // Circuit-construction conflicts (duplicate device names, node-nature
    // clashes) surface as CircuitError; device-constructor rejections of a
    // parameter value (R <= 0, C <= 0, ...) as std::invalid_argument.
    // Attribute both to the card's line and name instead of letting a bare
    // what() string escape to the caller.
    try {
      process_card(toks, lineno);
    } catch (const CircuitError& e) {
      throw NetlistError(lineno, e.what());
    } catch (const std::invalid_argument& e) {
      throw NetlistError(lineno, "device '" + toks[0] + "': " + e.what());
    }
  }
  return out;
}

namespace {

/// Shared line scanner for the statistical pre-passes: strips ';' comments,
/// skips blanks/'*' comments, tokenizes lines whose head matches `card`
/// (case-insensitive), and hands (tokens, lineno) to `fn`.
void scan_cards(const std::string& text, std::string_view card,
                const std::function<void(const std::vector<std::string>&, int)>& fn) {
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (const auto semi = line.find(';'); semi != std::string::npos) line.resize(semi);
    const std::string_view t = trim(line);
    if (t.empty() || t[0] == '*' || t[0] != '.') continue;
    const auto space = t.find_first_of(" \t");
    const auto head = to_lower(t.substr(0, space));
    if (head != card) continue;
    fn(tokenize_card(t, lineno), lineno);
  }
}

}  // namespace

std::vector<ParamDist> parse_param_dists(const std::string& text) {
  std::vector<ParamDist> dists;
  scan_cards(text, ".param", [&](const std::vector<std::string>& toks, int lineno) {
    if (toks.size() != 3)
      throw NetlistError(lineno, ".param needs <name> <value | dist=...>");
    const std::string& name = toks[1];
    std::string spec = toks[2];
    // Accept both ".param g dist=normal(1,0.1)" and ".param g normal(1,0.1)".
    if (const auto eq = spec.find('='); eq != std::string::npos) {
      if (to_lower(spec.substr(0, eq)) != "dist")
        throw NetlistError(lineno, ".param value must be <number> or dist=<spec>");
      spec = spec.substr(eq + 1);
    }
    std::string why;
    auto dist = parse_dist_spec(name, spec, &why);
    if (!dist) throw NetlistError(lineno, ".param " + name + ": " + why);
    // Later cards override earlier ones, like repeated .options keys.
    for (auto& existing : dists) {
      if (existing.name == name) {
        existing = std::move(*dist);
        return;
      }
    }
    dists.push_back(std::move(*dist));
  });
  return dists;
}

std::vector<MeasureSpec> parse_measures(const std::string& text) {
  std::vector<MeasureSpec> measures;
  scan_cards(text, ".measure", [&](const std::vector<std::string>& toks, int lineno) {
    if (toks.size() < 4)
      throw NetlistError(lineno,
                         ".measure needs <label> <metric> min=<v> and/or max=<v>");
    MeasureSpec spec;
    spec.label = toks[1];
    spec.metric = toks[2];
    for (std::size_t i = 3; i < toks.size(); ++i) {
      const auto eq = toks[i].find('=');
      if (eq == std::string::npos)
        throw NetlistError(lineno, ".measure bounds must be min=<v> or max=<v>");
      const std::string key = to_lower(toks[i].substr(0, eq));
      const auto v = parse_spice_number(toks[i].substr(eq + 1));
      if (!v)
        throw NetlistError(lineno, ".measure " + spec.label + ": bad number in '" +
                                       toks[i] + "'");
      if (key == "min") {
        spec.has_lo = true;
        spec.lo = *v;
      } else if (key == "max") {
        spec.has_hi = true;
        spec.hi = *v;
      } else {
        throw NetlistError(lineno, ".measure bound must be min or max, got '" + key + "'");
      }
    }
    if (spec.has_lo && spec.has_hi && spec.hi < spec.lo)
      throw NetlistError(lineno, ".measure " + spec.label + ": max < min");
    measures.push_back(std::move(spec));
  });
  return measures;
}

}  // namespace usys::spice
