// Dense vs sparse MNA scaling: time per Newton iteration (stamp + combine
// + factor + solve) on two topology families, swept from tens to thousands
// of unknowns:
//   * rc_ladder      — V source driving a chain of R/C sections
//   * resonator_array — chain of mass-spring-damper resonators coupled by
//     springs (mechanical banded system with branch unknowns)
// The dense path zero-fills n x n Jacobians and runs O(n^3) LU every
// iteration; the sparse path scatters into a pattern-cached CSR layout and
// reuses one symbolic factorization, so the gap widens cubically. A
// summary table with the measured speedups prints at exit.
//
// CI smoke mode: --benchmark_min_time=0.02s --benchmark_format=json
//                --benchmark_out=BENCH_solver_scaling.json
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;

namespace {

std::unique_ptr<spice::Circuit> rc_ladder(int sections) {
  auto ckt = std::make_unique<spice::Circuit>();
  int prev = ckt->add_node("in", Nature::electrical);
  ckt->add<spice::VSource>("V1", prev, spice::Circuit::kGround, 1.0);
  for (int k = 0; k < sections; ++k) {
    const int node = ckt->add_node("n" + std::to_string(k), Nature::electrical);
    ckt->add<spice::Resistor>("R" + std::to_string(k), prev, node, 1e3);
    ckt->add<spice::Capacitor>("C" + std::to_string(k), node, spice::Circuit::kGround,
                               1e-9);
    prev = node;
  }
  return ckt;
}

std::unique_ptr<spice::Circuit> resonator_array(int count) {
  auto ckt = std::make_unique<spice::Circuit>();
  const int first = ckt->add_node("m0", Nature::mechanical_translation);
  ckt->add<spice::ForceSource>("F1", first, 1e-3);
  int prev = first;
  for (int k = 0; k < count; ++k) {
    const int node =
        k == 0 ? first : ckt->add_node("m" + std::to_string(k), Nature::mechanical_translation);
    ckt->add<spice::Mass>("M" + std::to_string(k), node, 1e-4);
    ckt->add<spice::Damper>("D" + std::to_string(k), node, spice::Circuit::kGround, 1e-2);
    if (k > 0)
      ckt->add<spice::Spring>("K" + std::to_string(k), prev, node, 250.0);
    ckt->add<spice::Spring>("Kg" + std::to_string(k), node, spice::Circuit::kGround, 400.0);
    prev = node;
  }
  return ckt;
}

/// One transient-like Newton iteration per call: max_iters = 1 makes
/// solve() do exactly stamp + combine + factor + solve once.
struct IterationHarness {
  std::unique_ptr<spice::Circuit> ckt;
  std::unique_ptr<spice::NewtonSolver> solver;
  DVector x0, hist;
  spice::EvalCtx ctx;
  double a0 = 0.0;

  IterationHarness(std::unique_ptr<spice::Circuit> circuit, spice::MatrixBackend backend)
      : ckt(std::move(circuit)) {
    spice::NewtonOptions opts;
    opts.max_iters = 1;
    opts.backend = backend;
    ckt->bind_all();
    solver = std::make_unique<spice::NewtonSolver>(*ckt, opts);
    const auto n = static_cast<std::size_t>(ckt->unknown_count());
    x0.assign(n, 0.0);
    hist.assign(n, 0.0);
    ctx.mode = spice::AnalysisMode::transient;
    ctx.time = 1e-6;
    ctx.integ_c0 = 0.0;
    ctx.integ_c1 = 1e-6;
    a0 = 1e6;  // backward Euler at dt = 1 us: exercises Jf + a0*Jq
  }

  void run_one() {
    DVector x = x0;
    benchmark::DoNotOptimize(solver->solve(ctx, a0, hist, x));
  }
};

std::unique_ptr<spice::Circuit> build(const std::string& family, int n_target) {
  // Both families are sized by unknown count: ladder n ~ sections + 2,
  // resonator n ~ 2*count + 1.
  if (family == "rc_ladder") return rc_ladder(n_target - 2);
  return resonator_array((n_target - 1) / 2);
}

void run_family(benchmark::State& state, const std::string& family,
                spice::MatrixBackend backend) {
  IterationHarness harness(build(family, static_cast<int>(state.range(0))),
                           backend);
  if ((backend == spice::MatrixBackend::sparse) != harness.solver->sparse_active()) {
    state.SkipWithError("backend selection failed");
    return;
  }
  for (auto _ : state) harness.run_one();
  state.counters["unknowns"] = static_cast<double>(harness.ckt->unknown_count());
}

void BM_RcLadderDense(benchmark::State& state) {
  run_family(state, "rc_ladder", spice::MatrixBackend::dense);
}
void BM_RcLadderSparse(benchmark::State& state) {
  run_family(state, "rc_ladder", spice::MatrixBackend::sparse);
}
void BM_ResonatorArrayDense(benchmark::State& state) {
  run_family(state, "resonator_array", spice::MatrixBackend::dense);
}
void BM_ResonatorArraySparse(benchmark::State& state) {
  run_family(state, "resonator_array", spice::MatrixBackend::sparse);
}

// Dense stops at 1000 unknowns (a single O(n^3) iteration at 2000 takes
// seconds); sparse continues to 2000. The small sizes (8, 12, 20) probe the
// auto_select crossover (NewtonOptions::sparse_threshold).
BENCHMARK(BM_RcLadderDense)->Arg(8)->Arg(12)->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(500)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RcLadderSparse)->Arg(8)->Arg(12)->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(500)->Arg(1000)->Arg(2000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ResonatorArrayDense)->Arg(8)->Arg(12)->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(500)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ResonatorArraySparse)->Arg(8)->Arg(12)->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(500)->Arg(1000)->Arg(2000)->Unit(benchmark::kMicrosecond);

/// Direct wall-clock summary (independent of google-benchmark's repetition
/// policy) — this is the table the acceptance criterion reads.
void print_summary() {
  using clock = std::chrono::steady_clock;
  std::puts("\n=== dense vs sparse: time per Newton iteration ===");
  std::printf("%-16s %8s %14s %14s %10s\n", "family", "n", "dense [ms]", "sparse [ms]",
              "speedup");
  for (const std::string family : {"rc_ladder", "resonator_array"}) {
    for (int n : {100, 250, 500, 1000, 2000}) {
      IterationHarness dense(build(family, n), spice::MatrixBackend::dense);
      IterationHarness sparse(build(family, n), spice::MatrixBackend::sparse);
      auto time_one = [&](IterationHarness& h, int reps) {
        h.run_one();  // warm-up (sparse: the one-time symbolic factorization)
        const auto t0 = clock::now();
        for (int r = 0; r < reps; ++r) h.run_one();
        return std::chrono::duration<double, std::milli>(clock::now() - t0).count() /
               reps;
      };
      const double td = time_one(dense, n >= 1000 ? 1 : 5);
      const double ts = time_one(sparse, 20);
      std::printf("%-16s %8d %14.3f %14.3f %9.1fx\n", family.c_str(),
                  dense.ckt->unknown_count(), td, ts, td / ts);
    }
  }
  std::puts("\nsparse time grows ~linearly on these banded topologies; the dense\n"
            "path pays the n^2 zero-fill + n^3 LU every iteration.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
