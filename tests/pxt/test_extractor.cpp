// PXT static extraction vs analytic parallel-plate quantities.
#include <gtest/gtest.h>

#include <cmath>

#include "pxt/extractor.hpp"

namespace usys::pxt {
namespace {

ExtractionSetup small_setup() {
  ExtractionSetup s;
  s.width = 0.1;
  s.depth = 1e-3;
  s.gap0 = 0.15e-3;
  s.nx = 4;
  s.ny = 8;
  return s;
}

TEST(Extractor, PointMatchesAnalytic) {
  const auto setup = small_setup();
  const ExtractionSample s = extract_point(setup, 0.0, 10.0);
  EXPECT_NEAR(s.capacitance, analytic_capacitance(setup, 0.0),
              analytic_capacitance(setup, 0.0) * 1e-6);
  EXPECT_NEAR(s.force_mst, analytic_force(setup, 0.0, 10.0),
              std::abs(analytic_force(setup, 0.0, 10.0)) * 1e-6);
  EXPECT_NEAR(s.force_vw, s.force_mst, std::abs(s.force_mst) * 1e-3);
}

TEST(Extractor, PaperFig6Point) {
  // The paper's Fig. 6 check: Table 4 parameters at x = 0, V = 10 V must
  // reproduce the Table 3 force. Width*depth = A = 1e-4 m^2.
  ExtractionSetup setup;
  setup.width = 0.1;
  setup.depth = 1e-3;
  setup.gap0 = 0.15e-3;
  setup.nx = 4;
  setup.ny = 8;
  const ExtractionSample s = extract_point(setup, 0.0, 10.0);
  // Table 3/paper text: F = eps A V^2/(2 d^2) ~ 1.967e-6 N (attraction).
  EXPECT_NEAR(std::abs(s.force_mst), 1.967e-6, 0.01e-6);
}

TEST(Extractor, SweepGridShape) {
  const auto setup = small_setup();
  const auto table = extract_sweep(setup, {-2e-5, 0.0, 2e-5}, {5.0, 10.0}, false);
  EXPECT_EQ(table.samples.size(), 6u);
  EXPECT_DOUBLE_EQ(table.at(0, 0).voltage, 5.0);
  EXPECT_DOUBLE_EQ(table.at(2, 1).displacement, 2e-5);
}

TEST(Extractor, ForceScalesWithVSquared) {
  const auto setup = small_setup();
  const auto s5 = extract_point(setup, 0.0, 5.0, false);
  const auto s10 = extract_point(setup, 0.0, 10.0, false);
  EXPECT_NEAR(s10.force_mst / s5.force_mst, 4.0, 1e-6);
}

TEST(Extractor, CapacitanceDropsWithGap) {
  const auto setup = small_setup();
  const auto near = extract_point(setup, -3e-5, 10.0, false);
  const auto far = extract_point(setup, +3e-5, 10.0, false);
  EXPECT_GT(near.capacitance, far.capacitance);
  // 1/(d+x) shape: C(x)*(d+x) constant.
  EXPECT_NEAR(near.capacitance * (setup.gap0 - 3e-5),
              far.capacitance * (setup.gap0 + 3e-5),
              near.capacitance * setup.gap0 * 1e-6);
}

TEST(Extractor, EnergyConsistentWithCapacitance) {
  const auto setup = small_setup();
  const auto s = extract_point(setup, 1e-5, 8.0, false);
  EXPECT_NEAR(s.energy, 0.5 * s.capacitance * 64.0, s.energy * 1e-9);
}

}  // namespace
}  // namespace usys::pxt
