// Native code generation for compiled HDL-AT models (HdlExecMode::codegen).
//
// The bytecode VM (hdl/bytecode.hpp) closed most of the paper's ~10x
// interpreted-model penalty, but it still pays per-instruction dispatch and a
// seeds-wide gradient loop whose trip count is only known at run time. This
// module removes both: each BytecodeProgram is translated into flat C++
// source where
//
//   * registers become plain double locals (value + one local per gradient
//     component — the Dual value/gradient-row arithmetic is fully unrolled
//     over the model's fixed seed count, so the host compiler keeps the whole
//     working set in machine registers),
//   * every stamp_flow / stamp_effort is fused with the arithmetic op that
//     feeds it: results accumulate straight into a seed-indexed residual /
//     Jacobian block with no dispatch, no zero checks, and no sink calls in
//     between,
//   * the four interpreter passes (dc, dc_ddt, transient, commit) are emitted
//     as four separate branch-minimal functions with the pass semantics baked
//     in — no per-op switch on the pass remains.
//
// The emitted translation unit is *instance-independent*: unknown values are
// gathered per AD seed slot by the host before the call, frame initial values
// (generic bindings) arrive as a runtime array, and the stamp targets are the
// seed-slot block the MNA scatter in HdlDevice already understands (every
// stamp row and gradient column of an HDL device is one of its seed
// unknowns). Two instances therefore share one shared object whenever their
// *shape* matches (same entity structure, same grounding/sharing pattern of
// the pins) — a thousand-element array compiles exactly once.
//
// Compilation pipeline: generate_source() -> content hash -> in-process
// registry -> on-disk cache (<cache_dir>/usys_cg_<hash>.so) -> host compiler
// (`c++`, overridable) -> dlopen. Every failure path (no compiler, compile
// error, corrupt cache object) logs one warning per shape and returns null,
// and HdlDevice falls back to the bytecode VM — codegen is a pure
// accelerator, never a correctness dependency.
//
// Arithmetic mirrors the bytecode VM operation for operation (which itself
// mirrors sym::Dual), and the generated objects are built with
// -ffp-contract=off, so all three executors agree at 1e-12 — in practice bit
// for bit (tests/hdl/test_codegen.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "hdl/bytecode.hpp"

namespace usys::hdl::codegen {

/// C-ABI I/O block shared with the generated code. The emitted source
/// re-declares this struct textually (see generate_source); both sides are
/// standard-layout structs of pointers and doubles, so the declarations are
/// layout-identical by construction. Field order must not change without
/// bumping the codegen version tag.
struct CgIo {
  const double* xs = nullptr;     ///< unknown values per AD seed slot [S]
  const double* frame = nullptr;  ///< frame register init values [n_frame]
  double c0 = 0.0;                ///< integrator coefficients (transient/commit)
  double c1 = 1.0;
  double* ddt = nullptr;          ///< DdtSiteState array viewed as 2 doubles/site
  double* integ = nullptr;        ///< IntegSiteState array viewed as 3 doubles/site
  double* f_out = nullptr;        ///< residual by seed row [S] (zeroed by host)
  double* j_out = nullptr;        ///< Jacobian by (seed row, seed col) [S*S]
  int* fired_sites = nullptr;     ///< commit pass: ASSERT sites that fired
  double* fired_vals = nullptr;   ///< commit pass: the violating values
  int* n_fired = nullptr;         ///< commit pass: fire count (host sets 0)
};

// The generated commit function writes ddt/integ site state through plain
// double pointers; pin the host-side layouts it assumes.
static_assert(sizeof(DdtSiteState) == 2 * sizeof(double) &&
                  std::is_standard_layout_v<DdtSiteState>,
              "codegen views DdtSiteState as 2 packed doubles");
static_assert(sizeof(IntegSiteState) == 3 * sizeof(double) &&
                  std::is_standard_layout_v<IntegSiteState>,
              "codegen views IntegSiteState as 3 packed doubles");

/// Entry points of one loaded shared object. Valid for the process lifetime
/// (objects are never unloaded; the registry owns the dlopen handles).
struct CompiledModel {
  using Fn = void (*)(CgIo*);
  Fn dc = nullptr;      ///< dc pass over dc_code
  Fn dc_ddt = nullptr;  ///< jq-extraction pass over dc_code
  Fn tran = nullptr;    ///< transient pass over tran_code
  Fn commit = nullptr;  ///< commit pass over commit_code (states + ASSERTs)
  std::uint64_t hash = 0;
};

/// Emits the full C++ translation unit for `p`. Deterministic: the text
/// depends only on the program's structure, the codegen version tag, and the
/// entity name — not on instance bindings or generic values.
std::string generate_source(const BytecodeProgram& p);

/// Structural hash of a program: covers exactly the inputs generate_source
/// reads (version tag, entity name, layout scalars, constants, instruction
/// streams), so equal hashes imply byte-identical emitted sources *without*
/// generating them. This is the registry and disk-cache key — acquire()'s
/// per-instance fast path hashes the program directly instead of emitting
/// kilobytes of source per bind.
std::uint64_t shape_hash(const BytecodeProgram& p);

/// FNV-1a hash of arbitrary text (exposed for tests).
std::uint64_t source_hash(const std::string& source);

/// Returns the compiled entry points for `p`, building or loading them as
/// needed, or null when native compilation is unavailable/failed (one warning
/// per shape; callers fall back to the bytecode VM). Thread-safe; the first
/// caller for a shape compiles, everyone else reuses.
const CompiledModel* acquire(const BytecodeProgram& p);

/// Probes the configured host compiler with a trivial translation unit
/// (result cached until set_compiler / reset_for_test).
bool compiler_available();

/// Overrides the host compiler command ("" restores the default: the
/// USYS_CODEGEN_CXX environment variable, else "c++"). Clears the probe
/// cache and the per-shape failure memo (a fixed toolchain deserves a fresh
/// attempt); intended for tests and embedders. The command and the cache
/// paths are run through the shell, so they must be free of shell
/// metacharacters — anything else fails the compile with a diagnostic.
void set_compiler(std::string cmd);
std::string compiler();

/// Overrides the cache directory ("" restores the default: USYS_CODEGEN_CACHE,
/// else "usys-codegen-cache" under the current working directory — the build
/// tree, for the in-repo test/bench binaries).
void set_cache_dir(std::string dir);
std::string cache_dir();

/// Counters for tests and diagnostics (process-wide, monotonic apart from
/// reset_for_test).
struct Stats {
  long compiles = 0;      ///< source actually handed to the host compiler
  long disk_hits = 0;     ///< loaded an existing cached object
  long memory_hits = 0;   ///< served from the in-process registry
  long failures = 0;      ///< acquire() returned null
};
Stats stats();

/// Clears the in-process registry, the stats, and the compiler probe cache.
/// The on-disk cache is left alone (delete files to test invalidation).
void reset_for_test();

}  // namespace usys::hdl::codegen
