#include "core/transducers.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace usys::core {
namespace {

/// Fraction of the rest dimension used as the collision floor.
constexpr double kGapFloorFraction = 1e-3;

}  // namespace

TransducerBase::TransducerBase(std::string name, int a, int b, int c, int d,
                               TransducerGeometry geom)
    : Device(std::move(name)), a_(a), b_(b), c_(c), d_(d), geom_(geom) {}

void TransducerBase::bind(Binder& binder) {
  binder.require_nature(a_, Nature::electrical, name());
  binder.require_nature(b_, Nature::electrical, name());
  binder.require_nature(c_, Nature::mechanical_translation, name());
  binder.require_nature(d_, Nature::mechanical_translation, name());
}

bool TransducerBase::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, c_, d_});
  return true;
}

void TransducerBase::start_transient(const DVector& x_dc) {
  const double uc = c_ < 0 ? 0.0 : x_dc[static_cast<std::size_t>(c_)];
  const double ud = d_ < 0 ? 0.0 : x_dc[static_cast<std::size_t>(d_)];
  xstate_.start(uc - ud);
}

void TransducerBase::accept(const AcceptCtx& ctx) {
  xstate_.accept(ctx.v(c_) - ctx.v(d_), ctx);
}

void TransducerBase::stamp_mech_force(EvalCtx& ctx, double f_plate, double df_dva,
                                      double df_dvb, double df_dx, double df_dbr,
                                      int br) const {
  const double sl = disp_slope(ctx);
  // Deliver f_plate into pin c: the *absorbed* flow at c is -f_plate.
  ctx.f_add(c_, -f_plate);
  ctx.f_add(d_, +f_plate);
  // d(absorbed flow at c)/d(unknowns); row d is the negation.
  const double dc_a = -df_dva;
  const double dc_b = -df_dvb;
  const double dc_c = -df_dx * sl;   // x = integ(v_c - v_d): dx/dv_c = +sl
  const double dc_d = +df_dx * sl;   //                       dx/dv_d = -sl
  ctx.jf_add(c_, a_, dc_a);
  ctx.jf_add(c_, b_, dc_b);
  ctx.jf_add(c_, c_, dc_c);
  ctx.jf_add(c_, d_, dc_d);
  ctx.jf_add(d_, a_, -dc_a);
  ctx.jf_add(d_, b_, -dc_b);
  ctx.jf_add(d_, c_, -dc_c);
  ctx.jf_add(d_, d_, -dc_d);
  if (br >= 0 && df_dbr != 0.0) {
    ctx.jf_add(c_, br, -df_dbr);
    ctx.jf_add(d_, br, +df_dbr);
  }
}

// ---------------------------------------------------------------------------
// (a) transverse electrostatic
// ---------------------------------------------------------------------------

double TransverseElectrostatic::effective_gap(double x) const {
  return std::max(geom_.gap + x, kGapFloorFraction * geom_.gap);
}

void TransverseElectrostatic::evaluate(EvalCtx& ctx) {
  const double volt = ctx.v(a_) - ctx.v(b_);
  const double x = disp(ctx);
  const double sl = disp_slope(ctx);

  double gap = geom_.gap + x;
  double dgap_dx = 1.0;
  if (gap < kGapFloorFraction * geom_.gap) {
    gap = kGapFloorFraction * geom_.gap;
    dgap_dx = 0.0;
    if (!collision_warned_) {
      log_warn("transducer '" + name() + "': electrode collision (gap clamped)");
      collision_warned_ = true;
    }
  }

  const double ea = geom_.eps0 * geom_.eps_r * geom_.area;
  const double cap = ea / gap;
  const double dcap_dx = -ea / (gap * gap) * dgap_dx;

  // Electrical port: i = d(C(x) V)/dt.
  const double qe = cap * volt;
  ctx.q_add(a_, qe);
  ctx.q_add(b_, -qe);
  ctx.jq_add(a_, a_, cap);
  ctx.jq_add(a_, b_, -cap);
  ctx.jq_add(b_, a_, -cap);
  ctx.jq_add(b_, b_, cap);
  const double dq_dx = dcap_dx * volt;
  ctx.jq_add(a_, c_, dq_dx * sl);
  ctx.jq_add(a_, d_, -dq_dx * sl);
  ctx.jq_add(b_, c_, -dq_dx * sl);
  ctx.jq_add(b_, d_, dq_dx * sl);

  // Mechanical port: attraction on the free plate (Table 3 row a).
  const double f = -ea * volt * volt / (2.0 * gap * gap);
  const double df_dv = -ea * volt / (gap * gap);
  const double df_dx = ea * volt * volt / (gap * gap * gap) * dgap_dx;
  stamp_mech_force(ctx, f, df_dv, -df_dv, df_dx, 0.0, -1);
}

// ---------------------------------------------------------------------------
// (b) parallel electrostatic
// ---------------------------------------------------------------------------

double ParallelElectrostatic::effective_overlap(double x) const {
  return std::max(geom_.length - x, kGapFloorFraction * geom_.length);
}

void ParallelElectrostatic::evaluate(EvalCtx& ctx) {
  const double volt = ctx.v(a_) - ctx.v(b_);
  const double x = disp(ctx);
  const double sl = disp_slope(ctx);

  double overlap = geom_.length - x;
  double dov_dx = -1.0;
  if (overlap < kGapFloorFraction * geom_.length) {
    overlap = kGapFloorFraction * geom_.length;
    dov_dx = 0.0;
    if (!collision_warned_) {
      log_warn("transducer '" + name() + "': plates fully withdrawn (overlap clamped)");
      collision_warned_ = true;
    }
  }

  const double eh = geom_.eps0 * geom_.eps_r * geom_.depth;
  const double cap = eh * overlap / geom_.gap;
  const double dcap_dx = eh * dov_dx / geom_.gap;

  const double qe = cap * volt;
  ctx.q_add(a_, qe);
  ctx.q_add(b_, -qe);
  ctx.jq_add(a_, a_, cap);
  ctx.jq_add(a_, b_, -cap);
  ctx.jq_add(b_, a_, -cap);
  ctx.jq_add(b_, b_, cap);
  const double dq_dx = dcap_dx * volt;
  ctx.jq_add(a_, c_, dq_dx * sl);
  ctx.jq_add(a_, d_, -dq_dx * sl);
  ctx.jq_add(b_, c_, -dq_dx * sl);
  ctx.jq_add(b_, d_, dq_dx * sl);

  // F = (V^2/2) dC/dx: constant while the plates overlap, zero once
  // withdrawn (dov_dx = 0 encodes both regimes).
  const double f = 0.5 * volt * volt * dcap_dx;
  const double df_dv = volt * dcap_dx;
  stamp_mech_force(ctx, f, df_dv, -df_dv, 0.0, 0.0, -1);
}

// ---------------------------------------------------------------------------
// (c) electromagnetic (variable reluctance)
// ---------------------------------------------------------------------------

double ElectromagneticTransducer::effective_gap(double x) const {
  return std::max(geom_.gap + x, kGapFloorFraction * geom_.gap);
}

void ElectromagneticTransducer::bind(Binder& binder) {
  TransducerBase::bind(binder);
  br_ = binder.alloc_branch(Nature::electrical);
}

bool ElectromagneticTransducer::stamp_footprint(std::vector<int>& out) const {
  TransducerBase::stamp_footprint(out);
  out.push_back(br_);
  return true;
}

void ElectromagneticTransducer::evaluate(EvalCtx& ctx) {
  const double i = ctx.v(br_);
  const double x = disp(ctx);
  const double sl = disp_slope(ctx);

  double gap = geom_.gap + x;
  double dgap_dx = 1.0;
  if (gap < kGapFloorFraction * geom_.gap) {
    gap = kGapFloorFraction * geom_.gap;
    dgap_dx = 0.0;
    if (!collision_warned_) {
      log_warn("transducer '" + name() + "': armature collision (gap clamped)");
      collision_warned_ = true;
    }
  }

  const double n = static_cast<double>(geom_.turns);
  const double man2 = geom_.mu0 * geom_.area * n * n;
  const double ind = man2 / (2.0 * gap);
  const double dind_dx = -man2 / (2.0 * gap * gap) * dgap_dx;

  // KCL: coil current flows a -> b.
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, br_, 1.0);
  ctx.jf_add(b_, br_, -1.0);

  // Branch: d(L(x) i)/dt - (va - vb) = 0  (Table 3 row c, voltage).
  ctx.f_add(br_, -(ctx.v(a_) - ctx.v(b_)));
  ctx.jf_add(br_, a_, -1.0);
  ctx.jf_add(br_, b_, 1.0);
  ctx.q_add(br_, ind * i);
  ctx.jq_add(br_, br_, ind);
  ctx.jq_add(br_, c_, i * dind_dx * sl);
  ctx.jq_add(br_, d_, -i * dind_dx * sl);

  // Reluctance force pulls the armature in (Table 3 row c, force).
  const double f = -man2 * i * i / (4.0 * gap * gap);
  const double df_di = -man2 * i / (2.0 * gap * gap);
  const double df_dx = man2 * i * i / (2.0 * gap * gap * gap) * dgap_dx;
  stamp_mech_force(ctx, f, 0.0, 0.0, df_dx, df_di, br_);
}

// ---------------------------------------------------------------------------
// (d) electrodynamic (voice coil)
// ---------------------------------------------------------------------------

void ElectrodynamicTransducer::bind(Binder& binder) {
  TransducerBase::bind(binder);
  br_ = binder.alloc_branch(Nature::electrical);
}

bool ElectrodynamicTransducer::stamp_footprint(std::vector<int>& out) const {
  TransducerBase::stamp_footprint(out);
  out.push_back(br_);
  return true;
}

void ElectrodynamicTransducer::evaluate(EvalCtx& ctx) {
  const double i = ctx.v(br_);
  const double u = velocity(ctx);
  const double t_fac = transduction_electrodynamic(geom_);
  const double ind = inductance_electrodynamic(geom_);

  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, br_, 1.0);
  ctx.jf_add(b_, br_, -1.0);

  // Branch: L di/dt + T u - (va - vb) = 0 (back-EMF + self-inductance).
  ctx.f_add(br_, t_fac * u - (ctx.v(a_) - ctx.v(b_)));
  ctx.jf_add(br_, a_, -1.0);
  ctx.jf_add(br_, b_, 1.0);
  ctx.jf_add(br_, c_, t_fac);
  ctx.jf_add(br_, d_, -t_fac);
  ctx.q_add(br_, ind * i);
  ctx.jq_add(br_, br_, ind);

  // Lorentz force on the coil: F = T i (Table 3 row d).
  stamp_mech_force(ctx, t_fac * i, 0.0, 0.0, 0.0, t_fac, br_);
}

}  // namespace usys::core
