// Electro-thermal coupling: Joule self-heating with two-way feedback
// (the fifth Table 1 domain in action).
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_nonlinear.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

TEST(Thermal, SelfHeatingEquilibriumNoTc) {
  // Constant-R heater through a thermal resistance to ambient:
  // T = P * Rth = (V^2/R) * Rth.
  Circuit ckt;
  const int e = ckt.add_node("e", Nature::electrical);
  const int t = ckt.add_node("t", Nature::thermal);
  ckt.add<VSource>("V1", e, Circuit::kGround, 5.0);
  ckt.add<JouleHeater>("H1", e, Circuit::kGround, t, 100.0);
  ckt.add<Resistor>("RTH", t, Circuit::kGround, 40.0, Nature::thermal);  // K/W
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(t), 25.0 / 100.0 * 40.0, 1e-6);  // 10 K rise
}

TEST(Thermal, PositiveTcReducesPowerAndTemperature) {
  auto temp_for = [](double tc) {
    Circuit ckt;
    const int e = ckt.add_node("e", Nature::electrical);
    const int t = ckt.add_node("t", Nature::thermal);
    ckt.add<VSource>("V1", e, Circuit::kGround, 10.0);
    ckt.add<JouleHeater>("H1", e, Circuit::kGround, t, 50.0, tc);
    ckt.add<Resistor>("RTH", t, Circuit::kGround, 30.0, Nature::thermal);
    const OpResult op = api::operating_point(ckt);
    EXPECT_TRUE(op.converged);
    return op.at(t);
  };
  const double t_flat = temp_for(0.0);
  const double t_ptc = temp_for(5e-3);
  EXPECT_LT(t_ptc, t_flat);
  // Self-consistent check for tc = 5e-3: T = V^2 Rth / (R0 (1 + tc T)):
  // solve the quadratic and compare.
  const double v2rth = 100.0 * 30.0 / 50.0;  // = 60
  const double tc = 5e-3;
  const double t_exact = (-1.0 + std::sqrt(1.0 + 4.0 * tc * v2rth)) / (2.0 * tc);
  EXPECT_NEAR(t_ptc, t_exact, 1e-6 * t_exact);
}

TEST(Thermal, TransientHeatingTimeConstant) {
  // Heat capacity (thermal capacitor) + thermal resistance: first-order
  // rise with tau = Rth * Cth.
  Circuit ckt;
  const int e = ckt.add_node("e", Nature::electrical);
  const int t = ckt.add_node("t", Nature::thermal);
  ckt.add<VSource>("V1", e, Circuit::kGround,
                   std::make_unique<PulseWave>(0.0, 5.0, 0.0, 1e-6, 1e-6, 10.0));
  ckt.add<JouleHeater>("H1", e, Circuit::kGround, t, 100.0);
  ckt.add<Resistor>("RTH", t, Circuit::kGround, 40.0, Nature::thermal);
  ckt.add<Capacitor>("CTH", t, Circuit::kGround, 2.5e-3, Nature::thermal);  // J/K
  TranOptions opts;
  opts.tstop = 0.5;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  const double tau = 40.0 * 2.5e-3;  // 0.1 s
  const double t_final = 10.0;
  EXPECT_NEAR(res.sample(tau, t), t_final * (1.0 - std::exp(-1.0)), 0.05);
  EXPECT_NEAR(res.sample(0.5, t), t_final * (1.0 - std::exp(-0.5 / tau)), 0.05);
}

TEST(Thermal, HeaterRequiresThermalNode) {
  Circuit ckt;
  const int e = ckt.add_node("e", Nature::electrical);
  const int wrong = ckt.add_node("wrong", Nature::electrical);
  ckt.add<JouleHeater>("H1", e, Circuit::kGround, wrong, 100.0);
  EXPECT_THROW(ckt.bind_all(), CircuitError);
}

TEST(Thermal, InvalidResistanceRejected) {
  Circuit ckt;
  const int e = ckt.add_node("e", Nature::electrical);
  const int t = ckt.add_node("t", Nature::thermal);
  EXPECT_THROW(ckt.add<JouleHeater>("H1", e, Circuit::kGround, t, 0.0),
               std::invalid_argument);
}

TEST(Thermal, EnergyAccounting) {
  // Steady state: electrical power in equals heat flow out through Rth.
  Circuit ckt;
  const int e = ckt.add_node("e", Nature::electrical);
  const int t = ckt.add_node("t", Nature::thermal);
  auto& vs = ckt.add<VSource>("V1", e, Circuit::kGround, 8.0);
  ckt.add<JouleHeater>("H1", e, Circuit::kGround, t, 64.0);
  ckt.add<Resistor>("RTH", t, Circuit::kGround, 25.0, Nature::thermal);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  const double p_elec = -8.0 * op.x[static_cast<std::size_t>(vs.branch())];
  const double p_thermal = op.at(t) / 25.0;  // heat through Rth
  EXPECT_NEAR(p_elec, 1.0, 1e-9);  // 8^2/64
  EXPECT_NEAR(p_thermal, p_elec, 1e-9);
}

}  // namespace
}  // namespace usys::spice
