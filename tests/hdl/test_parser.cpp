// Parser: Listing 1 verbatim, the stdlib models, and diagnostics.
#include <gtest/gtest.h>

#include "hdl/parser.hpp"
#include "hdl/stdlib.hpp"

namespace usys::hdl {
namespace {

TEST(Parser, Listing1Verbatim) {
  // The paper's Listing 1 with its original structure (including the
  // generic/pin name collision on 'd', resolved by syntactic position).
  const DesignUnit unit = parse(stdlib::paper_listing1());
  const Entity* e = unit.find_entity("eletran");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->generics.size(), 3u);
  EXPECT_EQ(e->generics[0].name, "A");
  EXPECT_EQ(e->generics[1].name, "d");
  ASSERT_EQ(e->pins.size(), 4u);
  EXPECT_EQ(e->pins[0].nature, Nature::electrical);
  EXPECT_EQ(e->pins[2].nature, Nature::mechanical_translation);
  EXPECT_EQ(e->pins[3].name, "d");

  const Architecture* a = unit.find_architecture_of("eletran");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "a");
  ASSERT_EQ(a->variables.size(), 4u);  // e0, x, V, S
  EXPECT_FALSE(a->variables[0].is_state);
  EXPECT_TRUE(a->variables[2].is_state);
  ASSERT_EQ(a->blocks.size(), 2u);
  EXPECT_TRUE(a->blocks[0].has_domain("init"));
  EXPECT_TRUE(a->blocks[1].has_domain("ac"));
  EXPECT_TRUE(a->blocks[1].has_domain("transient"));
  // init: 1 stmt; main: 5 stmts (V, S, x, two contributions).
  EXPECT_EQ(a->blocks[0].stmts.size(), 1u);
  EXPECT_EQ(a->blocks[1].stmts.size(), 5u);
  EXPECT_EQ(a->blocks[1].stmts[4].kind, StmtKind::contribution);
  EXPECT_EQ(a->blocks[1].stmts[4].field, "f");
}

TEST(Parser, AllStdlibModelsParse) {
  const DesignUnit unit = parse(stdlib::all_models());
  EXPECT_NE(unit.find_entity("eletran"), nullptr);
  EXPECT_NE(unit.find_entity("etransverse"), nullptr);
  EXPECT_NE(unit.find_entity("eparallel"), nullptr);
  EXPECT_NE(unit.find_entity("emagnetic"), nullptr);
  EXPECT_NE(unit.find_entity("edynamic"), nullptr);
}

TEST(Parser, GenericDefaults) {
  const auto unit = parse(R"(
ENTITY m IS
  GENERIC (a : analog := 2.5; b, c : analog := -1.0);
  PIN (p, q : electrical);
END ENTITY m;
)");
  const Entity* e = unit.find_entity("m");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->generics.size(), 3u);
  EXPECT_TRUE(e->generics[0].has_default);
  EXPECT_DOUBLE_EQ(e->generics[0].default_value, 2.5);
  EXPECT_DOUBLE_EQ(e->generics[2].default_value, -1.0);
}

TEST(Parser, ExpressionPrecedence) {
  const auto unit = parse(R"(
ENTITY m IS
  GENERIC (a : analog);
  PIN (p, q : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
  VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      y := 1.0 + 2.0*a^2.0 - -3.0;
      [p, q].i %= y;
  END RELATION;
END ARCHITECTURE x;
)");
  const Architecture* a = unit.find_architecture_of("m");
  ASSERT_NE(a, nullptr);
  const Stmt& s = a->blocks[0].stmts[0];
  // (1.0 + (2.0*(a^2.0))) - (-3.0)
  EXPECT_EQ(s.expr->kind, ExprKind::binary);
  EXPECT_EQ(s.expr->name, "-");
  EXPECT_EQ(s.expr->args[1]->kind, ExprKind::unary_neg);
}

TEST(Parser, ErrorsCarryLine) {
  try {
    parse("ENTITY m IS\n  BOGUS\nEND ENTITY m;\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Parser, EntityNameMismatchRejected) {
  EXPECT_THROW(parse("ENTITY m IS PIN (a, b : electrical); END ENTITY other;"),
               ParseError);
}

TEST(Parser, BadContributionFieldRejected) {
  EXPECT_THROW(parse(R"(
ENTITY m IS
  PIN (p, q : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [p, q].bogus %= 1.0;
  END RELATION;
END ARCHITECTURE x;
)"),
               ParseError);
}

TEST(Parser, UnknownNatureRejected) {
  EXPECT_THROW(parse("ENTITY m IS PIN (a, b : telepathic); END ENTITY m;"), ParseError);
}

TEST(Parser, CaseInsensitiveKeywords) {
  const auto unit = parse(R"(
entity m is
  pin (a, b : ELECTRICAL);
end entity m;
architecture y of m is
begin
  relation
    procedural for TRANSIENT =>
      [a, b].i %= 0.0;
  end relation;
end architecture y;
)");
  EXPECT_NE(unit.find_entity("M"), nullptr);  // lookup also case-insensitive
}

}  // namespace
}  // namespace usys::hdl
