// Regenerates the harmonic-macromodeling experiment of the PXT section:
// a sampled frequency response (our substitute for harmonic FE analysis) is
// fitted with a rational "polynomial filter" (Levy least squares) and
// realized as a data-flow device, validated in dc/ac/transient domains —
// the three SPICE analysis domains the paper says such models cover.
#include <cmath>
#include <iostream>

#include "api/api.hpp"
#include "common/constants.hpp"
#include "common/table.hpp"
#include "pxt/harmonic.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_source.hpp"

using namespace usys;
using namespace usys::pxt;

int main() {
  std::cout << "=== Harmonic macromodel: response -> Levy fit -> data-flow device ===\n\n";

  // "Harmonic FE analysis" substitute: the resonator's force->displacement
  // response sampled over 1 Hz..5 kHz (Table 4 mechanics).
  std::vector<double> freqs;
  for (int i = 0; i < 80; ++i)
    freqs.push_back(std::pow(10.0, 0.0 + 3.7 * static_cast<double>(i) / 79.0));
  const auto samples = resonator_response(1e-4, 200.0, 40e-3, freqs);

  const RationalFit fit = levy_fit(samples, 0, 2);
  std::cout << "fitted H(s') = " << fmt_sci(fit.num[0], 5) << " / (1 + "
            << fmt_sci(fit.den[1], 5) << " s' + " << fmt_sci(fit.den[2], 5)
            << " s'^2),  s' = s/" << fmt_sci(fit.scale, 4) << "\n";
  std::cout << "max relative fit error over samples: " << fmt_sci(fit_error(fit, samples), 2)
            << "\n\n";

  std::cout << "--- fitted vs reference response (amplitude & phase) ---\n";
  AsciiTable t({"f [Hz]", "|H| ref [m/N]", "|H| fit [m/N]", "phase ref [deg]",
                "phase fit [deg]"});
  for (double f : {1.0, 50.0, 150.0, 225.0, 400.0, 2000.0}) {
    const auto ref = resonator_response(1e-4, 200.0, 40e-3, {f})[0].h;
    const auto fitv = fit.eval(f);
    t.add_row({fmt_num(f), fmt_sci(std::abs(ref), 4), fmt_sci(std::abs(fitv), 4),
               fmt_num(std::arg(ref) * 180.0 / kPi, 4),
               fmt_num(std::arg(fitv) * 180.0 / kPi, 4)});
  }
  t.print(std::cout);

  // Realize as a circuit device and sweep it with the AC analysis.
  spice::Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<spice::VSource>("V1", in, spice::Circuit::kGround,
                          std::make_unique<spice::DcWave>(1.0), Nature::electrical, 1.0,
                          0.0);
  ckt.add<TransferFunctionDevice>("H1", in, spice::Circuit::kGround, out,
                                  spice::Circuit::kGround, fit);

  std::cout << "\n--- dc domain: gain check ---\n";
  const auto op = api::operating_point(ckt);
  std::cout << "  v(out) at 1 V dc: " << fmt_sci(op.at(out), 5) << " (expect b0 = 1/k = "
            << fmt_sci(1.0 / 200.0, 5) << ")\n";

  std::cout << "\n--- ac domain: device sweep vs fit ---\n";
  spice::AcOptions aco;
  aco.f_start = 1.0;
  aco.f_stop = 5e3;
  aco.points = 8;
  const auto ac = api::ac_sweep(ckt, aco);
  AsciiTable a({"f [Hz]", "|v(out)| device", "|H| fit", "rel.err"});
  for (std::size_t k = 0; k < ac.freq.size(); k += 4) {
    const double dev = std::abs(ac.at(k, out));
    const double ref = std::abs(fit.eval(ac.freq[k]));
    a.add_row({fmt_num(ac.freq[k], 4), fmt_sci(dev, 4), fmt_sci(ref, 4),
               fmt_sci(std::abs(dev / ref - 1.0), 2)});
  }
  a.print(std::cout);

  std::cout << "\n--- transient domain: step response settles to dc gain ---\n";
  spice::TranOptions topt;
  topt.tstop = 80e-3;
  const auto tr = api::transient(ckt, topt);
  if (tr.ok) {
    std::cout << "  v(out) at t = 80 ms: " << fmt_sci(tr.sample(80e-3, out), 5)
              << " (expect " << fmt_sci(1.0 / 200.0, 5) << ")\n";
    // Ring frequency ~ resonator f0.
    std::cout << "  (under-critically damped ringing at ~"
              << fmt_num(std::sqrt(200.0 / 1e-4) / (2.0 * kPi), 4) << " Hz)\n";
  } else {
    std::cout << "  transient failed: " << tr.error << "\n";
  }
  return 0;
}
