// Wall-clock deadlines and cooperative cancellation for long-running solves.
//
// A Deadline bundles an optional wall-clock budget with an optional
// CancelToken. The Newton loop, the transient stepper, and the sparse LU's
// factor/solve dispatch each poll expired() at their natural iteration
// boundary, so no analysis can run (or hang) unboundedly once a budget is
// configured — the prerequisite for batch sweeps and a long-lived server.
// Polling sites are cheap (one steady_clock read) and only run when a
// deadline is active(), so unbudgeted analyses pay nothing.
//
// Ownership: a Deadline lives on the stack of the analysis entry point
// (AnalysisEngine::run_*); everything below borrows it by pointer for the
// duration of that call. The CancelToken outlives the analysis — it is the
// caller's handle for cancelling from another thread.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

#include "common/status.hpp"

namespace usys {

/// Thread-safe cooperative cancellation flag. cancel() may be called from
/// any thread; solvers poll it (via Deadline) between iterations.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_relaxed); }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Thrown by deep layers (sparse LU dispatch) when the deadline expires
/// mid-operation; callers translate it into a FailureInfo.
class DeadlineError : public std::runtime_error {
 public:
  DeadlineError(FailureKind kind, const std::string& where)
      : std::runtime_error(std::string(to_string(kind)) + " in " + where), kind_(kind) {}
  FailureKind kind() const noexcept { return kind_; }

 private:
  FailureKind kind_;
};

class Deadline {
 public:
  /// No budget, no cancel: never expires, active() is false.
  Deadline() = default;

  /// Budget of `ms` wall-clock milliseconds from now (ms <= 0 means no time
  /// budget) plus an optional cancel token (null means none).
  static Deadline after_ms(double ms, const CancelToken* cancel = nullptr);

  /// True when there is anything to poll (a time budget or a cancel token).
  /// Callers skip the per-iteration checks entirely when inactive.
  bool active() const noexcept { return limited_ || cancel_ != nullptr; }
  bool limited() const noexcept { return limited_; }

  /// True once the budget is spent or the token fired. Also consults the
  /// "deadline.expire" fault-injection site (fault-inject builds only), so
  /// tests can force a timeout at an exact poll without real waiting.
  bool expired() const noexcept;

  /// Why expired() holds: cancelled if the token fired, else timeout.
  /// Meaningless (returns timeout) while expired() is false.
  FailureKind exceeded_kind() const noexcept;

  /// Throws DeadlineError when expired; `where` names the polling site.
  void check(const char* where) const;

  /// Milliseconds left; +inf when not time-limited, 0 when expired.
  double remaining_ms() const noexcept;

 private:
  std::chrono::steady_clock::time_point end_{};
  const CancelToken* cancel_ = nullptr;
  bool limited_ = false;
};

}  // namespace usys
