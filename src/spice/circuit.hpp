// Circuit graph: typed nodes, devices, and the unknown-vector layout.
//
// Following the paper's FI (force-current) analogy, mechanical and electrical
// nets live in the *same* nodal system: a node's across variable is voltage
// for electrical nodes and velocity for mechanical ones; KCL rows sum
// currents or forces respectively. The ground node (index -1) is the shared
// reference: 0 V for electrical, the fixed mechanical frame for mechanical.
//
// Unknown vector layout: [node efforts (0..n_nodes-1) | branch unknowns].
// Branch unknowns (currents through voltage-defined elements, fluxes etc.)
// are allocated by devices during bind().
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/nature.hpp"
#include "spice/types.hpp"

namespace usys::spice {

class Circuit;
class MnaPattern;
class LintSink;

/// Raised on malformed circuits: nature mismatches, unknown nodes,
/// duplicate device names.
class CircuitError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Handed to Device::bind so devices can allocate branch unknowns and verify
/// pin natures without seeing the whole Circuit API.
class Binder {
 public:
  explicit Binder(Circuit& c) : circuit_(c) {}

  /// Allocates one branch unknown (returned index is into the global
  /// unknown vector). `through_nature` sets its convergence tolerance class.
  int alloc_branch(Nature through_nature);

  /// Unknowns allocated so far (nodes + branches of already-bound devices).
  /// Binding is sequential, so every index the current device references is
  /// below this watermark — the bound the HDL bytecode verifier checks
  /// against at bind time.
  int unknown_watermark() const noexcept;

  /// Nature of a node id; ground accepts any nature.
  Nature node_nature(int node) const;

  /// Throws CircuitError unless `node` is ground or has nature `expected`.
  void require_nature(int node, Nature expected, const std::string& device_name) const;

 private:
  Circuit& circuit_;
};

/// Base class of everything that stamps equations. See types.hpp for the
/// charge-oriented stamp contract.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Resolve indices / allocate branch unknowns. Called exactly once.
  virtual void bind(Binder& binder) = 0;

  /// Stamp f, q, Jf, Jq at the iterate in `ctx`. Must be callable any number
  /// of times per step (Newton re-evaluates).
  virtual void evaluate(EvalCtx& ctx) = 0;

  /// Sparse-MNA registration, called once after bind: append every unknown
  /// index (node or branch; ground -1 entries are ignored) that evaluate()
  /// may reference as a stamp row or column in *any* analysis mode, and
  /// return true. The pattern compiler reserves the full footprint x
  /// footprint Jacobian block, so a conservative superset is fine — but a
  /// stamp landing outside the declared pattern is a hard error at
  /// assembly time. Returning false (the default) marks the footprint
  /// unknown and keeps the whole circuit on the dense path.
  virtual bool stamp_footprint(std::vector<int>& out) const {
    (void)out;
    return false;
  }

  /// Complex AC excitation (small-signal sources). Row indexing matches the
  /// real unknown vector. Default: no AC contribution.
  virtual void ac_rhs(ZVector& rhs) const { (void)rhs; }

  /// Waveform corner times the transient must step onto exactly.
  virtual void breakpoints(std::vector<double>& out) const { (void)out; }

  /// Called once before a transient run with the DC solution, so devices can
  /// arm internal integral states.
  virtual void start_transient(const DVector& x_dc) { (void)x_dc; }

  /// Called after each accepted transient step to commit internal states.
  virtual void accept(const AcceptCtx& ctx) { (void)ctx; }

  /// Distinct run-time boundary-condition (HDL ASSERT) sites this device
  /// has seen fire so far; 0 for devices without such checks. The transient
  /// engine polls this after accepted steps when TranOptions::fail_on_assert
  /// is set, turning a warned-once violation into a structured failure.
  virtual int assert_violations() const { return 0; }

  /// Static-diagnostics hook (spice/lint.hpp): describe pin couplings and
  /// check parameters. The default emits a conductive clique over the
  /// stamp_footprint() node unknowns — conservative (it can mask a missing
  /// DC path, never invent one falsely... the reverse), so devices with
  /// sources or reactive coupling override it. Defined in lint.cpp.
  virtual void lint(LintSink& sink) const;

  /// Generic numeric-parameter access, keyed by the lower-case netlist
  /// parameter name ("r", "c", "l", "m", "k", "alpha", "dc"). The warm-reuse
  /// path (api::Session overrides, the server's parameter-delta jobs) edits
  /// bound circuits through this instead of re-parsing. A set changes
  /// stamped VALUES only, never structure, so the compiled MNA pattern
  /// stays valid — but callers must AnalysisEngine::rebind() before the
  /// next run. Both return false for keys the device does not expose (the
  /// default), and set_param additionally rejects values the device cannot
  /// stamp (non-finite, or zero where it divides).
  virtual bool set_param(std::string_view key, double value) {
    (void)key;
    (void)value;
    return false;
  }
  virtual bool get_param(std::string_view key, double& out) const {
    (void)key;
    (void)out;
    return false;
  }

  /// Netlist provenance, stamped by the parser (0 = built via the API).
  void set_netlist_line(int line) noexcept { netlist_line_ = line; }
  int netlist_line() const noexcept { return netlist_line_; }

  /// `.array` / TRANSARRAY provenance: which expansion cell created this
  /// device (empty name = not array-expanded). Used by the lint
  /// `array-unconnected` rule.
  void set_array_cell(std::string array_name, int cell) {
    array_name_ = std::move(array_name);
    array_cell_ = cell;
  }
  const std::string& array_name() const noexcept { return array_name_; }
  int array_cell() const noexcept { return array_cell_; }

 private:
  std::string name_;
  int netlist_line_ = 0;
  std::string array_name_;
  int array_cell_ = -1;
};

/// The circuit under construction / simulation.
class Circuit {
 public:
  Circuit();
  ~Circuit();

  /// The ground / reference pseudo-index.
  static constexpr int kGround = -1;

  /// Adds (or returns) a named node of the given nature. Name "0" is ground.
  /// Re-adding with a different nature throws.
  int add_node(std::string_view name, Nature nature);

  /// Looks up an existing node; throws CircuitError if missing.
  int node(std::string_view name) const;

  /// Non-throwing lookup: nullopt if the node does not exist (ground names
  /// return kGround).
  std::optional<int> find_node(std::string_view name) const noexcept;

  /// Node id valid? (ground is not a regular id)
  int node_count() const noexcept { return static_cast<int>(nodes_.size()); }

  const std::string& node_name(int id) const { return nodes_.at(static_cast<std::size_t>(id)).name; }
  Nature node_nature(int id) const { return nodes_.at(static_cast<std::size_t>(id)).nature; }

  /// Netlist line where a node first appeared (0 = unknown / API-built).
  /// The parser records it on first sight; later sightings keep the first.
  void set_node_line(int id, int line);
  int node_line(int id) const { return nodes_.at(static_cast<std::size_t>(id)).line; }

  /// Constructs a device in place and takes ownership. Returns a reference
  /// that stays valid for the circuit's lifetime.
  template <typename D, typename... Args>
  D& add(Args&&... args) {
    auto dev = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *dev;
    add_device(std::move(dev));
    return ref;
  }

  void add_device(std::unique_ptr<Device> dev);

  const std::vector<std::unique_ptr<Device>>& devices() const noexcept { return devices_; }

  /// Finds a device by name (nullptr if absent).
  Device* find_device(std::string_view name) noexcept;

  /// Finalizes the unknown layout: binds all devices, allocating branch
  /// unknowns. Idempotent. Called automatically by the analyses.
  void bind_all();
  bool bound() const noexcept { return bound_; }

  /// Total unknown count (nodes + branches); valid after bind_all().
  int unknown_count() const noexcept { return unknown_count_; }
  int branch_count() const noexcept { return unknown_count_ - node_count(); }

  /// Per-unknown absolute convergence tolerance, sized by the unknown's
  /// nature (voltages vs currents vs velocities need different floors).
  const DVector& abstol() const noexcept { return abstol_; }

  /// Nature of unknown i (node effort nature, or branch through-nature).
  Nature unknown_nature(int i) const { return unknown_natures_.at(static_cast<std::size_t>(i)); }

  /// The compiled sparse stamp pattern (spice/mna.hpp), built lazily from
  /// the devices' stamp_footprint() registrations. Calls bind_all() first;
  /// stable afterwards because devices cannot be added once bound.
  const MnaPattern& mna_pattern();

 private:
  friend class Binder;
  int alloc_branch_unknown(Nature through_nature);

  struct NodeRec {
    std::string name;
    Nature nature;
    int line = 0;
  };

  std::vector<NodeRec> nodes_;
  std::vector<std::unique_ptr<Device>> devices_;
  // Name -> index maps so array-scale netlists (thousands of nodes/devices)
  // build in linear time instead of quadratic name scans. Transparent
  // hashing keeps string_view lookups allocation-free.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using NameIndex = std::unordered_map<std::string, int, NameHash, std::equal_to<>>;
  NameIndex node_index_;
  NameIndex device_index_;
  std::vector<Nature> unknown_natures_;
  DVector abstol_;
  int unknown_count_ = 0;
  bool bound_ = false;
  std::unique_ptr<MnaPattern> mna_pattern_;
};

/// Absolute tolerance used for unknowns of a nature's effort variable.
double effort_abstol(Nature n) noexcept;
/// Absolute tolerance used for branch unknowns carrying a nature's flow.
double flow_abstol(Nature n) noexcept;

}  // namespace usys::spice
