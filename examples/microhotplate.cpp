// Electro-thermal microsystem: a micro-hotplate (gas-sensor heater) with a
// temperature-dependent polysilicon heater, thermal mass, and conduction to
// the substrate. Exercises the thermal nature of Table 1 and two-way
// electro-thermal coupling — the "electro-thermal simulators" the paper
// lists among emerging microsystem EDA tools, here expressed in the same
// lumped formalism as the transducers.
#include <cmath>
#include <iostream>

#include "api/api.hpp"
#include "common/table.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_nonlinear.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;

int main() {
  std::cout << "=== micro-hotplate: electro-thermal transient ===\n\n";

  // Heater: 1 kOhm poly at ambient, tc = 1e-3 /K. Membrane: Cth = 1 uJ/K,
  // Rth = 20 kK/W to the rim (typical micro-hotplate scales -> ms response).
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int temp = ckt.add_node("temp", Nature::thermal);
  ckt.add<spice::VSource>(
      "V1", drive, spice::Circuit::kGround,
      std::make_unique<spice::PulseWave>(0.0, 3.0, 1e-3, 1e-4, 1e-4, 30e-3, 60e-3));
  ckt.add<spice::JouleHeater>("H1", drive, spice::Circuit::kGround, temp, 1e3, 1e-3);
  ckt.add<spice::Resistor>("RTH", temp, spice::Circuit::kGround, 2e4, Nature::thermal);
  ckt.add<spice::Capacitor>("CTH", temp, spice::Circuit::kGround, 1e-6, Nature::thermal);

  spice::TranOptions opts;
  opts.tstop = 0.12;
  opts.dt_max = 2e-4;
  const auto res = api::transient(ckt, opts);
  if (!res.ok) {
    std::cerr << "simulation failed: " << res.error << "\n";
    return 1;
  }

  AsciiTable t({"t [ms]", "V_heater [V]", "T rise [K]", "R(T) [ohm]"});
  for (double time = 0.0; time <= 0.12; time += 8e-3) {
    const double temp_rise = res.sample(time, temp);
    t.add_row({fmt_num(time * 1e3), fmt_num(res.sample(time, drive), 3),
               fmt_num(temp_rise, 4), fmt_num(1e3 * (1.0 + 1e-3 * temp_rise), 5)});
  }
  t.print(std::cout);

  // Steady analysis: with tc > 0 the equilibrium rise solves
  // T = V^2 Rth / (R0 (1 + tc T)).
  const double v2rth_r0 = 9.0 * 2e4 / 1e3;
  const double tc = 1e-3;
  const double t_exact = (-1.0 + std::sqrt(1.0 + 4.0 * tc * v2rth_r0)) / (2.0 * tc);
  std::cout << "\nanalytic steady rise at 3 V: " << fmt_num(t_exact, 4)
            << " K (the plateaus approach it; the positive tc trims ~"
            << fmt_num(100.0 * (v2rth_r0 - t_exact) / v2rth_r0, 2)
            << "% off the constant-R estimate)\n";
  std::cout << "thermal time constant Rth*Cth = 20 ms: visible in the rise/decay.\n";
  return 0;
}
