#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace usys {
namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[usys %s] %s\n", level_tag(level), msg.c_str());
}

void log_debug(const std::string& msg) { log_message(LogLevel::debug, msg); }
void log_info(const std::string& msg) { log_message(LogLevel::info, msg); }
void log_warn(const std::string& msg) { log_message(LogLevel::warn, msg); }
void log_error(const std::string& msg) { log_message(LogLevel::error, msg); }

}  // namespace usys
