// Static circuit diagnostics (Level 1 of the diagnostics layer).
//
// The MNA solver fails *dynamically*: a floating node or a voltage-source
// loop surfaces as a pivot failure (or a gmin-rescued garbage solution) deep
// inside Newton, long after the defect was visible in the netlist topology.
// lint_circuit() runs the classic structural checks on the bound circuit
// before any solve:
//
//   * ground connectivity (union-find over device stamp footprints):
//     floating nodes and disconnected islands;
//   * voltage-source loops (pure V/E/H loops are singular in every analysis;
//     loops closed through inductors/springs only at DC) and current-source
//     cutsets / capacitively-isolated nodes (no DC return path);
//   * structural-singularity prediction: maximum bipartite matching
//     (Dulmage–Mendelsohn-style row/column matching) on the *probed* stamp
//     sparsity — each device is evaluated once at a deterministic pseudo-
//     random iterate in block-capture mode, so the matched pattern is the
//     true Jf/Jq structure rather than the conservative CSR superset;
//   * parameter sanity (zero/negative/non-finite/suspicious-magnitude
//     R, C, L, mass, stiffness, damping);
//   * unconnected `.array` / TRANSARRAY cells (a cell sharing no non-ground
//     node with the rest of the circuit);
//   * HDL bytecode verifier findings (hdl/verify.hpp), re-surfaced per
//     device instance.
//
// Severity policy: findings the always-on gmin diagonal rescues numerically
// (floating nodes, missing DC paths, DC-only singularities) are warnings —
// the circuit still solves, the answer is just suspect. Only defects that
// make every analysis ill-posed (pure voltage-source loops, zero resistance,
// non-finite parameters, malformed bytecode) are errors; AnalysisEngine's
// automatic pre-solve pass acts on errors alone (FailureKind::lint_rejected)
// so lint never rejects a circuit the solver would have handled.
//
// The rule catalog lives in docs/diagnostics.md; tools/check_docs.py cross-
// checks kAllLintRules against it.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace usys::spice {

enum class LintSeverity { warning, error };

const char* to_string(LintSeverity sev) noexcept;

/// One finding. `entity` names the offending device or node; `line` is the
/// netlist line it came from (0 when the circuit was built from the API).
struct LintDiag {
  LintSeverity severity = LintSeverity::warning;
  std::string rule;
  std::string entity;
  int line = 0;
  std::string message;
};

struct LintReport {
  std::vector<LintDiag> diags;

  bool clean() const noexcept { return diags.empty(); }
  bool has_errors() const noexcept { return error_count() > 0; }
  int error_count() const noexcept;
  int warning_count() const noexcept;

  /// One finding per line: "severity[rule] entity (line N): message".
  std::string to_text() const;
  /// Machine-readable form (schema in docs/diagnostics.md).
  std::string to_json() const;
  /// Error messages joined with "; " (empty when error-free).
  std::string error_summary() const;
};

struct LintOptions {
  bool connectivity = true;  ///< ground connectivity, V-loops, DC paths, arrays
  bool matching = true;      ///< probed-pattern structural singularity
  bool parameters = true;    ///< device parameter sanity
  bool hdl = true;           ///< re-surface HDL bytecode verifier findings
  int max_names = 6;         ///< node/device names listed per aggregate finding
};

/// How a device couples its pins, as seen by the connectivity analyses.
enum class LintEdgeKind {
  conductive,  ///< carries flow at DC and defines it locally (R, damper)
  vsource,     ///< voltage-defined in every analysis (V, E, H)
  vsource_dc,  ///< voltage-defined only at DC (L, spring)
  isource,     ///< imposes flow; provides no DC return path (I, G, F, force)
  reactive,    ///< couples only through d/dt (C, mass)
};

/// Handed to Device::lint so devices can describe their topology and check
/// their parameters without seeing the analyzer internals. All findings are
/// attributed to the device currently being linted.
class LintSink {
 public:
  /// Declares a coupling between two node unknowns (Circuit::kGround ok).
  void edge(int node_a, int node_b, LintEdgeKind kind);

  /// Default topology: a conductive clique over the node unknowns of the
  /// device's stamp_footprint() — the conservative choice for devices
  /// without a dedicated override.
  void footprint_clique(const Device& dev, LintEdgeKind kind = LintEdgeKind::conductive);

  /// Parameter sanity: non-finite -> error `param-invalid`; zero -> `param-zero`
  /// at `zero_sev`; negative -> warning `param-negative`.
  void check_value(const char* quantity, double value,
                   LintSeverity zero_sev = LintSeverity::warning);
  /// Warning `param-magnitude` when 0 < |value| outside [lo, hi].
  void check_magnitude(const char* quantity, double value, double lo, double hi);

  /// Free-form finding attributed to the current device.
  void report(LintSeverity sev, std::string rule, std::string message);

  /// Whether HDL bytecode-verifier findings are wanted (LintOptions::hdl);
  /// HdlDevice::lint checks this before re-running its verifier.
  bool wants_hdl() const noexcept { return hdl_; }

 private:
  friend class LintDriver;
  LintSink() = default;
  struct Edge {
    int a, b;
    LintEdgeKind kind;
    int device;  ///< index into Circuit::devices()
  };
  const Circuit* circuit_ = nullptr;
  std::vector<Edge> edges_;
  std::vector<LintDiag>* diags_ = nullptr;
  int current_device_ = -1;
  const Device* current_ptr_ = nullptr;
  bool parameters_ = true;
  bool hdl_ = true;
  std::vector<int> scratch_;
};

/// Runs every enabled analysis on `circuit` (binds it first — may throw
/// CircuitError for defects the construction path already rejects).
LintReport lint_circuit(Circuit& circuit, const LintOptions& opts = {});

/// Every rule id the analyzer (and the HDL verifier) can emit, for the docs
/// cross-check. Terminated by nullptr.
extern const char* const kAllLintRules[];

}  // namespace usys::spice
