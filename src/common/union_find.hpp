// Plain union-find (disjoint-set forest) with path halving. Shared by the
// lint pass's connectivity rules (spice/lint.cpp: ground reachability, DC
// paths, V-source loop detection) and the island partitioner
// (common/partition.cpp: component discovery after separator removal).
//
// Deliberately minimal: no union-by-rank. unite(a, b) roots a under b, so
// component roots depend on the call order — both users iterate edges in a
// fixed order, which keeps every derived result deterministic.
#pragma once

#include <cstddef>
#include <vector>

namespace usys {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
    for (int i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }

  int find(int x) noexcept {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  /// Returns false when the two were already connected.
  bool unite(int a, int b) noexcept {
    const int ra = find(a);
    const int rb = find(b);
    if (ra == rb) return false;
    parent_[static_cast<std::size_t>(ra)] = rb;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace usys
