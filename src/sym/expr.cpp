#include "sym/expr.hpp"

#include <algorithm>
#include <set>

namespace usys::sym {

Expr make_node(Kind kind, double value, std::string name, std::vector<Expr> args) {
  auto node = std::make_shared<Node>();
  node->kind = kind;
  node->value = value;
  node->name = std::move(name);
  node->args = std::move(args);
  return Expr(NodePtr(std::move(node)));
}

Expr::Expr() : Expr(0.0) {}

Expr::Expr(double v) { *this = make_node(Kind::constant, v, {}, {}); }

Expr Expr::constant(double v) { return Expr(v); }

Expr Expr::variable(std::string name) {
  return make_node(Kind::variable, 0.0, std::move(name), {});
}

Expr Expr::make(Kind kind, std::vector<Expr> args) {
  return make_node(kind, 0.0, {}, std::move(args));
}

Kind Expr::kind() const noexcept { return node_->kind; }

double Expr::value() const {
  if (node_->kind != Kind::constant) throw std::logic_error("Expr::value on non-constant");
  return node_->value;
}

const std::string& Expr::name() const {
  if (node_->kind != Kind::variable) throw std::logic_error("Expr::name on non-variable");
  return node_->name;
}

const std::vector<Expr>& Expr::args() const noexcept { return node_->args; }

bool Expr::is_constant(double v) const noexcept {
  return node_->kind == Kind::constant && node_->value == v;
}

bool Expr::equals(const Expr& other) const noexcept {
  if (node_ == other.node_) return true;
  if (node_->kind != other.node_->kind) return false;
  switch (node_->kind) {
    case Kind::constant:
      return node_->value == other.node_->value;
    case Kind::variable:
      return node_->name == other.node_->name;
    default:
      if (node_->args.size() != other.node_->args.size()) return false;
      for (std::size_t i = 0; i < node_->args.size(); ++i) {
        if (!node_->args[i].equals(other.node_->args[i])) return false;
      }
      return true;
  }
}

namespace {

void collect_vars(const Expr& e, std::set<std::string>& out) {
  if (e.kind() == Kind::variable) {
    out.insert(e.name());
    return;
  }
  for (const auto& a : e.args()) collect_vars(a, out);
}

}  // namespace

std::vector<std::string> Expr::variables() const {
  std::set<std::string> s;
  collect_vars(*this, s);
  return {s.begin(), s.end()};
}

bool Expr::depends_on(const std::string& v) const noexcept {
  if (kind() == Kind::variable) return name() == v;
  for (const auto& a : args()) {
    if (a.depends_on(v)) return true;
  }
  return false;
}

Expr operator+(const Expr& a, const Expr& b) { return Expr::make(Kind::add, {a, b}); }
Expr operator-(const Expr& a, const Expr& b) { return Expr::make(Kind::sub, {a, b}); }
Expr operator*(const Expr& a, const Expr& b) { return Expr::make(Kind::mul, {a, b}); }
Expr operator/(const Expr& a, const Expr& b) { return Expr::make(Kind::div, {a, b}); }
Expr operator-(const Expr& a) { return Expr::make(Kind::neg, {a}); }

Expr pow(const Expr& base, const Expr& exponent) {
  return Expr::make(Kind::pow, {base, exponent});
}
Expr sin(const Expr& x) { return Expr::make(Kind::sin, {x}); }
Expr cos(const Expr& x) { return Expr::make(Kind::cos, {x}); }
Expr tan(const Expr& x) { return Expr::make(Kind::tan, {x}); }
Expr exp(const Expr& x) { return Expr::make(Kind::exp, {x}); }
Expr log(const Expr& x) { return Expr::make(Kind::log, {x}); }
Expr sqrt(const Expr& x) { return Expr::make(Kind::sqrt, {x}); }
Expr abs(const Expr& x) { return Expr::make(Kind::abs, {x}); }

Expr var(std::string name) { return Expr::variable(std::move(name)); }

std::size_t node_count(const Expr& e) {
  std::size_t n = 1;
  for (const auto& a : e.args()) n += node_count(a);
  return n;
}

Expr substitute(const Expr& e, const std::string& v, const Expr& replacement) {
  switch (e.kind()) {
    case Kind::constant:
      return e;
    case Kind::variable:
      return e.name() == v ? replacement : e;
    default: {
      std::vector<Expr> args;
      args.reserve(e.args().size());
      bool changed = false;
      for (const auto& a : e.args()) {
        Expr na = substitute(a, v, replacement);
        changed = changed || na.raw() != a.raw();
        args.push_back(std::move(na));
      }
      if (!changed) return e;
      return Expr::make(e.kind(), std::move(args));
    }
  }
}

}  // namespace usys::sym
