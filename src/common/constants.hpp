// Physical constants used throughout the transducer models.
//
// All values are SI. The paper (Romanowicz et al., ED&TC 1997) uses
// eps0 = 8.8542e-12 F/m in Listing 1; we keep the CODATA value and provide
// the paper's rounded value separately so the HDL listing reproduces bit-
// compatible results when requested.
#pragma once

namespace usys {

/// Vacuum permittivity [F/m] (CODATA 2018).
inline constexpr double kEps0 = 8.8541878128e-12;

/// Vacuum permittivity as rounded in the paper's Listing 1 [F/m].
inline constexpr double kEps0Paper = 8.8542e-12;

/// Vacuum permeability [H/m] (CODATA 2018; exact value pre-2019 redefinition
/// is 4*pi*1e-7 which the paper's era assumed).
inline constexpr double kMu0 = 1.25663706212e-6;

/// Vacuum permeability as assumed in 1997: exactly 4*pi*1e-7 [H/m].
inline constexpr double kMu0Classic = 1.2566370614359172e-6;

/// pi.
inline constexpr double kPi = 3.14159265358979323846;

/// Boltzmann constant [J/K] (for thermal-noise style extensions).
inline constexpr double kBoltzmann = 1.380649e-23;

}  // namespace usys
