// ThreadPool: full task coverage (every index exactly once), caller
// participation, repeated dispatch reuse, and exception transport.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace usys {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.run(257, [&](int t) { hits[static_cast<std::size_t>(t)].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyDispatches) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.run(16, [&](int t) { sum.fetch_add(t); });
  }
  EXPECT_EQ(sum.load(), 200L * (15 * 16 / 2));
}

TEST(ThreadPool, ZeroOrNegativeTaskCountIsANoop) {
  ThreadPool pool(3);
  int calls = 0;
  pool.run(0, [&](int) { ++calls; });
  pool.run(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterBarrier) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.run(64, [&](int t) {
      if (t == 13) throw std::runtime_error("task 13 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected the task exception to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 13 failed");
  }
  // The barrier still completed every other task before rethrowing.
  EXPECT_EQ(completed.load(), 63);
  // And the pool is still usable afterwards.
  pool.run(8, [&](int) { completed.fetch_add(1); });
  EXPECT_EQ(completed.load(), 71);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
}

}  // namespace
}  // namespace usys
