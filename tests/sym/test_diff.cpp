// Differentiation: rules, chain rule, and numeric cross-checks against
// central differences on random points (property-style sweep).
#include <gtest/gtest.h>

#include <cmath>

#include "sym/expr.hpp"

namespace usys::sym {
namespace {

double numeric_diff(const Expr& e, const std::string& v, Env env, double h = 1e-6) {
  env[v] += h;
  const double up = eval(e, env);
  env[v] -= 2.0 * h;
  const double down = eval(e, env);
  return (up - down) / (2.0 * h);
}

TEST(Diff, Basics) {
  const Expr x = var("x");
  EXPECT_DOUBLE_EQ(eval(diff(x * x, "x"), {{"x", 3.0}}), 6.0);
  EXPECT_DOUBLE_EQ(eval(diff(Expr(5.0), "x"), {{"x", 1.0}}), 0.0);
  EXPECT_DOUBLE_EQ(eval(diff(x, "x"), {}), 1.0);
  EXPECT_DOUBLE_EQ(eval(diff(var("y"), "x"), {{"y", 2.0}}), 0.0);
}

TEST(Diff, QuotientRule) {
  // d/dx [1/(d+x)] = -1/(d+x)^2 — the capacitance derivative of Table 2a.
  const Expr c = Expr(1.0) / (var("d") + var("x"));
  const Expr dc = simplify(diff(c, "x"));
  const Env env{{"d", 2.0}, {"x", 1.0}};
  EXPECT_NEAR(eval(dc, env), -1.0 / 9.0, 1e-12);
}

TEST(Diff, PowerConstExponent) {
  const Expr e = pow(var("x"), Expr(3.0));
  EXPECT_NEAR(eval(diff(e, "x"), {{"x", 2.0}}), 12.0, 1e-12);
}

TEST(Diff, PowerGeneralExponent) {
  const Expr e = pow(var("x"), var("y"));
  const Env env{{"x", 2.0}, {"y", 3.0}};
  EXPECT_NEAR(eval(diff(e, "x"), env), numeric_diff(e, "x", env), 1e-5);
  EXPECT_NEAR(eval(diff(e, "y"), env), numeric_diff(e, "y", env), 1e-5);
}

TEST(Diff, Transcendentals) {
  const Env env{{"x", 0.7}};
  for (const Expr& e : {sin(var("x")), cos(var("x")), tan(var("x")), exp(var("x")),
                       log(var("x")), sqrt(var("x"))}) {
    EXPECT_NEAR(eval(diff(e, "x"), env), numeric_diff(e, "x", env), 1e-5);
  }
}

TEST(Diff, ChainRule) {
  const Expr e = sin(exp(var("x") * var("x")));
  const Env env{{"x", 0.3}};
  EXPECT_NEAR(eval(diff(e, "x"), env), numeric_diff(e, "x", env), 1e-5);
}

TEST(Diff, AbsAwayFromZero) {
  const Expr e = abs(var("x") * var("x") - Expr(2.0));
  for (double x0 : {-2.0, 0.5, 3.0}) {
    const Env env{{"x", x0}};
    EXPECT_NEAR(eval(diff(e, "x"), env), numeric_diff(e, "x", env), 1e-5) << x0;
  }
}

// Property sweep: random expression evaluations vs numeric differences.
class DiffProperty : public ::testing::TestWithParam<double> {};

TEST_P(DiffProperty, Table2EnergyDerivativesMatchNumeric) {
  // The paper's step 3 on the transverse energy W(q,x) = q^2 (d+x)/(2 e A):
  // voltage = dW/dq and absorbed force = dW/dx, checked numerically.
  const double x0 = GetParam();
  const Expr w = var("q") * var("q") * (var("d") + var("x")) /
                 (Expr(2.0) * var("e") * var("A"));
  const Env env{{"q", 3e-11}, {"d", 1.5e-4}, {"x", x0}, {"e", 8.8542e-12}, {"A", 1e-4}};
  const Expr dv = diff(w, "q");
  const Expr df = diff(w, "x");
  EXPECT_NEAR(eval(dv, env), numeric_diff(w, "q", env, 1e-15),
              std::abs(eval(dv, env)) * 1e-3);
  EXPECT_NEAR(eval(df, env), numeric_diff(w, "x", env, 1e-9),
              std::abs(eval(df, env)) * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(GapSweep, DiffProperty,
                         ::testing::Values(-5e-5, -1e-5, 0.0, 1e-5, 5e-5));

}  // namespace
}  // namespace usys::sym
