// Behavioral transducer devices: DC force injection, transient displacement,
// electrical charging current, and collision clamping.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "core/resonator_system.hpp"
#include "core/transducers.hpp"
#include "spice/analysis.hpp"

namespace usys::core {
namespace {

using spice::Circuit;
using api::operating_point;
using spice::OpResult;
using spice::TranOptions;
using api::transient;
using spice::TranResult;

ResonatorParams paper_params() { return ResonatorParams{}; }

TEST(Transducer, DcForceBalance) {
  // At DC the transducer injects F(V0, x=0) into the spring: spring force
  // equals the Table 3 value.
  const auto p = paper_params();
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add<spice::VSource>("V1", drive, Circuit::kGround, 10.0);
  ckt.add<TransverseElectrostatic>("XT", drive, Circuit::kGround, vel, Circuit::kGround,
                                   p.geom);
  auto& spring = ckt.add<spice::Spring>("K1", vel, Circuit::kGround, p.stiffness);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(vel), 0.0, 1e-9);
  const double f_expected = force_transverse(p.geom, 10.0, 0.0);
  EXPECT_NEAR(spring.displacement(op.x) * p.stiffness, f_expected,
              std::abs(f_expected) * 1e-6);
}

TEST(Transducer, TransientSettlesToStaticDeflection) {
  const auto p = paper_params();
  auto sys = build_resonator_system(
      p, TransducerModelKind::behavioral,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
  TranOptions opts;
  opts.tstop = 80e-3;
  const TranResult res = api::transient(*sys.circuit, opts);
  ASSERT_TRUE(res.ok) << res.error;
  const double x_static = static_displacement_transverse(p, 10.0);
  EXPECT_NEAR(res.sample(80e-3, sys.node_disp), x_static, std::abs(x_static) * 0.02);
}

TEST(Transducer, DisplacementTrackedInternally) {
  const auto p = paper_params();
  auto sys = build_resonator_system(
      p, TransducerModelKind::behavioral,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
  TranOptions opts;
  opts.tstop = 80e-3;
  const TranResult res = api::transient(*sys.circuit, opts);
  ASSERT_TRUE(res.ok);
  // Device-internal x = integ(S) must agree with the probe node.
  EXPECT_NEAR(sys.behavioral->displacement(), res.sample(80e-3, sys.node_disp),
              1e-9 * std::abs(res.sample(80e-3, sys.node_disp)) + 1e-12);
}

TEST(Transducer, ChargingCurrentMatchesCdvdt) {
  // Mechanically clamped transducer driven by a ramp: i = C(0) dV/dt.
  const auto p = paper_params();
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  auto& vs = ckt.add<spice::VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, 1.0}, {1.0, 1.0}}));
  ckt.add<TransverseElectrostatic>("XT", drive, Circuit::kGround, vel, Circuit::kGround,
                                   p.geom);
  // Clamp: a huge damper freezes the plate.
  ckt.add<spice::Damper>("D1", vel, Circuit::kGround, 1e9);
  TranOptions opts;
  opts.tstop = 1e-3;
  opts.dt_max = 1e-5;
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  const double c0 = capacitance_transverse(p.geom, 0.0);
  const double dvdt = 1.0 / 1e-3;
  // Source current = -i(transducer) mid-ramp.
  const double i_src = res.sample(0.5e-3, vs.branch());
  EXPECT_NEAR(-i_src, c0 * dvdt, c0 * dvdt * 0.02);
}

TEST(Transducer, ParallelPlateForceConstantOverTravel) {
  TransducerGeometry g;
  g.depth = 1e-3;
  g.length = 2e-3;
  g.gap = 1e-5;
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add<spice::VSource>("V1", drive, Circuit::kGround, 10.0);
  ckt.add<ParallelElectrostatic>("XT", drive, Circuit::kGround, vel, Circuit::kGround, g);
  auto& spring = ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 100.0);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(spring.displacement(op.x) * 100.0, force_parallel(g, 10.0),
              std::abs(force_parallel(g, 10.0)) * 1e-6);
}

TEST(Transducer, ElectromagneticDcCurrentAndForce) {
  TransducerGeometry g;
  g.area = 1e-4;
  g.gap = 1e-3;
  g.turns = 200;
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  // Coil behind a resistor: DC current = V/R (coil is a short at DC).
  ckt.add<spice::VSource>("V1", drive, Circuit::kGround, 5.0);
  const int coil = ckt.add_node("coil", Nature::electrical);
  ckt.add<spice::Resistor>("R1", drive, coil, 50.0);
  ckt.add<ElectromagneticTransducer>("XM", coil, Circuit::kGround, vel, Circuit::kGround,
                                     g);
  auto& spring = ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 1000.0);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(coil), 0.0, 1e-6);  // short at DC
  const double i = 5.0 / 50.0;
  EXPECT_NEAR(spring.displacement(op.x) * 1000.0, force_electromagnetic(g, i, 0.0),
              std::abs(force_electromagnetic(g, i, 0.0)) * 1e-4);
}

TEST(Transducer, ElectrodynamicBackEmfReducesCurrent) {
  TransducerGeometry g;
  g.turns = 100;
  g.radius = 5e-3;
  g.b_field = 1.0;
  const double t_fac = transduction_electrodynamic(g);

  // Voice coil driving a damper-only load: at steady state (sinusoidal,
  // low frequency) force T*i = alpha*u and v = R i + T u. Check the DC
  // behavior with an imposed coil current through a big resistor.
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add<spice::VSource>("V1", drive, Circuit::kGround, 1.0);
  const int coil = ckt.add_node("coil", Nature::electrical);
  ckt.add<spice::Resistor>("R1", drive, coil, 100.0);
  ckt.add<ElectrodynamicTransducer>("XD", coil, Circuit::kGround, vel, Circuit::kGround,
                                    g);
  ckt.add<spice::Damper>("DM", vel, Circuit::kGround, 2.0);
  const OpResult op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  // DC equilibrium: i = (V - T u)/R and T i = alpha u
  //  => u = T V / (alpha R + T^2).
  const double u_expected = t_fac * 1.0 / (2.0 * 100.0 + t_fac * t_fac);
  EXPECT_NEAR(op.at(vel), u_expected, std::abs(u_expected) * 1e-6);
}

TEST(Transducer, CollisionClampKeepsSolverAlive) {
  // Soft spring + high voltage -> pull-in; the clamp must keep the run
  // finite and displacement bounded by the gap.
  ResonatorParams p;
  p.stiffness = 1e-2;
  auto sys = build_resonator_system(
      p, TransducerModelKind::behavioral,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, 40.0}, {1.0, 40.0}}));
  TranOptions opts;
  opts.tstop = 20e-3;
  const TranResult res = api::transient(*sys.circuit, opts);
  ASSERT_TRUE(res.ok) << res.error;
  const double x_end = res.sample(20e-3, sys.node_disp);
  EXPECT_GT(x_end, -p.geom.gap * 1.5);
}

TEST(Transducer, NatureCheckOnPins) {
  ResonatorParams p;
  Circuit ckt;
  const int e1 = ckt.add_node("e1", Nature::electrical);
  const int e2 = ckt.add_node("e2", Nature::electrical);
  // Mechanical pins wired to electrical nodes must be rejected at bind.
  ckt.add<TransverseElectrostatic>("XT", e1, Circuit::kGround, e2, Circuit::kGround,
                                   p.geom);
  EXPECT_THROW(ckt.bind_all(), spice::CircuitError);
}

}  // namespace
}  // namespace usys::core
