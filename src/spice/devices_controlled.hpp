// Controlled sources and ideal coupling two-ports.
//
// These are the building blocks of the *linearized equivalent circuit*
// method the paper compares against: a transformer (or gyrator, depending on
// analogy) with a constant transduction factor couples the electrical and
// mechanical halves. They are also the SPICE primitives ("controlled source
// I = const.V1.V2") the paper mentions as the escape hatch of the
// equivalent-circuit approach.
#pragma once

#include "spice/circuit.hpp"

namespace usys::spice {

/// Voltage-controlled voltage source: (va - vb) = gain * (vc - vd).
class Vcvs : public Device {
 public:
  Vcvs(std::string name, int out_p, int out_n, int ctl_p, int ctl_n, double gain);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  int branch() const noexcept { return br_; }

 private:
  int a_, b_, c_, d_;
  double gain_;
  int br_ = -1;
};

/// Voltage-controlled current source: i(a->b) = gm * (vc - vd).
/// Nature-agnostic on both ports — this is the elementary transduction stamp.
class Vccs : public Device {
 public:
  Vccs(std::string name, int out_p, int out_n, int ctl_p, int ctl_n, double gm);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  double gm() const noexcept { return gm_; }

 private:
  int a_, b_, c_, d_;
  double gm_;
};

/// Current-controlled current source: i_out = gain * i(sensed branch).
/// The sensed branch is a named VSource's current.
class Cccs : public Device {
 public:
  Cccs(std::string name, int out_p, int out_n, std::string sensed_vsource, double gain,
       Circuit& circuit);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;

 private:
  int a_, b_;
  std::string sensed_;
  double gain_;
  Circuit& circuit_;
  int sense_branch_ = -1;
};

/// Current-controlled voltage source: (va - vb) = r * i(sensed branch).
class Ccvs : public Device {
 public:
  Ccvs(std::string name, int out_p, int out_n, std::string sensed_vsource, double r,
       Circuit& circuit);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;

 private:
  int a_, b_;
  std::string sensed_;
  double r_;
  Circuit& circuit_;
  int sense_branch_ = -1;
  int br_ = -1;
};

/// Ideal transformer: v1 = n * v2, i2 = -n * i1 (power conserving).
/// Port 1 = (a,b), port 2 = (c,d). One branch unknown (i1).
class IdealTransformer : public Device {
 public:
  IdealTransformer(std::string name, int a, int b, int c, int d, double ratio);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;

 private:
  int a_, b_, c_, d_;
  double n_;
  int br_ = -1;
};

/// Ideal gyrator: i1 = g * v2, i2 = -g * v1 (power conserving; converts
/// an effort on one side into a flow on the other — the natural coupling
/// element between FI-analogy domains).
class Gyrator : public Device {
 public:
  Gyrator(std::string name, int a, int b, int c, int d, double g);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;

 private:
  int a_, b_, c_, d_;
  double g_;
};

/// Exposes the integral of a node effort as a new node's effort:
///   d(v_out)/dt = v_in,  v_out(0) = initial.
/// Used to plot displacement = integral(velocity), exactly as the paper's
/// Fig. 5 displays displacements "represented by voltages D and DT".
class StateIntegrator : public Device {
 public:
  StateIntegrator(std::string name, int out, int in, double initial = 0.0);
  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;

 private:
  int out_, in_;
  double initial_;
  int br_ = -1;
};

}  // namespace usys::spice
