#include "spice/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "api/api.hpp"
#include "common/constants.hpp"
#include "spice/engine.hpp"

namespace usys::spice {

// Deprecated compatibility wrappers over the usys::api facade (api/api.hpp),
// which itself runs a fresh engine per call — the historical behavior
// exactly (fresh solver, fresh pivot order, per-analysis statistics). The
// pinned parity suite in tests/spice/test_engine.cpp keeps exercising these;
// everything else calls api:: directly. solve_dc lives here too (its
// declaration stays in solver.hpp for source compatibility).

OpResult operating_point(Circuit& circuit, const DcOptions& opts) {
  return api::operating_point(circuit, opts);
}

TranResult transient(Circuit& circuit, const TranOptions& opts) {
  return api::transient(circuit, opts);
}

AcResult ac_sweep(Circuit& circuit, const AcOptions& opts) {
  return api::ac_sweep(circuit, opts);
}

DcResult solve_dc(Circuit& circuit, const DcOptions& opts) {
  return api::solve_dc(circuit, opts);
}

// ---------------------------------------------------------------------------
// Result accessors
// ---------------------------------------------------------------------------

std::vector<double> TranResult::signal(int unknown) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) out.push_back(at(k, unknown));
  return out;
}

double TranResult::at(std::size_t k, int unknown) const {
  if (unknown < 0) return 0.0;  // ground reads 0 at any accepted point
  return x.at(k).at(static_cast<std::size_t>(unknown));
}

double TranResult::sample(double t, int unknown) const {
  if (time.empty()) return 0.0;
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  if (t <= time.front()) return at(0, unknown);
  if (t >= time.back()) return at(time.size() - 1, unknown);
  const auto it = std::lower_bound(time.begin(), time.end(), t);
  const std::size_t k = static_cast<std::size_t>(it - time.begin());
  const double t0 = time[k - 1];
  const double t1 = time[k];
  const double w = (t1 > t0) ? (t - t0) / (t1 - t0) : 1.0;
  return (1.0 - w) * at(k - 1, unknown) + w * at(k, unknown);
}

double AcResult::magnitude_db(std::size_t k, int unknown) const {
  return 20.0 * std::log10(std::abs(at(k, unknown)));
}

double AcResult::phase_deg(std::size_t k, int unknown) const {
  return std::arg(at(k, unknown)) * 180.0 / kPi;
}

}  // namespace usys::spice
