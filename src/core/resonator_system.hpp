// Builder for the paper's Fig. 3 / Fig. 4 experiment system:
// an electrostatic transducer electrically driven by a pulse source and
// mechanically loaded by the resonator (mass m, spring k, damper alpha),
// with a displacement probe (integral of the plate velocity).
#pragma once

#include <memory>

#include "core/linearized.hpp"
#include "core/transducers.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::core {

/// Which transducer model drives the mechanical resonator.
enum class TransducerModelKind {
  behavioral,   ///< non-linear TransverseElectrostatic (the paper's HDL-A model)
  linearized,   ///< LinearizedTransverseElectrostatic (equivalent-circuit baseline)
};

/// The assembled system plus the probes needed by benches/tests.
struct ResonatorSystem {
  std::unique_ptr<spice::Circuit> circuit;
  int node_drive = -1;   ///< electrical drive node ("A" in Fig. 5)
  int node_vel = -1;     ///< mechanical velocity node of the free plate
  int node_disp = -1;    ///< displacement probe node ("D"/"DT" in Fig. 5)
  spice::VSource* source = nullptr;
  TransducerBase* behavioral = nullptr;                   ///< set for behavioral kind
  LinearizedTransverseElectrostatic* linearized = nullptr; ///< set for linearized kind
};

/// Builds the Fig. 3 system. The caller supplies the drive waveform (the
/// paper uses a finite rise/fall pulse train of 5/10/15 V).
ResonatorSystem build_resonator_system(const ResonatorParams& params,
                                       TransducerModelKind kind,
                                       std::unique_ptr<spice::Waveform> drive,
                                       const LinearizationOptions& lin_opts = {});

/// Convenience: run the Fig. 5 transient on a freshly built system and
/// return the displacement samples at the given times.
struct Fig5Trace {
  std::vector<double> time;
  std::vector<double> displacement;
  std::vector<double> drive_voltage;
  spice::TranResult raw;
};

Fig5Trace run_fig5(const ResonatorParams& params, TransducerModelKind kind,
                   const std::vector<double>& levels, double total_time,
                   double rise_fall, const spice::TranOptions& tran_opts,
                   const LinearizationOptions& lin_opts = {});

}  // namespace usys::core
