// Regenerates the PXT macromodel pipeline: static FE sweep over (V, x) ->
// piecewise-linear behavioral macromodel -> generated HDL-AT model -> the
// generated model simulated in the Fig. 3 system, compared against the
// analytic behavioral device.
#include <iostream>

#include "api/api.hpp"
#include "common/table.hpp"
#include "core/reference.hpp"
#include "core/resonator_system.hpp"
#include "hdl/interpreter.hpp"
#include "pxt/pwl.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;
using namespace usys::pxt;

int main() {
  std::cout << "=== PXT macromodel: FE sweep -> PWL model -> generated HDL ===\n\n";

  ExtractionSetup setup;
  setup.width = 0.1;
  setup.depth = 1e-3;
  setup.gap0 = 0.15e-3;
  setup.nx = 4;
  setup.ny = 8;

  std::vector<double> xs;
  for (int i = -6; i <= 6; ++i) xs.push_back(static_cast<double>(i) * 5e-6);
  const std::vector<double> vs = {5.0, 10.0, 15.0};
  std::cout << "sweeping " << xs.size() << " displacements x " << vs.size()
            << " voltages = " << xs.size() * vs.size() << " FE solves...\n\n";
  const ExtractionTable table = extract_sweep(setup, xs, vs, false);

  std::cout << "--- extracted C(x) table vs analytic ---\n";
  AsciiTable t({"x [m]", "C_FE [F]", "C_analytic [F]", "rel.err"});
  for (std::size_t i = 0; i < xs.size(); i += 3) {
    const double c_fe = table.at(i, 0).capacitance;
    const double c_an = analytic_capacitance(setup, xs[i]);
    t.add_row({fmt_num(xs[i]), fmt_sci(c_fe, 5), fmt_sci(c_an, 5),
               fmt_sci(std::abs(c_fe / c_an - 1.0), 2)});
  }
  t.print(std::cout);

  const Pwl1 cap = capacitance_model(table);
  std::cout << "\n--- PWL model accuracy between knots ---\n";
  AsciiTable p({"x [m]", "C_pwl [F]", "C_analytic [F]", "rel.err"});
  for (double x : {-2.7e-5, -1.2e-5, 0.3e-5, 1.8e-5, 2.9e-5}) {
    const double c_pwl = cap(x);
    const double c_an = analytic_capacitance(setup, x);
    p.add_row({fmt_num(x), fmt_sci(c_pwl, 5), fmt_sci(c_an, 5),
               fmt_sci(std::abs(c_pwl / c_an - 1.0), 2)});
  }
  p.print(std::cout);

  const std::string hdl_src = generate_hdl_model(table, 3);
  std::cout << "\n--- generated HDL-AT model ---\n\n" << hdl_src << "\n";

  // Simulate the generated model in the Fig. 3 system vs the analytic device.
  auto build_and_run = [&](bool use_generated) {
    spice::Circuit ckt;
    const int drive = ckt.add_node("drive", Nature::electrical);
    const int vel = ckt.add_node("vel", Nature::mechanical_translation);
    const int disp = ckt.add_node("disp", Nature::mechanical_translation);
    ckt.add<spice::VSource>(
        "V1", drive, spice::Circuit::kGround,
        std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
    if (use_generated) {
      ckt.add_device(hdl::instantiate(
          "XT", hdl_src, "pxt_etrans", {},
          {drive, spice::Circuit::kGround, vel, spice::Circuit::kGround}));
    } else {
      core::TransducerGeometry g;
      g.area = setup.width * setup.depth;
      g.gap = setup.gap0;
      ckt.add<core::TransverseElectrostatic>("XT", drive, spice::Circuit::kGround, vel,
                                             spice::Circuit::kGround, g);
    }
    ckt.add<spice::Mass>("M1", vel, 1e-4);
    ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 200.0);
    ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 40e-3);
    ckt.add<spice::StateIntegrator>("XD", disp, vel);
    spice::TranOptions opts;
    opts.tstop = 80e-3;
    const auto res = api::transient(ckt, opts);
    return res.ok ? res.sample(80e-3, disp) : 0.0;
  };

  const double x_gen = build_and_run(true);
  const double x_ref = build_and_run(false);
  std::cout << "--- system-level validation (static deflection at 10 V) ---\n";
  AsciiTable v({"model", "x_static [m]"});
  v.add_row({"generated pxt_etrans (FE-fitted)", fmt_sci(x_gen, 5)});
  v.add_row({"analytic behavioral device", fmt_sci(x_ref, 5)});
  v.add_row({"relative difference", fmt_sci(std::abs(x_gen / x_ref - 1.0), 2)});
  v.print(std::cout);
  return 0;
}
