#include "sym/expr.hpp"

namespace usys::sym {

// Textbook recursive differentiation. Local trivial folding (derivative of
// a subtree that does not mention `v` is 0) keeps intermediate results from
// exploding; the caller runs simplify() for presentable output.
Expr diff(const Expr& e, const std::string& v) {
  if (!e.depends_on(v)) return Expr(0.0);
  switch (e.kind()) {
    case Kind::constant:
      return Expr(0.0);
    case Kind::variable:
      return e.name() == v ? Expr(1.0) : Expr(0.0);
    case Kind::add:
      return diff(e.args()[0], v) + diff(e.args()[1], v);
    case Kind::sub:
      return diff(e.args()[0], v) - diff(e.args()[1], v);
    case Kind::mul: {
      const Expr& a = e.args()[0];
      const Expr& b = e.args()[1];
      return diff(a, v) * b + a * diff(b, v);
    }
    case Kind::div: {
      const Expr& a = e.args()[0];
      const Expr& b = e.args()[1];
      return (diff(a, v) * b - a * diff(b, v)) / (b * b);
    }
    case Kind::neg:
      return -diff(e.args()[0], v);
    case Kind::pow: {
      const Expr& base = e.args()[0];
      const Expr& expo = e.args()[1];
      if (!expo.depends_on(v)) {
        // d/dv base^n = n * base^(n-1) * base'
        return expo * pow(base, expo - Expr(1.0)) * diff(base, v);
      }
      // General case: base^expo = exp(expo*log(base)).
      return e * (diff(expo, v) * log(base) + expo * diff(base, v) / base);
    }
    case Kind::sin:
      return cos(e.args()[0]) * diff(e.args()[0], v);
    case Kind::cos:
      return -(sin(e.args()[0]) * diff(e.args()[0], v));
    case Kind::tan: {
      const Expr c = cos(e.args()[0]);
      return diff(e.args()[0], v) / (c * c);
    }
    case Kind::exp:
      return e * diff(e.args()[0], v);
    case Kind::log:
      return diff(e.args()[0], v) / e.args()[0];
    case Kind::sqrt:
      return diff(e.args()[0], v) / (Expr(2.0) * e);
    case Kind::abs:
      // d|u|/dv = sign(u) u' ; representable as u/|u| * u'.
      return e.args()[0] / e * diff(e.args()[0], v);
  }
  throw std::logic_error("sym::diff: unreachable kind");
}

}  // namespace usys::sym
