// Regenerates Table 4: the parameters of the transducer-resonator system and
// the derived operating-point quantities (x0, C0, Gamma), comparing our
// self-consistent values against the paper's printed ones. The paper's
// printed Gamma is internally inconsistent with its own formula and
// parameters (see EXPERIMENTS.md); both readings are shown.
#include <iostream>

#include "api/api.hpp"
#include "common/table.hpp"
#include "core/linearized.hpp"
#include "core/resonator_system.hpp"
#include "spice/analysis.hpp"

using namespace usys;
using namespace usys::core;

int main() {
  std::cout << "=== Table 4: transducer-resonator system parameters ===\n\n";
  ResonatorParams p;  // defaults ARE Table 4

  AsciiTable t({"parameter", "quantity", "value (this repo)", "paper"});
  t.add_row({"A", "area", fmt_sci(p.geom.area, 1) + " m^2", "1.0E-4 m^2"});
  t.add_row({"d", "gap", fmt_sci(p.geom.gap, 2) + " m", "0.15E-3 m"});
  t.add_row({"er", "rel. permittivity", fmt_num(p.geom.eps_r), "1"});
  t.add_row({"m", "mass", fmt_sci(p.mass, 1) + " kg", "1.0E-4 kg"});
  t.add_row({"k", "spring constant", fmt_num(p.stiffness) + " N/m", "200 N/m"});
  t.add_row({"alpha", "damping", fmt_sci(p.damping, 1) + " Ns/m", "40E-3 Ns/m"});
  t.add_row({"v0", "dc voltage", fmt_num(p.v_bias) + " V", "10 V"});

  const double x0 = static_displacement_transverse(p, p.v_bias);
  const double c0 = bias_capacitance(p);
  t.add_row({"x0", "dc displacement", fmt_sci(std::abs(x0), 2) + " m (gap closing)",
             "1.0E-8 m"});
  t.add_row({"C0", "dc capacitance", fmt_sci(c0, 4) + " F", "5.8637E-12 F"});
  t.print(std::cout);

  std::cout << "\n--- transduction factor Gamma ---\n";
  AsciiTable g({"definition", "formula", "value [N/V]"});
  g.add_row({"tangent (Tilmans [1])", "e0*er*A*V0/(d+x0)^2", fmt_sci(gamma_tangent(p), 5)});
  g.add_row({"secant (matches Fig.5 from 0 V)", "|F(V0,x0)|/V0 = tangent/2",
             fmt_sci(gamma_secant(p), 5)});
  g.add_row({"paper's printed value", "(inconsistent with its formula)", "3.34675E-9"});
  g.print(std::cout);

  std::cout << "\n--- solver cross-check: DC operating point of the full system ---\n";
  auto sys = build_resonator_system(p, TransducerModelKind::behavioral,
                                    std::make_unique<spice::DcWave>(p.v_bias));
  const auto op = api::operating_point(*sys.circuit);
  std::cout << "  converged: " << (op.converged ? "yes" : "NO")
            << ", velocity at DC: " << fmt_sci(op.at(sys.node_vel), 2) << " m/s (expect 0)\n";

  std::cout << "\n--- resonator dynamics ---\n";
  std::cout << "  f0 = " << fmt_num(omega0(p) / (2.0 * kPi), 4) << " Hz,  zeta = "
            << fmt_num(damping_ratio(p), 4) << " (under-critical, as the paper states)\n";
  return 0;
}
