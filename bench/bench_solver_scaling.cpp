// Dense vs sparse MNA scaling: time per Newton iteration (stamp + combine
// + factor + solve) on two topology families, swept from tens to thousands
// of unknowns:
//   * rc_ladder      — V source driving a chain of R/C sections
//   * resonator_array — chain of mass-spring-damper resonators coupled by
//     springs (mechanical banded system with branch unknowns)
// The dense path zero-fills n x n Jacobians and runs O(n^3) LU every
// iteration; the sparse path scatters into a pattern-cached CSR layout and
// reuses one symbolic factorization, so the gap widens cubically. A
// summary table with the measured speedups prints at exit.
//
// Also tracked here (PR 4):
//   * ordering quality — BM_Ordering* times SparseLu::analyze per ordering
//     (AMD vs the simple min-degree baseline) and records the factor/fill
//     nonzero counters; the acceptance bar is AMD fill <= min-degree fill
//     on the n >= 500 topologies;
//   * threaded triangular solves — BM_TriangularSolve* times solve() per
//     thread count on a chain (rc_ladder: level count ~ n, the worst case)
//     and on a star-coupled transducer array (wide levels, the workload the
//     level scheduling targets), with the level counters recorded.
//
// CI smoke mode: --benchmark_min_time=0.02s --benchmark_format=json
//                --benchmark_out=BENCH_solver_scaling.json
// GCC 12's libstdc++ trips a -Wrestrict false positive (GCC PR105651) on
// short string concatenations in some inlining contexts; no real aliasing
// exists. Scoped to GCC 12 so newer compilers keep the check.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/sparse_lu.hpp"
#include "spice/lint.hpp"
#include "common/thread_pool.hpp"
#include "core/transducers.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;

namespace {

std::unique_ptr<spice::Circuit> rc_ladder(int sections) {
  auto ckt = std::make_unique<spice::Circuit>();
  int prev = ckt->add_node("in", Nature::electrical);
  ckt->add<spice::VSource>("V1", prev, spice::Circuit::kGround, 1.0);
  for (int k = 0; k < sections; ++k) {
    const int node = ckt->add_node("n" + std::to_string(k), Nature::electrical);
    ckt->add<spice::Resistor>("R" + std::to_string(k), prev, node, 1e3);
    ckt->add<spice::Capacitor>("C" + std::to_string(k), node, spice::Circuit::kGround,
                               1e-9);
    prev = node;
  }
  return ckt;
}

std::unique_ptr<spice::Circuit> resonator_array(int count) {
  auto ckt = std::make_unique<spice::Circuit>();
  const int first = ckt->add_node("m0", Nature::mechanical_translation);
  ckt->add<spice::ForceSource>("F1", first, 1e-3);
  int prev = first;
  for (int k = 0; k < count; ++k) {
    const int node =
        k == 0 ? first : ckt->add_node("m" + std::to_string(k), Nature::mechanical_translation);
    ckt->add<spice::Mass>("M" + std::to_string(k), node, 1e-4);
    ckt->add<spice::Damper>("D" + std::to_string(k), node, spice::Circuit::kGround, 1e-2);
    if (k > 0)
      ckt->add<spice::Spring>("K" + std::to_string(k), prev, node, 250.0);
    ckt->add<spice::Spring>("Kg" + std::to_string(k), node, spice::Circuit::kGround, 400.0);
    prev = node;
  }
  return ckt;
}

/// One transient-like Newton iteration per call: max_iters = 1 makes
/// solve() do exactly stamp + combine + factor + solve once.
struct IterationHarness {
  std::unique_ptr<spice::Circuit> ckt;
  std::unique_ptr<spice::NewtonSolver> solver;
  DVector x0, hist;
  spice::EvalCtx ctx;
  double a0 = 0.0;

  IterationHarness(std::unique_ptr<spice::Circuit> circuit, spice::MatrixBackend backend,
                   spice::PartitionMode partition = spice::PartitionMode::off,
                   int threads = 1)
      : ckt(std::move(circuit)) {
    spice::NewtonOptions opts;
    opts.max_iters = 1;
    opts.backend = backend;
    opts.partition = partition;
    if (threads > 1) {
      opts.solve_threads = threads;
      opts.refactor_threads = threads;
    }
    ckt->bind_all();
    solver = std::make_unique<spice::NewtonSolver>(*ckt, opts);
    const auto n = static_cast<std::size_t>(ckt->unknown_count());
    x0.assign(n, 0.0);
    hist.assign(n, 0.0);
    ctx.mode = spice::AnalysisMode::transient;
    ctx.time = 1e-6;
    ctx.integ_c0 = 0.0;
    ctx.integ_c1 = 1e-6;
    a0 = 1e6;  // backward Euler at dt = 1 us: exercises Jf + a0*Jq
  }

  void run_one() {
    DVector x = x0;
    benchmark::DoNotOptimize(solver->solve(ctx, a0, hist, x));
  }
};

/// Star-coupled electrostatic transducer array: every element hangs off one
/// drive bus, so the triangular-solve dependency levels are wide — the
/// topology the level-scheduled parallel solve targets (a chain like
/// rc_ladder is its worst case: level count ~ n).
std::unique_ptr<spice::Circuit> transducer_star(int elements) {
  auto ckt = std::make_unique<spice::Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  ckt->add<spice::VSource>("V1", drive, spice::Circuit::kGround, 2.0);
  core::TransducerGeometry g;
  g.area = 1e-8;
  g.eps_r = 1.0;
  for (int i = 0; i < elements; ++i) {
    const int mech =
        ckt->add_node("v" + std::to_string(i), Nature::mechanical_translation);
    g.gap = 2e-6 * (1.0 + 0.1 * (elements > 1 ? 2.0 * i / (elements - 1) - 1.0 : 0.0));
    ckt->add<core::TransverseElectrostatic>("XT" + std::to_string(i), drive,
                                            spice::Circuit::kGround, mech,
                                            spice::Circuit::kGround, g);
    ckt->add<spice::Mass>("M" + std::to_string(i), mech, 1e-9);
    ckt->add<spice::Spring>("K" + std::to_string(i), mech, spice::Circuit::kGround, 25.0);
    ckt->add<spice::Damper>("D" + std::to_string(i), mech, spice::Circuit::kGround, 1e-4);
  }
  return ckt;
}

std::unique_ptr<spice::Circuit> build(const std::string& family, int n_target) {
  // Families are sized by unknown count: ladder n ~ sections + 2,
  // resonator n ~ 2*count + 1, star n ~ 2*elements + 2.
  if (family == "rc_ladder") return rc_ladder(n_target - 2);
  if (family == "transducer_star") return transducer_star((n_target - 2) / 2);
  return resonator_array((n_target - 1) / 2);
}

/// A circuit's assembled transient Newton matrix (Jf + a0*Jq at x = 0,
/// backward Euler dt = 1 us) on its compiled CSR pattern — the real system
/// the ordering-quality and triangular-solve benchmarks factor.
struct SparseSystem {
  std::unique_ptr<spice::Circuit> ckt;
  std::unique_ptr<spice::NewtonSolver> solver;
  std::vector<double> jac;
  const spice::MnaPattern* pattern = nullptr;

  explicit SparseSystem(std::unique_ptr<spice::Circuit> circuit)
      : ckt(std::move(circuit)) {
    spice::NewtonOptions opts;
    opts.max_iters = 1;
    opts.backend = spice::MatrixBackend::sparse;
    ckt->bind_all();
    solver = std::make_unique<spice::NewtonSolver>(*ckt, opts);
    pattern = solver->pattern();
    const auto n = static_cast<std::size_t>(ckt->unknown_count());
    DVector x(n, 0.0), f, q;
    spice::EvalCtx ctx;
    ctx.mode = spice::AnalysisMode::transient;
    ctx.time = 1e-6;
    ctx.integ_c1 = 1e-6;
    solver->assemble_sparse(ctx, x, f, q);
    const auto& jfv = solver->sparse_jf();
    const auto& jqv = solver->sparse_jq();
    jac.resize(jfv.size());
    const double a0 = 1e6;
    for (std::size_t k = 0; k < jac.size(); ++k) jac[k] = jfv[k] + a0 * jqv[k];
  }
};

void run_family(benchmark::State& state, const std::string& family,
                spice::MatrixBackend backend) {
  IterationHarness harness(build(family, static_cast<int>(state.range(0))),
                           backend);
  if ((backend == spice::MatrixBackend::sparse) != harness.solver->sparse_active()) {
    state.SkipWithError("backend selection failed");
    return;
  }
  for (auto _ : state) harness.run_one();
  state.counters["unknowns"] = static_cast<double>(harness.ckt->unknown_count());
}

void BM_RcLadderDense(benchmark::State& state) {
  run_family(state, "rc_ladder", spice::MatrixBackend::dense);
}
void BM_RcLadderSparse(benchmark::State& state) {
  run_family(state, "rc_ladder", spice::MatrixBackend::sparse);
}
void BM_ResonatorArrayDense(benchmark::State& state) {
  run_family(state, "resonator_array", spice::MatrixBackend::dense);
}
void BM_ResonatorArraySparse(benchmark::State& state) {
  run_family(state, "resonator_array", spice::MatrixBackend::sparse);
}

// Dense stops at 1000 unknowns (a single O(n^3) iteration at 2000 takes
// seconds); sparse continues to 2000. The small sizes (8, 12, 20) probe the
// auto_select crossover (NewtonOptions::sparse_threshold).
BENCHMARK(BM_RcLadderDense)->Arg(8)->Arg(12)->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(500)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RcLadderSparse)->Arg(8)->Arg(12)->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(500)->Arg(1000)->Arg(2000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ResonatorArrayDense)->Arg(8)->Arg(12)->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(500)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ResonatorArraySparse)->Arg(8)->Arg(12)->Arg(20)->Arg(50)->Arg(100)->Arg(200)
    ->Arg(500)->Arg(1000)->Arg(2000)->Unit(benchmark::kMicrosecond);

// --- ordering quality: analyze time + fill counters --------------------------

void run_ordering(benchmark::State& state, const std::string& family, LuOrdering ord) {
  SparseSystem sys(build(family, static_cast<int>(state.range(0))));
  DSparseLu lu;
  // The timed region is analyze() — ordering construction dominates it; the
  // resulting fill is reported through the counters below.
  for (auto _ : state) {
    lu.analyze(sys.pattern->size(), sys.pattern->row_ptr(), sys.pattern->col_idx(), ord);
    benchmark::DoNotOptimize(lu.ordering().data());
  }
  lu.factor(sys.jac);
  const double nnz = static_cast<double>(lu.nonzeros());
  const double fnnz = static_cast<double>(lu.factor_nonzeros());
  state.counters["unknowns"] = static_cast<double>(sys.ckt->unknown_count());
  state.counters["pattern_nnz"] = nnz;
  state.counters["factor_nnz"] = fnnz;
  // Fill the ordering admitted beyond the pattern itself (both factor
  // diagonals double-count the n diagonal slots).
  state.counters["fill_nnz"] =
      std::max(0.0, fnnz - nnz - static_cast<double>(sys.pattern->size()));
}

void BM_OrderingRcLadderAmd(benchmark::State& state) {
  run_ordering(state, "rc_ladder", LuOrdering::amd);
}
void BM_OrderingRcLadderMinDeg(benchmark::State& state) {
  run_ordering(state, "rc_ladder", LuOrdering::min_degree);
}
void BM_OrderingResonatorAmd(benchmark::State& state) {
  run_ordering(state, "resonator_array", LuOrdering::amd);
}
void BM_OrderingResonatorMinDeg(benchmark::State& state) {
  run_ordering(state, "resonator_array", LuOrdering::min_degree);
}
BENCHMARK(BM_OrderingRcLadderAmd)->Arg(100)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OrderingRcLadderMinDeg)->Arg(100)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OrderingResonatorAmd)->Arg(100)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OrderingResonatorMinDeg)->Arg(100)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

// --- threaded triangular solves ----------------------------------------------

void run_tri_solve(benchmark::State& state, const std::string& family) {
  const int n_target = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  SparseSystem sys(build(family, n_target));
  DSparseLu lu;
  lu.analyze(sys.pattern->size(), sys.pattern->row_ptr(), sys.pattern->col_idx());
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    lu.set_parallel(pool.get(), threads);
  }
  lu.factor(sys.jac);
  const auto n = static_cast<std::size_t>(sys.pattern->size());
  DVector b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = 1.0 + 0.25 * static_cast<double>(i % 7);  // deterministic mixed rhs
  DVector x(n);
  for (auto _ : state) {
    x = b;
    lu.solve(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["unknowns"] = static_cast<double>(sys.ckt->unknown_count());
  state.counters["factor_nnz"] = static_cast<double>(lu.factor_nonzeros());
  state.counters["fwd_levels"] = static_cast<double>(lu.forward_levels());
  state.counters["bwd_levels"] = static_cast<double>(lu.backward_levels());
}

void BM_TriangularSolveRcLadder(benchmark::State& state) {
  run_tri_solve(state, "rc_ladder");
}
void BM_TriangularSolveTransducerStar(benchmark::State& state) {
  run_tri_solve(state, "transducer_star");
}
BENCHMARK(BM_TriangularSolveRcLadder)
    ->Args({1000, 1})->Args({1000, 2})->Args({1000, 4})
    ->Args({2000, 1})->Args({2000, 2})->Args({2000, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TriangularSolveTransducerStar)
    ->Args({1000, 1})->Args({1000, 2})->Args({1000, 4})
    ->Args({2000, 1})->Args({2000, 2})->Args({2000, 4})
    ->Unit(benchmark::kMicrosecond);

// --- level-scheduled parallel numeric refactorization ------------------------

/// Pure refactorization cost per thread count: the first factor() records
/// the pivot order, every timed factor() replays it through the column
/// level schedule. This is the per-Newton-iteration factor cost once the
/// pivot order has settled — the dominant solver term on big systems.
void run_refactor(benchmark::State& state, const std::string& family) {
  const int n_target = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  SparseSystem sys(build(family, n_target));
  DSparseLu lu;
  lu.analyze(sys.pattern->size(), sys.pattern->row_ptr(), sys.pattern->col_idx());
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    lu.set_parallel(pool.get(), 1);  // lends the pool; solves stay serial
    lu.set_refactor_parallel(threads);
  }
  lu.factor(sys.jac);  // records the pivot order
  for (auto _ : state) {
    lu.factor(sys.jac);  // pure replay
    benchmark::DoNotOptimize(lu.factor_nonzeros());
  }
  state.counters["unknowns"] = static_cast<double>(sys.ckt->unknown_count());
  state.counters["refactor_levels"] = static_cast<double>(lu.refactor_levels());
  state.counters["symbolic"] = static_cast<double>(lu.symbolic_factorizations());
}

void BM_RefactorRcLadder(benchmark::State& state) {
  run_refactor(state, "rc_ladder");
}
void BM_RefactorTransducerStar(benchmark::State& state) {
  run_refactor(state, "transducer_star");
}
BENCHMARK(BM_RefactorRcLadder)
    ->Args({1000, 1})->Args({1000, 2})->Args({1000, 4})
    ->Args({2000, 1})->Args({2000, 2})->Args({2000, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RefactorTransducerStar)
    ->Args({1000, 1})->Args({1000, 2})->Args({1000, 4})
    ->Args({2000, 1})->Args({2000, 2})->Args({2000, 4})
    ->Unit(benchmark::kMicrosecond);

// --- partitioned (island/Schur) Newton iterations ----------------------------

/// Full Newton iterations (stamp + combine + factor + solve) through the
/// partitioned solver on the star array — the paper's array workload, and
/// the topology the partitioner targets. The monolithic sparse baseline is
/// the same harness with partition off.
void run_partitioned(benchmark::State& state, spice::PartitionMode mode) {
  const int threads = static_cast<int>(state.range(1));
  IterationHarness harness(build("transducer_star", static_cast<int>(state.range(0))),
                           spice::MatrixBackend::sparse, mode, threads);
  const bool want = mode == spice::PartitionMode::auto_mode;
  if (harness.solver->partition_active() != want) {
    state.SkipWithError("partition engagement mismatch");
    return;
  }
  for (auto _ : state) harness.run_one();
  state.counters["unknowns"] = static_cast<double>(harness.ckt->unknown_count());
  if (want) {
    state.counters["blocks"] =
        static_cast<double>(harness.solver->partition_plan().n_blocks);
    state.counters["interface"] =
        static_cast<double>(harness.solver->partition_plan().interface.size());
  }
}

void BM_MonolithicTransducerStar(benchmark::State& state) {
  run_partitioned(state, spice::PartitionMode::off);
}
void BM_PartitionedTransducerStar(benchmark::State& state) {
  run_partitioned(state, spice::PartitionMode::auto_mode);
}
BENCHMARK(BM_MonolithicTransducerStar)
    ->Args({1000, 1})->Args({2000, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PartitionedTransducerStar)
    ->Args({1000, 1})->Args({1000, 4})
    ->Args({2000, 1})->Args({2000, 4})
    ->Unit(benchmark::kMicrosecond);

// --- static lint pass cost ---------------------------------------------------

/// Full structural lint (connectivity + DC paths + matching probe) on a bound
/// circuit. Acceptance: at n = 2000 the pass costs under 1% of the sparse
/// symbolic analyze it precedes — cheap enough to always run before a solve.
void run_lint_pass(benchmark::State& state, const std::string& family) {
  auto ckt = build(family, static_cast<int>(state.range(0)));
  ckt->bind_all();
  for (auto _ : state) {
    spice::LintReport rep = spice::lint_circuit(*ckt);
    benchmark::DoNotOptimize(rep.diags.data());
  }
  state.counters["unknowns"] = static_cast<double>(ckt->unknown_count());
}

void BM_LintPassRcLadder(benchmark::State& state) {
  run_lint_pass(state, "rc_ladder");
}
void BM_LintPassResonatorArray(benchmark::State& state) {
  run_lint_pass(state, "resonator_array");
}
BENCHMARK(BM_LintPassRcLadder)->Arg(100)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LintPassResonatorArray)->Arg(100)->Arg(500)->Arg(1000)->Arg(2000)
    ->Unit(benchmark::kMicrosecond);

/// Direct wall-clock summary (independent of google-benchmark's repetition
/// policy) — this is the table the acceptance criterion reads.
void print_summary() {
  using clock = std::chrono::steady_clock;
  std::puts("\n=== dense vs sparse: time per Newton iteration ===");
  std::printf("%-16s %8s %14s %14s %10s\n", "family", "n", "dense [ms]", "sparse [ms]",
              "speedup");
  for (const std::string family : {"rc_ladder", "resonator_array"}) {
    for (int n : {100, 250, 500, 1000, 2000}) {
      IterationHarness dense(build(family, n), spice::MatrixBackend::dense);
      IterationHarness sparse(build(family, n), spice::MatrixBackend::sparse);
      auto time_one = [&](IterationHarness& h, int reps) {
        h.run_one();  // warm-up (sparse: the one-time symbolic factorization)
        const auto t0 = clock::now();
        for (int r = 0; r < reps; ++r) h.run_one();
        return std::chrono::duration<double, std::milli>(clock::now() - t0).count() /
               reps;
      };
      const double td = time_one(dense, n >= 1000 ? 1 : 5);
      const double ts = time_one(sparse, 20);
      std::printf("%-16s %8d %14.3f %14.3f %9.1fx\n", family.c_str(),
                  dense.ckt->unknown_count(), td, ts, td / ts);
    }
  }
  std::puts("\nsparse time grows ~linearly on these banded topologies; the dense\n"
            "path pays the n^2 zero-fill + n^3 LU every iteration.");

  using clock2 = std::chrono::steady_clock;
  std::puts("\n=== ordering quality: AMD vs simple min-degree ===");
  std::printf("%-16s %8s %12s %12s %14s %14s\n", "family", "n", "amd fnnz",
              "mindeg fnnz", "amd anl [ms]", "mindeg anl [ms]");
  for (const std::string family : {"rc_ladder", "resonator_array", "transducer_star"}) {
    for (int n : {500, 1000, 2000}) {
      SparseSystem sys(build(family, n));
      double t_ms[2];
      std::size_t fnnz[2];
      const LuOrdering ords[2] = {LuOrdering::amd, LuOrdering::min_degree};
      for (int k = 0; k < 2; ++k) {
        DSparseLu lu;
        const auto t0 = clock2::now();
        lu.analyze(sys.pattern->size(), sys.pattern->row_ptr(), sys.pattern->col_idx(),
                   ords[k]);
        t_ms[k] = std::chrono::duration<double, std::milli>(clock2::now() - t0).count();
        lu.factor(sys.jac);
        fnnz[k] = lu.factor_nonzeros();
      }
      std::printf("%-16s %8d %12zu %12zu %14.3f %14.3f%s\n", family.c_str(),
                  sys.ckt->unknown_count(), fnnz[0], fnnz[1], t_ms[0], t_ms[1],
                  fnnz[0] <= fnnz[1] ? "" : "  << AMD WORSE");
    }
  }
  std::puts("\nacceptance: AMD fill <= min-degree fill on every n >= 500 row above.");

  std::puts("\n=== level-scheduled triangular solve (AMD ordering) ===");
  std::printf("%-16s %8s %8s %8s %14s %10s\n", "family", "n", "fwd lvl", "bwd lvl",
              "serial [us]", "4T [us]");
  for (const std::string family : {"rc_ladder", "transducer_star"}) {
    for (int n : {1000, 2000}) {
      SparseSystem sys(build(family, n));
      DSparseLu ser, par;
      ser.analyze(sys.pattern->size(), sys.pattern->row_ptr(), sys.pattern->col_idx());
      par.analyze(sys.pattern->size(), sys.pattern->row_ptr(), sys.pattern->col_idx());
      ThreadPool pool(4);
      par.set_parallel(&pool, 4);
      ser.factor(sys.jac);
      par.factor(sys.jac);
      const auto sn = static_cast<std::size_t>(sys.pattern->size());
      DVector b(sn, 1.0), x(sn);
      const auto time_us = [&](const DSparseLu& lu) {
        constexpr int reps = 200;
        x = b;
        lu.solve(x);  // warm-up
        const auto t0 = clock2::now();
        for (int r = 0; r < reps; ++r) {
          x = b;
          lu.solve(x);
        }
        return std::chrono::duration<double, std::micro>(clock2::now() - t0).count() /
               reps;
      };
      std::printf("%-16s %8d %8d %8d %14.2f %10.2f\n", family.c_str(),
                  sys.ckt->unknown_count(), ser.forward_levels(), ser.backward_levels(),
                  time_us(ser), time_us(par));
    }
  }
  std::puts("\nthe chain (rc_ladder) has ~n levels and gains nothing; the star array's\n"
            "wide levels are where the threaded solve pays (needs physical cores).");

  std::puts("\n=== partitioned + parallel-refactor Newton iteration (transducer star) ===");
  std::printf("%-8s %14s %14s %14s %14s %10s\n", "n", "mono [ms]", "refac-4T [ms]",
              "part [ms]", "part-4T [ms]", "best");
  for (int n : {1000, 2000}) {
    // Four configurations of the same Newton iteration: monolithic serial,
    // monolithic with 4-thread refactorization+solves, partitioned serial,
    // partitioned with 4-thread blocks.
    IterationHarness mono(build("transducer_star", n), spice::MatrixBackend::sparse);
    IterationHarness refac(build("transducer_star", n), spice::MatrixBackend::sparse,
                           spice::PartitionMode::off, 4);
    IterationHarness part(build("transducer_star", n), spice::MatrixBackend::sparse,
                          spice::PartitionMode::auto_mode);
    IterationHarness part4(build("transducer_star", n), spice::MatrixBackend::sparse,
                           spice::PartitionMode::auto_mode, 4);
    const auto time_ms = [&](IterationHarness& h) {
      constexpr int reps = 20;
      h.run_one();  // warm-up: symbolic analysis + first full factorization
      const auto t0 = clock2::now();
      for (int r = 0; r < reps; ++r) h.run_one();
      return std::chrono::duration<double, std::milli>(clock2::now() - t0).count() /
             reps;
    };
    const double tm = time_ms(mono);
    const double tr = time_ms(refac);
    const double tp = time_ms(part);
    const double tp4 = time_ms(part4);
    const double best = std::min({tm, tr, tp, tp4});
    std::printf("%-8d %14.3f %14.3f %14.3f %14.3f %9.1fx\n",
                mono.ckt->unknown_count(), tm, tr, tp, tp4, tm / best);
  }
  std::puts("\nacceptance: the partitioned/threaded configurations beat the serial\n"
            "monolithic iteration on the array topology (needs physical cores for\n"
            "the threaded columns; the serial partitioned column should win even\n"
            "single-threaded by skipping the global fill).");

  std::puts("\n=== lint pass vs one-time sparse setup (pattern compile + analyze) ===");
  std::printf("%-16s %8s %14s %12s %12s %10s %10s\n", "family", "n",
              "preflight [ms]", "full [ms]", "setup [ms]", "pre/setup", "full/setup");
  for (const std::string family : {"rc_ladder", "resonator_array", "transducer_star"}) {
    for (int n : {1000, 2000}) {
      auto ckt = build(family, n);
      ckt->bind_all();
      constexpr int reps = 20;
      const auto time_lint = [&](const spice::LintOptions& o) {
        const auto t0 = clock2::now();
        for (int r = 0; r < reps; ++r) {
          spice::LintReport rep = spice::lint_circuit(*ckt, o);
          benchmark::DoNotOptimize(rep.diags.data());
        }
        return std::chrono::duration<double, std::milli>(clock2::now() - t0).count() /
               reps;
      };
      spice::LintOptions preflight;  // what AnalysisEngine always runs
      preflight.matching = false;
      preflight.hdl = false;
      const double t_pre = time_lint(preflight);
      const double t_full = time_lint(spice::LintOptions{});
      // The setup the lint precedes: solver construction (MNA pattern
      // compile) plus the LU symbolic analyze on that pattern.
      spice::NewtonOptions nopts;
      nopts.max_iters = 1;
      nopts.backend = spice::MatrixBackend::sparse;
      auto t0 = clock2::now();
      double t_anl = 0.0;
      for (int r = 0; r < reps; ++r) {
        spice::NewtonSolver solver(*ckt, nopts);
        const auto ta = clock2::now();
        DSparseLu lu;
        lu.analyze(solver.pattern()->size(), solver.pattern()->row_ptr(),
                   solver.pattern()->col_idx());
        t_anl += std::chrono::duration<double, std::milli>(clock2::now() - ta).count();
      }
      const double t_setup =
          std::chrono::duration<double, std::milli>(clock2::now() - t0).count() / reps;
      benchmark::DoNotOptimize(t_anl);
      const double pre_pct = 100.0 * t_pre / t_setup;
      const double full_pct = 100.0 * t_full / t_setup;
      std::printf("%-16s %8d %14.4f %12.4f %12.4f %9.1f%% %9.1f%%%s\n", family.c_str(),
                  ckt->unknown_count(), t_pre, t_full, t_setup, pre_pct, full_pct,
                  (n >= 2000 && (pre_pct > 25.0 || full_pct > 150.0))
                      ? "  << OVER BUDGET"
                      : "");
    }
  }
  std::puts(
      "\nacceptance (n = 2000 rows): the errors-only preflight every solve pays is\n"
      "< 25% of the one-time sparse setup it precedes, and the full probed-pattern\n"
      "lint (usim --lint) stays within 1.5x of that setup. Both are one-shot costs:\n"
      "against a whole DC solve or transient run they are noise.");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_summary();
  return 0;
}
