#include "common/table.hpp"

#include <cassert>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/strings.hpp"

namespace usys {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      for (std::size_t p = row[c].size(); p < widths[c]; ++p) os << ' ';
      os << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|";
    for (std::size_t p = 0; p < widths[c] + 2; ++p) os << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_num(double v, int precision) {
  return str_format("%.*g", precision, v);
}

std::string fmt_sci(double v, int precision) {
  return str_format("%.*e", precision, v);
}

bool write_csv(const std::string& path, const std::vector<std::string>& headers,
               const std::vector<std::vector<double>>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  for (std::size_t c = 0; c < headers.size(); ++c) {
    if (c) f << ',';
    f << headers[c];
  }
  f << '\n';
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      f << str_format("%.9g", row[c]);
    }
    f << '\n';
  }
  return static_cast<bool>(f);
}

}  // namespace usys
