// Island decomposition (partition_pattern) and the block/Schur factorization
// (PartitionedLu): plan invariants and decline rules on synthetic hub/island
// patterns, solve parity against the monolithic SparseLu at 1e-12, and the
// bit-identity-across-thread-counts pin. The suite name keeps these under
// the TSan CI filter.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "common/matrix.hpp"
#include "common/partition.hpp"
#include "common/thread_pool.hpp"

namespace usys {
namespace {

struct Pattern {
  int n = 0;
  std::vector<int> row_ptr, col_idx;
};

/// The transducer-array shape in miniature: `cells` dense cliques of
/// `cell_size` unknowns each, all coupled (both directions) to `hubs`
/// shared vertices placed at the end. Hubs also couple to each other.
Pattern hub_pattern(int cells, int cell_size, int hubs) {
  Pattern p;
  p.n = cells * cell_size + hubs;
  const int hub0 = cells * cell_size;
  p.row_ptr.assign(static_cast<std::size_t>(p.n) + 1, 0);
  for (int r = 0; r < p.n; ++r) {
    if (r < hub0) {
      const int cell = r / cell_size;
      for (int c = cell * cell_size; c < (cell + 1) * cell_size; ++c)
        p.col_idx.push_back(c);
      for (int h = 0; h < hubs; ++h) p.col_idx.push_back(hub0 + h);
    } else {
      for (int c = 0; c < p.n; ++c) p.col_idx.push_back(c);
    }
    p.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(p.col_idx.size());
  }
  return p;
}

Pattern chain_pattern(int n) {
  Pattern p;
  p.n = n;
  p.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int r = 0; r < n; ++r) {
    for (int c = std::max(0, r - 1); c <= std::min(n - 1, r + 1); ++c)
      p.col_idx.push_back(c);
    p.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(p.col_idx.size());
  }
  return p;
}

std::vector<double> make_dominant(const Pattern& p, std::mt19937& rng) {
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  std::vector<double> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = ud(rng);
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] = off + 1.0;
  }
  return vals;
}

TEST(Partition, RecoversIslandsAroundHubs) {
  const Pattern p = hub_pattern(/*cells=*/8, /*cell_size=*/8, /*hubs=*/2);
  const PartitionPlan plan = partition_pattern(p.n, p.row_ptr, p.col_idx);
  ASSERT_TRUE(plan.ok) << plan.decline_reason;
  EXPECT_EQ(plan.n, p.n);
  EXPECT_GE(plan.n_blocks, 4);

  // Both hubs land in the interface; every cell unknown lands in a block.
  const int hub0 = 8 * 8;
  for (int v = 0; v < p.n; ++v) {
    if (v >= hub0) {
      EXPECT_EQ(plan.block_of[static_cast<std::size_t>(v)], -1) << "hub " << v;
    } else {
      EXPECT_GE(plan.block_of[static_cast<std::size_t>(v)], 0) << "cell unknown " << v;
      EXPECT_LT(plan.block_of[static_cast<std::size_t>(v)], plan.n_blocks);
    }
  }
  EXPECT_EQ(static_cast<int>(plan.interface.size()), 2);

  // The defining invariant: no pattern entry couples two different blocks.
  for (int r = 0; r < p.n; ++r) {
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      const int br = plan.block_of[static_cast<std::size_t>(r)];
      const int bc = plan.block_of[static_cast<std::size_t>(p.col_idx[static_cast<std::size_t>(s)])];
      if (br >= 0 && bc >= 0) {
        EXPECT_EQ(br, bc) << "entry (" << r << ")";
      }
    }
  }
}

TEST(Partition, DeclinesOnChains) {
  // Max degree 2: nothing hub-like to peel, so the decline is immediate
  // instead of the separator loop nibbling the chain apart.
  const Pattern p = chain_pattern(200);
  const PartitionPlan plan = partition_pattern(p.n, p.row_ptr, p.col_idx);
  EXPECT_FALSE(plan.ok);
  EXPECT_STREQ(plan.decline_reason, "no hub-like separator");
}

TEST(Partition, DeclinesOnSmallSystems) {
  const Pattern p = hub_pattern(4, 4, 2);  // n = 18 < min_unknowns
  const PartitionPlan plan = partition_pattern(p.n, p.row_ptr, p.col_idx);
  EXPECT_FALSE(plan.ok);
  EXPECT_STREQ(plan.decline_reason, "system too small");
}

TEST(Partition, DeclinesWhenSeedsBlowTheInterfaceBudget) {
  const Pattern p = chain_pattern(80);  // auto budget = max(32, 10) = 32
  std::vector<int> seeds;
  for (int v = 0; v < 40; ++v) seeds.push_back(v);
  const PartitionPlan plan =
      partition_pattern(p.n, p.row_ptr, p.col_idx, PartitionOptions{}, seeds);
  EXPECT_FALSE(plan.ok);
  EXPECT_STREQ(plan.decline_reason, "interface budget exceeded");
}

TEST(Partition, AbsorptionPullsStrandedUnknownsIntoInterface) {
  // Append one extra unknown coupled ONLY to the hubs (the shape of a
  // V-source branch current on a shared net): once the hubs are seeded
  // into the interface it has no in-block neighbor left and must be
  // absorbed — a one-vertex block around it would be structurally singular.
  Pattern p = hub_pattern(8, 8, 2);
  const int hub0 = 8 * 8;
  const int extra = p.n;
  p.n += 1;
  p.col_idx.push_back(hub0);      // coupling to hub 0
  p.col_idx.push_back(extra);     // diagonal
  p.row_ptr.push_back(static_cast<int>(p.col_idx.size()));

  const PartitionPlan plan = partition_pattern(
      p.n, p.row_ptr, p.col_idx, PartitionOptions{}, {hub0, hub0 + 1});
  ASSERT_TRUE(plan.ok) << plan.decline_reason;
  EXPECT_EQ(plan.block_of[static_cast<std::size_t>(extra)], -1);
  EXPECT_EQ(static_cast<int>(plan.interface.size()), 3);
}

TEST(Partition, PlanIsDeterministic) {
  const Pattern p = hub_pattern(12, 7, 3);
  const PartitionPlan a = partition_pattern(p.n, p.row_ptr, p.col_idx);
  const PartitionPlan b = partition_pattern(p.n, p.row_ptr, p.col_idx);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.n_blocks, b.n_blocks);
  EXPECT_EQ(a.block_of, b.block_of);
  EXPECT_EQ(a.interface, b.interface);
}

TEST(Partition, SolveMatchesMonolithicSparseLu) {
  std::mt19937 rng(101);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = hub_pattern(10, 9, 3);
  const auto vals = make_dominant(p, rng);
  const PartitionPlan plan = partition_pattern(p.n, p.row_ptr, p.col_idx);
  ASSERT_TRUE(plan.ok) << plan.decline_reason;

  SparseLu<double> mono;
  mono.analyze(p.n, p.row_ptr, p.col_idx);
  mono.factor(vals);

  DPartitionedLu part;
  part.analyze(plan, p.n, p.row_ptr, p.col_idx);
  EXPECT_GE(part.n_blocks(), 4);
  EXPECT_EQ(part.interface_size(), 3);
  part.factor(vals);
  EXPECT_GT(part.factor_nonzeros(), 0u);

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> b(static_cast<std::size_t>(p.n));
    for (auto& v : b) v = ud(rng);
    std::vector<double> x_mono = b, x_part = b;
    mono.solve(x_mono);
    part.solve(x_part);
    for (int i = 0; i < p.n; ++i) {
      EXPECT_NEAR(x_part[static_cast<std::size_t>(i)], x_mono[static_cast<std::size_t>(i)],
                  1e-12 * (1.0 + std::abs(x_mono[static_cast<std::size_t>(i)])))
          << "trial " << trial << " unknown " << i;
    }
  }
}

TEST(Partition, ComplexSolveMatchesMonolithic) {
  std::mt19937 rng(55);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = hub_pattern(9, 8, 2);
  std::vector<std::complex<double>> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = {ud(rng), ud(rng)};
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] += off + 1.0;
  }
  const PartitionPlan plan = partition_pattern(p.n, p.row_ptr, p.col_idx);
  ASSERT_TRUE(plan.ok) << plan.decline_reason;

  ZSparseLu mono;
  mono.analyze(p.n, p.row_ptr, p.col_idx);
  mono.factor(vals);
  ZPartitionedLu part;
  part.analyze(plan, p.n, p.row_ptr, p.col_idx);
  part.factor(vals);

  std::vector<std::complex<double>> b(static_cast<std::size_t>(p.n));
  for (auto& v : b) v = {ud(rng), ud(rng)};
  auto x_mono = b;
  auto x_part = b;
  mono.solve(x_mono);
  part.solve(x_part);
  for (int i = 0; i < p.n; ++i) {
    EXPECT_NEAR(std::abs(x_part[static_cast<std::size_t>(i)] -
                         x_mono[static_cast<std::size_t>(i)]),
                0.0, 1e-12 * (1.0 + std::abs(x_mono[static_cast<std::size_t>(i)])))
        << "unknown " << i;
  }
}

TEST(Partition, BitIdenticalAcrossThreadCounts) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = hub_pattern(12, 8, 3);
  const auto vals = make_dominant(p, rng);
  const PartitionPlan plan = partition_pattern(p.n, p.row_ptr, p.col_idx);
  ASSERT_TRUE(plan.ok) << plan.decline_reason;

  std::vector<double> b0(static_cast<std::size_t>(p.n));
  for (auto& v : b0) v = ud(rng);

  DPartitionedLu serial;
  serial.analyze(plan, p.n, p.row_ptr, p.col_idx);
  serial.factor(vals);
  std::vector<double> ref = b0;
  serial.solve(ref);

  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    DPartitionedLu par;
    par.analyze(plan, p.n, p.row_ptr, p.col_idx);
    par.set_parallel(&pool, threads);
    par.factor(vals);
    std::vector<double> b = b0;
    par.solve(b);
    EXPECT_EQ(ref, b) << "threads=" << threads;
  }
}

TEST(Partition, RefactorizationKeepsBlockPivotOrders) {
  // Newton-like drift: the blocks' SparseLu instances replay their pivot
  // orders (symbolic count stays 1) and parity with the monolithic path
  // holds through every refactorization.
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = hub_pattern(10, 8, 2);
  auto vals = make_dominant(p, rng);
  const PartitionPlan plan = partition_pattern(p.n, p.row_ptr, p.col_idx);
  ASSERT_TRUE(plan.ok) << plan.decline_reason;

  SparseLu<double> mono;
  mono.analyze(p.n, p.row_ptr, p.col_idx);
  DPartitionedLu part;
  part.analyze(plan, p.n, p.row_ptr, p.col_idx);

  for (int iter = 0; iter < 8; ++iter) {
    mono.factor(vals);
    part.factor(vals);
    std::vector<double> b(static_cast<std::size_t>(p.n));
    for (auto& v : b) v = ud(rng);
    std::vector<double> x_mono = b, x_part = b;
    mono.solve(x_mono);
    part.solve(x_part);
    for (int i = 0; i < p.n; ++i) {
      EXPECT_NEAR(x_part[static_cast<std::size_t>(i)], x_mono[static_cast<std::size_t>(i)],
                  1e-12 * (1.0 + std::abs(x_mono[static_cast<std::size_t>(i)])))
          << "iteration " << iter << " unknown " << i;
    }
    for (auto& v : vals) v *= 1.0 + 0.004 * ud(rng);
  }
  EXPECT_EQ(part.symbolic_factorizations(), 1);
}

TEST(Partition, SingularBlockThrows) {
  // Zero out one cell's in-block values: that block's LU must report the
  // singularity (through the ThreadPool when parallel). NewtonSolver reacts
  // by falling back to the monolithic factorization permanently.
  std::mt19937 rng(3);
  const Pattern p = hub_pattern(8, 8, 2);
  auto vals = make_dominant(p, rng);
  const PartitionPlan plan = partition_pattern(p.n, p.row_ptr, p.col_idx);
  ASSERT_TRUE(plan.ok) << plan.decline_reason;

  for (int s = p.row_ptr[0]; s < p.row_ptr[8]; ++s) {
    if (p.col_idx[static_cast<std::size_t>(s)] < 8)  // cell 0's in-block entries
      vals[static_cast<std::size_t>(s)] = 0.0;
  }

  DPartitionedLu serial;
  serial.analyze(plan, p.n, p.row_ptr, p.col_idx);
  EXPECT_THROW(serial.factor(vals), SingularMatrixError);
  EXPECT_FALSE(serial.factored());

  ThreadPool pool(4);
  DPartitionedLu par;
  par.analyze(plan, p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 4);
  EXPECT_THROW(par.factor(vals), SingularMatrixError);
  EXPECT_FALSE(par.factored());
}

}  // namespace
}  // namespace usys
