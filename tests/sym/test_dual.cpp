// Forward-mode AD duals: arithmetic, chain rule, seeding — cross-checked
// against analytic derivatives (these gradients become MNA Jacobians in the
// HDL interpreter, so exactness matters).
#include <gtest/gtest.h>

#include <cmath>

#include "sym/dual.hpp"

namespace usys::sym {
namespace {

TEST(Dual, SeedAndValue) {
  const Dual x = Dual::seed(3.0, 0, 2);
  const Dual y = Dual::seed(4.0, 1, 2);
  EXPECT_DOUBLE_EQ(x.value(), 3.0);
  EXPECT_DOUBLE_EQ(x.grad(0), 1.0);
  EXPECT_DOUBLE_EQ(x.grad(1), 0.0);
  EXPECT_DOUBLE_EQ(y.grad(1), 1.0);
}

TEST(Dual, SumAndProduct) {
  const Dual x = Dual::seed(3.0, 0, 2);
  const Dual y = Dual::seed(4.0, 1, 2);
  const Dual f = x * y + x;
  EXPECT_DOUBLE_EQ(f.value(), 15.0);
  EXPECT_DOUBLE_EQ(f.grad(0), 5.0);  // y + 1
  EXPECT_DOUBLE_EQ(f.grad(1), 3.0);  // x
}

TEST(Dual, Quotient) {
  const Dual x = Dual::seed(1.0, 0, 2);
  const Dual y = Dual::seed(2.0, 1, 2);
  const Dual f = x / y;
  EXPECT_DOUBLE_EQ(f.value(), 0.5);
  EXPECT_DOUBLE_EQ(f.grad(0), 0.5);    // 1/y
  EXPECT_DOUBLE_EQ(f.grad(1), -0.25);  // -x/y^2
}

TEST(Dual, ScalarInterop) {
  const Dual x = Dual::seed(2.0, 0, 1);
  const Dual f = 3.0 * x + 1.0 - x / 2.0;
  EXPECT_DOUBLE_EQ(f.value(), 6.0);
  EXPECT_DOUBLE_EQ(f.grad(0), 2.5);
  const Dual g = 1.0 / x;
  EXPECT_DOUBLE_EQ(g.grad(0), -0.25);
  const Dual h = 5.0 - x;
  EXPECT_DOUBLE_EQ(h.grad(0), -1.0);
}

TEST(Dual, Transcendentals) {
  const Dual x = Dual::seed(0.6, 0, 1);
  EXPECT_NEAR(sin(x).grad(0), std::cos(0.6), 1e-15);
  EXPECT_NEAR(cos(x).grad(0), -std::sin(0.6), 1e-15);
  EXPECT_NEAR(exp(x).grad(0), std::exp(0.6), 1e-15);
  EXPECT_NEAR(log(x).grad(0), 1.0 / 0.6, 1e-15);
  EXPECT_NEAR(sqrt(x).grad(0), 0.5 / std::sqrt(0.6), 1e-15);
  const double c = std::cos(0.6);
  EXPECT_NEAR(tan(x).grad(0), 1.0 / (c * c), 1e-12);
}

TEST(Dual, AbsSign) {
  EXPECT_DOUBLE_EQ(abs(Dual::seed(-2.0, 0, 1)).grad(0), -1.0);
  EXPECT_DOUBLE_EQ(abs(Dual::seed(2.0, 0, 1)).grad(0), 1.0);
}

TEST(Dual, PowConstExponent) {
  const Dual x = Dual::seed(2.0, 0, 1);
  const Dual f = pow(x, Dual(3.0, 1));
  EXPECT_DOUBLE_EQ(f.value(), 8.0);
  EXPECT_DOUBLE_EQ(f.grad(0), 12.0);
}

TEST(Dual, TransducerForceGradient) {
  // F_absorbed = e*A*V^2 / (2 (d+x)^2): the exact Jacobian entries the HDL
  // interpreter must produce for Listing 1's force line.
  const double e = 8.8542e-12;
  const double a = 1e-4;
  const double d = 1.5e-4;
  const Dual v = Dual::seed(10.0, 0, 2);
  const Dual x = Dual::seed(1e-5, 1, 2);
  const Dual gap = x + d;
  const Dual f = e * a * v * v / (2.0 * gap * gap);
  const double gap_v = d + 1e-5;
  EXPECT_NEAR(f.value(), e * a * 100.0 / (2.0 * gap_v * gap_v), 1e-20);
  EXPECT_NEAR(f.grad(0), e * a * 2.0 * 10.0 / (2.0 * gap_v * gap_v), 1e-18);
  EXPECT_NEAR(f.grad(1), -e * a * 100.0 / (gap_v * gap_v * gap_v), 1e-14);
}

TEST(Dual, MixedWidthsWiden) {
  const Dual narrow(2.0, 0);  // constant, no gradient
  const Dual x = Dual::seed(3.0, 1, 2);
  const Dual f = narrow * x + narrow;
  EXPECT_DOUBLE_EQ(f.value(), 8.0);
  EXPECT_DOUBLE_EQ(f.grad(1), 2.0);
  EXPECT_DOUBLE_EQ(f.grad(0), 0.0);
}

TEST(Dual, NegationAndCompound) {
  Dual x = Dual::seed(1.5, 0, 1);
  Dual f = -x;
  EXPECT_DOUBLE_EQ(f.grad(0), -1.0);
  f += x * x;
  EXPECT_DOUBLE_EQ(f.value(), 0.75);
  EXPECT_DOUBLE_EQ(f.grad(0), 2.0);
  f -= x;
  EXPECT_DOUBLE_EQ(f.grad(0), 1.0);
}

}  // namespace
}  // namespace usys::sym
