// Analyses: .op (DC), .tran (adaptive transient), .ac (small-signal sweep).
//
// These mirror the SPICE analysis domains the paper relies on ("FE and SPICE
// simulators present analogies concerning the analysis types they can
// perform: static-dc, harmonic-ac, transient-transient").
//
// The free functions below are DEPRECATED compatibility wrappers over the
// usys::api facade (api/api.hpp); new code calls api::operating_point /
// api::transient / api::ac_sweep, or holds a spice::AnalysisEngine /
// api::Session for repeated runs on one circuit (sweeps, batches, the
// simulation server). The option/result structs here are NOT deprecated —
// they are the facade's vocabulary too.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "spice/solver.hpp"

namespace usys::spice {

// ---------------------------------------------------------------------------
// Operating point
// ---------------------------------------------------------------------------

struct OpResult {
  bool converged = false;
  DVector x;
  int newton_iterations = 0;
  bool used_sparse = false;
  int symbolic_factorizations = 0;  ///< see NewtonResult
  bool used_gmin_stepping = false;    ///< rescue ladder: gmin continuation won
  bool used_source_stepping = false;  ///< rescue ladder: source ramp won
  /// Structured failure when converged is false; ok() otherwise.
  FailureInfo failure;

  /// Effort at a node id (ground reads 0).
  double at(int node) const { return node < 0 ? 0.0 : x.at(static_cast<std::size_t>(node)); }
};

/// Deprecated: call usys::api::operating_point (api/api.hpp), or hold a
/// spice::AnalysisEngine / api::Session for repeated runs. This wrapper
/// forwards to the facade and will be removed once out-of-tree callers
/// migrate (docs/architecture.md has the mapping).
[[deprecated("use usys::api::operating_point (api/api.hpp)")]]
OpResult operating_point(Circuit& circuit, const DcOptions& opts = {});

// ---------------------------------------------------------------------------
// Transient
// ---------------------------------------------------------------------------

struct TranOptions {
  double tstop = 1e-3;
  double dt_init = 0.0;     ///< 0 = tstop/1000
  double dt_min = 0.0;      ///< 0 = tstop*1e-12
  double dt_max = 0.0;      ///< 0 = tstop/50
  IntegMethod method = IntegMethod::trapezoidal;
  bool adaptive = true;     ///< LTE-based step control; false = fixed dt_init
  double lte_reltol = 1e-4;
  /// Hard ceiling on attempted steps (accepted + rejected). Hitting it ends
  /// the run with FailureKind::max_steps_exceeded and the points computed so
  /// far — a structured verdict, not silent truncation. <= 0 disables.
  long max_steps = 20'000'000;
  /// Fail the run with FailureKind::assert_violation as soon as an accepted
  /// step leaves any device with a fired HDL ASSERT site. Default off: the
  /// historical behavior (warn and keep integrating) is often what a
  /// survivability study wants; batch drivers turn this on to get a
  /// machine-readable verdict instead.
  bool fail_on_assert = false;
  /// newton.timeout_ms / newton.cancel budget the WHOLE transient including
  /// the initial operating point (the dc options' own budget fields are
  /// ignored inside run_tran).
  NewtonOptions newton{.max_iters = 50, .reltol = 1e-6, .gmin = 1e-12, .damping_limit = 0.0};
  DcOptions dc;             ///< options for the initial operating point
};

struct TranResult {
  bool ok = false;
  /// Human-readable failure summary; always failure.to_string() when the
  /// run failed (kept as a string for existing callers and logs).
  std::string error;
  /// Structured failure when ok is false: step_underflow,
  /// max_steps_exceeded, timeout, cancelled, assert_violation, or the
  /// initial operating point's failure. failure.time is the transient time
  /// reached. ok() when the run succeeded.
  FailureInfo failure;
  std::vector<double> time;
  std::vector<DVector> x;          ///< accepted solutions, one per time point
  int total_newton_iters = 0;
  int rejected_steps = 0;
  bool used_gmin_stepping = false;    ///< initial OP needed the gmin ladder
  bool used_source_stepping = false;  ///< initial OP needed the source ramp
  bool used_sparse = false;
  /// Full (pivot-searching) sparse factorizations of the transient's own
  /// Newton iterations across ALL timesteps (the initial operating point
  /// counts separately) — 1 in the steady state, since the pattern (and
  /// normally the pivot order) is fixed for the whole run.
  int symbolic_factorizations = 0;

  // Accessor contract (all three): a negative `unknown` is the ground
  // reference and reads 0.0; an `unknown` at or beyond the circuit's
  // unknown count throws std::out_of_range (as does an out-of-range point
  // index k). These are hard guarantees, not incidental clamping.

  /// Time series of one unknown (node effort or branch flow), one value per
  /// accepted point.
  std::vector<double> signal(int unknown) const;
  /// Value of an unknown at the k-th accepted point.
  double at(std::size_t k, int unknown) const;
  /// Linear interpolation of an unknown at arbitrary time t. Out-of-range
  /// times clamp to the nearest accepted point: t at or before the first
  /// point returns the first value, t at or after the last returns the last
  /// value. With no accepted points the result is 0.0; a NaN t returns NaN.
  double sample(double t, int unknown) const;
};

/// Deprecated: call usys::api::transient (api/api.hpp); see operating_point.
[[deprecated("use usys::api::transient (api/api.hpp)")]]
TranResult transient(Circuit& circuit, const TranOptions& opts);

// ---------------------------------------------------------------------------
// AC (small-signal) sweep
// ---------------------------------------------------------------------------

enum class SweepKind { linear, decade };

struct AcOptions {
  SweepKind sweep = SweepKind::decade;
  double f_start = 1.0;
  double f_stop = 1e6;
  int points = 100;        ///< total (linear) or per decade (decade)
  DcOptions dc;
};

struct AcResult {
  bool ok = false;
  /// Human-readable failure summary (failure.to_string() on failure).
  std::string error;
  /// Structured failure when ok is false; failure.time carries the
  /// frequency for per-point failures (singular system).
  FailureInfo failure;
  std::vector<double> freq;
  std::vector<ZVector> x;  ///< complex solution per frequency
  bool used_sparse = false;
  /// Full complex symbolic factorizations across the whole sweep; the
  /// frequency loop refactors numerically on the fixed pattern.
  int symbolic_factorizations = 0;

  std::complex<double> at(std::size_t k, int unknown) const {
    return unknown < 0 ? std::complex<double>(0.0) : x[k][static_cast<std::size_t>(unknown)];
  }
  /// |H| in dB at point k for unknown.
  double magnitude_db(std::size_t k, int unknown) const;
  /// Phase in degrees.
  double phase_deg(std::size_t k, int unknown) const;
};

/// Deprecated: call usys::api::ac_sweep (api/api.hpp); see operating_point.
[[deprecated("use usys::api::ac_sweep (api/api.hpp)")]]
AcResult ac_sweep(Circuit& circuit, const AcOptions& opts);

}  // namespace usys::spice
