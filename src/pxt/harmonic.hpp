// Harmonic macromodeling (paper, PXT section): "Harmonic FE analysis
// produces real and imaginary data of DOFs as discrete functions of
// frequencies, i.e. the frequency response (amplitude and phase). A
// polynomial filter is fitted to such a macro model, thus generating a data
// flow HDL-A model."
//
// Our equivalent: take a sampled complex frequency response (from an .ac
// sweep of a device-level model, or from the analytic resonator response),
// fit a rational transfer function H(s) = N(s)/D(s) by Levy's linearized
// least squares, and realize it as a circuit device (controller-canonical
// state form) usable in system-level simulation. The paper's proprietary
// z-domain data-flow constructs are not reproduced; the native device plays
// that role (documented substitution, see DESIGN.md).
#pragma once

#include <complex>
#include <vector>

#include "spice/circuit.hpp"

namespace usys::pxt {

/// A sampled frequency response point.
struct FreqSample {
  double freq_hz;
  std::complex<double> h;
};

/// Rational transfer function in s: H(s) = (b0 + b1 s + ...) / (1 + a1 s + ...).
struct RationalFit {
  std::vector<double> num;  ///< b0..bm
  std::vector<double> den;  ///< 1, a1..an (den[0] == 1)
  double scale = 1.0;       ///< s was normalized by this (rad/s) during the fit

  std::complex<double> eval(double freq_hz) const;
};

/// Levy least-squares fit of the given orders. `num_order`/`den_order` are
/// the polynomial degrees m and n. Frequencies are normalized internally
/// for conditioning. Throws std::invalid_argument on insufficient samples.
RationalFit levy_fit(const std::vector<FreqSample>& samples, int num_order, int den_order);

/// Max relative magnitude error of the fit over the samples.
double fit_error(const RationalFit& fit, const std::vector<FreqSample>& samples);

/// Analytic frequency response of the paper's mechanical resonator from
/// force to displacement: X/F = 1/(k - m w^2 + j w alpha).
std::vector<FreqSample> resonator_response(double mass, double stiffness, double damping,
                                           const std::vector<double>& freqs_hz);

/// Linear two-port realizing v_out = H(d/dt) v_in via controller-canonical
/// states (n internal branch unknowns + 1 output driver). Input is read
/// differentially (in_p - in_n); output drives out (vs. ground/out_n).
class TransferFunctionDevice final : public spice::Device {
 public:
  TransferFunctionDevice(std::string name, int in_p, int in_n, int out_p, int out_n,
                         RationalFit fit);

  void bind(spice::Binder& binder) override;
  void evaluate(spice::EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;

 private:
  int in_p_, in_n_, out_p_, out_n_;
  RationalFit fit_;
  std::vector<int> z_;   ///< state unknowns z_1..z_n
  int out_branch_ = -1;
};

}  // namespace usys::pxt
