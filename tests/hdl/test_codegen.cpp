// Native-codegen executor (HdlExecMode::codegen): parity against the
// bytecode VM and the AST oracle at 1e-12 across DC, transient, and AC on
// every regression model (stdlib + guarded), the min/max/limit gradient
// selection, and the ASSERT-on-commit path; plus the failure-path contract —
// compiler missing, compile error, or a corrupt cached object must fall back
// to the VM with a warning, never crash — and the content-hash disk cache
// semantics (reuse across processes, invalidation when the model changes).
//
// Tests that exercise real compilation skip cleanly when the host has no
// working compiler (codegen::compiler_available()), so the suite also runs
// on stripped-down images — the fallback tests run everywhere.
// GCC 12's libstdc++ trips a -Wrestrict false positive (GCC PR105651) on
// short string concatenations in some inlining contexts; no real aliasing
// exists. Scoped to GCC 12 so newer compilers keep the check.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "api/api.hpp"
#include "common/log.hpp"
#include "core/netlist_ext.hpp"
#include "hdl/codegen.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"
#include "spice/engine.hpp"

namespace usys::hdl {
namespace {

namespace fs = std::filesystem;
using spice::Circuit;

constexpr double kTol = 1e-12;

void expect_close(double a, double b, const std::string& what) {
  EXPECT_NEAR(a, b, kTol * std::max(1.0, std::abs(b))) << what;
}

bool have_compiler() { return codegen::compiler_available(); }

/// Scoped codegen environment: private cache dir, clean registry/stats, and
/// full restoration (default compiler + cache dir) on exit, so cache and
/// fallback tests never leak state into the parity tests.
class CodegenEnv {
 public:
  explicit CodegenEnv(const std::string& tag) {
    dir_ = fs::temp_directory_path() / ("usys_codegen_test_" + tag);
    std::error_code ec;
    fs::remove_all(dir_, ec);
    codegen::set_cache_dir(dir_.string());
    codegen::reset_for_test();
  }
  ~CodegenEnv() {
    codegen::set_compiler("");
    codegen::set_cache_dir("");
    codegen::reset_for_test();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const fs::path& dir() const { return dir_; }

 private:
  fs::path dir_;
};

const char* kGuardedModel = R"(
ENTITY eguard IS
  GENERIC (A, d, er : analog);
  PIN (a, b : electrical; c, f : mechanical1);
END ENTITY eguard;
ARCHITECTURE g OF eguard IS
  VARIABLE e0, x, gap : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, f].tv;
      x := integ(S);
      ASSERT d + x;
      gap := max(d + x, 0.05*d);
      [a, b].i %= e0*er*A/gap*ddt(V);
      [c, f].f %= e0*er*A*V*V/(2.0*gap*gap);
  END RELATION;
END ARCHITECTURE g;
)";

/// Every function and operator the executors support, in one model.
const char* kKitchenSink = R"(
ENTITY esink IS
  GENERIC (k : analog);
  PIN (a, b : electrical);
END ENTITY esink;
ARCHITECTURE x OF esink IS
  VARIABLE V, y, z : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      V := [a, b].v;
      y := sin(V) + cos(0.5*V) - tan(0.1*V) + exp(-V*V) + log(2.0 + V*V)
           + sqrt(1.0 + V*V) + abs(V - 0.25) + pow(1.0 + V*V, 1.5) + V^2.0;
      z := min(y, 4.0*V) + max(0.1*y, -2.0) + limit(y, -1.0, 3.0) - (-V)/(2.0 + V*V);
      [a, b].i %= 1e-3*z + 1e-12*ddt(V);
  END RELATION;
END ARCHITECTURE x;
)";

struct ModelCase {
  std::string label;
  std::string source;
  std::string entity;
  std::map<std::string, double> generics;
};

std::vector<ModelCase> regression_models() {
  return {
      {"listing1", stdlib::paper_listing1(), "eletran",
       {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}},
      {"transverse_energy", stdlib::transverse_energy(), "etransverse",
       {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}},
      {"parallel", stdlib::parallel_electrostatic(), "eparallel",
       {{"h", 1e-3}, {"l", 2e-3}, {"d", 1e-5}, {"er", 1.0}}},
      {"electromagnetic", stdlib::electromagnetic(), "emagnetic",
       {{"A", 1e-4}, {"d", 1e-3}, {"N", 100.0}}},
      {"electrodynamic", stdlib::electrodynamic(), "edynamic",
       {{"N", 100.0}, {"r", 5e-3}, {"B", 1.0}}},
      {"guarded", kGuardedModel, "eguard",
       {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}},
  };
}

/// Same Fig. 3-style drive harness as test_bytecode.cpp, one transducer into
/// a mass-spring-damper port, with an AC-capable source.
std::unique_ptr<Circuit> build_system(const ModelCase& mc, HdlExecMode mode,
                                      int* disp_out) {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int coil = ckt->add_node("coil", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  const int disp = ckt->add_node("disp", Nature::mechanical_translation);
  ckt->add<spice::VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 8.0}, {1.0, 8.0}}),
      Nature::electrical, 1.0);
  ckt->add<spice::Resistor>("R1", drive, coil, 50.0);
  ckt->add_device(instantiate("XT", mc.source, mc.entity, mc.generics,
                              {coil, Circuit::kGround, vel, Circuit::kGround}, mode));
  ckt->add<spice::Mass>("M1", vel, 1e-4);
  ckt->add<spice::Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt->add<spice::Damper>("D1", vel, Circuit::kGround, 40e-3);
  ckt->add<spice::StateIntegrator>("XD", disp, vel);
  if (disp_out != nullptr) *disp_out = disp;
  return ckt;
}

HdlDevice* hdl_of(Circuit& ckt, const char* name = "XT") {
  return dynamic_cast<HdlDevice*>(ckt.find_device(name));
}

// --- parity ------------------------------------------------------------------

TEST(CodegenParity, DcAgreesAcrossAllModels) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  for (const auto& mc : regression_models()) {
    auto ast = build_system(mc, HdlExecMode::ast, nullptr);
    auto cg = build_system(mc, HdlExecMode::codegen, nullptr);
    const auto ra = api::operating_point(*ast);
    const auto rc = api::operating_point(*cg);
    ASSERT_TRUE(ra.converged) << mc.label;
    ASSERT_TRUE(rc.converged) << mc.label;
    ASSERT_TRUE(hdl_of(*cg)->codegen_active()) << mc.label;
    ASSERT_EQ(ra.x.size(), rc.x.size()) << mc.label;
    for (std::size_t i = 0; i < ra.x.size(); ++i)
      expect_close(rc.x[i], ra.x[i], mc.label + " dc unknown " + std::to_string(i));
  }
}

TEST(CodegenParity, TransientAgreesAcrossAllModels) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  spice::TranOptions opts;
  opts.tstop = 20e-3;
  opts.dt_max = 1e-4;
  for (const auto& mc : regression_models()) {
    int disp_b = -1, disp_c = -1;
    auto vm = build_system(mc, HdlExecMode::bytecode, &disp_b);
    auto cg = build_system(mc, HdlExecMode::codegen, &disp_c);
    const auto rb = api::transient(*vm, opts);
    const auto rc = api::transient(*cg, opts);
    ASSERT_TRUE(rb.ok) << mc.label << ": " << rb.error;
    ASSERT_TRUE(rc.ok) << mc.label << ": " << rc.error;
    // The generated arithmetic mirrors the VM op for op (and the objects are
    // built with -ffp-contract=off), so even the adaptive step sequence
    // matches exactly.
    EXPECT_EQ(rb.time.size(), rc.time.size()) << mc.label;
    for (double t : {2e-3, 5e-3, 10e-3, 20e-3}) {
      expect_close(rc.sample(t, disp_c), rb.sample(t, disp_b),
                   mc.label + " tran disp at t=" + std::to_string(t));
    }
    ASSERT_EQ(rb.x.back().size(), rc.x.back().size()) << mc.label;
    for (std::size_t i = 0; i < rb.x.back().size(); ++i)
      expect_close(rc.x.back()[i], rb.x.back()[i],
                   mc.label + " tran final unknown " + std::to_string(i));
  }
}

TEST(CodegenParity, AcAgreesAcrossAllModels) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  spice::AcOptions opts;
  opts.f_start = 1.0;
  opts.f_stop = 1e4;
  opts.points = 5;  // per decade
  for (const auto& mc : regression_models()) {
    auto ast = build_system(mc, HdlExecMode::ast, nullptr);
    auto cg = build_system(mc, HdlExecMode::codegen, nullptr);
    const auto ra = api::ac_sweep(*ast, opts);
    const auto rc = api::ac_sweep(*cg, opts);
    ASSERT_TRUE(ra.ok) << mc.label << ": " << ra.error;
    ASSERT_TRUE(rc.ok) << mc.label << ": " << rc.error;
    ASSERT_EQ(ra.freq.size(), rc.freq.size()) << mc.label;
    for (std::size_t k = 0; k < ra.freq.size(); ++k) {
      for (std::size_t i = 0; i < ra.x[k].size(); ++i) {
        expect_close(rc.x[k][i].real(), ra.x[k][i].real(),
                     mc.label + " ac re, f=" + std::to_string(ra.freq[k]));
        expect_close(rc.x[k][i].imag(), ra.x[k][i].imag(),
                     mc.label + " ac im, f=" + std::to_string(ra.freq[k]));
      }
    }
  }
}

/// Stamp-level parity at a fixed iterate across all three executors: f, Jf,
/// and the jq extraction entry for entry (dense oracle path).
TEST(CodegenParity, StampAndJqExtractionMatchEntrywise) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  for (const auto& mc : regression_models()) {
    auto ckt = build_system(mc, HdlExecMode::codegen, nullptr);
    ckt->bind_all();
    auto* dev = hdl_of(*ckt);
    ASSERT_NE(dev, nullptr) << mc.label;
    ASSERT_TRUE(dev->codegen_active()) << mc.label;
    const std::size_t n = static_cast<std::size_t>(ckt->unknown_count());
    DVector x(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) x[i] = 0.3 + 0.1 * static_cast<double>(i);

    auto stamp_with = [&](HdlExecMode mode, DVector& f, DMatrix& jf, DMatrix& jq) {
      dev->set_exec_mode(mode);
      f.assign(n, 0.0);
      DVector q(n, 0.0);
      jf = DMatrix(n, n);
      jq = DMatrix(n, n);
      spice::EvalCtx ctx;
      ctx.mode = spice::AnalysisMode::dc;
      ctx.x = &x;
      ctx.f = &f;
      ctx.q = &q;
      ctx.jf = &jf;
      ctx.jq = &jq;
      dev->evaluate(ctx);
    };
    DVector fa, fc;
    DMatrix jfa, jfc, jqa, jqc;
    stamp_with(HdlExecMode::ast, fa, jfa, jqa);
    stamp_with(HdlExecMode::codegen, fc, jfc, jqc);
    for (std::size_t r = 0; r < n; ++r) {
      expect_close(fc[r], fa[r], mc.label + " f row " + std::to_string(r));
      for (std::size_t c = 0; c < n; ++c) {
        expect_close(jfc(r, c), jfa(r, c), mc.label + " jf " + std::to_string(r) +
                                               "," + std::to_string(c));
        expect_close(jqc(r, c), jqa(r, c), mc.label + " jq " + std::to_string(r) +
                                               "," + std::to_string(c));
      }
    }
  }
}

/// min/max/limit gradients follow the active branch in the generated code
/// exactly as in the VM/AST (no blending, switches with the iterate).
TEST(CodegenParity, MinMaxLimitGradientFollowsActiveBranch) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  const char* src = R"(
ENTITY epw IS
  GENERIC (k : analog);
  PIN (a, b : electrical);
END ENTITY epw;
ARCHITECTURE x OF epw IS
  VARIABLE V, y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      V := [a, b].v;
      y := min(2.0*V, 3.0) + max(0.5*V, -1.0) + limit(k*V, -4.0, 4.0);
  [a, b].i %= y;
  END RELATION;
END ARCHITECTURE x;
)";
  Circuit ckt;
  const int node = ckt.add_node("n", Nature::electrical);
  ckt.add_device(instantiate("XP", src, "epw", {{"k", 3.0}},
                             {node, Circuit::kGround}, HdlExecMode::codegen));
  ckt.bind_all();
  auto* dev = hdl_of(ckt, "XP");
  ASSERT_TRUE(dev->codegen_active());
  const std::size_t n = static_cast<std::size_t>(ckt.unknown_count());
  auto conductance_at = [&](double v) {
    DVector x(n, 0.0), f(n, 0.0), q(n, 0.0);
    DMatrix jf(n, n), jq(n, n);
    x[0] = v;
    spice::EvalCtx ctx;
    ctx.mode = spice::AnalysisMode::dc;
    ctx.x = &x;
    ctx.f = &f;
    ctx.q = &q;
    ctx.jf = &jf;
    ctx.jq = &jq;
    dev->evaluate(ctx);
    return jf(0, 0);
  };
  EXPECT_NEAR(conductance_at(0.5), 5.5, 1e-12);   // 2V + 0.5V + 3V active
  EXPECT_NEAR(conductance_at(2.0), 0.5, 1e-12);   // min/limit saturated
  EXPECT_NEAR(conductance_at(-3.0), 2.0, 1e-12);  // max/limit saturated
}

TEST(CodegenParity, KitchenSinkStampMatches) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  for (double v : {-1.7, -0.25, 0.0, 0.4, 2.3}) {
    DVector f_ref;
    DMatrix jf_ref;
    bool have_ref = false;
    for (const HdlExecMode mode :
         {HdlExecMode::ast, HdlExecMode::bytecode, HdlExecMode::codegen}) {
      Circuit ckt;
      const int node = ckt.add_node("n", Nature::electrical);
      ckt.add_device(instantiate("XS", kKitchenSink, "esink", {{"k", 1.0}},
                                 {node, Circuit::kGround}, mode));
      ckt.bind_all();
      const std::size_t n = static_cast<std::size_t>(ckt.unknown_count());
      DVector x(n, v), f(n, 0.0), q(n, 0.0);
      DMatrix jf(n, n), jq(n, n);
      spice::EvalCtx ctx;
      ctx.mode = spice::AnalysisMode::transient;
      ctx.integ_c0 = 0.0;
      ctx.integ_c1 = 1e-5;
      ctx.x = &x;
      ctx.f = &f;
      ctx.q = &q;
      ctx.jf = &jf;
      ctx.jq = &jq;
      ckt.find_device("XS")->evaluate(ctx);
      ASSERT_TRUE(std::isfinite(f[0])) << "v=" << v;
      if (!have_ref) {
        f_ref = f;
        jf_ref = jf;
        have_ref = true;
      } else {
        expect_close(f[0], f_ref[0], "kitchen sink f at v=" + std::to_string(v));
        expect_close(jf(0, 0), jf_ref(0, 0),
                     "kitchen sink jf at v=" + std::to_string(v));
      }
    }
  }
}

/// ASSERT fires on committed solutions only, warns once per site, and the
/// collapse trajectory matches the VM's.
TEST(CodegenParity, AssertOnCommitFires) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  const char* collapse = R"(
ENTITY ecollapse IS
  GENERIC (A, d, er : analog);
  PIN (a, b : electrical; c, f : mechanical1);
END ENTITY ecollapse;
ARCHITECTURE g OF ecollapse IS
  VARIABLE e0, x, gap : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, f].tv;
      x := integ(S);
      ASSERT 0.2*d + x;
      gap := max(d + x, 0.05*d);
      [a, b].i %= e0*er*A/gap*ddt(V);
      [c, f].f %= e0*er*A*V*V/(2.0*gap*gap);
  END RELATION;
END ARCHITECTURE g;
)";
  spice::TranOptions opts;
  opts.tstop = 30e-3;
  std::vector<double> finals;
  for (const HdlExecMode mode : {HdlExecMode::bytecode, HdlExecMode::codegen}) {
    Circuit ckt;
    const int drive = ckt.add_node("drive", Nature::electrical);
    const int vel = ckt.add_node("vel", Nature::mechanical_translation);
    const int disp = ckt.add_node("disp", Nature::mechanical_translation);
    ckt.add<spice::VSource>(
        "V1", drive, Circuit::kGround,
        std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0}, {1e-3, 60.0}, {1.0, 60.0}}));
    ckt.add_device(instantiate("XT", collapse, "ecollapse",
                               {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                               {drive, Circuit::kGround, vel, Circuit::kGround},
                               mode));
    ckt.add<spice::Mass>("M1", vel, 1e-4);
    ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 0.5);  // soft: pull-in
    ckt.add<spice::Damper>("D1", vel, Circuit::kGround, 40e-3);
    ckt.add<spice::StateIntegrator>("XD", disp, vel);
    const auto res = api::transient(ckt, opts);
    ASSERT_TRUE(res.ok) << res.error;
    auto* dev = hdl_of(ckt);
    ASSERT_NE(dev, nullptr);
    EXPECT_EQ(dev->assert_violations(), 1) << "mode " << to_string(mode);
    finals.push_back(res.sample(30e-3, disp));
  }
  expect_close(finals[1], finals[0], "collapse displacement");
}

// --- sharing / cache ---------------------------------------------------------

/// The emitted source depends only on the model *shape*: instances on
/// different nodes (and with different generic values) share one translation
/// unit, so an array compiles exactly once.
TEST(CodegenCache, InstancesShareOneCompilation) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  CodegenEnv env("share");
  Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  const int b = ckt.add_node("b", Nature::electrical);
  const int va = ckt.add_node("va", Nature::mechanical_translation);
  const int vb = ckt.add_node("vb", Nature::mechanical_translation);
  ckt.add_device(instantiate("X1", stdlib::paper_listing1(), "eletran",
                             {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                             {a, Circuit::kGround, va, Circuit::kGround},
                             HdlExecMode::codegen));
  ckt.add_device(instantiate("X2", stdlib::paper_listing1(), "eletran",
                             {{"A", 2e-4}, {"d", 0.3e-3}, {"er", 2.0}},
                             {b, Circuit::kGround, vb, Circuit::kGround},
                             HdlExecMode::codegen));
  ckt.bind_all();
  EXPECT_TRUE(hdl_of(ckt, "X1")->codegen_active());
  EXPECT_TRUE(hdl_of(ckt, "X2")->codegen_active());
  const auto s = codegen::stats();
  EXPECT_EQ(s.compiles, 1);
  EXPECT_EQ(s.memory_hits, 1);
  EXPECT_EQ(s.failures, 0);
  // And both instances generated byte-identical source.
  EXPECT_EQ(codegen::generate_source(hdl_of(ckt, "X1")->program()),
            codegen::generate_source(hdl_of(ckt, "X2")->program()));
}

/// A second process (simulated by resetting the in-memory registry) loads
/// the object from disk instead of recompiling.
TEST(CodegenCache, DiskCacheReusedWithoutRecompile) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  CodegenEnv env("disk");
  auto build_once = [] {
    Circuit ckt;
    const int n = ckt.add_node("n", Nature::electrical);
    ckt.add_device(instantiate("XS", kKitchenSink, "esink", {{"k", 1.0}},
                               {n, Circuit::kGround}, HdlExecMode::codegen));
    ckt.bind_all();
    EXPECT_TRUE(hdl_of(ckt, "XS")->codegen_active());
  };
  build_once();
  EXPECT_EQ(codegen::stats().compiles, 1);
  codegen::reset_for_test();  // forget the in-process registry, keep the disk
  build_once();
  const auto s = codegen::stats();
  EXPECT_EQ(s.compiles, 0);
  EXPECT_EQ(s.disk_hits, 1);
}

/// A corrupt cached object (interrupted writer, toolchain change) must not
/// crash or silently fall back: it is detected at load, removed, and rebuilt.
TEST(CodegenCache, CorruptObjectIsRebuilt) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  CodegenEnv env("corrupt");
  Circuit ckt;
  const int n = ckt.add_node("n", Nature::electrical);
  auto dev = instantiate("XS", kKitchenSink, "esink", {{"k", 1.0}},
                         {n, Circuit::kGround}, HdlExecMode::codegen);
  // Plant garbage where the cache entry will live (the filename is the
  // structural shape hash, derived here from a scratch-bound twin).
  const std::uint64_t hash = [&] {
    Circuit tmp;
    const int tn = tmp.add_node("n", Nature::electrical);
    auto d2 = instantiate("XT", kKitchenSink, "esink", {{"k", 1.0}},
                          {tn, Circuit::kGround}, HdlExecMode::bytecode);
    tmp.add_device(std::move(d2));
    tmp.bind_all();
    return codegen::shape_hash(hdl_of(tmp, "XT")->program());
  }();
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(hash));
  fs::create_directories(env.dir());
  std::ofstream(env.dir() / (std::string("usys_cg_") + hex + ".so"))
      << "this is not a shared object";
  ckt.add_device(std::move(dev));
  ckt.bind_all();  // load fails -> recompile, not crash/fallback
  EXPECT_TRUE(hdl_of(ckt, "XS")->codegen_active());
  EXPECT_EQ(codegen::stats().compiles, 1);
  EXPECT_EQ(codegen::stats().failures, 0);
}

/// Changing the model source changes the content hash: the stale cached
/// object for the old source is never reused for the new one.
TEST(CodegenCache, SourceChangeInvalidates) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  CodegenEnv env("stale");
  auto build = [](const char* body_gain) {
    std::string src(R"(
ENTITY evar IS
  GENERIC (k : analog);
  PIN (a, b : electrical);
END ENTITY evar;
ARCHITECTURE x OF evar IS
  VARIABLE V : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      V := [a, b].v;
      [a, b].i %= )");
    src += body_gain;
    src += "*V;\n  END RELATION;\nEND ARCHITECTURE x;\n";
    auto ckt = std::make_unique<Circuit>();
    const int n = ckt->add_node("n", Nature::electrical);
    ckt->add_device(instantiate("XV", src, "evar", {{"k", 1.0}},
                                {n, Circuit::kGround}, HdlExecMode::codegen));
    ckt->bind_all();
    return ckt;
  };
  auto c1 = build("1e-3");
  EXPECT_EQ(codegen::stats().compiles, 1);
  auto c2 = build("2e-3");  // edited model -> new hash -> fresh compile
  EXPECT_EQ(codegen::stats().compiles, 2);
  EXPECT_TRUE(hdl_of(*c1, "XV")->codegen_active());
  EXPECT_TRUE(hdl_of(*c2, "XV")->codegen_active());
  // Both conductances must reflect their own source, not a stale object.
  auto g_of = [](Circuit& ckt) {
    const std::size_t n = static_cast<std::size_t>(ckt.unknown_count());
    DVector x(n, 0.5), f(n, 0.0), q(n, 0.0);
    DMatrix jf(n, n), jq(n, n);
    spice::EvalCtx ctx;
    ctx.mode = spice::AnalysisMode::transient;
    ctx.integ_c1 = 1e-5;
    ctx.x = &x;
    ctx.f = &f;
    ctx.q = &q;
    ctx.jf = &jf;
    ctx.jq = &jq;
    ckt.find_device("XV")->evaluate(ctx);
    return jf(0, 0);
  };
  EXPECT_NEAR(g_of(*c1), 1e-3, 1e-15);
  EXPECT_NEAR(g_of(*c2), 2e-3, 1e-15);
}

// --- failure paths -----------------------------------------------------------

/// No compiler on the host: codegen degrades to the bytecode VM with one
/// warning, and results are untouched.
TEST(CodegenFallback, MissingCompilerFallsBackToVm) {
  CodegenEnv env("nocc");
  codegen::set_compiler("/nonexistent/usys-no-such-compiler");
  EXPECT_FALSE(codegen::compiler_available());

  auto run_disp = [](HdlExecMode mode) {
    spice::TranOptions opts;
    opts.tstop = 5e-3;
    opts.dt_max = 1e-4;
    ModelCase mc{"listing1", stdlib::paper_listing1(), "eletran",
                 {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}};
    int disp = -1;
    auto ckt = build_system(mc, mode, &disp);
    const auto res = api::transient(*ckt, opts);
    EXPECT_TRUE(res.ok) << res.error;
    if (mode == HdlExecMode::codegen) {
      EXPECT_FALSE(hdl_of(*ckt)->codegen_active());  // fell back
    }
    return res.sample(5e-3, disp);
  };
  const double vm = run_disp(HdlExecMode::bytecode);
  const double cg = run_disp(HdlExecMode::codegen);
  EXPECT_EQ(codegen::stats().failures, 1);
  expect_close(cg, vm, "fallback transient displacement");
}

/// A compiler that accepts the probe but rejects the real translation unit
/// (e.g. broken headers) also degrades cleanly.
TEST(CodegenFallback, CompileErrorFallsBackToVm) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  CodegenEnv env("badcc");
  // Fake compiler: passes the trivial probe through the real one, fails on
  // everything else.
  const fs::path script = env.dir() / "flaky-cxx.sh";
  fs::create_directories(env.dir());
  {
    std::ofstream os(script);
    os << "#!/bin/sh\ncase \"$*\" in\n*usys_cg_probe*) exec c++ \"$@\" ;;\n"
          "*) echo 'synthetic compile error' >&2; exit 1 ;;\nesac\n";
  }
  fs::permissions(script, fs::perms::owner_all);
  codegen::set_compiler(script.string());
  EXPECT_TRUE(codegen::compiler_available());

  Circuit ckt;
  const int n = ckt.add_node("n", Nature::electrical);
  ckt.add_device(instantiate("XS", kKitchenSink, "esink", {{"k", 1.0}},
                             {n, Circuit::kGround}, HdlExecMode::codegen));
  ckt.bind_all();  // compile fails -> warning + VM fallback, not a throw
  EXPECT_FALSE(hdl_of(ckt, "XS")->codegen_active());
  EXPECT_EQ(codegen::stats().failures, 1);
  // The device still evaluates (via the VM).
  const auto op = api::operating_point(ckt);
  EXPECT_TRUE(op.converged);
}

/// Fixing the toolchain after a failure clears the per-shape memo: the next
/// bind compiles instead of staying on the VM forever.
TEST(CodegenFallback, FixedCompilerRetriesFailedShapes) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  CodegenEnv env("retry");
  codegen::set_compiler("/nonexistent/usys-no-such-compiler");
  auto bind_one = [] {
    auto ckt = std::make_unique<Circuit>();
    const int n = ckt->add_node("n", Nature::electrical);
    ckt->add_device(instantiate("XS", kKitchenSink, "esink", {{"k", 1.0}},
                                {n, Circuit::kGround}, HdlExecMode::codegen));
    ckt->bind_all();
    return ckt;
  };
  auto broken = bind_one();
  EXPECT_FALSE(hdl_of(*broken, "XS")->codegen_active());
  EXPECT_EQ(codegen::stats().failures, 1);
  codegen::set_compiler("");  // restore the real compiler
  auto fixed = bind_one();
  EXPECT_TRUE(hdl_of(*fixed, "XS")->codegen_active());
  EXPECT_EQ(codegen::stats().compiles, 1);
}

/// The per-shape warning fires once: an array of failing instances does not
/// spam one warning per element (and does not retry the compile each time).
TEST(CodegenFallback, FailureWarnsAndProbesOncePerShape) {
  CodegenEnv env("warn1");
  codegen::set_compiler("/nonexistent/usys-no-such-compiler");
  Circuit ckt;
  const int bus = ckt.add_node("bus", Nature::electrical);
  for (int i = 0; i < 8; ++i) {
    const int vel =
        ckt.add_node("v" + std::to_string(i), Nature::mechanical_translation);
    ckt.add_device(instantiate("X" + std::to_string(i), stdlib::paper_listing1(),
                               "eletran", {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                               {bus, Circuit::kGround, vel, Circuit::kGround},
                               HdlExecMode::codegen));
  }
  ckt.bind_all();
  EXPECT_EQ(codegen::stats().failures, 1);  // one warning for 8 instances
}

// --- concurrency (also in the TSan CI filter) --------------------------------

/// Concurrent acquire of the same shape from many threads: exactly one
/// compile, everyone gets the same entry points, results identical.
TEST(CodegenParallel, ConcurrentAcquireIsRaceFree) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  CodegenEnv env("par");
  constexpr int kThreads = 4;
  std::vector<double> disp(kThreads, 0.0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &disp] {
      ModelCase mc{"listing1", stdlib::paper_listing1(), "eletran",
                   {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}};
      int d = -1;
      auto ckt = build_system(mc, HdlExecMode::codegen, &d);
      spice::TranOptions opts;
      opts.tstop = 2e-3;
      opts.dt_max = 1e-4;
      const auto res = api::transient(*ckt, opts);
      disp[static_cast<std::size_t>(t)] = res.ok ? res.sample(2e-3, d) : 1e99;
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(codegen::stats().compiles, 1);
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(disp[static_cast<std::size_t>(t)], disp[0]) << "thread " << t;
}

// --- netlist / engine plumbing ----------------------------------------------

/// `.options hdl=` selects the executor for HDL cards; per-card `mode=`
/// overrides; values are validated at parse time.
TEST(CodegenNetlist, OptionsAndCardModeSelectExecutor) {
  auto parser = core::make_full_parser();
  const char* net = R"(* hdl exec mode plumbing
.options hdl=ast
V1 drive 0 2
XA drive 0 va 0 HDLTRANSV a=1e-4 d=2e-6 er=1
XB drive 0 vb 0 HDLTRANSV a=1e-4 d=2e-6 er=1 mode=bytecode
XM va MASS m=1e-9
XN vb MASS m=1e-9
.op
.end
)";
  auto parsed = parser.parse(net);
  auto* xa = dynamic_cast<HdlDevice*>(parsed.circuit->find_device("XA"));
  auto* xb = dynamic_cast<HdlDevice*>(parsed.circuit->find_device("XB"));
  ASSERT_NE(xa, nullptr);
  ASSERT_NE(xb, nullptr);
  EXPECT_EQ(xa->exec_mode(), HdlExecMode::ast);
  EXPECT_EQ(xb->exec_mode(), HdlExecMode::bytecode);

  // set_option (the usim --hdl-mode path) presets the default.
  auto parser2 = core::make_full_parser();
  parser2.set_option("hdl", "codegen");
  auto parsed2 = parser2.parse(
      "V1 d 0 1\nXA d 0 v 0 HDLTRANSV a=1e-4 d=2e-6 er=1\nXM v MASS m=1e-9\n.end\n");
  auto* xc = dynamic_cast<HdlDevice*>(parsed2.circuit->find_device("XA"));
  ASSERT_NE(xc, nullptr);
  EXPECT_EQ(xc->exec_mode(), HdlExecMode::codegen);

  // Bad values are parse errors, with a line number.
  EXPECT_THROW(parser.parse(".options hdl=fast\n"), spice::NetlistError);
  EXPECT_THROW(
      parser.parse("Xh a 0 v 0 HDLTRANSV a=1e-4 d=2e-6 er=1 mode=jit\n.end\n"),
      spice::NetlistError);
  EXPECT_THROW(parser.set_option("hdl", "fast"), spice::NetlistError);

  // Every unregistered parameter key keeps the strict numeric contract —
  // value typos are hard errors, never silent factory defaults.
  EXPECT_THROW(parser.parse("Xm v MASS m=1e--9\n.end\n"), spice::NetlistError);
  EXPECT_THROW(parser.parse("Xm v MASS m=1..5\n.end\n"), spice::NetlistError);
  EXPECT_THROW(
      parser.parse("Xt a 0 v 0 ETRANSV a=1e-8 d=2e-6 er=one\n.end\n"),
      spice::NetlistError);
}

/// A netlist-driven HDL device agrees with the hand-built harness across a
/// full engine run (the AnalysisEngine path usim takes).
TEST(CodegenNetlist, EngineRunMatchesAcrossModes) {
  if (!have_compiler()) GTEST_SKIP() << "no host compiler";
  auto run_mode = [](const char* mode) {
    auto parser = core::make_full_parser();
    parser.set_option("hdl", mode);
    std::string net(R"(* codegen netlist engine run
V1 drive 0 PULSE(0 8 0 1m 1m 20m)
R1 drive coil 50
XT coil 0 vel 0 HDLTRANSV a=1e-4 d=0.15e-3 er=1
XM vel MASS m=1e-4
XK vel 0 SPRING k=200
XB vel 0 DAMPER alpha=40e-3
.tran 1e-5 5e-3
.end
)");
    auto parsed = parser.parse(net);
    spice::AnalysisEngine engine(*parsed.circuit);
    auto card = parsed.analyses.at(0);
    const auto res = engine.run_tran(card.tran);
    EXPECT_TRUE(res.ok) << res.error;
    return res.x.back();
  };
  const auto vm = run_mode("bytecode");
  const auto cg = run_mode("codegen");
  ASSERT_EQ(vm.size(), cg.size());
  for (std::size_t i = 0; i < vm.size(); ++i)
    expect_close(cg[i], vm[i], "engine unknown " + std::to_string(i));
}

}  // namespace
}  // namespace usys::hdl
