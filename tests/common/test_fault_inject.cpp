// Fault-injection harness semantics (common/fault_inject.hpp). The arming
// table and should_fail() are plain functions compiled into every build, so
// everything here runs unconditionally; only the USYS_FAULT_POINT macro (and
// the production sites behind it) depends on the USYS_FAULT_INJECT build.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault_inject.hpp"

namespace usys::fault {
namespace {

class FaultInjectTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultInjectTest, DefaultArmFiresOnFirstHitOnly) {
  arm("t.first");
  EXPECT_TRUE(should_fail("t.first"));
  EXPECT_FALSE(should_fail("t.first"));
  EXPECT_EQ(hits("t.first"), 2);
  EXPECT_EQ(fired("t.first"), 1);
}

TEST_F(FaultInjectTest, NthCountWindow) {
  arm("t.win", 3, 2);  // fire on hits 3 and 4
  const std::vector<bool> expect = {false, false, true, true, false, false};
  for (const bool want : expect) EXPECT_EQ(should_fail("t.win"), want);
  EXPECT_EQ(hits("t.win"), 6);
  EXPECT_EQ(fired("t.win"), 2);
}

TEST_F(FaultInjectTest, NegativeCountMeansForever) {
  arm("t.forever", 2, -1);
  EXPECT_FALSE(should_fail("t.forever"));
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(should_fail("t.forever"));
  EXPECT_EQ(fired("t.forever"), 10);
}

TEST_F(FaultInjectTest, RearmReplacesTriggerAndResetsCounters) {
  arm("t.rearm", 1, -1);
  EXPECT_TRUE(should_fail("t.rearm"));
  arm("t.rearm", 2, 1);
  EXPECT_EQ(hits("t.rearm"), 0);
  EXPECT_FALSE(should_fail("t.rearm"));  // hit 1 of the new trigger
  EXPECT_TRUE(should_fail("t.rearm"));   // hit 2 fires
}

TEST_F(FaultInjectTest, UnarmedSitesNeverFireOrCount) {
  EXPECT_FALSE(should_fail("t.never"));
  EXPECT_EQ(hits("t.never"), 0);
  EXPECT_EQ(fired("t.never"), 0);
}

TEST_F(FaultInjectTest, DisarmStopsFiring) {
  arm("t.off", 1, -1);
  EXPECT_TRUE(should_fail("t.off"));
  disarm("t.off");
  EXPECT_FALSE(should_fail("t.off"));
  EXPECT_EQ(hits("t.off"), 0);  // counters dropped with the site
}

TEST_F(FaultInjectTest, ArmedSitesAreListedSorted) {
  arm("t.b");
  arm("t.a");
  arm_random("t.c", 0.5, 1);
  const std::vector<std::string> want = {"t.a", "t.b", "t.c"};
  EXPECT_EQ(armed_sites(), want);
  disarm_all();
  EXPECT_TRUE(armed_sites().empty());
}

TEST_F(FaultInjectTest, RandomModeIsDeterministicPerSeed) {
  arm_random("t.rand", 0.5, 42);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(should_fail("t.rand"));
  // Re-arming with the same seed replays the identical pattern.
  arm_random("t.rand", 0.5, 42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(should_fail("t.rand"), first[i]) << "hit " << i;
  // p = 0.5 over 100 hits: all-true or all-false would mean a broken hash.
  const long n_fired = fired("t.rand");
  EXPECT_GT(n_fired, 0);
  EXPECT_LT(n_fired, 100);
  // A different seed gives a different pattern somewhere in 100 hits.
  arm_random("t.rand", 0.5, 43);
  std::vector<bool> other;
  for (int i = 0; i < 100; ++i) other.push_back(should_fail("t.rand"));
  EXPECT_NE(first, other);
}

TEST_F(FaultInjectTest, RandomModeProbabilityExtremes) {
  arm_random("t.p0", 0.0, 7);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(should_fail("t.p0"));
  arm_random("t.p1", 1.0, 7);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(should_fail("t.p1"));
}

TEST_F(FaultInjectTest, SpecParsesCountAndRandomEntries) {
  std::string err;
  ASSERT_TRUE(arm_from_spec("t.e:2;t.f:1:3,t.g~0.25@7", &err)) << err;
  const std::vector<std::string> want = {"t.e", "t.f", "t.g"};
  EXPECT_EQ(armed_sites(), want);
  // t.e fires on hit 2 only.
  EXPECT_FALSE(should_fail("t.e"));
  EXPECT_TRUE(should_fail("t.e"));
  EXPECT_FALSE(should_fail("t.e"));
  // t.f fires on hits 1..3.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(should_fail("t.f"));
  EXPECT_FALSE(should_fail("t.f"));
}

TEST_F(FaultInjectTest, SpecForeverCount) {
  ASSERT_TRUE(arm_from_spec("t.h:1:-1"));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(should_fail("t.h"));
}

TEST_F(FaultInjectTest, MalformedSpecArmsNothing) {
  std::string err;
  // The first entry is fine; the malformed tail must reject the WHOLE spec.
  EXPECT_FALSE(arm_from_spec("t.good:1;t.bad:xyz", &err));
  EXPECT_FALSE(err.empty());
  EXPECT_TRUE(armed_sites().empty());

  EXPECT_FALSE(arm_from_spec("t.zero:0"));        // nth must be >= 1
  EXPECT_FALSE(arm_from_spec("t.cnt:1:0"));       // count must be non-zero
  EXPECT_FALSE(arm_from_spec(":3"));              // empty site name
  EXPECT_FALSE(arm_from_spec("t.p~1.5@1"));       // probability out of range
  EXPECT_FALSE(arm_from_spec("t.p~0.5"));         // random mode needs @seed
  EXPECT_FALSE(arm_from_spec("t.p~0.5@-3"));      // seed must be >= 0
  EXPECT_TRUE(armed_sites().empty());
}

TEST_F(FaultInjectTest, SpecSkipsEmptyEntries) {
  ASSERT_TRUE(arm_from_spec(";t.solo:1;;"));
  const std::vector<std::string> want = {"t.solo"};
  EXPECT_EQ(armed_sites(), want);
}

TEST_F(FaultInjectTest, MacroMatchesBuildConfiguration) {
  arm("t.macro", 1, -1);
  if (fault::compiled_in()) {
    // Inject builds: the macro consults the armed table.
    EXPECT_TRUE(USYS_FAULT_POINT("t.macro"));
    EXPECT_EQ(hits("t.macro"), 1);
  } else {
    // Normal builds: the macro is the constant false — arming is inert and
    // production sites cost nothing.
    EXPECT_FALSE(USYS_FAULT_POINT("t.macro"));
    EXPECT_EQ(hits("t.macro"), 0);
  }
}

}  // namespace
}  // namespace usys::fault
