// Level-scheduled parallel triangular solves (SparseLu::set_parallel):
// bit-identity with the serial path for any thread count — the solve-side
// twin of the ParallelAssembly determinism tests — plus the level-schedule
// invariants the parallel path relies on. The suite name keeps these under
// the TSan CI filter (ThreadPool.*:ParallelAssembly.*:ParallelSolve.*:...).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "common/sparse_lu.hpp"
#include "common/thread_pool.hpp"

namespace usys {
namespace {

struct Pattern {
  int n = 0;
  std::vector<int> row_ptr, col_idx;
};

/// Band of half-width 2 plus ~9 % random off-band entries (the same family
/// test_sparse_lu.cpp checks against the dense oracle).
Pattern random_pattern(int n, std::mt19937& rng) {
  Pattern p;
  p.n = n;
  p.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (std::abs(r - c) <= 2 || rng() % 11 == 0) p.col_idx.push_back(c);
    }
    p.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(p.col_idx.size());
  }
  return p;
}

std::vector<double> make_dominant(const Pattern& p, std::mt19937& rng) {
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  std::vector<double> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = ud(rng);
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] = off + 1.0;
  }
  return vals;
}

TEST(ParallelSolve, BitIdenticalToSerialAnyThreadCount) {
  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  for (int n : {15, 120, 400}) {
    const Pattern p = random_pattern(n, rng);
    const auto vals = make_dominant(p, rng);

    SparseLu<double> serial;
    serial.analyze(p.n, p.row_ptr, p.col_idx);
    serial.factor(vals);

    std::vector<double> b0(static_cast<std::size_t>(n));
    for (auto& v : b0) v = ud(rng);
    std::vector<double> ref = b0;
    serial.solve(ref);

    for (int threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      SparseLu<double> par;
      par.analyze(p.n, p.row_ptr, p.col_idx);
      // min_level_rows = 1 forces the pool dispatch on EVERY level, so even
      // tiny levels go through the parallel path this test is pinning.
      par.set_parallel(&pool, threads, /*min_level_rows=*/1);
      par.factor(vals);
      ASSERT_EQ(serial.factor_nonzeros(), par.factor_nonzeros());
      std::vector<double> b = b0;
      par.solve(b);
      EXPECT_EQ(ref, b) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelSolve, BitIdenticalThroughRefactorization) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(200, rng);
  auto vals = make_dominant(p, rng);

  ThreadPool pool(4);
  SparseLu<double> serial, par;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 4, 1);

  // Newton-like loop: smooth value drift keeps the pivot order, so later
  // factor() calls are pure refactorizations — the transposed-factor maps
  // and level schedule must stay valid across them.
  for (int iter = 0; iter < 10; ++iter) {
    serial.factor(vals);
    par.factor(vals);
    std::vector<double> b(static_cast<std::size_t>(p.n));
    for (auto& v : b) v = ud(rng);
    std::vector<double> b2 = b;
    serial.solve(b);
    par.solve(b2);
    EXPECT_EQ(b, b2) << "iteration " << iter;
    for (auto& v : vals) v *= 1.0 + 0.005 * ud(rng);
  }
  EXPECT_EQ(serial.symbolic_factorizations(), 1);
  EXPECT_EQ(par.symbolic_factorizations(), 1);
}

TEST(ParallelSolve, ComplexBitIdenticalToSerial) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(150, rng);
  std::vector<std::complex<double>> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = {ud(rng), ud(rng)};
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] += off + 1.0;
  }
  std::vector<std::complex<double>> b0(static_cast<std::size_t>(p.n));
  for (auto& v : b0) v = {ud(rng), ud(rng)};

  ZSparseLu serial;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  serial.factor(vals);
  auto ref = b0;
  serial.solve(ref);

  ThreadPool pool(3);
  ZSparseLu par;
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 3, 1);
  par.factor(vals);
  auto b = b0;
  par.solve(b);
  EXPECT_EQ(ref, b);
}

TEST(ParallelSolve, DefaultThresholdKeepsSmallLevelsSerialAndIdentical) {
  // With the production threshold most levels of a small system run inline;
  // the mixed serial/parallel execution must still be bit-identical.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(60, rng);
  const auto vals = make_dominant(p, rng);

  SparseLu<double> serial;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  serial.factor(vals);
  std::vector<double> ref(static_cast<std::size_t>(p.n));
  for (auto& v : ref) v = ud(rng);
  std::vector<double> b = ref;
  serial.solve(ref);

  ThreadPool pool(4);
  SparseLu<double> par;
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 4);  // default min_level_rows
  par.factor(vals);
  par.solve(b);
  EXPECT_EQ(ref, b);
}

// --- level-scheduled parallel numeric refactorization ------------------------
// SparseLu::set_refactor_parallel: the pivot-order replay fans column work
// across dependency levels. Same determinism contract as the solves — any
// thread count is bit-identical to serial — and the degradation tests
// (pivot floor / growth limit) must trip exactly when serial's do. The
// suite name keeps these under the TSan CI filter.

TEST(ParallelRefactor, BitIdenticalToSerialAnyThreadCount) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  for (int n : {15, 120, 400}) {
    const Pattern p = random_pattern(n, rng);
    auto vals = make_dominant(p, rng);

    SparseLu<double> serial;
    serial.analyze(p.n, p.row_ptr, p.col_idx);

    for (int threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      SparseLu<double> par;
      par.analyze(p.n, p.row_ptr, p.col_idx);
      // Solve threads stay at 1: set_parallel only lends the pool here.
      // min_level_cols = 1 forces pool dispatch on EVERY refactor level.
      par.set_parallel(&pool, 1);
      par.set_refactor_parallel(threads, /*min_level_cols=*/1);

      // First factor() records the pivot order; the drift loop replays it
      // through the parallel refactorization.
      auto drifted = vals;
      std::mt19937 drift_rng(77);
      for (int iter = 0; iter < 10; ++iter) {
        serial.factor(drifted);
        par.factor(drifted);
        std::vector<double> b(static_cast<std::size_t>(p.n));
        for (auto& v : b) v = ud(drift_rng);
        std::vector<double> b2 = b;
        serial.solve(b);
        par.solve(b2);
        EXPECT_EQ(b, b2) << "n=" << n << " threads=" << threads
                         << " iteration " << iter;
        for (auto& v : drifted) v *= 1.0 + 0.005 * ud(drift_rng);
      }
      EXPECT_EQ(serial.symbolic_factorizations(), 1);
      EXPECT_EQ(par.symbolic_factorizations(), 1);
      EXPECT_GT(par.refactor_levels(), 0);
      serial = SparseLu<double>();
      serial.analyze(p.n, p.row_ptr, p.col_idx);
    }
  }
}

TEST(ParallelRefactor, DegradedPivotFallsBackExactlyLikeSerial) {
  // Squeezing one diagonal by 1e-9 blows the pivot-growth limit during the
  // replay: both paths must abandon the refactorization, re-run the full
  // pivot-searching factorization, and agree bit-for-bit.
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(150, rng);
  auto vals = make_dominant(p, rng);

  ThreadPool pool(4);
  SparseLu<double> serial, par;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 1);
  par.set_refactor_parallel(4, 1);

  serial.factor(vals);
  par.factor(vals);

  // Collapse a mid-matrix diagonal entry.
  for (int s = p.row_ptr[70]; s < p.row_ptr[71]; ++s) {
    if (p.col_idx[static_cast<std::size_t>(s)] == 70)
      vals[static_cast<std::size_t>(s)] *= 1e-9;
  }
  serial.factor(vals);
  par.factor(vals);
  EXPECT_EQ(serial.symbolic_factorizations(), par.symbolic_factorizations());
  EXPECT_GE(par.symbolic_factorizations(), 2);

  std::vector<double> b(static_cast<std::size_t>(p.n));
  for (auto& v : b) v = ud(rng);
  std::vector<double> b2 = b;
  serial.solve(b);
  par.solve(b2);
  EXPECT_EQ(b, b2);
}

TEST(ParallelRefactor, ComplexBitIdenticalToSerial) {
  std::mt19937 rng(57);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(150, rng);
  std::vector<std::complex<double>> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = {ud(rng), ud(rng)};
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] += off + 1.0;
  }

  ThreadPool pool(3);
  ZSparseLu serial, par;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 1);
  par.set_refactor_parallel(3, 1);

  for (int iter = 0; iter < 6; ++iter) {
    serial.factor(vals);
    par.factor(vals);
    std::vector<std::complex<double>> b(static_cast<std::size_t>(p.n));
    for (auto& v : b) v = {ud(rng), ud(rng)};
    auto b2 = b;
    serial.solve(b);
    par.solve(b2);
    EXPECT_EQ(b, b2) << "iteration " << iter;
    for (auto& v : vals) v *= 1.0 + 0.003 * ud(rng);
  }
  EXPECT_EQ(serial.symbolic_factorizations(), 1);
  EXPECT_EQ(par.symbolic_factorizations(), 1);
}

TEST(ParallelRefactor, ComposesWithParallelSolves) {
  // Both knobs on one instance, sharing one pool — the production shape
  // when usim gets --solve-threads and --refactor-threads together.
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(250, rng);
  auto vals = make_dominant(p, rng);

  ThreadPool pool(4);
  SparseLu<double> serial, par;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 4, 1);
  par.set_refactor_parallel(4, 1);

  for (int iter = 0; iter < 8; ++iter) {
    serial.factor(vals);
    par.factor(vals);
    std::vector<double> b(static_cast<std::size_t>(p.n));
    for (auto& v : b) v = ud(rng);
    std::vector<double> b2 = b;
    serial.solve(b);
    par.solve(b2);
    EXPECT_EQ(b, b2) << "iteration " << iter;
    for (auto& v : vals) v *= 1.0 + 0.005 * ud(rng);
  }
  EXPECT_EQ(serial.symbolic_factorizations(), 1);
  EXPECT_EQ(par.symbolic_factorizations(), 1);
}

TEST(ParallelSolve, LevelSchedulePartitionsAllRows) {
  std::mt19937 rng(11);
  const Pattern p = random_pattern(180, rng);
  const auto vals = make_dominant(p, rng);
  SparseLu<double> lu;
  lu.analyze(p.n, p.row_ptr, p.col_idx);
  EXPECT_EQ(lu.forward_levels(), 0);  // schedule exists only after factor()
  lu.factor(vals);
  EXPECT_GT(lu.forward_levels(), 0);
  EXPECT_GT(lu.backward_levels(), 0);
  EXPECT_LE(lu.forward_levels(), p.n);
  EXPECT_LE(lu.backward_levels(), p.n);
}

}  // namespace
}  // namespace usys
