// The headline experiment (Fig. 5): behavioral vs linearized transducer in
// the pulse-train system. Asserts the paper's three qualitative results:
// perfect convergence at the 10 V linearization point, overshoot of the
// linear model at 5 V, undershoot at 15 V.
#include <gtest/gtest.h>

#include <cmath>

#include "core/resonator_system.hpp"
#include "spice/analysis.hpp"

namespace usys::core {
namespace {

struct PulseWindows {
  // Sample times late in each pulse plateau (quasi-static response).
  double at_5v;
  double at_10v;
  double at_15v;
};

constexpr double kTotal = 0.18;
constexpr double kRise = 2e-3;

PulseWindows windows() {
  // Slot i spans [i, i+1]*kTotal/3 with 10% gaps; plateau end ~ 0.9 of slot.
  const double slot = kTotal / 3.0;
  return {0.85 * slot, 1.85 * slot, 2.85 * slot};
}

Fig5Trace run(TransducerModelKind kind) {
  ResonatorParams p;
  spice::TranOptions opts;
  opts.dt_max = 2e-4;
  return run_fig5(p, kind, {5.0, 10.0, 15.0}, kTotal, kRise, opts);
}

TEST(Fig5, BothModelsSimulate) {
  const Fig5Trace behav = run(TransducerModelKind::behavioral);
  const Fig5Trace lin = run(TransducerModelKind::linearized);
  ASSERT_TRUE(behav.raw.ok) << behav.raw.error;
  ASSERT_TRUE(lin.raw.ok) << lin.raw.error;
  EXPECT_GT(behav.time.size(), 100u);
}

TEST(Fig5, ConvergenceAtLinearizationPoint) {
  const Fig5Trace behav = run(TransducerModelKind::behavioral);
  const Fig5Trace lin = run(TransducerModelKind::linearized);
  ASSERT_TRUE(behav.raw.ok && lin.raw.ok);
  const double t = windows().at_10v;
  const double xb = behav.raw.sample(t, 2);  // node_disp = 2 in build order
  const double xl = lin.raw.sample(t, 2);
  ASSERT_NE(xb, 0.0);
  EXPECT_NEAR(xl / xb, 1.0, 0.02);
}

TEST(Fig5, LinearOvershootsAt5V) {
  const Fig5Trace behav = run(TransducerModelKind::behavioral);
  const Fig5Trace lin = run(TransducerModelKind::linearized);
  ASSERT_TRUE(behav.raw.ok && lin.raw.ok);
  const double t = windows().at_5v;
  const double xb = std::abs(behav.raw.sample(t, 2));
  const double xl = std::abs(lin.raw.sample(t, 2));
  EXPECT_GT(xl, 1.5 * xb);          // overshoot...
  EXPECT_NEAR(xl / xb, 2.0, 0.15);  // ...by the secant ratio V0/V = 2
}

TEST(Fig5, LinearUndershootsAt15V) {
  const Fig5Trace behav = run(TransducerModelKind::behavioral);
  const Fig5Trace lin = run(TransducerModelKind::linearized);
  ASSERT_TRUE(behav.raw.ok && lin.raw.ok);
  const double t = windows().at_15v;
  const double xb = std::abs(behav.raw.sample(t, 2));
  const double xl = std::abs(lin.raw.sample(t, 2));
  EXPECT_LT(xl, 0.8 * xb);                   // undershoot...
  EXPECT_NEAR(xl / xb, 10.0 / 15.0, 0.07);   // ...by V0/V = 2/3
}

TEST(Fig5, QuadraticStaticsAcrossPulses) {
  // The behavioral model's quasi-static deflections scale as V^2.
  const Fig5Trace behav = run(TransducerModelKind::behavioral);
  ASSERT_TRUE(behav.raw.ok);
  const PulseWindows w = windows();
  const double x5 = std::abs(behav.raw.sample(w.at_5v, 2));
  const double x10 = std::abs(behav.raw.sample(w.at_10v, 2));
  const double x15 = std::abs(behav.raw.sample(w.at_15v, 2));
  EXPECT_NEAR(x10 / x5, 4.0, 0.2);
  EXPECT_NEAR(x15 / x5, 9.0, 0.5);
}

TEST(Fig5, UnderCriticalRinging) {
  // The dynamic behavior is "primarily defined by the under-critical
  // damping": each pulse edge must overshoot its plateau value.
  const Fig5Trace behav = run(TransducerModelKind::behavioral);
  ASSERT_TRUE(behav.raw.ok);
  const double slot = kTotal / 3.0;
  // Peak |x| in the first third of the 10 V slot vs the plateau value.
  double peak = 0.0;
  for (std::size_t k = 0; k < behav.time.size(); ++k) {
    const double t = behav.time[k];
    if (t > slot && t < slot + 0.4 * slot)
      peak = std::max(peak, std::abs(behav.displacement[k]));
  }
  const double plateau = std::abs(behav.raw.sample(windows().at_10v, 2));
  EXPECT_GT(peak, 1.2 * plateau);
  // zeta ~ 0.1414 -> first overshoot ~ 1 + exp(-pi zeta/sqrt(1-zeta^2)) ~ 1.64.
  EXPECT_LT(peak, 1.9 * plateau);
}

TEST(Fig5, TangentGammaDoublesDeflectionEverywhere) {
  // Ablation: with Tilmans' tangent Gamma the linear model overshoots by
  // ~2x even at the bias voltage (why the secant reading matches Fig. 5).
  ResonatorParams p;
  spice::TranOptions opts;
  opts.dt_max = 2e-4;
  LinearizationOptions tangent;
  tangent.gamma = GammaKind::tangent;
  const Fig5Trace lin_t =
      run_fig5(p, TransducerModelKind::linearized, {5.0, 10.0, 15.0}, kTotal, kRise,
               opts, tangent);
  const Fig5Trace behav = run(TransducerModelKind::behavioral);
  ASSERT_TRUE(lin_t.raw.ok && behav.raw.ok);
  const double t = windows().at_10v;
  EXPECT_NEAR(lin_t.raw.sample(t, 2) / behav.raw.sample(t, 2), 2.0, 0.1);
}

}  // namespace
}  // namespace usys::core
