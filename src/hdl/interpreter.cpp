#include "hdl/interpreter.hpp"

#include <cmath>

#include "common/log.hpp"
#include "hdl/codegen.hpp"
#include "hdl/parser.hpp"
#include "spice/lint.hpp"

namespace usys::hdl {

using sym::Dual;

bool parse_exec_mode(const std::string& text, HdlExecMode& out) {
  if (text == "ast") {
    out = HdlExecMode::ast;
  } else if (text == "bytecode") {
    out = HdlExecMode::bytecode;
  } else if (text == "codegen") {
    out = HdlExecMode::codegen;
  } else {
    return false;
  }
  return true;
}

const char* to_string(HdlExecMode mode) noexcept {
  switch (mode) {
    case HdlExecMode::ast: return "ast";
    case HdlExecMode::bytecode: return "bytecode";
    case HdlExecMode::codegen: return "codegen";
  }
  return "?";
}

struct HdlDevice::Frame {
  std::vector<Dual> slots;
  spice::EvalCtx* ctx = nullptr;   ///< null during commit (no stamping)
  const DVector* x = nullptr;
  Pass pass = Pass::dc;
  std::size_t seeds = 0;
  double c0 = 0.0;                 ///< integrator coefficients for this run
  double c1 = 0.0;
};

HdlDevice::HdlDevice(std::string name, ElaboratedModel model,
                     std::vector<int> node_per_pin, HdlExecMode exec_mode)
    : Device(std::move(name)), model_(std::move(model)), nodes_(std::move(node_per_pin)),
      exec_mode_(exec_mode) {
  if (nodes_.size() != model_.pins.size())
    throw spice::CircuitError("HdlDevice '" + this->name() + "': pin count mismatch (" +
                              std::to_string(nodes_.size()) + " nodes for " +
                              std::to_string(model_.pins.size()) + " pins)");
  ddt_.resize(static_cast<std::size_t>(model_.ddt_site_count));
  integ_.resize(static_cast<std::size_t>(model_.integ_site_count));
}

double HdlDevice::integ_state(int site) const {
  return integ_.at(static_cast<std::size_t>(site)).s_prev;
}

int HdlDevice::seed_of(int global) const {
  for (std::size_t i = 0; i < seed_unknowns_.size(); ++i) {
    if (seed_unknowns_[i] == global) return static_cast<int>(i);
  }
  return -1;
}

void HdlDevice::bind(spice::Binder& binder) {
  for (std::size_t p = 0; p < model_.pins.size(); ++p) {
    binder.require_nature(nodes_[p], model_.pins[p].nature, name());
  }
  branch_of_pair_.clear();
  for (const auto& [p1, p2] : model_.effort_pairs) {
    (void)p2;
    branch_of_pair_.push_back(
        binder.alloc_branch(model_.pins[static_cast<std::size_t>(p1)].nature));
  }
  seed_unknowns_.clear();
  for (int n : nodes_) {
    if (n >= 0 && seed_of(n) < 0) seed_unknowns_.push_back(n);
  }
  for (int b : branch_of_pair_) seed_unknowns_.push_back(b);

  // Compile the instance-bound bytecode program (the AST walker stays
  // available as the oracle regardless of the active exec mode).
  program_ = compile(model_, nodes_, branch_of_pair_, seed_unknowns_);

  // Static verification gates BOTH executors: the VM and the codegen backend
  // translate this same program, and neither bounds-checks at runtime.
  // Binding is sequential, so every index the program references is below
  // the binder's current unknown watermark.
  verify_report_ = verify_program(program_, binder.unknown_watermark());
  if (verify_report_.has_errors()) {
    throw spice::CircuitError("HDL model '" + name() + "': bytecode verification failed: " +
                              verify_report_.error_summary());
  }

  vm_.reset(&program_);
  const std::size_t k = seed_unknowns_.size();
  cap_a_.reserve(k * k);
  cap_b_.reserve(k * k);

  // Codegen mode acquires its native object eagerly at bind, so the compile
  // (or the one-time fallback warning) never lands inside a hot evaluation
  // loop or a parallel assembly pass. acquire() is a no-op beyond a map
  // lookup for every instance after the first of a given shape.
  cg_ = nullptr;
  cg_attempted_ = false;
  if (exec_mode_ == HdlExecMode::codegen) {
    cg_attempted_ = true;
    cg_ = codegen::acquire(program_);
  }
}

void HdlDevice::lint(spice::LintSink& sink) const {
  // Conservative topology: an HDL multiport may couple any pin pair, so the
  // default conductive clique (which can mask a missing DC path but never
  // invent a false defect) is the right call.
  spice::Device::lint(sink);
  if (!sink.wants_hdl()) return;
  for (const auto& is : verify_report_.issues) {
    sink.report(is.severity == VerifySeverity::error ? spice::LintSeverity::error
                                                     : spice::LintSeverity::warning,
                is.rule, is.message);
  }
}

void HdlDevice::report_assert(int site, int line, double value) {
  if (!asserted_.insert(site).second) return;
  log_warn("HDL model '" + name() + "' (entity " + model_.entity_name +
           "): ASSERT at line " + std::to_string(line) + " violated (value " +
           std::to_string(value) + ")");
}

sym::Dual HdlDevice::eval_expr(const ExprNode& e, Frame& fr) {
  switch (e.kind) {
    case ExprKind::number:
      return Dual(e.number, fr.seeds);
    case ExprKind::name:
      return fr.slots[static_cast<std::size_t>(e.site_id)];
    case ExprKind::port_read: {
      const int p1 = e.site_id / 256;
      const int p2 = e.site_id % 256;
      if (e.name == "i" || e.name == "f") {
        bool forward = false;
        const int k = model_.effort_pair_index(p1, p2, &forward);
        if (k >= 0) {
          const int br = branch_of_pair_[static_cast<std::size_t>(k)];
          Dual d = Dual::seed((*fr.x)[static_cast<std::size_t>(br)],
                              static_cast<std::size_t>(seed_of(br)), fr.seeds);
          return forward ? d : -d;
        }
        throw spice::CircuitError(
            "HDL model '" + name() + "' (entity " + model_.entity_name + "), line " +
            std::to_string(e.line) +
            ": flow read on a pin pair without a '.v %=' contribution "
            "(missed at elaboration)");
      }
      const int n1 = nodes_[static_cast<std::size_t>(p1)];
      const int n2 = nodes_[static_cast<std::size_t>(p2)];
      Dual d(0.0, fr.seeds);
      if (n1 >= 0)
        d += Dual::seed((*fr.x)[static_cast<std::size_t>(n1)],
                        static_cast<std::size_t>(seed_of(n1)), fr.seeds);
      if (n2 >= 0)
        d -= Dual::seed((*fr.x)[static_cast<std::size_t>(n2)],
                        static_cast<std::size_t>(seed_of(n2)), fr.seeds);
      return d;
    }
    case ExprKind::unary_neg:
      return -eval_expr(*e.args[0], fr);
    case ExprKind::binary: {
      const Dual a = eval_expr(*e.args[0], fr);
      const Dual b = eval_expr(*e.args[1], fr);
      switch (e.name.empty() ? '\0' : e.name[0]) {
        case '+': return a + b;
        case '-': return a - b;
        case '*': return a * b;
        case '/': return a / b;
        case '^': return pow(a, b);
        default:
          // Elaboration rejects unknown operators; never evaluate to 0.
          throw spice::CircuitError("HDL model '" + name() + "' (entity " +
                                    model_.entity_name + "), line " +
                                    std::to_string(e.line) +
                                    ": unknown binary operator '" + e.name +
                                    "' (missed at elaboration)");
      }
    }
    case ExprKind::call: {
      if (e.name == "ddt") {
        const Dual u = eval_expr(*e.args[0], fr);
        DdtSiteState& site = ddt_[static_cast<std::size_t>(e.site_id)];
        switch (fr.pass) {
          case Pass::dc:
            return Dual(0.0, fr.seeds);
          case Pass::dc_ddt: {
            // jq-extraction: value 0 (steady state), argument gradient passes
            // with unit gain; the caller differences against the dc pass.
            Dual r = u;
            return r - Dual(u.value(), fr.seeds);
          }
          case Pass::transient:
          case Pass::commit: {
            const double a0 = 1.0 / fr.c1;
            const double hist = (fr.c0 > 0.0) ? (-a0 * site.u_prev - site.udot_prev)
                                              : (-a0 * site.u_prev);
            Dual r = u * a0 + hist;
            if (fr.pass == Pass::commit) {
              site.udot_prev = r.value();
              site.u_prev = u.value();
            }
            return r;
          }
        }
        return Dual(0.0, fr.seeds);
      }
      if (e.name == "integ") {
        const Dual u = eval_expr(*e.args[0], fr);
        IntegSiteState& site = integ_[static_cast<std::size_t>(e.site_id)];
        switch (fr.pass) {
          case Pass::dc:
          case Pass::dc_ddt:
            return Dual(site.s0, fr.seeds);
          case Pass::transient:
          case Pass::commit: {
            Dual r = u * fr.c1 + (site.s_prev + fr.c0 * site.e_prev);
            if (fr.pass == Pass::commit) {
              site.s_prev = r.value();
              site.e_prev = u.value();
            }
            return r;
          }
        }
        return Dual(0.0, fr.seeds);
      }
      if (e.name == "pow")
        return pow(eval_expr(*e.args[0], fr), eval_expr(*e.args[1], fr));
      if (e.name == "min" || e.name == "max") {
        // Piecewise selection: value and gradient follow the active branch
        // (standard AHDL semantics; the kink is handled by Newton damping).
        const Dual a2 = eval_expr(*e.args[0], fr);
        const Dual b2 = eval_expr(*e.args[1], fr);
        const bool pick_a = (e.name == "min") ? (a2.value() <= b2.value())
                                              : (a2.value() >= b2.value());
        return pick_a ? a2 : b2;
      }
      if (e.name == "limit") {
        const Dual x2 = eval_expr(*e.args[0], fr);
        const Dual lo = eval_expr(*e.args[1], fr);
        const Dual hi = eval_expr(*e.args[2], fr);
        if (x2.value() < lo.value()) return lo;
        if (x2.value() > hi.value()) return hi;
        return x2;
      }
      const Dual a = eval_expr(*e.args[0], fr);
      if (e.name == "sin") return sin(a);
      if (e.name == "cos") return cos(a);
      if (e.name == "tan") return tan(a);
      if (e.name == "exp") return exp(a);
      if (e.name == "log") return log(a);
      if (e.name == "sqrt") return sqrt(a);
      if (e.name == "abs") return abs(a);
      throw spice::CircuitError("HDL model '" + name() + "' (entity " +
                                model_.entity_name + "), line " +
                                std::to_string(e.line) + ": unknown function '" +
                                e.name + "' (missed at elaboration)");
    }
  }
  throw spice::CircuitError("HDL model '" + name() +
                            "': unreachable expression kind");
}

void HdlDevice::run(spice::EvalCtx* ctx, Pass pass, const DVector& x,
                    double* jf_capture) {
  if (exec_mode_ == HdlExecMode::codegen) {
    if (!cg_attempted_) {  // mode switched on after bind
      cg_attempted_ = true;
      cg_ = codegen::acquire(program_);
    }
    if (cg_ != nullptr) {
      run_codegen(ctx, pass, x, jf_capture);
      return;
    }
    // acquire() warned once for this shape; execute as the bytecode VM.
  }
  if (exec_mode_ != HdlExecMode::ast) {
    BytecodeVm::RunIo io;
    io.ctx = ctx;
    io.x = &x;
    io.pass = pass;
    if (pass == Pass::transient || pass == Pass::commit) {
      io.c0 = ctx != nullptr ? ctx->integ_c0 : 0.0;
      io.c1 = ctx != nullptr ? ctx->integ_c1 : 1.0;
    }
    io.ddt = &ddt_;
    io.integ = &integ_;
    io.jf_capture = jf_capture;
    if (pass == Pass::commit && model_.assert_site_count > 0) {
      fired_asserts_.clear();
      io.fired_asserts = &fired_asserts_;
      vm_.run(io);
      for (const auto& [site, value] : fired_asserts_)
        report_assert(site, program_.assert_lines[static_cast<std::size_t>(site)],
                      value);
      return;
    }
    vm_.run(io);
    return;
  }
  run_ast(ctx, pass, x, jf_capture);
}

void HdlDevice::run_codegen(spice::EvalCtx* ctx, Pass pass, const DVector& x,
                            double* jf_capture) {
  const BytecodeProgram& p = program_;
  const std::size_t S = seed_unknowns_.size();

  // Gather: the generated code reads unknowns per AD seed slot, never by
  // global index — that is what makes one object serve every instance.
  cg_xs_.resize(S);
  for (std::size_t i = 0; i < S; ++i)
    cg_xs_[i] = x[static_cast<std::size_t>(seed_unknowns_[i])];

  codegen::CgIo io;
  io.xs = cg_xs_.data();
  io.frame = p.frame_init.data();
  if (pass == Pass::transient || pass == Pass::commit) {
    io.c0 = ctx != nullptr ? ctx->integ_c0 : 0.0;
    io.c1 = ctx != nullptr ? ctx->integ_c1 : 1.0;
  }
  io.ddt = reinterpret_cast<double*>(ddt_.data());
  io.integ = reinterpret_cast<double*>(integ_.data());

  if (pass == Pass::commit) {
    // State commits happen inside the generated function; stamps are
    // compiled out of the commit segment and ASSERT hits come back as
    // (site, value) pairs, mirroring the VM's fired_asserts protocol.
    const std::size_t sites = p.assert_lines.size();
    cg_sites_.resize(sites);
    cg_vals_.resize(sites);
    int n_fired = 0;
    io.fired_sites = cg_sites_.data();
    io.fired_vals = cg_vals_.data();
    io.n_fired = &n_fired;
    cg_->commit(&io);
    for (int k = 0; k < n_fired; ++k) {
      const int site = cg_sites_[static_cast<std::size_t>(k)];
      report_assert(site, p.assert_lines[static_cast<std::size_t>(site)],
                    cg_vals_[static_cast<std::size_t>(k)]);
    }
    return;
  }

  const bool capture = jf_capture != nullptr;
  const bool stamping = !capture && ctx != nullptr;
  cg_f_.assign(S, 0.0);
  double* j = jf_capture;  // capture accumulates straight into the caller's block
  if (!capture) {
    cg_j_.assign(S * S, 0.0);
    j = cg_j_.data();
  }
  io.f_out = cg_f_.data();
  io.j_out = j;

  // Effort-pair plumbing: identical to the VM/AST preamble (pass-independent,
  // so the jq capture difference cancels it — skipped there).
  if (stamping) {
    for (const auto& pl : p.pairs) {
      ctx->f_add(pl.na, ctx->v(pl.br));
      ctx->f_add(pl.nb, -ctx->v(pl.br));
      ctx->jf_add(pl.na, pl.br, 1.0);
      ctx->jf_add(pl.nb, pl.br, -1.0);
      ctx->f_add(pl.br, ctx->v(pl.na) - ctx->v(pl.nb));
      ctx->jf_add(pl.br, pl.na, 1.0);
      ctx->jf_add(pl.br, pl.nb, -1.0);
    }
  }

  (pass == Pass::dc ? cg_->dc : pass == Pass::dc_ddt ? cg_->dc_ddt : cg_->tran)(&io);

  // Scatter the seed-indexed block through the generic sink (dense, sparse
  // slot-table, or block-capture — all reachable via ctx). Zero Jacobian
  // entries are skipped exactly like the VM's per-stamp zero check.
  if (stamping) {
    const int* seeds = seed_unknowns_.data();
    for (std::size_t r = 0; r < S; ++r) {
      ctx->f_add(seeds[r], cg_f_[r]);
      const double* row = j + r * S;
      for (std::size_t c = 0; c < S; ++c) {
        if (row[c] != 0.0) ctx->jf_add(seeds[r], seeds[c], row[c]);
      }
    }
  }
}

void HdlDevice::run_ast(spice::EvalCtx* ctx, Pass pass, const DVector& x,
                        double* jf_capture) {
  Frame fr;
  fr.ctx = ctx;
  fr.x = &x;
  fr.pass = pass;
  fr.seeds = seed_unknowns_.size();
  if (pass == Pass::transient || pass == Pass::commit) {
    // During commit ctx carries only the integrator coefficients.
    fr.c0 = ctx != nullptr ? ctx->integ_c0 : 0.0;
    fr.c1 = ctx != nullptr ? ctx->integ_c1 : 1.0;
  }
  fr.slots.reserve(model_.init_frame.size());
  for (double v : model_.init_frame) fr.slots.emplace_back(v, fr.seeds);

  const bool capture = jf_capture != nullptr;
  const bool stamping = !capture && (ctx != nullptr) && (pass != Pass::commit);

  // Effort-pair plumbing: KCL for the branch flow and the across part of the
  // branch equation, stamped once per pair; contributions subtract below.
  // (Pass-independent, so the capture difference cancels it — skipped there.)
  if (stamping) {
    for (std::size_t k = 0; k < model_.effort_pairs.size(); ++k) {
      const auto& [pa, pb] = model_.effort_pairs[k];
      const int br = branch_of_pair_[k];
      const int na = nodes_[static_cast<std::size_t>(pa)];
      const int nb = nodes_[static_cast<std::size_t>(pb)];
      ctx->f_add(na, ctx->v(br));
      ctx->f_add(nb, -ctx->v(br));
      ctx->jf_add(na, br, 1.0);
      ctx->jf_add(nb, br, -1.0);
      ctx->f_add(br, ctx->v(na) - ctx->v(nb));
      ctx->jf_add(br, na, 1.0);
      ctx->jf_add(br, nb, -1.0);
    }
  }

  const bool want_transient = (pass == Pass::transient || pass == Pass::commit);
  const char* domain = want_transient ? "transient" : "dc";
  bool have_domain = false;
  for (const auto& b : model_.blocks) {
    if (b.has_domain(domain)) have_domain = true;
  }

  for (const auto& b : model_.blocks) {
    const bool selected = have_domain
                              ? b.has_domain(domain)
                              : (b.has_domain("transient") || b.has_domain("ac"));
    if (!selected) continue;
    for (const auto& s : b.stmts) {
      if (s.kind == StmtKind::assign) {
        fr.slots[static_cast<std::size_t>(s.slot)] = eval_expr(*s.expr, fr);
        continue;
      }
      if (s.kind == StmtKind::assertion) {
        // Boundary-condition verification: checked on *accepted* solutions
        // only (commit pass) so Newton excursions don't trip it.
        if (pass == Pass::commit) {
          const Dual cond = eval_expr(*s.expr, fr);
          if (cond.value() <= 0.0) report_assert(s.slot, s.line, cond.value());
        }
        continue;
      }
      const Dual val = eval_expr(*s.expr, fr);
      if (!stamping && !capture) continue;
      auto stamp_row = [&](int row, double sign) {
        if (row < 0) return;
        if (capture) {
          double* out =
              jf_capture + static_cast<std::size_t>(seed_of(row)) * fr.seeds;
          for (std::size_t sidx = 0; sidx < fr.seeds; ++sidx)
            out[sidx] += sign * val.grad(sidx);
          return;
        }
        ctx->f_add(row, sign * val.value());
        for (std::size_t sidx = 0; sidx < fr.seeds; ++sidx) {
          const double g = val.grad(sidx);
          if (g != 0.0) ctx->jf_add(row, seed_unknowns_[sidx], sign * g);
        }
      };
      if (s.field == "v") {
        bool forward = false;
        const int k = model_.effort_pair_index(s.p1, s.p2, &forward);
        if (k >= 0)
          stamp_row(branch_of_pair_[static_cast<std::size_t>(k)], forward ? -1.0 : +1.0);
        continue;
      }
      // Flow contribution: absorbed at p1, released at p2.
      stamp_row(nodes_[static_cast<std::size_t>(s.p1)], +1.0);
      stamp_row(nodes_[static_cast<std::size_t>(s.p2)], -1.0);
    }
  }
}

bool HdlDevice::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), nodes_.begin(), nodes_.end());
  out.insert(out.end(), branch_of_pair_.begin(), branch_of_pair_.end());
  out.insert(out.end(), seed_unknowns_.begin(), seed_unknowns_.end());
  return true;
}

void HdlDevice::evaluate(spice::EvalCtx& ctx) {
  if (ctx.mode == spice::AnalysisMode::transient) {
    run(&ctx, Pass::transient, *ctx.x);
    return;
  }
  run(&ctx, Pass::dc, *ctx.x);
  // jq extraction (for AC sweeps): difference the dc_ddt and dc passes.
  // Every stamp row and gradient column is one of the device's seed
  // unknowns, so a seeds x seeds capture block suffices — no n x n scratch.
  if (!ctx.wants_jq() || model_.ddt_site_count == 0) return;
  const std::size_t k = seed_unknowns_.size();
  cap_a_.assign(k * k, 0.0);
  cap_b_.assign(k * k, 0.0);
  run(nullptr, Pass::dc, *ctx.x, cap_a_.data());
  run(nullptr, Pass::dc_ddt, *ctx.x, cap_b_.data());
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      const double d = cap_b_[r * k + c] - cap_a_[r * k + c];
      if (d != 0.0) ctx.jq_add(seed_unknowns_[r], seed_unknowns_[c], d);
    }
  }
}

void HdlDevice::start_transient(const DVector& x_dc) {
  // Arm every site, then record each ddt/integ argument's DC value via a
  // commit pass (c0 = 0, c1 = 1 placeholders make the formulas benign), and
  // finally reset the histories the pass is not supposed to disturb.
  for (auto& s : integ_) {
    s.s_prev = s.s0;
    s.e_prev = 0.0;
  }
  for (auto& s : ddt_) {
    s.u_prev = 0.0;
    s.udot_prev = 0.0;
  }
  run(nullptr, Pass::commit, x_dc);
  for (auto& s : ddt_) s.udot_prev = 0.0;
  for (auto& s : integ_) s.s_prev = s.s0;
}

void HdlDevice::accept(const spice::AcceptCtx& ctx) {
  spice::EvalCtx ec;
  ec.mode = spice::AnalysisMode::transient;
  ec.integ_c0 = ctx.integ_c0;
  ec.integ_c1 = ctx.integ_c1;
  run(&ec, Pass::commit, *ctx.x);
}

std::unique_ptr<HdlDevice> instantiate(const std::string& device_name,
                                       const std::string& source,
                                       const std::string& entity,
                                       const std::map<std::string, double>& generics,
                                       const std::vector<int>& node_per_pin,
                                       HdlExecMode exec_mode) {
  DesignUnit unit = parse(source);
  ElaboratedModel model = elaborate(std::move(unit), entity, generics);
  return std::make_unique<HdlDevice>(device_name, std::move(model), node_per_pin,
                                     exec_mode);
}

}  // namespace usys::hdl
