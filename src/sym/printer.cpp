#include <cmath>

#include "common/strings.hpp"
#include "sym/expr.hpp"

namespace usys::sym {
namespace {

// Precedence levels for minimal parenthesization.
int precedence(Kind k) {
  switch (k) {
    case Kind::add:
    case Kind::sub:
      return 1;
    case Kind::mul:
    case Kind::div:
      return 2;
    case Kind::neg:
      return 3;
    case Kind::pow:
      return 4;
    default:
      return 5;  // atoms and function calls never need parens
  }
}

std::string fmt_const(double v) {
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    return str_format("%.1f", v);
  }
  return str_format("%g", v);
}

std::string render(const Expr& e, bool hdl);

std::string child(const Expr& c, int parent_prec, bool hdl, bool right_assoc_side = false) {
  const int cp = precedence(c.kind());
  std::string s = render(c, hdl);
  if (cp < parent_prec || (cp == parent_prec && right_assoc_side)) {
    return "(" + s + ")";
  }
  return s;
}

std::string fn(const char* name, const Expr& e, bool hdl) {
  return std::string(name) + "(" + render(e.args()[0], hdl) + ")";
}

std::string render(const Expr& e, bool hdl) {
  switch (e.kind()) {
    case Kind::constant:
      return fmt_const(e.value());
    case Kind::variable:
      return e.name();
    case Kind::add:
      return child(e.args()[0], 1, hdl) + " + " + child(e.args()[1], 1, hdl);
    case Kind::sub:
      return child(e.args()[0], 1, hdl) + " - " + child(e.args()[1], 1, hdl, true);
    case Kind::mul:
      return child(e.args()[0], 2, hdl) + "*" + child(e.args()[1], 2, hdl);
    case Kind::div:
      return child(e.args()[0], 2, hdl) + "/" + child(e.args()[1], 2, hdl, true);
    case Kind::neg: {
      // insert() instead of "-" + s: char-literal concatenation here trips a
      // GCC 12 libstdc++ -Wrestrict false positive (PR105651) under -O2.
      std::string s = child(e.args()[0], 3, hdl);
      s.insert(s.begin(), '-');
      return s;
    }
    case Kind::pow: {
      const Expr& base = e.args()[0];
      const Expr& expo = e.args()[1];
      if (hdl && expo.is_constant()) {
        // HDL-AT has no ** operator (the paper writes (d+x)*(d+x)); expand
        // small integer powers into products.
        const double ev = expo.value();
        const int n = static_cast<int>(ev);
        if (ev == n && n >= 2 && n <= 4) {
          std::string b = child(base, 2, hdl);
          std::string out = b;
          for (int i = 1; i < n; ++i) out += "*" + b;
          return out;
        }
      }
      return child(base, 4, hdl, true) + "^" + child(expo, 4, hdl);
    }
    case Kind::sin: return fn("sin", e, hdl);
    case Kind::cos: return fn("cos", e, hdl);
    case Kind::tan: return fn("tan", e, hdl);
    case Kind::exp: return fn("exp", e, hdl);
    case Kind::log: return fn("log", e, hdl);
    case Kind::sqrt: return fn("sqrt", e, hdl);
    case Kind::abs: return fn("abs", e, hdl);
  }
  throw std::logic_error("sym printer: unreachable kind");
}

}  // namespace

std::string to_text(const Expr& e) { return render(e, /*hdl=*/false); }
std::string to_hdl(const Expr& e) { return render(e, /*hdl=*/true); }

namespace {

std::string latex(const Expr& e, int parent_prec) {
  const int prec = precedence(e.kind());
  std::string out;
  switch (e.kind()) {
    case Kind::constant: {
      const double v = e.value();
      if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
        out = str_format("%lld", static_cast<long long>(v));
      } else {
        // Scientific -> m \times 10^{e}.
        const std::string s = str_format("%g", v);
        const auto epos = s.find('e');
        if (epos == std::string::npos) {
          out = s;
        } else {
          out = s.substr(0, epos) + " \\times 10^{" +
                std::to_string(std::stoi(s.substr(epos + 1))) + "}";
        }
      }
      break;
    }
    case Kind::variable: {
      // Greek-ify the common physics parameter names.
      const std::string& n = e.name();
      if (n == "e0") out = "\\varepsilon_0";
      else if (n == "er") out = "\\varepsilon_r";
      else if (n == "mu0") out = "\\mu_0";
      else if (n == "lambda") out = "\\lambda";
      else if (n == "alpha") out = "\\alpha";
      else out = n;
      break;
    }
    case Kind::add:
      out = latex(e.args()[0], 1) + " + " + latex(e.args()[1], 1);
      break;
    case Kind::sub:
      out = latex(e.args()[0], 1) + " - " + latex(e.args()[1], 2);
      break;
    case Kind::mul:
      out = latex(e.args()[0], 2) + " \\, " + latex(e.args()[1], 2);
      break;
    case Kind::div:
      // \frac absorbs all precedence concerns.
      return "\\frac{" + latex(e.args()[0], 0) + "}{" + latex(e.args()[1], 0) + "}";
    case Kind::neg:
      // See render(): char-literal + string here trips GCC 12's -Wrestrict
      // false positive (PR105651) under -O2.
      out = latex(e.args()[0], 3);
      out.insert(out.begin(), '-');
      break;
    case Kind::pow:
      out = latex(e.args()[0], 5) + "^{" + latex(e.args()[1], 0) + "}";
      break;
    case Kind::sin: return "\\sin\\left(" + latex(e.args()[0], 0) + "\\right)";
    case Kind::cos: return "\\cos\\left(" + latex(e.args()[0], 0) + "\\right)";
    case Kind::tan: return "\\tan\\left(" + latex(e.args()[0], 0) + "\\right)";
    case Kind::exp: return "e^{" + latex(e.args()[0], 0) + "}";
    case Kind::log: return "\\ln\\left(" + latex(e.args()[0], 0) + "\\right)";
    case Kind::sqrt: return "\\sqrt{" + latex(e.args()[0], 0) + "}";
    case Kind::abs: return "\\left|" + latex(e.args()[0], 0) + "\\right|";
  }
  if (prec < parent_prec) return "\\left(" + out + "\\right)";
  return out;
}

}  // namespace

std::string to_latex(const Expr& e) { return latex(e, 0); }

}  // namespace usys::sym
