// The Fig. 3/4 system built three ways and compared:
//   1. native C++ behavioral device (public API),
//   2. SPICE-style netlist text (the paper's "instantiated in a netlist"),
//   3. interpreted HDL-AT model (the paper's Listing 1),
// all driven by the same 12 V pulse. The three displacement traces must
// coincide — the modeling *route* must not change the physics.
#include <iostream>

#include "api/api.hpp"
#include "common/table.hpp"
#include "core/netlist_ext.hpp"
#include "core/resonator_system.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"

using namespace usys;

int main() {
  const double v_drive = 12.0;
  spice::TranOptions opts;
  opts.tstop = 60e-3;
  opts.dt_max = 1e-4;

  // --- route 1: public API -------------------------------------------------
  core::ResonatorParams params;
  auto api_sys = core::build_resonator_system(
      params, core::TransducerModelKind::behavioral,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, v_drive}, {1.0, v_drive}}));
  const auto r_api = api::transient(*api_sys.circuit, opts);

  // --- route 2: netlist text -----------------------------------------------
  auto parser = core::make_full_parser();
  const auto net = parser.parse(R"(* electrostatic transducer + resonator (Fig. 3)
V1 drive 0 PWL(0 0 5m 12 1 12)
XT drive 0 vel 0 ETRANSV a=1e-4 d=0.15m er=1
Xm vel MASS m=1e-4
Xk vel 0 SPRING k=200
Xd vel 0 DAMPER alpha=40m
Xi disp vel INTEG
.tran 0.1m 60m
)");
  const auto r_net = api::transient(*net.circuit, opts);

  // --- route 3: HDL-AT (Listing 1) -------------------------------------------
  spice::Circuit hdl_ckt;
  const int drive = hdl_ckt.add_node("drive", Nature::electrical);
  const int vel = hdl_ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = hdl_ckt.add_node("disp", Nature::mechanical_translation);
  hdl_ckt.add<spice::VSource>(
      "V1", drive, spice::Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, v_drive}, {1.0, v_drive}}));
  hdl_ckt.add_device(hdl::instantiate(
      "XT", hdl::stdlib::paper_listing1(), "eletran",
      {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
      {drive, spice::Circuit::kGround, vel, spice::Circuit::kGround}));
  hdl_ckt.add<spice::Mass>("M1", vel, 1e-4);
  hdl_ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 200.0);
  hdl_ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 40e-3);
  hdl_ckt.add<spice::StateIntegrator>("XD", disp, vel);
  const auto r_hdl = api::transient(hdl_ckt, opts);

  if (!r_api.ok || !r_net.ok || !r_hdl.ok) {
    std::cerr << "simulation failed: " << r_api.error << "/" << r_net.error << "/"
              << r_hdl.error << "\n";
    return 1;
  }

  AsciiTable t({"t [ms]", "x API [nm]", "x netlist [nm]", "x HDL [nm]"});
  const int net_disp = net.circuit->node("disp");
  for (double time = 5e-3; time <= 60e-3; time += 5e-3) {
    t.add_row({fmt_num(time * 1e3),
               fmt_num(r_api.sample(time, api_sys.node_disp) * 1e9, 5),
               fmt_num(r_net.sample(time, net_disp) * 1e9, 5),
               fmt_num(r_hdl.sample(time, disp) * 1e9, 5)});
  }
  t.print(std::cout);
  std::cout << "\nThree construction routes, one answer — the behavioral model is\n"
               "route-independent (API == netlist == interpreted HDL-AT).\n";
  return 0;
}
