// Determinism contract of the counter-based sweep RNG (common/rng.hpp):
// rng_draw_u64 is a pure function of (seed, counter, key), so streams must
// be bit-identical however the draws are ordered, threaded, or split — the
// property every Monte Carlo shard/resume test builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace usys {
namespace {

TEST(Rng, DrawIsPureAndSeedSensitive) {
  const std::uint64_t a = rng_draw_u64(42, 7, 1);
  EXPECT_EQ(a, rng_draw_u64(42, 7, 1));  // same inputs, same bits
  EXPECT_NE(a, rng_draw_u64(43, 7, 1));
  EXPECT_NE(a, rng_draw_u64(42, 8, 1));
  EXPECT_NE(a, rng_draw_u64(42, 7, 2));
}

TEST(Rng, NameHashIsStable) {
  // FNV-1a over the bytes: pin two values so an accidental hash change
  // (which would silently re-draw every netlist parameter) breaks loudly.
  EXPECT_EQ(rng_hash_name(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(rng_hash_name("gap"), rng_hash_name("gap"));
  EXPECT_NE(rng_hash_name("gap"), rng_hash_name("vdrive"));
}

TEST(Rng, Uniform01IsInHalfOpenUnitInterval) {
  for (std::uint64_t c = 0; c < 10'000; ++c) {
    const double u = rng_uniform01(1, c, 99);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMapsToRange) {
  for (std::uint64_t c = 0; c < 1'000; ++c) {
    const double v = rng_uniform(5, c, 1, -2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  // Degenerate range collapses to the point.
  EXPECT_DOUBLE_EQ(rng_uniform(5, 0, 1, 4.0, 4.0), 4.0);
}

TEST(Rng, NormalMatchesMomentsAtN10k) {
  const double mu = 2.5;
  const double sigma = 0.75;
  const int n = 10'000;
  double sum = 0.0;
  double sq = 0.0;
  for (int c = 0; c < n; ++c) {
    const double x = rng_normal(123, static_cast<std::uint64_t>(c), 7, mu, sigma);
    EXPECT_TRUE(std::isfinite(x));
    sum += x;
    sq += (x - mu) * (x - mu);
  }
  // Standard error of the mean is sigma/sqrt(n) ~ 0.0075; allow 5 sigma.
  EXPECT_NEAR(sum / n, mu, 5.0 * sigma / std::sqrt(double(n)));
  EXPECT_NEAR(std::sqrt(sq / n), sigma, 0.05 * sigma);
}

TEST(Rng, InverseNormalCdfAccuracy) {
  // Round-trip against the forward CDF Phi(x) = 0.5*erfc(-x/sqrt(2)):
  // after the Halley refinement the inverse should be good to ~1e-12.
  for (double p : {1e-9, 1e-4, 0.025, 0.2, 0.5, 0.8, 0.975, 0.9999, 1 - 1e-9}) {
    const double x = inverse_normal_cdf(p);
    const double back = 0.5 * std::erfc(-x / std::sqrt(2.0));
    EXPECT_NEAR(back, p, 1e-12 + 1e-9 * p) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(inverse_normal_cdf(0.5), 0.0);
  EXPECT_EQ(inverse_normal_cdf(0.0), -HUGE_VAL);
  EXPECT_EQ(inverse_normal_cdf(1.0), HUGE_VAL);
  EXPECT_TRUE(std::isnan(inverse_normal_cdf(-0.1)));
  EXPECT_TRUE(std::isnan(inverse_normal_cdf(1.1)));
}

/// Draws counters [0, n) with `threads` workers picking work via an atomic
/// cursor — maximally racy scheduling, deterministic output slots.
std::vector<std::uint64_t> draw_parallel(std::uint64_t seed, std::uint64_t key,
                                         int n, int threads) {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int c = next.fetch_add(1); c < n; c = next.fetch_add(1))
        out[static_cast<std::size_t>(c)] =
            rng_draw_u64(seed, static_cast<std::uint64_t>(c), key);
    });
  }
  for (auto& th : pool) th.join();
  return out;
}

TEST(Rng, StreamsBitIdenticalAcrossThreadCounts) {
  const auto serial = draw_parallel(2026, 11, 4096, 1);
  EXPECT_EQ(serial, draw_parallel(2026, 11, 4096, 2));
  EXPECT_EQ(serial, draw_parallel(2026, 11, 4096, 8));
}

TEST(Rng, ShardedDrawsEqualUnshardedStream) {
  // Shard k of n owns counters c with c % n == k-1 (the sweep shard rule);
  // reassembling the shards must reproduce the unsharded stream exactly.
  const int n = 1000;
  const int shards = 3;
  std::vector<std::uint64_t> full(n);
  for (int c = 0; c < n; ++c)
    full[static_cast<std::size_t>(c)] = rng_draw_u64(9, static_cast<std::uint64_t>(c), 5);
  std::vector<std::uint64_t> stitched(n, 0);
  for (int k = 1; k <= shards; ++k) {
    for (int c = 0; c < n; ++c) {
      if (c % shards != k - 1) continue;
      stitched[static_cast<std::size_t>(c)] =
          rng_draw_u64(9, static_cast<std::uint64_t>(c), 5);
    }
  }
  EXPECT_EQ(full, stitched);
}

TEST(Rng, ResumeMidStreamIsBitIdentical) {
  // A "resume" replays arbitrary counters in arbitrary order: stateless
  // draws don't care. Draw backwards and compare to the forward stream.
  std::vector<double> forward;
  for (int c = 0; c < 257; ++c)
    forward.push_back(rng_normal(77, static_cast<std::uint64_t>(c), 3, 0.0, 1.0));
  for (int c = 256; c >= 0; --c)
    EXPECT_EQ(forward[static_cast<std::size_t>(c)],
              rng_normal(77, static_cast<std::uint64_t>(c), 3, 0.0, 1.0));
}

}  // namespace
}  // namespace usys
