// Quickstart: build the paper's Fig. 3 system with the public API, run a
// transient, and print the displacement response.
//
//   drive o--[V pulse]          (electrical)
//         o--[transverse electrostatic transducer]--o vel  (mechanical)
//                      m (mass), k (spring), alpha (damper) at vel
//                      disp = integral(vel)
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "api/api.hpp"
#include "common/table.hpp"
#include "core/resonator_system.hpp"
#include "spice/analysis.hpp"

int main() {
  using namespace usys;

  // 1. Parameters (defaults are the paper's Table 4).
  core::ResonatorParams params;

  // 2. A 10 V pulse with 2 ms rise/fall, 50 ms wide.
  auto drive = std::make_unique<spice::PulseWave>(0.0, 10.0, 5e-3, 2e-3, 2e-3, 50e-3);

  // 3. Assemble the system (behavioral non-linear transducer).
  core::ResonatorSystem sys = core::build_resonator_system(
      params, core::TransducerModelKind::behavioral, std::move(drive));

  // 4. Run the transient analysis.
  spice::TranOptions opts;
  opts.tstop = 0.1;
  const spice::TranResult res = api::transient(*sys.circuit, opts);
  if (!res.ok) {
    std::cerr << "simulation failed: " << res.error << "\n";
    return 1;
  }

  // 5. Inspect results: drive voltage and plate displacement over time.
  AsciiTable t({"t [ms]", "V(drive) [V]", "x(plate) [nm]"});
  for (double time = 0.0; time <= 0.1; time += 5e-3) {
    t.add_row({fmt_num(time * 1e3), fmt_num(res.sample(time, sys.node_drive), 4),
               fmt_num(res.sample(time, sys.node_disp) * 1e9, 4)});
  }
  t.print(std::cout);

  const double x_static = core::static_displacement_transverse(params, 10.0);
  std::cout << "\nanalytic static deflection at 10 V: " << x_static * 1e9
            << " nm (the trace settles there during the pulse)\n";
  std::cout << "time points: " << res.time.size()
            << ", Newton iterations: " << res.total_newton_iters << "\n";
  return 0;
}
