// Shared enums and evaluation contexts of the MNA solver.
//
// The solver is *charge-oriented*: each device stamps, at the current Newton
// iterate, an algebraic flow residual `f`, a stored-quantity residual `q`
// (charge / flux / displacement-like), and their Jacobians Jf and Jq. The
// analyses then compose those pieces:
//   DC:        f(x) = 0                      J = Jf
//   transient: f(x) + a0*q(x) + hist = 0     J = Jf + a0*Jq
//   AC:        (Jf + j*omega*Jq) X = B       (linearization at the DC point)
// so small-signal behavior is *derived automatically* from the same stamps —
// the linearized-equivalent-circuit devices of the paper are built by hand
// as an independent baseline and cross-checked against this path in tests.
#pragma once

#include <cstddef>

#include "common/matrix.hpp"

namespace usys::spice {

enum class AnalysisMode { dc, transient };

/// Numerical integration method for the transient analysis.
enum class IntegMethod {
  backward_euler,  ///< order 1, L-stable, damps numerical ringing
  trapezoidal,     ///< order 2, A-stable, the default (SPICE's default too)
  gear2,           ///< BDF2: order 2, L-stable — kills trapezoidal ringing
                   ///< (device-internal integ() states fall back to order 1)
};

/// Sparse accumulation target, wired by the MNA assembler (spice/mna.hpp)
/// before each device's evaluate(). Holds only raw pointers into the
/// assembler's compiled pattern so this header stays dependency-free; the
/// fast path is a pure indexed write into a flat values array via the
/// active device's precomputed slot table, with a CSR binary search backing
/// up writes that cross device footprints. (Since the HDL jq extraction
/// went seed-local, every in-tree device stays inside its footprint and the
/// fallback is purely a safety net for out-of-tree devices.)
struct SparseStampSink {
  const int* local_of = nullptr;  ///< global unknown -> active device's local index (-1 = outside)
  const int* slots = nullptr;     ///< k*k local (row, col) -> flat value slot
  int k = 0;
  double* jf_vals = nullptr;
  double* jq_vals = nullptr;
  const int* row_ptr = nullptr;   ///< union pattern in CSR (fallback lookup)
  const int* col_idx = nullptr;
  long missed = 0;                ///< stamps outside the pattern (fatal; checked per pass)

  // Block-capture mode (parallel assembly, spice/mna.cpp): when f_local /
  // q_local are set, f/q stamps are redirected into the active device's
  // private local-index vectors instead of the shared global accumulators,
  // and jf_vals/jq_vals point at the device's private k*k block (with an
  // identity slot table). In this mode row_ptr/col_idx are null: any stamp
  // outside the device's declared footprint counts as missed.
  double* f_local = nullptr;
  double* q_local = nullptr;

  void add(double* vals, int r, int c, double v) noexcept {
    if (local_of != nullptr) {
      const int li = local_of[r];
      const int lj = local_of[c];
      if (li >= 0 && lj >= 0) {
        vals[slots[li * k + lj]] += v;
        return;
      }
    }
    if (row_ptr == nullptr) {  // block-capture mode: no cross-footprint escape
      ++missed;
      return;
    }
    // Binary search the CSR row for writes outside the active footprint.
    int lo = row_ptr[r];
    int hi = row_ptr[r + 1];
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (col_idx[mid] < c) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < row_ptr[r + 1] && col_idx[lo] == c) {
      vals[lo] += v;
      return;
    }
    ++missed;
  }
};

/// Everything a Device::evaluate needs to read and write for one stamp pass.
struct EvalCtx {
  AnalysisMode mode = AnalysisMode::dc;
  double time = 0.0;          ///< evaluation time (t_{n+1}); 0 during DC
  double source_scale = 1.0;  ///< 0..1 during source-stepping continuation

  // Device-internal integral states s = integ(e): during a transient step
  //   s = s_prev + integ_c0*e_prev + integ_c1*e   (ds/de = integ_c1)
  // and during DC both coefficients are 0 (state pinned at its initial value).
  double integ_c0 = 0.0;
  double integ_c1 = 0.0;

  const DVector* x = nullptr;  ///< current Newton iterate
  DVector* f = nullptr;        ///< algebraic residual accumulator
  DVector* q = nullptr;        ///< stored-quantity accumulator
  DMatrix* jf = nullptr;       ///< d f / d x (dense path; null = sparse or discarded)
  DMatrix* jq = nullptr;       ///< d q / d x (dense path; null = sparse or discarded)
  SparseStampSink* sparse = nullptr;  ///< sparse path (takes precedence over jf/jq)

  /// Value of unknown `idx`; ground (-1) reads as 0.
  double v(int idx) const noexcept { return idx < 0 ? 0.0 : (*x)[static_cast<std::size_t>(idx)]; }

  /// True when this pass accumulates Jq (devices deriving Jq indirectly,
  /// like the HDL interpreter's two-pass extraction, gate on it). False on
  /// value-only passes where all Jacobian stamps are discarded.
  bool wants_jq() const noexcept { return sparse != nullptr || jq != nullptr; }

  void f_add(int row, double val) noexcept {
    if (row < 0) return;
    if (sparse != nullptr && sparse->f_local != nullptr) {
      const int li = sparse->local_of[row];
      if (li >= 0) {
        sparse->f_local[li] += val;
      } else {
        ++sparse->missed;
      }
      return;
    }
    (*f)[static_cast<std::size_t>(row)] += val;
  }
  void q_add(int row, double val) noexcept {
    if (row < 0) return;
    if (sparse != nullptr && sparse->q_local != nullptr) {
      const int li = sparse->local_of[row];
      if (li >= 0) {
        sparse->q_local[li] += val;
      } else {
        ++sparse->missed;
      }
      return;
    }
    (*q)[static_cast<std::size_t>(row)] += val;
  }
  void jf_add(int row, int col, double val) noexcept {
    if (row < 0 || col < 0) return;
    if (sparse != nullptr) {
      sparse->add(sparse->jf_vals, row, col, val);
    } else if (jf != nullptr) {
      (*jf)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += val;
    }
  }
  void jq_add(int row, int col, double val) noexcept {
    if (row < 0 || col < 0) return;
    if (sparse != nullptr) {
      sparse->add(sparse->jq_vals, row, col, val);
    } else if (jq != nullptr) {
      (*jq)(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += val;
    }
  }
};

/// Passed to Device::accept after a transient step converges, so devices can
/// commit internal integral states using the same coefficients the step used.
struct AcceptCtx {
  double time = 0.0;
  double integ_c0 = 0.0;
  double integ_c1 = 0.0;
  const DVector* x = nullptr;
  double v(int idx) const noexcept { return idx < 0 ? 0.0 : (*x)[static_cast<std::size_t>(idx)]; }
};

/// A device-internal integral state: s(t) = s0 + integral of e dt.
/// Used by the behavioral transducers for displacement = integ(velocity),
/// mirroring `x := integ(S)` in the paper's Listing 1.
class InternalState {
 public:
  /// Initial condition (value during DC and at transient t=0).
  void set_initial(double s0) noexcept { s0_ = s_prev_ = s0; }
  double initial() const noexcept { return s0_; }

  /// Re-arm history at the start of a transient run, where `e0` is the
  /// integrand's value at the DC point.
  void start(double e0) noexcept {
    s_prev_ = s0_;
    e_prev_ = e0;
  }

  /// Current value given the integrand's present value `e`.
  double value(double e, const EvalCtx& ctx) const noexcept {
    if (ctx.mode != AnalysisMode::transient) return s0_;
    return s_prev_ + ctx.integ_c0 * e_prev_ + ctx.integ_c1 * e;
  }
  /// d value / d e under the step's integration formula.
  double slope(const EvalCtx& ctx) const noexcept {
    return ctx.mode == AnalysisMode::transient ? ctx.integ_c1 : 0.0;
  }

  /// Commits the state after an accepted step (e = integrand at t_{n+1}).
  void accept(double e, const AcceptCtx& ctx) noexcept {
    s_prev_ = s_prev_ + ctx.integ_c0 * e_prev_ + ctx.integ_c1 * e;
    e_prev_ = e;
  }

  double committed() const noexcept { return s_prev_; }

 private:
  double s0_ = 0.0;
  double s_prev_ = 0.0;
  double e_prev_ = 0.0;
};

}  // namespace usys::spice
