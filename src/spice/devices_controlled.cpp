#include "spice/devices_controlled.hpp"

#include "spice/lint.hpp"

#include "spice/devices_source.hpp"

namespace usys::spice {

Vcvs::Vcvs(std::string name, int out_p, int out_n, int ctl_p, int ctl_n, double gain)
    : Device(std::move(name)), a_(out_p), b_(out_n), c_(ctl_p), d_(ctl_n), gain_(gain) {}

void Vcvs::bind(Binder& binder) { br_ = binder.alloc_branch(binder.node_nature(a_)); }

bool Vcvs::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, c_, d_, br_});
  return true;
}

// Output ports of voltage-defined controlled sources are vsource edges
// (loop-forming, current-carrying); current-output ports impose flow and
// provide no DC return path; pure voltage-sense pins contribute nothing.
void Vcvs::lint(LintSink& sink) const { sink.edge(a_, b_, LintEdgeKind::vsource); }

void Vcvs::evaluate(EvalCtx& ctx) {
  const double i = ctx.v(br_);
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, br_, 1.0);
  ctx.jf_add(b_, br_, -1.0);
  ctx.f_add(br_, (ctx.v(a_) - ctx.v(b_)) - gain_ * (ctx.v(c_) - ctx.v(d_)));
  ctx.jf_add(br_, a_, 1.0);
  ctx.jf_add(br_, b_, -1.0);
  ctx.jf_add(br_, c_, -gain_);
  ctx.jf_add(br_, d_, gain_);
}

Vccs::Vccs(std::string name, int out_p, int out_n, int ctl_p, int ctl_n, double gm)
    : Device(std::move(name)), a_(out_p), b_(out_n), c_(ctl_p), d_(ctl_n), gm_(gm) {}

void Vccs::bind(Binder&) {}

bool Vccs::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, c_, d_});
  return true;
}

void Vccs::lint(LintSink& sink) const { sink.edge(a_, b_, LintEdgeKind::isource); }

void Vccs::evaluate(EvalCtx& ctx) {
  const double i = gm_ * (ctx.v(c_) - ctx.v(d_));
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, c_, gm_);
  ctx.jf_add(a_, d_, -gm_);
  ctx.jf_add(b_, c_, -gm_);
  ctx.jf_add(b_, d_, gm_);
}

Cccs::Cccs(std::string name, int out_p, int out_n, std::string sensed_vsource, double gain,
           Circuit& circuit)
    : Device(std::move(name)),
      a_(out_p),
      b_(out_n),
      sensed_(std::move(sensed_vsource)),
      gain_(gain),
      circuit_(circuit) {}

void Cccs::bind(Binder&) {
  auto* dev = circuit_.find_device(sensed_);
  auto* vs = dynamic_cast<VSource*>(dev);
  if (vs == nullptr)
    throw CircuitError("Cccs '" + name() + "': sensed device '" + sensed_ +
                       "' is not a VSource");
  sense_branch_ = vs->branch();
  if (sense_branch_ < 0)
    throw CircuitError("Cccs '" + name() + "': sensed source not bound yet; add '" +
                       sensed_ + "' before this device");
}

bool Cccs::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, sense_branch_});
  return true;
}

void Cccs::lint(LintSink& sink) const { sink.edge(a_, b_, LintEdgeKind::isource); }

void Cccs::evaluate(EvalCtx& ctx) {
  const double i = gain_ * ctx.v(sense_branch_);
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, sense_branch_, gain_);
  ctx.jf_add(b_, sense_branch_, -gain_);
}

Ccvs::Ccvs(std::string name, int out_p, int out_n, std::string sensed_vsource, double r,
           Circuit& circuit)
    : Device(std::move(name)),
      a_(out_p),
      b_(out_n),
      sensed_(std::move(sensed_vsource)),
      r_(r),
      circuit_(circuit) {}

void Ccvs::bind(Binder& binder) {
  auto* vs = dynamic_cast<VSource*>(circuit_.find_device(sensed_));
  if (vs == nullptr)
    throw CircuitError("Ccvs '" + name() + "': sensed device '" + sensed_ +
                       "' is not a VSource");
  sense_branch_ = vs->branch();
  if (sense_branch_ < 0)
    throw CircuitError("Ccvs '" + name() + "': sensed source not bound yet; add '" +
                       sensed_ + "' before this device");
  br_ = binder.alloc_branch(binder.node_nature(a_));
}

bool Ccvs::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, sense_branch_, br_});
  return true;
}

void Ccvs::lint(LintSink& sink) const { sink.edge(a_, b_, LintEdgeKind::vsource); }

void Ccvs::evaluate(EvalCtx& ctx) {
  const double i = ctx.v(br_);
  ctx.f_add(a_, i);
  ctx.f_add(b_, -i);
  ctx.jf_add(a_, br_, 1.0);
  ctx.jf_add(b_, br_, -1.0);
  ctx.f_add(br_, (ctx.v(a_) - ctx.v(b_)) - r_ * ctx.v(sense_branch_));
  ctx.jf_add(br_, a_, 1.0);
  ctx.jf_add(br_, b_, -1.0);
  ctx.jf_add(br_, sense_branch_, -r_);
}

IdealTransformer::IdealTransformer(std::string name, int a, int b, int c, int d,
                                   double ratio)
    : Device(std::move(name)), a_(a), b_(b), c_(c), d_(d), n_(ratio) {}

void IdealTransformer::bind(Binder& binder) {
  br_ = binder.alloc_branch(binder.node_nature(a_));
}

bool IdealTransformer::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, c_, d_, br_});
  return true;
}

// Each winding is a galvanic current path between its own two pins, but the
// two ports share no conductive node — the default footprint clique would
// invent one.
void IdealTransformer::lint(LintSink& sink) const {
  sink.edge(a_, b_, LintEdgeKind::conductive);
  sink.edge(c_, d_, LintEdgeKind::conductive);
}

void IdealTransformer::evaluate(EvalCtx& ctx) {
  // Branch unknown: i1 (flows a -> b inside port 1).
  const double i1 = ctx.v(br_);
  ctx.f_add(a_, i1);
  ctx.f_add(b_, -i1);
  ctx.jf_add(a_, br_, 1.0);
  ctx.jf_add(b_, br_, -1.0);
  // Port 2 current: i2 = -n*i1 flowing c -> d means n*i1 enters c.
  ctx.f_add(c_, -n_ * i1);
  ctx.f_add(d_, n_ * i1);
  ctx.jf_add(c_, br_, -n_);
  ctx.jf_add(d_, br_, n_);
  // Constraint: (va - vb) - n (vc - vd) = 0.
  ctx.f_add(br_, (ctx.v(a_) - ctx.v(b_)) - n_ * (ctx.v(c_) - ctx.v(d_)));
  ctx.jf_add(br_, a_, 1.0);
  ctx.jf_add(br_, b_, -1.0);
  ctx.jf_add(br_, c_, -n_);
  ctx.jf_add(br_, d_, n_);
}

Gyrator::Gyrator(std::string name, int a, int b, int c, int d, double g)
    : Device(std::move(name)), a_(a), b_(b), c_(c), d_(d), g_(g) {}

void Gyrator::bind(Binder&) {}

bool Gyrator::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, c_, d_});
  return true;
}

void Gyrator::evaluate(EvalCtx& ctx) {
  // i1 = g*v2 into port 1; i2 = -g*v1 into port 2 (power conserving).
  const double v1 = ctx.v(a_) - ctx.v(b_);
  const double v2 = ctx.v(c_) - ctx.v(d_);
  const double i1 = g_ * v2;
  const double i2 = -g_ * v1;
  ctx.f_add(a_, i1);
  ctx.f_add(b_, -i1);
  ctx.jf_add(a_, c_, g_);
  ctx.jf_add(a_, d_, -g_);
  ctx.jf_add(b_, c_, -g_);
  ctx.jf_add(b_, d_, g_);
  ctx.f_add(c_, i2);
  ctx.f_add(d_, -i2);
  ctx.jf_add(c_, a_, -g_);
  ctx.jf_add(c_, b_, g_);
  ctx.jf_add(d_, a_, g_);
  ctx.jf_add(d_, b_, -g_);
}

StateIntegrator::StateIntegrator(std::string name, int out, int in, double initial)
    : Device(std::move(name)), out_(out), in_(in), initial_(initial) {}

void StateIntegrator::bind(Binder& binder) {
  if (out_ < 0) throw CircuitError("StateIntegrator '" + name() + "': output at ground");
  br_ = binder.alloc_branch(binder.node_nature(out_));
}

bool StateIntegrator::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {out_, in_, br_});
  return true;
}

void StateIntegrator::evaluate(EvalCtx& ctx) {
  // Driver current into the output node (value determined by the constraint).
  ctx.f_add(out_, ctx.v(br_));
  ctx.jf_add(out_, br_, 1.0);
  if (ctx.mode == AnalysisMode::dc) {
    // The integral's value is its initial condition at DC.
    ctx.f_add(br_, ctx.v(out_) - initial_);
    ctx.jf_add(br_, out_, 1.0);
  } else {
    // d(v_out)/dt - v_in = 0  =>  q = v_out, f = -v_in.
    ctx.q_add(br_, ctx.v(out_));
    ctx.jq_add(br_, out_, 1.0);
    ctx.f_add(br_, -ctx.v(in_));
    ctx.jf_add(br_, in_, -1.0);
  }
}

}  // namespace usys::spice
