#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace usys {

namespace {

/// Spin budget before a barrier wait falls back to a condvar sleep. Tuned
/// for the assembler's cadence: consecutive Newton-iteration assembles
/// arrive within microseconds, so a short spin keeps workers out of the
/// scheduler; anything longer just burns a core while the solver factors.
constexpr int kSpinRounds = 2048;

}  // namespace

int ThreadPool::resolve_threads(int requested) noexcept {
  if (requested > 0) return requested;
  if (requested < 0) return 1;  // the documented floor, not auto
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int total = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(total - 1));
  for (int i = 1; i < total; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::work_off(const std::function<void(int)>& fn) {
  for (;;) {
    const int t = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (t >= ntasks_) return;
    try {
      fn(t);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    // Start barrier: spin briefly for the next generation, then sleep.
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    for (int spin = 0; gen == seen && !shutdown_.load(std::memory_order_relaxed);
         ++spin) {
      if (spin >= kSpinRounds) {
        std::unique_lock<std::mutex> lock(mu_);
        start_cv_.wait(lock, [&] {
          return generation_.load(std::memory_order_acquire) != seen ||
                 shutdown_.load(std::memory_order_relaxed);
        });
      } else {
        std::this_thread::yield();
      }
      gen = generation_.load(std::memory_order_acquire);
    }
    if (shutdown_.load(std::memory_order_relaxed)) return;
    seen = gen;

    work_off(*job_);

    workers_done_.fetch_add(1, std::memory_order_release);
    // Pair with run()'s sleep path: the empty critical section guarantees a
    // sleeping caller either saw the increment or is inside wait().
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_one();
  }
}

void ThreadPool::run(int ntasks, const std::function<void(int)>& fn) {
  if (ntasks <= 0) return;
  if (workers_.empty()) {
    // Single-threaded pool: plain loop, exceptions propagate directly.
    for (int t = 0; t < ntasks; ++t) fn(t);
    return;
  }
  job_ = &fn;
  ntasks_ = ntasks;
  next_task_.store(0, std::memory_order_relaxed);
  workers_done_.store(0, std::memory_order_relaxed);
  first_error_ = nullptr;
  {
    // Publishing under the mutex pairs with the workers' sleep path (no
    // missed wakeups); the release store publishes job_/ntasks_ to spinners.
    std::lock_guard<std::mutex> lock(mu_);
    generation_.fetch_add(1, std::memory_order_release);
  }
  start_cv_.notify_all();

  work_off(fn);  // the caller claims tasks too

  // Finish barrier: every worker must have woken for this generation and
  // drained the task counter — only then is `fn` (on the caller's stack)
  // safe to drop. Spin first, sleep if the stragglers take long.
  const int nworkers = static_cast<int>(workers_.size());
  bool done = false;
  for (int spin = 0; spin < kSpinRounds; ++spin) {
    if (workers_done_.load(std::memory_order_acquire) == nworkers) {
      done = true;
      break;
    }
    std::this_thread::yield();
  }
  if (!done) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return workers_done_.load(std::memory_order_acquire) == nworkers;
    });
  }
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(std::exchange(first_error_, nullptr));
}

}  // namespace usys
