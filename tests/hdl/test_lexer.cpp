#include <gtest/gtest.h>

#include "hdl/lexer.hpp"

namespace usys::hdl {
namespace {

TEST(Lexer, OperatorsAndPunctuation) {
  const auto toks = lex("( ) [ ] , ; : . := %= => + - * / ^");
  const Tok expected[] = {Tok::lparen,  Tok::rparen, Tok::lbracket, Tok::rbracket,
                          Tok::comma,   Tok::semicolon, Tok::colon, Tok::dot,
                          Tok::assign,  Tok::contribute, Tok::arrow, Tok::plus,
                          Tok::minus,   Tok::star,   Tok::slash,    Tok::caret,
                          Tok::end_of_file};
  ASSERT_EQ(toks.size(), std::size(expected));
  for (std::size_t i = 0; i < toks.size(); ++i) EXPECT_EQ(toks[i].kind, expected[i]) << i;
}

TEST(Lexer, NumbersWithExponents) {
  const auto toks = lex("8.8542e-12 2.0 42 .5");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_DOUBLE_EQ(toks[0].value, 8.8542e-12);
  EXPECT_DOUBLE_EQ(toks[1].value, 2.0);
  EXPECT_DOUBLE_EQ(toks[2].value, 42.0);
  EXPECT_DOUBLE_EQ(toks[3].value, 0.5);
}

TEST(Lexer, IdentifiersKeepCase) {
  const auto toks = lex("ENTITY eletran V_x");
  EXPECT_EQ(toks[0].text, "ENTITY");
  EXPECT_EQ(toks[1].text, "eletran");
  EXPECT_EQ(toks[2].text, "V_x");
  EXPECT_TRUE(is_keyword(toks[0], "entity"));
}

TEST(Lexer, CommentsSkipped) {
  const auto toks = lex("a -- this is a comment := %=\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, MinusVsComment) {
  const auto toks = lex("a - b");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[1].kind, Tok::minus);
}

TEST(Lexer, LineNumbersTracked) {
  const auto toks = lex("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
}

TEST(Lexer, StrayCharactersThrow) {
  EXPECT_THROW(lex("a ? b"), LexError);
  EXPECT_THROW(lex("a % b"), LexError);
  EXPECT_THROW(lex("a = b"), LexError);
}

TEST(Lexer, Listing1Tokenizes) {
  const char* listing = R"(
ENTITY eletran IS
 GENERIC (A, d, er : analog);
 PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;
)";
  const auto toks = lex(listing);
  EXPECT_GT(toks.size(), 20u);
  EXPECT_EQ(toks.back().kind, Tok::end_of_file);
}

}  // namespace
}  // namespace usys::hdl
