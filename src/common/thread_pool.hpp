// Small persistent thread pool shared by the parallel MNA assembly
// (spice/mna.hpp) and the batch sweep runner (spice/sweep.hpp).
//
// Design constraints, in order:
//   * cheap steady-state dispatch — the assembler calls run() once per
//     Newton iteration, so a fan-out must not spawn threads or allocate,
//     and the start/finish barriers spin briefly (workers stay hot across
//     back-to-back assembles) before falling back to condvar sleeps;
//   * caller participation — the constructing thread works too, so a
//     "1-thread pool" degrades to a plain loop with zero synchronization;
//   * exception transport — the first exception thrown by any task is
//     rethrown on the calling thread after the barrier.
//
// Tasks are claimed from a shared atomic counter (work stealing by index),
// so which worker runs which task is nondeterministic; callers that need
// deterministic RESULTS must make task outputs independent (write to
// disjoint, index-addressed storage), which is exactly what both users do.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace usys {

class ThreadPool {
 public:
  /// Total worker count including the calling thread: `threads` <= 1 means
  /// no background threads at all; 0 picks std::thread::hardware_concurrency.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers available to run(), including the caller. Always >= 1.
  int thread_count() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(task) for every task in [0, ntasks), distributing tasks over
  /// all workers plus the calling thread, and returns once every task has
  /// finished. Not reentrant: run() must not be called from inside a task.
  void run(int ntasks, const std::function<void(int)>& fn);

  /// Resolves a user-facing thread request: 0 = auto (hardware concurrency),
  /// otherwise the value itself, floored at 1.
  static int resolve_threads(int requested) noexcept;

 private:
  void worker_loop();
  void work_off(const std::function<void(int)>& fn);

  std::vector<std::thread> workers_;

  // Dispatch state. job_/ntasks_ are written by run() before the release
  // store to generation_ and read by workers after their acquire load, so
  // they need no lock of their own; the mutex exists only to pair with the
  // condvar sleep paths.
  const std::function<void(int)>* job_ = nullptr;
  int ntasks_ = 0;
  std::atomic<int> next_task_{0};
  std::atomic<int> workers_done_{0};  ///< workers finished with the current generation
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> shutdown_{false};

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::exception_ptr first_error_;  // guarded by mu_
};

}  // namespace usys
