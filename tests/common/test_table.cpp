#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.hpp"

namespace usys {
namespace {

TEST(Table, AlignsColumns) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name   |"), std::string::npos);
  EXPECT_NE(s.find("| longer |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(fmt_num(1.5), "1.5");
  EXPECT_EQ(fmt_num(3.34675e-9), "3.34675e-09");
  EXPECT_EQ(fmt_sci(1.0, 2), "1.00e+00");
}

TEST(Table, CsvRoundTrip) {
  const std::string path = "/tmp/usys_test_table.csv";
  ASSERT_TRUE(write_csv(path, {"t", "v"}, {{0.0, 1.0}, {0.5, 2.0}}));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "t,v");
  std::getline(f, line);
  EXPECT_EQ(line, "0,1");
  std::remove(path.c_str());
}

TEST(Table, CsvBadPathFails) {
  EXPECT_FALSE(write_csv("/nonexistent_dir_xyz/file.csv", {"a"}, {{1.0}}));
}

}  // namespace
}  // namespace usys
