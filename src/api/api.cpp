#include "api/api.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <utility>

#include "common/strings.hpp"
#include "core/netlist_ext.hpp"

namespace usys::api {

// ---------------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------------

std::string content_hash(const std::string& netlist_text, const std::string& hdl_mode) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    // Field separator outside the byte alphabet of either input, so
    // ("ab","c") and ("a","bc") hash differently.
    h ^= 0x100;
    h *= 1099511628211ull;
  };
  mix(netlist_text);
  mix(hdl_mode);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

bool parse_override(const std::string& spec, ParamOverride& out) {
  const std::string_view sv(spec);
  const auto eq = sv.find('=');
  if (eq == std::string_view::npos) return false;
  const std::string_view lhs = trim(sv.substr(0, eq));
  const auto dot = lhs.find('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 >= lhs.size()) return false;
  const auto value = parse_spice_number(trim(sv.substr(eq + 1)));
  if (!value) return false;
  out.device = std::string(lhs.substr(0, dot));
  out.param = to_lower(lhs.substr(dot + 1));
  out.value = *value;
  return true;
}

// ---------------------------------------------------------------------------
// AnalysisOutcome
// ---------------------------------------------------------------------------

const FailureInfo& AnalysisOutcome::failure() const noexcept {
  switch (kind) {
    case spice::AnalysisCard::Kind::tran: return tran.failure;
    case spice::AnalysisCard::Kind::ac: return ac.failure;
    case spice::AnalysisCard::Kind::op: break;
  }
  return op.failure;
}

std::string AnalysisOutcome::error() const {
  if (ok) return "";
  switch (kind) {
    case spice::AnalysisCard::Kind::tran:
      return tran.error.empty() ? tran.failure.to_string() : tran.error;
    case spice::AnalysisCard::Kind::ac:
      return ac.error.empty() ? ac.failure.to_string() : ac.error;
    case spice::AnalysisCard::Kind::op: break;
  }
  return op.failure.to_string();
}

SeriesView series_view(const AnalysisOutcome& outcome, spice::Circuit& circuit) {
  SeriesView view;
  const int nodes = circuit.node_count();
  switch (outcome.kind) {
    case spice::AnalysisCard::Kind::op: {
      for (int i = 0; i < nodes; ++i) view.columns.push_back(circuit.node_name(i));
      view.rows = 1;
      view.row_at = [&outcome, nodes](std::size_t) {
        std::vector<double> row;
        row.reserve(static_cast<std::size_t>(nodes));
        for (int i = 0; i < nodes; ++i) row.push_back(outcome.op.at(i));
        return row;
      };
      break;
    }
    case spice::AnalysisCard::Kind::tran: {
      view.columns.push_back("t [s]");
      for (int i = 0; i < nodes; ++i) view.columns.push_back(circuit.node_name(i));
      view.rows = outcome.tran.time.size();
      view.row_at = [&outcome, nodes](std::size_t k) {
        std::vector<double> row{outcome.tran.time[k]};
        row.reserve(1 + static_cast<std::size_t>(nodes));
        for (int i = 0; i < nodes; ++i) row.push_back(outcome.tran.at(k, i));
        return row;
      };
      break;
    }
    case spice::AnalysisCard::Kind::ac: {
      view.columns.push_back("f [Hz]");
      for (int i = 0; i < nodes; ++i) {
        view.columns.push_back(circuit.node_name(i) + " dB");
        view.columns.push_back(circuit.node_name(i) + " deg");
      }
      view.rows = outcome.ac.freq.size();
      view.row_at = [&outcome, nodes](std::size_t k) {
        std::vector<double> row{outcome.ac.freq[k]};
        row.reserve(1 + 2 * static_cast<std::size_t>(nodes));
        for (int i = 0; i < nodes; ++i) {
          row.push_back(outcome.ac.magnitude_db(k, i));
          row.push_back(outcome.ac.phase_deg(k, i));
        }
        return row;
      };
      break;
    }
  }
  return view;
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

struct Session::Impl {
  spice::Netlist net;        ///< owns the circuit for netlist sessions
  spice::Circuit* circuit = nullptr;
  std::unique_ptr<spice::AnalysisEngine> engine;
  std::string hash;
  std::string title;
  /// The construction cost is attributed to the FIRST job, so a cold
  /// submission reports parsed/bound = true and a warm one reports false.
  bool first_job_parsed = false;
  bool first_job_bound = false;
  long jobs = 0;
};

Session::Session(const std::string& netlist_text, const std::string& hdl_mode)
    : impl_(std::make_unique<Impl>()) {
  auto parser = core::make_full_parser();
  if (!hdl_mode.empty()) parser.set_option("hdl", hdl_mode);
  try {
    impl_->net = parser.parse(netlist_text);
  } catch (const spice::CircuitError& e) {
    // Circuit-construction conflicts during parse are netlist problems
    // (usim exit 2), same as malformed cards.
    throw spice::NetlistError(0, e.what());
  }
  impl_->circuit = impl_->net.circuit.get();
  impl_->title = impl_->net.title;
  impl_->hash = content_hash(netlist_text, hdl_mode);
  impl_->engine = std::make_unique<spice::AnalysisEngine>(*impl_->circuit);
  impl_->first_job_parsed = true;
  impl_->first_job_bound = true;
}

Session::Session(spice::Circuit& circuit) : impl_(std::make_unique<Impl>()) {
  impl_->circuit = &circuit;
  impl_->engine = std::make_unique<spice::AnalysisEngine>(circuit);
  impl_->first_job_bound = true;  // the engine bind happened here
}

Session::~Session() = default;

const std::string& Session::hash() const noexcept { return impl_->hash; }
const std::string& Session::title() const noexcept { return impl_->title; }
spice::Circuit& Session::circuit() noexcept { return *impl_->circuit; }
spice::AnalysisEngine& Session::engine() noexcept { return *impl_->engine; }
const std::vector<spice::AnalysisCard>& Session::cards() const noexcept {
  return impl_->net.analyses;
}
void Session::cool() { impl_->engine->cool(); }
bool Session::warm() const noexcept { return impl_->engine->warm(); }
long Session::jobs_run() const noexcept { return impl_->jobs; }

namespace {

int exit_code_for(const FailureInfo& failure) {
  return failure.kind == FailureKind::timeout || failure.kind == FailureKind::cancelled
             ? 3
             : 1;
}

/// One applied override, remembered so the run can restore the session's
/// canonical (netlist-defined) values afterwards — the cache keys sessions
/// by netlist hash, so a session must always return to matching its text.
struct AppliedOverride {
  spice::Device* device = nullptr;
  std::string param;
  double baseline = 0.0;
};

}  // namespace

JobResult Session::run(const JobRequest& request, const AnalysisCallback& on_analysis) {
  JobResult result;
  result.parsed = impl_->first_job_parsed;
  result.bound = impl_->first_job_bound;
  impl_->first_job_parsed = false;
  impl_->first_job_bound = false;

  // --- apply parameter overrides against the bound circuit ----------------
  std::vector<AppliedOverride> applied;
  applied.reserve(request.overrides.size());
  const auto restore = [&]() {
    for (auto it = applied.rbegin(); it != applied.rend(); ++it)
      it->device->set_param(it->param, it->baseline);
    if (!applied.empty()) impl_->engine->rebind();
  };
  for (const auto& ov : request.overrides) {
    spice::Device* dev = impl_->circuit->find_device(ov.device);
    AppliedOverride entry{dev, ov.param, 0.0};
    const char* problem = nullptr;
    if (dev == nullptr) {
      problem = "unknown device";
    } else if (!dev->get_param(ov.param, entry.baseline)) {
      problem = "device does not expose parameter";
    } else if (!dev->set_param(ov.param, ov.value)) {
      problem = "value rejected for parameter";
    }
    if (problem != nullptr) {
      restore();
      result.ok = false;
      result.exit_code = 2;
      result.error = std::string("override '") + ov.device + "." + ov.param +
                     "': " + problem;
      result.failure =
          make_failure(FailureKind::internal_error, "job", result.error);
      return result;
    }
    applied.push_back(std::move(entry));
  }
  if (!applied.empty()) {
    impl_->engine->rebind();
    result.rebound = true;
  }

  // --- run the analysis cards through the one dispatch path ---------------
  const JobOptions& jo = request.options;
  const auto apply_newton = [&jo](spice::NewtonOptions& newton) {
    newton.assembly_threads = jo.assembly_threads;
    newton.solve_threads = jo.solve_threads;
    newton.refactor_threads = jo.refactor_threads;
    newton.partition = jo.partition;
    newton.timeout_ms = jo.timeout_ms;
    newton.cancel = jo.cancel;
    if (jo.max_iters_scale > 1) newton.max_iters *= jo.max_iters_scale;
  };

  std::vector<spice::AnalysisCard> cards =
      request.analyses.empty() ? impl_->net.analyses : request.analyses;
  if (cards.empty()) cards.push_back({});  // default .op

  result.ok = true;
  for (auto& card : cards) {
    AnalysisOutcome outcome;
    outcome.kind = card.kind;
    switch (card.kind) {
      case spice::AnalysisCard::Kind::op: {
        spice::DcOptions dc;
        apply_newton(dc.newton);
        outcome.op = impl_->engine->run_op(dc);
        outcome.ok = outcome.op.converged;
        result.symbolic_factorizations += outcome.op.symbolic_factorizations;
        break;
      }
      case spice::AnalysisCard::Kind::tran: {
        // The tran budget covers the initial OP too (analysis.hpp), so the
        // dc options only carry thread/partition knobs.
        apply_newton(card.tran.newton);
        apply_newton(card.tran.dc.newton);
        outcome.tran = impl_->engine->run_tran(card.tran);
        outcome.ok = outcome.tran.ok;
        result.symbolic_factorizations += outcome.tran.symbolic_factorizations;
        break;
      }
      case spice::AnalysisCard::Kind::ac: {
        apply_newton(card.ac.dc.newton);
        outcome.ac = impl_->engine->run_ac(card.ac);
        outcome.ok = outcome.ac.ok;
        result.symbolic_factorizations += outcome.ac.symbolic_factorizations;
        break;
      }
    }
    result.analyses.push_back(std::move(outcome));
    const AnalysisOutcome& stored = result.analyses.back();
    if (on_analysis) on_analysis(result.analyses.size() - 1, stored);
    if (!stored.ok) {
      result.ok = false;
      result.failure = stored.failure();
      result.error = stored.error();
      result.exit_code = exit_code_for(result.failure);
      break;
    }
  }

  restore();
  ++impl_->jobs;
  return result;
}

// ---------------------------------------------------------------------------
// Sweep-point dispatch (shared by usim --sweep and the server's sweep op)
// ---------------------------------------------------------------------------

std::string substitute_params(std::string text, const spice::SweepPoint& point) {
  for (const auto& [name, value] : point.params) {
    const std::string key = "{" + name + "}";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    const std::size_t len = std::char_traits<char>::length(buf);
    for (std::size_t p = text.find(key); p != std::string::npos;
         p = text.find(key, p)) {
      text.replace(p, key.size(), buf);
      p += len;
    }
  }
  return text;
}

namespace {

/// Per-node metrics stay readable on small circuits; array-scale circuits
/// (over 16 nodes — think TRANSARRAY) get min/max/mean aggregates instead.
void node_metrics(spice::SweepOutcome& out, const spice::Circuit& ckt,
                  const std::string& prefix,
                  const std::function<double(int)>& value_of) {
  constexpr int kMaxPerNodeColumns = 16;
  if (ckt.node_count() <= kMaxPerNodeColumns) {
    for (int i = 0; i < ckt.node_count(); ++i)
      out.metrics.emplace_back(prefix + ":" + ckt.node_name(i), value_of(i));
    return;
  }
  double lo = value_of(0);
  double hi = lo;
  double sum = 0.0;
  for (int i = 0; i < ckt.node_count(); ++i) {
    const double v = value_of(i);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  out.metrics.emplace_back(prefix + ":min", lo);
  out.metrics.emplace_back(prefix + ":max", hi);
  out.metrics.emplace_back(prefix + ":mean", sum / ckt.node_count());
}

}  // namespace

spice::SweepOutcome run_sweep_point(const std::string& text,
                                    const spice::SweepPoint& point,
                                    const std::string& hdl_mode,
                                    const JobOptions& options, int attempt) {
  spice::SweepOutcome out;
  Session session(substitute_params(text, point), hdl_mode);
  JobRequest jr;
  jr.options = options;
  jr.options.max_iters_scale = 1 << std::min(attempt, 4);
  const JobResult result = session.run(jr);
  if (!result.ok) {
    out.failure = result.failure;
    out.error = result.error.empty() ? "analysis failed" : result.error;
    return out;
  }
  spice::Circuit& ckt = session.circuit();
  std::vector<spice::AnalysisCard> cards = session.cards();
  if (cards.empty()) cards.push_back({});  // the facade's default .op
  for (std::size_t a = 0; a < result.analyses.size(); ++a) {
    const AnalysisOutcome& oc = result.analyses[a];
    switch (oc.kind) {
      case spice::AnalysisCard::Kind::op:
        node_metrics(out, ckt, "op", [&](int i) { return oc.op.at(i); });
        break;
      case spice::AnalysisCard::Kind::tran: {
        const double tstop = cards[a].tran.tstop;
        node_metrics(out, ckt, "tran(tstop)",
                     [&](int i) { return oc.tran.sample(tstop, i); });
        out.metrics.emplace_back("tran:points",
                                 static_cast<double>(oc.tran.time.size()));
        break;
      }
      case spice::AnalysisCard::Kind::ac: {
        const std::size_t last = oc.ac.freq.size() - 1;
        node_metrics(out, ckt, "ac dB(fstop)",
                     [&](int i) { return oc.ac.magnitude_db(last, i); });
        break;
      }
    }
  }
  out.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// Free-function facade (migration targets for the deprecated spice:: ones)
// ---------------------------------------------------------------------------

spice::OpResult operating_point(spice::Circuit& circuit, const spice::DcOptions& opts) {
  return spice::AnalysisEngine(circuit).run_op(opts);
}

spice::DcResult solve_dc(spice::Circuit& circuit, const spice::DcOptions& opts) {
  return spice::AnalysisEngine(circuit).run_dc(opts);
}

spice::TranResult transient(spice::Circuit& circuit, const spice::TranOptions& opts) {
  return spice::AnalysisEngine(circuit).run_tran(opts);
}

spice::AcResult ac_sweep(spice::Circuit& circuit, const spice::AcOptions& opts) {
  return spice::AnalysisEngine(circuit).run_ac(opts);
}

}  // namespace usys::api
