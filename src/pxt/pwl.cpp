#include "pxt/pwl.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/matrix.hpp"
#include "common/strings.hpp"

namespace usys::pxt {

Pwl1::Pwl1(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  if (x_.size() != y_.size() || x_.size() < 2)
    throw std::invalid_argument("Pwl1: need >= 2 matching samples");
  for (std::size_t i = 1; i < x_.size(); ++i) {
    if (x_[i] <= x_[i - 1]) throw std::invalid_argument("Pwl1: x must be increasing");
  }
}

double Pwl1::operator()(double x) const {
  if (x <= x_.front()) return y_.front();
  if (x >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t k = static_cast<std::size_t>(it - x_.begin());
  const double w = (x - x_[k - 1]) / (x_[k] - x_[k - 1]);
  return (1.0 - w) * y_[k - 1] + w * y_[k];
}

double Pwl1::slope(double x) const {
  if (x <= x_.front() || x >= x_.back()) return 0.0;  // clamped outside
  const auto it = std::upper_bound(x_.begin(), x_.end(), x);
  const std::size_t k = static_cast<std::size_t>(it - x_.begin());
  return (y_[k] - y_[k - 1]) / (x_[k] - x_[k - 1]);
}

Pwl1 capacitance_model(const ExtractionTable& table) {
  // C is voltage-independent; take the first voltage column.
  std::vector<double> xs;
  std::vector<double> cs;
  for (std::size_t i = 0; i < table.displacements.size(); ++i) {
    xs.push_back(table.displacements[i]);
    cs.push_back(table.at(i, 0).capacitance);
  }
  return Pwl1(std::move(xs), std::move(cs));
}

PwlTransducer::PwlTransducer(std::string name, int a, int b, int c, int d, Pwl1 cap_of_x)
    : Device(std::move(name)), a_(a), b_(b), c_(c), d_(d), cap_(std::move(cap_of_x)) {}

void PwlTransducer::bind(spice::Binder& binder) {
  binder.require_nature(a_, Nature::electrical, name());
  binder.require_nature(b_, Nature::electrical, name());
  binder.require_nature(c_, Nature::mechanical_translation, name());
  binder.require_nature(d_, Nature::mechanical_translation, name());
}

void PwlTransducer::start_transient(const DVector& x_dc) {
  const double uc = c_ < 0 ? 0.0 : x_dc[static_cast<std::size_t>(c_)];
  const double ud = d_ < 0 ? 0.0 : x_dc[static_cast<std::size_t>(d_)];
  xstate_.start(uc - ud);
}

void PwlTransducer::accept(const spice::AcceptCtx& ctx) {
  xstate_.accept(ctx.v(c_) - ctx.v(d_), ctx);
}

bool PwlTransducer::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, c_, d_});
  return true;
}

void PwlTransducer::evaluate(spice::EvalCtx& ctx) {
  const double volt = ctx.v(a_) - ctx.v(b_);
  const double u = ctx.v(c_) - ctx.v(d_);
  const double x = xstate_.value(u, ctx);
  const double sl = xstate_.slope(ctx);
  const double cap = cap_(x);
  const double dcap = cap_.slope(x);

  const double qe = cap * volt;
  ctx.q_add(a_, qe);
  ctx.q_add(b_, -qe);
  ctx.jq_add(a_, a_, cap);
  ctx.jq_add(a_, b_, -cap);
  ctx.jq_add(b_, a_, -cap);
  ctx.jq_add(b_, b_, cap);
  const double dq_dx = dcap * volt;
  ctx.jq_add(a_, c_, dq_dx * sl);
  ctx.jq_add(a_, d_, -dq_dx * sl);
  ctx.jq_add(b_, c_, -dq_dx * sl);
  ctx.jq_add(b_, d_, dq_dx * sl);

  // Energy-method force from the table: F_plate = +V^2/2 * dC/dx.
  const double f = 0.5 * volt * volt * dcap;
  const double df_dv = volt * dcap;
  ctx.f_add(c_, -f);
  ctx.f_add(d_, +f);
  ctx.jf_add(c_, a_, -df_dv);
  ctx.jf_add(c_, b_, +df_dv);
  ctx.jf_add(d_, a_, +df_dv);
  ctx.jf_add(d_, b_, -df_dv);
}

Pwl2::Pwl2(std::vector<double> xs, std::vector<double> vs, std::vector<double> values)
    : xs_(std::move(xs)), vs_(std::move(vs)), val_(std::move(values)) {
  if (xs_.size() < 2 || vs_.size() < 2)
    throw std::invalid_argument("Pwl2: need >= 2 points per axis");
  if (val_.size() != xs_.size() * vs_.size())
    throw std::invalid_argument("Pwl2: value grid size mismatch");
  for (std::size_t i = 1; i < xs_.size(); ++i) {
    if (xs_[i] <= xs_[i - 1]) throw std::invalid_argument("Pwl2: x axis not increasing");
  }
  for (std::size_t j = 1; j < vs_.size(); ++j) {
    if (vs_[j] <= vs_[j - 1]) throw std::invalid_argument("Pwl2: v axis not increasing");
  }
}

Pwl2::Cell Pwl2::locate(double x, double v) const {
  const double xc = std::clamp(x, xs_.front(), xs_.back());
  const double vc = std::clamp(v, vs_.front(), vs_.back());
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(xs_.begin(), xs_.end() - 1, xc) - xs_.begin());
  std::size_t j = static_cast<std::size_t>(
      std::upper_bound(vs_.begin(), vs_.end() - 1, vc) - vs_.begin());
  i = std::max<std::size_t>(i, 1);
  j = std::max<std::size_t>(j, 1);
  const double wx = (xc - xs_[i - 1]) / (xs_[i] - xs_[i - 1]);
  const double wv = (vc - vs_[j - 1]) / (vs_[j] - vs_[j - 1]);
  return {i, j, wx, wv};
}

double Pwl2::operator()(double x, double v) const {
  const Cell c = locate(x, v);
  const double f00 = at(c.i - 1, c.j - 1);
  const double f10 = at(c.i, c.j - 1);
  const double f01 = at(c.i - 1, c.j);
  const double f11 = at(c.i, c.j);
  return (1 - c.wx) * (1 - c.wv) * f00 + c.wx * (1 - c.wv) * f10 +
         (1 - c.wx) * c.wv * f01 + c.wx * c.wv * f11;
}

double Pwl2::d_dx(double x, double v) const {
  if (x <= xs_.front() || x >= xs_.back()) return 0.0;  // clamped
  const Cell c = locate(x, v);
  const double dx = xs_[c.i] - xs_[c.i - 1];
  const double low = (at(c.i, c.j - 1) - at(c.i - 1, c.j - 1)) / dx;
  const double high = (at(c.i, c.j) - at(c.i - 1, c.j)) / dx;
  return (1 - c.wv) * low + c.wv * high;
}

double Pwl2::d_dv(double x, double v) const {
  if (v <= vs_.front() || v >= vs_.back()) return 0.0;
  const Cell c = locate(x, v);
  const double dv = vs_[c.j] - vs_[c.j - 1];
  const double low = (at(c.i - 1, c.j) - at(c.i - 1, c.j - 1)) / dv;
  const double high = (at(c.i, c.j) - at(c.i, c.j - 1)) / dv;
  return (1 - c.wx) * low + c.wx * high;
}

Pwl2 force_model(const ExtractionTable& table) {
  std::vector<double> values;
  values.reserve(table.samples.size());
  for (std::size_t i = 0; i < table.displacements.size(); ++i) {
    for (std::size_t j = 0; j < table.voltages.size(); ++j) {
      values.push_back(table.at(i, j).force_mst);
    }
  }
  return Pwl2(table.displacements, table.voltages, std::move(values));
}

PwlForceTransducer::PwlForceTransducer(std::string name, int a, int b, int c, int d,
                                       Pwl1 cap_of_x, Pwl2 force_of_xv)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      c_(c),
      d_(d),
      cap_(std::move(cap_of_x)),
      force_(std::move(force_of_xv)) {}

void PwlForceTransducer::bind(spice::Binder& binder) {
  binder.require_nature(a_, Nature::electrical, name());
  binder.require_nature(b_, Nature::electrical, name());
  binder.require_nature(c_, Nature::mechanical_translation, name());
  binder.require_nature(d_, Nature::mechanical_translation, name());
}

void PwlForceTransducer::start_transient(const DVector& x_dc) {
  const double uc = c_ < 0 ? 0.0 : x_dc[static_cast<std::size_t>(c_)];
  const double ud = d_ < 0 ? 0.0 : x_dc[static_cast<std::size_t>(d_)];
  xstate_.start(uc - ud);
}

void PwlForceTransducer::accept(const spice::AcceptCtx& ctx) {
  xstate_.accept(ctx.v(c_) - ctx.v(d_), ctx);
}

bool PwlForceTransducer::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {a_, b_, c_, d_});
  return true;
}

void PwlForceTransducer::evaluate(spice::EvalCtx& ctx) {
  const double volt = ctx.v(a_) - ctx.v(b_);
  const double u = ctx.v(c_) - ctx.v(d_);
  const double x = xstate_.value(u, ctx);
  const double sl = xstate_.slope(ctx);

  // Electrical port from the C(x) table (same as PwlTransducer).
  const double cap = cap_(x);
  const double dcap = cap_.slope(x);
  const double qe = cap * volt;
  ctx.q_add(a_, qe);
  ctx.q_add(b_, -qe);
  ctx.jq_add(a_, a_, cap);
  ctx.jq_add(a_, b_, -cap);
  ctx.jq_add(b_, a_, -cap);
  ctx.jq_add(b_, b_, cap);
  const double dq_dx = dcap * volt;
  ctx.jq_add(a_, c_, dq_dx * sl);
  ctx.jq_add(a_, d_, -dq_dx * sl);
  ctx.jq_add(b_, c_, -dq_dx * sl);
  ctx.jq_add(b_, d_, dq_dx * sl);

  // Mechanical port from the F(x, V) table. The extracted table holds the
  // force for V >= 0; electrostatic force is even in V, so evaluate at |V|.
  const double va = std::abs(volt);
  const double f = force_(x, va);
  const double sign_v = volt >= 0.0 ? 1.0 : -1.0;
  const double df_dv = force_.d_dv(x, va) * sign_v;
  const double df_dx = force_.d_dx(x, va);
  ctx.f_add(c_, -f);
  ctx.f_add(d_, +f);
  ctx.jf_add(c_, a_, -df_dv);
  ctx.jf_add(c_, b_, +df_dv);
  ctx.jf_add(c_, c_, -df_dx * sl);
  ctx.jf_add(c_, d_, +df_dx * sl);
  ctx.jf_add(d_, a_, +df_dv);
  ctx.jf_add(d_, b_, -df_dv);
  ctx.jf_add(d_, c_, +df_dx * sl);
  ctx.jf_add(d_, d_, -df_dx * sl);
}

std::vector<double> polyfit(const std::vector<double>& x, const std::vector<double>& y,
                            int degree) {
  if (x.size() != y.size() || x.empty())
    throw std::invalid_argument("polyfit: mismatched samples");
  if (degree < 0 || static_cast<std::size_t>(degree) + 1 > x.size())
    throw std::invalid_argument("polyfit: degree too high for sample count");
  const std::size_t m = x.size();
  const std::size_t n = static_cast<std::size_t>(degree) + 1;
  DMatrix a(m, n);
  for (std::size_t r = 0; r < m; ++r) {
    double p = 1.0;
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = p;
      p *= x[r];
    }
  }
  return least_squares(a, y);
}

double polyval(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::string generate_hdl_model(const ExtractionTable& table, int poly_degree) {
  std::vector<double> xs;
  std::vector<double> cs;
  for (std::size_t i = 0; i < table.displacements.size(); ++i) {
    xs.push_back(table.displacements[i]);
    cs.push_back(table.at(i, 0).capacitance);
  }
  // Fit in a normalized coordinate (x/gap0) for conditioning.
  const double scale = table.setup.gap0;
  std::vector<double> xn(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xn[i] = xs[i] / scale;
  const std::vector<double> c = polyfit(xn, cs, poly_degree);

  // cap(x) = c0 + c1*(x/s) + c2*(x/s)^2 + ...; dcap/dx emitted analytically.
  std::ostringstream cap_expr;
  std::ostringstream dcap_expr;
  cap_expr.precision(12);
  dcap_expr.precision(12);
  for (std::size_t k = 0; k < c.size(); ++k) {
    if (k > 0) cap_expr << " + ";
    cap_expr << std::scientific << c[k];
    for (std::size_t p = 0; p < k; ++p) cap_expr << "*xn";
  }
  bool first = true;
  for (std::size_t k = 1; k < c.size(); ++k) {
    if (!first) dcap_expr << " + ";
    first = false;
    dcap_expr << std::scientific << (static_cast<double>(k) * c[k] / scale);
    for (std::size_t p = 0; p + 1 < k; ++p) dcap_expr << "*xn";
  }
  if (first) dcap_expr << "0.0";

  std::ostringstream os;
  os << "-- generated by usys::pxt from a " << table.displacements.size() << "x"
     << table.voltages.size() << " FE extraction sweep\n"
     << "-- C(x) fitted with a degree-" << poly_degree
     << " polynomial in xn = x/" << str_format("%.6e", scale) << "\n";
  os << "ENTITY pxt_etrans IS\n";
  os << "  GENERIC (xscale : analog := " << str_format("%.12e", scale) << ");\n";
  os << "  PIN (a, b : electrical; c, d : mechanical1);\n";
  os << "END ENTITY pxt_etrans;\n\n";
  os << "ARCHITECTURE pxt OF pxt_etrans IS\n";
  os << "  VARIABLE x, xn, cap, dcap : analog;\n";
  os << "  STATE V, S : analog;\n";
  os << "BEGIN\n  RELATION\n";
  os << "    PROCEDURAL FOR ac, transient =>\n";
  os << "      V := [a, b].v;\n";
  os << "      S := [c, d].tv;\n";
  os << "      x := integ(S);\n";
  os << "      xn := x/xscale;\n";
  os << "      cap := " << cap_expr.str() << ";\n";
  os << "      dcap := " << dcap_expr.str() << ";\n";
  os << "      [a, b].i %= cap*ddt(V) + dcap*S*V;\n";
  os << "      [c, d].f %= -0.5*V*V*dcap;\n";
  os << "  END RELATION;\nEND ARCHITECTURE pxt;\n";
  return os.str();
}

}  // namespace usys::pxt
