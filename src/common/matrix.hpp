// Small dense linear-algebra kernel used by the MNA solver and fitting code.
//
// Circuits in this library are small (tens of unknowns), so a dense
// row-major matrix with LU + partial pivoting is the right tool; the FEM
// module has its own sparse CSR path. Complex variants back the AC analysis.
#pragma once

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace usys {

/// Dense row-major matrix of T (double or std::complex<double>).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  T& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Sets every entry to `value` (used to reset the Jacobian between Newton
  /// iterations without reallocating).
  void fill(T value) {
    for (auto& x : data_) x = value;
  }

  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  const std::vector<T>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using DMatrix = Matrix<double>;
using ZMatrix = Matrix<std::complex<double>>;
using DVector = std::vector<double>;
using ZVector = std::vector<std::complex<double>>;

/// Thrown when a linear solve encounters a (numerically) singular matrix.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t pivot_row)
      : std::runtime_error("singular matrix at pivot row " + std::to_string(pivot_row)),
        pivot_row_(pivot_row) {}
  std::size_t pivot_row() const noexcept { return pivot_row_; }

 private:
  std::size_t pivot_row_;
};

/// In-place LU factorization with partial pivoting; solves A x = b.
/// A and b are overwritten; on return b holds x. Throws SingularMatrixError.
void lu_solve(DMatrix& a, DVector& b);
void lu_solve(ZMatrix& a, ZVector& b);

/// Least-squares solve min ||A x - b||_2 via normal equations with
/// Tikhonov damping (used by the rational-fit code where A is tall).
DVector least_squares(const DMatrix& a, const DVector& b, double damping = 0.0);

/// Euclidean norm.
double norm2(const DVector& v);

/// Infinity norm.
double norm_inf(const DVector& v);

/// c = a - b (sizes must match).
DVector subtract(const DVector& a, const DVector& b);

/// Dot product.
double dot(const DVector& a, const DVector& b);

}  // namespace usys
