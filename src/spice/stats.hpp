// StatsAccumulator + stats JSONL — the statistics half of the Monte Carlo
// sweep engine (docs/sweeps.md).
//
// MetricStats distills one metric's per-point samples into
// count/mean/stddev/min/max and sorted-exact quantiles. StatsRun is the
// document model for the stats JSONL file a sweep writes: a header line,
// one line per executed point (global index, drawn parameters, metric
// values, pass/fail), and recomputed summary lines. Because summaries are
// always recomputed from the point records in global-index order with a
// fixed algorithm and %.17g round-trip printing, merging per-shard files
// (`usim --merge-stats`) reproduces the single-process file byte for byte —
// the acceptance contract the determinism tests pin.
//
// Yield is evaluated against `.measure`-style bounds: a point passes when
// it simulated ok and every measure's metric lies inside [min, max].
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "spice/sweep.hpp"

namespace usys::spice {

/// One `.measure <label> <metric> [min=v] [max=v]` bound.
struct MeasureSpec {
  std::string label;
  std::string metric;
  double lo = 0.0;
  double hi = 0.0;
  bool has_lo = false;
  bool has_hi = false;
};

/// True when `metrics` contains `m.metric` with a finite value inside the
/// bounds. A missing or non-finite metric fails the measure.
bool measure_passes(
    const std::vector<std::pair<std::string, double>>& metrics,
    const MeasureSpec& m) noexcept;

/// True when every measure passes (trivially true with no measures).
bool measures_pass(
    const std::vector<std::pair<std::string, double>>& metrics,
    const std::vector<MeasureSpec>& measures) noexcept;

struct QuantilePoint {
  double q = 0.0;
  double value = 0.0;
};

/// Distilled statistics for one metric.
struct MetricSummary {
  std::string name;
  long n = 0;  ///< finite samples
  double mean = 0.0;
  double stddev = 0.0;  ///< sample stddev (n-1); 0 when n < 2
  double min = 0.0;
  double max = 0.0;
  std::vector<QuantilePoint> quantiles;
};

/// Exact streaming accumulator for one metric. Samples are kept (Monte
/// Carlo runs are at most millions of doubles) so quantiles are
/// sorted-exact rather than approximated, and every statistic is computed
/// by a deterministic insertion-order pass — identical input order gives
/// bit-identical output, which is what makes shard-merge reproducible.
class MetricStats {
 public:
  /// Adds one sample; non-finite values are ignored (a failed point's NaN
  /// must not poison the distribution).
  void add(double v);

  long count() const noexcept { return static_cast<long>(samples_.size()); }
  double mean() const;
  double stddev() const;  ///< two-pass sample stddev (n-1)
  double min_value() const;
  double max_value() const;

  /// Sorted-exact quantile with linear interpolation between closest ranks
  /// (numpy's default, type 7): q in [0,1]. 0 with no samples.
  double quantile(double q) const;

  MetricSummary summary(const std::string& name,
                        const std::vector<double>& qs) const;

 private:
  std::vector<double> samples_;
};

/// The quantile levels reported in summaries and stats files.
const std::vector<double>& default_quantiles();

/// One executed point in a stats run.
struct StatsPoint {
  long index = -1;
  SweepPoint point;
  bool ok = false;
  bool pass = false;  ///< ok && all measures pass
  std::vector<std::pair<std::string, double>> metrics;
};

struct YieldSummary {
  long n = 0;     ///< executed points
  long ok = 0;    ///< simulated successfully
  long pass = 0;  ///< ok && inside every measure bound
  double yield = 0.0;  ///< pass / n (0 when n == 0)
  /// Per-measure failure counts among ok points, in measure order.
  std::vector<std::pair<std::string, long>> measure_failures;
};

/// The stats JSONL document: run identity (seed, grid size, mc draws,
/// shard), the measure bounds, and every executed point keyed by global
/// index. Summaries are derived, never stored authoritative state.
struct StatsRun {
  std::string seed_text = "0";  ///< decimal uint64 as text (exact on the wire)
  long total_points = 0;        ///< full grid size (all shards)
  int mc = 1;                   ///< Monte Carlo draws per grid combination
  int shard_index = 0;          ///< 0/0 = full run (canonical/merged form)
  int shard_count = 0;
  std::vector<MeasureSpec> measures;
  std::map<long, StatsPoint> points;

  /// Records one executed outcome (skipped points are not recorded).
  void add_outcome(long index, const SweepPoint& point,
                   const SweepOutcome& outcome);

  /// Per-metric summaries over all recorded points, metrics in first-seen
  /// order over ascending point index.
  std::vector<MetricSummary> metric_summaries() const;

  YieldSummary yield() const;

  /// Serializes the canonical JSONL document (header, points in index
  /// order, metric summaries, yield).
  std::string to_jsonl() const;
};

/// Writes run.to_jsonl() atomically (tmp + rename).
bool write_stats(const std::string& path, const StatsRun& run,
                 std::string* error = nullptr);

/// Parses a stats JSONL file (header + point lines; summary lines are
/// ignored — they are recomputed on write).
bool load_stats(const std::string& path, StatsRun& run,
                std::string* error = nullptr);

/// Merges per-shard stats files into one canonical run: headers must agree
/// on seed/points/mc/measures, point records union by index (last file
/// wins on duplicates, as in the checkpoint journal), and the result is
/// marked unsharded so its serialization is byte-identical to a
/// single-process run over the same grid.
bool merge_stats(const std::vector<std::string>& inputs, StatsRun& out,
                 std::string* error = nullptr);

}  // namespace usys::spice
