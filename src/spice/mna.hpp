// Sparse pattern-cached MNA assembly, serial or deterministically parallel.
//
// The stamp structure of a bound circuit is fixed: every device touches the
// same (row, col) Jacobian entries on every Newton iteration and timestep.
// This layer exploits that once, up front:
//
//   * MnaPattern — at bind time each device registers its stamp footprint
//     (Device::stamp_footprint); the union of all footprint x footprint
//     blocks plus the gmin diagonal is compiled into a CSR layout, and each
//     device gets a precomputed local-slot table mapping its (row, col)
//     pairs to flat value indices.
//   * MnaAssembler — per-iteration assembly is then pure scatter writes
//     into two flat value arrays (Jf, Jq): no n x n zero-fill, no
//     reallocation, no search on the hot path. The values arrays share the
//     pattern's CSR layout, so they feed SparseLu (common/sparse_lu.hpp)
//     directly — and the combined Newton matrix Jf + a0*Jq is a single
//     O(nnz) vector fuse.
//
// Parallel assembly (assembly threads > 1) splits one stamp pass into two
// phases over a persistent thread pool:
//   1. evaluate — devices are chunked across threads; each device is
//      evaluated exactly ONCE (so stateful devices like the HDL bytecode VM
//      never race) into a private per-device value block (its k*k Jacobian
//      block plus k-long f/q vectors), captured via SparseStampSink's
//      block mode;
//   2. gather — each CSR slot / residual row is an ordered reduction over a
//      precompiled source list that visits contributions in DEVICE ORDER,
//      i.e. exactly the accumulation order of the serial scatter loop.
// Slot/row ranges are disjoint across threads, so the result is
// deterministic AND bit-identical to the serial path for any thread count
// (up to devices that stamp one entry twice in a single evaluate — none of
// the in-tree devices do). The parallel path requires every stamp to stay
// inside its device's declared footprint (no cross-footprint CSR escape);
// violations throw, as in serial mode.
//
// Devices that cannot (or do not) declare a footprint mark the pattern
// incomplete, which keeps the whole circuit on the dense fallback path —
// correctness never depends on footprint declarations being present, only
// the sparse speedup does.
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "spice/circuit.hpp"

namespace usys::spice {

/// The union stamp pattern of a bound circuit, compiled to CSR, with
/// per-device precomputed value-slot tables. Build via Circuit::mna_pattern()
/// (cached) rather than constructing directly.
class MnaPattern {
 public:
  /// Requires a bound circuit (throws CircuitError otherwise).
  explicit MnaPattern(const Circuit& circuit);

  /// True when every device declared a footprint; false disables sparse.
  bool complete() const noexcept { return complete_; }
  int size() const noexcept { return n_; }
  std::size_t nonzeros() const noexcept { return col_idx_.size(); }
  const std::vector<int>& row_ptr() const noexcept { return row_ptr_; }
  const std::vector<int>& col_idx() const noexcept { return col_idx_; }

  /// Flat value slot of entry (r, c); -1 when outside the pattern.
  int slot(int r, int c) const noexcept;
  /// Flat value slot of diagonal entry (i, i) — always present.
  int diag_slot(int i) const noexcept { return diag_slot_[static_cast<std::size_t>(i)]; }

  /// One entry per circuit device, in Circuit::devices() order.
  struct DeviceFootprint {
    std::vector<int> unknowns;  ///< sorted + deduped, ground filtered out
    std::vector<int> slots;     ///< k*k table: local (row, col) -> flat slot
  };
  const std::vector<DeviceFootprint>& footprints() const noexcept { return footprints_; }

 private:
  int n_ = 0;
  bool complete_ = false;
  std::vector<int> row_ptr_, col_idx_, diag_slot_;
  std::vector<DeviceFootprint> footprints_;
};

/// Per-iteration sparse stamp pass over all devices. Owns the flat Jf/Jq
/// value arrays (CSR layout of the pattern) and the scatter workspace; all
/// storage — including the parallel-mode per-device blocks, gather lists,
/// and thread pool — is allocated once at construction.
class MnaAssembler {
 public:
  /// The pattern must be complete() and outlive the assembler. `threads`
  /// selects the assembly parallelism: 1 or negative = serial, 0 = auto
  /// (hardware concurrency), N = exactly N. When `shared_pool` is non-null
  /// the assembler fans out over it instead of creating its own (the solver
  /// shares one pool between assembly and the threaded triangular solves);
  /// the pool must outlive the assembler.
  MnaAssembler(Circuit& circuit, const MnaPattern& pattern, int threads = 1,
               ThreadPool* shared_pool = nullptr);

  /// One stamp pass at iterate `x`: fills f, q and the flat Jf/Jq values.
  /// Does NOT apply gmin (that is solver policy — see NewtonSolver).
  /// Throws CircuitError if any device stamps outside the pattern (serial)
  /// or outside its own declared footprint (parallel).
  void assemble(const EvalCtx& ctx_proto, const DVector& x, DVector& f, DVector& q);

  const MnaPattern& pattern() const noexcept { return pattern_; }
  const std::vector<double>& jf_values() const noexcept { return jf_vals_; }
  const std::vector<double>& jq_values() const noexcept { return jq_vals_; }

  /// Threads the assemble() pass actually uses (>= 1).
  int assembly_threads() const noexcept { return threads_; }

  /// Adds to the Jf diagonal of unknown `i` (the solver's gmin hook).
  void add_diag_jf(int i, double v) noexcept {
    jf_vals_[static_cast<std::size_t>(pattern_.diag_slot(i))] += v;
  }

 private:
  void assemble_serial(const EvalCtx& ctx_proto, const DVector& x, DVector& f, DVector& q);
  void assemble_parallel(const EvalCtx& ctx_proto, const DVector& x, DVector& f,
                         DVector& q);
  void compile_parallel();

  Circuit& circuit_;
  const MnaPattern& pattern_;
  std::vector<double> jf_vals_, jq_vals_;
  std::vector<int> local_of_;  ///< global unknown -> active device local idx (serial)
  SparseStampSink sink_;
  int threads_ = 1;

  // --- parallel-mode state (empty when threads_ == 1) -----------------------
  std::unique_ptr<ThreadPool> pool_;    ///< owned pool (no shared_pool given)
  ThreadPool* shared_pool_ = nullptr;   ///< externally owned, if provided
  ThreadPool& pool() noexcept { return shared_pool_ ? *shared_pool_ : *pool_; }
  std::vector<std::size_t> dev_block_off_;  ///< device -> offset into dev_jf_/dev_jq_
  std::vector<std::size_t> dev_vec_off_;    ///< device -> offset into dev_f_/dev_q_
  std::vector<double> dev_jf_, dev_jq_;     ///< per-device k*k capture blocks
  std::vector<double> dev_f_, dev_q_;       ///< per-device k-long f/q captures
  std::vector<int> iota_slots_;             ///< identity slot table (size max_k^2)
  std::vector<int> slot_gather_ptr_;        ///< CSR slot -> range in slot_gather_src_
  std::vector<int> slot_gather_src_;        ///< indices into dev_jf_/dev_jq_, device order
  std::vector<int> row_gather_ptr_;         ///< row -> range in row_gather_src_
  std::vector<int> row_gather_src_;         ///< indices into dev_f_/dev_q_, device order
  std::vector<std::vector<int>> tl_local_of_;  ///< per-chunk local_of scratch
  std::vector<long> tl_missed_;                ///< per-chunk missed counters
};

}  // namespace usys::spice
