#include "hdl/codegen.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/fault_inject.hpp"
#include "common/log.hpp"

namespace usys::hdl::codegen {

namespace fs = std::filesystem;

namespace {

/// Bumping this invalidates every cached object (it is hashed with the
/// source), so emission changes can never collide with stale binaries.
constexpr const char* kVersionTag = "usys-hdl-codegen v1";

std::string i2s(long v) { return std::to_string(v); }

/// Register-value and gradient-component local names.
std::string rv(int r) {
  std::string s("v");
  s += std::to_string(r);
  return s;
}
std::string rg(int r, int s) {
  std::string n("g");
  n += std::to_string(r);
  n += '_';
  n += std::to_string(s);
  return n;
}

/// Exact double literal (hexfloat round-trips bit for bit).
std::string dlit(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Emits one translation unit's worth of a BytecodeProgram.
class Emitter {
 public:
  explicit Emitter(const BytecodeProgram& p) : p_(p), S_(p.n_seeds) {}

  std::string run() {
    out_.reserve(1 << 14);
    add("// ", kVersionTag, " — machine-generated, do not edit\n");
    add("// entity: ", p_.entity_name, "\n");
    add("// seeds=", i2s(S_), " frame=", i2s(p_.n_frame), " regs=", i2s(p_.n_regs),
        " ddt=", i2s(p_.ddt_sites), " integ=", i2s(p_.integ_sites),
        " asserts=", i2s(static_cast<long>(p_.assert_lines.size())), "\n");
    add("#include <cmath>\n\n");
    add("extern \"C\" {\n\n");
    // Textual twin of codegen::CgIo — keep the field order in sync.
    add("typedef struct {\n"
        "  const double* xs;\n"
        "  const double* frame;\n"
        "  double c0;\n"
        "  double c1;\n"
        "  double* ddt;\n"
        "  double* integ;\n"
        "  double* f_out;\n"
        "  double* j_out;\n"
        "  int* fired_sites;\n"
        "  double* fired_vals;\n"
        "  int* n_fired;\n"
        "} usys_cg_io;\n\n");
    function("usys_cg_dc", p_.dc_code, HdlPass::dc, /*stamps=*/true);
    function("usys_cg_dcddt", p_.dc_code, HdlPass::dc_ddt, /*stamps=*/true);
    function("usys_cg_tran", p_.tran_code, HdlPass::transient, /*stamps=*/true);
    function("usys_cg_commit", p_.commit_code, HdlPass::commit, /*stamps=*/false);
    add("}  // extern \"C\"\n");
    return std::move(out_);
  }

 private:
  template <typename... Parts>
  void add(Parts&&... parts) {
    (out_.append(parts), ...);
  }

  /// `gline(dst, expr-of-s)` emits one unrolled gradient assignment per seed.
  template <typename ExprFn>
  void gline(int dst, ExprFn&& expr) {
    for (int s = 0; s < S_; ++s) add("  ", rg(dst, s), " = ", expr(s), ";\n");
  }

  void function(const char* name, const std::vector<Insn>& code, HdlPass pass,
                bool stamps) {
    add("void ", name, "(usys_cg_io* io) {\n");
    add("  const double* xs = io->xs; (void)xs;\n");
    add("  const double* fr = io->frame; (void)fr;\n");
    add("  double* F = io->f_out; (void)F;\n");
    add("  double* J = io->j_out; (void)J;\n");
    add("  const double c0 = io->c0; (void)c0;\n");
    add("  const double c1 = io->c1; (void)c1;\n");
    add("  double* dd = io->ddt; (void)dd;\n");
    add("  double* ii = io->integ; (void)ii;\n");
    if (pass == HdlPass::commit) {
      add("  int* fs = io->fired_sites; (void)fs;\n");
      add("  double* fv = io->fired_vals; (void)fv;\n");
      add("  int* nf = io->n_fired; (void)nf;\n");
    }
    // Frame registers start from the instance's elaborated init values (the
    // VM copies frame_init the same way); temporaries are always written
    // before being read, the zero init just keeps the TU warning-free.
    for (int r = 0; r < p_.n_regs; ++r) {
      if (r < p_.n_frame) {
        add("  double ", rv(r), " = fr[", i2s(r), "];");
      } else {
        add("  double ", rv(r), " = 0.0;");
      }
      for (int s = 0; s < S_; ++s) add(" double ", rg(r, s), " = 0.0;");
      add("\n");
    }
    for (const Insn& in : code) insn(in, pass, stamps);
    add("}\n\n");
  }

  void insn(const Insn& in, HdlPass pass, bool stamps) {
    const int S = S_;
    switch (in.op) {
      case Op::kconst: {
        add("  ", rv(in.dst), " = ", dlit(p_.constants[static_cast<std::size_t>(in.a)]),
            ";\n");
        gline(in.dst, [](int) { return std::string("0.0"); });
        break;
      }
      case Op::copy: {
        add("  ", rv(in.dst), " = ", rv(in.a), ";\n");
        gline(in.dst, [&](int s) { return rg(in.a, s); });
        break;
      }
      case Op::read_across: {
        // Mirrors the VM: v = 0; if (a) v += x[a]; if (c) v -= x[c]. The
        // value reads go through the seed-gathered xs block (in.a >= 0 iff
        // in.b >= 0: every non-ground node is seeded).
        std::string expr("0.0");
        if (in.b >= 0 && in.d >= 0) {
          expr = "xs[" + i2s(in.b) + "] - xs[" + i2s(in.d) + "]";
        } else if (in.b >= 0) {
          expr = "xs[" + i2s(in.b) + "]";
        } else if (in.d >= 0) {
          expr = "0.0 - xs[" + i2s(in.d) + "]";
        }
        add("  ", rv(in.dst), " = ", expr, ";\n");
        gline(in.dst, [&](int s) {
          double g = 0.0;
          if (s == in.b) g += 1.0;
          if (s == in.d) g -= 1.0;
          return dlit(g);
        });
        break;
      }
      case Op::read_branch: {
        const char* sgn = in.c > 0 ? "" : "-";
        add("  ", rv(in.dst), " = ", sgn, "xs[", i2s(in.b), "];\n");
        gline(in.dst,
              [&](int s) { return s == in.b ? dlit(static_cast<double>(in.c)) : "0.0"; });
        break;
      }
      case Op::neg: {
        add("  { const double a = ", rv(in.a), ";\n");
        gline(in.dst, [&](int s) { return "-" + rg(in.a, s); });
        add("  ", rv(in.dst), " = -a; }\n");
        break;
      }
      case Op::add:
      case Op::sub: {
        const char* op = in.op == Op::add ? " + " : " - ";
        add("  { const double a = ", rv(in.a), ", b = ", rv(in.b), ";\n");
        gline(in.dst, [&](int s) { return rg(in.a, s) + op + rg(in.b, s); });
        add("  ", rv(in.dst), " = a", op, "b; }\n");
        break;
      }
      case Op::mul: {
        add("  { const double a = ", rv(in.a), ", b = ", rv(in.b), ";\n");
        gline(in.dst, [&](int s) { return rg(in.a, s) + " * b + a * " + rg(in.b, s); });
        add("  ", rv(in.dst), " = a * b; }\n");
        break;
      }
      case Op::div: {
        // Same formulas as sym::Dual::operator/ (and the VM) for bit parity.
        add("  { const double a = ", rv(in.a), ", b = ", rv(in.b), ";\n");
        add("  const double inv = 1.0 / b; const double rvv = a * inv;\n");
        gline(in.dst, [&](int s) { return "(" + rg(in.a, s) + " - rvv * " + rg(in.b, s) + ") * inv"; });
        add("  ", rv(in.dst), " = rvv; }\n");
        break;
      }
      case Op::pow: {
        add("  { const double a = ", rv(in.a), ", b = ", rv(in.b), ";\n");
        add("  const double f = std::pow(a, b);\n");
        add("  const double dfa = b * std::pow(a, b - 1.0);\n");
        add("  const double dfb = (a > 0.0) ? f * std::log(a) : 0.0;\n");
        gline(in.dst, [&](int s) { return "dfa * " + rg(in.a, s) + " + dfb * " + rg(in.b, s); });
        add("  ", rv(in.dst), " = f; }\n");
        break;
      }
      case Op::sin:
        unary("std::sin(a)", "std::cos(a)", in);
        break;
      case Op::cos:
        unary("std::cos(a)", "-std::sin(a)", in);
        break;
      case Op::tan:
        add("  { const double a = ", rv(in.a), ";\n");
        add("  const double cc = std::cos(a);\n");
        add("  const double f = std::tan(a); const double df = 1.0 / (cc * cc);\n");
        gline(in.dst, [&](int s) { return "df * " + rg(in.a, s); });
        add("  ", rv(in.dst), " = f; }\n");
        break;
      case Op::exp:
        unary("std::exp(a)", "f", in);
        break;
      case Op::log:
        unary("std::log(a)", "1.0 / a", in);
        break;
      case Op::sqrt:
        unary("std::sqrt(a)", "0.5 / f", in);
        break;
      case Op::abs:
        add("  { const double a = ", rv(in.a), ";\n");
        add("  const double df = a >= 0.0 ? 1.0 : -1.0;\n");
        gline(in.dst, [&](int s) { return "df * " + rg(in.a, s); });
        add("  ", rv(in.dst), " = std::abs(a); }\n");
        break;
      case Op::min:
      case Op::max: {
        // Piecewise selection: value and gradient follow the active branch.
        const char* cmp = in.op == Op::min ? " <= " : " >= ";
        add("  if (", rv(in.a), cmp, rv(in.b), ") {\n");
        add("  ", rv(in.dst), " = ", rv(in.a), ";\n");
        gline(in.dst, [&](int s) { return rg(in.a, s); });
        add("  } else {\n");
        add("  ", rv(in.dst), " = ", rv(in.b), ";\n");
        gline(in.dst, [&](int s) { return rg(in.b, s); });
        add("  }\n");
        break;
      }
      case Op::limit: {
        add("  if (", rv(in.a), " < ", rv(in.b), ") {\n");
        add("  ", rv(in.dst), " = ", rv(in.b), ";\n");
        gline(in.dst, [&](int s) { return rg(in.b, s); });
        add("  } else if (", rv(in.a), " > ", rv(in.c), ") {\n");
        add("  ", rv(in.dst), " = ", rv(in.c), ";\n");
        gline(in.dst, [&](int s) { return rg(in.c, s); });
        add("  } else {\n");
        add("  ", rv(in.dst), " = ", rv(in.a), ";\n");
        gline(in.dst, [&](int s) { return rg(in.a, s); });
        add("  }\n");
        break;
      }
      case Op::ddt: {
        const std::string st0 = "dd[" + i2s(2 * in.b) + "]";        // u_prev
        const std::string st1 = "dd[" + i2s(2 * in.b + 1) + "]";    // udot_prev
        switch (pass) {
          case HdlPass::dc:
            add("  ", rv(in.dst), " = 0.0;\n");
            gline(in.dst, [](int) { return std::string("0.0"); });
            break;
          case HdlPass::dc_ddt:
            // jq extraction: value 0 (u - u, NaN-preserving like the VM),
            // argument gradient passes with unit gain.
            add("  { const double u = ", rv(in.a), ";\n");
            gline(in.dst, [&](int s) { return rg(in.a, s); });
            add("  ", rv(in.dst), " = u - u; }\n");
            break;
          case HdlPass::transient:
          case HdlPass::commit:
            add("  { const double u = ", rv(in.a), ";\n");
            add("  const double a0 = 1.0 / c1;\n");
            add("  const double hist = (c0 > 0.0) ? (-a0 * ", st0, " - ", st1,
                ") : (-a0 * ", st0, ");\n");
            add("  const double r = u * a0 + hist;\n");
            gline(in.dst, [&](int s) { return rg(in.a, s) + " * a0"; });
            add("  ", rv(in.dst), " = r;\n");
            if (pass == HdlPass::commit) add("  ", st1, " = r; ", st0, " = u;\n");
            add("  }\n");
            break;
        }
        break;
      }
      case Op::integ: {
        const std::string s0 = "ii[" + i2s(3 * in.b) + "]";         // s0
        const std::string sp = "ii[" + i2s(3 * in.b + 1) + "]";     // s_prev
        const std::string ep = "ii[" + i2s(3 * in.b + 2) + "]";     // e_prev
        switch (pass) {
          case HdlPass::dc:
          case HdlPass::dc_ddt:
            add("  ", rv(in.dst), " = ", s0, ";\n");
            gline(in.dst, [](int) { return std::string("0.0"); });
            break;
          case HdlPass::transient:
          case HdlPass::commit:
            add("  { const double u = ", rv(in.a), ";\n");
            add("  const double r = u * c1 + (", sp, " + c0 * ", ep, ");\n");
            gline(in.dst, [&](int s) { return rg(in.a, s) + " * c1"; });
            add("  ", rv(in.dst), " = r;\n");
            if (pass == HdlPass::commit) add("  ", sp, " = r; ", ep, " = u;\n");
            add("  }\n");
            break;
        }
        break;
      }
      case Op::stamp_flow: {
        if (!stamps) break;  // commit pass evaluates, never stamps
        // Fused stamp: the freshly computed value/gradient row accumulates
        // straight into the seed-indexed residual / Jacobian block.
        if (in.b >= 0) {
          add("  F[", i2s(in.b), "] += ", rv(in.dst), ";\n");
          for (int s = 0; s < S; ++s)
            add("  J[", i2s(in.b * S + s), "] += ", rg(in.dst, s), ";\n");
        }
        if (in.d >= 0) {
          add("  F[", i2s(in.d), "] -= ", rv(in.dst), ";\n");
          for (int s = 0; s < S; ++s)
            add("  J[", i2s(in.d * S + s), "] -= ", rg(in.dst, s), ";\n");
        }
        break;
      }
      case Op::stamp_effort: {
        if (!stamps) break;
        const bool plus = in.c > 0;
        add("  F[", i2s(in.b), "] ", plus ? "+=" : "-=", " ", rv(in.dst), ";\n");
        for (int s = 0; s < S; ++s)
          add("  J[", i2s(in.b * S + s), "] ", plus ? "+=" : "-=", " ",
              rg(in.dst, s), ";\n");
        break;
      }
      case Op::assert_check: {
        if (pass != HdlPass::commit) break;
        add("  if (", rv(in.a), " <= 0.0) { const int k = *nf; fs[k] = ",
            i2s(in.b), "; fv[k] = ", rv(in.a), "; *nf = k + 1; }\n");
        break;
      }
    }
  }

  /// Common f/df unary shape: df may reference `a` and `f`.
  void unary(const char* fexpr, const char* dfexpr, const Insn& in) {
    add("  { const double a = ", rv(in.a), "; (void)a;\n");
    add("  const double f = ", fexpr, ";\n");
    add("  const double df = ", dfexpr, ";\n");
    gline(in.dst, [&](int s) { return "df * " + rg(in.a, s); });
    add("  ", rv(in.dst), " = f; }\n");
  }

  const BytecodeProgram& p_;
  const int S_;
  std::string out_;
};

// --- registry / cache --------------------------------------------------------

struct LoadedModel {
  CompiledModel fns;
  void* handle = nullptr;  // never dlclosed: entry points live process-long
};

struct Registry {
  std::mutex mu;
  std::map<std::uint64_t, std::unique_ptr<LoadedModel>> loaded;
  /// reset_for_test moves entries here instead of freeing them: devices
  /// created before a reset may still hold CompiledModel pointers.
  std::vector<std::unique_ptr<LoadedModel>> retired;
  std::set<std::uint64_t> failed;  ///< shapes that warned already
  std::string compiler_override;
  std::string cache_override;
  int probe = -1;  ///< -1 unknown, 0 unavailable, 1 ok (for current compiler)
  Stats stats;
};

Registry& reg() {
  static Registry r;
  return r;
}

std::string compiler_unlocked(const Registry& r) {
  if (!r.compiler_override.empty()) return r.compiler_override;
  if (const char* env = std::getenv("USYS_CODEGEN_CXX"); env != nullptr && *env != '\0')
    return env;
  return "c++";
}

std::string cache_dir_unlocked(const Registry& r) {
  if (!r.cache_override.empty()) return r.cache_override;
  if (const char* env = std::getenv("USYS_CODEGEN_CACHE"); env != nullptr && *env != '\0')
    return env;
  return "usys-codegen-cache";
}

/// Unique temp-file suffix: pid alone is not enough — two threads of one
/// process may race on the same shape (acquire() builds outside the
/// registry lock) and must not share temp paths.
std::string temp_suffix() {
  static std::atomic<unsigned> seq{0};
  std::string s(".tmp.");
  s += std::to_string(static_cast<long>(::getpid()));
  s += '.';
  s += std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  return s;
}

/// Writes `text` to `path` atomically (tmp + rename), so concurrent
/// writers sharing a cache dir never observe torn files.
bool write_file_atomic(const fs::path& path, const std::string& text) {
  std::error_code ec;
  fs::path tmp = path;
  tmp += temp_suffix();
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os << text;
    if (!os.flush()) return false;
  }
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
  return !ec;
}

std::string first_log_line(const fs::path& log) {
  std::ifstream is(log);
  std::string line;
  if (is && std::getline(is, line)) return line;
  return "(no compiler output captured)";
}

/// The compiler command and the cache paths are interpolated into a
/// std::system() line; refuse anything that the shell would interpret
/// (quotes, expansions, separators) instead of trying to quote it.
bool shell_safe(const std::string& s) {
  for (const char c : s) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) ||
                    c == ' ' || c == '.' || c == '_' || c == '/' || c == '+' ||
                    c == '-' || c == '=' || c == '~' || c == ',';
    if (!ok) return false;
  }
  return true;
}

/// Runs the host compiler on `cpp` producing `so` (via a temp + rename).
/// Returns an empty string on success, a diagnostic otherwise.
std::string compile_object(const std::string& cxx, const fs::path& cpp,
                           const fs::path& so) {
  if (!shell_safe(cxx) || !shell_safe(cpp.string()) || !shell_safe(so.string()))
    return "compiler command or cache path contains shell metacharacters";
  fs::path tmp_so = so;
  tmp_so += temp_suffix();
  fs::path log = so;
  log += ".log";
  // -ffp-contract=off: no FMA contraction, so the generated arithmetic stays
  // bit-identical to the VM's. -w: the TU is machine-generated; its warnings
  // land in the .log, never on the user's terminal.
  std::string cmd = cxx;
  cmd += " -O2 -fPIC -shared -ffp-contract=off -w -o \"";
  cmd += tmp_so.string();
  cmd += "\" \"";
  cmd += cpp.string();
  cmd += "\" > \"";
  cmd += log.string();
  cmd += "\" 2>&1";
  const int rc = std::system(cmd.c_str());
  std::error_code ec;
  if (rc != 0) {
    fs::remove(tmp_so, ec);
    std::string msg("compile failed (");
    msg += cxx;
    msg += "): ";
    msg += first_log_line(log);
    return msg;
  }
  fs::rename(tmp_so, so, ec);
  if (ec) {
    fs::remove(tmp_so, ec);
    return "could not move compiled object into the cache";
  }
  return {};
}

/// dlopens `so` and resolves the four entry points. Empty diagnostic on
/// success.
std::string load_object(const fs::path& so, LoadedModel& out) {
  void* h = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) {
    const char* err = ::dlerror();
    std::string msg("dlopen failed: ");
    msg += err != nullptr ? err : "(unknown)";
    return msg;
  }
  auto sym = [&](const char* name) {
    return reinterpret_cast<CompiledModel::Fn>(::dlsym(h, name));
  };
  out.fns.dc = sym("usys_cg_dc");
  out.fns.dc_ddt = sym("usys_cg_dcddt");
  out.fns.tran = sym("usys_cg_tran");
  out.fns.commit = sym("usys_cg_commit");
  if (out.fns.dc == nullptr || out.fns.dc_ddt == nullptr || out.fns.tran == nullptr ||
      out.fns.commit == nullptr) {
    ::dlclose(h);
    return "cached object is missing codegen entry points";
  }
  out.handle = h;
  return {};
}

/// Probe (under the registry lock): can the configured compiler build a
/// trivial shared object?
bool probe_compiler_locked(Registry& r) {
  if (r.probe >= 0) return r.probe == 1;
  const std::string cxx = compiler_unlocked(r);
  const fs::path dir = cache_dir_unlocked(r);
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path cpp = dir / "usys_cg_probe.cpp";
  const fs::path so = dir / "usys_cg_probe.so";
  if (ec || !write_file_atomic(cpp, "extern \"C\" int usys_cg_probe(void) { return 0; }\n")) {
    r.probe = 0;
    return false;
  }
  r.probe = compile_object(cxx, cpp, so).empty() ? 1 : 0;
  return r.probe == 1;
}

}  // namespace

std::string generate_source(const BytecodeProgram& p) { return Emitter(p).run(); }

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* b = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
}
void fnv_i64(std::uint64_t& h, std::int64_t v) { fnv_bytes(h, &v, sizeof v); }
void fnv_str(std::uint64_t& h, const std::string& s) {
  fnv_i64(h, static_cast<std::int64_t>(s.size()));
  fnv_bytes(h, s.data(), s.size());
}

}  // namespace

/// Zeroes the instruction fields the emitter never reads: the value-read and
/// stamp ops carry pre-resolved *global* unknown indices (in.a/in.c) that
/// are instance data — emission goes through the seed-slot fields only, so
/// two instances of one model on different nodes must hash identically
/// (CodegenCache.InstancesShareOneCompilation pins this).
Insn canonical_for_hash(Insn in) {
  switch (in.op) {
    case Op::read_across:
    case Op::stamp_flow:
      in.a = 0;
      in.c = 0;
      break;
    case Op::read_branch:
    case Op::stamp_effort:
      in.a = 0;  // branch unknown; the sign (in.c) stays — it is emitted
      break;
    default:
      break;
  }
  return in;
}

std::uint64_t shape_hash(const BytecodeProgram& p) {
  // Mirrors the inputs of Emitter exactly — extend this whenever emission
  // starts reading a new program field (shape_hash equality must keep
  // implying generate_source equality).
  std::uint64_t h = kFnvOffset;
  fnv_str(h, std::string(kVersionTag));
  fnv_str(h, p.entity_name);
  fnv_i64(h, p.n_seeds);
  fnv_i64(h, p.n_frame);
  fnv_i64(h, p.n_regs);
  fnv_i64(h, p.ddt_sites);
  fnv_i64(h, p.integ_sites);
  fnv_i64(h, static_cast<std::int64_t>(p.assert_lines.size()));
  fnv_i64(h, static_cast<std::int64_t>(p.constants.size()));
  fnv_bytes(h, p.constants.data(), p.constants.size() * sizeof(double));
  for (const std::vector<Insn>* seg : {&p.dc_code, &p.tran_code, &p.commit_code}) {
    fnv_i64(h, static_cast<std::int64_t>(seg->size()));
    for (const Insn& raw : *seg) {
      const Insn in = canonical_for_hash(raw);
      fnv_i64(h, static_cast<std::int64_t>(in.op));
      fnv_i64(h, in.dst);
      fnv_i64(h, in.a);
      fnv_i64(h, in.b);
      fnv_i64(h, in.c);
      fnv_i64(h, in.d);
    }
  }
  return h;
}

std::uint64_t source_hash(const std::string& source) {
  std::uint64_t h = kFnvOffset;
  fnv_bytes(h, source.data(), source.size());
  return h;
}

const CompiledModel* acquire(const BytecodeProgram& p) {
  // Injected compile failure: forces the VM fallback without poisoning the
  // registry's failed set, so the same shape compiles normally once the
  // site is disarmed.
  if (USYS_FAULT_POINT("codegen.compile")) {
    std::string msg("HDL codegen: entity '");
    msg += p.entity_name;
    msg += "': injected compile failure; falling back to the bytecode VM";
    log_warn(msg);
    return nullptr;
  }

  // Hash the program structure directly — the per-instance fast path must
  // not emit kilobytes of source just to look up the registry (arrays bind
  // thousands of instances of one shape).
  const std::uint64_t h = shape_hash(p);

  Registry& r = reg();
  std::string cxx;
  fs::path dir;
  {
    // Fast path + config snapshot under the lock; the slow build below runs
    // unlocked so two *different* shapes can compile concurrently. (Two
    // threads racing on the SAME shape both build — redundant but safe: the
    // on-disk protocol is tmp+rename, and the loser's handle is closed.)
    std::lock_guard<std::mutex> lock(r.mu);
    if (const auto it = r.loaded.find(h); it != r.loaded.end()) {
      ++r.stats.memory_hits;
      return &it->second->fns;
    }
    if (r.failed.count(h) != 0) return nullptr;  // warned once already
    if (!probe_compiler_locked(r)) {
      // Probe failures are cheap and shared; record + warn under the lock.
      r.failed.insert(h);
      ++r.stats.failures;
      std::string msg("HDL codegen: entity '");
      msg += p.entity_name;
      msg += "': no working host compiler ('";
      msg += compiler_unlocked(r);
      msg += "'); falling back to the bytecode VM";
      log_warn(msg);
      return nullptr;
    }
    cxx = compiler_unlocked(r);
    dir = cache_dir_unlocked(r);
  }

  // --- unlocked build: load from the disk cache or compile ---
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(h));
  std::string stem("usys_cg_");
  stem += hex;
  const fs::path cpp = dir / (stem + ".cpp");
  const fs::path so = dir / (stem + ".so");

  LoadedModel lm;
  lm.fns.hash = h;
  std::string err;
  bool from_disk = false;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    err = "cannot create cache dir '";
    err += dir.string();
    err += '\'';
  } else if (fs::exists(so, ec) && !ec &&
             (err = load_object(so, lm)).empty()) {
    // Disk-cache hit: the filename is the content hash, so a stale model
    // source can never alias a current one.
    from_disk = true;
  } else {
    if (!err.empty()) {
      // The cached object exists but is corrupt (interrupted writer,
      // toolchain change); rebuild it instead of crashing or falling back.
      std::string msg("HDL codegen: entity '");
      msg += p.entity_name;
      msg += "': cached object ";
      msg += so.string();
      msg += " unusable (";
      msg += err;
      msg += "); recompiling";
      log_warn(msg);
      fs::remove(so, ec);
      err.clear();
    }
    if (!write_file_atomic(cpp, generate_source(p))) {
      err = "cannot write generated source to '";
      err += cpp.string();
      err += '\'';
    } else if ((err = compile_object(cxx, cpp, so)).empty()) {
      err = load_object(so, lm);
    }
  }

  std::lock_guard<std::mutex> lock(r.mu);
  if (const auto it = r.loaded.find(h); it != r.loaded.end()) {
    // Another thread registered this shape while we were building.
    if (lm.handle != nullptr) ::dlclose(lm.handle);  // dlopen refcount drop
    ++r.stats.memory_hits;
    return &it->second->fns;
  }
  if (!err.empty()) {
    if (r.failed.insert(h).second) {
      ++r.stats.failures;
      std::string msg("HDL codegen: entity '");
      msg += p.entity_name;
      msg += "': ";
      msg += err;
      msg += "; falling back to the bytecode VM";
      log_warn(msg);
    }
    return nullptr;
  }
  if (from_disk) {
    ++r.stats.disk_hits;
  } else {
    ++r.stats.compiles;
  }
  auto [it, inserted] = r.loaded.emplace(h, std::make_unique<LoadedModel>(lm));
  (void)inserted;
  return &it->second->fns;
}

bool compiler_available() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return probe_compiler_locked(r);
}

void set_compiler(std::string cmd) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.compiler_override = std::move(cmd);
  r.probe = -1;
  r.failed.clear();  // a fixed compiler deserves a fresh attempt (and warning)
}

std::string compiler() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return compiler_unlocked(r);
}

void set_cache_dir(std::string dir) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  r.cache_override = std::move(dir);
  r.probe = -1;
  r.failed.clear();  // a usable cache dir deserves a fresh attempt
}

std::string cache_dir() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return cache_dir_unlocked(r);
}

Stats stats() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.stats;
}

void reset_for_test() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lock(r.mu);
  // Handles stay open and loaded entries are retired, not freed: HdlDevices
  // created before the reset may still hold entry pointers.
  for (auto& [h, lm] : r.loaded) r.retired.push_back(std::move(lm));
  r.loaded.clear();
  r.failed.clear();
  r.stats = Stats{};
  r.probe = -1;
}

}  // namespace usys::hdl::codegen
