#include "common/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace usys {

namespace {

/// Fills a sockaddr_un for `path`; false when the path exceeds sun_path.
bool make_addr(const std::string& path, sockaddr_un& addr) {
  if (path.size() >= sizeof addr.sun_path) return false;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// poll() one fd for `events`, retrying on EINTR. Returns revents, 0 on
/// timeout, -1 on error.
int poll_one(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;
    return p.revents;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// UnixConn
// ---------------------------------------------------------------------------

UnixConn::UnixConn(UnixConn&& other) noexcept
    : fd_(other.fd_), rbuf_(std::move(other.rbuf_)) {
  other.fd_ = -1;
}

UnixConn& UnixConn::operator=(UnixConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    rbuf_ = std::move(other.rbuf_);
    other.fd_ = -1;
  }
  return *this;
}

UnixConn UnixConn::connect_to(const std::string& path) {
  sockaddr_un addr;
  if (!make_addr(path, addr)) return UnixConn();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return UnixConn();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return UnixConn();
  }
  return UnixConn(fd);
}

bool UnixConn::read_line(std::string& line, int timeout_ms) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(rbuf_, 0, nl);
      rbuf_.erase(0, nl + 1);
      return true;
    }
    const int ev = poll_one(fd_, POLLIN, timeout_ms);
    if (ev <= 0) return false;  // timeout or poll error
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF with no complete line
    rbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool UnixConn::write_all(const char* data, std::size_t len) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < len) {
    // MSG_NOSIGNAL: a peer that disconnected mid-stream must surface as a
    // failed write (job cancellation), not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool UnixConn::peer_hung_up() const {
  if (fd_ < 0) return true;
  const int ev = poll_one(fd_, POLLIN, 0);
  if (ev < 0) return true;
  if (ev == 0) return false;
  if (ev & (POLLHUP | POLLERR | POLLNVAL)) return true;
  if (ev & POLLIN) {
    // Readable can mean either pipelined request bytes or EOF; peek to tell
    // them apart without consuming anything the reader loop still wants.
    char probe;
    const ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return true;                                   // orderly EOF
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      return true;                                             // reset
  }
  return false;
}

void UnixConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

// ---------------------------------------------------------------------------
// UnixListener
// ---------------------------------------------------------------------------

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

bool UnixListener::listen_on(const std::string& path, std::string* error) {
  close();
  sockaddr_un addr;
  if (!make_addr(path, addr)) {
    if (error) *error = "socket path too long (max " +
                        std::to_string(sizeof addr.sun_path - 1) + " bytes): " + path;
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error) *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  ::unlink(path.c_str());  // stale socket from a previous daemon run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error) *error = "bind(" + path + "): " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error) *error = "listen(" + path + "): " + std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  fd_ = fd;
  path_ = path;
  return true;
}

UnixConn UnixListener::accept_conn(int timeout_ms) {
  if (fd_ < 0) return UnixConn();
  const int ev = poll_one(fd_, POLLIN, timeout_ms);
  if (ev <= 0 || !(ev & POLLIN)) return UnixConn();
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) return UnixConn(cfd);
    if (errno == EINTR) continue;
    return UnixConn();
  }
}

void UnixListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

}  // namespace usys
