// Semantic analysis & elaboration of HDL-AT models.
//
// Elaboration binds generic parameter values, resolves every identifier to a
// frame slot, every pin reference to a pin index, assigns state-site ids to
// ddt()/integ() call sites, and validates field/nature pairings. The result
// is a self-contained ElaboratedModel the interpreter executes without any
// name lookups (the paper's HDL-A compiler performed the same separation:
// parameterized models elaborated per instance).
//
// Contribution semantics ("%="):
//  * `[p,q].i %= e` / `[p,q].f %= e`: adds flow `e` *absorbed* at pin p
//    (leaving the net into the device) and released at q. `.i` requires
//    electrical pins, `.f` mechanical ones.
//  * `[p,q].v %= e`: effort contribution; the pin pair becomes a voltage-
//    defined branch with its own flow unknown (readable via `[p,q].i`).
//
// Port reads:
//  * `[p,q].v`  — across value (any nature; volts on electrical pins)
//  * `[p,q].tv` — across value on mechanical pins (translational velocity)
//  * `[p,q].i` / `[p,q].f` — branch flow; only legal on effort-contributed
//    pairs (a restriction of this implementation, diagnosed at elaboration).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hdl/ast.hpp"
#include "spice/circuit.hpp"

namespace usys::hdl {

/// Elaboration diagnostics are circuit errors: a model that fails semantic
/// analysis can never produce a valid device, so callers that guard device
/// construction with `catch (spice::CircuitError&)` see these too.
class ElabError : public spice::CircuitError {
 public:
  explicit ElabError(const std::string& what) : spice::CircuitError("HDL elaboration: " + what) {}
};

/// A fully resolved, instance-ready model.
struct ElaboratedModel {
  std::string entity_name;
  std::string architecture_name;
  std::vector<PinDecl> pins;

  /// Frame layout: [generics | variables]. Values in `init_frame` hold the
  /// generic bindings and the results of PROCEDURAL FOR init blocks.
  std::vector<std::string> slot_names;
  std::vector<double> init_frame;
  int generic_count = 0;

  /// Blocks with resolved expressions (init blocks already consumed).
  std::vector<ProceduralBlock> blocks;

  int ddt_site_count = 0;
  int integ_site_count = 0;
  int assert_site_count = 0;  ///< ASSERT statements (ids stored in Stmt::slot)

  /// Pin-index pairs carrying an effort contribution (branch unknowns).
  std::vector<std::pair<int, int>> effort_pairs;

  int pin_index(const std::string& name) const;  ///< -1 if absent

  /// Index into effort_pairs matching (p1, p2) in either orientation; -1 if
  /// absent. `forward` (optional) reports whether (p1, p2) matches the
  /// registered orientation — the sign convention every executor shares.
  int effort_pair_index(int p1, int p2, bool* forward = nullptr) const;
};

/// Elaborates `entity` from `unit` with the given generic bindings.
/// Missing generics fall back to declared defaults; unknown or unbound
/// generics throw. `unit` is consumed (statement ASTs are moved out).
ElaboratedModel elaborate(DesignUnit unit, const std::string& entity,
                          const std::map<std::string, double>& generics);

}  // namespace usys::hdl
