// General (non-SPD) sparse LU: Gilbert–Peierls left-looking factorization
// with partial pivoting, plus pattern-reusing numeric refactorization.
//
// Built for Newton / transient loops where the matrix PATTERN is fixed while
// the VALUES change every iteration:
//   * analyze()  — once per pattern: records the CSR layout and the
//     CSR-to-CSC slot mapping.
//   * factor()   — the first call runs the full pivoting factorization and
//     records the pivot order and the L/U patterns (the "symbolic"
//     factorization); later calls replay those patterns as pure numeric
//     refactorizations (no search, no allocation) and fall back to a fresh
//     pivoting factorization only if a reused pivot degrades.
//   * solve()    — forward/back substitution, in place.
//
// The FEM module's CsrMatrix + CG (fem/sparse.hpp) covers the SPD case;
// this solver covers the unsymmetric MNA systems of the circuit solver.
// Real and complex instantiations back DC/transient and AC respectively.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/matrix.hpp"  // SingularMatrixError

namespace usys {

template <typename T>
class SparseLu {
 public:
  /// Registers the (square, n x n) pattern in CSR form. Column indices must
  /// be sorted and unique within each row. Also computes a fill-reducing
  /// (minimum-degree on the symmetrized pattern) column elimination order —
  /// essential for MNA systems, whose branch unknowns sit far from their
  /// nodes in the natural layout. Resets any previous factorization and the
  /// symbolic counter.
  void analyze(int n, const std::vector<int>& row_ptr, const std::vector<int>& col_idx);

  bool analyzed() const noexcept { return n_ >= 0; }
  int size() const noexcept { return n_ < 0 ? 0 : n_; }
  std::size_t nonzeros() const noexcept { return csc_of_csr_.size(); }

  /// Numeric factorization of values laid out per the CSR pattern given to
  /// analyze(). Rows are max-scaled first (MNA systems mix natures whose
  /// magnitudes differ by many orders; scaling keeps pivot viability — and
  /// the refactorization degradation check — scale-free). Throws
  /// SingularMatrixError when no acceptable pivot exists.
  void factor(const std::vector<T>& csr_vals);

  bool factored() const noexcept { return factored_; }

  /// Forgets the recorded pivot order (keeps the analyzed pattern), so the
  /// next factor() runs a fresh pivot-searching factorization. Callers use
  /// this at analysis-phase boundaries where the matrix values change
  /// regime (e.g. DC -> transient) and a stale pivot order would either
  /// degrade or make results depend on solver history.
  void invalidate_pivot_order() noexcept { factored_ = false; }

  /// Solves A x = b in place (b holds x on return). Requires factor().
  void solve(std::vector<T>& b) const;

  /// Number of full (pivot-searching) factorizations since analyze().
  /// Steady-state Newton/transient/AC loops should hold this at 1.
  int symbolic_factorizations() const noexcept { return symbolic_count_; }

 private:
  void factor_full();
  bool refactor();  ///< false = reused pivot degraded; caller re-runs full
  int dfs_reach(int start, int top);
  void min_degree_order();

  int n_ = -1;

  // Pattern: CSC copy of the analyze()d CSR pattern plus the slot mapping.
  std::vector<int> col_ptr_, row_idx_;
  std::vector<int> csc_of_csr_;  ///< CSR slot -> CSC slot
  std::vector<T> csc_vals_;
  std::vector<int> q_;  ///< fill-reducing column order: pivotal j eliminates column q_[j]
  std::vector<double> rscale_;  ///< per-row 1/max applied to the factored values

  // Factorization (row indices in pivotal space once factored_ is set).
  // L is unit-lower with the diagonal stored explicitly as each column's
  // first entry; U stores each column's diagonal (the pivot) last.
  std::vector<int> pinv_;      ///< original row -> pivotal position
  std::vector<int> lp_, li_;   ///< L: col ptr / row idx
  std::vector<T> lx_;
  std::vector<int> up_, ui_;   ///< U: col ptr / row idx
  std::vector<T> ux_;
  bool factored_ = false;
  int symbolic_count_ = 0;

  // Scratch reused across factorizations/solves (no per-iteration allocs).
  std::vector<T> x_;
  std::vector<int> xi_, stack_, pstack_;
  std::vector<char> visited_;
  mutable std::vector<T> tmp_;
};

using DSparseLu = SparseLu<double>;
using ZSparseLu = SparseLu<std::complex<double>>;

}  // namespace usys
