// Tokenizer for HDL-AT, the analog hardware description language of this
// library (a reconstruction of the paper's HDL-A/HDL-ATM surface syntax:
// ENTITY/GENERIC/PIN/ARCHITECTURE/STATE/RELATION/PROCEDURAL, ':=' and '%='
// operators, '[a, b].v' port accesses, '--' comments).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace usys::hdl {

enum class Tok {
  identifier,   ///< case-insensitive keywords & names
  number,
  lparen,       ///< (
  rparen,       ///< )
  lbracket,     ///< [
  rbracket,     ///< ]
  comma,
  semicolon,
  colon,
  dot,
  assign,       ///< :=
  contribute,   ///< %=
  arrow,        ///< =>
  plus,
  minus,
  star,
  slash,
  caret,        ///< ^ (power; the paper's dialect writes products instead)
  end_of_file,
};

struct Token {
  Tok kind;
  std::string text;   ///< identifier/number spelling (original case)
  double value = 0.0; ///< for numbers
  int line = 0;
  int column = 0;
};

class LexError : public std::runtime_error {
 public:
  LexError(int line, int col, const std::string& what)
      : std::runtime_error("HDL lex error at " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + what) {}
};

/// Tokenizes full source text. '--' starts a to-end-of-line comment.
std::vector<Token> lex(const std::string& source);

/// Keyword check, case-insensitive (HDL-A keywords are traditionally upper).
bool is_keyword(const Token& t, const char* kw);

}  // namespace usys::hdl
