#include "pxt/harmonic.hpp"

#include <cmath>
#include <stdexcept>

#include "common/constants.hpp"
#include "common/matrix.hpp"

namespace usys::pxt {

std::complex<double> RationalFit::eval(double freq_hz) const {
  const std::complex<double> s(0.0, 2.0 * kPi * freq_hz / scale);
  std::complex<double> n(0.0, 0.0);
  for (std::size_t i = num.size(); i-- > 0;) n = n * s + num[i];
  std::complex<double> d(0.0, 0.0);
  for (std::size_t i = den.size(); i-- > 0;) d = d * s + den[i];
  return n / d;
}

RationalFit levy_fit(const std::vector<FreqSample>& samples, int num_order,
                     int den_order) {
  if (num_order < 0 || den_order < 1 || num_order > den_order)
    throw std::invalid_argument("levy_fit: need 0 <= m <= n, n >= 1");
  const std::size_t unknowns =
      static_cast<std::size_t>(num_order) + 1 + static_cast<std::size_t>(den_order);
  if (2 * samples.size() < unknowns)
    throw std::invalid_argument("levy_fit: not enough samples for the requested orders");

  // Normalize s by the geometric-mean angular frequency for conditioning.
  double log_acc = 0.0;
  for (const auto& s : samples) log_acc += std::log(2.0 * kPi * std::max(s.freq_hz, 1e-30));
  const double scale = std::exp(log_acc / static_cast<double>(samples.size()));

  DMatrix a(2 * samples.size(), unknowns);
  DVector rhs(2 * samples.size());
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const std::complex<double> s(0.0, 2.0 * kPi * samples[k].freq_hz / scale);
    const std::complex<double> h = samples[k].h;
    std::complex<double> sp(1.0, 0.0);
    // Numerator columns: +s^i.
    std::vector<std::complex<double>> spow(static_cast<std::size_t>(den_order) + 1);
    for (int i = 0; i <= den_order; ++i) {
      spow[static_cast<std::size_t>(i)] = sp;
      sp *= s;
    }
    for (int i = 0; i <= num_order; ++i) {
      a(2 * k, static_cast<std::size_t>(i)) = spow[static_cast<std::size_t>(i)].real();
      a(2 * k + 1, static_cast<std::size_t>(i)) = spow[static_cast<std::size_t>(i)].imag();
    }
    // Denominator columns: -H s^j (j = 1..n).
    for (int j = 1; j <= den_order; ++j) {
      const std::complex<double> v = -h * spow[static_cast<std::size_t>(j)];
      const std::size_t col = static_cast<std::size_t>(num_order) + static_cast<std::size_t>(j);
      a(2 * k, col) = v.real();
      a(2 * k + 1, col) = v.imag();
    }
    rhs[2 * k] = h.real();
    rhs[2 * k + 1] = h.imag();
  }

  const DVector theta = least_squares(a, rhs);
  RationalFit fit;
  fit.scale = scale;
  fit.num.assign(theta.begin(), theta.begin() + num_order + 1);
  fit.den.resize(static_cast<std::size_t>(den_order) + 1);
  fit.den[0] = 1.0;
  for (int j = 1; j <= den_order; ++j)
    fit.den[static_cast<std::size_t>(j)] =
        theta[static_cast<std::size_t>(num_order) + static_cast<std::size_t>(j)];
  return fit;
}

double fit_error(const RationalFit& fit, const std::vector<FreqSample>& samples) {
  double worst = 0.0;
  for (const auto& s : samples) {
    const double mag = std::abs(s.h);
    if (mag <= 0.0) continue;
    worst = std::max(worst, std::abs(fit.eval(s.freq_hz) - s.h) / mag);
  }
  return worst;
}

std::vector<FreqSample> resonator_response(double mass, double stiffness, double damping,
                                           const std::vector<double>& freqs_hz) {
  std::vector<FreqSample> out;
  out.reserve(freqs_hz.size());
  for (double f : freqs_hz) {
    const double w = 2.0 * kPi * f;
    const std::complex<double> den(stiffness - mass * w * w, w * damping);
    out.push_back({f, 1.0 / den});
  }
  return out;
}

TransferFunctionDevice::TransferFunctionDevice(std::string name, int in_p, int in_n,
                                               int out_p, int out_n, RationalFit fit)
    : Device(std::move(name)),
      in_p_(in_p),
      in_n_(in_n),
      out_p_(out_p),
      out_n_(out_n),
      fit_(std::move(fit)) {
  if (fit_.den.size() < 2)
    throw std::invalid_argument("TransferFunctionDevice: denominator order must be >= 1");
  if (fit_.num.size() > fit_.den.size())
    throw std::invalid_argument("TransferFunctionDevice: improper transfer function");
}

void TransferFunctionDevice::bind(spice::Binder& binder) {
  const int n = static_cast<int>(fit_.den.size()) - 1;
  z_.clear();
  for (int i = 0; i < n; ++i) z_.push_back(binder.alloc_branch(Nature::electrical));
  out_branch_ = binder.alloc_branch(Nature::electrical);
}

bool TransferFunctionDevice::stamp_footprint(std::vector<int>& out) const {
  out.insert(out.end(), {in_p_, in_n_, out_p_, out_n_, out_branch_});
  out.insert(out.end(), z_.begin(), z_.end());
  return true;
}

void TransferFunctionDevice::evaluate(spice::EvalCtx& ctx) {
  const int n = static_cast<int>(z_.size());
  const double tau = 1.0 / fit_.scale;  // s = tau * d/dt
  const double u = ctx.v(in_p_) - ctx.v(in_n_);

  // State chain: tau z_i' = z_{i+1} (i < n).
  for (int i = 0; i + 1 < n; ++i) {
    const int row = z_[static_cast<std::size_t>(i)];
    ctx.q_add(row, tau * ctx.v(row));
    ctx.jq_add(row, row, tau);
    ctx.f_add(row, -ctx.v(z_[static_cast<std::size_t>(i) + 1]));
    ctx.jf_add(row, z_[static_cast<std::size_t>(i) + 1], -1.0);
  }
  // Last row: a_n tau z_n' = u - (z_1 + a_1 z_2 + ... + a_{n-1} z_n).
  {
    const int row = z_[static_cast<std::size_t>(n) - 1];
    const double an = fit_.den[static_cast<std::size_t>(n)];
    ctx.q_add(row, an * tau * ctx.v(row));
    ctx.jq_add(row, row, an * tau);
    double acc = -u;
    ctx.jf_add(row, in_p_, -1.0);
    ctx.jf_add(row, in_n_, 1.0);
    for (int j = 0; j < n; ++j) {
      const double aj = fit_.den[static_cast<std::size_t>(j)];  // a_0 = 1
      acc += aj * ctx.v(z_[static_cast<std::size_t>(j)]);
      ctx.jf_add(row, z_[static_cast<std::size_t>(j)], aj);
    }
    ctx.f_add(row, acc);
  }
  // Output: y = sum b_i z_{i+1} (+ direct term if m == n).
  {
    const int row = out_branch_;
    ctx.f_add(out_p_, ctx.v(row));
    ctx.f_add(out_n_, -ctx.v(row));
    ctx.jf_add(out_p_, row, 1.0);
    ctx.jf_add(out_n_, row, -1.0);

    double y = 0.0;
    ctx.f_add(row, ctx.v(out_p_) - ctx.v(out_n_));
    ctx.jf_add(row, out_p_, 1.0);
    ctx.jf_add(row, out_n_, -1.0);
    const int m = static_cast<int>(fit_.num.size()) - 1;
    for (int i = 0; i <= m && i < n; ++i) {
      const double bi = fit_.num[static_cast<std::size_t>(i)];
      y += bi * ctx.v(z_[static_cast<std::size_t>(i)]);
      ctx.jf_add(row, z_[static_cast<std::size_t>(i)], -bi);
    }
    if (m == n) {
      // Direct feedthrough: b_n s^n z1 = (b_n/a_n)(u - z1 - ... ).
      const double g = fit_.num[static_cast<std::size_t>(m)] /
                       fit_.den[static_cast<std::size_t>(n)];
      y += g * u;
      ctx.jf_add(row, in_p_, -g);
      ctx.jf_add(row, in_n_, g);
      for (int j = 0; j < n; ++j) {
        const double aj = fit_.den[static_cast<std::size_t>(j)];
        y -= g * aj * ctx.v(z_[static_cast<std::size_t>(j)]);
        ctx.jf_add(row, z_[static_cast<std::size_t>(j)], g * aj);
      }
    }
    ctx.f_add(row, -y);
  }
}

}  // namespace usys::pxt
