#include "common/sparse_lu.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/deadline.hpp"
#include "common/fault_inject.hpp"
#include "common/thread_pool.hpp"

namespace usys {
namespace {

/// Below this magnitude a pivot counts as numerically zero (matches the
/// dense lu_solve threshold for SingularMatrixError parity).
constexpr double kAbsPivotFloor = 1e-300;

/// Refactorization guard: partial pivoting bounds |L| by 1, so a reused
/// pivot order producing multipliers beyond this limit has degraded enough
/// to warrant a fresh pivot search (KLU uses the same reciprocal, 1e-3, as
/// its refactorization pivot tolerance). Newton and timestep loops change
/// values smoothly and rarely trip this; wholesale value changes do.
constexpr double kPivotGrowthLimit = 1e3;

}  // namespace

template <typename T>
void SparseLu<T>::analyze(int n, const std::vector<int>& row_ptr,
                          const std::vector<int>& col_idx, LuOrdering ordering) {
  if (n < 0 || row_ptr.size() != static_cast<std::size_t>(n) + 1)
    throw std::invalid_argument("SparseLu::analyze: bad pattern dimensions");
  n_ = n;
  const std::size_t nnz = col_idx.size();

  // Column counts -> CSC pointers.
  col_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int c : col_idx) col_ptr_[static_cast<std::size_t>(c) + 1]++;
  for (int j = 0; j < n; ++j) col_ptr_[j + 1] += col_ptr_[j];

  // Fill CSC row indices and the CSR-slot -> CSC-slot mapping.
  row_idx_.assign(nnz, 0);
  csc_of_csr_.assign(nnz, 0);
  std::vector<int> next(col_ptr_.begin(), col_ptr_.end() - 1);
  for (int r = 0; r < n; ++r) {
    for (int s = row_ptr[r]; s < row_ptr[r + 1]; ++s) {
      const int c = col_idx[static_cast<std::size_t>(s)];
      const int p = next[static_cast<std::size_t>(c)]++;
      row_idx_[static_cast<std::size_t>(p)] = r;
      csc_of_csr_[static_cast<std::size_t>(s)] = p;
    }
  }
  csc_vals_.assign(nnz, T{});

  if (ordering == LuOrdering::amd) {
    amd_order();
  } else {
    min_degree_order();
  }

  factored_ = false;
  symbolic_count_ = 0;
  flev_ptr_.clear();
  flev_rows_.clear();
  blev_ptr_.clear();
  blev_rows_.clear();
  rlev_ptr_.clear();
  rlev_cols_.clear();

  x_.assign(static_cast<std::size_t>(n), T{});
  xi_.assign(static_cast<std::size_t>(n), 0);
  stack_.assign(static_cast<std::size_t>(n), 0);
  pstack_.assign(static_cast<std::size_t>(n), 0);
  visited_.assign(static_cast<std::size_t>(n), 0);
}

template <typename T>
void SparseLu<T>::factor(const std::vector<T>& csr_vals) {
  if (!analyzed()) throw std::logic_error("SparseLu::factor before analyze");
  if (csr_vals.size() != csc_of_csr_.size())
    throw std::invalid_argument("SparseLu::factor: value count != pattern nonzeros");
  if (deadline_ != nullptr) deadline_->check("SparseLu::factor");
  if (USYS_FAULT_POINT("sparse_lu.singular")) throw SingularMatrixError(0);
  for (std::size_t s = 0; s < csr_vals.size(); ++s)
    csc_vals_[static_cast<std::size_t>(csc_of_csr_[s])] = csr_vals[s];
  // Row max-scaling: factor (R A) instead of A so pivot comparisons are
  // scale-free across natures and across large value drifts within a row.
  rscale_.assign(static_cast<std::size_t>(n_), 0.0);
  for (std::size_t p = 0; p < csc_vals_.size(); ++p) {
    const auto r = static_cast<std::size_t>(row_idx_[p]);
    rscale_[r] = std::max(rscale_[r], std::abs(csc_vals_[p]));
  }
  for (auto& s : rscale_) s = (s > 0.0) ? 1.0 / s : 1.0;
  for (std::size_t p = 0; p < csc_vals_.size(); ++p)
    csc_vals_[p] *= rscale_[static_cast<std::size_t>(row_idx_[p])];
  if (factored_ && refactor()) return;
  factor_full();
}

template <typename T>
std::vector<std::vector<int>> SparseLu<T>::symmetrized_adjacency() const {
  const int n = n_;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const int i = row_idx_[static_cast<std::size_t>(p)];
      if (i != j) {
        adj[static_cast<std::size_t>(i)].push_back(j);
        adj[static_cast<std::size_t>(j)].push_back(i);
      }
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return adj;
}

/// Greedy minimum-degree elimination order on the symmetrized pattern
/// (explicit clique merging). Partial pivoting later permutes rows freely,
/// so only the column order is fixed here. Exact degrees but O(n) pivot
/// scans and O(deg^2) clique merges — kept as the quality baseline the AMD
/// ordering is benchmarked against. Ties break on the smallest index (the
/// strict `<` scan), so the order is deterministic.
template <typename T>
void SparseLu<T>::min_degree_order() {
  const int n = n_;
  q_.resize(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> adj = symmetrized_adjacency();

  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<int> nbrs;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    std::size_t best_deg = static_cast<std::size_t>(-1);
    for (int v = 0; v < n; ++v) {
      if (!eliminated[static_cast<std::size_t>(v)] &&
          adj[static_cast<std::size_t>(v)].size() < best_deg) {
        best_deg = adj[static_cast<std::size_t>(v)].size();
        best = v;
      }
    }
    q_[static_cast<std::size_t>(step)] = best;
    eliminated[static_cast<std::size_t>(best)] = 1;
    // Connect the eliminated node's surviving neighbors into a clique.
    nbrs.clear();
    for (int u : adj[static_cast<std::size_t>(best)])
      if (!eliminated[static_cast<std::size_t>(u)]) nbrs.push_back(u);
    for (int u : nbrs) {
      auto& a = adj[static_cast<std::size_t>(u)];
      a.insert(a.end(), nbrs.begin(), nbrs.end());
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
      a.erase(std::remove_if(a.begin(), a.end(),
                             [&](int w) {
                               return w == u || eliminated[static_cast<std::size_t>(w)];
                             }),
              a.end());
    }
    adj[static_cast<std::size_t>(best)].clear();
    adj[static_cast<std::size_t>(best)].shrink_to_fit();
  }
}

/// Approximate minimum degree on the quotient graph (Amestoy/Davis/Duff):
/// eliminating supervariable p turns it into an ELEMENT whose pattern Lp is
/// the union of p's remaining variable neighbors and the patterns of the
/// elements it absorbs; the variables in Lp then get
///
///   d(i) ~= |A_i \ Lp| + |Lp \ i| + sum_{e in E_i \ p} |Le \ Lp|
///
/// with every |Le \ Lp| computed in one sweep (the w-counter trick), so no
/// explicit fill graph is ever built. Two AMD staples ride along:
///   * supervariable detection — variables in Lp with identical pruned
///     adjacency (hashed, then compared exactly) merge into one weighted
///     supervariable and are eliminated together;
///   * mass elimination — variables whose adjacency collapses to exactly
///     {p} are ordered immediately after p (their elimination admits no
///     fill beyond Lp's).
/// Determinism: candidates live in an ordered (degree, index) set, merges
/// keep the smallest index as principal, and all adjacency lists stay
/// sorted — the same pattern yields the same permutation everywhere.
template <typename T>
void SparseLu<T>::amd_order() {
  const int n = n_;
  q_.clear();
  q_.reserve(static_cast<std::size_t>(n));
  if (n == 0) return;

  // Quotient-graph role. kAbsorbed covers both variables merged into a
  // supervariable and mass-eliminated variables: either way they are out of
  // the graph (scrubbed from or filtered out of every live adjacency) while
  // their indices are emitted through q_.
  enum : char { kLive, kElement, kAbsorbed, kDead };
  std::vector<char> state(static_cast<std::size_t>(n), kLive);
  std::vector<std::vector<int>> vlist = symmetrized_adjacency();  // variable nbrs
  std::vector<std::vector<int>> elist(static_cast<std::size_t>(n));  // element nbrs
  std::vector<std::vector<int>> epat(static_cast<std::size_t>(n));   // element patterns
  std::vector<std::vector<int>> merged(static_cast<std::size_t>(n));
  std::vector<long long> nv(static_cast<std::size_t>(n), 1);  // supervariable weight
  std::vector<long long> deg(static_cast<std::size_t>(n), 0);

  std::set<std::pair<long long, int>> degq;  // (approx degree, index): smallest first
  for (int i = 0; i < n; ++i) {
    deg[static_cast<std::size_t>(i)] =
        static_cast<long long>(vlist[static_cast<std::size_t>(i)].size());
    degq.emplace(deg[static_cast<std::size_t>(i)], i);
  }

  // Live principal-variable weight still to eliminate (degree clamp bound).
  long long live_weight = n;

  std::vector<int> in_lp(static_cast<std::size_t>(n), 0);  // Lp membership marks
  std::vector<long long> w(static_cast<std::size_t>(n), -1);  // |Le \ Lp| scratch
  std::vector<int> lp, wtouch, hash_order;
  std::vector<long long> hash(static_cast<std::size_t>(n), 0);

  const auto sorted_erase = [](std::vector<int>& v, int value) {
    const auto it = std::lower_bound(v.begin(), v.end(), value);
    if (it != v.end() && *it == value) v.erase(it);
  };
  const auto live_pattern_weight = [&](const std::vector<int>& pat) {
    long long s = 0;
    for (int v : pat)
      if (state[static_cast<std::size_t>(v)] == kLive) s += nv[static_cast<std::size_t>(v)];
    return s;
  };
  // Emits a supervariable: the principal index, then every variable merged
  // into it (depth first, in merge order) — all occupy adjacent pivotal
  // positions, which is exactly what made them indistinguishable.
  std::vector<int> emit_stack;
  const auto emit = [&](int v) {
    emit_stack.assign(1, v);
    while (!emit_stack.empty()) {
      const int u = emit_stack.back();
      emit_stack.pop_back();
      q_.push_back(u);
      const auto& m = merged[static_cast<std::size_t>(u)];
      for (auto it = m.rbegin(); it != m.rend(); ++it) emit_stack.push_back(*it);
    }
  };

  while (!degq.empty()) {
    const int p = degq.begin()->second;
    degq.erase(degq.begin());
    const auto sp = static_cast<std::size_t>(p);

    // --- form element pattern Lp (live principal variables, p excluded) ---
    lp.clear();
    in_lp[sp] = 1;
    for (int v : vlist[sp]) {
      const auto sv = static_cast<std::size_t>(v);
      if (state[sv] == kLive && !in_lp[sv]) {
        in_lp[sv] = 1;
        lp.push_back(v);
      }
    }
    for (int e : elist[sp]) {
      const auto se = static_cast<std::size_t>(e);
      if (state[se] != kElement) continue;
      for (int v : epat[se]) {
        const auto sv = static_cast<std::size_t>(v);
        if (state[sv] == kLive && !in_lp[sv]) {
          in_lp[sv] = 1;
          lp.push_back(v);
        }
      }
      // Element absorption: e's coverage is now a subset of element p's.
      state[se] = kDead;
      epat[se].clear();
      epat[se].shrink_to_fit();
    }
    std::sort(lp.begin(), lp.end());
    state[sp] = kElement;
    live_weight -= nv[sp];
    long long lp_weight = 0;
    for (int v : lp) lp_weight += nv[static_cast<std::size_t>(v)];
    vlist[sp].clear();
    vlist[sp].shrink_to_fit();
    elist[sp].clear();
    elist[sp].shrink_to_fit();
    emit(p);

    // --- w trick: w[e] = |Le \ Lp| for every element touching Lp ----------
    wtouch.clear();
    for (int i : lp) {
      for (int e : elist[static_cast<std::size_t>(i)]) {
        const auto se = static_cast<std::size_t>(e);
        if (state[se] != kElement) continue;
        if (w[se] < 0) {
          w[se] = live_pattern_weight(epat[se]);
          wtouch.push_back(e);
        }
        w[se] -= nv[static_cast<std::size_t>(i)];
      }
    }

    // --- prune adjacency and refresh approximate degrees ------------------
    for (int i : lp) {
      const auto si = static_cast<std::size_t>(i);
      auto& vl = vlist[si];
      // Edges inside Lp (and to p) are covered by element p from now on;
      // dead/absorbed entries are dropped on the way.
      vl.erase(std::remove_if(vl.begin(), vl.end(),
                              [&](int v) {
                                const auto sv = static_cast<std::size_t>(v);
                                return state[sv] != kLive || in_lp[sv];
                              }),
               vl.end());
      auto& el = elist[si];
      el.erase(std::remove_if(el.begin(), el.end(),
                              [&](int e) {
                                return state[static_cast<std::size_t>(e)] != kElement;
                              }),
               el.end());
      el.insert(std::lower_bound(el.begin(), el.end(), p), p);

      long long d = lp_weight - nv[si];
      for (int v : vl) d += nv[static_cast<std::size_t>(v)];
      for (int e : el) {
        if (e == p) continue;
        const auto se = static_cast<std::size_t>(e);
        d += (w[se] >= 0) ? w[se] : live_pattern_weight(epat[se]);
      }
      d = std::min(d, live_weight - nv[si]);
      d = std::max<long long>(d, 0);
      degq.erase({deg[si], i});
      deg[si] = d;
      degq.emplace(d, i);
    }
    for (int e : wtouch) w[static_cast<std::size_t>(e)] = -1;

    // --- supervariable detection (hash, then exact compare) ----------------
    hash_order.clear();
    for (int i : lp) {
      const auto si = static_cast<std::size_t>(i);
      long long h = 0;
      for (int v : vlist[si]) h += v;
      for (int e : elist[si]) h += e;
      hash[si] = h;
      hash_order.push_back(i);
    }
    for (std::size_t a = 0; a < hash_order.size(); ++a) {
      const int i = hash_order[a];
      const auto si = static_cast<std::size_t>(i);
      if (state[si] != kLive) continue;
      for (std::size_t b = a + 1; b < hash_order.size(); ++b) {
        const int j = hash_order[b];
        const auto sj = static_cast<std::size_t>(j);
        if (state[sj] != kLive || hash[si] != hash[sj]) continue;
        if (vlist[si] != vlist[sj] || elist[si] != elist[sj]) continue;
        // Indistinguishable: merge j into i (i < j keeps the principal
        // deterministic). i's weight absorbs j's, so neighbor degrees —
        // which sum nv over live entries — need j scrubbed from their lists.
        nv[si] += nv[sj];
        merged[si].push_back(j);
        state[sj] = kAbsorbed;
        degq.erase({deg[sj], j});
        for (int v : vlist[sj]) sorted_erase(vlist[static_cast<std::size_t>(v)], j);
        for (int e : elist[sj]) sorted_erase(epat[static_cast<std::size_t>(e)], j);
        vlist[sj].clear();
        vlist[sj].shrink_to_fit();
        elist[sj].clear();
        elist[sj].shrink_to_fit();
      }
    }

    // --- mass elimination: adjacency collapsed to exactly {p} --------------
    for (int i : lp) {
      const auto si = static_cast<std::size_t>(i);
      if (state[si] != kLive) continue;
      if (vlist[si].empty() && elist[si].size() == 1 && elist[si][0] == p) {
        degq.erase({deg[si], i});
        live_weight -= nv[si];
        state[si] = kAbsorbed;
        emit(i);
        elist[si].clear();
        elist[si].shrink_to_fit();
      }
    }

    // Element p keeps the still-live part of Lp as its pattern.
    epat[sp].clear();
    for (int v : lp) {
      if (state[static_cast<std::size_t>(v)] == kLive) epat[sp].push_back(v);
      in_lp[static_cast<std::size_t>(v)] = 0;
    }
    in_lp[sp] = 0;
    if (epat[sp].empty()) state[sp] = kDead;
  }

  if (q_.size() != static_cast<std::size_t>(n))
    throw std::logic_error("SparseLu: AMD ordering dropped variables");
}

/// DFS over the partial-L graph: node i's children are the sub-diagonal
/// entries of L's column pinv_[i] (not-yet-pivotal nodes are leaves).
/// Finished nodes land in xi_[top-1 .. ] in topological order.
template <typename T>
int SparseLu<T>::dfs_reach(int start, int top) {
  int head = 0;
  stack_[0] = start;
  while (head >= 0) {
    const int i = stack_[static_cast<std::size_t>(head)];
    const int col = pinv_[static_cast<std::size_t>(i)];
    if (!visited_[static_cast<std::size_t>(i)]) {
      visited_[static_cast<std::size_t>(i)] = 1;
      pstack_[static_cast<std::size_t>(head)] = (col < 0) ? 0 : lp_[static_cast<std::size_t>(col)] + 1;
    }
    bool descended = false;
    if (col >= 0) {
      const int end = lp_[static_cast<std::size_t>(col) + 1];
      for (int p = pstack_[static_cast<std::size_t>(head)]; p < end; ++p) {
        const int child = li_[static_cast<std::size_t>(p)];
        if (!visited_[static_cast<std::size_t>(child)]) {
          pstack_[static_cast<std::size_t>(head)] = p + 1;
          stack_[static_cast<std::size_t>(++head)] = child;
          descended = true;
          break;
        }
      }
    }
    if (!descended) {
      --head;
      xi_[static_cast<std::size_t>(--top)] = i;
    }
  }
  return top;
}

template <typename T>
void SparseLu<T>::factor_full() {
  const int n = n_;
  pinv_.assign(static_cast<std::size_t>(n), -1);
  lp_.assign(static_cast<std::size_t>(n) + 1, 0);
  up_.assign(static_cast<std::size_t>(n) + 1, 0);
  li_.clear();
  lx_.clear();
  ui_.clear();
  ux_.clear();
  factored_ = false;

  for (int jj = 0; jj < n; ++jj) {
    const int j = q_[static_cast<std::size_t>(jj)];  // column eliminated at position jj
    lp_[static_cast<std::size_t>(jj)] = static_cast<int>(li_.size());
    up_[static_cast<std::size_t>(jj)] = static_cast<int>(ui_.size());

    // Reach of A(:,j) in the partial-L graph (original row space).
    int top = n;
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const int i = row_idx_[static_cast<std::size_t>(p)];
      if (!visited_[static_cast<std::size_t>(i)]) top = dfs_reach(i, top);
    }

    // Numeric sparse triangular solve x = L \ A(:,j).
    for (int p = top; p < n; ++p) x_[static_cast<std::size_t>(xi_[static_cast<std::size_t>(p)])] = T{};
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p)
      x_[static_cast<std::size_t>(row_idx_[static_cast<std::size_t>(p)])] =
          csc_vals_[static_cast<std::size_t>(p)];
    for (int px = top; px < n; ++px) {
      const int i = xi_[static_cast<std::size_t>(px)];
      const int col = pinv_[static_cast<std::size_t>(i)];
      if (col < 0) continue;  // not yet pivotal: stays an L candidate
      const T xv = x_[static_cast<std::size_t>(i)];
      if (xv != T{}) {
        const int end = lp_[static_cast<std::size_t>(col) + 1];
        for (int p = lp_[static_cast<std::size_t>(col)] + 1; p < end; ++p)
          x_[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
              lx_[static_cast<std::size_t>(p)] * xv;
      }
    }

    // Harvest U entries (already-pivotal rows, topological order) and find
    // the partial pivot among the rest.
    int ipiv = -1;
    double amax = -1.0;
    for (int px = top; px < n; ++px) {
      const int i = xi_[static_cast<std::size_t>(px)];
      const int pos = pinv_[static_cast<std::size_t>(i)];
      if (pos >= 0) {
        ui_.push_back(pos);
        ux_.push_back(x_[static_cast<std::size_t>(i)]);
      } else {
        const double m = std::abs(x_[static_cast<std::size_t>(i)]);
        if (m > amax) {
          amax = m;
          ipiv = i;
        }
      }
    }
    if (ipiv < 0 || amax < kAbsPivotFloor) {
      // Clean scratch before reporting the singular column.
      for (int px = top; px < n; ++px) {
        const int i = xi_[static_cast<std::size_t>(px)];
        visited_[static_cast<std::size_t>(i)] = 0;
        x_[static_cast<std::size_t>(i)] = T{};
      }
      throw SingularMatrixError(static_cast<std::size_t>(j));
    }
    const T pivot = x_[static_cast<std::size_t>(ipiv)];
    ui_.push_back(jj);  // diagonal stored last within the column
    ux_.push_back(pivot);
    pinv_[static_cast<std::size_t>(ipiv)] = jj;
    li_.push_back(ipiv);  // unit diagonal of L stored first
    lx_.push_back(T(1));
    for (int px = top; px < n; ++px) {
      const int i = xi_[static_cast<std::size_t>(px)];
      if (pinv_[static_cast<std::size_t>(i)] < 0) {
        li_.push_back(i);
        lx_.push_back(x_[static_cast<std::size_t>(i)] / pivot);
      }
      visited_[static_cast<std::size_t>(i)] = 0;
      x_[static_cast<std::size_t>(i)] = T{};
    }
  }
  lp_[static_cast<std::size_t>(n)] = static_cast<int>(li_.size());
  up_[static_cast<std::size_t>(n)] = static_cast<int>(ui_.size());

  // Remap L's row indices from original to pivotal space; from here on the
  // whole factorization lives in pivotal coordinates.
  for (auto& i : li_) i = pinv_[static_cast<std::size_t>(i)];

  build_solve_schedule();

  factored_ = true;
  ++symbolic_count_;
}

template <typename T>
bool SparseLu<T>::refactor_column(int jj, T* x) {
  const int j = q_[static_cast<std::size_t>(jj)];
  // Scatter A(:,j) into pivotal space. The reach of the recorded symbolic
  // factorization is a superset of A's pattern, so the clears below cover
  // every scattered slot.
  for (int p = col_ptr_[static_cast<std::size_t>(j)];
       p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p)
    x[pinv_[static_cast<std::size_t>(row_idx_[static_cast<std::size_t>(p)])]] =
        csc_vals_[static_cast<std::size_t>(p)];

  // Replay the column's U entries in their recorded (topological) order.
  const int u_end = up_[static_cast<std::size_t>(jj) + 1] - 1;  // diagonal excluded
  for (int p = up_[static_cast<std::size_t>(jj)]; p < u_end; ++p) {
    const int k = ui_[static_cast<std::size_t>(p)];
    const T ukj = x[k];
    ux_[static_cast<std::size_t>(p)] = ukj;
    x[k] = T{};
    if (ukj != T{}) {
      const int end = lp_[static_cast<std::size_t>(k) + 1];
      for (int q = lp_[static_cast<std::size_t>(k)] + 1; q < end; ++q)
        x[li_[static_cast<std::size_t>(q)]] -= lx_[static_cast<std::size_t>(q)] * ukj;
    }
  }

  const T pivot = x[jj];
  x[jj] = T{};
  const double apiv = std::abs(pivot);
  if (apiv < kAbsPivotFloor)
    return false;  // pivot order no longer viable; re-run full pivoting
  ux_[static_cast<std::size_t>(u_end)] = pivot;
  const int l_end = lp_[static_cast<std::size_t>(jj) + 1];
  for (int q = lp_[static_cast<std::size_t>(jj)] + 1; q < l_end; ++q) {
    const int i = li_[static_cast<std::size_t>(q)];
    const T v = x[i];
    x[i] = T{};
    if (std::abs(v) > kPivotGrowthLimit * apiv)
      return false;  // multiplier blow-up: pivot degraded
    lx_[static_cast<std::size_t>(q)] = v / pivot;
  }
  return true;
}

template <typename T>
bool SparseLu<T>::refactor() {
  if (refactor_threads_ > 1 && pool_ != nullptr) return refactor_parallel();
  const int n = n_;
  T* const x = x_.data();
  for (int jj = 0; jj < n; ++jj) {
    if (!refactor_column(jj, x)) {
      x_.assign(static_cast<std::size_t>(n), T{});
      return false;
    }
  }
  return true;
}

/// Level-scheduled column replay. Column jj's replay reads L(:,k) only for
/// the above-diagonal U entries k of column jj, so the rlev_* levels built
/// at symbolic time group columns whose inputs are all finished. Within a
/// level every column writes only its own lx_/ux_ slots and scatters into a
/// per-chunk scratch vector, and its arithmetic order is the serial one —
/// so the produced factors, and the degraded-pivot verdict, are
/// bit-identical to the serial replay for any thread count or chunking.
template <typename T>
bool SparseLu<T>::refactor_parallel() {
  const int n = n_;
  const auto sn = static_cast<std::size_t>(n);
  const int nlev = static_cast<int>(rlev_ptr_.size()) - 1;
  if (rx_.size() < static_cast<std::size_t>(refactor_threads_))
    rx_.resize(static_cast<std::size_t>(refactor_threads_));
  std::atomic<bool> ok{true};
  for (int l = 0; l < nlev && ok.load(std::memory_order_relaxed); ++l) {
    const int begin = rlev_ptr_[static_cast<std::size_t>(l)];
    const int end = rlev_ptr_[static_cast<std::size_t>(l) + 1];
    const int count = end - begin;
    if (count < min_level_cols_) {
      T* const x = x_.data();
      for (int k = begin; k < end; ++k) {
        if (!refactor_column(rlev_cols_[static_cast<std::size_t>(k)], x)) {
          ok.store(false, std::memory_order_relaxed);
          break;
        }
      }
      continue;
    }
    const int chunks = std::min(refactor_threads_, count);
    pool_->run(chunks, [&](int c) {
      auto& xs = rx_[static_cast<std::size_t>(c)];
      if (xs.size() != sn) xs.assign(sn, T{});
      T* const x = xs.data();
      const int lo = begin + static_cast<int>((static_cast<long long>(count) * c) / chunks);
      const int hi =
          begin + static_cast<int>((static_cast<long long>(count) * (c + 1)) / chunks);
      for (int k = lo; k < hi; ++k) {
        if (!ok.load(std::memory_order_relaxed)) return;
        if (!refactor_column(rlev_cols_[static_cast<std::size_t>(k)], x)) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  if (!ok.load(std::memory_order_relaxed)) {
    // A failing (or abandoned mid-chunk) column leaves its scratch dirty;
    // re-zero everything before the full factorization redoes the work.
    x_.assign(sn, T{});
    for (auto& xs : rx_) xs.assign(xs.size(), T{});
    return false;
  }
  return true;
}

/// Transposes the recorded L/U patterns into row-major views (index maps
/// into lx_/ux_, so refactorizations keep them valid) and groups rows into
/// dependency levels: forward row j needs every column k < j with L(j,k)
/// != 0 finished first, backward row j every k > j with U(j,k) != 0. Rows
/// of one level are independent — the parallel solve's unit of work.
template <typename T>
void SparseLu<T>::build_solve_schedule() {
  const int n = n_;
  const auto sn = static_cast<std::size_t>(n);

  // L^T rows, skipping each column's leading unit diagonal. Columns are
  // visited in ascending order, so every row's entries come out sorted by
  // column — the fixed per-row gather order bit-identity relies on.
  lt_ptr_.assign(sn + 1, 0);
  for (int j = 0; j < n; ++j)
    for (int p = lp_[static_cast<std::size_t>(j)] + 1;
         p < lp_[static_cast<std::size_t>(j) + 1]; ++p)
      ++lt_ptr_[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)]) + 1];
  for (std::size_t i = 0; i < sn; ++i) lt_ptr_[i + 1] += lt_ptr_[i];
  lt_idx_.assign(static_cast<std::size_t>(lt_ptr_[sn]), 0);
  lt_map_.assign(static_cast<std::size_t>(lt_ptr_[sn]), 0);
  {
    std::vector<int> cur(lt_ptr_.begin(), lt_ptr_.end() - 1);
    for (int j = 0; j < n; ++j) {
      for (int p = lp_[static_cast<std::size_t>(j)] + 1;
           p < lp_[static_cast<std::size_t>(j) + 1]; ++p) {
        const auto r = static_cast<std::size_t>(li_[static_cast<std::size_t>(p)]);
        const auto slot = static_cast<std::size_t>(cur[r]++);
        lt_idx_[slot] = j;
        lt_map_[slot] = p;
      }
    }
  }

  // U^T rows, skipping each column's trailing diagonal.
  ut_ptr_.assign(sn + 1, 0);
  for (int j = 0; j < n; ++j)
    for (int p = up_[static_cast<std::size_t>(j)];
         p < up_[static_cast<std::size_t>(j) + 1] - 1; ++p)
      ++ut_ptr_[static_cast<std::size_t>(ui_[static_cast<std::size_t>(p)]) + 1];
  for (std::size_t i = 0; i < sn; ++i) ut_ptr_[i + 1] += ut_ptr_[i];
  ut_idx_.assign(static_cast<std::size_t>(ut_ptr_[sn]), 0);
  ut_map_.assign(static_cast<std::size_t>(ut_ptr_[sn]), 0);
  {
    std::vector<int> cur(ut_ptr_.begin(), ut_ptr_.end() - 1);
    for (int j = 0; j < n; ++j) {
      for (int p = up_[static_cast<std::size_t>(j)];
           p < up_[static_cast<std::size_t>(j) + 1] - 1; ++p) {
        const auto r = static_cast<std::size_t>(ui_[static_cast<std::size_t>(p)]);
        const auto slot = static_cast<std::size_t>(cur[r]++);
        ut_idx_[slot] = j;
        ut_map_[slot] = p;
      }
    }
  }

  // Level assignment + counting sort into (level, ascending row) groups.
  const auto levelize = [&](const std::vector<int>& tptr, const std::vector<int>& tidx,
                            bool backward, std::vector<int>& lev_ptr,
                            std::vector<int>& lev_rows) {
    std::vector<int> level(sn, 0);
    int nlev = 0;
    const auto row_level = [&](int j) {
      int lv = 0;
      for (int p = tptr[static_cast<std::size_t>(j)];
           p < tptr[static_cast<std::size_t>(j) + 1]; ++p)
        lv = std::max(lv, level[static_cast<std::size_t>(tidx[static_cast<std::size_t>(p)])] + 1);
      level[static_cast<std::size_t>(j)] = lv;
      nlev = std::max(nlev, lv + 1);
    };
    if (backward) {
      for (int j = n; j-- > 0;) row_level(j);
    } else {
      for (int j = 0; j < n; ++j) row_level(j);
    }
    lev_ptr.assign(static_cast<std::size_t>(nlev) + 1, 0);
    for (std::size_t j = 0; j < sn; ++j) ++lev_ptr[static_cast<std::size_t>(level[j]) + 1];
    for (int l = 0; l < nlev; ++l) lev_ptr[static_cast<std::size_t>(l) + 1] += lev_ptr[static_cast<std::size_t>(l)];
    lev_rows.assign(sn, 0);
    std::vector<int> cur(lev_ptr.begin(), lev_ptr.end() - 1);
    for (int j = 0; j < n; ++j)
      lev_rows[static_cast<std::size_t>(cur[static_cast<std::size_t>(level[static_cast<std::size_t>(j)])]++)] = j;
  };
  levelize(lt_ptr_, lt_idx_, /*backward=*/false, flev_ptr_, flev_rows_);
  levelize(ut_ptr_, ut_idx_, /*backward=*/true, blev_ptr_, blev_rows_);

  // Refactor column levels: replaying column jj reads L(:,k) for every
  // above-diagonal U entry k of column jj (those are exactly the pivotal
  // columns its sparse triangular solve eliminates against), so
  // level(jj) = 1 + max over those k. Same counting-sort grouping as the
  // solve levels, keyed on columns instead of rows.
  {
    std::vector<int> level(sn, 0);
    int nlev = 0;
    for (int j = 0; j < n; ++j) {
      int lv = 0;
      for (int p = up_[static_cast<std::size_t>(j)];
           p < up_[static_cast<std::size_t>(j) + 1] - 1; ++p)
        lv = std::max(lv, level[static_cast<std::size_t>(ui_[static_cast<std::size_t>(p)])] + 1);
      level[static_cast<std::size_t>(j)] = lv;
      nlev = std::max(nlev, lv + 1);
    }
    rlev_ptr_.assign(static_cast<std::size_t>(nlev) + 1, 0);
    for (std::size_t j = 0; j < sn; ++j) ++rlev_ptr_[static_cast<std::size_t>(level[j]) + 1];
    for (int l = 0; l < nlev; ++l)
      rlev_ptr_[static_cast<std::size_t>(l) + 1] += rlev_ptr_[static_cast<std::size_t>(l)];
    rlev_cols_.assign(sn, 0);
    std::vector<int> cur(rlev_ptr_.begin(), rlev_ptr_.end() - 1);
    for (int j = 0; j < n; ++j)
      rlev_cols_[static_cast<std::size_t>(
          cur[static_cast<std::size_t>(level[static_cast<std::size_t>(j)])]++)] = j;
  }
}

/// Runs row_fn over every row, level by level. Levels big enough to beat
/// the dispatch overhead fan out across the shared pool in solve_threads_
/// contiguous chunks; small levels run inline. Rows of one level write
/// disjoint entries and read only earlier levels, and each row's gather
/// order is fixed, so any chunking is bit-identical to serial.
template <typename T>
template <typename RowFn>
void SparseLu<T>::run_levels(const std::vector<int>& lev_ptr,
                             const std::vector<int>& lev_rows,
                             const RowFn& row_fn) const {
  const int nlev = static_cast<int>(lev_ptr.size()) - 1;
  for (int l = 0; l < nlev; ++l) {
    const int begin = lev_ptr[static_cast<std::size_t>(l)];
    const int end = lev_ptr[static_cast<std::size_t>(l) + 1];
    const int count = end - begin;
    if (count < min_level_rows_ || solve_threads_ <= 1 || pool_ == nullptr) {
      for (int k = begin; k < end; ++k) row_fn(lev_rows[static_cast<std::size_t>(k)]);
      continue;
    }
    const int chunks = std::min(solve_threads_, count);
    pool_->run(chunks, [&](int c) {
      const int lo = begin + static_cast<int>((static_cast<long long>(count) * c) / chunks);
      const int hi = begin + static_cast<int>((static_cast<long long>(count) * (c + 1)) / chunks);
      for (int k = lo; k < hi; ++k) row_fn(lev_rows[static_cast<std::size_t>(k)]);
    });
  }
}

template <typename T>
void SparseLu<T>::solve(std::vector<T>& b) const {
  if (!factored_) throw std::logic_error("SparseLu::solve before factor");
  if (b.size() != static_cast<std::size_t>(n_))
    throw std::invalid_argument("SparseLu::solve: rhs size mismatch");
  if (deadline_ != nullptr) deadline_->check("SparseLu::solve");
  const int n = n_;
  tmp_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    tmp_[static_cast<std::size_t>(pinv_[static_cast<std::size_t>(i)])] =
        b[static_cast<std::size_t>(i)] * rscale_[static_cast<std::size_t>(i)];

  // Forward: L y = P b. Row-gather over L^T (unit diagonal implicit):
  // y_j = b_j - sum_{k<j} L(j,k) y_k, accumulated in ascending k.
  T* const t = tmp_.data();
  const auto fwd_row = [&](int j) {
    T acc = t[j];
    for (int p = lt_ptr_[static_cast<std::size_t>(j)];
         p < lt_ptr_[static_cast<std::size_t>(j) + 1]; ++p)
      acc -= lx_[static_cast<std::size_t>(lt_map_[static_cast<std::size_t>(p)])] *
             t[lt_idx_[static_cast<std::size_t>(p)]];
    t[j] = acc;
  };
  const bool parallel = pool_ != nullptr && solve_threads_ > 1;
  if (parallel) {
    run_levels(flev_ptr_, flev_rows_, fwd_row);
  } else {
    for (int j = 0; j < n; ++j) fwd_row(j);
  }

  // Backward: U x = y. Row-gather over U^T, then divide by the pivot:
  // x_j = (y_j - sum_{k>j} U(j,k) x_k) / U(j,j).
  const auto bwd_row = [&](int j) {
    T acc = t[j];
    for (int p = ut_ptr_[static_cast<std::size_t>(j)];
         p < ut_ptr_[static_cast<std::size_t>(j) + 1]; ++p)
      acc -= ux_[static_cast<std::size_t>(ut_map_[static_cast<std::size_t>(p)])] *
             t[ut_idx_[static_cast<std::size_t>(p)]];
    t[j] = acc / ux_[static_cast<std::size_t>(up_[static_cast<std::size_t>(j) + 1]) - 1];
  };
  if (parallel) {
    run_levels(blev_ptr_, blev_rows_, bwd_row);
  } else {
    for (int j = n; j-- > 0;) bwd_row(j);
  }

  // Undo the fill-reducing column permutation: position j solved unknown q_[j].
  for (int j = 0; j < n; ++j)
    b[static_cast<std::size_t>(q_[static_cast<std::size_t>(j)])] =
        tmp_[static_cast<std::size_t>(j)];
}

template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace usys
