// General (non-SPD) sparse LU: Gilbert–Peierls left-looking factorization
// with partial pivoting, plus pattern-reusing numeric refactorization and
// level-scheduled (optionally threaded) triangular solves.
//
// Built for Newton / transient loops where the matrix PATTERN is fixed while
// the VALUES change every iteration:
//   * analyze()  — once per pattern: records the CSR layout, the CSR-to-CSC
//     slot mapping, and a fill-reducing column order (approximate minimum
//     degree by default; the simple min-degree variant remains selectable
//     for comparison). Both orderings are fully deterministic: every
//     degree tie breaks on the smallest index.
//   * factor()   — the first call runs the full pivoting factorization and
//     records the pivot order and the L/U patterns (the "symbolic"
//     factorization); later calls replay those patterns as pure numeric
//     refactorizations (no search, no allocation) and fall back to a fresh
//     pivoting factorization only if a reused pivot degrades.
//   * solve()    — forward/back substitution. Each unknown is a per-row
//     GATHER over the transposed factors, so the rows of one dependency
//     level are independent: with set_parallel() the levels computed at
//     symbolic time run across a shared ThreadPool, and because every row
//     accumulates its dot product in the same fixed order, the result is
//     bit-identical to the serial solve for any thread count. Levels
//     smaller than the configured threshold run serially, so small
//     circuits pay nothing.
//
// The FEM module's CsrMatrix + CG (fem/sparse.hpp) covers the SPD case;
// this solver covers the unsymmetric MNA systems of the circuit solver.
// Real and complex instantiations back DC/transient and AC respectively.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/matrix.hpp"  // SingularMatrixError

namespace usys {

class Deadline;
class ThreadPool;

/// Fill-reducing column-ordering algorithm used by SparseLu::analyze.
enum class LuOrdering {
  amd,         ///< approximate minimum degree (quotient graph, supervariable
               ///< detection, mass elimination) — the default
  min_degree,  ///< simple exact-degree clique merging (the PR 1 ordering),
               ///< kept as the quality/regression baseline
};

template <typename T>
class SparseLu {
 public:
  /// Registers the (square, n x n) pattern in CSR form. Column indices must
  /// be sorted and unique within each row. Also computes a fill-reducing
  /// column elimination order on the symmetrized pattern — essential for
  /// MNA systems, whose branch unknowns sit far from their nodes in the
  /// natural layout. Resets any previous factorization and the symbolic
  /// counter. The ordering is deterministic: the same pattern always
  /// produces the same permutation, on any platform.
  void analyze(int n, const std::vector<int>& row_ptr, const std::vector<int>& col_idx,
               LuOrdering ordering = LuOrdering::amd);

  bool analyzed() const noexcept { return n_ >= 0; }
  int size() const noexcept { return n_ < 0 ? 0 : n_; }
  std::size_t nonzeros() const noexcept { return csc_of_csr_.size(); }

  /// The fill-reducing column elimination order computed by analyze():
  /// pivotal position j eliminates column ordering()[j]. Always a valid
  /// permutation of [0, n).
  const std::vector<int>& ordering() const noexcept { return q_; }

  /// Numeric factorization of values laid out per the CSR pattern given to
  /// analyze(). Rows are max-scaled first (MNA systems mix natures whose
  /// magnitudes differ by many orders; scaling keeps pivot viability — and
  /// the refactorization degradation check — scale-free). Throws
  /// SingularMatrixError when no acceptable pivot exists.
  void factor(const std::vector<T>& csr_vals);

  bool factored() const noexcept { return factored_; }

  /// Total stored entries of L + U (both diagonals included) after factor();
  /// 0 before. factor_nonzeros() - nonzeros() is the fill-in the ordering
  /// admitted — the quality number bench_solver_scaling tracks.
  std::size_t factor_nonzeros() const noexcept {
    return factored_ ? li_.size() + ui_.size() : 0;
  }

  /// Forgets the recorded pivot order (keeps the analyzed pattern), so the
  /// next factor() runs a fresh pivot-searching factorization. Callers use
  /// this at analysis-phase boundaries where the matrix values change
  /// regime (e.g. DC -> transient) and a stale pivot order would either
  /// degrade or make results depend on solver history.
  void invalidate_pivot_order() noexcept { factored_ = false; }

  /// Solves A x = b in place (b holds x on return). Requires factor().
  void solve(std::vector<T>& b) const;

  /// Enables the level-scheduled parallel triangular solves: levels with at
  /// least `min_level_rows` rows are split into `threads` chunks over
  /// `pool` (non-owning; must outlive this object or be reset to null).
  /// threads <= 1 or pool == nullptr keeps the serial path. Results are
  /// bit-identical to serial for any setting.
  void set_parallel(ThreadPool* pool, int threads, int min_level_rows = 48) noexcept {
    pool_ = pool;
    solve_threads_ = (pool && threads > 1) ? threads : 1;
    min_level_rows_ = min_level_rows < 1 ? 1 : min_level_rows;
  }

  /// Chunks a parallel solve fans each big level into (1 = serial).
  int solve_threads() const noexcept { return solve_threads_; }

  /// Enables the level-scheduled parallel numeric refactorization. The
  /// recorded pivot order fixes which L columns each column's U replay
  /// reads, so columns of one dependency level replay independently across
  /// the pool registered via set_parallel() (call it even with 1 solve
  /// thread to lend the pool). Levels with fewer than `min_level_cols`
  /// columns run inline. Each column keeps its serial arithmetic order,
  /// writes only its own L/U slots, and scatters into a per-chunk scratch,
  /// so the factorization — including the degraded-pivot fallback decision
  /// — is bit-identical to serial at any thread count.
  void set_refactor_parallel(int threads, int min_level_cols = 16) noexcept {
    refactor_threads_ = threads > 1 ? threads : 1;
    min_level_cols_ = min_level_cols < 1 ? 1 : min_level_cols;
  }

  /// Chunks a parallel refactorization fans each big level into (1 = serial).
  int refactor_threads() const noexcept { return refactor_threads_; }

  /// Dependency-level count of the recorded column replay; 0 before
  /// factor(). Star-like patterns collapse to a handful of levels.
  int refactor_levels() const noexcept {
    return rlev_ptr_.empty() ? 0 : static_cast<int>(rlev_ptr_.size()) - 1;
  }

  /// Borrows a deadline (non-owning; null = none): factor() and solve()
  /// check it at dispatch and throw DeadlineError once it expires, so a
  /// budgeted Newton loop can never sit inside an unbounded factorization
  /// chain. The per-call check is one clock read — negligible against the
  /// factorization itself. The caller must clear (or outlive) the pointer.
  void set_deadline(const Deadline* deadline) noexcept { deadline_ = deadline; }

  /// Dependency-level counts of the recorded factorization's forward (L)
  /// and backward (U) substitutions; 0 before factor(). n_levels << n is
  /// what makes the threaded solve pay.
  int forward_levels() const noexcept {
    return flev_ptr_.empty() ? 0 : static_cast<int>(flev_ptr_.size()) - 1;
  }
  int backward_levels() const noexcept {
    return blev_ptr_.empty() ? 0 : static_cast<int>(blev_ptr_.size()) - 1;
  }

  /// Number of full (pivot-searching) factorizations since analyze().
  /// Steady-state Newton/transient/AC loops should hold this at 1.
  int symbolic_factorizations() const noexcept { return symbolic_count_; }

 private:
  void factor_full();
  bool refactor();  ///< false = reused pivot degraded; caller re-runs full
  /// One column of the refactorization replay, scattering through `x`
  /// (length n, all-zero on entry, all-zero again on a true return). A
  /// false return means the reused pivot degraded; `x` is left dirty and
  /// the caller clears it wholesale.
  bool refactor_column(int jj, T* x);
  bool refactor_parallel();  ///< level-scheduled refactor(); same contract
  int dfs_reach(int start, int top);
  void min_degree_order();
  void amd_order();
  /// Symmetrized (pattern + pattern^T) adjacency, sorted, diagonal-free.
  std::vector<std::vector<int>> symmetrized_adjacency() const;
  /// Builds the transposed-factor (row-gather) views and the forward /
  /// backward dependency levels; runs once per symbolic factorization.
  void build_solve_schedule();
  template <typename RowFn>
  void run_levels(const std::vector<int>& lev_ptr, const std::vector<int>& lev_rows,
                  const RowFn& row_fn) const;

  int n_ = -1;

  // Pattern: CSC copy of the analyze()d CSR pattern plus the slot mapping.
  std::vector<int> col_ptr_, row_idx_;
  std::vector<int> csc_of_csr_;  ///< CSR slot -> CSC slot
  std::vector<T> csc_vals_;
  std::vector<int> q_;  ///< fill-reducing column order: pivotal j eliminates column q_[j]
  std::vector<double> rscale_;  ///< per-row 1/max applied to the factored values

  // Factorization (row indices in pivotal space once factored_ is set).
  // L is unit-lower with the diagonal stored explicitly as each column's
  // first entry; U stores each column's diagonal (the pivot) last.
  std::vector<int> pinv_;      ///< original row -> pivotal position
  std::vector<int> lp_, li_;   ///< L: col ptr / row idx
  std::vector<T> lx_;
  std::vector<int> up_, ui_;   ///< U: col ptr / row idx
  std::vector<T> ux_;
  bool factored_ = false;
  int symbolic_count_ = 0;

  // Row-gather solve machinery, rebuilt per symbolic factorization. The
  // transposed views index back into lx_/ux_ (via *_map_), so numeric
  // refactorizations keep them valid for free.
  std::vector<int> lt_ptr_, lt_idx_, lt_map_;  ///< L^T rows (diagonal dropped)
  std::vector<int> ut_ptr_, ut_idx_, ut_map_;  ///< U^T rows (diagonal dropped)
  std::vector<int> flev_ptr_, flev_rows_;      ///< forward levels (rows grouped)
  std::vector<int> blev_ptr_, blev_rows_;      ///< backward levels
  std::vector<int> rlev_ptr_, rlev_cols_;      ///< refactor column levels

  ThreadPool* pool_ = nullptr;  ///< non-owning; shared with the MNA assembly
  int solve_threads_ = 1;
  int min_level_rows_ = 48;
  int refactor_threads_ = 1;
  int min_level_cols_ = 16;
  const Deadline* deadline_ = nullptr;  ///< non-owning; checked at dispatch

  // Scratch reused across factorizations/solves (no per-iteration allocs).
  std::vector<T> x_;
  std::vector<int> xi_, stack_, pstack_;
  std::vector<char> visited_;
  mutable std::vector<T> tmp_;
  std::vector<std::vector<T>> rx_;  ///< per-chunk parallel-refactor scratch
};

using DSparseLu = SparseLu<double>;
using ZSparseLu = SparseLu<std::complex<double>>;

}  // namespace usys
