#include "spice/sweep.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "spice/checkpoint.hpp"

namespace usys::spice {

SweepAxis SweepAxis::linspace(std::string name, double lo, double hi, int n) {
  SweepAxis axis;
  axis.name = std::move(name);
  if (n <= 1) {
    axis.values.push_back(lo);
    return axis;
  }
  axis.values.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    axis.values.push_back(lo + (hi - lo) * static_cast<double>(i) / (n - 1));
  return axis;
}

double SweepPoint::value(const std::string& name) const {
  for (const auto& [key, val] : params) {
    if (key == name) return val;
  }
  throw std::out_of_range("sweep point has no parameter '" + name + "'");
}

std::vector<SweepPoint> sweep_grid(const std::vector<SweepAxis>& axes) {
  std::vector<SweepPoint> grid;
  if (axes.empty()) return grid;
  std::size_t total = 1;
  for (const auto& axis : axes) {
    if (axis.values.empty()) return grid;  // empty axis -> empty grid
    total *= axis.values.size();
  }
  grid.reserve(total);
  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t p = 0; p < total; ++p) {
    SweepPoint point;
    point.params.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a)
      point.params.emplace_back(axes[a].name, axes[a].values[idx[a]]);
    grid.push_back(std::move(point));
    // Odometer increment, last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
    }
  }
  return grid;
}

bool shard_owns(std::size_t index, int shard_index, int shard_count) noexcept {
  if (shard_count <= 1) return true;
  return index % static_cast<std::size_t>(shard_count) ==
         static_cast<std::size_t>(shard_index - 1);
}

SweepRunner::SweepRunner(int threads) : threads_(ThreadPool::resolve_threads(threads)) {}

namespace {

/// The isolation boundary: whatever escapes the job becomes a structured
/// per-point failure, never a batch abort. bad_alloc is distinguished (the
/// one exception a survivability sweep most wants to see by kind); anything
/// else is internal_error. `error` stays exactly e.what() — the stable
/// contract existing callers rely on.
SweepOutcome run_isolated(const SweepRunner::RetryJob& job, const SweepPoint& point,
                          int attempt) {
  SweepOutcome out;
  try {
    out = job(point, attempt);
  } catch (const std::bad_alloc&) {
    out = SweepOutcome{};
    out.error = "allocation failure";
    out.failure = make_failure(FailureKind::alloc_failure, "sweep", "std::bad_alloc");
  } catch (const std::exception& e) {
    out = SweepOutcome{};
    out.error = e.what();
    out.failure = make_failure(FailureKind::internal_error, "sweep", e.what());
  }
  // A job may signal failure without filling the structured record (legacy
  // jobs set only ok/error); backfill so the checkpoint always has a kind.
  if (!out.ok && out.failure.ok())
    out.failure = make_failure(FailureKind::internal_error, "sweep", out.error);
  return out;
}

}  // namespace

std::vector<SweepOutcome> SweepRunner::run(const std::vector<SweepPoint>& grid,
                                           const Job& job) const {
  return run(
      grid, [&job](const SweepPoint& p, int /*attempt*/) { return job(p); },
      SweepOptions{});
}

std::vector<SweepOutcome> SweepRunner::run(const std::vector<SweepPoint>& grid,
                                           const RetryJob& job,
                                           const SweepOptions& opts) const {
  std::vector<SweepOutcome> results(grid.size());

  // --- Resume: restore completed points before scheduling anything --------
  // "Completed" means recorded ok with the same parameters; failed points
  // are unfinished and re-run (that is what resuming is for). A parameter
  // mismatch means the checkpoint belongs to a different grid — refuse
  // rather than silently mixing results.
  if (!opts.resume_path.empty()) {
    CheckpointData ckpt;
    std::string err;
    if (!load_checkpoint(opts.resume_path, ckpt, &err))
      throw std::runtime_error("sweep resume: " + err);
    for (const auto& [index, rec] : ckpt.records) {
      if (index < 0 || static_cast<std::size_t>(index) >= grid.size())
        throw std::runtime_error(
            "sweep resume: checkpoint index " + std::to_string(index) +
            " outside the grid (" + std::to_string(grid.size()) + " points)");
      const auto k = static_cast<std::size_t>(index);
      if (rec.point.params != grid[k].params)
        throw std::runtime_error("sweep resume: checkpoint point " + std::to_string(index) +
                                 " has different parameters than the grid — wrong "
                                 "checkpoint file for this sweep");
      if (!rec.outcome.ok) continue;  // unfinished: re-run
      results[k] = rec.outcome;
      results[k].restored = true;
      results[k].attempts = 0;
    }
  }

  // --- Work list: on-shard, not restored ----------------------------------
  std::vector<std::size_t> todo;
  todo.reserve(grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    if (results[k].restored) continue;
    if (!shard_owns(k, opts.shard_index, opts.shard_count)) {
      results[k].skipped = true;
      continue;
    }
    todo.push_back(k);
  }

  std::unique_ptr<CheckpointWriter> writer;
  std::mutex writer_mu;
  if (!opts.checkpoint_path.empty())
    writer = std::make_unique<CheckpointWriter>(opts.checkpoint_path);

  if (!todo.empty()) {
    ThreadPool pool(std::min<int>(threads_, static_cast<int>(todo.size())));
    pool.run(static_cast<int>(todo.size()), [&](int i) {
      const std::size_t k = todo[static_cast<std::size_t>(i)];
      SweepOutcome out = run_isolated(job, grid[k], 0);
      out.attempts = 1;
      for (int attempt = 1; !out.ok && attempt <= opts.retries; ++attempt) {
        SweepOutcome retry = run_isolated(job, grid[k], attempt);
        retry.attempts = attempt + 1;
        out = std::move(retry);
      }
      if (writer) {
        // Journal the FINAL verdict only (retries are one point's attempts,
        // not separate records); serialize appends — completion order is
        // nondeterministic, the per-index records make that harmless.
        std::lock_guard<std::mutex> lock(writer_mu);
        writer->append(static_cast<long>(k), grid[k], out);
      }
      results[k] = std::move(out);
    });
  }
  return results;
}

}  // namespace usys::spice
