#include "server/protocol.hpp"

#include "common/json.hpp"

namespace usys::server {

bool parse_request(const std::string& line, Request& out, std::string& error) {
  const auto doc = json_parse(line);
  if (!doc || !doc->is_object()) {
    error = "malformed JSON request";
    return false;
  }
  if (static_cast<int>(doc->get_number("v", 0)) != kProtocolVersion) {
    error = "missing or unsupported protocol version (want \"v\":1)";
    return false;
  }
  const std::string op = doc->get_string("op", "run");
  if (op == "run") {
    out.op = Request::Op::run;
  } else if (op == "sweep") {
    out.op = Request::Op::sweep;
  } else if (op == "stats") {
    out.op = Request::Op::stats;
  } else if (op == "ping") {
    out.op = Request::Op::ping;
  } else if (op == "shutdown") {
    out.op = Request::Op::shutdown;
  } else {
    error = "unknown op '" + op + "'";
    return false;
  }
  if (out.op != Request::Op::run && out.op != Request::Op::sweep) return true;

  out.netlist = doc->get_string("netlist");
  if (out.netlist.empty()) {
    error = "run request needs a non-empty \"netlist\"";
    return false;
  }
  out.hdl_mode = doc->get_string("hdl");
  out.timeout_ms = doc->get_number("timeout_ms", 0.0);
  out.threads = static_cast<int>(doc->get_number("threads", 1.0));
  out.partition = doc->get_bool("partition", false);
  out.no_cache = doc->get_bool("no_cache", false);
  out.set_specs.clear();
  if (const JsonValue* set = doc->find("set"); set != nullptr && set->is_array()) {
    for (const auto& item : set->items()) {
      if (!item.is_string()) {
        error = "\"set\" entries must be strings (\"DEV.PARAM=value\")";
        return false;
      }
      out.set_specs.push_back(item.as_string());
    }
  }
  if (out.timeout_ms < 0.0 || out.threads < 0) {
    error = "timeout_ms and threads must be >= 0";
    return false;
  }
  if (out.op == Request::Op::sweep) {
    out.mc = static_cast<int>(doc->get_number("mc", 1.0));
    if (out.mc < 1 || out.mc > 10'000'000) {
      error = "\"mc\" must be an integer in [1, 1e7]";
      return false;
    }
    out.seed = doc->get_string("seed", "0");
    out.sweep_specs.clear();
    if (const JsonValue* sw = doc->find("sweep"); sw != nullptr && sw->is_array()) {
      for (const auto& item : sw->items()) {
        if (!item.is_string()) {
          error = "\"sweep\" entries must be strings (\"name=spec\")";
          return false;
        }
        out.sweep_specs.push_back(item.as_string());
      }
    }
  }
  return true;
}

std::string build_request(const Request& req) {
  JsonValue doc = JsonValue::make_object();
  doc.set("v", JsonValue::make_number(kProtocolVersion));
  switch (req.op) {
    case Request::Op::stats: doc.set("op", JsonValue::make_string("stats")); break;
    case Request::Op::ping: doc.set("op", JsonValue::make_string("ping")); break;
    case Request::Op::shutdown: doc.set("op", JsonValue::make_string("shutdown")); break;
    case Request::Op::run:
    case Request::Op::sweep: {
      doc.set("op", JsonValue::make_string(req.op == Request::Op::run ? "run" : "sweep"));
      doc.set("netlist", JsonValue::make_string(req.netlist));
      if (!req.hdl_mode.empty()) doc.set("hdl", JsonValue::make_string(req.hdl_mode));
      if (!req.set_specs.empty()) {
        JsonValue set = JsonValue::make_array();
        for (const auto& s : req.set_specs) set.push_back(JsonValue::make_string(s));
        doc.set("set", std::move(set));
      }
      if (req.timeout_ms > 0.0) doc.set("timeout_ms", JsonValue::make_number(req.timeout_ms));
      if (req.threads != 1) doc.set("threads", JsonValue::make_number(req.threads));
      if (req.partition) doc.set("partition", JsonValue::make_bool(true));
      if (req.no_cache) doc.set("no_cache", JsonValue::make_bool(true));
      if (req.op == Request::Op::sweep) {
        if (req.mc != 1) doc.set("mc", JsonValue::make_number(req.mc));
        if (req.seed != "0") doc.set("seed", JsonValue::make_string(req.seed));
        if (!req.sweep_specs.empty()) {
          JsonValue sw = JsonValue::make_array();
          for (const auto& s : req.sweep_specs) sw.push_back(JsonValue::make_string(s));
          doc.set("sweep", std::move(sw));
        }
      }
      break;
    }
  }
  return doc.dump();
}

// ---------------------------------------------------------------------------
// Frames. Built with the append helpers (not JsonValue) on the hot paths:
// a rows frame for an array-scale transient carries megabytes of numbers.
// ---------------------------------------------------------------------------

namespace {

std::string frame_head(const char* frame) {
  std::string out = "{\"v\":1,\"frame\":\"";
  out += frame;
  out += '"';
  return out;
}

}  // namespace

std::string status_frame(long job_id, const std::string& hash, const char* cached,
                         int queue_depth) {
  std::string out = frame_head("status");
  out += ",\"job\":" + std::to_string(job_id);
  out += ",\"hash\":";
  json_append_escaped(out, hash);
  out += ",\"cached\":";
  json_append_escaped(out, cached);
  out += ",\"queue_depth\":" + std::to_string(queue_depth) + "}";
  return out;
}

std::string series_frame(std::size_t analysis, const char* kind,
                         const std::vector<std::string>& columns) {
  std::string out = frame_head("series");
  out += ",\"analysis\":" + std::to_string(analysis);
  out += ",\"kind\":";
  json_append_escaped(out, kind);
  out += ",\"columns\":[";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ',';
    json_append_escaped(out, columns[i]);
  }
  out += "]}";
  return out;
}

std::string rows_frame(std::size_t analysis,
                       const std::vector<std::vector<double>>& rows) {
  std::string out = frame_head("rows");
  out += ",\"analysis\":" + std::to_string(analysis);
  out += ",\"data\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ',';
    out += '[';
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += ',';
      json_append_double(out, rows[r][c]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

std::string end_series_frame(std::size_t analysis, std::size_t points) {
  std::string out = frame_head("end_series");
  out += ",\"analysis\":" + std::to_string(analysis);
  out += ",\"points\":" + std::to_string(points) + "}";
  return out;
}

std::string error_frame(int code, const std::string& kind, const std::string& message) {
  std::string out = frame_head("error");
  out += ",\"code\":" + std::to_string(code);
  out += ",\"kind\":";
  json_append_escaped(out, kind);
  out += ",\"message\":";
  json_append_escaped(out, message);
  out += '}';
  return out;
}

std::string busy_frame(int queue_depth, int capacity) {
  std::string out = frame_head("busy");
  out += ",\"queue_depth\":" + std::to_string(queue_depth);
  out += ",\"capacity\":" + std::to_string(capacity);
  out += ",\"message\":\"job queue full; retry later\"}";
  return out;
}

std::string done_frame(bool ok, int exit_code, bool parsed, bool bound, bool rebound,
                       int symbolic_factorizations, double elapsed_ms,
                       const char* cached) {
  std::string out = frame_head("done");
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"exit_code\":" + std::to_string(exit_code);
  out += ",\"parsed\":";
  out += parsed ? "true" : "false";
  out += ",\"bound\":";
  out += bound ? "true" : "false";
  out += ",\"rebound\":";
  out += rebound ? "true" : "false";
  out += ",\"symbolic\":" + std::to_string(symbolic_factorizations);
  out += ",\"elapsed_ms\":";
  json_append_double(out, elapsed_ms);
  out += ",\"cached\":";
  json_append_escaped(out, cached);
  out += '}';
  return out;
}

std::string sweep_stats_frame(const spice::StatsRun& run) {
  const spice::YieldSummary y = run.yield();
  std::string out = frame_head("sweep_stats");
  out += ",\"points\":" + std::to_string(run.total_points);
  out += ",\"ran\":" + std::to_string(y.n);
  out += ",\"ok\":" + std::to_string(y.ok);
  out += ",\"pass\":" + std::to_string(y.pass);
  out += ",\"yield\":";
  json_append_double(out, y.yield);
  out += ",\"metrics\":[";
  bool first = true;
  for (const auto& s : run.metric_summaries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json_append_escaped(out, s.name);
    out += ",\"n\":" + std::to_string(s.n);
    out += ",\"mean\":";
    json_append_double(out, s.mean);
    out += ",\"stddev\":";
    json_append_double(out, s.stddev);
    out += ",\"min\":";
    json_append_double(out, s.min);
    out += ",\"max\":";
    json_append_double(out, s.max);
    out += ",\"q\":[";
    for (std::size_t i = 0; i < s.quantiles.size(); ++i) {
      if (i > 0) out += ',';
      out += '[';
      json_append_double(out, s.quantiles[i].q);
      out += ',';
      json_append_double(out, s.quantiles[i].value);
      out += ']';
    }
    out += "]}";
  }
  out += "],\"measures\":[";
  for (std::size_t m = 0; m < y.measure_failures.size(); ++m) {
    if (m > 0) out += ',';
    out += '[';
    json_append_escaped(out, y.measure_failures[m].first);
    out += ',';
    out += std::to_string(y.measure_failures[m].second);
    out += ']';
  }
  out += "]}";
  return out;
}

std::string pong_frame() { return frame_head("pong") + "}"; }
std::string bye_frame() { return frame_head("bye") + "}"; }

}  // namespace usys::server
