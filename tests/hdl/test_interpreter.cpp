// The HDL interpreter as a circuit device: Listing 1 in the Fig. 3 system,
// agreement with the native C++ transducer, effort ports, and DC semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "core/reference.hpp"
#include "core/resonator_system.hpp"
#include "core/transducers.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::hdl {
namespace {

using spice::Circuit;
using spice::TranOptions;

std::map<std::string, double> paper_generics() {
  return {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}};
}

/// Fig. 3 system with an HDL transducer instance.
struct HdlSystem {
  std::unique_ptr<Circuit> ckt;
  int drive = -1;
  int vel = -1;
  int disp = -1;
};

HdlSystem build_hdl_system(const std::string& source, const std::string& entity,
                           std::unique_ptr<spice::Waveform> wave) {
  HdlSystem sys;
  sys.ckt = std::make_unique<Circuit>();
  sys.drive = sys.ckt->add_node("drive", Nature::electrical);
  sys.vel = sys.ckt->add_node("vel", Nature::mechanical_translation);
  sys.disp = sys.ckt->add_node("disp", Nature::mechanical_translation);
  sys.ckt->add<spice::VSource>("V1", sys.drive, Circuit::kGround, std::move(wave));
  sys.ckt->add_device(instantiate(
      "XT", source, entity, paper_generics(),
      {sys.drive, Circuit::kGround, sys.vel, Circuit::kGround}));
  sys.ckt->add<spice::Mass>("M1", sys.vel, 1e-4);
  sys.ckt->add<spice::Spring>("K1", sys.vel, Circuit::kGround, 200.0);
  sys.ckt->add<spice::Damper>("D1", sys.vel, Circuit::kGround, 40e-3);
  sys.ckt->add<spice::StateIntegrator>("XD", sys.disp, sys.vel);
  return sys;
}

std::unique_ptr<spice::Waveform> step_to(double v) {
  return std::make_unique<spice::PwlWave>(
      std::vector<std::pair<double, double>>{{0.0, 0.0}, {5e-3, v}, {1.0, v}});
}

TEST(Interpreter, Listing1StaticDeflection) {
  auto sys = build_hdl_system(stdlib::paper_listing1(), "eletran", step_to(10.0));
  TranOptions opts;
  opts.tstop = 80e-3;
  const auto res = api::transient(*sys.ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  core::ResonatorParams p;
  const double x_expected = core::static_displacement_transverse(p, 10.0);
  EXPECT_NEAR(res.sample(80e-3, sys.disp), x_expected, std::abs(x_expected) * 0.02);
}

TEST(Interpreter, Listing1MatchesNativeDeviceOverTime) {
  auto hdl_sys = build_hdl_system(stdlib::transverse_energy(), "etransverse",
                                  step_to(12.0));
  TranOptions opts;
  opts.tstop = 40e-3;
  opts.dt_max = 5e-5;
  const auto rh = api::transient(*hdl_sys.ckt, opts);
  ASSERT_TRUE(rh.ok) << rh.error;

  core::ResonatorParams p;
  auto native = core::build_resonator_system(p, core::TransducerModelKind::behavioral,
                                             step_to(12.0));
  const auto rn = api::transient(*native.circuit, opts);
  ASSERT_TRUE(rn.ok) << rn.error;

  for (double t : {5e-3, 10e-3, 20e-3, 40e-3}) {
    const double xh = rh.sample(t, hdl_sys.disp);
    const double xn = rn.sample(t, native.node_disp);
    EXPECT_NEAR(xh, xn, std::abs(xn) * 0.02 + 1e-12) << "t=" << t;
  }
}

TEST(Interpreter, DcPinsIntegAtInitialValue) {
  // At DC the HDL model's displacement state must read its initial value
  // (HDL-A semantics), so the DC force equals F(V, x=0).
  auto sys = build_hdl_system(stdlib::paper_listing1(), "eletran",
                              std::make_unique<spice::DcWave>(10.0));
  const auto op = api::operating_point(*sys.ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(sys.vel), 0.0, 1e-9);
}

TEST(Interpreter, EffortPortElectromagneticDc) {
  // emagnetic has a '.v %=' electrical port: at DC, ddt() = 0 so the coil is
  // a short; current = V/R and the armature force matches Table 3.
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int coil = ckt.add_node("coil", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add<spice::VSource>("V1", drive, Circuit::kGround, 5.0);
  ckt.add<spice::Resistor>("R1", drive, coil, 50.0);
  ckt.add_device(instantiate("XM", stdlib::electromagnetic(), "emagnetic",
                             {{"A", 1e-4}, {"d", 1e-3}, {"N", 100.0}},
                             {coil, Circuit::kGround, vel, Circuit::kGround}));
  auto& spring = ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 1000.0);
  const auto op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(coil), 0.0, 1e-6);

  core::TransducerGeometry g;
  g.area = 1e-4;
  g.gap = 1e-3;
  g.turns = 100;
  g.mu0 = 1.2566370614e-6;  // the stdlib model's init constant
  const double f_expected = core::force_electromagnetic(g, 0.1, 0.0);
  EXPECT_NEAR(spring.displacement(op.x) * 1000.0, f_expected,
              std::abs(f_expected) * 1e-3);
}

TEST(Interpreter, ElectrodynamicGyratorDc) {
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int coil = ckt.add_node("coil", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add<spice::VSource>("V1", drive, Circuit::kGround, 1.0);
  ckt.add<spice::Resistor>("R1", drive, coil, 100.0);
  ckt.add_device(instantiate("XD", stdlib::electrodynamic(), "edynamic",
                             {{"N", 100.0}, {"r", 5e-3}, {"B", 1.0}},
                             {coil, Circuit::kGround, vel, Circuit::kGround}));
  ckt.add<spice::Damper>("DM", vel, Circuit::kGround, 2.0);
  const auto op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  core::TransducerGeometry g;
  g.turns = 100;
  g.radius = 5e-3;
  g.b_field = 1.0;
  const double t_fac = core::transduction_electrodynamic(g);
  const double u_expected = t_fac * 1.0 / (2.0 * 100.0 + t_fac * t_fac);
  EXPECT_NEAR(op.at(vel), u_expected, std::abs(u_expected) * 1e-4);
}

TEST(Interpreter, PinCountMismatchThrows) {
  EXPECT_THROW(instantiate("X", stdlib::paper_listing1(), "eletran", paper_generics(),
                           {0, 1}),
               spice::CircuitError);
}

TEST(Interpreter, NatureMismatchAtBindThrows) {
  Circuit ckt;
  const int e1 = ckt.add_node("e1", Nature::electrical);
  const int e2 = ckt.add_node("e2", Nature::electrical);
  const int e3 = ckt.add_node("e3", Nature::electrical);
  const int e4 = ckt.add_node("e4", Nature::electrical);
  ckt.add_device(
      instantiate("X", stdlib::paper_listing1(), "eletran", paper_generics(),
                  {e1, e2, e3, e4}));
  EXPECT_THROW(ckt.bind_all(), spice::CircuitError);
}

TEST(Interpreter, IntegStateAccessor) {
  auto sys = build_hdl_system(stdlib::paper_listing1(), "eletran", step_to(10.0));
  TranOptions opts;
  opts.tstop = 60e-3;
  const auto res = api::transient(*sys.ckt, opts);
  ASSERT_TRUE(res.ok);
  auto* dev = dynamic_cast<HdlDevice*>(sys.ckt->find_device("XT"));
  ASSERT_NE(dev, nullptr);
  // Site 0 is x = integ(S); it must track the probe node.
  EXPECT_NEAR(dev->integ_state(0), res.sample(60e-3, sys.disp),
              std::abs(res.sample(60e-3, sys.disp)) * 1e-6 + 1e-15);
}

}  // namespace
}  // namespace usys::hdl
