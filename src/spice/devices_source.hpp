// Independent sources (electrical and mechanical).
#pragma once

#include <memory>

#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace usys::spice {

/// Independent voltage source (effort source). Positive terminal a.
/// Carries a branch current unknown; supports an AC magnitude/phase for
/// small-signal sweeps.
class VSource : public Device {
 public:
  VSource(std::string name, int a, int b, std::unique_ptr<Waveform> wave,
          Nature nature = Nature::electrical, double ac_mag = 0.0, double ac_phase_deg = 0.0);
  /// Convenience: DC source.
  VSource(std::string name, int a, int b, double dc_value,
          Nature nature = Nature::electrical);

  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  void ac_rhs(ZVector& rhs) const override;
  void breakpoints(std::vector<double>& out) const override;

  /// Branch unknown carrying the source current (valid after bind).
  int branch() const noexcept { return br_; }
  const Waveform& waveform() const noexcept { return *wave_; }

  /// "dc" is overridable only while the source IS a DC source (swapping a
  /// PULSE/SIN drive for a constant would not round-trip through
  /// get_param, so warm-reuse baselines could not be restored).
  bool set_param(std::string_view key, double value) override;
  bool get_param(std::string_view key, double& out) const override;

 private:
  int a_, b_;
  std::unique_ptr<Waveform> wave_;
  Nature nature_;
  double ac_mag_, ac_phase_deg_;
  int br_ = -1;
};

/// Independent current source: current flows from a through the source to b
/// (SPICE convention).
class ISource : public Device {
 public:
  ISource(std::string name, int a, int b, std::unique_ptr<Waveform> wave,
          Nature nature = Nature::electrical, double ac_mag = 0.0, double ac_phase_deg = 0.0);
  ISource(std::string name, int a, int b, double dc_value,
          Nature nature = Nature::electrical);

  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void lint(LintSink& sink) const override;
  void ac_rhs(ZVector& rhs) const override;
  void breakpoints(std::vector<double>& out) const override;

  /// Same contract as VSource: "dc", DC-waveform sources only.
  bool set_param(std::string_view key, double value) override;
  bool get_param(std::string_view key, double& out) const override;

 private:
  int a_, b_;
  std::unique_ptr<Waveform> wave_;
  Nature nature_;
  double ac_mag_, ac_phase_deg_;
};

/// External force applied to a mechanical node (flow source into the node):
/// positive value pushes the node toward positive velocity.
class ForceSource : public ISource {
 public:
  ForceSource(std::string name, int node, std::unique_ptr<Waveform> wave)
      : ISource(std::move(name), Circuit::kGround, node, std::move(wave),
                Nature::mechanical_translation) {}
  ForceSource(std::string name, int node, double f0)
      : ISource(std::move(name), Circuit::kGround, node, f0,
                Nature::mechanical_translation) {}
};

/// Imposed velocity on a mechanical node (effort source), e.g. a shaker.
class VelocitySource : public VSource {
 public:
  VelocitySource(std::string name, int node, std::unique_ptr<Waveform> wave)
      : VSource(std::move(name), node, Circuit::kGround, std::move(wave),
                Nature::mechanical_translation) {}
};

}  // namespace usys::spice
