// Simulation-server throughput: what the warm-engine and result caches buy
// over a cold submission, and how job throughput scales with client
// concurrency against the bounded queue.
//
// An in-process SimServer listens on a /tmp socket; clients are plain
// UnixConn connections speaking the v1 wire protocol, so each measured
// iteration covers the full request path (connect, frame parse, queue,
// engine dispatch, row streaming) — the same bytes `usim --client` would
// move. Workload: an RC-ladder .op job sized well past the dense/sparse
// crossover, so a cold job pays parse + bind + preflight + symbolic
// factorization and a warm one pays only the numeric solve.
//
//   BM_ColdJob     — unique netlist text per job: every submission parses
//                    (engine cache kept small so evictions, not growth,
//                    are steady state)
//   BM_WarmEngine  — same hash, no_cache: engine-cache exact hits
//   BM_ResultHit   — same request byte-for-byte: replayed frames
//   BM_QueueDepth  — D concurrent clients hammering the result cache;
//                    items/s is delivered jobs per second
//
// The acceptance bar from the server PR — warm repeat >= 5x faster than
// cold — is checked in the summary table printed at exit (the result tier
// is the headline ratio; the engine tier must beat cold too).
//
// CI smoke mode: --benchmark_min_time=0.02s --benchmark_format=json
//                --benchmark_out=BENCH_server_throughput.json
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

using namespace usys;
using namespace usys::server;

namespace {

/// RC ladder with an .op card. `tag` lands in the title comment, so two
/// tags hash to two circuit identities with identical solve cost.
std::string ladder_netlist(int sections, long tag) {
  std::ostringstream os;
  os << "* ladder job " << tag << "\n";
  os << "V1 n0 0 5\n";
  for (int i = 0; i < sections; ++i) {
    os << "R" << i << " n" << i << " n" << (i + 1) << " 100\n";
    os << "C" << i << " n" << (i + 1) << " 0 1u\n";
  }
  os << ".op\n.end\n";
  return os.str();
}

constexpr int kSections = 200;

struct BenchServer {
  explicit BenchServer(const char* tag, int workers = 2, int queue = 128,
                       int engines = 4) {
    ServerOptions opts;
    opts.socket_path =
        "/tmp/usys_bench_" + std::to_string(::getpid()) + "_" + tag + ".sock";
    opts.workers = workers;
    opts.queue_capacity = queue;
    opts.engine_cache_capacity = engines;
    server = std::make_unique<SimServer>(opts);
    std::string error;
    ok = server->start(&error);
    if (!ok) std::fprintf(stderr, "bench server failed to start: %s\n", error.c_str());
  }
  ~BenchServer() { server->stop(); }
  std::unique_ptr<SimServer> server;
  bool ok = false;
};

/// Submits one run request and drains the stream. True iff a done frame with
/// "ok":true arrived (string scan — frame parsing is not what we measure).
bool submit_ok(const SimServer& server, const Request& req) {
  UnixConn conn = UnixConn::connect_to(server.socket_path());
  if (!conn.valid() || !conn.write_all(build_request(req) + "\n")) return false;
  std::string line;
  bool ok = false;
  while (conn.read_line(line, 30000)) {
    if (line.find("\"frame\":\"done\"") != std::string::npos)
      ok = line.find("\"ok\":true") != std::string::npos;
  }
  return ok;
}

Request run_request(std::string netlist, bool no_cache) {
  Request req;
  req.op = Request::Op::run;
  req.netlist = std::move(netlist);
  req.no_cache = no_cache;
  return req;
}

// Mean per-job wall times recorded by the tier benches for the exit summary.
double g_cold_ms = 0.0, g_warm_ms = 0.0, g_result_ms = 0.0;

void BM_ColdJob(benchmark::State& state) {
  BenchServer bs("cold");
  if (!bs.ok) { state.SkipWithError("server start failed"); return; }
  long tag = 0;
  for (auto _ : state) {
    if (!submit_ok(*bs.server, run_request(ladder_netlist(kSections, tag++), true)))
      state.SkipWithError("cold job failed");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["parses"] = static_cast<double>(bs.server->stats().parses);
}

void BM_WarmEngine(benchmark::State& state) {
  BenchServer bs("warm");
  if (!bs.ok) { state.SkipWithError("server start failed"); return; }
  const std::string netlist = ladder_netlist(kSections, 0);
  submit_ok(*bs.server, run_request(netlist, true));  // pay the cold job once
  for (auto _ : state) {
    if (!submit_ok(*bs.server, run_request(netlist, true)))
      state.SkipWithError("warm job failed");
  }
  state.SetItemsProcessed(state.iterations());
  const StatsSnapshot s = bs.server->stats();
  state.counters["exact_hits"] = static_cast<double>(s.exact_hits);
  state.counters["symbolic"] = static_cast<double>(s.symbolic_factorizations);
}

void BM_ResultHit(benchmark::State& state) {
  BenchServer bs("result");
  if (!bs.ok) { state.SkipWithError("server start failed"); return; }
  const std::string netlist = ladder_netlist(kSections, 0);
  submit_ok(*bs.server, run_request(netlist, false));  // populate the cache
  for (auto _ : state) {
    if (!submit_ok(*bs.server, run_request(netlist, false)))
      state.SkipWithError("result hit failed");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["result_hits"] = static_cast<double>(bs.server->stats().result_hits);
}

/// D concurrent clients, each submitting a fixed batch of result-cache jobs
/// per iteration. items/s across iterations is delivered server throughput
/// at that offered concurrency.
void BM_QueueDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  BenchServer bs("depth", /*workers=*/2, /*queue=*/128);
  if (!bs.ok) { state.SkipWithError("server start failed"); return; }
  const std::string netlist = ladder_netlist(kSections, 0);
  submit_ok(*bs.server, run_request(netlist, false));
  constexpr int kJobsPerClient = 4;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(depth));
    std::atomic<int> failures{0};
    for (int d = 0; d < depth; ++d) {
      clients.emplace_back([&]() {
        for (int j = 0; j < kJobsPerClient; ++j)
          if (!submit_ok(*bs.server, run_request(netlist, false))) ++failures;
      });
    }
    for (auto& t : clients) t.join();
    if (failures.load() != 0) state.SkipWithError("queued job failed");
  }
  state.SetItemsProcessed(state.iterations() * depth * kJobsPerClient);
  state.counters["depth"] = depth;
}

// UseRealTime throughout: the measured work happens on the server's worker
// threads, so the client thread's CPU time says nothing about job cost.
BENCHMARK(BM_ColdJob)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_WarmEngine)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ResultHit)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_QueueDepth)->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

// Custom main: run the registered benches, then measure the cold/warm/result
// tiers once more head-to-head (fixed job count, one server each) and print
// the speedup table the >= 5x acceptance bar reads.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using Clock = std::chrono::steady_clock;
  const auto time_jobs = [](const char* tag, bool no_cache, bool unique_text) {
    BenchServer bs(tag);
    constexpr int kJobs = 10;
    const std::string fixed = ladder_netlist(kSections, 0);
    if (!unique_text) submit_ok(*bs.server, run_request(fixed, no_cache));  // prime
    const auto t0 = Clock::now();
    for (int j = 0; j < kJobs; ++j) {
      const std::string text = unique_text ? ladder_netlist(kSections, j + 1) : fixed;
      if (!submit_ok(*bs.server, run_request(text, no_cache))) return -1.0;
    }
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count() / kJobs;
  };

  g_cold_ms = time_jobs("sum_cold", true, true);
  g_warm_ms = time_jobs("sum_warm", true, false);
  g_result_ms = time_jobs("sum_result", false, false);
  if (g_cold_ms <= 0.0 || g_warm_ms <= 0.0 || g_result_ms <= 0.0) {
    std::fprintf(stderr, "summary measurement failed\n");
    return 1;
  }
  std::printf("\n=== cache tier speedups (per job, %d-section ladder .op) ===\n", kSections);
  std::printf("  cold (parse+bind+symbolic+solve): %8.3f ms\n", g_cold_ms);
  std::printf("  warm engine (exact hash hit):     %8.3f ms  (%.1fx vs cold)\n",
              g_warm_ms, g_cold_ms / g_warm_ms);
  std::printf("  result cache (frame replay):      %8.3f ms  (%.1fx vs cold)\n",
              g_result_ms, g_cold_ms / g_result_ms);
  const bool pass = g_cold_ms / g_result_ms >= 5.0;
  std::printf("  acceptance (warm repeat >= 5x cold): %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
