// SparseLu (Gilbert–Peierls with partial pivoting + refactorization)
// against the dense lu_solve oracle: random round-trips, pivoting-required
// cases, singular detection, complex solves, and pattern reuse.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "common/matrix.hpp"
#include "common/sparse_lu.hpp"

namespace usys {
namespace {

struct Pattern {
  int n = 0;
  std::vector<int> row_ptr, col_idx;
};

/// Band of half-width 2 plus ~9 % random off-band entries.
Pattern random_pattern(int n, std::mt19937& rng) {
  Pattern p;
  p.n = n;
  p.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (std::abs(r - c) <= 2 || rng() % 11 == 0) p.col_idx.push_back(c);
    }
    p.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(p.col_idx.size());
  }
  return p;
}

/// Random values on the pattern, made diagonally dominant (keeps the
/// condition number low so sparse and dense solutions agree tightly).
std::vector<double> make_dominant(const Pattern& p, std::mt19937& rng) {
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  std::vector<double> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = ud(rng);
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] = off + 1.0;
  }
  return vals;
}

DMatrix to_dense(const Pattern& p, const std::vector<double>& vals) {
  DMatrix a(static_cast<std::size_t>(p.n), static_cast<std::size_t>(p.n));
  for (int r = 0; r < p.n; ++r)
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s)
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(p.col_idx[s])) =
          vals[static_cast<std::size_t>(s)];
  return a;
}

TEST(SparseLu, RandomRoundTripsMatchDenseLu) {
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  for (int n : {1, 2, 5, 23, 80}) {
    const Pattern p = random_pattern(n, rng);
    SparseLu<double> lu;
    lu.analyze(p.n, p.row_ptr, p.col_idx);
    const auto vals = make_dominant(p, rng);
    DMatrix a = to_dense(p, vals);
    DVector b(static_cast<std::size_t>(n));
    for (auto& v : b) v = ud(rng);
    DVector bd = b;
    lu.factor(vals);
    lu.solve(b);
    lu_solve(a, bd);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(b[static_cast<std::size_t>(i)], bd[static_cast<std::size_t>(i)],
                  1e-10 * std::max(1.0, std::abs(bd[static_cast<std::size_t>(i)])))
          << "n=" << n << " i=" << i;
  }
}

TEST(SparseLu, PivotingRequiredZeroDiagonal) {
  // [[0 2 0], [1 0 0], [4 0 3]] — column 0 must pivot off the diagonal.
  const std::vector<int> rp{0, 2, 4, 6};
  const std::vector<int> ci{0, 1, 0, 2, 0, 2};
  const std::vector<double> vals{0.0, 2.0, 1.0, 0.0, 4.0, 3.0};
  SparseLu<double> lu;
  lu.analyze(3, rp, ci);
  lu.factor(vals);
  // Solve for x = (1, 2, 3): b = A x.
  DVector b{4.0, 1.0, 13.0};
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_NEAR(b[2], 3.0, 1e-12);
}

TEST(SparseLu, SingularMatrixThrowsLikeDense) {
  // Two identical rows: rank deficient.
  const std::vector<int> rp{0, 2, 4, 6};
  const std::vector<int> ci{0, 1, 0, 1, 1, 2};
  const std::vector<double> vals{1.0, 2.0, 1.0, 2.0, 1.0, 1.0};
  SparseLu<double> lu;
  lu.analyze(3, rp, ci);
  EXPECT_THROW(lu.factor(vals), SingularMatrixError);

  DMatrix a = to_dense({3, rp, ci}, vals);
  DVector b{1.0, 1.0, 1.0};
  EXPECT_THROW(lu_solve(a, b), SingularMatrixError);
}

TEST(SparseLu, StructurallyEmptyColumnThrows) {
  // Column 1 never appears: structurally singular.
  const std::vector<int> rp{0, 1, 2};
  const std::vector<int> ci{0, 0};
  const std::vector<double> vals{1.0, 2.0};
  SparseLu<double> lu;
  lu.analyze(2, rp, ci);
  EXPECT_THROW(lu.factor(vals), SingularMatrixError);
}

TEST(SparseLu, ComplexRoundTripMatchesDense) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const int n = 40;
  const Pattern p = random_pattern(n, rng);
  std::vector<std::complex<double>> vals(p.col_idx.size());
  ZMatrix a(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = {ud(rng), ud(rng)};
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] += off + 1.0;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s)
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(p.col_idx[s])) =
          vals[static_cast<std::size_t>(s)];
  }
  ZVector b(static_cast<std::size_t>(n));
  for (auto& v : b) v = {ud(rng), ud(rng)};
  ZVector bd = b;
  ZSparseLu lu;
  lu.analyze(p.n, p.row_ptr, p.col_idx);
  lu.factor(vals);
  lu.solve(b);
  lu_solve(a, bd);
  for (int i = 0; i < n; ++i)
    EXPECT_LT(std::abs(b[static_cast<std::size_t>(i)] - bd[static_cast<std::size_t>(i)]),
              1e-10);
}

TEST(SparseLu, PatternReuseWithChangedValuesKeepsSymbolicAtOne) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const int n = 60;
  const Pattern p = random_pattern(n, rng);
  SparseLu<double> lu;
  lu.analyze(p.n, p.row_ptr, p.col_idx);
  auto vals = make_dominant(p, rng);

  // 20 smooth value updates (Newton-iteration-like): the pivot order must
  // hold, so exactly one symbolic factorization serves them all.
  for (int iter = 0; iter < 20; ++iter) {
    DMatrix a = to_dense(p, vals);
    DVector b(static_cast<std::size_t>(n));
    for (auto& v : b) v = ud(rng);
    DVector bd = b;
    lu.factor(vals);
    lu.solve(b);
    lu_solve(a, bd);
    for (int i = 0; i < n; ++i)
      EXPECT_NEAR(b[static_cast<std::size_t>(i)], bd[static_cast<std::size_t>(i)],
                  1e-9 * std::max(1.0, std::abs(bd[static_cast<std::size_t>(i)])));
    for (auto& v : vals) v *= 1.0 + 0.01 * ud(rng);  // smooth perturbation
  }
  EXPECT_EQ(lu.symbolic_factorizations(), 1);
}

TEST(SparseLu, RepivotsWhenReusedPivotDegrades) {
  // Start with a matrix whose pivots sit on the diagonal, then swap the
  // dominance to the off-diagonal: the reused pivot order degrades and the
  // solver must transparently re-run the full pivoting factorization.
  const std::vector<int> rp{0, 2, 4};
  const std::vector<int> ci{0, 1, 0, 1};
  SparseLu<double> lu;
  lu.analyze(2, rp, ci);
  lu.factor({10.0, 1.0, 1.0, 10.0});
  DVector b{12.0, 21.0};  // x = (1, 2)
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_EQ(lu.symbolic_factorizations(), 1);

  lu.factor({1e-9, 1.0, 1.0, 1e-9});  // anti-diagonal dominance
  DVector b2{2.0 + 1e-9, 1.0 + 2e-9};  // x = (1, 2)
  lu.solve(b2);
  EXPECT_NEAR(b2[0], 1.0, 1e-9);
  EXPECT_NEAR(b2[1], 2.0, 1e-9);
  EXPECT_EQ(lu.symbolic_factorizations(), 2);
}

TEST(SparseLu, OrderingIsAlwaysAValidPermutation) {
  std::mt19937 rng(31);
  for (int n : {1, 2, 9, 64, 150}) {
    const Pattern p = random_pattern(n, rng);
    for (LuOrdering ord : {LuOrdering::amd, LuOrdering::min_degree}) {
      SparseLu<double> lu;
      lu.analyze(p.n, p.row_ptr, p.col_idx, ord);
      ASSERT_EQ(lu.ordering().size(), static_cast<std::size_t>(n));
      std::vector<char> seen(static_cast<std::size_t>(n), 0);
      for (int v : lu.ordering()) {
        ASSERT_GE(v, 0);
        ASSERT_LT(v, n);
        EXPECT_FALSE(seen[static_cast<std::size_t>(v)]) << "duplicate column " << v;
        seen[static_cast<std::size_t>(v)] = 1;
      }
    }
  }
}

/// Reproducibility pin: the same pattern must yield the same ordering — and
/// therefore the same factor nonzero counts and bench numbers — on every
/// run and platform. Both orderings break every degree tie on the smallest
/// index, so two fresh instances and a re-analyze of the same instance all
/// agree exactly.
TEST(SparseLu, OrderingIsDeterministic) {
  std::mt19937 rng(77);
  for (int n : {40, 130}) {
    const Pattern p = random_pattern(n, rng);
    const auto vals = make_dominant(p, rng);
    for (LuOrdering ord : {LuOrdering::amd, LuOrdering::min_degree}) {
      SparseLu<double> a, b;
      a.analyze(p.n, p.row_ptr, p.col_idx, ord);
      b.analyze(p.n, p.row_ptr, p.col_idx, ord);
      EXPECT_EQ(a.ordering(), b.ordering());
      a.factor(vals);
      b.factor(vals);
      EXPECT_EQ(a.factor_nonzeros(), b.factor_nonzeros());
      // Re-analyzing in place must not depend on prior solver history.
      const std::vector<int> first = a.ordering();
      a.analyze(p.n, p.row_ptr, p.col_idx, ord);
      EXPECT_EQ(first, a.ordering());
    }
  }
}

TEST(SparseLu, AmdFillAtMostMinDegreeOnBandedPattern) {
  // Banded systems have a known-good elimination order; AMD's approximation
  // (plus supervariable merging) must not lose to the simple min-degree
  // baseline here. The circuit-level pin on the bench topologies lives in
  // tests/spice/test_solver_ordering.cpp.
  Pattern p;
  p.n = 300;
  p.row_ptr.assign(static_cast<std::size_t>(p.n) + 1, 0);
  for (int r = 0; r < p.n; ++r) {
    for (int c = std::max(0, r - 2); c <= std::min(p.n - 1, r + 2); ++c)
      p.col_idx.push_back(c);
    p.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(p.col_idx.size());
  }
  std::mt19937 rng(13);
  const auto vals = make_dominant(p, rng);
  SparseLu<double> amd, mdg;
  amd.analyze(p.n, p.row_ptr, p.col_idx, LuOrdering::amd);
  mdg.analyze(p.n, p.row_ptr, p.col_idx, LuOrdering::min_degree);
  amd.factor(vals);
  mdg.factor(vals);
  EXPECT_LE(amd.factor_nonzeros(), mdg.factor_nonzeros());
}

TEST(SparseLu, UsageErrors) {
  SparseLu<double> lu;
  EXPECT_THROW(lu.factor({1.0}), std::logic_error);
  DVector b{1.0};
  EXPECT_THROW(lu.solve(b), std::logic_error);
  lu.analyze(1, {0, 1}, {0});
  EXPECT_THROW(lu.factor({1.0, 2.0}), std::invalid_argument);  // wrong nnz
}

}  // namespace
}  // namespace usys
