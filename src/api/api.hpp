// usys::api — the one job-dispatch facade shared by the usim CLI and the
// simulation server.
//
// Before this layer, tools/usim.cpp carried three near-identical dispatch
// blocks (single-run op/tran/ac, plus a fourth copy inside the sweep job)
// and the server would have needed a fifth. The facade owns that logic once:
//
//   Session   — a parsed + bound + preflighted circuit with its
//               AnalysisEngine; the unit the server's warm cache stores.
//               Constructing one pays parse/bind/pattern-compile; running
//               more jobs on it pays only the analyses.
//   JobRequest — what varies per submission: parameter overrides
//               ("R1.r=50" against the bound circuit, no re-parse),
//               analysis-card substitution, thread/partition/deadline
//               options.
//   JobResult — per-analysis outcomes plus the provenance counters
//               (parsed/bound/rebound, symbolic factorization count) the
//               server's /stats and the warm-cache tests key on.
//
// The legacy free functions spice::operating_point / transient / ac_sweep /
// solve_dc are [[deprecated]] wrappers over the api:: equivalents below
// (docs/architecture.md has the migration table).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "spice/engine.hpp"
#include "spice/netlist.hpp"
#include "spice/sweep.hpp"

namespace usys::api {

/// Stable 64-bit FNV-1a hash (16 hex chars) of a job's circuit identity:
/// the netlist text plus the hdl-mode preset (the preset changes which
/// devices instantiate, so it is part of identity). The server keys its
/// warm-engine cache on this.
std::string content_hash(const std::string& netlist_text, const std::string& hdl_mode = "");

/// One device-parameter delta applied to a bound circuit via
/// Device::set_param — the warm path for "same circuit, new value" jobs.
struct ParamOverride {
  std::string device;  ///< netlist device name, matched verbatim ("XK3")
  std::string param;   ///< lower-case parameter key ("r", "k", "dc", ...)
  double value = 0.0;
};

/// Parses "DEVICE.PARAM=value" (value in SPICE number syntax, engineering
/// suffixes included). False on malformed specs; `out` untouched then.
bool parse_override(const std::string& spec, ParamOverride& out);

/// Per-job execution knobs — the CLI flags and the server's request fields
/// funnel into the same struct.
struct JobOptions {
  int assembly_threads = 1;   ///< NewtonOptions::assembly_threads
  int solve_threads = 1;      ///< NewtonOptions::solve_threads
  int refactor_threads = 1;   ///< NewtonOptions::refactor_threads
  spice::PartitionMode partition = spice::PartitionMode::off;
  double timeout_ms = 0.0;    ///< wall-clock budget PER ANALYSIS CARD; 0 = off
  /// Cooperative cancel (non-owning; must outlive the run). The server
  /// points this at the per-job token its disconnect/deadline monitor fires.
  const CancelToken* cancel = nullptr;
  /// Newton iteration-limit multiplier (sweep retries escalate this).
  int max_iters_scale = 1;
};

/// One job: overrides + options + (optionally) replacement analysis cards.
/// With `analyses` empty the session's own netlist cards run (or a default
/// .op when the netlist declared none) — the usim single-run contract.
struct JobRequest {
  std::vector<ParamOverride> overrides;
  JobOptions options;
  std::vector<spice::AnalysisCard> analyses;
};

/// Outcome of one analysis card. Exactly one of op/tran/ac is meaningful,
/// selected by `kind`.
struct AnalysisOutcome {
  spice::AnalysisCard::Kind kind = spice::AnalysisCard::Kind::op;
  bool ok = false;
  spice::OpResult op;
  spice::TranResult tran;
  spice::AcResult ac;
  /// The active result's failure record (ok() when the analysis succeeded).
  const FailureInfo& failure() const noexcept;
  /// Human-readable failure summary ("" when ok).
  std::string error() const;
};

struct JobResult {
  bool ok = false;
  /// The usim exit-code contract: 0 = all analyses succeeded, 1 = an
  /// analysis failed, 2 = bad request (unknown override device/parameter),
  /// 3 = deadline/cancel.
  int exit_code = 0;
  std::string error;    ///< summary of the first failure ("" when ok)
  FailureInfo failure;  ///< structured form of the same
  /// One entry per analysis that RAN (the job stops at the first failure).
  std::vector<AnalysisOutcome> analyses;

  // What this job actually paid — the warm-cache accounting /stats exposes.
  bool parsed = false;   ///< a netlist parse happened for this job
  bool bound = false;    ///< a fresh bind + pattern compile happened
  bool rebound = false;  ///< rebind() ran (parameter-override delta)
  int symbolic_factorizations = 0;  ///< summed over the job's analyses
};

/// Uniform tabular view of a finished analysis: .op is one row of node
/// efforts, .tran is time + per-node effort columns, .ac is frequency +
/// per-node dB/deg column pairs. The CLI's table/CSV writer and the
/// server's wire frames extract IDENTICAL columns and rows through this, so
/// the two transports can never drift. row_at borrows `outcome` and
/// `circuit`; both must outlive the view.
struct SeriesView {
  std::vector<std::string> columns;
  std::size_t rows = 0;
  std::function<std::vector<double>(std::size_t)> row_at;
};
SeriesView series_view(const AnalysisOutcome& outcome, spice::Circuit& circuit);

/// Fired after EACH analysis completes (ok or failed) with its index in
/// JobResult::analyses. CLI table printing and server frame streaming both
/// hang off this; a job with no callback just accumulates results.
using AnalysisCallback = std::function<void(std::size_t index, const AnalysisOutcome&)>;

/// A circuit admitted for jobs: parse + bind + static preflight happen at
/// construction, then any number of run() calls reuse the warm engine.
/// Non-copyable; the server wraps instances in shared_ptr and serializes
/// access per session (one job at a time per engine).
class Session {
 public:
  /// Parses `netlist_text` (full device set: spice built-ins + the core
  /// transducer/HDL cards), binds, and preflights. Throws
  /// spice::NetlistError on malformed netlists — including circuit
  /// construction conflicts, which are rethrown as line-0 netlist errors
  /// (the usim exit-2 contract).
  explicit Session(const std::string& netlist_text, const std::string& hdl_mode = "");

  /// Borrows an externally built circuit (tests, embedding); no netlist
  /// text, no analysis cards, hash() is "". The circuit must outlive the
  /// session.
  explicit Session(spice::Circuit& circuit);

  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& hash() const noexcept;
  const std::string& title() const noexcept;
  spice::Circuit& circuit() noexcept;
  spice::AnalysisEngine& engine() noexcept;
  /// Analysis cards the netlist declared (empty for borrowed circuits).
  const std::vector<spice::AnalysisCard>& cards() const noexcept;

  /// Runs one job: applies overrides (rebind), runs each analysis card in
  /// order (stopping at the first failure), restores override baselines
  /// (rebind again), and reports per-analysis outcomes + provenance. The
  /// first run on a fresh session reports parsed/bound = true (it pays the
  /// construction cost); warm reruns report both false and — for the same
  /// analysis regime — zero extra symbolic factorizations.
  JobResult run(const JobRequest& request = {}, const AnalysisCallback& on_analysis = {});

  /// Cache-eviction hook: sheds warm solver state (AnalysisEngine::cool).
  void cool();
  /// Whether the engine currently holds warm solver state.
  bool warm() const noexcept;
  /// Jobs run() has completed on this session (server stats).
  long jobs_run() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Substitutes every `{name}` placeholder in `text` with the point's value
/// for `name`, printed %.17g so the substituted netlist round-trips the
/// exact double. The text half of the sweep-point contract: the same point
/// always produces the same netlist bytes.
std::string substitute_params(std::string text, const spice::SweepPoint& point);

/// The per-point sweep job shared by `usim --sweep` and the server's sweep
/// op: substitutes `point` into `text`, runs the netlist's analysis cards
/// through a fresh Session, and distills scalar metrics (per-node op
/// efforts / final transient values / last-point AC magnitudes; min/max/mean
/// aggregates above 16 nodes). `attempt` > 0 is a retry of a failed point —
/// Newton iteration limits double per attempt so a marginal point gets a
/// genuinely stronger solve, not a replay. Exceptions propagate; run this
/// under SweepRunner, whose isolation boundary converts them to per-point
/// failures.
spice::SweepOutcome run_sweep_point(const std::string& text,
                                    const spice::SweepPoint& point,
                                    const std::string& hdl_mode,
                                    const JobOptions& options, int attempt);

// Facade equivalents of the deprecated spice:: free functions — each runs
// on a fresh engine, exactly like the originals, so results are identical.
// Prefer a held Session (or spice::AnalysisEngine) for repeated runs.
spice::OpResult operating_point(spice::Circuit& circuit, const spice::DcOptions& opts = {});
spice::DcResult solve_dc(spice::Circuit& circuit, const spice::DcOptions& opts = {});
spice::TranResult transient(spice::Circuit& circuit, const spice::TranOptions& opts);
spice::AcResult ac_sweep(spice::Circuit& circuit, const spice::AcOptions& opts);

}  // namespace usys::api
