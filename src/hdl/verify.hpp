// Static verifier for compiled HDL bytecode (Level 2 of the diagnostics
// layer, docs/diagnostics.md).
//
// compile() (hdl/bytecode.cpp) is trusted to emit well-formed programs, but
// both executors index registers, constants, AD seed slots, unknowns, and
// integrator sites with NO runtime bounds checks — a malformed program is a
// silent out-of-bounds read/write or a wrong stamp deep inside Newton. This
// module is the backstop: verify_program() checks every invariant the VM and
// the codegen backend (which translates the same Insn stream) rely on, in one
// linear pass per code stream, so HdlDevice::bind can reject a bad program
// *before* either backend executes it.
//
// Checked invariants (rule ids are the `hdl-*` entries of the diagnostics
// catalog):
//   * program layout: register-file / frame / constant / seed table sizing,
//     seed->unknown and effort-pair rows inside the circuit's unknown vector;
//   * per-instruction operand bounds for every opcode (registers, constants,
//     unknown indices, seed slots, site ids, stamp signs);
//   * def-before-use dataflow over each flat code stream (frame registers are
//     pre-initialized, temporaries must be written before read);
//   * dead code: instructions whose result is never consumed by a stamp,
//     assert, state update, or later read (the straight-line analog of
//     unreachable code);
//   * stamps whose value register has a structurally empty gradient mask —
//     the contribution can never produce a Jacobian entry;
//   * ddt/integ site consistency between the transient and commit streams
//     (a site integrated in tran_code but never committed goes stale).
#pragma once

#include <string>
#include <vector>

#include "hdl/bytecode.hpp"

namespace usys::hdl {

enum class VerifySeverity { warning, error };

/// One finding. `stream` names the offending code stream ("dc", "tran",
/// "commit", or "" for program-level findings); `insn` is the instruction
/// index within it (-1 for program-level findings).
struct VerifyIssue {
  VerifySeverity severity = VerifySeverity::error;
  std::string rule;     ///< catalog id, e.g. "hdl-operand-bounds"
  std::string message;  ///< human-readable detail (entity-qualified)
  std::string stream;
  int insn = -1;
};

struct VerifyReport {
  std::vector<VerifyIssue> issues;

  bool has_errors() const noexcept;
  int error_count() const noexcept;
  /// All error messages joined with "; " (empty when clean of errors).
  std::string error_summary() const;
};

/// Statically verifies `prog` against a circuit with `unknown_count` global
/// unknowns. Pure function of its inputs; never throws. O(insns * seeds).
VerifyReport verify_program(const BytecodeProgram& prog, int unknown_count);

}  // namespace usys::hdl
