#include "hdl/stdlib.hpp"

namespace usys::hdl::stdlib {

std::string paper_listing1() {
  return R"(
-- Listing 1 of Romanowicz et al., ED&TC 1997 (transverse electrostatic
-- transducer of Fig. 2a). The mechanical contribution is written as the
-- absorbed flow +e0*er*A*V*V/(2(d+x)^2) = dW/dx, whose delivered force is
-- the paper's Table 3 value -e0*er*A*V^2/(2(d+x)^2).
ENTITY eletran IS
  GENERIC (A, d, er : analog);
  PIN (a, b : electrical; c, d : mechanical1);
END ENTITY eletran;

ARCHITECTURE a OF eletran IS
  VARIABLE e0, x : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, d].f %= e0*er*A*V*V/(2.0*(d + x)*(d + x));
  END RELATION;
END ARCHITECTURE a;
)";
}

std::string transverse_energy() {
  return R"(
-- Energy-complete transverse electrostatic transducer: the electrical
-- branch carries the full i = d(C(x) V)/dt = C ddt(V) + dC/dx S V,
-- restoring exact conservativity (Listing 1 omits the motional term).
ENTITY etransverse IS
  GENERIC (A, d, er : analog);
  PIN (a, b : electrical; c, d : mechanical1);
END ENTITY etransverse;

ARCHITECTURE energy OF etransverse IS
  VARIABLE e0, x, cap : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, d].tv;
      x := integ(S);
      cap := e0*er*A/(d + x);
      [a, b].i %= cap*ddt(V) - e0*er*A/((d + x)*(d + x))*S*V;
      [c, d].f %= e0*er*A*V*V/(2.0*(d + x)*(d + x));
  END RELATION;
END ARCHITECTURE energy;
)";
}

std::string parallel_electrostatic() {
  return R"(
-- Parallel (sliding plate) electrostatic transducer (Fig. 2b):
-- C(x) = e0*er*h*(l - x)/d; the delivered force -e0*er*h*V^2/(2 d) is
-- x-independent (Table 3 row b).
ENTITY eparallel IS
  GENERIC (h, l, d, er : analog);
  PIN (a, b : electrical; c, f : mechanical1);
END ENTITY eparallel;

ARCHITECTURE energy OF eparallel IS
  VARIABLE e0, x, cap : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, f].tv;
      x := integ(S);
      cap := e0*er*h*(l - x)/d;
      [a, b].i %= cap*ddt(V) - e0*er*h/d*S*V;
      [c, f].f %= e0*er*h*V*V/(2.0*d);
  END RELATION;
END ARCHITECTURE energy;
)";
}

std::string electromagnetic() {
  return R"(
-- Electromagnetic reluctance transducer (Fig. 2c):
-- L(x) = mu0*A*N^2/(2 (d+x)); v = ddt(L(x) i) (Table 3 row c). The
-- electrical port is effort-contributed so the branch current is readable.
ENTITY emagnetic IS
  GENERIC (A, d, N : analog);
  PIN (a, b : electrical; c, f : mechanical1);
END ENTITY emagnetic;

ARCHITECTURE energy OF emagnetic IS
  VARIABLE mu0, x, ind : analog;
  STATE I, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      mu0 := 1.2566370614e-6;
    PROCEDURAL FOR ac, transient =>
      I := [a, b].i;
      S := [c, f].tv;
      x := integ(S);
      ind := mu0*A*N*N/(2.0*(d + x));
      [a, b].v %= ddt(ind*I);
      [c, f].f %= mu0*A*N*N*I*I/(4.0*(d + x)*(d + x));
  END RELATION;
END ARCHITECTURE energy;
)";
}

std::string electrodynamic() {
  return R"(
-- Electrodynamic voice-coil transducer (Fig. 2d): back-EMF T*u plus the
-- coil self-inductance; delivered Lorentz force +T*i with T = 2 pi N r B
-- (Table 3 row d), i.e. absorbed mechanical flow -T*i.
ENTITY edynamic IS
  GENERIC (N, r, B : analog);
  PIN (a, b : electrical; c, f : mechanical1);
END ENTITY edynamic;

ARCHITECTURE energy OF edynamic IS
  VARIABLE mu0, pi, T, ind : analog;
  STATE I, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      mu0 := 1.2566370614e-6;
      pi := 3.14159265358979;
    PROCEDURAL FOR ac, transient =>
      I := [a, b].i;
      S := [c, f].tv;
      T := 2.0*pi*N*r*B;
      ind := mu0*N*N*r/2.0;
      [a, b].v %= ddt(ind*I) + T*S;
      [c, f].f %= -T*I;
  END RELATION;
END ARCHITECTURE energy;
)";
}

std::string all_models() {
  return paper_listing1() + transverse_energy() + parallel_electrostatic() +
         electromagnetic() + electrodynamic();
}

}  // namespace usys::hdl::stdlib
