#include "common/nature.hpp"

#include <array>
#include <ostream>

namespace usys {
namespace {

constexpr std::array<NatureInfo, kNatureCount> kTable = {{
    {Nature::electrical, "electrical",
     "voltage", "V", "current", "A", "charge", "C", "flux linkage", "Wb"},
    {Nature::mechanical_translation, "mechanical1",
     "velocity", "m/s", "force", "N", "displacement", "m", "momentum", "kg*m/s"},
    {Nature::mechanical_rotation, "rotational",
     "angular velocity", "rad/s", "torque", "N*m", "angle", "rad",
     "angular momentum", "kg*m^2/s"},
    {Nature::hydraulic, "hydraulic",
     "pressure", "Pa", "volume flow rate", "m^3/s", "volume", "m^3",
     "pressure momentum", "Pa*s"},
    {Nature::thermal, "thermal",
     "temperature", "K", "heat flow", "W", "heat", "J", "-", "-"},
}};

}  // namespace

const NatureInfo& nature_info(Nature n) noexcept {
  return kTable[static_cast<int>(n)];
}

bool parse_nature(std::string_view text, Nature& out) noexcept {
  for (const auto& info : kTable) {
    if (text == info.name) {
      out = info.nature;
      return true;
    }
  }
  // Aliases used in the literature / the paper's HDL-A dialect.
  if (text == "mechanical" || text == "kinematic" || text == "translational") {
    out = Nature::mechanical_translation;
    return true;
  }
  if (text == "mechanical2" || text == "rotational1") {
    out = Nature::mechanical_rotation;
    return true;
  }
  if (text == "fluidic") {
    out = Nature::hydraulic;
    return true;
  }
  return false;
}

std::string_view to_string(Nature n) noexcept { return nature_info(n).name; }

Nature nature_at(int index) noexcept { return kTable[static_cast<std::size_t>(index)].nature; }

std::ostream& operator<<(std::ostream& os, Nature n) { return os << to_string(n); }

}  // namespace usys
