// Bytecode-vs-AST executor parity: every HDL model used in tests/ and
// examples/ runs through both HdlExecMode paths and must agree at 1e-12
// across DC, transient, and AC — the compiled VM mirrors sym::Dual operation
// for operation, so agreement is normally exact. Plus edge cases: min/max/
// limit gradient (active-branch) selection and the ASSERT-on-commit path.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "api/api.hpp"
#include "hdl/bytecode.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"
#include "spice/solver.hpp"

namespace usys::hdl {
namespace {

using spice::Circuit;

constexpr double kTol = 1e-12;

void expect_close(double a, double b, const std::string& what) {
  EXPECT_NEAR(a, b, kTol * std::max(1.0, std::abs(b))) << what;
}

const char* kGuardedModel = R"(
ENTITY eguard IS
  GENERIC (A, d, er : analog);
  PIN (a, b : electrical; c, f : mechanical1);
END ENTITY eguard;
ARCHITECTURE g OF eguard IS
  VARIABLE e0, x, gap : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, f].tv;
      x := integ(S);
      ASSERT d + x;
      gap := max(d + x, 0.05*d);
      [a, b].i %= e0*er*A/gap*ddt(V);
      [c, f].f %= e0*er*A*V*V/(2.0*gap*gap);
  END RELATION;
END ARCHITECTURE g;
)";

/// A model exercising every function and operator the executors support.
const char* kKitchenSink = R"(
ENTITY esink IS
  GENERIC (k : analog);
  PIN (a, b : electrical);
END ENTITY esink;
ARCHITECTURE x OF esink IS
  VARIABLE V, y, z : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      V := [a, b].v;
      y := sin(V) + cos(0.5*V) - tan(0.1*V) + exp(-V*V) + log(2.0 + V*V)
           + sqrt(1.0 + V*V) + abs(V - 0.25) + pow(1.0 + V*V, 1.5) + V^2.0;
      z := min(y, 4.0*V) + max(0.1*y, -2.0) + limit(y, -1.0, 3.0) - (-V)/(2.0 + V*V);
      [a, b].i %= 1e-3*z + 1e-12*ddt(V);
  END RELATION;
END ARCHITECTURE x;
)";

struct ModelCase {
  std::string label;
  std::string source;
  std::string entity;
  std::map<std::string, double> generics;
};

std::vector<ModelCase> regression_models() {
  return {
      {"listing1", stdlib::paper_listing1(), "eletran",
       {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}},
      {"transverse_energy", stdlib::transverse_energy(), "etransverse",
       {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}},
      {"parallel", stdlib::parallel_electrostatic(), "eparallel",
       {{"h", 1e-3}, {"l", 2e-3}, {"d", 1e-5}, {"er", 1.0}}},
      {"electromagnetic", stdlib::electromagnetic(), "emagnetic",
       {{"A", 1e-4}, {"d", 1e-3}, {"N", 100.0}}},
      {"electrodynamic", stdlib::electrodynamic(), "edynamic",
       {{"N", 100.0}, {"r", 5e-3}, {"B", 1.0}}},
      {"guarded", kGuardedModel, "eguard",
       {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}},
  };
}

/// Builds the Fig. 3-style drive circuit around one transducer instance: a
/// pulse-driven electrical port into a mass-spring-damper mechanical port.
/// All stdlib models share the 4-pin (electrical pair, mechanical pair)
/// interface, so one harness serves every regression model.
std::unique_ptr<Circuit> build_system(const ModelCase& mc, HdlExecMode mode,
                                      int* disp_out) {
  auto ckt = std::make_unique<Circuit>();
  const int drive = ckt->add_node("drive", Nature::electrical);
  const int coil = ckt->add_node("coil", Nature::electrical);
  const int vel = ckt->add_node("vel", Nature::mechanical_translation);
  const int disp = ckt->add_node("disp", Nature::mechanical_translation);
  // ac_mag = 1 so the same harness serves the AC parity sweep.
  ckt->add<spice::VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 8.0}, {1.0, 8.0}}),
      Nature::electrical, 1.0);
  // The series resistor keeps effort-port models (emagnetic, edynamic) from
  // shorting the source; for flow-port models it is just a source impedance.
  ckt->add<spice::Resistor>("R1", drive, coil, 50.0);
  ckt->add_device(instantiate("XT", mc.source, mc.entity, mc.generics,
                              {coil, Circuit::kGround, vel, Circuit::kGround}, mode));
  ckt->add<spice::Mass>("M1", vel, 1e-4);
  ckt->add<spice::Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt->add<spice::Damper>("D1", vel, Circuit::kGround, 40e-3);
  ckt->add<spice::StateIntegrator>("XD", disp, vel);
  if (disp_out != nullptr) *disp_out = disp;
  return ckt;
}

TEST(BytecodeParity, DcAgreesAcrossAllModels) {
  for (const auto& mc : regression_models()) {
    auto ast = build_system(mc, HdlExecMode::ast, nullptr);
    auto vm = build_system(mc, HdlExecMode::bytecode, nullptr);
    const auto ra = api::operating_point(*ast);
    const auto rb = api::operating_point(*vm);
    ASSERT_TRUE(ra.converged) << mc.label;
    ASSERT_TRUE(rb.converged) << mc.label;
    ASSERT_EQ(ra.x.size(), rb.x.size()) << mc.label;
    for (std::size_t i = 0; i < ra.x.size(); ++i)
      expect_close(rb.x[i], ra.x[i], mc.label + " dc unknown " + std::to_string(i));
  }
}

TEST(BytecodeParity, TransientAgreesAcrossAllModels) {
  spice::TranOptions opts;
  opts.tstop = 20e-3;
  opts.dt_max = 1e-4;
  for (const auto& mc : regression_models()) {
    int disp_a = -1, disp_b = -1;
    auto ast = build_system(mc, HdlExecMode::ast, &disp_a);
    auto vm = build_system(mc, HdlExecMode::bytecode, &disp_b);
    const auto ra = api::transient(*ast, opts);
    const auto rb = api::transient(*vm, opts);
    ASSERT_TRUE(ra.ok) << mc.label << ": " << ra.error;
    ASSERT_TRUE(rb.ok) << mc.label << ": " << rb.error;
    // Identical arithmetic => identical adaptive step sequence.
    EXPECT_EQ(ra.time.size(), rb.time.size()) << mc.label;
    for (double t : {2e-3, 5e-3, 10e-3, 20e-3}) {
      expect_close(rb.sample(t, disp_b), ra.sample(t, disp_a),
                   mc.label + " tran disp at t=" + std::to_string(t));
    }
    // Every unknown at the final accepted point.
    ASSERT_EQ(ra.x.back().size(), rb.x.back().size()) << mc.label;
    for (std::size_t i = 0; i < ra.x.back().size(); ++i)
      expect_close(rb.x.back()[i], ra.x.back()[i],
                   mc.label + " tran final unknown " + std::to_string(i));
  }
}

TEST(BytecodeParity, AcAgreesAcrossAllModels) {
  spice::AcOptions opts;
  opts.f_start = 1.0;
  opts.f_stop = 1e4;
  opts.points = 5;  // per decade
  for (const auto& mc : regression_models()) {
    auto ast = build_system(mc, HdlExecMode::ast, nullptr);
    auto vm = build_system(mc, HdlExecMode::bytecode, nullptr);
    const auto ra = api::ac_sweep(*ast, opts);
    const auto rb = api::ac_sweep(*vm, opts);
    ASSERT_TRUE(ra.ok) << mc.label << ": " << ra.error;
    ASSERT_TRUE(rb.ok) << mc.label << ": " << rb.error;
    ASSERT_EQ(ra.freq.size(), rb.freq.size()) << mc.label;
    for (std::size_t k = 0; k < ra.freq.size(); ++k) {
      for (std::size_t i = 0; i < ra.x[k].size(); ++i) {
        expect_close(rb.x[k][i].real(), ra.x[k][i].real(),
                     mc.label + " ac re, f=" + std::to_string(ra.freq[k]));
        expect_close(rb.x[k][i].imag(), ra.x[k][i].imag(),
                     mc.label + " ac im, f=" + std::to_string(ra.freq[k]));
      }
    }
  }
}

/// Direct stamp-level parity at a fixed iterate: f, Jf, and the jq
/// extraction must match entry for entry (dense oracle path).
TEST(BytecodeParity, StampAndJqExtractionMatchEntrywise) {
  for (const auto& mc : regression_models()) {
    auto ckt = build_system(mc, HdlExecMode::bytecode, nullptr);
    ckt->bind_all();
    auto* dev = dynamic_cast<HdlDevice*>(ckt->find_device("XT"));
    ASSERT_NE(dev, nullptr) << mc.label;
    const std::size_t n = static_cast<std::size_t>(ckt->unknown_count());
    DVector x(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) x[i] = 0.3 + 0.1 * static_cast<double>(i);

    auto stamp_with = [&](HdlExecMode mode, DVector& f, DMatrix& jf, DMatrix& jq) {
      dev->set_exec_mode(mode);
      f.assign(n, 0.0);
      DVector q(n, 0.0);
      jf = DMatrix(n, n);
      jq = DMatrix(n, n);
      spice::EvalCtx ctx;
      ctx.mode = spice::AnalysisMode::dc;
      ctx.x = &x;
      ctx.f = &f;
      ctx.q = &q;
      ctx.jf = &jf;
      ctx.jq = &jq;
      dev->evaluate(ctx);
    };
    DVector fa, fb;
    DMatrix jfa, jfb, jqa, jqb;
    stamp_with(HdlExecMode::ast, fa, jfa, jqa);
    stamp_with(HdlExecMode::bytecode, fb, jfb, jqb);
    for (std::size_t r = 0; r < n; ++r) {
      expect_close(fb[r], fa[r], mc.label + " f row " + std::to_string(r));
      for (std::size_t c = 0; c < n; ++c) {
        expect_close(jfb(r, c), jfa(r, c), mc.label + " jf " + std::to_string(r) +
                                               "," + std::to_string(c));
        expect_close(jqb(r, c), jqa(r, c), mc.label + " jq " + std::to_string(r) +
                                               "," + std::to_string(c));
      }
    }
  }
}

/// min/max/limit pick the *gradient* of the active branch, not a blend; the
/// stamped conductance must switch with the operating point in both modes.
TEST(BytecodeParity, MinMaxLimitGradientFollowsActiveBranch) {
  const char* src = R"(
ENTITY epw IS
  GENERIC (k : analog);
  PIN (a, b : electrical);
END ENTITY epw;
ARCHITECTURE x OF epw IS
  VARIABLE V, y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      V := [a, b].v;
      y := min(2.0*V, 3.0) + max(0.5*V, -1.0) + limit(k*V, -4.0, 4.0);
  [a, b].i %= y;
  END RELATION;
END ARCHITECTURE x;
)";
  for (const HdlExecMode mode : {HdlExecMode::ast, HdlExecMode::bytecode}) {
    Circuit ckt;
    const int node = ckt.add_node("n", Nature::electrical);
    ckt.add_device(instantiate("XP", src, "epw", {{"k", 3.0}},
                               {node, Circuit::kGround}, mode));
    ckt.bind_all();
    auto* dev = ckt.find_device("XP");
    const std::size_t n = static_cast<std::size_t>(ckt.unknown_count());
    auto conductance_at = [&](double v) {
      DVector x(n, 0.0), f(n, 0.0), q(n, 0.0);
      DMatrix jf(n, n), jq(n, n);
      x[0] = v;
      spice::EvalCtx ctx;
      ctx.mode = spice::AnalysisMode::dc;
      ctx.x = &x;
      ctx.f = &f;
      ctx.q = &q;
      ctx.jf = &jf;
      ctx.jq = &jq;
      dev->evaluate(ctx);
      return jf(0, 0);
    };
    // V = 0.5: min active on 2V (g=2), max active on 0.5V (g=0.5),
    // limit interior on 3V (g=3) -> 5.5 total.
    EXPECT_NEAR(conductance_at(0.5), 5.5, 1e-12) << "mode " << static_cast<int>(mode);
    // V = 2.0: min saturates at 3 (g=0), max on 0.5V (g=0.5), limit clamps
    // at 4 (g=0) -> 0.5.
    EXPECT_NEAR(conductance_at(2.0), 0.5, 1e-12) << "mode " << static_cast<int>(mode);
    // V = -3.0: min on 2V (g=2), max saturates at -1 (g=0), limit clamps at
    // -4 (g=0) -> 2.
    EXPECT_NEAR(conductance_at(-3.0), 2.0, 1e-12) << "mode " << static_cast<int>(mode);
  }
}

TEST(BytecodeParity, KitchenSinkStampMatches) {
  for (double v : {-1.7, -0.25, 0.0, 0.4, 2.3}) {
    DVector f_ref;
    DMatrix jf_ref;
    bool have_ref = false;
    for (const HdlExecMode mode : {HdlExecMode::ast, HdlExecMode::bytecode}) {
      Circuit ckt;
      const int node = ckt.add_node("n", Nature::electrical);
      ckt.add_device(instantiate("XS", kKitchenSink, "esink", {{"k", 1.0}},
                                 {node, Circuit::kGround}, mode));
      ckt.bind_all();
      const std::size_t n = static_cast<std::size_t>(ckt.unknown_count());
      DVector x(n, v), f(n, 0.0), q(n, 0.0);
      DMatrix jf(n, n), jq(n, n);
      spice::EvalCtx ctx;
      ctx.mode = spice::AnalysisMode::transient;
      ctx.integ_c0 = 0.0;
      ctx.integ_c1 = 1e-5;
      ctx.x = &x;
      ctx.f = &f;
      ctx.q = &q;
      ctx.jf = &jf;
      ctx.jq = &jq;
      ckt.find_device("XS")->evaluate(ctx);
      ASSERT_TRUE(std::isfinite(f[0])) << "v=" << v;
      if (!have_ref) {
        f_ref = f;
        jf_ref = jf;
        have_ref = true;
      } else {
        expect_close(f[0], f_ref[0], "kitchen sink f at v=" + std::to_string(v));
        expect_close(jf(0, 0), jf_ref(0, 0),
                     "kitchen sink jf at v=" + std::to_string(v));
      }
    }
  }
}

/// ASSERT fires on accepted (committed) solutions in both executors, warns
/// once per site, and the collapse trajectories agree. The boundary is set
/// at 20% of the gap: pull-in provably carries the displacement past -d/3.
const char* kCollapseModel = R"(
ENTITY ecollapse IS
  GENERIC (A, d, er : analog);
  PIN (a, b : electrical; c, f : mechanical1);
END ENTITY ecollapse;
ARCHITECTURE g OF ecollapse IS
  VARIABLE e0, x, gap : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, f].tv;
      x := integ(S);
      ASSERT 0.2*d + x;
      gap := max(d + x, 0.05*d);
      [a, b].i %= e0*er*A/gap*ddt(V);
      [c, f].f %= e0*er*A*V*V/(2.0*gap*gap);
  END RELATION;
END ARCHITECTURE g;
)";

TEST(BytecodeParity, AssertOnCommitFiresInBothModes) {
  spice::TranOptions opts;
  opts.tstop = 30e-3;
  std::vector<double> finals;
  for (const HdlExecMode mode : {HdlExecMode::ast, HdlExecMode::bytecode}) {
    Circuit ckt;
    const int drive = ckt.add_node("drive", Nature::electrical);
    const int vel = ckt.add_node("vel", Nature::mechanical_translation);
    const int disp = ckt.add_node("disp", Nature::mechanical_translation);
    ckt.add<spice::VSource>(
        "V1", drive, Circuit::kGround,
        std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0}, {1e-3, 60.0}, {1.0, 60.0}}));
    ckt.add_device(instantiate("XT", kCollapseModel, "ecollapse",
                               {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                               {drive, Circuit::kGround, vel, Circuit::kGround},
                               mode));
    ckt.add<spice::Mass>("M1", vel, 1e-4);
    ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 0.5);  // soft: pull-in
    ckt.add<spice::Damper>("D1", vel, Circuit::kGround, 40e-3);
    ckt.add<spice::StateIntegrator>("XD", disp, vel);
    const auto res = api::transient(ckt, opts);
    ASSERT_TRUE(res.ok) << res.error;
    auto* dev = dynamic_cast<HdlDevice*>(ckt.find_device("XT"));
    ASSERT_NE(dev, nullptr);
    // The gap collapses past pull-in, so the ASSERT must have tripped —
    // exactly one distinct site in this model.
    EXPECT_EQ(dev->assert_violations(), 1) << "mode " << static_cast<int>(mode);
    finals.push_back(res.sample(30e-3, disp));
  }
  expect_close(finals[1], finals[0], "collapse displacement");
}

/// ASSERT must stay quiet through non-accepted Newton excursions: a benign
/// drive never trips it in either mode.
TEST(BytecodeParity, AssertQuietWhenConditionHolds) {
  spice::TranOptions opts;
  opts.tstop = 20e-3;
  for (const HdlExecMode mode : {HdlExecMode::ast, HdlExecMode::bytecode}) {
    Circuit ckt;
    const int drive = ckt.add_node("drive", Nature::electrical);
    const int vel = ckt.add_node("vel", Nature::mechanical_translation);
    ckt.add<spice::VSource>(
        "V1", drive, Circuit::kGround,
        std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
            {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
    ckt.add_device(instantiate("XT", kGuardedModel, "eguard",
                               {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                               {drive, Circuit::kGround, vel, Circuit::kGround},
                               mode));
    ckt.add<spice::Mass>("M1", vel, 1e-4);
    ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 200.0);
    ckt.add<spice::Damper>("D1", vel, Circuit::kGround, 40e-3);
    const auto res = api::transient(ckt, opts);
    ASSERT_TRUE(res.ok) << res.error;
    auto* dev = dynamic_cast<HdlDevice*>(ckt.find_device("XT"));
    ASSERT_NE(dev, nullptr);
    EXPECT_EQ(dev->assert_violations(), 0) << "mode " << static_cast<int>(mode);
  }
}

/// The compiled program carries fully resolved metadata: no string parsing
/// or seed scans remain for the VM to do at run time.
TEST(Bytecode, ProgramShape) {
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add_device(instantiate("XT", stdlib::paper_listing1(), "eletran",
                             {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                             {drive, Circuit::kGround, vel, Circuit::kGround}));
  ckt.bind_all();
  auto* dev = dynamic_cast<HdlDevice*>(ckt.find_device("XT"));
  ASSERT_NE(dev, nullptr);
  const BytecodeProgram& p = dev->program();
  EXPECT_EQ(p.entity_name, "eletran");
  EXPECT_EQ(p.ddt_sites, 1);
  EXPECT_EQ(p.integ_sites, 1);
  EXPECT_EQ(p.n_seeds, 2);  // drive node + vel node (grounded pins unseeded)
  EXPECT_FALSE(p.dc_code.empty());
  EXPECT_FALSE(p.tran_code.empty());
  // commit code = transient statements + ASSERT checks (none in Listing 1).
  EXPECT_EQ(p.commit_code.size(), p.tran_code.size());
  EXPECT_GE(p.n_regs, p.n_frame);
  for (const Insn& in : p.tran_code) {
    if (in.op == Op::stamp_flow) {
      // Stamp rows resolved to circuit unknowns at compile time.
      EXPECT_TRUE(in.a == drive || in.a == vel || in.a == -1);
    }
  }
}

}  // namespace
}  // namespace usys::hdl
