// HDL-AT runtime boundary-condition checks (ASSERT) and the piecewise
// functions min/max/limit — the paper: "the validity of boundary conditions
// may be verified in these models during run-time".
#include <gtest/gtest.h>

#include "api/api.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/parser.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::hdl {
namespace {

using spice::Circuit;

const char* kGuardedModel = R"(
-- transverse electrostatic transducer with a run-time gap guard and a
-- limited capacitance (boundary-condition verification per the paper).
ENTITY eguard IS
  GENERIC (A, d, er : analog);
  PIN (a, b : electrical; c, f : mechanical1);
END ENTITY eguard;

ARCHITECTURE g OF eguard IS
  VARIABLE e0, x, gap : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR ac, transient =>
      V := [a, b].v;
      S := [c, f].tv;
      x := integ(S);
      ASSERT d + x;
      gap := max(d + x, 0.05*d);
      [a, b].i %= e0*er*A/gap*ddt(V);
      [c, f].f %= e0*er*A*V*V/(2.0*gap*gap);
  END RELATION;
END ARCHITECTURE g;
)";

TEST(HdlAssert, ParsesAndElaborates) {
  DesignUnit unit = parse(kGuardedModel);
  EXPECT_NO_THROW(elaborate(std::move(unit), "eguard",
                            {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}}));
}

TEST(HdlAssert, QuietWhenConditionHolds) {
  // Normal drive: gap never collapses, the assert stays silent and results
  // match the unguarded model.
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {5e-3, 10.0}, {1.0, 10.0}}));
  ckt.add_device(instantiate("XT", kGuardedModel, "eguard",
                             {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                             {drive, Circuit::kGround, vel, Circuit::kGround}));
  ckt.add<spice::Mass>("M1", vel, 1e-4);
  ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 200.0);
  ckt.add<spice::Damper>("D1", vel, Circuit::kGround, 40e-3);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);
  spice::TranOptions opts;
  opts.tstop = 60e-3;
  const auto res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(res.sample(60e-3, disp), -9.84e-9, 0.5e-9);
}

TEST(HdlAssert, SurvivesGapCollapse) {
  // Soft spring + strong drive: pull-in collapses the gap. The limited
  // capacitance keeps the solve alive; displacement stays finite.
  Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>(
      "V1", drive, Circuit::kGround,
      std::make_unique<spice::PwlWave>(std::vector<std::pair<double, double>>{
          {0.0, 0.0}, {1e-3, 60.0}, {1.0, 60.0}}));
  ckt.add_device(instantiate("XT", kGuardedModel, "eguard",
                             {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
                             {drive, Circuit::kGround, vel, Circuit::kGround}));
  ckt.add<spice::Mass>("M1", vel, 1e-4);
  ckt.add<spice::Spring>("K1", vel, Circuit::kGround, 0.5);
  ckt.add<spice::Damper>("D1", vel, Circuit::kGround, 40e-3);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);
  spice::TranOptions opts;
  opts.tstop = 30e-3;
  const auto res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.sample(30e-3, disp), -1e-2);       // finite (no blow-up)
  EXPECT_LT(res.sample(30e-3, disp), -0.15e-3 / 3.0);  // past pull-in x = -d/3
}

TEST(HdlFunctions, MinMaxLimitEvaluate) {
  const char* src = R"(
ENTITY fns IS
  GENERIC (k : analog);
  PIN (a, b : electrical);
END ENTITY fns;
ARCHITECTURE x OF fns IS
  VARIABLE y : analog;
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      y := min(k, 2.0) + max(k, 4.0) + limit(k, 0.0, 1.0);
      [a, b].i %= y*[a, b].v;
  END RELATION;
END ARCHITECTURE x;
)";
  // k = 3: min = 2, max = 4, limit = 1 -> y = 7: conductance 7 S.
  Circuit ckt;
  const int n = ckt.add_node("n", Nature::electrical);
  ckt.add<spice::ISource>("I1", Circuit::kGround, n, 14.0);
  ckt.add_device(instantiate("XF", src, "fns", {{"k", 3.0}}, {n, Circuit::kGround}));
  const auto op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(n), 2.0, 1e-6);  // 14 A / 7 S
}

TEST(HdlFunctions, ArityErrorsDiagnosed) {
  const char* bad_min = R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].i %= min(1.0);
  END RELATION;
END ARCHITECTURE x;
)";
  EXPECT_THROW(elaborate(parse(bad_min), "m", {}), ElabError);
  const char* bad_limit = R"(
ENTITY m IS
  PIN (a, b : electrical);
END ENTITY m;
ARCHITECTURE x OF m IS
BEGIN
  RELATION
    PROCEDURAL FOR transient =>
      [a, b].i %= limit(1.0, 2.0);
  END RELATION;
END ARCHITECTURE x;
)";
  EXPECT_THROW(elaborate(parse(bad_limit), "m", {}), ElabError);
}

TEST(HdlFunctions, LimitInInitBlock) {
  const char* src = R"(
ENTITY ini IS
  PIN (a, b : electrical);
END ENTITY ini;
ARCHITECTURE x OF ini IS
  VARIABLE g : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      g := limit(10.0, 0.0, 2.0) + min(1.0, 5.0) + max(-1.0, 0.0);
    PROCEDURAL FOR transient =>
      [a, b].i %= g*[a, b].v;
  END RELATION;
END ARCHITECTURE x;
)";
  // g = 2 + 1 + 0 = 3 S.
  Circuit ckt;
  const int n = ckt.add_node("n", Nature::electrical);
  ckt.add<spice::ISource>("I1", Circuit::kGround, n, 6.0);
  ckt.add_device(instantiate("XI", src, "ini", {}, {n, Circuit::kGround}));
  const auto op = api::operating_point(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(n), 2.0, 1e-6);
}

}  // namespace
}  // namespace usys::hdl
