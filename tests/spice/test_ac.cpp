// AC small-signal sweeps: RC pole, RLC resonance, and the automatic
// linearization path (Jf + jw Jq from the same device stamps).
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "common/constants.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

TEST(Ac, RcLowpassPole) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, std::make_unique<DcWave>(0.0),
                   Nature::electrical, 1.0, 0.0);
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-6);

  AcOptions opts;
  opts.f_start = 1.0;
  opts.f_stop = 1e5;
  opts.points = 20;
  const AcResult res = api::ac_sweep(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;

  const double fc = 1.0 / (2.0 * kPi * 1e3 * 1e-6);  // ~159 Hz
  for (std::size_t k = 0; k < res.freq.size(); ++k) {
    const double f = res.freq[k];
    const double expected = 1.0 / std::sqrt(1.0 + (f / fc) * (f / fc));
    EXPECT_NEAR(std::abs(res.at(k, out)), expected, 1e-6) << "f=" << f;
  }
}

TEST(Ac, RcPhaseAtPole) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, std::make_unique<DcWave>(0.0),
                   Nature::electrical, 1.0, 0.0);
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-6);
  const double fc = 1.0 / (2.0 * kPi * 1e3 * 1e-6);

  AcOptions opts;
  opts.sweep = SweepKind::linear;
  opts.f_start = fc;
  opts.f_stop = fc;
  opts.points = 2;
  const AcResult res = api::ac_sweep(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(res.phase_deg(0, out), -45.0, 0.1);
}

TEST(Ac, SeriesRlcResonancePeak) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  const int mid = ckt.add_node("mid", Nature::electrical);
  const int out = ckt.add_node("out", Nature::electrical);
  const double r = 10.0;
  const double l = 1e-3;
  const double c = 1e-6;
  ckt.add<VSource>("V1", in, Circuit::kGround, std::make_unique<DcWave>(0.0),
                   Nature::electrical, 1.0, 0.0);
  ckt.add<Resistor>("R1", in, mid, r);
  ckt.add<Inductor>("L1", mid, out, l);
  ckt.add<Capacitor>("C1", out, Circuit::kGround, c);

  const double f0 = 1.0 / (2.0 * kPi * std::sqrt(l * c));
  AcOptions opts;
  opts.sweep = SweepKind::linear;
  opts.f_start = f0;
  opts.f_stop = f0;
  opts.points = 2;
  const AcResult res = api::ac_sweep(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  // At resonance |v(out)| = Q = (1/R) sqrt(L/C).
  const double q = std::sqrt(l / c) / r;
  EXPECT_NEAR(std::abs(res.at(0, out)), q, 0.02 * q);
}

TEST(Ac, AcPhaseSourceRotates) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, std::make_unique<DcWave>(0.0),
                   Nature::electrical, 2.0, 90.0);
  ckt.add<Resistor>("R1", in, Circuit::kGround, 1.0);
  AcOptions opts;
  opts.sweep = SweepKind::linear;
  opts.f_start = 10.0;
  opts.f_stop = 10.0;
  opts.points = 2;
  const AcResult res = api::ac_sweep(ckt, opts);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_NEAR(res.at(0, in).real(), 0.0, 1e-9);
  EXPECT_NEAR(res.at(0, in).imag(), 2.0, 1e-9);
}

TEST(Ac, DecadeSweepCoversRange) {
  Circuit ckt;
  const int in = ckt.add_node("in", Nature::electrical);
  ckt.add<VSource>("V1", in, Circuit::kGround, std::make_unique<DcWave>(0.0),
                   Nature::electrical, 1.0, 0.0);
  ckt.add<Resistor>("R1", in, Circuit::kGround, 1.0);
  AcOptions opts;
  opts.f_start = 1.0;
  opts.f_stop = 1e3;
  opts.points = 10;
  const AcResult res = api::ac_sweep(ckt, opts);
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.freq.front(), 1.0, 1e-12);
  EXPECT_NEAR(res.freq.back(), 1e3, 1e-9);
  EXPECT_GE(res.freq.size(), 30u);
}

}  // namespace
}  // namespace usys::spice
