#include "common/fault_inject.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

namespace usys::fault {

namespace {

struct Site {
  // Count mode: fire on hits [nth, nth + count) — count < 0 means forever.
  // Random mode: fire when hash(seed, hit) < probability.
  bool random_mode = false;
  long nth = 1;
  long count = 1;
  double probability = 0.0;
  std::uint64_t seed = 0;
  long hits = 0;
  long fired = 0;

  bool fires_on(long hit) const noexcept {
    if (random_mode) {
      // splitmix64 of (seed ^ hit): a pure function of the pair, so the
      // firing pattern replays exactly for a given seed.
      std::uint64_t z = seed ^ (static_cast<std::uint64_t>(hit) * 0x9e3779b97f4a7c15ULL);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      z ^= z >> 31;
      const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
      return u < probability;
    }
    if (hit < nth) return false;
    return count < 0 || hit < nth + count;
  }
};

struct State {
  std::mutex mu;
  std::map<std::string, Site, std::less<>> sites;

  State() {
    // Environment arming: lets the CLI and CI smokes inject without a flag.
    if (const char* spec = std::getenv("USYS_FAULT"); spec != nullptr && *spec != '\0')
      arm_from_spec_locked(spec, nullptr);
  }

  bool arm_from_spec_locked(std::string_view spec, std::string* err);
};

State& state() {
  static State s;
  return s;
}

bool parse_long(std::string_view s, long& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  const long v = std::strtol(tmp.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string tmp(s);
  const double v = std::strtod(tmp.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

/// Parses one "site:nth[:count]" or "site~p@seed" entry into (name, site).
bool parse_entry(std::string_view entry, std::string& name, Site& site,
                 std::string* err) {
  const auto fail = [&](const char* why) {
    if (err != nullptr) {
      *err = "bad fault spec entry '";
      err->append(entry);
      *err += "': ";
      *err += why;
    }
    return false;
  };
  if (const auto tilde = entry.find('~'); tilde != std::string_view::npos) {
    name = std::string(entry.substr(0, tilde));
    const std::string_view rest = entry.substr(tilde + 1);
    const auto at = rest.find('@');
    if (name.empty() || at == std::string_view::npos)
      return fail("want site~probability@seed");
    double p = 0.0;
    long seed = 0;
    if (!parse_double(rest.substr(0, at), p) || p < 0.0 || p > 1.0)
      return fail("probability must be in [0, 1]");
    if (!parse_long(rest.substr(at + 1), seed) || seed < 0)
      return fail("seed must be a non-negative integer");
    site.random_mode = true;
    site.probability = p;
    site.seed = static_cast<std::uint64_t>(seed);
    return true;
  }
  const auto colon = entry.find(':');
  name = std::string(entry.substr(0, colon));
  if (name.empty()) return fail("empty site name");
  site = Site{};
  if (colon == std::string_view::npos) return true;  // defaults: nth=1, count=1
  const std::string_view rest = entry.substr(colon + 1);
  const auto colon2 = rest.find(':');
  if (!parse_long(rest.substr(0, colon2), site.nth) || site.nth < 1)
    return fail("nth must be a positive integer");
  if (colon2 != std::string_view::npos &&
      (!parse_long(rest.substr(colon2 + 1), site.count) || site.count == 0))
    return fail("count must be a non-zero integer (negative = forever)");
  return true;
}

}  // namespace

bool State::arm_from_spec_locked(std::string_view spec, std::string* err) {
  // Two-phase: parse everything first so a malformed tail arms nothing.
  std::vector<std::pair<std::string, Site>> parsed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t sep = spec.find_first_of(";,", start);
    const std::string_view entry =
        spec.substr(start, sep == std::string_view::npos ? spec.size() - start
                                                         : sep - start);
    if (!entry.empty()) {
      std::string name;
      Site site;
      if (!parse_entry(entry, name, site, err)) return false;
      parsed.emplace_back(std::move(name), site);
    }
    if (sep == std::string_view::npos) break;
    start = sep + 1;
  }
  for (auto& [name, site] : parsed) sites[name] = site;
  return true;
}

void arm(std::string_view site, long nth, long count) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  Site t;
  t.nth = nth < 1 ? 1 : nth;
  t.count = count;
  s.sites[std::string(site)] = t;
}

void arm_random(std::string_view site, double probability, std::uint64_t seed) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  Site t;
  t.random_mode = true;
  t.probability = std::clamp(probability, 0.0, 1.0);
  t.seed = seed;
  s.sites[std::string(site)] = t;
}

void disarm(std::string_view site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (const auto it = s.sites.find(site); it != s.sites.end()) s.sites.erase(it);
}

void disarm_all() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sites.clear();
}

long hits(std::string_view site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.sites.find(site);
  return it == s.sites.end() ? 0 : it->second.hits;
}

long fired(std::string_view site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.sites.find(site);
  return it == s.sites.end() ? 0 : it->second.fired;
}

std::vector<std::string> armed_sites() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<std::string> out;
  out.reserve(s.sites.size());
  for (const auto& [name, site] : s.sites) out.push_back(name);
  return out;  // std::map iterates sorted
}

bool arm_from_spec(std::string_view spec, std::string* err) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.arm_from_spec_locked(spec, err);
}

bool should_fail(const char* site) noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sites.empty()) return false;
  const auto it = s.sites.find(std::string_view(site));
  if (it == s.sites.end()) return false;
  Site& t = it->second;
  ++t.hits;
  const bool fire = t.fires_on(t.hits);
  if (fire) ++t.fired;
  return fire;
}

}  // namespace usys::fault
