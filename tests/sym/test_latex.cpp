// LaTeX rendering of symbolic expressions (documentation generation from
// derived models).
#include <gtest/gtest.h>

#include "sym/expr.hpp"

namespace usys::sym {
namespace {

TEST(Latex, FractionsAndProducts) {
  const Expr e = var("q") * var("q") / (Expr(2.0) * var("A"));
  EXPECT_EQ(to_latex(e), "\\frac{q \\, q}{2 \\, A}");
}

TEST(Latex, GreekParameterNames) {
  const Expr e = var("e0") * var("er") * var("mu0") * var("lambda");
  const std::string s = to_latex(e);
  EXPECT_NE(s.find("\\varepsilon_0"), std::string::npos);
  EXPECT_NE(s.find("\\varepsilon_r"), std::string::npos);
  EXPECT_NE(s.find("\\mu_0"), std::string::npos);
  EXPECT_NE(s.find("\\lambda"), std::string::npos);
}

TEST(Latex, PowersAndFunctions) {
  EXPECT_EQ(to_latex(pow(var("x"), Expr(2.0))), "x^{2}");
  EXPECT_EQ(to_latex(sqrt(var("x"))), "\\sqrt{x}");
  EXPECT_EQ(to_latex(sin(var("x"))), "\\sin\\left(x\\right)");
  EXPECT_EQ(to_latex(exp(var("x"))), "e^{x}");
  EXPECT_EQ(to_latex(abs(var("x"))), "\\left|x\\right|");
}

TEST(Latex, ScientificConstants) {
  const std::string s = to_latex(Expr(8.8542e-12));
  EXPECT_NE(s.find("\\times 10^{-12}"), std::string::npos);
}

TEST(Latex, ParenthesizationMatchesPrecedence) {
  const Expr e = var("a") * (var("b") + var("c"));
  EXPECT_EQ(to_latex(e), "a \\, \\left(b + c\\right)");
  const Expr f = -(var("a") + var("b"));
  EXPECT_EQ(to_latex(f), "-\\left(a + b\\right)");
}

TEST(Latex, DerivedTable3ForceRendersCompactly) {
  // dW/dx of the transverse energy: the Table 3 quantity, LaTeX-ready.
  const Expr w = var("q") * var("q") * (var("d") + var("x")) /
                 (Expr(2.0) * var("e0") * var("er") * var("A"));
  const std::string s = to_latex(simplify(diff(w, "x")));
  EXPECT_NE(s.find("\\frac"), std::string::npos);
  EXPECT_NE(s.find("\\varepsilon_0"), std::string::npos);
}

}  // namespace
}  // namespace usys::sym
