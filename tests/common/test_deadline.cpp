// Deadline / CancelToken semantics: the polling contract every solver layer
// relies on (see common/deadline.hpp).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "common/deadline.hpp"
#include "common/fault_inject.hpp"

namespace usys {
namespace {

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override { fault::disarm_all(); }
};

TEST_F(DeadlineTest, DefaultNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.active());
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
  EXPECT_NO_THROW(d.check("test"));
}

TEST_F(DeadlineTest, ZeroBudgetMeansUnlimited) {
  const Deadline d = Deadline::after_ms(0.0);
  EXPECT_FALSE(d.active());
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
}

TEST_F(DeadlineTest, GenerousBudgetIsActiveButNotExpired) {
  const Deadline d = Deadline::after_ms(3.6e6);  // one hour
  EXPECT_TRUE(d.active());
  EXPECT_TRUE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
  EXPECT_NO_THROW(d.check("test"));
}

TEST_F(DeadlineTest, TinyBudgetExpires) {
  const Deadline d = Deadline::after_ms(1e-6);
  EXPECT_TRUE(d.limited());
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.exceeded_kind(), FailureKind::timeout);
  EXPECT_EQ(d.remaining_ms(), 0.0);
}

TEST_F(DeadlineTest, CancelTokenFires) {
  CancelToken token;
  const Deadline d = Deadline::after_ms(0.0, &token);
  EXPECT_TRUE(d.active());  // something to poll even without a time budget
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.exceeded_kind(), FailureKind::cancelled);
  EXPECT_EQ(d.remaining_ms(), 0.0);
  token.reset();
  EXPECT_FALSE(d.expired());
}

TEST_F(DeadlineTest, CancelWinsOverTimeoutForTheKind) {
  CancelToken token;
  token.cancel();
  const Deadline d = Deadline::after_ms(1e-6, &token);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.exceeded_kind(), FailureKind::cancelled);
}

TEST_F(DeadlineTest, CheckThrowsDeadlineErrorWithSite) {
  CancelToken token;
  token.cancel();
  const Deadline d = Deadline::after_ms(0.0, &token);
  try {
    d.check("newton iteration");
    FAIL() << "check() should have thrown";
  } catch (const DeadlineError& e) {
    EXPECT_EQ(e.kind(), FailureKind::cancelled);
    EXPECT_NE(std::string(e.what()).find("newton iteration"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }
}

TEST_F(DeadlineTest, FaultSiteForcesExpiryWithoutWaiting) {
  if (!fault::compiled_in()) GTEST_SKIP() << "needs -DUSYS_FAULT_INJECT=ON";
  const Deadline d = Deadline::after_ms(3.6e6);  // would never expire for real
  fault::arm("deadline.expire", 1, 1);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.exceeded_kind(), FailureKind::timeout);
  EXPECT_FALSE(d.expired());  // the single shot is spent
  EXPECT_EQ(fault::fired("deadline.expire"), 1);
}

}  // namespace
}  // namespace usys
