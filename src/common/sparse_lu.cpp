#include "common/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace usys {
namespace {

/// Below this magnitude a pivot counts as numerically zero (matches the
/// dense lu_solve threshold for SingularMatrixError parity).
constexpr double kAbsPivotFloor = 1e-300;

/// Refactorization guard: partial pivoting bounds |L| by 1, so a reused
/// pivot order producing multipliers beyond this limit has degraded enough
/// to warrant a fresh pivot search (KLU uses the same reciprocal, 1e-3, as
/// its refactorization pivot tolerance). Newton and timestep loops change
/// values smoothly and rarely trip this; wholesale value changes do.
constexpr double kPivotGrowthLimit = 1e3;

}  // namespace

template <typename T>
void SparseLu<T>::analyze(int n, const std::vector<int>& row_ptr,
                          const std::vector<int>& col_idx) {
  if (n < 0 || row_ptr.size() != static_cast<std::size_t>(n) + 1)
    throw std::invalid_argument("SparseLu::analyze: bad pattern dimensions");
  n_ = n;
  const std::size_t nnz = col_idx.size();

  // Column counts -> CSC pointers.
  col_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int c : col_idx) col_ptr_[static_cast<std::size_t>(c) + 1]++;
  for (int j = 0; j < n; ++j) col_ptr_[j + 1] += col_ptr_[j];

  // Fill CSC row indices and the CSR-slot -> CSC-slot mapping.
  row_idx_.assign(nnz, 0);
  csc_of_csr_.assign(nnz, 0);
  std::vector<int> next(col_ptr_.begin(), col_ptr_.end() - 1);
  for (int r = 0; r < n; ++r) {
    for (int s = row_ptr[r]; s < row_ptr[r + 1]; ++s) {
      const int c = col_idx[static_cast<std::size_t>(s)];
      const int p = next[static_cast<std::size_t>(c)]++;
      row_idx_[static_cast<std::size_t>(p)] = r;
      csc_of_csr_[static_cast<std::size_t>(s)] = p;
    }
  }
  csc_vals_.assign(nnz, T{});

  min_degree_order();

  factored_ = false;
  symbolic_count_ = 0;

  x_.assign(static_cast<std::size_t>(n), T{});
  xi_.assign(static_cast<std::size_t>(n), 0);
  stack_.assign(static_cast<std::size_t>(n), 0);
  pstack_.assign(static_cast<std::size_t>(n), 0);
  visited_.assign(static_cast<std::size_t>(n), 0);
}

template <typename T>
void SparseLu<T>::factor(const std::vector<T>& csr_vals) {
  if (!analyzed()) throw std::logic_error("SparseLu::factor before analyze");
  if (csr_vals.size() != csc_of_csr_.size())
    throw std::invalid_argument("SparseLu::factor: value count != pattern nonzeros");
  for (std::size_t s = 0; s < csr_vals.size(); ++s)
    csc_vals_[static_cast<std::size_t>(csc_of_csr_[s])] = csr_vals[s];
  // Row max-scaling: factor (R A) instead of A so pivot comparisons are
  // scale-free across natures and across large value drifts within a row.
  rscale_.assign(static_cast<std::size_t>(n_), 0.0);
  for (std::size_t p = 0; p < csc_vals_.size(); ++p) {
    const auto r = static_cast<std::size_t>(row_idx_[p]);
    rscale_[r] = std::max(rscale_[r], std::abs(csc_vals_[p]));
  }
  for (auto& s : rscale_) s = (s > 0.0) ? 1.0 / s : 1.0;
  for (std::size_t p = 0; p < csc_vals_.size(); ++p)
    csc_vals_[p] *= rscale_[static_cast<std::size_t>(row_idx_[p])];
  if (factored_ && refactor()) return;
  factor_full();
}

/// Greedy minimum-degree elimination order on the symmetrized pattern
/// (explicit clique merging). Partial pivoting later permutes rows freely,
/// so only the column order is fixed here; for the structurally symmetric
/// MNA patterns this keeps branch unknowns next to their nodes and fill
/// near the band minimum.
template <typename T>
void SparseLu<T>::min_degree_order() {
  const int n = n_;
  q_.resize(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const int i = row_idx_[static_cast<std::size_t>(p)];
      if (i != j) {
        adj[static_cast<std::size_t>(i)].push_back(j);
        adj[static_cast<std::size_t>(j)].push_back(i);
      }
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  std::vector<char> eliminated(static_cast<std::size_t>(n), 0);
  std::vector<int> nbrs;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    std::size_t best_deg = static_cast<std::size_t>(-1);
    for (int v = 0; v < n; ++v) {
      if (!eliminated[static_cast<std::size_t>(v)] &&
          adj[static_cast<std::size_t>(v)].size() < best_deg) {
        best_deg = adj[static_cast<std::size_t>(v)].size();
        best = v;
      }
    }
    q_[static_cast<std::size_t>(step)] = best;
    eliminated[static_cast<std::size_t>(best)] = 1;
    // Connect the eliminated node's surviving neighbors into a clique.
    nbrs.clear();
    for (int u : adj[static_cast<std::size_t>(best)])
      if (!eliminated[static_cast<std::size_t>(u)]) nbrs.push_back(u);
    for (int u : nbrs) {
      auto& a = adj[static_cast<std::size_t>(u)];
      a.insert(a.end(), nbrs.begin(), nbrs.end());
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());
      a.erase(std::remove_if(a.begin(), a.end(),
                             [&](int w) {
                               return w == u || eliminated[static_cast<std::size_t>(w)];
                             }),
              a.end());
    }
    adj[static_cast<std::size_t>(best)].clear();
    adj[static_cast<std::size_t>(best)].shrink_to_fit();
  }
}

/// DFS over the partial-L graph: node i's children are the sub-diagonal
/// entries of L's column pinv_[i] (not-yet-pivotal nodes are leaves).
/// Finished nodes land in xi_[top-1 .. ] in topological order.
template <typename T>
int SparseLu<T>::dfs_reach(int start, int top) {
  int head = 0;
  stack_[0] = start;
  while (head >= 0) {
    const int i = stack_[static_cast<std::size_t>(head)];
    const int col = pinv_[static_cast<std::size_t>(i)];
    if (!visited_[static_cast<std::size_t>(i)]) {
      visited_[static_cast<std::size_t>(i)] = 1;
      pstack_[static_cast<std::size_t>(head)] = (col < 0) ? 0 : lp_[static_cast<std::size_t>(col)] + 1;
    }
    bool descended = false;
    if (col >= 0) {
      const int end = lp_[static_cast<std::size_t>(col) + 1];
      for (int p = pstack_[static_cast<std::size_t>(head)]; p < end; ++p) {
        const int child = li_[static_cast<std::size_t>(p)];
        if (!visited_[static_cast<std::size_t>(child)]) {
          pstack_[static_cast<std::size_t>(head)] = p + 1;
          stack_[static_cast<std::size_t>(++head)] = child;
          descended = true;
          break;
        }
      }
    }
    if (!descended) {
      --head;
      xi_[static_cast<std::size_t>(--top)] = i;
    }
  }
  return top;
}

template <typename T>
void SparseLu<T>::factor_full() {
  const int n = n_;
  pinv_.assign(static_cast<std::size_t>(n), -1);
  lp_.assign(static_cast<std::size_t>(n) + 1, 0);
  up_.assign(static_cast<std::size_t>(n) + 1, 0);
  li_.clear();
  lx_.clear();
  ui_.clear();
  ux_.clear();
  factored_ = false;

  for (int jj = 0; jj < n; ++jj) {
    const int j = q_[static_cast<std::size_t>(jj)];  // column eliminated at position jj
    lp_[static_cast<std::size_t>(jj)] = static_cast<int>(li_.size());
    up_[static_cast<std::size_t>(jj)] = static_cast<int>(ui_.size());

    // Reach of A(:,j) in the partial-L graph (original row space).
    int top = n;
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const int i = row_idx_[static_cast<std::size_t>(p)];
      if (!visited_[static_cast<std::size_t>(i)]) top = dfs_reach(i, top);
    }

    // Numeric sparse triangular solve x = L \ A(:,j).
    for (int p = top; p < n; ++p) x_[static_cast<std::size_t>(xi_[static_cast<std::size_t>(p)])] = T{};
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p)
      x_[static_cast<std::size_t>(row_idx_[static_cast<std::size_t>(p)])] =
          csc_vals_[static_cast<std::size_t>(p)];
    for (int px = top; px < n; ++px) {
      const int i = xi_[static_cast<std::size_t>(px)];
      const int col = pinv_[static_cast<std::size_t>(i)];
      if (col < 0) continue;  // not yet pivotal: stays an L candidate
      const T xv = x_[static_cast<std::size_t>(i)];
      if (xv != T{}) {
        const int end = lp_[static_cast<std::size_t>(col) + 1];
        for (int p = lp_[static_cast<std::size_t>(col)] + 1; p < end; ++p)
          x_[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
              lx_[static_cast<std::size_t>(p)] * xv;
      }
    }

    // Harvest U entries (already-pivotal rows, topological order) and find
    // the partial pivot among the rest.
    int ipiv = -1;
    double amax = -1.0;
    for (int px = top; px < n; ++px) {
      const int i = xi_[static_cast<std::size_t>(px)];
      const int pos = pinv_[static_cast<std::size_t>(i)];
      if (pos >= 0) {
        ui_.push_back(pos);
        ux_.push_back(x_[static_cast<std::size_t>(i)]);
      } else {
        const double m = std::abs(x_[static_cast<std::size_t>(i)]);
        if (m > amax) {
          amax = m;
          ipiv = i;
        }
      }
    }
    if (ipiv < 0 || amax < kAbsPivotFloor) {
      // Clean scratch before reporting the singular column.
      for (int px = top; px < n; ++px) {
        const int i = xi_[static_cast<std::size_t>(px)];
        visited_[static_cast<std::size_t>(i)] = 0;
        x_[static_cast<std::size_t>(i)] = T{};
      }
      throw SingularMatrixError(static_cast<std::size_t>(j));
    }
    const T pivot = x_[static_cast<std::size_t>(ipiv)];
    ui_.push_back(jj);  // diagonal stored last within the column
    ux_.push_back(pivot);
    pinv_[static_cast<std::size_t>(ipiv)] = jj;
    li_.push_back(ipiv);  // unit diagonal of L stored first
    lx_.push_back(T(1));
    for (int px = top; px < n; ++px) {
      const int i = xi_[static_cast<std::size_t>(px)];
      if (pinv_[static_cast<std::size_t>(i)] < 0) {
        li_.push_back(i);
        lx_.push_back(x_[static_cast<std::size_t>(i)] / pivot);
      }
      visited_[static_cast<std::size_t>(i)] = 0;
      x_[static_cast<std::size_t>(i)] = T{};
    }
  }
  lp_[static_cast<std::size_t>(n)] = static_cast<int>(li_.size());
  up_[static_cast<std::size_t>(n)] = static_cast<int>(ui_.size());

  // Remap L's row indices from original to pivotal space; from here on the
  // whole factorization lives in pivotal coordinates.
  for (auto& i : li_) i = pinv_[static_cast<std::size_t>(i)];

  factored_ = true;
  ++symbolic_count_;
}

template <typename T>
bool SparseLu<T>::refactor() {
  const int n = n_;
  for (int jj = 0; jj < n; ++jj) {
    const int j = q_[static_cast<std::size_t>(jj)];
    // Scatter A(:,j) into pivotal space. The reach of the recorded symbolic
    // factorization is a superset of A's pattern, so the clears below cover
    // every scattered slot.
    for (int p = col_ptr_[static_cast<std::size_t>(j)];
         p < col_ptr_[static_cast<std::size_t>(j) + 1]; ++p)
      x_[static_cast<std::size_t>(pinv_[static_cast<std::size_t>(
          row_idx_[static_cast<std::size_t>(p)])])] = csc_vals_[static_cast<std::size_t>(p)];

    // Replay the column's U entries in their recorded (topological) order.
    const int u_end = up_[static_cast<std::size_t>(jj) + 1] - 1;  // diagonal excluded
    for (int p = up_[static_cast<std::size_t>(jj)]; p < u_end; ++p) {
      const int k = ui_[static_cast<std::size_t>(p)];
      const T ukj = x_[static_cast<std::size_t>(k)];
      ux_[static_cast<std::size_t>(p)] = ukj;
      x_[static_cast<std::size_t>(k)] = T{};
      if (ukj != T{}) {
        const int end = lp_[static_cast<std::size_t>(k) + 1];
        for (int q = lp_[static_cast<std::size_t>(k)] + 1; q < end; ++q)
          x_[static_cast<std::size_t>(li_[static_cast<std::size_t>(q)])] -=
              lx_[static_cast<std::size_t>(q)] * ukj;
      }
    }

    const T pivot = x_[static_cast<std::size_t>(jj)];
    x_[static_cast<std::size_t>(jj)] = T{};
    const double apiv = std::abs(pivot);
    if (apiv < kAbsPivotFloor) {
      x_.assign(static_cast<std::size_t>(n), T{});
      return false;  // pivot order no longer viable; re-run full pivoting
    }
    ux_[static_cast<std::size_t>(u_end)] = pivot;
    const int l_end = lp_[static_cast<std::size_t>(jj) + 1];
    for (int q = lp_[static_cast<std::size_t>(jj)] + 1; q < l_end; ++q) {
      const int i = li_[static_cast<std::size_t>(q)];
      const T v = x_[static_cast<std::size_t>(i)];
      x_[static_cast<std::size_t>(i)] = T{};
      if (std::abs(v) > kPivotGrowthLimit * apiv) {
        x_.assign(static_cast<std::size_t>(n), T{});
        return false;  // multiplier blow-up: pivot degraded
      }
      lx_[static_cast<std::size_t>(q)] = v / pivot;
    }
  }
  return true;
}

template <typename T>
void SparseLu<T>::solve(std::vector<T>& b) const {
  if (!factored_) throw std::logic_error("SparseLu::solve before factor");
  if (b.size() != static_cast<std::size_t>(n_))
    throw std::invalid_argument("SparseLu::solve: rhs size mismatch");
  const int n = n_;
  tmp_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    tmp_[static_cast<std::size_t>(pinv_[static_cast<std::size_t>(i)])] =
        b[static_cast<std::size_t>(i)] * rscale_[static_cast<std::size_t>(i)];
  // Forward: L y = P b (unit diagonal stored first in each column).
  for (int j = 0; j < n; ++j) {
    const T yj = tmp_[static_cast<std::size_t>(j)];
    if (yj != T{}) {
      const int end = lp_[static_cast<std::size_t>(j) + 1];
      for (int q = lp_[static_cast<std::size_t>(j)] + 1; q < end; ++q)
        tmp_[static_cast<std::size_t>(li_[static_cast<std::size_t>(q)])] -=
            lx_[static_cast<std::size_t>(q)] * yj;
    }
  }
  // Backward: U x = y (diagonal stored last in each column).
  for (int j = n; j-- > 0;) {
    const int diag = up_[static_cast<std::size_t>(j) + 1] - 1;
    const T xj = tmp_[static_cast<std::size_t>(j)] / ux_[static_cast<std::size_t>(diag)];
    tmp_[static_cast<std::size_t>(j)] = xj;
    if (xj != T{}) {
      for (int q = up_[static_cast<std::size_t>(j)]; q < diag; ++q)
        tmp_[static_cast<std::size_t>(ui_[static_cast<std::size_t>(q)])] -=
            ux_[static_cast<std::size_t>(q)] * xj;
    }
  }
  // Undo the fill-reducing column permutation: position j solved unknown q_[j].
  for (int j = 0; j < n; ++j)
    b[static_cast<std::size_t>(q_[static_cast<std::size_t>(j)])] =
        tmp_[static_cast<std::size_t>(j)];
}

template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace usys
