#include "hdl/verify.hpp"

#include <algorithm>
#include <map>

#include "common/strings.hpp"

namespace usys::hdl {

bool VerifyReport::has_errors() const noexcept { return error_count() > 0; }

int VerifyReport::error_count() const noexcept {
  int n = 0;
  for (const auto& is : issues) {
    if (is.severity == VerifySeverity::error) ++n;
  }
  return n;
}

std::string VerifyReport::error_summary() const {
  std::string out;
  for (const auto& is : issues) {
    if (is.severity != VerifySeverity::error) continue;
    if (!out.empty()) out += "; ";
    out += "[" + is.rule + "] " + is.message;
  }
  return out;
}

namespace {

/// Shared state of one verification run. All checks funnel through add() so
/// every message carries the entity name and (when known) stream/insn site.
class Verifier {
 public:
  Verifier(const BytecodeProgram& p, int unknown_count, VerifyReport& rep)
      : p_(p), nu_(unknown_count), rep_(rep) {}

  void run() {
    check_layout();
    // Register/constant bounds below degrade gracefully when the layout is
    // broken (every access is checked against the declared sizes), so the
    // per-stream passes still produce useful findings.
    check_stream("dc", p_.dc_code);
    check_stream("tran", p_.tran_code);
    check_stream("commit", p_.commit_code);
    check_site_consistency();
  }

 private:
  void add(VerifySeverity sev, const char* rule, std::string msg,
           const std::string& stream = std::string(), int insn = -1) {
    VerifyIssue is;
    is.severity = sev;
    is.rule = rule;
    is.message = "entity '" + p_.entity_name + "': " + std::move(msg);
    is.stream = stream;
    is.insn = insn;
    rep_.issues.push_back(std::move(is));
  }

  void check_layout() {
    if (p_.n_regs < 0 || p_.n_frame < 0 || p_.n_frame > p_.n_regs) {
      add(VerifySeverity::error, "hdl-layout",
          str_format("register file layout invalid (n_regs=%d, n_frame=%d)", p_.n_regs,
                     p_.n_frame));
    }
    if (static_cast<int>(p_.frame_init.size()) != p_.n_frame) {
      add(VerifySeverity::error, "hdl-layout",
          str_format("frame_init holds %zu values for %d frame registers",
                     p_.frame_init.size(), p_.n_frame));
    }
    if (p_.n_seeds < 0 || static_cast<int>(p_.seed_unknowns.size()) != p_.n_seeds) {
      add(VerifySeverity::error, "hdl-layout",
          str_format("seed table holds %zu unknowns for n_seeds=%d",
                     p_.seed_unknowns.size(), p_.n_seeds));
    }
    for (std::size_t i = 0; i < p_.seed_unknowns.size(); ++i) {
      const int u = p_.seed_unknowns[i];
      if (u < 0 || u >= nu_) {
        add(VerifySeverity::error, "hdl-layout",
            str_format("seed slot %zu maps to unknown %d outside [0, %d)", i, u, nu_));
      }
    }
    for (std::size_t i = 0; i < p_.pairs.size(); ++i) {
      const auto& pl = p_.pairs[i];
      if (pl.na < -1 || pl.na >= nu_ || pl.nb < -1 || pl.nb >= nu_ || pl.br < 0 ||
          pl.br >= nu_) {
        add(VerifySeverity::error, "hdl-layout",
            str_format("effort pair %zu rows (na=%d, nb=%d, br=%d) outside the unknown "
                       "vector [0, %d)",
                       i, pl.na, pl.nb, pl.br, nu_));
      }
    }
    if (p_.ddt_sites < 0 || p_.integ_sites < 0) {
      add(VerifySeverity::error, "hdl-layout",
          str_format("negative integrator site counts (ddt=%d, integ=%d)", p_.ddt_sites,
                     p_.integ_sites));
    }
  }

  bool reg_ok(int r) const { return r >= 0 && r < p_.n_regs; }
  bool unknown_ok(int u) const { return u >= -1 && u < nu_; }
  bool seed_ok(int s) const { return s >= -1 && s < p_.n_seeds; }

  // One instruction's static shape: which operands are register reads, which
  // register (if any) it defines, and whether it has effects beyond its
  // destination (stamps, assert records, state commits).
  struct Shape {
    int reads[3] = {-1, -1, -1};
    int n_reads = 0;
    int def = -1;
    bool side_effect = false;
  };

  void check_stream(const char* stream, const std::vector<Insn>& code) {
    const std::string sname = stream;
    const bool commit = sname == "commit";
    const int n_regs = std::max(p_.n_regs, 0);
    const int n_seeds = std::max(p_.n_seeds, 0);

    // defined[r]: r has been written (frame registers start defined — the VM
    // copies frame_init in before executing).
    std::vector<char> defined(static_cast<std::size_t>(n_regs), 0);
    for (int r = 0; r < std::min(p_.n_frame, n_regs); ++r) defined[static_cast<std::size_t>(r)] = 1;
    // mask[r*S + s]: seed s may reach r's gradient (structural, may-analysis).
    std::vector<char> mask(static_cast<std::size_t>(n_regs) * static_cast<std::size_t>(n_seeds), 0);
    std::vector<Shape> shapes(code.size());

    const auto mrow = [&](int r) { return mask.begin() + static_cast<std::ptrdiff_t>(r) * n_seeds; };
    const auto mask_empty = [&](int r) {
      return std::all_of(mrow(r), mrow(r) + n_seeds, [](char c) { return c == 0; });
    };

    for (std::size_t i = 0; i < code.size(); ++i) {
      const Insn& in = code[i];
      const int ii = static_cast<int>(i);
      Shape& sh = shapes[i];
      bool bounds_ok = true;
      const auto bad = [&](std::string msg) {
        add(VerifySeverity::error, "hdl-operand-bounds",
            str_format("%s[%d] op %d: ", stream, ii, static_cast<int>(in.op)) + std::move(msg),
            sname, ii);
        bounds_ok = false;
      };
      const auto need_reg = [&](int r, const char* what) {
        if (!reg_ok(r)) bad(str_format("%s register %d outside [0, %d)", what, r, p_.n_regs));
      };
      const auto read_reg = [&](int r, const char* what) {
        need_reg(r, what);
        if (reg_ok(r) && sh.n_reads < 3) sh.reads[sh.n_reads++] = r;
      };
      const auto def_reg = [&](int r) {
        need_reg(r, "destination");
        if (reg_ok(r)) sh.def = r;
      };

      switch (in.op) {
        case Op::kconst:
          def_reg(in.dst);
          if (in.a < 0 || in.a >= static_cast<int>(p_.constants.size()))
            bad(str_format("constant index %d outside [0, %zu)", in.a, p_.constants.size()));
          break;
        case Op::copy:
        case Op::neg:
        case Op::sin:
        case Op::cos:
        case Op::tan:
        case Op::exp:
        case Op::log:
        case Op::sqrt:
        case Op::abs:
          def_reg(in.dst);
          read_reg(in.a, "source");
          break;
        case Op::add:
        case Op::sub:
        case Op::mul:
        case Op::div:
        case Op::pow:
        case Op::min:
        case Op::max:
          def_reg(in.dst);
          read_reg(in.a, "lhs");
          read_reg(in.b, "rhs");
          break;
        case Op::limit:
          def_reg(in.dst);
          read_reg(in.a, "value");
          read_reg(in.b, "lower");
          read_reg(in.c, "upper");
          break;
        case Op::read_across:
          def_reg(in.dst);
          if (!unknown_ok(in.a) || !unknown_ok(in.c))
            bad(str_format("unknown indices (%d, %d) outside [-1, %d)", in.a, in.c, nu_));
          if (!seed_ok(in.b) || !seed_ok(in.d))
            bad(str_format("seed slots (%d, %d) outside [-1, %d)", in.b, in.d, p_.n_seeds));
          if (bounds_ok && ((in.a >= 0 && in.b < 0) || (in.c >= 0 && in.d < 0)))
            add(VerifySeverity::error, "hdl-grad-dropped",
                str_format("%s[%d]: across read of unknown %d has no AD seed slot — its "
                           "Jacobian column is silently dropped",
                           stream, ii, in.b < 0 ? in.a : in.c),
                sname, ii);
          break;
        case Op::read_branch:
          def_reg(in.dst);
          if (in.a < 0 || in.a >= nu_)
            bad(str_format("branch unknown %d outside [0, %d)", in.a, nu_));
          if (in.b < 0 || in.b >= p_.n_seeds)
            bad(str_format("branch seed slot %d outside [0, %d)", in.b, p_.n_seeds));
          if (in.c != 1 && in.c != -1) bad(str_format("branch sign %d is not +/-1", in.c));
          break;
        case Op::ddt:
        case Op::integ: {
          def_reg(in.dst);
          read_reg(in.a, "operand");
          const int limit = in.op == Op::ddt ? p_.ddt_sites : p_.integ_sites;
          if (in.b < 0 || in.b >= limit)
            bad(str_format("%s site %d outside [0, %d)", in.op == Op::ddt ? "ddt" : "integ",
                           in.b, limit));
          sh.side_effect = commit;  // commit pass updates the site state
          break;
        }
        case Op::stamp_flow:
          read_reg(in.dst, "value");
          if (!unknown_ok(in.a) || !unknown_ok(in.c))
            bad(str_format("stamp rows (%d, %d) outside [-1, %d)", in.a, in.c, nu_));
          if (!seed_ok(in.b) || !seed_ok(in.d))
            bad(str_format("stamp seed slots (%d, %d) outside [-1, %d)", in.b, in.d,
                           p_.n_seeds));
          if (bounds_ok && ((in.a >= 0 && in.b < 0) || (in.c >= 0 && in.d < 0)))
            add(VerifySeverity::error, "hdl-grad-dropped",
                str_format("%s[%d]: flow stamp row %d has no AD seed slot — capture-mode "
                           "execution would index out of bounds",
                           stream, ii, in.b < 0 ? in.a : in.c),
                sname, ii);
          sh.side_effect = true;
          break;
        case Op::stamp_effort:
          read_reg(in.dst, "value");
          if (in.a < 0 || in.a >= nu_)
            bad(str_format("effort branch row %d outside [0, %d)", in.a, nu_));
          if (in.b < 0 || in.b >= p_.n_seeds)
            bad(str_format("effort seed slot %d outside [0, %d)", in.b, p_.n_seeds));
          if (in.c != 1 && in.c != -1) bad(str_format("effort sign %d is not +/-1", in.c));
          sh.side_effect = true;
          break;
        case Op::assert_check:
          read_reg(in.a, "condition");
          if (in.b < 0 || in.b >= static_cast<int>(p_.assert_lines.size()))
            bad(str_format("assert site %d outside [0, %zu)", in.b, p_.assert_lines.size()));
          sh.side_effect = true;
          break;
        default:
          bad(str_format("unknown opcode %d", static_cast<int>(in.op)));
          break;
      }

      // Def-before-use over the flat stream: the VM never clears temporary
      // registers between runs, so a read before the first write observes a
      // stale value from an unrelated earlier run.
      for (int k = 0; k < sh.n_reads; ++k) {
        const int r = sh.reads[k];
        if (r >= p_.n_frame && !defined[static_cast<std::size_t>(r)]) {
          add(VerifySeverity::error, "hdl-def-use",
              str_format("%s[%d]: register r%d read before any write", stream, ii, r),
              sname, ii);
        }
      }

      // Structural gradient propagation (may-analysis).
      if (n_seeds > 0 && bounds_ok) {
        switch (in.op) {
          case Op::kconst:
            std::fill(mrow(in.dst), mrow(in.dst) + n_seeds, 0);
            break;
          case Op::read_across:
            std::fill(mrow(in.dst), mrow(in.dst) + n_seeds, 0);
            if (in.b >= 0) *(mrow(in.dst) + in.b) = 1;
            if (in.d >= 0) *(mrow(in.dst) + in.d) = 1;
            break;
          case Op::read_branch:
            std::fill(mrow(in.dst), mrow(in.dst) + n_seeds, 0);
            *(mrow(in.dst) + in.b) = 1;
            break;
          case Op::stamp_flow:
          case Op::stamp_effort:
            // Checked below, via the value register's accumulated mask.
            if (!commit && mask_empty(in.dst)) {
              add(VerifySeverity::warning, "hdl-const-stamp",
                  str_format("%s[%d]: stamped value in r%d has a structurally zero "
                             "gradient — this contribution never produces a Jacobian "
                             "entry",
                             stream, ii, in.dst),
                  sname, ii);
            }
            break;
          case Op::assert_check:
            break;
          default:
            // Destination mask = union of the register reads (covers copy,
            // arithmetic, branch-selected min/max/limit, and ddt/integ —
            // whose dc_ddt pass forwards the operand gradient).
            if (sh.def >= 0) {
              std::vector<char> acc(static_cast<std::size_t>(n_seeds), 0);
              for (int k = 0; k < sh.n_reads; ++k) {
                for (int s = 0; s < n_seeds; ++s) {
                  if (*(mrow(sh.reads[k]) + s) != 0) acc[static_cast<std::size_t>(s)] = 1;
                }
              }
              std::copy(acc.begin(), acc.end(), mrow(sh.def));
            }
            break;
        }
      }

      if (sh.def >= 0) defined[static_cast<std::size_t>(sh.def)] = 1;
    }

    // Dead-code detection: backward liveness over the straight-line stream.
    // An instruction that only defines a register nothing later consumes is
    // unreachable work (the flat-IR analog of unreachable code).
    std::vector<char> live(static_cast<std::size_t>(n_regs), 0);
    for (std::size_t ri = code.size(); ri-- > 0;) {
      const Shape& sh = shapes[ri];
      const bool defines = sh.def >= 0;
      const bool def_live = defines && live[static_cast<std::size_t>(sh.def)] != 0;
      if (defines && !def_live && !sh.side_effect) {
        add(VerifySeverity::warning, "hdl-dead-code",
            str_format("%s[%zu] op %d: result in r%d is never used", stream, ri,
                       static_cast<int>(code[ri].op), sh.def),
            sname, static_cast<int>(ri));
        continue;  // a dead instruction's operands generate no demand
      }
      if (defines) live[static_cast<std::size_t>(sh.def)] = 0;
      for (int k = 0; k < sh.n_reads; ++k) live[static_cast<std::size_t>(sh.reads[k])] = 1;
    }
  }

  /// tran_code and commit_code are compiled from the same statement list, so
  /// their integrator site references must agree exactly; and the commit pass
  /// advances each site's state, so a site committed twice per step
  /// double-integrates.
  void check_site_consistency() {
    const auto sites_of = [](const std::vector<Insn>& code, Op op) {
      std::map<int, int> uses;
      for (const auto& in : code) {
        if (in.op == op) ++uses[in.b];
      }
      return uses;
    };
    for (const Op op : {Op::ddt, Op::integ}) {
      const char* what = op == Op::ddt ? "ddt" : "integ";
      const auto tran = sites_of(p_.tran_code, op);
      const auto commit = sites_of(p_.commit_code, op);
      for (const auto& [site, n] : commit) {
        if (n > 1) {
          add(VerifySeverity::error, "hdl-site-mismatch",
              str_format("%s site %d committed %d times per accepted step", what, site, n));
        }
      }
      for (const auto& [site, n] : tran) {
        (void)n;
        if (commit.find(site) == commit.end()) {
          add(VerifySeverity::error, "hdl-site-mismatch",
              str_format("%s site %d is read in tran_code but never committed — its state "
                         "would go stale",
                         what, site));
        }
      }
      for (const auto& [site, n] : commit) {
        (void)n;
        if (tran.find(site) == tran.end()) {
          add(VerifySeverity::error, "hdl-site-mismatch",
              str_format("%s site %d is committed but never read in tran_code", what, site));
        }
      }
    }
  }

  const BytecodeProgram& p_;
  const int nu_;
  VerifyReport& rep_;
};

}  // namespace

VerifyReport verify_program(const BytecodeProgram& prog, int unknown_count) {
  VerifyReport rep;
  Verifier(prog, unknown_count, rep).run();
  return rep;
}

}  // namespace usys::hdl
