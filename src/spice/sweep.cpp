#include "spice/sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace usys::spice {

SweepAxis SweepAxis::linspace(std::string name, double lo, double hi, int n) {
  SweepAxis axis;
  axis.name = std::move(name);
  if (n <= 1) {
    axis.values.push_back(lo);
    return axis;
  }
  axis.values.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    axis.values.push_back(lo + (hi - lo) * static_cast<double>(i) / (n - 1));
  return axis;
}

double SweepPoint::value(const std::string& name) const {
  for (const auto& [key, val] : params) {
    if (key == name) return val;
  }
  throw std::out_of_range("sweep point has no parameter '" + name + "'");
}

std::vector<SweepPoint> sweep_grid(const std::vector<SweepAxis>& axes) {
  std::vector<SweepPoint> grid;
  if (axes.empty()) return grid;
  std::size_t total = 1;
  for (const auto& axis : axes) {
    if (axis.values.empty()) return grid;  // empty axis -> empty grid
    total *= axis.values.size();
  }
  grid.reserve(total);
  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t p = 0; p < total; ++p) {
    SweepPoint point;
    point.params.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a)
      point.params.emplace_back(axes[a].name, axes[a].values[idx[a]]);
    grid.push_back(std::move(point));
    // Odometer increment, last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
    }
  }
  return grid;
}

SweepRunner::SweepRunner(int threads) : threads_(ThreadPool::resolve_threads(threads)) {}

std::vector<SweepOutcome> SweepRunner::run(const std::vector<SweepPoint>& grid,
                                           const Job& job) const {
  std::vector<SweepOutcome> results(grid.size());
  ThreadPool pool(std::min<int>(threads_, static_cast<int>(grid.size())));
  pool.run(static_cast<int>(grid.size()), [&](int i) {
    const auto k = static_cast<std::size_t>(i);
    try {
      results[k] = job(grid[k]);
    } catch (const std::exception& e) {
      results[k].ok = false;
      results[k].error = e.what();
    }
  });
  return results;
}

}  // namespace usys::spice
