// usys::api facade coverage: content hashing, override parsing, Session
// provenance accounting (cold pays parse/bind, warm pays neither), the
// rebind() delta path vs a cold run of the edited netlist, baseline
// restoration after overrides, device set_param/get_param contracts, and
// the SeriesView tabular extraction the CLI and the server share.
//
// (The deprecated spice:: free-function wrappers have their own pinned
// parity suite in tests/spice/test_engine.cpp.)
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "api/api.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::api {
namespace {

const char* kRcNetlist = R"(* rc lowpass
V1 in 0 5
R1 in out 1k
C1 out 0 1u
.op
.tran 10u 2m
.end
)";

const char* kRcEdited = R"(* rc lowpass
V1 in 0 5
R1 in out 2k
C1 out 0 1u
.op
.tran 10u 2m
.end
)";

void expect_identical_tran(const spice::TranResult& a, const spice::TranResult& b) {
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  ASSERT_EQ(a.time.size(), b.time.size());
  for (std::size_t k = 0; k < a.time.size(); ++k) {
    EXPECT_EQ(a.time[k], b.time[k]);
    for (int i = 0; i < 2; ++i) EXPECT_EQ(a.at(k, i), b.at(k, i));
  }
}

// --- identity ----------------------------------------------------------------

TEST(ContentHash, StableAndCollisionResistant) {
  const std::string h = content_hash(kRcNetlist);
  EXPECT_EQ(h.size(), 16u);
  EXPECT_EQ(h, content_hash(kRcNetlist));            // deterministic
  EXPECT_NE(h, content_hash(kRcEdited));             // text matters
  EXPECT_NE(h, content_hash(kRcNetlist, "ast"));     // hdl mode is identity
  // The field separator keeps (netlist, mode) unambiguous.
  EXPECT_NE(content_hash("ab", ""), content_hash("a", "b"));
}

TEST(ParseOverride, AcceptsSpiceNumberSyntax) {
  ParamOverride ov;
  ASSERT_TRUE(parse_override("R1.r=2k", ov));
  EXPECT_EQ(ov.device, "R1");
  EXPECT_EQ(ov.param, "r");
  EXPECT_DOUBLE_EQ(ov.value, 2000.0);
  ASSERT_TRUE(parse_override("XK3.K=25", ov));  // param key lower-cases
  EXPECT_EQ(ov.device, "XK3");
  EXPECT_EQ(ov.param, "k");
  ASSERT_TRUE(parse_override(" V1.dc = -2.5 ", ov));  // whitespace tolerated
  EXPECT_EQ(ov.device, "V1");
  EXPECT_DOUBLE_EQ(ov.value, -2.5);
  ASSERT_TRUE(parse_override("C1.c=1.5u", ov));
  EXPECT_DOUBLE_EQ(ov.value, 1.5e-6);
}

TEST(ParseOverride, RejectsMalformedSpecs) {
  ParamOverride ov;
  EXPECT_FALSE(parse_override("R1=5", ov));      // no param
  EXPECT_FALSE(parse_override(".r=5", ov));      // no device
  EXPECT_FALSE(parse_override("R1.=5", ov));     // empty param
  EXPECT_FALSE(parse_override("R1.r", ov));      // no value
  EXPECT_FALSE(parse_override("R1.r=abc", ov));  // not a number
  EXPECT_FALSE(parse_override("", ov));
}

// --- session provenance ------------------------------------------------------

TEST(Session, FirstRunPaysParseBindThenWarmRunsAreFree) {
  Session session(kRcNetlist);
  const JobResult cold = session.run();
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(cold.exit_code, 0);
  EXPECT_TRUE(cold.parsed);
  EXPECT_TRUE(cold.bound);
  EXPECT_FALSE(cold.rebound);
  ASSERT_EQ(cold.analyses.size(), 2u);

  const JobResult warm = session.run();
  ASSERT_TRUE(warm.ok);
  EXPECT_FALSE(warm.parsed);
  EXPECT_FALSE(warm.bound);
  // Same analysis regime on a warm engine: the compiled pattern and the
  // symbolic factorization are reused wholesale.
  EXPECT_EQ(warm.symbolic_factorizations, 0);
  EXPECT_EQ(session.jobs_run(), 2);

  // Warm reruns are bit-identical to the cold run, not merely close.
  expect_identical_tran(cold.analyses[1].tran, warm.analyses[1].tran);
  for (int i = 0; i < 2; ++i)
    EXPECT_EQ(cold.analyses[0].op.at(i), warm.analyses[0].op.at(i));
}

TEST(Session, MatchesFacadeFreeFunctions) {
  Session session(kRcNetlist);
  const JobResult r = session.run();
  ASSERT_TRUE(r.ok);
  Session fresh(kRcNetlist);
  const spice::OpResult op = usys::api::operating_point(fresh.circuit());
  ASSERT_TRUE(op.converged);
  for (int i = 0; i < 2; ++i) EXPECT_NEAR(r.analyses[0].op.at(i), op.at(i), 1e-12);
}

TEST(Session, DefaultOpWhenNetlistHasNoCards) {
  Session session("* bare\nV1 a 0 2\nR1 a 0 1k\n.end\n");
  EXPECT_TRUE(session.cards().empty());
  const JobResult r = session.run();
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.analyses.size(), 1u);
  EXPECT_EQ(r.analyses[0].kind, spice::AnalysisCard::Kind::op);
  EXPECT_NEAR(r.analyses[0].op.at(0), 2.0, 1e-9);
}

TEST(Session, MalformedNetlistThrowsNetlistError) {
  EXPECT_THROW(Session("V1 in 0 not_a_number\n.end\n"), spice::NetlistError);
}

TEST(Session, CoolShedsWarmSolverState) {
  Session session(kRcNetlist);
  const JobResult cold = session.run();
  ASSERT_TRUE(cold.ok);
  EXPECT_TRUE(session.warm());
  session.cool();
  EXPECT_FALSE(session.warm());
  // A cooled session re-warms transparently — and still bit-identically.
  const JobResult rewarmed = session.run();
  ASSERT_TRUE(rewarmed.ok);
  EXPECT_TRUE(session.warm());
  expect_identical_tran(cold.analyses[1].tran, rewarmed.analyses[1].tran);
}

// --- parameter-override delta path -------------------------------------------

TEST(Session, OverrideDeltaMatchesColdRunOfEditedNetlist) {
  Session warm(kRcNetlist);
  ASSERT_TRUE(warm.run().ok);  // prime

  JobRequest jr;
  jr.overrides.push_back({"R1", "r", 2000.0});
  const JobResult delta = warm.run(jr);
  ASSERT_TRUE(delta.ok);
  EXPECT_TRUE(delta.rebound);
  EXPECT_FALSE(delta.parsed);

  Session cold(kRcEdited);
  const JobResult want = cold.run();
  ASSERT_TRUE(want.ok);
  ASSERT_EQ(delta.analyses[1].tran.time.size(), want.analyses[1].tran.time.size());
  for (std::size_t k = 0; k < want.analyses[1].tran.time.size(); ++k)
    for (int i = 0; i < 2; ++i)
      EXPECT_NEAR(delta.analyses[1].tran.at(k, i), want.analyses[1].tran.at(k, i),
                  1e-12);
}

TEST(Session, OverridesAreRestoredAfterTheJob) {
  Session baseline(kRcNetlist);
  const JobResult base = baseline.run();

  Session session(kRcNetlist);
  ASSERT_TRUE(session.run().ok);
  JobRequest jr;
  jr.overrides.push_back({"R1", "r", 470.0});
  jr.overrides.push_back({"V1", "dc", 3.0});
  ASSERT_TRUE(session.run(jr).ok);
  // After the override job the session must match its netlist text again.
  const JobResult restored = session.run();
  ASSERT_TRUE(restored.ok);
  expect_identical_tran(base.analyses[1].tran, restored.analyses[1].tran);
}

TEST(Session, BadOverridesAreExit2AndLeaveTheSessionUsable) {
  Session session(kRcNetlist);
  JobRequest unknown_dev;
  unknown_dev.overrides.push_back({"R99", "r", 10.0});
  const JobResult r1 = session.run(unknown_dev);
  EXPECT_FALSE(r1.ok);
  EXPECT_EQ(r1.exit_code, 2);
  EXPECT_TRUE(r1.analyses.empty());
  EXPECT_NE(r1.error.find("unknown device"), std::string::npos);

  JobRequest unknown_param;
  unknown_param.overrides.push_back({"R1", "bogus", 10.0});
  const JobResult r2 = session.run(unknown_param);
  EXPECT_EQ(r2.exit_code, 2);
  EXPECT_NE(r2.error.find("does not expose"), std::string::npos);

  JobRequest bad_value;  // a zero resistance would divide the stamp
  bad_value.overrides.push_back({"R1", "r", 0.0});
  const JobResult r3 = session.run(bad_value);
  EXPECT_EQ(r3.exit_code, 2);
  EXPECT_NE(r3.error.find("rejected"), std::string::npos);

  const JobResult ok = session.run();
  EXPECT_TRUE(ok.ok);
}

// --- device parameter contracts ----------------------------------------------

TEST(DeviceParams, PassiveAndShadowedMechanicalKeys) {
  spice::Circuit ckt;
  const int a = ckt.add_node("a", Nature::electrical);
  const int x = ckt.add_node("x", Nature::mechanical_translation);
  auto& r = ckt.add<spice::Resistor>("R1", a, spice::Circuit::kGround, 100.0);
  auto& k = ckt.add<spice::Spring>("K1", x, spice::Circuit::kGround, 25.0);

  double v = 0.0;
  ASSERT_TRUE(r.get_param("r", v));
  EXPECT_DOUBLE_EQ(v, 100.0);
  EXPECT_TRUE(r.set_param("r", 220.0));
  ASSERT_TRUE(r.get_param("r", v));
  EXPECT_DOUBLE_EQ(v, 220.0);
  EXPECT_FALSE(r.set_param("r", 0.0));  // zero divides the stamp
  EXPECT_FALSE(r.set_param("c", 1.0));  // not a resistor key

  // Spring exposes its own netlist key "k" and SHADOWS the inherited
  // inductor key, keeping the cached stiffness and the stamped l = 1/k in
  // sync by construction.
  ASSERT_TRUE(k.get_param("k", v));
  EXPECT_DOUBLE_EQ(v, 25.0);
  EXPECT_FALSE(k.get_param("l", v));
  EXPECT_TRUE(k.set_param("k", 50.0));
  ASSERT_TRUE(k.get_param("k", v));
  EXPECT_DOUBLE_EQ(v, 50.0);
}

TEST(DeviceParams, SourceDcOnlyWhileWaveformIsDc) {
  // A DC source round-trips its "dc" value; a PULSE source rejects the key
  // outright (an override could not be restored to the original waveform).
  Session dc_session("V1 a 0 5\nR1 a 0 1k\n.end\n");
  spice::Device* v_dc = dc_session.circuit().find_device("V1");
  ASSERT_NE(v_dc, nullptr);
  double v = 0.0;
  ASSERT_TRUE(v_dc->get_param("dc", v));
  EXPECT_DOUBLE_EQ(v, 5.0);
  EXPECT_TRUE(v_dc->set_param("dc", 7.5));
  ASSERT_TRUE(v_dc->get_param("dc", v));
  EXPECT_DOUBLE_EQ(v, 7.5);

  Session pulse_session("V1 a 0 PULSE(0 5 1m 0.1m 0.1m 2m)\nR1 a 0 1k\n.tran 1u 1m\n.end\n");
  spice::Device* v_pulse = pulse_session.circuit().find_device("V1");
  ASSERT_NE(v_pulse, nullptr);
  EXPECT_FALSE(v_pulse->get_param("dc", v));
  EXPECT_FALSE(v_pulse->set_param("dc", 1.0));
}

// --- series view -------------------------------------------------------------

TEST(SeriesView, OpTranAcShapes) {
  Session session(R"(* shapes
V1 in 0 0 AC 1
R1 in out 1k
C1 out 0 1u
.op
.tran 10u 1m
.ac dec 5 10 10k
.end
)");
  const JobResult r = session.run();
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.analyses.size(), 3u);

  const SeriesView op = series_view(r.analyses[0], session.circuit());
  ASSERT_EQ(op.columns.size(), 2u);
  EXPECT_EQ(op.columns[0], "in");
  EXPECT_EQ(op.columns[1], "out");
  EXPECT_EQ(op.rows, 1u);
  EXPECT_EQ(op.row_at(0)[0], r.analyses[0].op.at(0));

  const SeriesView tran = series_view(r.analyses[1], session.circuit());
  ASSERT_EQ(tran.columns.size(), 3u);
  EXPECT_EQ(tran.columns[0], "t [s]");
  EXPECT_EQ(tran.rows, r.analyses[1].tran.time.size());
  const auto row1 = tran.row_at(1);
  EXPECT_EQ(row1[0], r.analyses[1].tran.time[1]);
  EXPECT_EQ(row1[2], r.analyses[1].tran.at(1, 1));

  const SeriesView ac = series_view(r.analyses[2], session.circuit());
  ASSERT_EQ(ac.columns.size(), 5u);  // f + (dB, deg) per node
  EXPECT_EQ(ac.columns[0], "f [Hz]");
  EXPECT_EQ(ac.columns[1], "in dB");
  EXPECT_EQ(ac.columns[2], "in deg");
  EXPECT_EQ(ac.rows, r.analyses[2].ac.freq.size());
  const auto acrow = ac.row_at(0);
  EXPECT_EQ(acrow[0], r.analyses[2].ac.freq[0]);
  EXPECT_EQ(acrow[1], r.analyses[2].ac.magnitude_db(0, 0));
}

}  // namespace
}  // namespace usys::api
