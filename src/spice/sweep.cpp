#include "spice/sweep.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "spice/checkpoint.hpp"

namespace usys::spice {

SweepAxis SweepAxis::linspace(std::string name, double lo, double hi, int n) {
  SweepAxis axis;
  axis.name = std::move(name);
  if (n <= 1) {
    axis.values.push_back(lo);
    return axis;
  }
  axis.values.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    axis.values.push_back(lo + (hi - lo) * static_cast<double>(i) / (n - 1));
  return axis;
}

double SweepPoint::value(const std::string& name) const {
  for (const auto& [key, val] : params) {
    if (key == name) return val;
  }
  throw std::out_of_range("sweep point has no parameter '" + name + "'");
}

std::vector<SweepPoint> sweep_grid(const std::vector<SweepAxis>& axes) {
  std::vector<SweepPoint> grid;
  if (axes.empty()) return grid;
  std::size_t total = 1;
  for (const auto& axis : axes) {
    if (axis.values.empty()) return grid;  // empty axis -> empty grid
    total *= axis.values.size();
  }
  grid.reserve(total);
  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t p = 0; p < total; ++p) {
    SweepPoint point;
    point.params.reserve(axes.size());
    for (std::size_t a = 0; a < axes.size(); ++a)
      point.params.emplace_back(axes[a].name, axes[a].values[idx[a]]);
    grid.push_back(std::move(point));
    // Odometer increment, last axis fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++idx[a] < axes[a].values.size()) break;
      idx[a] = 0;
    }
  }
  return grid;
}

namespace {

bool fail_spec(std::string* error, std::string why) {
  if (error) *error = std::move(why);
  return false;
}

/// Splits "a,b,c" into trimmed non-empty pieces.
std::vector<std::string> split_args(std::string_view s) {
  std::vector<std::string> out;
  for (const auto piece : split(s, ",")) {
    const auto t = trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

}  // namespace

std::optional<ParamDist> parse_dist_spec(const std::string& name,
                                         const std::string& spec,
                                         std::string* error) {
  ParamDist dist;
  dist.name = name;
  const auto s = trim(spec);
  const std::string spec_text(s);
  const auto open = spec_text.find('(');
  if (open == std::string::npos) {
    const auto v = parse_spice_number(spec_text);
    if (!v) {
      fail_spec(error, "'" + spec_text + "' is not a number or dist(...)");
      return std::nullopt;
    }
    dist.kind = ParamDist::Kind::constant;
    dist.a = *v;
    return dist;
  }
  if (spec_text.empty() || spec_text.back() != ')') {
    fail_spec(error, "missing ')' in '" + spec_text + "'");
    return std::nullopt;
  }
  const auto head = to_lower(spec_text.substr(0, open));
  const auto args =
      split_args(std::string_view(spec_text).substr(open + 1, spec_text.size() - open - 2));
  auto two = [&](const char* what) -> bool {
    if (args.size() != 2)
      return fail_spec(error, std::string(what) + " wants exactly 2 arguments");
    const auto a = parse_spice_number(args[0]);
    const auto b = parse_spice_number(args[1]);
    if (!a || !b) return fail_spec(error, std::string(what) + ": bad number");
    dist.a = *a;
    dist.b = *b;
    return true;
  };
  if (head == "normal" || head == "gauss") {
    dist.kind = ParamDist::Kind::normal;
    if (!two("normal(mu,sigma)")) return std::nullopt;
    if (dist.b < 0.0) {
      fail_spec(error, "normal(mu,sigma): sigma must be >= 0");
      return std::nullopt;
    }
    return dist;
  }
  if (head == "uniform") {
    dist.kind = ParamDist::Kind::uniform;
    if (!two("uniform(lo,hi)")) return std::nullopt;
    if (dist.b < dist.a) {
      fail_spec(error, "uniform(lo,hi): hi must be >= lo");
      return std::nullopt;
    }
    return dist;
  }
  if (head == "corner") {
    dist.kind = ParamDist::Kind::corner;
    if (args.empty()) {
      fail_spec(error, "corner(...) wants at least one value");
      return std::nullopt;
    }
    for (const auto& arg : args) {
      const auto v = parse_spice_number(arg);
      if (!v) {
        fail_spec(error, "corner(...): '" + arg + "' is not a number");
        return std::nullopt;
      }
      dist.values.push_back(*v);
    }
    return dist;
  }
  fail_spec(error, "unknown distribution '" + head +
                       "' (want normal, uniform, or corner)");
  return std::nullopt;
}

std::optional<SweepEntry> parse_sweep_entry(const std::string& arg,
                                            std::string* error) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    fail_spec(error, "want name=spec");
    return std::nullopt;
  }
  const std::string name(trim(arg.substr(0, eq)));
  const std::string spec(trim(arg.substr(eq + 1)));
  if (name.empty() || spec.empty()) {
    fail_spec(error, "want name=spec");
    return std::nullopt;
  }
  SweepEntry entry;
  if (spec.find('(') != std::string::npos) {
    auto dist = parse_dist_spec(name, spec, error);
    if (!dist) return std::nullopt;
    entry.is_dist = true;
    entry.dist = std::move(*dist);
    return entry;
  }
  entry.axis.name = name;
  if (spec.find(':') != std::string::npos) {
    const auto pieces = split(spec, ":");
    if (pieces.size() != 3) {
      fail_spec(error, "range spec wants lo:hi:n");
      return std::nullopt;
    }
    const auto lo = parse_spice_number(pieces[0]);
    const auto hi = parse_spice_number(pieces[1]);
    const auto nv = parse_spice_number(pieces[2]);
    const int n = nv ? static_cast<int>(*nv) : 0;
    if (!lo || !hi || !nv || *nv != n || n < 1 || n > 1'000'000) {
      fail_spec(error, "range spec wants lo:hi:n with 1 <= n <= 1e6");
      return std::nullopt;
    }
    entry.axis.values = SweepAxis::linspace(name, *lo, *hi, n).values;
    return entry;
  }
  for (const auto piece : split(spec, ",")) {
    const auto v = parse_spice_number(trim(piece));
    if (!v) {
      const std::string bad(trim(piece));
      fail_spec(error, "'" + bad + "' is not a number");
      return std::nullopt;
    }
    entry.axis.values.push_back(*v);
  }
  if (entry.axis.values.empty()) {
    fail_spec(error, "empty value list");
    return std::nullopt;
  }
  return entry;
}

std::vector<SweepPoint> mc_grid(const std::vector<SweepAxis>& axes,
                                const std::vector<ParamDist>& dists,
                                const McOptions& mc) {
  // Corner dists become grid axes after the explicit ones (declaration
  // order), so corners enumerate as a cartesian product composed with the
  // sweep grid; random/constant dists append per point below.
  std::vector<SweepAxis> full_axes = axes;
  for (const auto& dist : dists) {
    if (dist.kind != ParamDist::Kind::corner) continue;
    SweepAxis axis;
    axis.name = dist.name;
    axis.values = dist.values;
    full_axes.push_back(std::move(axis));
  }
  std::vector<SweepPoint> base = sweep_grid(full_axes);
  if (base.empty()) {
    if (!full_axes.empty()) return base;  // an axis was empty: empty grid
    base.emplace_back();                  // no axes at all: one empty point
  }

  const int samples = std::max(1, mc.samples);
  std::vector<SweepPoint> grid;
  grid.reserve(base.size() * static_cast<std::size_t>(samples));
  for (const auto& b : base) {
    for (int m = 0; m < samples; ++m) {
      const auto index = static_cast<std::uint64_t>(grid.size());
      SweepPoint point = b;
      for (const auto& dist : dists) {
        switch (dist.kind) {
          case ParamDist::Kind::constant:
            point.params.emplace_back(dist.name, dist.a);
            break;
          case ParamDist::Kind::normal:
            point.params.emplace_back(
                dist.name, rng_normal(mc.seed, index, rng_hash_name(dist.name),
                                      dist.a, dist.b));
            break;
          case ParamDist::Kind::uniform:
            point.params.emplace_back(
                dist.name, rng_uniform(mc.seed, index, rng_hash_name(dist.name),
                                       dist.a, dist.b));
            break;
          case ParamDist::Kind::corner:
            break;  // already a grid axis
        }
      }
      grid.push_back(std::move(point));
    }
  }
  return grid;
}

std::string shard_suffixed_path(const std::string& path, int shard_index,
                                int shard_count) {
  if (shard_count <= 1) return path;
  const std::string suffix = ".shard" + std::to_string(shard_index) + "of" +
                             std::to_string(shard_count);
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return path + suffix;
  return path.substr(0, dot) + suffix + path.substr(dot);
}

bool shard_owns(std::size_t index, int shard_index, int shard_count) noexcept {
  if (shard_count <= 1) return true;
  return index % static_cast<std::size_t>(shard_count) ==
         static_cast<std::size_t>(shard_index - 1);
}

SweepRunner::SweepRunner(int threads) : threads_(ThreadPool::resolve_threads(threads)) {}

namespace {

/// The isolation boundary: whatever escapes the job becomes a structured
/// per-point failure, never a batch abort. bad_alloc is distinguished (the
/// one exception a survivability sweep most wants to see by kind); anything
/// else is internal_error. `error` stays exactly e.what() — the stable
/// contract existing callers rely on.
SweepOutcome run_isolated(const SweepRunner::RetryJob& job, const SweepPoint& point,
                          int attempt) {
  SweepOutcome out;
  try {
    out = job(point, attempt);
  } catch (const std::bad_alloc&) {
    out = SweepOutcome{};
    out.error = "allocation failure";
    out.failure = make_failure(FailureKind::alloc_failure, "sweep", "std::bad_alloc");
  } catch (const std::exception& e) {
    out = SweepOutcome{};
    out.error = e.what();
    out.failure = make_failure(FailureKind::internal_error, "sweep", e.what());
  }
  // A job may signal failure without filling the structured record (legacy
  // jobs set only ok/error); backfill so the checkpoint always has a kind.
  if (!out.ok && out.failure.ok())
    out.failure = make_failure(FailureKind::internal_error, "sweep", out.error);
  return out;
}

}  // namespace

std::vector<SweepOutcome> SweepRunner::run(const std::vector<SweepPoint>& grid,
                                           const Job& job) const {
  return run(
      grid, [&job](const SweepPoint& p, int /*attempt*/) { return job(p); },
      SweepOptions{});
}

std::vector<SweepOutcome> SweepRunner::run(const std::vector<SweepPoint>& grid,
                                           const RetryJob& job,
                                           const SweepOptions& opts) const {
  std::vector<SweepOutcome> results(grid.size());

  // --- Resume: restore completed points before scheduling anything --------
  // "Completed" means recorded ok with the same parameters; failed points
  // are unfinished and re-run (that is what resuming is for). A parameter
  // mismatch means the checkpoint belongs to a different grid — refuse
  // rather than silently mixing results.
  if (!opts.resume_path.empty()) {
    CheckpointData ckpt;
    std::string err;
    if (!load_checkpoint(opts.resume_path, ckpt, &err))
      throw std::runtime_error("sweep resume: " + err);
    for (const auto& [index, rec] : ckpt.records) {
      if (index < 0 || static_cast<std::size_t>(index) >= grid.size())
        throw std::runtime_error(
            "sweep resume: checkpoint index " + std::to_string(index) +
            " outside the grid (" + std::to_string(grid.size()) + " points)");
      const auto k = static_cast<std::size_t>(index);
      if (rec.point.params != grid[k].params)
        throw std::runtime_error("sweep resume: checkpoint point " + std::to_string(index) +
                                 " has different parameters than the grid — wrong "
                                 "checkpoint file for this sweep");
      if (!rec.outcome.ok) continue;  // unfinished: re-run
      results[k] = rec.outcome;
      results[k].restored = true;
      results[k].attempts = 0;
    }
  }

  // --- Work list: on-shard, not restored ----------------------------------
  std::vector<std::size_t> todo;
  todo.reserve(grid.size());
  for (std::size_t k = 0; k < grid.size(); ++k) {
    if (results[k].restored) continue;
    if (!shard_owns(k, opts.shard_index, opts.shard_count)) {
      results[k].skipped = true;
      continue;
    }
    todo.push_back(k);
  }

  std::unique_ptr<CheckpointWriter> writer;
  std::mutex writer_mu;
  if (!opts.checkpoint_path.empty())
    writer = std::make_unique<CheckpointWriter>(opts.checkpoint_path);

  if (!todo.empty()) {
    ThreadPool pool(std::min<int>(threads_, static_cast<int>(todo.size())));
    pool.run(static_cast<int>(todo.size()), [&](int i) {
      const std::size_t k = todo[static_cast<std::size_t>(i)];
      SweepOutcome out = run_isolated(job, grid[k], 0);
      out.attempts = 1;
      for (int attempt = 1; !out.ok && attempt <= opts.retries; ++attempt) {
        SweepOutcome retry = run_isolated(job, grid[k], attempt);
        retry.attempts = attempt + 1;
        out = std::move(retry);
      }
      if (writer) {
        // Journal the FINAL verdict only (retries are one point's attempts,
        // not separate records); serialize appends — completion order is
        // nondeterministic, the per-index records make that harmless.
        std::lock_guard<std::mutex> lock(writer_mu);
        writer->append(static_cast<long>(k), grid[k], out);
      }
      results[k] = std::move(out);
    });
  }
  return results;
}

}  // namespace usys::spice
