// FEM electrostatics vs the analytic parallel-plate solution: field, energy,
// capacitance, and both force-extraction paths (the Fig. 6 pipeline).
// GCC 12's libstdc++ trips a -Wrestrict false positive (GCC PR105651) on
// short string concatenations in some inlining contexts; no real aliasing
// exists. Scoped to GCC 12 so newer compilers keep the check.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "fem/electrostatics.hpp"

namespace usys::fem {
namespace {

struct Setup {
  Mesh mesh;
  ElectrostaticProblem problem;
};

Setup plate(double width, double gap, int nx, int ny, double v) {
  Setup s;
  PlateMeshSpec spec;
  spec.width = width;
  spec.gap = gap;
  spec.nx = nx;
  spec.ny = ny;
  s.mesh = make_plate_mesh(spec);
  s.problem.mesh = &s.mesh;
  s.problem.v_bottom = v;
  s.problem.v_top = 0.0;
  return s;
}

TEST(Electrostatics, UniformFieldBetweenPlates) {
  auto s = plate(1e-3, 1e-4, 4, 8, 10.0);
  const auto sol = solve_electrostatics(s.problem);
  ASSERT_TRUE(sol.converged);
  const double e_expected = 10.0 / 1e-4;
  for (int e = 0; e < s.mesh.element_count(); ++e) {
    EXPECT_NEAR(sol.ex[static_cast<std::size_t>(e)], 0.0, e_expected * 1e-9);
    EXPECT_NEAR(sol.ey[static_cast<std::size_t>(e)], e_expected, e_expected * 1e-9);
  }
}

TEST(Electrostatics, PotentialLinearAcrossGap) {
  auto s = plate(1e-3, 2e-4, 3, 10, 8.0);
  const auto sol = solve_electrostatics(s.problem);
  ASSERT_TRUE(sol.converged);
  for (int i = 0; i < s.mesh.node_count(); ++i) {
    const double y = s.mesh.points()[static_cast<std::size_t>(i)].y;
    EXPECT_NEAR(sol.phi[static_cast<std::size_t>(i)], 8.0 * (1.0 - y / 2e-4), 1e-8);
  }
}

TEST(Electrostatics, CapacitanceMatchesAnalytic) {
  const double width = 5e-3;
  const double gap = 1.5e-4;
  auto s = plate(width, gap, 8, 12, 10.0);
  const auto sol = solve_electrostatics(s.problem);
  const double c_fe = capacitance_per_depth(s.problem, sol);
  const double c_exact = kEps0Paper * width / gap;
  EXPECT_NEAR(c_fe, c_exact, c_exact * 1e-9);
}

TEST(Electrostatics, MaxwellForceMatchesAnalytic) {
  // Fig. 6 validation: F = -eps A V^2/(2 d^2), exact for the fringe-free
  // plate (the paper's own setup: "the fringe field was not modeled").
  const double width = 1e-2;
  const double gap = 0.15e-3;
  const double v = 10.0;
  auto s = plate(width, gap, 8, 8, v);
  const auto sol = solve_electrostatics(s.problem);
  const double f_fe = maxwell_force_per_depth(s.problem, sol, BoundaryTag::top);
  const double f_exact = -kEps0Paper * width * v * v / (2.0 * gap * gap);
  EXPECT_NEAR(f_fe, f_exact, std::abs(f_exact) * 1e-9);
}

TEST(Electrostatics, BottomElectrodeFeelsOppositeForce) {
  auto s = plate(1e-2, 1e-4, 6, 6, 5.0);
  const auto sol = solve_electrostatics(s.problem);
  const double f_top = maxwell_force_per_depth(s.problem, sol, BoundaryTag::top);
  const double f_bot = maxwell_force_per_depth(s.problem, sol, BoundaryTag::bottom);
  EXPECT_NEAR(f_top, -f_bot, std::abs(f_top) * 1e-9);
  EXPECT_LT(f_top, 0.0);  // attraction pulls top plate down
}

TEST(Electrostatics, VirtualWorkAgreesWithMaxwellStress) {
  const double width = 1e-2;
  const double gap = 0.15e-3;
  const double v = 10.0;
  auto energy_of_gap = [&](double g) {
    auto s = plate(width, g, 6, 8, v);
    const auto sol = solve_electrostatics(s.problem);
    return field_energy(s.problem, sol);
  };
  const double f_vw = virtual_work_force_per_depth(energy_of_gap, gap, gap * 1e-4);
  auto s = plate(width, gap, 6, 8, v);
  const auto sol = solve_electrostatics(s.problem);
  const double f_mst = maxwell_force_per_depth(s.problem, sol, BoundaryTag::top);
  EXPECT_NEAR(f_vw, f_mst, std::abs(f_mst) * 1e-4);
}

TEST(Electrostatics, FringeFieldIncreasesCapacitance) {
  // With air margins the fringe field adds capacitance vs the ideal value.
  PlateMeshSpec spec;
  spec.width = 1e-3;
  spec.gap = 2e-4;
  spec.nx = 10;
  spec.ny = 10;
  spec.side_margin = 4e-4;
  spec.margin_cells = 4;
  Mesh mesh = make_plate_mesh(spec);
  ElectrostaticProblem p;
  p.mesh = &mesh;
  p.v_bottom = 10.0;
  const auto sol = solve_electrostatics(p);
  ASSERT_TRUE(sol.converged);
  const double c_fringe = capacitance_per_depth(p, sol);
  const double c_ideal = kEps0Paper * spec.width / spec.gap;
  EXPECT_GT(c_fringe, c_ideal * 1.001);
  EXPECT_LT(c_fringe, c_ideal * 1.5);
}

TEST(Electrostatics, DielectricScalesCapacitance) {
  auto s = plate(1e-3, 1e-4, 4, 6, 5.0);
  s.problem.eps_r = {3.9};  // oxide
  const auto sol = solve_electrostatics(s.problem);
  const double c = capacitance_per_depth(s.problem, sol);
  EXPECT_NEAR(c, 3.9 * kEps0Paper * 1e-3 / 1e-4, c * 1e-9);
}

TEST(Electrostatics, MissingElectrodesThrow) {
  Mesh mesh;  // empty
  ElectrostaticProblem p;
  p.mesh = &mesh;
  EXPECT_THROW(solve_electrostatics(p), std::invalid_argument);
  EXPECT_THROW(solve_electrostatics(ElectrostaticProblem{}), std::invalid_argument);
}

TEST(Electrostatics, MeshRefinementConvergence) {
  // The plate problem is exact at any resolution; verify the solver's
  // discrete answer is resolution-independent to tight tolerance.
  const double width = 1e-2;
  const double gap = 0.15e-3;
  double prev = 0.0;
  for (int n : {2, 4, 8}) {
    auto s = plate(width, gap, n, n, 10.0);
    const auto sol = solve_electrostatics(s.problem);
    const double f = maxwell_force_per_depth(s.problem, sol, BoundaryTag::top);
    if (n > 2) { EXPECT_NEAR(f, prev, std::abs(f) * 1e-8); }
    prev = f;
  }
}

}  // namespace
}  // namespace usys::fem
