// The HDL-AT execution engine: wraps an ElaboratedModel as a spice::Device.
//
// Each Newton iteration re-executes the model's procedural blocks with
// forward-mode AD duals seeded on the instance's unknowns (pin node efforts
// and effort-branch flows), so flow/effort contributions land in the MNA
// residual together with exact Jacobian entries.
//
// Dynamic operators use direct integrator substitution:
//  * ddt(e): value = a0*e + hist with a0 = 1/c1 from the step coefficients
//    (backward-Euler or trapezoidal history kept per call site);
//  * integ(e): value = s_prev + c0*e_prev + c1*e per call site.
// During DC, ddt() evaluates to 0 and integ() to its initial value — the
// HDL-A semantics the paper's models rely on (`x := integ(S)` pins the
// displacement at 0 in the operating point).
//
// AC: the device is linearized with internal integ() states frozen (the
// same convention the native transducers use — see DESIGN.md); ddt() terms
// are separated into the jq matrix by a two-pass gradient extraction whose
// scratch is seed-local (seeds x seeds), never n x n.
//
// Three executors share the pass semantics and the per-site state:
//  * HdlExecMode::bytecode (default) — the model is compiled once at bind
//    into a flat register-slot program run by BytecodeVm (hdl/bytecode.hpp).
//    This closes most of the ~10x interpreted-model penalty the paper
//    reports; bench_perf_hdl_overhead tracks the remaining gap.
//  * HdlExecMode::codegen — the bytecode program is translated to flat C++
//    (hdl/codegen.hpp), compiled once per model *shape* by the host compiler
//    into a dlopen'd shared object with the Dual arithmetic unrolled over
//    the seed count and the stamps fused into a seed-indexed block. Falls
//    back to the bytecode VM (with one warning) when no compiler is
//    available or compilation fails — codegen never gates correctness.
//  * HdlExecMode::ast — the original recursive tree walk over the
//    ElaboratedModel, kept as the reproduction of the paper's interpreted
//    path and as the oracle the other executors are tested against
//    (tests/hdl/test_bytecode.cpp, tests/hdl/test_codegen.cpp assert parity
//    at 1e-12).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hdl/bytecode.hpp"
#include "hdl/elaborate.hpp"
#include "hdl/verify.hpp"
#include "spice/circuit.hpp"
#include "sym/dual.hpp"

namespace usys::hdl {

namespace codegen {
struct CompiledModel;
}

/// Which executor HdlDevice::evaluate runs. Switchable at any time; all
/// executors share the ddt/integ site state, so results stay consistent.
enum class HdlExecMode {
  bytecode,  ///< compiled register-slot program (fast path, default)
  ast,       ///< recursive tree walk (paper-faithful oracle)
  codegen,   ///< native-compiled model (fastest; VM fallback when unavailable)
};

/// Parses "ast" / "bytecode" / "codegen" (case-sensitive); false on anything
/// else. Shared by the netlist `.options hdl=` card and `usim --hdl-mode=`.
bool parse_exec_mode(const std::string& text, HdlExecMode& out);
const char* to_string(HdlExecMode mode) noexcept;

class HdlDevice final : public spice::Device {
 public:
  /// `node_per_pin` maps each model pin (declaration order) to a circuit
  /// node id (ground = -1 allowed).
  HdlDevice(std::string name, ElaboratedModel model, std::vector<int> node_per_pin,
            HdlExecMode exec_mode = HdlExecMode::bytecode);

  void bind(spice::Binder& binder) override;
  void evaluate(spice::EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;
  void start_transient(const DVector& x_dc) override;
  void accept(const spice::AcceptCtx& ctx) override;
  /// Default topology plus the bytecode verifier's warnings (hdl-* rules).
  void lint(spice::LintSink& sink) const override;

  const ElaboratedModel& model() const noexcept { return model_; }

  HdlExecMode exec_mode() const noexcept { return exec_mode_; }
  void set_exec_mode(HdlExecMode mode) noexcept {
    // Re-arm the lazy codegen acquisition when (re)entering codegen mode, so
    // a post-bind switch still picks up the native object.
    if (mode == HdlExecMode::codegen && exec_mode_ != mode) cg_attempted_ = false;
    exec_mode_ = mode;
  }

  /// True when this device currently runs a native-compiled model (codegen
  /// mode, acquisition succeeded). False before bind, in other modes, and
  /// after a fallback.
  bool codegen_active() const noexcept { return exec_mode_ == HdlExecMode::codegen && cg_ != nullptr; }

  /// The compiled program (valid after bind; for tests and benchmarks).
  const BytecodeProgram& program() const noexcept { return program_; }

  /// The bind-time static verification of program_ (hdl/verify.hpp).
  /// Errors throw inside bind(), so a bound device's report holds only
  /// warnings; lint() re-surfaces them.
  const VerifyReport& verify_report() const noexcept { return verify_report_; }

  /// Committed value of an integ() call site (e.g. the displacement state
  /// of the paper's Listing 1), indexed in source order.
  double integ_state(int site) const;

  /// Distinct ASSERT sites that have fired so far (each site warns once).
  int assert_violations() const noexcept override {
    return static_cast<int>(asserted_.size());
  }

 private:
  using Pass = HdlPass;

  struct Frame;
  sym::Dual eval_expr(const ExprNode& e, Frame& fr);

  /// One pass over the model. `jf_capture` (seeds x seeds, row-major by seed
  /// slot) switches both executors into gradient-capture mode for the jq
  /// extraction; `ctx` must then be null.
  void run(spice::EvalCtx* ctx, Pass pass, const DVector& x,
           double* jf_capture = nullptr);
  void run_ast(spice::EvalCtx* ctx, Pass pass, const DVector& x, double* jf_capture);
  void run_codegen(spice::EvalCtx* ctx, Pass pass, const DVector& x,
                   double* jf_capture);
  void report_assert(int site, int line, double value);

  ElaboratedModel model_;
  std::vector<int> nodes_;           ///< node id per pin
  std::vector<int> branch_of_pair_;  ///< branch unknown per effort pair
  std::vector<int> seed_unknowns_;   ///< global unknown per AD seed slot
  std::vector<DdtSiteState> ddt_;
  std::vector<IntegSiteState> integ_;
  std::set<int> asserted_;           ///< ASSERT sites already reported
  HdlExecMode exec_mode_;

  BytecodeProgram program_;          ///< compiled at bind
  VerifyReport verify_report_;       ///< bind-time verification (warnings only)
  BytecodeVm vm_;
  std::vector<std::pair<int, double>> fired_asserts_;  ///< VM scratch
  std::vector<double> cap_a_, cap_b_;                  ///< jq capture scratch

  // Codegen execution state (hdl/codegen.hpp): the process-wide registry
  // owns the compiled object; the device only keeps the entry points plus
  // per-run gather/scatter scratch.
  const codegen::CompiledModel* cg_ = nullptr;
  bool cg_attempted_ = false;
  std::vector<double> cg_xs_;        ///< gathered unknown values per seed slot
  std::vector<double> cg_f_;         ///< residual block by seed row
  std::vector<double> cg_j_;         ///< Jacobian block, seeds x seeds
  std::vector<int> cg_sites_;        ///< commit-pass ASSERT scratch
  std::vector<double> cg_vals_;

  int seed_of(int global) const;     ///< -1 if not seeded (ground)
};

/// Convenience: parse + elaborate + instantiate in one call.
/// `source` may contain several entities; `entity` picks one.
std::unique_ptr<HdlDevice> instantiate(const std::string& device_name,
                                       const std::string& source,
                                       const std::string& entity,
                                       const std::map<std::string, double>& generics,
                                       const std::vector<int>& node_per_pin,
                                       HdlExecMode exec_mode = HdlExecMode::bytecode);

}  // namespace usys::hdl
