// Forward-mode automatic differentiation with a dynamic gradient vector.
//
// The HDL-AT interpreter evaluates model expressions with Dual operands so
// that the Newton Jacobian entries (d flow / d port-unknown) come out exact
// in a single evaluation pass — no numeric differencing, no extra model
// calls. Devices have a handful of pins, so gradients stay tiny.
//
// Header-only; value semantics.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace usys::sym {

/// value + gradient w.r.t. a fixed set of seed unknowns.
class Dual {
 public:
  Dual() = default;
  /// Constant with an n-dimensional zero gradient.
  explicit Dual(double v, std::size_t n = 0) : v_(v), g_(n, 0.0) {}
  /// Seed: the `i`-th independent variable out of `n`.
  static Dual seed(double v, std::size_t i, std::size_t n) {
    Dual d(v, n);
    d.g_[i] = 1.0;
    return d;
  }

  double value() const noexcept { return v_; }
  std::size_t size() const noexcept { return g_.size(); }
  double grad(std::size_t i) const noexcept { return i < g_.size() ? g_[i] : 0.0; }
  const std::vector<double>& grad() const noexcept { return g_; }

  Dual& operator+=(const Dual& o) {
    widen(o.size());
    v_ += o.v_;
    for (std::size_t i = 0; i < o.g_.size(); ++i) g_[i] += o.g_[i];
    return *this;
  }
  Dual& operator-=(const Dual& o) {
    widen(o.size());
    v_ -= o.v_;
    for (std::size_t i = 0; i < o.g_.size(); ++i) g_[i] -= o.g_[i];
    return *this;
  }

  friend Dual operator+(Dual a, const Dual& b) { return a += b; }
  friend Dual operator-(Dual a, const Dual& b) { return a -= b; }
  friend Dual operator-(const Dual& a) {
    Dual r(-a.v_, a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r.g_[i] = -a.g_[i];
    return r;
  }
  friend Dual operator*(const Dual& a, const Dual& b) {
    Dual r(a.v_ * b.v_, std::max(a.size(), b.size()));
    for (std::size_t i = 0; i < r.size(); ++i)
      r.g_[i] = a.grad(i) * b.v_ + a.v_ * b.grad(i);
    return r;
  }
  friend Dual operator/(const Dual& a, const Dual& b) {
    const double inv = 1.0 / b.v_;
    Dual r(a.v_ * inv, std::max(a.size(), b.size()));
    for (std::size_t i = 0; i < r.size(); ++i)
      r.g_[i] = (a.grad(i) - r.v_ * b.grad(i)) * inv;
    return r;
  }

  // double interop
  friend Dual operator+(Dual a, double b) { a.v_ += b; return a; }
  friend Dual operator+(double a, Dual b) { b.v_ += a; return b; }
  friend Dual operator-(Dual a, double b) { a.v_ -= b; return a; }
  friend Dual operator-(double a, const Dual& b) { return -b + a; }
  friend Dual operator*(Dual a, double b) {
    a.v_ *= b;
    for (auto& g : a.g_) g *= b;
    return a;
  }
  friend Dual operator*(double a, Dual b) { return std::move(b) * a; }
  friend Dual operator/(Dual a, double b) { return std::move(a) * (1.0 / b); }
  friend Dual operator/(double a, const Dual& b) { return Dual(a) / b; }

 private:
  /// Applies f with derivative df to one operand (chain rule).
  friend Dual unary(const Dual& a, double f, double df) {
    Dual r(f, a.size());
    for (std::size_t i = 0; i < a.size(); ++i) r.g_[i] = df * a.g_[i];
    return r;
  }

 public:
  friend Dual sin(const Dual& a) { return unary(a, std::sin(a.v_), std::cos(a.v_)); }
  friend Dual cos(const Dual& a) { return unary(a, std::cos(a.v_), -std::sin(a.v_)); }
  friend Dual tan(const Dual& a) {
    const double c = std::cos(a.v_);
    return unary(a, std::tan(a.v_), 1.0 / (c * c));
  }
  friend Dual exp(const Dual& a) {
    const double e = std::exp(a.v_);
    return unary(a, e, e);
  }
  friend Dual log(const Dual& a) { return unary(a, std::log(a.v_), 1.0 / a.v_); }
  friend Dual sqrt(const Dual& a) {
    const double s = std::sqrt(a.v_);
    return unary(a, s, 0.5 / s);
  }
  friend Dual abs(const Dual& a) {
    return unary(a, std::abs(a.v_), a.v_ >= 0.0 ? 1.0 : -1.0);
  }
  friend Dual pow(const Dual& a, const Dual& b) {
    // General a^b = exp(b log a); specialize constant exponent (common case).
    const double f = std::pow(a.v_, b.v_);
    Dual r(f, std::max(a.size(), b.size()));
    const double dfa = b.v_ * std::pow(a.v_, b.v_ - 1.0);
    const double dfb = (a.v_ > 0.0) ? f * std::log(a.v_) : 0.0;
    for (std::size_t i = 0; i < r.size(); ++i)
      r.g_[i] = dfa * a.grad(i) + dfb * b.grad(i);
    return r;
  }

 private:
  void widen(std::size_t n) {
    if (g_.size() < n) g_.resize(n, 0.0);
  }

  double v_ = 0.0;
  std::vector<double> g_;
};

}  // namespace usys::sym
