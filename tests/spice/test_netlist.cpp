// Netlist front-end: tokenization, devices, natures, analyses, diagnostics,
// and the transducer extension cards registered by usys::core.
#include <gtest/gtest.h>

#include "api/api.hpp"
#include "core/netlist_ext.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_passive.hpp"
#include "spice/netlist.hpp"

namespace usys::spice {
namespace {

TEST(Netlist, DividerEndToEnd) {
  NetlistParser parser;
  const auto net = parser.parse(R"(* divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 1k
.op
.end
)");
  ASSERT_EQ(net.analyses.size(), 1u);
  EXPECT_EQ(net.analyses[0].kind, AnalysisCard::Kind::op);
  const OpResult op = api::operating_point(*net.circuit);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(net.circuit->node("mid")), 5.0, 1e-7);  // gmin loading
}

TEST(Netlist, TitleLine) {
  NetlistParser parser;
  const auto net = parser.parse("* my title\nR1 a 0 1k\n");
  EXPECT_EQ(net.title, " my title");
}

TEST(Netlist, EngineeringSuffixes) {
  NetlistParser parser;
  const auto net = parser.parse(R"(
V1 a 0 1
R1 a b 4.7k
R2 b 0 2meg
C1 b 0 10u
L1 b 0 1m
)");
  auto* r1 = dynamic_cast<Resistor*>(net.circuit->find_device("R1"));
  ASSERT_NE(r1, nullptr);
  EXPECT_DOUBLE_EQ(r1->resistance(), 4.7e3);
  auto* c1 = dynamic_cast<Capacitor*>(net.circuit->find_device("C1"));
  ASSERT_NE(c1, nullptr);
  EXPECT_DOUBLE_EQ(c1->capacitance(), 1e-5);
}

TEST(Netlist, PulseWaveformAndTranCard) {
  NetlistParser parser;
  const auto net = parser.parse(R"(
V1 in 0 PULSE(0 5 1m 0.1m 0.1m 2m)
R1 in 0 1k
.tran 0.01m 6m
)");
  ASSERT_EQ(net.analyses.size(), 1u);
  EXPECT_EQ(net.analyses[0].kind, AnalysisCard::Kind::tran);
  EXPECT_NEAR(net.analyses[0].tran.tstop, 6e-3, 1e-12);
  const TranResult res = api::transient(*net.circuit, net.analyses[0].tran);
  ASSERT_TRUE(res.ok);
  EXPECT_NEAR(res.sample(2e-3, net.circuit->node("in")), 5.0, 1e-6);
}

TEST(Netlist, AcCardAndSource) {
  NetlistParser parser;
  const auto net = parser.parse(R"(
V1 in 0 0 AC 1
R1 in out 1k
C1 out 0 1u
.ac dec 10 1 100k
)");
  ASSERT_EQ(net.analyses.size(), 1u);
  const AcResult res = api::ac_sweep(*net.circuit, net.analyses[0].ac);
  ASSERT_TRUE(res.ok);
  EXPECT_GT(res.freq.size(), 10u);
}

TEST(Netlist, MechanicalCardsAndNatureDeclaration) {
  NetlistParser parser;
  const auto net = parser.parse(R"(
.node vel mechanical1
Xm vel MASS m=1e-4
Xk vel 0 SPRING k=200
Xd vel 0 DAMPER alpha=40m
Xf vel FORCE f=1m
.op
)");
  const OpResult op = api::operating_point(*net.circuit);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(net.circuit->node("vel")), 0.0, 1e-9);
}

TEST(Netlist, TransducerCardBuildsFig3System) {
  auto parser = core::make_full_parser();
  const auto net = parser.parse(R"(* Fig. 3 system
V1 drive 0 PWL(0 0 5m 10 0.1 10)
XT drive 0 vel 0 ETRANSV a=1e-4 d=0.15m er=1
Xm vel MASS m=1e-4
Xk vel 0 SPRING k=200
Xd vel 0 DAMPER alpha=40m
Xi disp vel INTEG
.tran 0.1m 60m
)");
  const TranResult res = api::transient(*net.circuit, net.analyses[0].tran);
  ASSERT_TRUE(res.ok) << res.error;
  // Static deflection at 10 V ~ -9.84 nm (attraction closes the gap).
  const double x_final = res.sample(60e-3, net.circuit->node("disp"));
  EXPECT_NEAR(x_final, -9.84e-9, 0.5e-9);
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  NetlistParser parser;
  try {
    parser.parse("R1 a 0 1k\nbogus card here\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(Netlist, UnknownDirectiveThrows) {
  NetlistParser parser;
  EXPECT_THROW(parser.parse(".nonsense 1 2\n"), NetlistError);
}

TEST(Netlist, MissingXTypeThrows) {
  NetlistParser parser;
  EXPECT_THROW(parser.parse("X1 a b NOTATYPE k=1\n"), NetlistError);
}

TEST(Netlist, MissingParameterThrows) {
  NetlistParser parser;
  EXPECT_THROW(parser.parse(".node v mechanical1\nX1 v 0 SPRING\n"), NetlistError);
}

TEST(Netlist, OptionsCardSetsMethodAndSteps) {
  NetlistParser parser;
  const auto net = parser.parse(R"(
V1 in 0 1
R1 in 0 1k
.options method=gear dtmax=1u reltol=1e-5
.tran 0.1u 10u
)");
  ASSERT_EQ(net.analyses.size(), 1u);
  EXPECT_EQ(net.analyses[0].tran.method, IntegMethod::gear2);
  EXPECT_NEAR(net.analyses[0].tran.dt_max, 1e-6, 1e-15);
  EXPECT_NEAR(net.analyses[0].tran.newton.reltol, 1e-5, 1e-12);
  const TranResult res = api::transient(*net.circuit, net.analyses[0].tran);
  EXPECT_TRUE(res.ok);
}

TEST(Netlist, OptionsCardRejectsUnknownKeysAndMethods) {
  NetlistParser parser;
  EXPECT_THROW(parser.parse(".options bogus=1\n"), NetlistError);
  EXPECT_THROW(parser.parse(".options method=rk4\n"), NetlistError);
  EXPECT_THROW(parser.parse(".options method\n"), NetlistError);
}

TEST(Netlist, DiodeCard) {
  NetlistParser parser;
  const auto net = parser.parse(R"(
V1 in 0 5
R1 in d 1k
D1 d 0
.op
)");
  const OpResult op = api::operating_point(*net.circuit);
  ASSERT_TRUE(op.converged);
  EXPECT_GT(op.at(net.circuit->node("d")), 0.5);
  EXPECT_LT(op.at(net.circuit->node("d")), 0.8);
}

TEST(Netlist, SemicolonComments) {
  NetlistParser parser;
  const auto net = parser.parse("V1 a 0 1 ; the source\nR1 a 0 1k\n");
  EXPECT_NE(net.circuit->find_device("R1"), nullptr);
}

TEST(Netlist, ArrayCardExpandsWithIndexPlaceholders) {
  NetlistParser parser;
  const auto net = parser.parse(R"(* resistor string via .array
V1 n0 0 10
.array 4 R{i} n{i} n{i+1} 1k
R4 n4 0 1k
.op
)");
  for (int i = 0; i < 4; ++i) {
    std::string name("R");
    name += std::to_string(i);
    EXPECT_NE(net.circuit->find_device(name), nullptr) << i;
  }
  EXPECT_EQ(net.circuit->find_device("R5"), nullptr);
  // 5 equal resistors in series: n4 sits at 1/5 of the drive.
  const OpResult op = api::operating_point(*net.circuit);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.at(net.circuit->node("n4")), 2.0, 1e-6);
}

TEST(Netlist, ArrayCardOffsetsAndErrors) {
  NetlistParser parser;
  // {i-N} offsets work too.
  const auto net = parser.parse(".array 3 C{i+10} a{i-0} 0 1n\n");
  EXPECT_NE(net.circuit->find_device("C10"), nullptr);
  EXPECT_NE(net.circuit->find_device("C12"), nullptr);

  EXPECT_THROW(parser.parse(".array\n"), NetlistError);
  EXPECT_THROW(parser.parse(".array 2\n"), NetlistError);
  EXPECT_THROW(parser.parse(".array 0 R{i} a 0 1k\n"), NetlistError);
  EXPECT_THROW(parser.parse(".array 2.5 R{i} a 0 1k\n"), NetlistError);
  EXPECT_THROW(parser.parse(".array 2 .op\n"), NetlistError);
  EXPECT_THROW(parser.parse(".array 2 R{j} a 0 1k\n"), NetlistError);
  EXPECT_THROW(parser.parse(".array 2 R{i a 0 1k\n"), NetlistError);
  // Without {i} in the name the second instance is a duplicate device; the
  // construction conflict is reported as a NetlistError naming the line.
  EXPECT_THROW(parser.parse(".array 2 R1 a 0 1k\n"), NetlistError);
}

TEST(Netlist, TransArrayMacroBuildsSuspendedElements) {
  auto parser = core::make_full_parser();
  const auto net = parser.parse(R"(* 8-element MEMS array, one line
V1 drive 0 2
Xarr drive 0 TRANSARRAY n=8 a=1e-8 d=2e-6 m=1e-9 k=25 alpha=1e-4 dspread=0.1
.op
)");
  // Per element: transducer + mass + spring + damper, systematic names.
  EXPECT_NE(net.circuit->find_device("Xarr_0_xd"), nullptr);
  EXPECT_NE(net.circuit->find_device("Xarr_7_b"), nullptr);
  EXPECT_EQ(net.circuit->find_device("Xarr_8_xd"), nullptr);
  const int mech = net.circuit->node("Xarr_v3");
  EXPECT_EQ(net.circuit->node_nature(mech), Nature::mechanical_translation);

  const OpResult op = api::operating_point(*net.circuit);
  ASSERT_TRUE(op.converged);
  // Electrostatic pull holds every suspension in static equilibrium:
  // velocity unknowns sit at 0 in DC.
  EXPECT_NEAR(op.at(mech), 0.0, 1e-9);
}

TEST(Netlist, TransArrayRejectsBadParameters) {
  auto parser = core::make_full_parser();
  EXPECT_THROW(parser.parse("X1 a 0 TRANSARRAY n=0 a=1e-8 d=2e-6 m=1e-9 k=25\n"),
               NetlistError);
  EXPECT_THROW(parser.parse("X1 a 0 TRANSARRAY n=2.5 a=1e-8 d=2e-6 m=1e-9 k=25\n"),
               NetlistError);
  EXPECT_THROW(parser.parse("X1 a b c TRANSARRAY n=2 a=1e-8 d=2e-6 m=1e-9 k=25\n"),
               NetlistError);
  EXPECT_THROW(parser.parse("X1 a 0 TRANSARRAY n=2 d=2e-6 m=1e-9 k=25\n"),
               NetlistError);
  // |dspread| >= 1 would drive some element's gap to zero or negative.
  EXPECT_THROW(
      parser.parse("X1 a 0 TRANSARRAY n=4 a=1e-8 d=2e-6 m=1e-9 k=25 dspread=1.5\n"),
      NetlistError);
}

}  // namespace
}  // namespace usys::spice
