// 2D triangular meshes for the finite-element substrate.
//
// The paper characterizes transducers with ANSYS field solutions; this
// module provides the geometry layer of our in-repo replacement: structured
// triangulations of rectangular domains with node/edge boundary tags and
// per-element material (permittivity) regions — all the Fig. 6 parallel-
// plate extraction needs (the paper's own validation neglects fringe
// fields, so a rectangle gap domain reproduces it exactly; optional side
// margins add the fringe region for the extension study).
#pragma once

#include <cstdint>
#include <vector>

namespace usys::fem {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Linear (P1) triangle: three node indices, a material region id.
struct Triangle {
  int n[3];
  int region = 0;
};

/// Boundary tags used by the plate mesher.
enum class BoundaryTag : std::uint8_t {
  none = 0,
  bottom,  ///< y = 0 (driven electrode)
  top,     ///< y = height (grounded electrode)
  left,
  right,
};

class Mesh {
 public:
  const std::vector<Point>& points() const noexcept { return pts_; }
  const std::vector<Triangle>& triangles() const noexcept { return tris_; }
  const std::vector<BoundaryTag>& tags() const noexcept { return tags_; }

  int node_count() const noexcept { return static_cast<int>(pts_.size()); }
  int element_count() const noexcept { return static_cast<int>(tris_.size()); }

  /// Signed twice-area of element e (positive for CCW orientation).
  double twice_area(int e) const;

  /// All node ids carrying `tag`.
  std::vector<int> nodes_with_tag(BoundaryTag tag) const;

  // Construction (used by the meshers below and by tests).
  int add_point(double x, double y, BoundaryTag tag = BoundaryTag::none);
  void add_triangle(int a, int b, int c, int region = 0);

 private:
  std::vector<Point> pts_;
  std::vector<Triangle> tris_;
  std::vector<BoundaryTag> tags_;
};

/// Parameters of the parallel-plate capacitor mesh: a rectangle of width
/// `width` and height `gap`, driven electrode at the bottom, ground at the
/// top, `nx` x `ny` cells each split into two triangles. With
/// `side_margin > 0`, air margins of that width are added left and right of
/// the electrode (electrode still spans only `width`), exposing fringe
/// fields; margin cells are tagged region 1.
struct PlateMeshSpec {
  double width = 1e-2;
  double gap = 0.15e-3;
  int nx = 16;
  int ny = 16;
  double side_margin = 0.0;
  int margin_cells = 0;  ///< lateral cells per margin (0 = derive from nx)
};

Mesh make_plate_mesh(const PlateMeshSpec& spec);

}  // namespace usys::fem
