// SweepRunner — batch parameter-grid execution over a thread pool.
//
// Fans a cartesian parameter grid (e.g. transducer gap x drive amplitude x
// array size) across workers; every grid point gets its own circuit and
// AnalysisEngine built by a caller-supplied job (worker-local state, no
// sharing), so points are fully isolated and the result vector is
// deterministic: results[i] always corresponds to grid[i], whatever the
// execution interleaving. Backs `usim --sweep` and bench_array_scaling.
//
// Fault tolerance (SweepOptions): a failed point records a structured
// FailureInfo and never takes the batch down; failed points can be retried
// with an attempt counter the job uses to escalate its rescue options;
// progress can be journaled to a checkpoint file (spice/checkpoint.hpp) and
// resumed — completed points are restored bit-identically and only
// unfinished points re-run; a deterministic shard filter (k of n) splits one
// grid across processes whose checkpoint files merge by concatenation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace usys::spice {

/// One sweep dimension: a named list of values.
struct SweepAxis {
  std::string name;
  std::vector<double> values;

  /// n evenly spaced values over [lo, hi] (n == 1 yields just lo).
  static SweepAxis linspace(std::string name, double lo, double hi, int n);
};

/// One grid point: (name, value) per axis, in axis order.
struct SweepPoint {
  std::vector<std::pair<std::string, double>> params;

  /// Value of a named parameter; throws std::out_of_range if absent.
  double value(const std::string& name) const;
};

/// Cartesian product of the axes, last axis fastest (row-major).
std::vector<SweepPoint> sweep_grid(const std::vector<SweepAxis>& axes);

/// One statistical parameter: a constant, a tolerance distribution, or a
/// corner list. Declared by `.param <name> dist=...` netlist cards or
/// `--sweep name=dist(...)` CLI specs (docs/sweeps.md).
struct ParamDist {
  enum class Kind {
    constant,  ///< fixed value `a` at every point
    normal,    ///< N(a, b^2) drawn per point
    uniform,   ///< U[a, b) drawn per point
    corner,    ///< enumerate `values` as a grid axis (cartesian with others)
  };
  std::string name;
  Kind kind = Kind::constant;
  double a = 0.0;  ///< constant value / mu / lo
  double b = 0.0;  ///< sigma / hi
  std::vector<double> values;  ///< corner values

  /// True for kinds that consume an RNG draw (normal, uniform).
  bool is_random() const noexcept {
    return kind == Kind::normal || kind == Kind::uniform;
  }
};

/// Parses a distribution spec: "normal(mu,sigma)", "uniform(lo,hi)",
/// "corner(v1,v2,...)" or a plain SPICE number (constant). Numbers accept
/// engineering suffixes (1k, 0.1u). Returns nullopt on malformed input
/// (optionally describing why in *error).
std::optional<ParamDist> parse_dist_spec(const std::string& name,
                                         const std::string& spec,
                                         std::string* error = nullptr);

/// One parsed `--sweep name=spec` entry: either a grid axis
/// ("name=lo:hi:n" or "name=v1,v2,...") or a distribution
/// ("name=normal(mu,sigma)" etc — anything parse_dist_spec accepts with a
/// '(' in it). Shared by usim and the server so both front ends accept the
/// same spec grammar.
struct SweepEntry {
  bool is_dist = false;
  SweepAxis axis;   ///< valid when !is_dist
  ParamDist dist;   ///< valid when is_dist
};

/// Parses "name=spec". Returns nullopt on malformed input (optionally
/// describing why in *error).
std::optional<SweepEntry> parse_sweep_entry(const std::string& arg,
                                            std::string* error = nullptr);

/// Monte Carlo / corner controls for mc_grid.
struct McOptions {
  std::uint64_t seed = 0;  ///< whole-run RNG seed (--seed)
  int samples = 1;         ///< Monte Carlo draws per grid combination (--mc)
};

/// Builds the full statistical grid: cartesian product of the explicit
/// axes and every corner() distribution (axes slowest, corners in
/// declaration order, the MC draw index fastest), replicated
/// max(1, mc.samples) times. Constant params take their fixed value at
/// every point; normal/uniform params are drawn per point from the
/// counter-based RNG keyed on (mc.seed, global point index, name hash) —
/// see common/rng.hpp — so the grid is identical no matter how it is later
/// threaded, sharded, or resumed, and any single point can be rebuilt in
/// isolation. With no axes and no dists the grid has mc.samples points
/// (all-empty params) so a plain netlist can still be MC-replicated.
std::vector<SweepPoint> mc_grid(const std::vector<SweepAxis>& axes,
                                const std::vector<ParamDist>& dists,
                                const McOptions& mc);

/// What one grid point produced: a flat list of named scalar metrics, or an
/// error. Metric names should be identical across points so results
/// tabulate into columns.
struct SweepOutcome {
  bool ok = false;
  /// Human-readable failure text. For exceptions escaping the job this is
  /// exactly e.what() (stable for existing callers); analysis-level
  /// failures typically carry failure.to_string().
  std::string error;
  std::vector<std::pair<std::string, double>> metrics;
  /// Structured failure when ok is false. Jobs that run analyses should copy
  /// the analysis FailureInfo in; exceptions captured at the isolation
  /// boundary become alloc_failure (std::bad_alloc) or internal_error.
  FailureInfo failure;
  /// How many times the job ran for this point (1 + retries used);
  /// 0 for restored or skipped points.
  int attempts = 0;
  /// Outcome came from a resume checkpoint — the job did not run.
  bool restored = false;
  /// Point belongs to another shard — the job did not run here.
  bool skipped = false;
};

/// Fault-tolerance controls for SweepRunner::run.
struct SweepOptions {
  /// Re-run a failed point up to this many extra times. The job receives the
  /// attempt number (0 = first run) and can escalate: more Newton
  /// iterations, the full rescue ladder, a smaller initial step.
  int retries = 0;
  /// Journal every finished point to this JSONL checkpoint file (appended,
  /// flushed per point — see spice/checkpoint.hpp). Empty = no journal.
  std::string checkpoint_path;
  /// Restore previously completed points from this checkpoint before
  /// running: points recorded ok (with matching parameters) are restored
  /// bit-identically and skipped; failed or missing points run normally.
  /// Empty = fresh start.
  std::string resume_path;
  /// Deterministic shard filter: run only grid indices i with
  /// i % shard_count == shard_index - 1 (shard_index is 1-based). Both 0 =
  /// no sharding. Off-shard points are marked skipped, not failed.
  int shard_index = 0;
  int shard_count = 0;
};

/// True when `index` belongs to shard `shard_index` of `shard_count`
/// (1-based shard_index; shard_count <= 1 owns everything).
bool shard_owns(std::size_t index, int shard_index, int shard_count) noexcept;

/// Shard-unique output path: inserts ".shard<k>of<n>" before the extension
/// ("out.csv" -> "out.shard1of2.csv"; no extension appends the suffix).
/// Identity when shard_count <= 1. Per-shard result files (sweep CSV,
/// stats JSONL) derive their names through this so concurrent shards
/// pointed at the same path never clobber each other.
std::string shard_suffixed_path(const std::string& path, int shard_index,
                                int shard_count);

class SweepRunner {
 public:
  /// The per-point job: build the circuit (worker-local), run its analyses
  /// through an AnalysisEngine, and distill scalar metrics. Exceptions are
  /// captured into the point's outcome — they fail the point, not the batch.
  using Job = std::function<SweepOutcome(const SweepPoint&)>;
  /// Attempt-aware job for retry escalation: attempt is 0 on the first run,
  /// 1..retries on re-runs of a failed point.
  using RetryJob = std::function<SweepOutcome(const SweepPoint&, int attempt)>;

  /// threads: 0 = auto (hardware concurrency), otherwise exactly that many
  /// workers (including the calling thread).
  explicit SweepRunner(int threads = 0);

  int thread_count() const noexcept { return threads_; }

  /// Runs `job` for every point of `grid` across the pool. results[i] is
  /// grid[i]'s outcome.
  std::vector<SweepOutcome> run(const std::vector<SweepPoint>& grid, const Job& job) const;

  /// Fault-tolerant run: retry escalation, checkpoint journal, resume, and
  /// shard filtering per `opts`. Throws std::runtime_error when the
  /// checkpoint file cannot be opened or the resume file cannot be read.
  std::vector<SweepOutcome> run(const std::vector<SweepPoint>& grid, const RetryJob& job,
                                const SweepOptions& opts) const;

 private:
  int threads_;
};

}  // namespace usys::spice
