// Mechanized version of the paper's model-derivation recipe:
//
//   1. List the effort, flow and state variables for each port.
//   2. Express the total energy in the transducer as a sum of partial
//      energies (functions of the state variables).
//   3. Derive the energy with respect to the state variable of each port to
//      obtain the respective effort variable.
//   4. Replace time derivatives of state variables by the corresponding
//      flow variables.
//
// Given a symbolic internal-energy expression W(state_1, ..., state_n), this
// module produces the port effort expressions symbolically, evaluates them,
// and generates HDL-AT model source — i.e. it turns Table 2 of the paper
// into Table 3 and into Listing 1 automatically.
//
// Port formulations:
//  * `state` ports (capacitive): W given in terms of the port state q;
//    effort = dW/dq (e.g. electrostatic: v = dW/dq).
//  * `momentum` ports (inductive): W given in terms of the generalized
//    momentum p (flux linkage); flow = dW/dp and effort = dp/dt
//    (e.g. magnetic: i = dW/dlambda, v = dlambda/dt). This is the dual
//    bookkeeping the paper uses implicitly for transducers (c) and (d).
//  * the mechanical displacement port: the *absorbed* mechanical flow is
//    dW/dx; the force delivered to the plate (what Table 3 prints) is its
//    negation.
#pragma once

#include <string>
#include <vector>

#include "common/nature.hpp"
#include "sym/expr.hpp"

namespace usys::core {

/// How a port's constitutive bookkeeping is formulated.
enum class PortFormulation { state, momentum };

/// One terminal port of a conservative transducer model.
struct PortSpec {
  std::string name;          ///< e.g. "elec", "mech"
  Nature nature;             ///< physical domain
  PortFormulation form;      ///< state (capacitive) or momentum (inductive)
  std::string state_var;     ///< symbol W is expressed in (e.g. "q", "lambda", "x")
};

/// A derived port relation (step 3/4 output).
struct DerivedEffort {
  std::string port;          ///< port name
  sym::Expr expr;            ///< dW/d(state or momentum), simplified
  /// For `state` ports this is the port *effort* (e.g. voltage);
  /// for `momentum` ports it is the port *flow* (e.g. current).
  bool is_effort;
};

/// A conservative transducer defined by its internal energy.
class EnergyModel {
 public:
  /// `energy` must be expressed in the union of the ports' state variables
  /// plus free parameters (A, d, eps0, ...).
  EnergyModel(std::string name, std::vector<PortSpec> ports, sym::Expr energy);

  const std::string& model_name() const noexcept { return name_; }
  const std::vector<PortSpec>& ports() const noexcept { return ports_; }
  const sym::Expr& energy() const noexcept { return energy_; }

  /// Step 3: dW/d(state var) per port, simplified.
  std::vector<DerivedEffort> derive() const;

  /// Derived expression for one port by name; throws if absent.
  sym::Expr derived_for(const std::string& port) const;

  /// Numeric evaluation of a derived port expression.
  double eval_port(const std::string& port, const sym::Env& env) const;

  /// Verifies conservativity: mixed second derivatives of W must commute
  /// (Maxwell reciprocity). Returns the max |W_ij - W_ji| residual evaluated
  /// at `probe` (0 for symbolically exact models).
  double reciprocity_residual(const sym::Env& probe) const;

  /// Generates a complete HDL-AT entity+architecture implementing this
  /// model (step 4: time-derivatives of states replaced by port flows; the
  /// electrical contribution is emitted in the paper's Listing-1 style).
  /// `generics` lists the free parameters to expose as GENERIC.
  std::string generate_hdl(const std::vector<std::string>& generics) const;

 private:
  std::string name_;
  std::vector<PortSpec> ports_;
  sym::Expr energy_;
};

/// Factory: the paper's four transducers as EnergyModels (Table 2 energies
/// expressed in proper state/momentum variables). Parameters are symbolic
/// ("A", "d", "er", "e0", "h", "l", "mu0", "N", "r", "B").
EnergyModel make_transverse_energy_model();
EnergyModel make_parallel_energy_model();
EnergyModel make_electromagnetic_energy_model();
EnergyModel make_electrodynamic_energy_model();

}  // namespace usys::core
