#include "pxt/extractor.hpp"

#include <cmath>

#include "common/constants.hpp"

namespace usys::pxt {
namespace {

/// Builds the mesh + problem for a given gap and voltage.
struct Built {
  fem::Mesh mesh;
  fem::ElectrostaticProblem problem;
};

Built build(const ExtractionSetup& setup, double gap, double voltage) {
  Built b;
  fem::PlateMeshSpec spec;
  spec.width = setup.width;
  spec.gap = gap;
  spec.nx = setup.nx;
  spec.ny = setup.ny;
  spec.side_margin = setup.side_margin;
  b.mesh = fem::make_plate_mesh(spec);
  b.problem.mesh = &b.mesh;
  b.problem.eps0 = kEps0Paper;
  b.problem.eps_r = {setup.eps_r, 1.0};  // region 1 = air margins
  b.problem.v_bottom = voltage;
  b.problem.v_top = 0.0;
  return b;
}

}  // namespace

ExtractionSample extract_point(const ExtractionSetup& setup, double displacement,
                               double voltage, bool with_virtual_work) {
  ExtractionSample s;
  s.displacement = displacement;
  s.voltage = voltage;
  const double gap = setup.gap0 + displacement;

  Built b = build(setup, gap, voltage);
  const fem::ElectrostaticSolution sol = fem::solve_electrostatics(b.problem);
  s.cg_iterations = sol.cg_iterations;
  s.energy = fem::field_energy(b.problem, sol) * setup.depth;
  s.capacitance = fem::capacitance_per_depth(b.problem, sol) * setup.depth;
  // Force on the moving (top) plate; per-depth quantity scaled to 3D.
  s.force_mst =
      fem::maxwell_force_per_depth(b.problem, sol, fem::BoundaryTag::top) * setup.depth;
  if (with_virtual_work) {
    auto energy_of_gap = [&](double g) {
      Built bb = build(setup, g, voltage);
      const fem::ElectrostaticSolution ss = fem::solve_electrostatics(bb.problem);
      return fem::field_energy(bb.problem, ss);
    };
    s.force_vw =
        fem::virtual_work_force_per_depth(energy_of_gap, gap, 1e-4 * gap) * setup.depth;
  }
  return s;
}

ExtractionTable extract_sweep(const ExtractionSetup& setup,
                              const std::vector<double>& displacements,
                              const std::vector<double>& voltages,
                              bool with_virtual_work) {
  ExtractionTable table;
  table.setup = setup;
  table.displacements = displacements;
  table.voltages = voltages;
  table.samples.reserve(displacements.size() * voltages.size());
  for (double x : displacements) {
    for (double v : voltages) {
      table.samples.push_back(extract_point(setup, x, v, with_virtual_work));
    }
  }
  return table;
}

double analytic_capacitance(const ExtractionSetup& setup, double displacement) {
  const double gap = setup.gap0 + displacement;
  return kEps0Paper * setup.eps_r * setup.width * setup.depth / gap;
}

double analytic_force(const ExtractionSetup& setup, double displacement, double voltage) {
  const double gap = setup.gap0 + displacement;
  return -kEps0Paper * setup.eps_r * setup.width * setup.depth * voltage * voltage /
         (2.0 * gap * gap);
}

}  // namespace usys::pxt
