// Newton-Raphson kernel shared by the DC and transient analyses.
//
// Solves F(x) = f(x) + a0*q(x) + hist = 0 with J = Jf + a0*Jq, where the
// caller chooses a0/hist (a0 = 0, hist = 0 recovers DC). Robustness aids:
// diagonal gmin on node rows, per-unknown weighted convergence (reltol +
// nature-dependent abstol), step limiting, and — for hard DC points —
// gmin stepping and source stepping continuation.
#pragma once

#include <functional>

#include "spice/circuit.hpp"

namespace usys::spice {

struct NewtonOptions {
  int max_iters = 100;
  double reltol = 1e-6;
  double gmin = 1e-12;        ///< always-on diagonal conductance on node rows
  double damping_limit = 0.0; ///< max |dx| per iteration per unknown; 0 = off
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  double final_error = 0.0;  ///< max weighted update of the last iteration
};

/// One Newton solve at fixed (a0, hist, ctx template). `ctx_proto` supplies
/// mode/time/integ coefficients; x is the initial guess and the result.
class NewtonSolver {
 public:
  NewtonSolver(Circuit& circuit, NewtonOptions opts);

  /// hist may be empty (treated as zero).
  NewtonResult solve(EvalCtx ctx_proto, double a0, const DVector& hist, DVector& x);

  /// Evaluates f, q, Jf, Jq at x (single stamp pass; used by analyses to
  /// harvest charges and by the AC path to linearize).
  void stamp(EvalCtx ctx_proto, const DVector& x, DVector& f, DVector& q, DMatrix& jf,
             DMatrix& jq);

 private:
  Circuit& circuit_;
  NewtonOptions opts_;
  // Scratch, reused across iterations to avoid reallocations.
  DVector f_, q_, resid_;
  DMatrix jf_, jq_, jacobian_;
};

/// Full DC operating point with gmin/source stepping fallbacks.
struct DcOptions {
  NewtonOptions newton;
  bool allow_gmin_stepping = true;
  bool allow_source_stepping = true;
};

struct DcResult {
  bool converged = false;
  DVector x;
  int total_newton_iters = 0;
  bool used_gmin_stepping = false;
  bool used_source_stepping = false;
};

DcResult solve_dc(Circuit& circuit, const DcOptions& opts = {});

}  // namespace usys::spice
