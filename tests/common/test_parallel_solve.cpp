// Level-scheduled parallel triangular solves (SparseLu::set_parallel):
// bit-identity with the serial path for any thread count — the solve-side
// twin of the ParallelAssembly determinism tests — plus the level-schedule
// invariants the parallel path relies on. The suite name keeps these under
// the TSan CI filter (ThreadPool.*:ParallelAssembly.*:ParallelSolve.*:...).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "common/sparse_lu.hpp"
#include "common/thread_pool.hpp"

namespace usys {
namespace {

struct Pattern {
  int n = 0;
  std::vector<int> row_ptr, col_idx;
};

/// Band of half-width 2 plus ~9 % random off-band entries (the same family
/// test_sparse_lu.cpp checks against the dense oracle).
Pattern random_pattern(int n, std::mt19937& rng) {
  Pattern p;
  p.n = n;
  p.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (std::abs(r - c) <= 2 || rng() % 11 == 0) p.col_idx.push_back(c);
    }
    p.row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(p.col_idx.size());
  }
  return p;
}

std::vector<double> make_dominant(const Pattern& p, std::mt19937& rng) {
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  std::vector<double> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = ud(rng);
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] = off + 1.0;
  }
  return vals;
}

TEST(ParallelSolve, BitIdenticalToSerialAnyThreadCount) {
  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  for (int n : {15, 120, 400}) {
    const Pattern p = random_pattern(n, rng);
    const auto vals = make_dominant(p, rng);

    SparseLu<double> serial;
    serial.analyze(p.n, p.row_ptr, p.col_idx);
    serial.factor(vals);

    std::vector<double> b0(static_cast<std::size_t>(n));
    for (auto& v : b0) v = ud(rng);
    std::vector<double> ref = b0;
    serial.solve(ref);

    for (int threads : {2, 4, 8}) {
      ThreadPool pool(threads);
      SparseLu<double> par;
      par.analyze(p.n, p.row_ptr, p.col_idx);
      // min_level_rows = 1 forces the pool dispatch on EVERY level, so even
      // tiny levels go through the parallel path this test is pinning.
      par.set_parallel(&pool, threads, /*min_level_rows=*/1);
      par.factor(vals);
      ASSERT_EQ(serial.factor_nonzeros(), par.factor_nonzeros());
      std::vector<double> b = b0;
      par.solve(b);
      EXPECT_EQ(ref, b) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelSolve, BitIdenticalThroughRefactorization) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(200, rng);
  auto vals = make_dominant(p, rng);

  ThreadPool pool(4);
  SparseLu<double> serial, par;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 4, 1);

  // Newton-like loop: smooth value drift keeps the pivot order, so later
  // factor() calls are pure refactorizations — the transposed-factor maps
  // and level schedule must stay valid across them.
  for (int iter = 0; iter < 10; ++iter) {
    serial.factor(vals);
    par.factor(vals);
    std::vector<double> b(static_cast<std::size_t>(p.n));
    for (auto& v : b) v = ud(rng);
    std::vector<double> b2 = b;
    serial.solve(b);
    par.solve(b2);
    EXPECT_EQ(b, b2) << "iteration " << iter;
    for (auto& v : vals) v *= 1.0 + 0.005 * ud(rng);
  }
  EXPECT_EQ(serial.symbolic_factorizations(), 1);
  EXPECT_EQ(par.symbolic_factorizations(), 1);
}

TEST(ParallelSolve, ComplexBitIdenticalToSerial) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(150, rng);
  std::vector<std::complex<double>> vals(p.col_idx.size());
  for (int r = 0; r < p.n; ++r) {
    double off = 0.0;
    int diag = -1;
    for (int s = p.row_ptr[r]; s < p.row_ptr[r + 1]; ++s) {
      vals[static_cast<std::size_t>(s)] = {ud(rng), ud(rng)};
      if (p.col_idx[static_cast<std::size_t>(s)] == r) {
        diag = s;
      } else {
        off += std::abs(vals[static_cast<std::size_t>(s)]);
      }
    }
    vals[static_cast<std::size_t>(diag)] += off + 1.0;
  }
  std::vector<std::complex<double>> b0(static_cast<std::size_t>(p.n));
  for (auto& v : b0) v = {ud(rng), ud(rng)};

  ZSparseLu serial;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  serial.factor(vals);
  auto ref = b0;
  serial.solve(ref);

  ThreadPool pool(3);
  ZSparseLu par;
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 3, 1);
  par.factor(vals);
  auto b = b0;
  par.solve(b);
  EXPECT_EQ(ref, b);
}

TEST(ParallelSolve, DefaultThresholdKeepsSmallLevelsSerialAndIdentical) {
  // With the production threshold most levels of a small system run inline;
  // the mixed serial/parallel execution must still be bit-identical.
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> ud(-1.0, 1.0);
  const Pattern p = random_pattern(60, rng);
  const auto vals = make_dominant(p, rng);

  SparseLu<double> serial;
  serial.analyze(p.n, p.row_ptr, p.col_idx);
  serial.factor(vals);
  std::vector<double> ref(static_cast<std::size_t>(p.n));
  for (auto& v : ref) v = ud(rng);
  std::vector<double> b = ref;
  serial.solve(ref);

  ThreadPool pool(4);
  SparseLu<double> par;
  par.analyze(p.n, p.row_ptr, p.col_idx);
  par.set_parallel(&pool, 4);  // default min_level_rows
  par.factor(vals);
  par.solve(b);
  EXPECT_EQ(ref, b);
}

TEST(ParallelSolve, LevelSchedulePartitionsAllRows) {
  std::mt19937 rng(11);
  const Pattern p = random_pattern(180, rng);
  const auto vals = make_dominant(p, rng);
  SparseLu<double> lu;
  lu.analyze(p.n, p.row_ptr, p.col_idx);
  EXPECT_EQ(lu.forward_levels(), 0);  // schedule exists only after factor()
  lu.factor(vals);
  EXPECT_GT(lu.forward_levels(), 0);
  EXPECT_GT(lu.backward_levels(), 0);
  EXPECT_LE(lu.forward_levels(), p.n);
  EXPECT_LE(lu.backward_levels(), p.n);
}

}  // namespace
}  // namespace usys
