// Minimal JSON value model for the line-delimited wire protocols.
//
// The simulation server (src/server) speaks newline-delimited JSON over a
// Unix socket (docs/server.md); this is the small, dependency-free parser
// and writer behind it. It covers the full JSON grammar (objects, arrays,
// strings with escapes, numbers, booleans, null) with two deliberate,
// protocol-friendly simplifications:
//
//   * all numbers are double (the wire schema only carries doubles/ints
//     within the 2^53 exact range);
//   * object key order is preserved on write but lookup is linear — request
//     objects are a handful of keys, so a map would cost more than it saves.
//
// The sweep checkpoint journal (spice/checkpoint.hpp) keeps its own
// schema-specific scanner: its format predates this parser and its torn-line
// salvage rules are part of the resume contract.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace usys {

/// One JSON value. Cheap to move; copies duplicate the whole subtree.
class JsonValue {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  JsonValue() = default;
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array();
  static JsonValue make_object();

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::null; }
  bool is_object() const noexcept { return kind_ == Kind::object; }
  bool is_array() const noexcept { return kind_ == Kind::array; }
  bool is_string() const noexcept { return kind_ == Kind::string; }
  bool is_number() const noexcept { return kind_ == Kind::number; }
  bool is_bool() const noexcept { return kind_ == Kind::boolean; }

  bool as_bool(bool fallback = false) const noexcept;
  double as_number(double fallback = 0.0) const noexcept;
  const std::string& as_string() const noexcept { return str_; }

  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const noexcept {
    return members_;
  }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const noexcept;

  /// Typed member accessors with fallbacks (absent / wrong type -> fallback).
  std::string get_string(const std::string& key, const std::string& fallback = "") const;
  double get_number(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Mutators (builder style; no-ops unless the value has the right kind).
  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Serializes to compact JSON (no whitespace). NaN/inf render as null —
  /// JSON has no non-finite literals, and the wire schema maps null back.
  std::string dump() const;

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document; nullopt on any syntax error (including trailing
/// garbage after the document). Depth-limited so a hostile request cannot
/// overflow the stack.
std::optional<JsonValue> json_parse(const std::string& text);

/// Appends `v` to `out` as a JSON string literal (quotes + escapes). Shared
/// with the hand-rolled fast paths that build frames without a JsonValue.
void json_append_escaped(std::string& out, const std::string& v);

/// Appends a double as a JSON number with round-trip (%.17g) precision;
/// NaN/inf append "null".
void json_append_double(std::string& out, double v);

}  // namespace usys
