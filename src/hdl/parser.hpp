// Recursive-descent parser for HDL-AT. Grammar (keywords case-insensitive):
//
//   unit        := { entity | architecture }
//   entity      := ENTITY id IS [generics] [pins] END ENTITY id ';'
//   generics    := GENERIC '(' glist { ';' glist } ')' ';'
//   glist       := id {',' id} ':' ANALOG [':=' number]
//   pins        := PIN '(' plist { ';' plist } ')' ';'
//   plist       := id {',' id} ':' nature-name
//   architecture:= ARCHITECTURE id OF id IS {vardecl} BEGIN relation
//                  END ARCHITECTURE id ';'
//   vardecl     := (VARIABLE | STATE) id {',' id} ':' ANALOG ';'
//   relation    := RELATION {procedural} END RELATION ';'
//   procedural  := PROCEDURAL FOR id {',' id} '=>' {stmt}
//   stmt        := id ':=' expr ';'
//               | portref '.' id '%=' expr ';'
//   portref     := '[' id ',' id ']'
//   expr        := term {('+'|'-') term}
//   term        := factor {('*'|'/') factor}
//   factor      := ['-'|'+'] primary ['^' factor]
//   primary     := number | id ['(' expr {',' expr} ')'] | portref '.' id
//               | '(' expr ')'
#pragma once

#include "hdl/ast.hpp"
#include "hdl/lexer.hpp"

namespace usys::hdl {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& what)
      : std::runtime_error("HDL parse error at line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Parses HDL-AT source text into a design unit. Throws LexError/ParseError.
DesignUnit parse(const std::string& source);

}  // namespace usys::hdl
