// Time-domain source waveforms (SPICE-compatible subset).
//
// The Fig. 5 experiment drives the transducer with "a voltage source with a
// finite rise and fall time" — a PULSE waveform. PWL covers arbitrary
// piecewise-linear drives, SIN covers the harmonic benches.
#pragma once

#include <memory>
#include <vector>

namespace usys::spice {

/// Abstract waveform: value(t) plus the corner times ("breakpoints") the
/// transient integrator must land on exactly for accuracy.
class Waveform {
 public:
  virtual ~Waveform() = default;
  virtual double value(double t) const = 0;
  virtual void breakpoints(std::vector<double>& out) const { (void)out; }
  virtual std::unique_ptr<Waveform> clone() const = 0;
};

/// Constant value (DC source).
class DcWave final : public Waveform {
 public:
  explicit DcWave(double v) : v_(v) {}
  double value(double) const override { return v_; }
  std::unique_ptr<Waveform> clone() const override { return std::make_unique<DcWave>(*this); }

 private:
  double v_;
};

/// SPICE PULSE(v1 v2 td tr tf pw per). A single pulse if per <= 0.
class PulseWave final : public Waveform {
 public:
  PulseWave(double v1, double v2, double delay, double rise, double fall, double width,
            double period = 0.0);
  double value(double t) const override;
  void breakpoints(std::vector<double>& out) const override;
  std::unique_ptr<Waveform> clone() const override { return std::make_unique<PulseWave>(*this); }

 private:
  double v1_, v2_, td_, tr_, tf_, pw_, per_;
};

/// SPICE SIN(vo va freq td theta): vo + va*sin(2*pi*f*(t-td))*exp(-(t-td)*theta).
class SinWave final : public Waveform {
 public:
  SinWave(double offset, double amplitude, double freq, double delay = 0.0,
          double damping = 0.0);
  double value(double t) const override;
  std::unique_ptr<Waveform> clone() const override { return std::make_unique<SinWave>(*this); }

 private:
  double vo_, va_, freq_, td_, theta_;
};

/// Piecewise-linear (t0,v0) (t1,v1) ...; clamps outside the range.
class PwlWave final : public Waveform {
 public:
  explicit PwlWave(std::vector<std::pair<double, double>> points);
  double value(double t) const override;
  void breakpoints(std::vector<double>& out) const override;
  std::unique_ptr<Waveform> clone() const override { return std::make_unique<PwlWave>(*this); }

 private:
  std::vector<std::pair<double, double>> pts_;
};

/// The paper's Fig. 5 drive: a train of pulses with finite rise/fall, one
/// per amplitude in `levels` (5 V, 10 V, 15 V in the paper), laid out
/// back-to-back in a window of length `total`.
std::unique_ptr<Waveform> make_fig5_pulse_train(const std::vector<double>& levels,
                                                double total, double rise, double fall);

}  // namespace usys::spice
