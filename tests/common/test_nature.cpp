// Table 1 of the paper: generalized variables per physical domain.
#include <gtest/gtest.h>

#include <sstream>

#include "common/nature.hpp"

namespace usys {
namespace {

TEST(Nature, Table1Rows) {
  const auto& elec = nature_info(Nature::electrical);
  EXPECT_EQ(elec.effort_name, "voltage");
  EXPECT_EQ(elec.flow_name, "current");
  EXPECT_EQ(elec.state_name, "charge");
  EXPECT_EQ(elec.momentum_name, "flux linkage");

  const auto& mech = nature_info(Nature::mechanical_translation);
  EXPECT_EQ(mech.effort_name, "velocity");  // FI analogy: velocity is across
  EXPECT_EQ(mech.flow_name, "force");
  EXPECT_EQ(mech.state_name, "displacement");

  const auto& rot = nature_info(Nature::mechanical_rotation);
  EXPECT_EQ(rot.flow_name, "torque");

  const auto& hyd = nature_info(Nature::hydraulic);
  EXPECT_EQ(hyd.effort_name, "pressure");
  EXPECT_EQ(hyd.flow_name, "volume flow rate");
}

TEST(Nature, ParseCanonicalNames) {
  Nature n{};
  EXPECT_TRUE(parse_nature("electrical", n));
  EXPECT_EQ(n, Nature::electrical);
  EXPECT_TRUE(parse_nature("mechanical1", n));
  EXPECT_EQ(n, Nature::mechanical_translation);
  EXPECT_TRUE(parse_nature("rotational", n));
  EXPECT_EQ(n, Nature::mechanical_rotation);
  EXPECT_TRUE(parse_nature("hydraulic", n));
  EXPECT_EQ(n, Nature::hydraulic);
  EXPECT_TRUE(parse_nature("thermal", n));
  EXPECT_EQ(n, Nature::thermal);
}

TEST(Nature, ParseAliases) {
  Nature n{};
  EXPECT_TRUE(parse_nature("mechanical", n));
  EXPECT_EQ(n, Nature::mechanical_translation);
  EXPECT_TRUE(parse_nature("fluidic", n));
  EXPECT_EQ(n, Nature::hydraulic);
}

TEST(Nature, ParseRejectsUnknown) {
  Nature n{};
  EXPECT_FALSE(parse_nature("quantum", n));
}

TEST(Nature, IterationCoversAll) {
  for (int i = 0; i < kNatureCount; ++i) {
    const Nature n = nature_at(i);
    EXPECT_FALSE(to_string(n).empty());
    Nature round_trip{};
    EXPECT_TRUE(parse_nature(to_string(n), round_trip));
    EXPECT_EQ(round_trip, n);
  }
}

TEST(Nature, StreamOutput) {
  std::ostringstream os;
  os << Nature::hydraulic;
  EXPECT_EQ(os.str(), "hydraulic");
}

}  // namespace
}  // namespace usys
