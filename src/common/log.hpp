// Minimal leveled logger. The simulator reports Newton/step diagnostics at
// `debug`, analysis summaries at `info`, and model warnings (e.g. electrode
// collision, pull-in) at `warn`. Quiet by default so bench output stays clean.
#pragma once

#include <string>

namespace usys {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Sets the global threshold (messages below it are dropped).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits to stderr with a level prefix if `level >= threshold`.
void log_message(LogLevel level, const std::string& msg);

void log_debug(const std::string& msg);
void log_info(const std::string& msg);
void log_warn(const std::string& msg);
void log_error(const std::string& msg);

}  // namespace usys
