#include <gtest/gtest.h>

#include "sym/expr.hpp"

namespace usys::sym {
namespace {

TEST(Simplify, ConstantFolding) {
  EXPECT_TRUE(simplify(Expr(2.0) + Expr(3.0)).is_constant(5.0));
  EXPECT_TRUE(simplify(Expr(2.0) * Expr(3.0) - Expr(1.0)).is_constant(5.0));
  EXPECT_TRUE(simplify(pow(Expr(2.0), Expr(10.0))).is_constant(1024.0));
}

TEST(Simplify, Identities) {
  const Expr x = var("x");
  EXPECT_TRUE(simplify(x + 0.0).equals(x));
  EXPECT_TRUE(simplify(Expr(0.0) + x).equals(x));
  EXPECT_TRUE(simplify(x * 1.0).equals(x));
  EXPECT_TRUE(simplify(x * 0.0).is_constant(0.0));
  EXPECT_TRUE(simplify(x / 1.0).equals(x));
  EXPECT_TRUE(simplify(x - 0.0).equals(x));
  EXPECT_TRUE(simplify(pow(x, Expr(1.0))).equals(x));
  EXPECT_TRUE(simplify(pow(x, Expr(0.0))).is_constant(1.0));
}

TEST(Simplify, SelfCancellation) {
  const Expr x = var("x");
  EXPECT_TRUE(simplify(x - x).is_constant(0.0));
  EXPECT_TRUE(simplify(x / x).is_constant(1.0));
}

TEST(Simplify, DoubleNegation) {
  const Expr x = var("x");
  EXPECT_TRUE(simplify(-(-x)).equals(x));
}

TEST(Simplify, MinusOneFactor) {
  const Expr x = var("x");
  EXPECT_TRUE(simplify(x * Expr(-1.0)).equals(simplify(-x)));
}

TEST(Simplify, DivisionByZeroKeptSymbolic) {
  const Expr e = Expr(1.0) / Expr(0.0);
  EXPECT_FALSE(simplify(e).is_constant());
}

TEST(Simplify, DomainErrorsKeptSymbolic) {
  EXPECT_FALSE(simplify(log(Expr(-1.0))).is_constant());
  EXPECT_FALSE(simplify(sqrt(Expr(-4.0))).is_constant());
}

TEST(Simplify, Idempotent) {
  const Expr e = diff(var("q") * var("q") * (var("d") + var("x")) /
                          (Expr(2.0) * var("e") * var("A")),
                      "x");
  const Expr s1 = simplify(e);
  const Expr s2 = simplify(s1);
  EXPECT_TRUE(s1.equals(s2));
}

TEST(Simplify, PreservesValue) {
  const Expr e =
      (var("x") + 0.0) * 1.0 - (-(-var("y"))) + pow(var("x"), Expr(1.0)) * Expr(2.0);
  const Env env{{"x", 1.5}, {"y", -0.5}};
  EXPECT_NEAR(eval(simplify(e), env), eval(e, env), 1e-14);
}

TEST(Simplify, ConstantsMoveLeftInProducts) {
  const Expr e = var("x") * Expr(3.0);
  EXPECT_EQ(to_text(simplify(e)), "3.0*x");
}

TEST(Simplify, ShrinksDerivativeOfTable2Energy) {
  const Expr w = var("q") * var("q") * (var("d") + var("x")) /
                 (Expr(2.0) * var("e") * var("A"));
  const Expr raw = diff(w, "x");
  const Expr slim = simplify(raw);
  EXPECT_LT(node_count(slim), node_count(raw));
}

}  // namespace
}  // namespace usys::sym
