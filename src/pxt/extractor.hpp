// PXT — the physical parameter extractor (paper, "Parameter extraction and
// model generation from finite element analysis").
//
// Static extraction: iterate boundary conditions (electrode voltage V and
// plate displacement x), solve the FE field for each, and extract the
// conjugate macro-quantities — capacitance C(x) and electrostatic force
// F(V, x) — by numerically integrating element/nodal quantities, exactly as
// the paper's PXT does against ANSYS. The samples feed a piecewise-linear
// behavioral macromodel (pwl.hpp) and generated HDL-AT model text.
#pragma once

#include <string>
#include <vector>

#include "fem/electrostatics.hpp"

namespace usys::pxt {

/// Geometry of the plate device under extraction (3D quantities follow
/// from the 2D solution times `depth`; width*depth = electrode area A).
struct ExtractionSetup {
  double width = 0.1;        ///< electrode width in the modeled plane [m]
  double depth = 1e-3;       ///< out-of-plane depth [m]
  double gap0 = 0.15e-3;     ///< rest gap d [m]
  double eps_r = 1.0;
  int nx = 8;                ///< mesh resolution across the width
  int ny = 16;               ///< mesh resolution across the gap
  double side_margin = 0.0;  ///< >0 adds fringe-field margins
};

/// One extracted sample.
struct ExtractionSample {
  double displacement = 0.0;  ///< x (gap = gap0 + x)
  double voltage = 0.0;       ///< V
  double capacitance = 0.0;   ///< C(x) [F] (3D, scaled by depth)
  double force_mst = 0.0;     ///< Maxwell-stress force on the moving plate [N]
  double force_vw = 0.0;      ///< virtual-work force [N]
  double energy = 0.0;        ///< field energy [J]
  int cg_iterations = 0;
};

/// Full static sweep result.
struct ExtractionTable {
  ExtractionSetup setup;
  std::vector<double> displacements;
  std::vector<double> voltages;
  /// samples[i*voltages.size() + j] = sample at (displacements[i], voltages[j]).
  std::vector<ExtractionSample> samples;

  const ExtractionSample& at(std::size_t xi, std::size_t vi) const {
    return samples[xi * voltages.size() + vi];
  }
};

/// Runs one FE solve at (x, V) and extracts all macro-quantities.
ExtractionSample extract_point(const ExtractionSetup& setup, double displacement,
                               double voltage, bool with_virtual_work = true);

/// Sweeps the (x, V) grid (the paper: "by repeating this procedure for
/// different voltages and displacements, a behavioral model is generated").
ExtractionTable extract_sweep(const ExtractionSetup& setup,
                              const std::vector<double>& displacements,
                              const std::vector<double>& voltages,
                              bool with_virtual_work = true);

/// Analytic references for validation (fringe-free parallel plate).
double analytic_capacitance(const ExtractionSetup& setup, double displacement);
double analytic_force(const ExtractionSetup& setup, double displacement, double voltage);

}  // namespace usys::pxt
