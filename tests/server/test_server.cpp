// SimServer integration tests, in-process: each test starts a real daemon on
// a unique /tmp socket and talks the v1 wire protocol through UnixConn (no
// usim subprocess — the server library IS the daemon, tools/usim.cpp only
// flags-parses into it).
//
// Covered: control ops (ping/stats/shutdown), cold-vs-warm bit-identity on
// the same hash, result-cache replay, the parameter-delta rebind path vs a
// cold run of the edited netlist, queue saturation -> structured busy
// rejection, client disconnect mid-stream cancelling via the job's
// CancelToken, per-job deadlines (exit 3), bad-request handling, engine
// cache eviction/cooling, and /stats self-consistency.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "common/json.hpp"
#include "spice/stats.hpp"
#include "spice/sweep.hpp"
#include "common/socket.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"

namespace usys::server {
namespace {

using Clock = std::chrono::steady_clock;

// RC job: analysis-light, parse-cheap — exercises the cache tiers fast.
const char* kRcNetlist = R"(* rc lowpass
V1 in 0 5
R1 in out 1k
C1 out 0 1u
.op
.tran 10u 2m
.end
)";

const char* kRcEdited = R"(* rc lowpass
V1 in 0 5
R1 in out 2k
C1 out 0 1u
.op
.tran 10u 2m
.end
)";

// Slow job (~0.8 s of transient on a 120-element ladder): long enough that a
// test can reliably act while it runs (cancel it, queue behind it) without
// being timing-flaky on a loaded machine.
std::string slow_netlist() {
  std::ostringstream os;
  os << "* transducer ladder\n";
  os << "V1 n0 0 PULSE(0 5 0 1e-5 1e-5 1e-3 2e-3)\n";
  const int n = 120;
  for (int i = 0; i < n; ++i) {
    os << "R" << i << " n" << i << " n" << (i + 1) << " 100\n";
    os << "C" << i << " n" << (i + 1) << " 0 1u\n";
  }
  os << ".tran 1e-6 4e-2\n.end\n";
  return os.str();
}

std::string unique_socket(const char* tag) {
  return "/tmp/usys_srv_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

ServerOptions small_server(const char* tag) {
  ServerOptions opts;
  opts.socket_path = unique_socket(tag);
  opts.workers = 2;
  opts.queue_capacity = 8;
  opts.engine_cache_capacity = 4;
  return opts;
}

/// One started server, stopped on scope exit.
struct TestServer {
  explicit TestServer(ServerOptions opts) : server(std::move(opts)) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
  }
  ~TestServer() { server.stop(); }
  SimServer server;
  bool started = false;
};

Request run_request(std::string netlist) {
  Request req;
  req.op = Request::Op::run;
  req.netlist = std::move(netlist);
  return req;
}

/// Submits `req` and reads every frame line until the peer closes.
std::vector<std::string> submit(const SimServer& server, const Request& req) {
  std::vector<std::string> frames;
  UnixConn conn = UnixConn::connect_to(server.socket_path());
  EXPECT_TRUE(conn.valid());
  if (!conn.valid()) return frames;
  EXPECT_TRUE(conn.write_all(build_request(req) + "\n"));
  std::string line;
  while (conn.read_line(line, 30000)) frames.push_back(line);
  return frames;
}

JsonValue parse_frame(const std::string& line) {
  auto v = json_parse(line);
  EXPECT_TRUE(v.has_value() && v->is_object()) << "unparsable frame: " << line;
  return v.value_or(JsonValue::make_object());
}

/// The first frame with the given name, if any.
std::optional<JsonValue> find_frame(const std::vector<std::string>& frames,
                                    const std::string& name) {
  for (const auto& line : frames) {
    JsonValue v = parse_frame(line);
    if (v.get_string("frame") == name) return v;
  }
  return std::nullopt;
}

/// Frames minus the tier-dependent envelope (status + done carry the cache
/// label and timings); what remains must be byte-identical across tiers.
std::vector<std::string> payload_frames(const std::vector<std::string>& frames) {
  std::vector<std::string> out;
  for (const auto& line : frames) {
    const std::string name = parse_frame(line).get_string("frame");
    if (name != "status" && name != "done") out.push_back(line);
  }
  return out;
}

/// Polls `pred` against fresh stats until true or ~5 s elapse.
bool wait_for_stats(const SimServer& server,
                    const std::function<bool(const StatsSnapshot&)>& pred) {
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (Clock::now() < deadline) {
    if (pred(server.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred(server.stats());
}

// --- control ops -------------------------------------------------------------

TEST(Server, PingStatsShutdownRoundTrip) {
  TestServer ts(small_server("ctl"));
  ASSERT_TRUE(ts.started);

  Request ping;
  ping.op = Request::Op::ping;
  auto frames = submit(ts.server, ping);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_frame(frames[0]).get_string("frame"), "pong");

  Request stats;
  stats.op = Request::Op::stats;
  frames = submit(ts.server, stats);
  ASSERT_EQ(frames.size(), 1u);
  JsonValue s = parse_frame(frames[0]);
  EXPECT_EQ(s.get_string("frame"), "stats");
  EXPECT_EQ(s.get_number("v"), 1.0);
  EXPECT_EQ(s.get_number("jobs_submitted"), 0.0);

  Request shutdown;
  shutdown.op = Request::Op::shutdown;
  frames = submit(ts.server, shutdown);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_frame(frames[0]).get_string("frame"), "bye");
  // wait() must return promptly once a shutdown request landed.
  ts.server.wait();
}

TEST(Server, MalformedRequestsGetStructuredErrors) {
  TestServer ts(small_server("bad"));
  ASSERT_TRUE(ts.started);

  const auto send_raw = [&](const std::string& line) {
    UnixConn conn = UnixConn::connect_to(ts.server.socket_path());
    EXPECT_TRUE(conn.valid());
    EXPECT_TRUE(conn.write_all(line + "\n"));
    std::string reply;
    EXPECT_TRUE(conn.read_line(reply, 30000));
    return parse_frame(reply);
  };

  JsonValue e1 = send_raw("this is not json");
  EXPECT_EQ(e1.get_string("frame"), "error");
  EXPECT_EQ(e1.get_number("code"), 2.0);

  JsonValue e2 = send_raw(R"({"v":99,"op":"ping"})");  // wrong version
  EXPECT_EQ(e2.get_string("frame"), "error");

  JsonValue e3 = send_raw(R"({"v":1,"op":"run"})");  // run without netlist
  EXPECT_EQ(e3.get_string("frame"), "error");

  EXPECT_TRUE(wait_for_stats(
      ts.server, [](const StatsSnapshot& s) { return s.bad_requests == 3; }));
}

// --- cache tiers -------------------------------------------------------------

TEST(Server, ColdThenWarmSameHashIsBitIdentical) {
  TestServer ts(small_server("warm"));
  ASSERT_TRUE(ts.started);

  Request req = run_request(kRcNetlist);
  req.no_cache = true;  // force the engine (not the result cache) both times

  const auto cold = submit(ts.server, req);
  auto cold_done = find_frame(cold, "done");
  ASSERT_TRUE(cold_done.has_value());
  EXPECT_TRUE(cold_done->get_bool("ok"));
  EXPECT_TRUE(cold_done->get_bool("parsed"));
  EXPECT_TRUE(cold_done->get_bool("bound"));
  EXPECT_EQ(cold_done->get_string("cached"), "cold");
  auto cold_status = find_frame(cold, "status");
  ASSERT_TRUE(cold_status.has_value());
  EXPECT_EQ(cold_status->get_string("hash"), api::content_hash(kRcNetlist));

  const auto warm = submit(ts.server, req);
  auto warm_done = find_frame(warm, "done");
  ASSERT_TRUE(warm_done.has_value());
  EXPECT_TRUE(warm_done->get_bool("ok"));
  // The warm repeat pays neither parse nor bind nor symbolic factorization.
  EXPECT_FALSE(warm_done->get_bool("parsed"));
  EXPECT_FALSE(warm_done->get_bool("bound"));
  EXPECT_FALSE(warm_done->get_bool("rebound"));
  EXPECT_EQ(warm_done->get_number("symbolic"), 0.0);
  EXPECT_EQ(warm_done->get_string("cached"), "warm");

  // Same hash, same engine: the data frames must match byte for byte.
  EXPECT_EQ(payload_frames(cold), payload_frames(warm));

  const StatsSnapshot s = ts.server.stats();
  EXPECT_EQ(s.parses, 1);
  EXPECT_EQ(s.exact_hits, 1);
  EXPECT_EQ(s.result_hits, 0);
}

TEST(Server, ResultCacheReplaysByteIdenticalFrames) {
  TestServer ts(small_server("replay"));
  ASSERT_TRUE(ts.started);

  const Request req = run_request(kRcNetlist);
  const auto first = submit(ts.server, req);
  const auto second = submit(ts.server, req);

  auto replay_status = find_frame(second, "status");
  ASSERT_TRUE(replay_status.has_value());
  EXPECT_EQ(replay_status->get_string("cached"), "result");
  auto replay_done = find_frame(second, "done");
  ASSERT_TRUE(replay_done.has_value());
  EXPECT_TRUE(replay_done->get_bool("ok"));
  EXPECT_EQ(replay_done->get_number("symbolic"), 0.0);

  EXPECT_EQ(payload_frames(first), payload_frames(second));
  EXPECT_EQ(ts.server.stats().result_hits, 1);

  // A request differing only in overrides must NOT replay.
  Request delta = req;
  delta.set_specs.push_back("R1.r=2k");
  auto delta_status = find_frame(submit(ts.server, delta), "status");
  ASSERT_TRUE(delta_status.has_value());
  EXPECT_NE(delta_status->get_string("cached"), "result");
}

TEST(Server, ParamDeltaTakesRebindPathAndMatchesColdEditedRun) {
  TestServer ts(small_server("delta"));
  ASSERT_TRUE(ts.started);

  Request prime = run_request(kRcNetlist);
  prime.no_cache = true;
  ASSERT_TRUE(find_frame(submit(ts.server, prime), "done").has_value());

  Request delta = prime;
  delta.set_specs.push_back("R1.r=2k");
  const auto frames = submit(ts.server, delta);
  auto status = find_frame(frames, "status");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->get_string("cached"), "delta");
  auto done = find_frame(frames, "done");
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->get_bool("ok"));
  EXPECT_FALSE(done->get_bool("parsed"));
  EXPECT_TRUE(done->get_bool("rebound"));
  EXPECT_EQ(ts.server.stats().delta_hits, 1);

  // The delta run must agree with a cold run of the edited netlist text.
  api::Session cold(kRcEdited);
  const api::JobResult want = cold.run();
  ASSERT_TRUE(want.ok);
  const api::SeriesView view = api::series_view(want.analyses[1], cold.circuit());

  // Reassemble the tran series (analysis index 1) from the rows frames.
  std::vector<std::vector<double>> got;
  for (const auto& line : frames) {
    JsonValue v = parse_frame(line);
    if (v.get_string("frame") != "rows" || v.get_number("analysis") != 1.0) continue;
    const JsonValue* rows = v.find("data");
    ASSERT_NE(rows, nullptr);
    for (const auto& row : rows->items()) {
      std::vector<double> r;
      for (const auto& cell : row.items()) r.push_back(cell.as_number());
      got.push_back(std::move(r));
    }
  }
  ASSERT_EQ(got.size(), view.rows);
  for (std::size_t k = 0; k < view.rows; ++k) {
    const std::vector<double> want_row = view.row_at(k);
    ASSERT_EQ(got[k].size(), want_row.size());
    for (std::size_t c = 0; c < want_row.size(); ++c)
      EXPECT_NEAR(got[k][c], want_row[c], 1e-12);
  }

  // Baselines restored: an override-free repeat still matches the original
  // netlist text (exact engine hit, not a drifted circuit).
  const auto again = submit(ts.server, prime);
  auto again_done = find_frame(again, "done");
  ASSERT_TRUE(again_done.has_value());
  EXPECT_EQ(again_done->get_string("cached"), "warm");
  EXPECT_FALSE(again_done->get_bool("rebound"));
}

TEST(Server, BadOverrideSpecIsExitTwo) {
  TestServer ts(small_server("badset"));
  ASSERT_TRUE(ts.started);

  Request req = run_request(kRcNetlist);
  req.set_specs.push_back("R1.r");  // malformed: no value
  const auto frames = submit(ts.server, req);
  auto error = find_frame(frames, "error");
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->get_number("code"), 2.0);
  auto done = find_frame(frames, "done");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->get_number("exit_code"), 2.0);

  Request unknown = run_request(kRcNetlist);
  unknown.set_specs.push_back("R99.r=5");  // well-formed, unknown device
  auto done2 = find_frame(submit(ts.server, unknown), "done");
  ASSERT_TRUE(done2.has_value());
  EXPECT_EQ(done2->get_number("exit_code"), 2.0);
}

TEST(Server, NetlistErrorIsExitTwo) {
  TestServer ts(small_server("synerr"));
  ASSERT_TRUE(ts.started);

  const auto frames = submit(ts.server, run_request("V1 in 0 not_a_number\n.end\n"));
  auto error = find_frame(frames, "error");
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->get_number("code"), 2.0);
  EXPECT_EQ(error->get_string("kind"), "netlist-error");
  auto done = find_frame(frames, "done");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->get_number("exit_code"), 2.0);
  // Failed constructions must not poison the engine cache.
  EXPECT_EQ(ts.server.stats().engines_cached, 0);
}

// --- backpressure, cancellation, deadlines -----------------------------------

TEST(Server, QueueSaturationGetsBusyFrame) {
  ServerOptions opts = small_server("busy");
  opts.workers = 1;
  opts.queue_capacity = 1;
  TestServer ts(std::move(opts));
  ASSERT_TRUE(ts.started);

  const std::string slow = slow_netlist();

  // Job A: occupies the single worker. Submit, then wait until it has been
  // popped off the queue (status frame seen = admitted; queue drains to 0).
  UnixConn a = UnixConn::connect_to(ts.server.socket_path());
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(a.write_all(build_request(run_request(slow)) + "\n"));
  std::string line;
  ASSERT_TRUE(a.read_line(line, 30000));
  EXPECT_EQ(parse_frame(line).get_string("frame"), "status");
  ASSERT_TRUE(wait_for_stats(ts.server,
                             [](const StatsSnapshot& s) { return s.queue_depth == 0; }));

  // Job B: fills the one queue slot.
  UnixConn b = UnixConn::connect_to(ts.server.socket_path());
  ASSERT_TRUE(b.valid());
  ASSERT_TRUE(b.write_all(build_request(run_request(slow)) + "\n"));
  ASSERT_TRUE(wait_for_stats(ts.server,
                             [](const StatsSnapshot& s) { return s.queue_depth == 1; }));

  // Job C: must be rejected with a structured busy frame, not a hang.
  const auto frames = submit(ts.server, run_request(slow));
  ASSERT_EQ(frames.size(), 1u);
  JsonValue busy = parse_frame(frames[0]);
  EXPECT_EQ(busy.get_string("frame"), "busy");
  EXPECT_EQ(busy.get_number("capacity"), 1.0);
  EXPECT_TRUE(wait_for_stats(
      ts.server, [](const StatsSnapshot& s) { return s.busy_rejected == 1; }));

  // Let A and B die by disconnect rather than draining megabytes of rows.
}

TEST(Server, ClientDisconnectMidStreamCancelsTheJob) {
  TestServer ts(small_server("hangup"));
  ASSERT_TRUE(ts.started);

  {
    UnixConn conn = UnixConn::connect_to(ts.server.socket_path());
    ASSERT_TRUE(conn.valid());
    ASSERT_TRUE(conn.write_all(build_request(run_request(slow_netlist())) + "\n"));
    std::string line;
    ASSERT_TRUE(conn.read_line(line, 30000));  // job admitted and running
    EXPECT_EQ(parse_frame(line).get_string("frame"), "status");
  }  // peer hangs up here, mid-stream

  // The monitor fires the job's CancelToken; the solver unwinds cooperatively.
  EXPECT_TRUE(wait_for_stats(
      ts.server, [](const StatsSnapshot& s) { return s.jobs_cancelled == 1; }));
  const StatsSnapshot s = ts.server.stats();
  EXPECT_EQ(s.jobs_completed, 1);
  EXPECT_EQ(s.jobs_ok, 0);
}

TEST(Server, DeadlineExpiryIsExitThree) {
  TestServer ts(small_server("deadline"));
  ASSERT_TRUE(ts.started);

  Request req = run_request(slow_netlist());
  req.timeout_ms = 50.0;  // the job needs ~800 ms
  const auto frames = submit(ts.server, req);
  auto done = find_frame(frames, "done");
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->get_bool("ok"));
  EXPECT_EQ(done->get_number("exit_code"), 3.0);
  EXPECT_TRUE(wait_for_stats(
      ts.server, [](const StatsSnapshot& s) { return s.jobs_cancelled == 1; }));
}

// --- eviction and stats ------------------------------------------------------

TEST(Server, EngineCacheEvictsLeastRecentlyUsed) {
  ServerOptions opts = small_server("evict");
  opts.engine_cache_capacity = 1;  // cool beyond 1 warm, erase beyond 2
  TestServer ts(std::move(opts));
  ASSERT_TRUE(ts.started);

  // Three distinct hashes through a capacity-1 cache.
  for (const char* r : {"1k", "2k", "3k"}) {
    std::string text = std::string("* v\nV1 a 0 5\nR1 a 0 ") + r + "\n.op\n.end\n";
    auto done = find_frame(submit(ts.server, run_request(std::move(text))), "done");
    ASSERT_TRUE(done.has_value());
    EXPECT_TRUE(done->get_bool("ok"));
  }

  const StatsSnapshot s = ts.server.stats();
  EXPECT_EQ(s.parses, 3);
  EXPECT_GE(s.cooled, 1);
  EXPECT_GE(s.evictions, 1);
  EXPECT_LE(s.engines_cached, 2);  // warm cap 1, cool tier caps total at 2x
  EXPECT_LE(s.engines_warm, 1);
}

TEST(Server, StatsAreSelfConsistent) {
  TestServer ts(small_server("stats"));
  ASSERT_TRUE(ts.started);

  Request rc = run_request(kRcNetlist);
  submit(ts.server, rc);  // cold
  submit(ts.server, rc);  // result replay
  Request nc = rc;
  nc.no_cache = true;
  submit(ts.server, nc);  // warm engine
  Request delta = nc;
  delta.set_specs.push_back("R1.r=2k");
  submit(ts.server, delta);  // rebind
  submit(ts.server, run_request("V1 a 0 1\nR1 a 0 50\n.op\n.end\n"));  // 2nd cold

  ASSERT_TRUE(wait_for_stats(
      ts.server, [](const StatsSnapshot& s) { return s.jobs_completed == 5; }));
  const StatsSnapshot s = ts.server.stats();
  EXPECT_EQ(s.jobs_submitted, 5);
  EXPECT_EQ(s.jobs_completed, s.jobs_ok + s.jobs_failed + s.jobs_cancelled);
  EXPECT_EQ(s.jobs_ok, 5);
  // Every run job is served by exactly one tier.
  EXPECT_EQ(s.parses + s.exact_hits + s.delta_hits + s.result_hits, s.jobs_completed);
  EXPECT_EQ(s.parses, 2);
  EXPECT_EQ(s.result_hits, 1);
  EXPECT_EQ(s.exact_hits, 1);
  EXPECT_EQ(s.delta_hits, 1);
  EXPECT_EQ(s.queue_depth, 0);
  EXPECT_EQ(s.engines_cached, 2);
  EXPECT_GT(s.jobs_per_s, 0.0);
  EXPECT_GT(s.latency_p50_ms, 0.0);
  EXPECT_GE(s.latency_p99_ms, s.latency_p50_ms);
  EXPECT_GT(s.uptime_s, 0.0);

  // The wire form of the same snapshot parses and agrees.
  Request stats_req;
  stats_req.op = Request::Op::stats;
  const auto frames = submit(ts.server, stats_req);
  ASSERT_EQ(frames.size(), 1u);
  JsonValue wire = parse_frame(frames[0]);
  EXPECT_EQ(wire.get_number("jobs_completed"), 5.0);
  EXPECT_EQ(wire.get_number("parses"), 2.0);
  EXPECT_EQ(wire.get_number("result_hits"), 1.0);
}

// --- sweep jobs --------------------------------------------------------------

// MC divider: two netlist-declared distributions and one yield bound. Every
// point is a cheap .op, so an 8-draw batch finishes in milliseconds.
const char* kMcNetlist = R"(* mc divider
V1 in 0 {vd}
R1 in out {r}
R2 out 0 1000
.param r dist=normal(1k,50)
.param vd dist=uniform(4.5,5.5)
.measure vout op:out min=2.2 max=2.8
.op
.end
)";

Request sweep_request(std::string netlist, int mc, const std::string& seed) {
  Request req;
  req.op = Request::Op::sweep;
  req.netlist = std::move(netlist);
  req.mc = mc;
  req.seed = seed;
  return req;
}

TEST(Server, SweepJobMatchesLocalEngineByteForByte) {
  TestServer ts(small_server("sweep"));
  ASSERT_TRUE(ts.started);

  const Request req = sweep_request(kMcNetlist, 8, "42");
  const auto frames = submit(ts.server, req);

  // Frame sequence is pinned: status -> sweep_stats -> done (no error).
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(parse_frame(frames[0]).get_string("frame"), "status");
  EXPECT_EQ(parse_frame(frames[1]).get_string("frame"), "sweep_stats");
  EXPECT_EQ(parse_frame(frames[2]).get_string("frame"), "done");
  auto done = find_frame(frames, "done");
  EXPECT_TRUE(done->get_bool("ok"));
  EXPECT_EQ(done->get_number("exit_code"), 0.0);

  // Payload shape: the distilled StatsRun fields clients key on.
  JsonValue stats = parse_frame(frames[1]);
  EXPECT_EQ(stats.get_number("points"), 8.0);
  EXPECT_EQ(stats.get_number("ran"), 8.0);
  EXPECT_EQ(stats.get_number("ok"), 8.0);
  const JsonValue* metrics = stats.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_array());
  ASSERT_FALSE(metrics->items().empty());
  const JsonValue& m0 = metrics->items()[0];
  for (const char* key : {"name", "n", "mean", "stddev", "min", "max", "q"})
    EXPECT_NE(m0.find(key), nullptr) << key;
  const JsonValue* measures = stats.find("measures");
  ASSERT_NE(measures, nullptr);
  ASSERT_EQ(measures->items().size(), 1u);
  EXPECT_EQ(measures->items()[0].items()[0].as_string(), "vout");

  // The frame must be byte-identical to what the library computes locally
  // from the same netlist + seed: the server adds transport, not statistics.
  const auto dists = spice::parse_param_dists(kMcNetlist);
  spice::StatsRun local;
  local.seed_text = "42";
  local.mc = 8;
  local.measures = spice::parse_measures(kMcNetlist);
  const auto grid = spice::mc_grid({}, dists, {42, 8});
  local.total_points = static_cast<long>(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    spice::SweepOutcome out =
        api::run_sweep_point(kMcNetlist, grid[i], "", {}, 0);
    local.add_outcome(static_cast<long>(i), grid[i], out);
  }
  EXPECT_EQ(frames[1], sweep_stats_frame(local));

  // Determinism on the wire: a repeat submission streams the same bytes.
  const auto again = submit(ts.server, req);
  ASSERT_EQ(again.size(), 3u);
  EXPECT_EQ(again[1], frames[1]);
}

TEST(Server, SweepSpecsComposeWithAndOverrideNetlistParams) {
  TestServer ts(small_server("sweepspec"));
  ASSERT_TRUE(ts.started);

  // A CLI axis multiplies the grid; a CLI dist overrides the netlist card.
  Request req = sweep_request(kMcNetlist, 2, "7");
  req.sweep_specs = {"load=500,1000,2000", "r=normal(1000,1)"};
  // {load} must appear in the text for the axis to matter; reuse R2's value.
  req.netlist = R"(* mc divider
V1 in 0 {vd}
R1 in out {r}
R2 out 0 {load}
.param r dist=normal(1k,50)
.param vd dist=uniform(4.5,5.5)
.measure vout op:out min=1.0 max=4.0
.op
.end
)";
  const auto frames = submit(ts.server, req);
  auto stats = find_frame(frames, "sweep_stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->get_number("points"), 6.0);  // 3 axis values x 2 draws
  EXPECT_EQ(stats->get_number("ran"), 6.0);
  auto done = find_frame(frames, "done");
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->get_bool("ok"));
}

TEST(Server, SweepBadSpecAndBadSeedAreExitTwo) {
  TestServer ts(small_server("sweepbad"));
  ASSERT_TRUE(ts.started);

  Request bad_spec = sweep_request(kMcNetlist, 2, "0");
  bad_spec.sweep_specs = {"r=cauchy(0,1)"};  // unknown distribution
  auto frames = submit(ts.server, bad_spec);
  auto error = find_frame(frames, "error");
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->get_number("code"), 2.0);
  auto done = find_frame(frames, "done");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->get_number("exit_code"), 2.0);

  Request bad_seed = sweep_request(kMcNetlist, 2, "not-a-number");
  auto done2 = find_frame(submit(ts.server, bad_seed), "done");
  ASSERT_TRUE(done2.has_value());
  EXPECT_EQ(done2->get_number("exit_code"), 2.0);
}

TEST(Server, SweepDeadlineExpiryIsExitThree) {
  TestServer ts(small_server("sweepddl"));
  ASSERT_TRUE(ts.started);

  // Four slow (~0.8 s) points against a 50 ms whole-job budget: the
  // monitor's cancel must stop the batch at the next solver poll.
  Request req = sweep_request(slow_netlist(), 4, "0");
  req.timeout_ms = 50.0;
  const auto frames = submit(ts.server, req);
  auto done = find_frame(frames, "done");
  ASSERT_TRUE(done.has_value());
  EXPECT_FALSE(done->get_bool("ok"));
  EXPECT_EQ(done->get_number("exit_code"), 3.0);
  EXPECT_TRUE(wait_for_stats(
      ts.server, [](const StatsSnapshot& s) { return s.jobs_cancelled == 1; }));
}

TEST(Server, SweepJobsShareBusyRejection) {
  ServerOptions opts = small_server("sweepbusy");
  opts.workers = 1;
  opts.queue_capacity = 1;
  TestServer ts(std::move(opts));
  ASSERT_TRUE(ts.started);

  const std::string slow = slow_netlist();

  // Occupy the worker, fill the queue (as in QueueSaturationGetsBusyFrame).
  UnixConn a = UnixConn::connect_to(ts.server.socket_path());
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(a.write_all(build_request(run_request(slow)) + "\n"));
  std::string line;
  ASSERT_TRUE(a.read_line(line, 30000));
  ASSERT_TRUE(wait_for_stats(ts.server,
                             [](const StatsSnapshot& s) { return s.queue_depth == 0; }));
  UnixConn b = UnixConn::connect_to(ts.server.socket_path());
  ASSERT_TRUE(b.valid());
  ASSERT_TRUE(b.write_all(build_request(run_request(slow)) + "\n"));
  ASSERT_TRUE(wait_for_stats(ts.server,
                             [](const StatsSnapshot& s) { return s.queue_depth == 1; }));

  // A sweep submission takes the same admission path -> structured busy.
  const auto frames = submit(ts.server, sweep_request(kMcNetlist, 4, "1"));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(parse_frame(frames[0]).get_string("frame"), "busy");
}

}  // namespace
}  // namespace usys::server
