// Nonlinear electrical devices — the "electronics" side of the paper's
// complete-microsystem simulations, and a workout for the Newton solver's
// gmin/source-stepping fallbacks.
#pragma once

#include "spice/circuit.hpp"

namespace usys::spice {

/// Self-heating resistor (electro-thermal two-port): Joule power flows into
/// a thermal node, and the resistance tracks the node temperature:
///
///   R(T)   = r0 * (1 + tc * (T - T_ref))
///   i      = (va - vb) / R(T)                (electrical pins a, b)
///   P      = (va - vb)^2 / R(T)              (heat delivered into pin t)
///
/// T is the thermal node's effort (temperature rise over ambient if the
/// thermal net is referenced to ground). This is the "electro-thermal"
/// coupling the paper cites among emerging microsystem EDA tools, expressed
/// in the same lumped formalism as the electromechanical transducers.
class JouleHeater : public Device {
 public:
  JouleHeater(std::string name, int a, int b, int thermal, double r0,
              double temp_coeff = 0.0, double t_ref = 0.0);

  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;

 private:
  int a_, b_, t_;
  double r0_, tc_, tref_;
};

/// Shockley junction diode: i = Is (exp(v/(n Vt)) - 1), anode a, cathode b.
/// Beyond `v_crit` the exponential is continued linearly (standard SPICE
/// "explosion" guard) so Newton iterates stay finite without per-device
/// junction limiting.
class Diode : public Device {
 public:
  Diode(std::string name, int a, int b, double i_sat = 1e-14, double emission = 1.0,
        double v_thermal = 0.02585);

  void bind(Binder& binder) override;
  void evaluate(EvalCtx& ctx) override;
  bool stamp_footprint(std::vector<int>& out) const override;

  double i_sat() const noexcept { return is_; }

 private:
  int a_, b_;
  double is_, n_, vt_;
  double v_crit_;
};

}  // namespace usys::spice
