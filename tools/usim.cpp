// usim — command-line netlist simulator (the "SPICE" of this repository).
//
//   usim <netlist.cir> [--csv=<path>] [--sweep <name>=<spec>]... [--mc=N]
//        [--seed=S] [--stats-out=<path>] [--threads=N] [--solve-threads=N]
//        [--refactor-threads=N] [--partition=auto|off]
//        [--set <DEV.PARAM=value>]... [--hdl-mode=<mode>] [--quiet] [--help]
//   usim --merge-stats=<out.jsonl> <shard.jsonl>...
//   usim --serve=<socket> [--serve-workers=N] [--serve-queue=N] [--serve-cache=N]
//   usim --client=<socket> <netlist.cir> [--set ...] [--timeout=<ms>] [--no-cache]
//   usim --client=<socket> --stats | --ping | --shutdown
//
// Reads a SPICE-style netlist (including the transducer X-cards and the
// ARRAY constructs registered by usys::core — see spice/netlist.hpp:
// `.array <count> <card>` repeats a device card with {i} placeholders, and
// the TRANSARRAY X card emits a whole transducer/mass/spring/damper array),
// runs every analysis card in order, and prints results:
//   .op    node efforts and branch count
//   .tran  decimated node-effort table (full resolution to --csv)
//   .ac    decimated |H| dB / phase table (full resolution to --csv)
// .tran and .ac share one writer path (AsciiTable preview + CSV series);
// when several analyses write CSV, later files get a .2/.3/... suffix. CSV
// files are written to a temp file and renamed into place, so concurrent
// usim processes targeting the same path never interleave partial output.
//
// All execution — single run, sweep points, and the server — dispatches
// through the usys::api facade (api/api.hpp): one Session per circuit, one
// JobRequest per submission. usim itself holds no analysis dispatch logic.
//
// Batch sweep mode: every --sweep flag adds one grid axis or one
// statistical parameter,
//   --sweep gap=1e-6:2e-6:8      8 evenly spaced values (lo:hi:n)
//   --sweep vdrive=2,5,10        an explicit value list
//   --sweep gap=normal(2u,50n)   a per-point Monte Carlo draw
//   --sweep temp=corner(-40,25,125)  a corner axis (cartesian with the rest)
// and every `{name}` occurrence in the netlist text is substituted per grid
// point (cartesian product of axes and corners, x --mc MC draws). Netlist
// `.param name dist=...` cards declare the same distributions inline and
// `.measure label metric min=.. max=..` cards declare yield bounds; draws
// come from a counter-based RNG keyed on (--seed, global point index,
// param-name hash), so results are bit-identical across thread counts,
// --shard splits, and checkpoint resume (docs/sweeps.md). Points run in
// parallel via SweepRunner — one api::Session per point, --threads workers
// (default: hardware concurrency) — and the result table has one row per
// point: global index, parameter values, summary metrics (op efforts /
// final transient values / last AC magnitudes per node; min/max/mean
// aggregates over 16 nodes). --stats-out distills the run into a mergeable
// stats JSONL (quantiles + yield); `usim --merge-stats` fuses per-shard
// files into the byte-identical single-run document. Example netlist with
// a sweepable gap: examples/transducer_array.cir.
//
// In single-run mode --threads=N instead selects N-thread parallel MNA
// assembly (NewtonOptions::assembly_threads), --solve-threads=N the
// level-scheduled parallel triangular solves (NewtonOptions::solve_threads),
// and --refactor-threads=N the level-scheduled parallel numeric
// refactorization (NewtonOptions::refactor_threads); all three share one
// pool. Each is bit-identical to serial for any thread count, so threading
// never changes results. --partition=auto additionally tries the
// island/Schur decomposition (NewtonOptions::partition — see
// docs/partitioning.md): weakly-coupled blocks factor in parallel and the
// solver falls back to the monolithic path automatically when the circuit
// has no usable island structure. Partitioned results match monolithic to
// solver tolerance (not bit-identically: pivoting differs). In sweep mode
// the grid parallelism wins and each point runs serially.
//
// --set DEV.PARAM=value overrides one device parameter against the BOUND
// circuit (no netlist edit, no re-parse): the facade's delta path. Values
// use SPICE number syntax; parameters are the lower-case netlist keys
// (R1.r, C3.c, XK2.k, V1.dc, ...). Repeatable. Also accepted by --client
// submissions, where a matching cached engine takes the rebind() fast path.
//
// --hdl-mode=ast|bytecode|codegen presets the execution mode for HDL
// behavioral cards (HDLTRANSV & co.): the paper's interpreted tree walk, the
// bytecode VM (default), or natively compiled models. Equivalent to a
// leading `.options hdl=<mode>`; the netlist's own `.options hdl=` and
// per-card `mode=` still override. codegen falls back to the VM (with a
// warning) when no host compiler is available.
//
// Fault tolerance: --timeout=<ms> puts a wall-clock budget on every
// analysis (per sweep point in sweep mode; whole job in server mode); a
// budgeted run that expires stops at the next solver poll and exits 3
// instead of hanging. In sweep mode --retries=N re-runs failed points with
// escalated Newton limits, --checkpoint=<path> journals each finished point
// (JSONL, flushed per point), --resume=<path> restores completed points
// bit-identically and re-runs only unfinished ones, and --shard=k/n runs
// the k-th of n deterministic grid partitions (shard checkpoint files merge
// by plain concatenation). See docs/robustness.md for the full contract.
//
// Static diagnostics: --lint runs the two-level analyzer (spice/lint.hpp:
// circuit structure; hdl/verify.hpp: compiled bytecode) INSTEAD of the
// analysis cards and prints every finding. --lint=error (the default) exits
// nonzero only on error-severity findings; --lint=warn makes warnings fail
// too. --lint-format=json emits the machine-readable form documented in
// docs/diagnostics.md. With --sweep axes, the first grid point's values are
// substituted so parameterized netlists ({gap}, {vdrive}) lint as written.
//
// Server mode: --serve=<socket> turns usim into a long-lived daemon that
// accepts jobs as line-delimited JSON over a local Unix socket and keeps a
// warm-engine cache keyed by netlist content hash, so repeat submissions
// skip parse/bind/symbolic factorization (docs/server.md has the wire
// protocol). --client=<socket> submits the given netlist to such a daemon
// and streams the response frames to stdout; --stats / --ping / --shutdown
// send the corresponding control requests instead.
//
// Exit codes: 0 = all analyses (all sweep points) succeeded;
//             1 = an analysis failed to converge / a sweep point failed /
//                 the server queue was full (busy);
//             2 = usage, file, netlist, or request errors;
//             3 = stopped by the --timeout deadline (or a cancel request).
// --lint: 0 = no findings at/above the threshold, 1 = findings, 2 = parse
// errors. (--help prints the same contract and exits 0.)
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/api.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/netlist_ext.hpp"
#include "hdl/interpreter.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "spice/stats.hpp"
#include "spice/sweep.hpp"

using namespace usys;

namespace {

// --- unified series output ---------------------------------------------------

/// One writer path for every series-producing analysis: prints a decimated
/// AsciiTable preview and (optionally) the FULL series as CSV. `csv_path`
/// is consumed: subsequent calls get a numbered suffix.
class SeriesSink {
 public:
  explicit SeriesSink(std::string csv_path) : csv_path_(std::move(csv_path)) {}

  /// `row_at(k)` produces row k on demand: the ~21-row preview only touches
  /// the rows it prints, and the full series is materialized solely when a
  /// CSV was requested (array-scale transients would otherwise duplicate
  /// the whole solution history just to print a table).
  void emit(const std::vector<std::string>& headers, std::size_t n_rows,
            const std::function<std::vector<double>(std::size_t)>& row_at,
            int preview_rows = 21) {
    AsciiTable t(headers);
    const std::size_t step =
        std::max<std::size_t>(1, n_rows / static_cast<std::size_t>(preview_rows));
    for (std::size_t k = 0; k < n_rows; k += step) {
      const std::vector<double> row = row_at(k);
      std::vector<std::string> cells;
      cells.reserve(row.size());
      cells.push_back(fmt_num(row[0], 5));
      for (std::size_t i = 1; i < row.size(); ++i) cells.push_back(fmt_sci(row[i], 4));
      t.add_row(std::move(cells));
    }
    t.print(std::cout);
    if (csv_path_.empty()) return;
    std::vector<std::vector<double>> rows;
    rows.reserve(n_rows);
    for (std::size_t k = 0; k < n_rows; ++k) rows.push_back(row_at(k));
    std::string path = csv_path_;
    if (++csv_uses_ > 1) {
      char suffix[16];
      std::snprintf(suffix, sizeof suffix, ".%d", csv_uses_);
      const auto dot = path.rfind('.');
      if (dot == std::string::npos || dot == 0) {
        path += suffix;
      } else {
        path = path.substr(0, dot) + suffix + path.substr(dot);
      }
    }
    // Write-then-rename: the file at `path` appears atomically, so jobs in
    // concurrent usim processes aiming at the same path can never interleave
    // partial CSV output (last writer wins whole-file).
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    if (write_csv(tmp, headers, rows) && std::rename(tmp.c_str(), path.c_str()) == 0) {
      std::cout << "full series -> " << path << "\n";
    } else {
      std::remove(tmp.c_str());
      std::cerr << "warning: failed to write CSV '" << path << "'\n";
    }
  }

 private:
  std::string csv_path_;
  int csv_uses_ = 0;
};

// --- single-run rendering ----------------------------------------------------
//
// Dispatch lives in api::Session::run; these only RENDER one finished
// analysis each (table preview + failure reporting).

const char* rescue_note(bool used_gmin, bool used_source) {
  if (used_gmin) return ", rescued by gmin stepping";
  if (used_source) return ", rescued by source stepping";
  return "";
}

void render_op(spice::Circuit& ckt, const spice::OpResult& op) {
  if (!op.converged) {
    std::cerr << "error: operating point failed [" << to_string(op.failure.kind)
              << "]: " << op.failure.to_string() << "\n";
    return;
  }
  std::cout << "\n=== .op ===\n";
  AsciiTable t({"node", "nature", "effort"});
  for (int i = 0; i < ckt.node_count(); ++i) {
    t.add_row({ckt.node_name(i), std::string(to_string(ckt.node_nature(i))),
               fmt_sci(op.at(i), 6)});
  }
  t.print(std::cout);
  std::cout << "(" << ckt.branch_count() << " branch unknowns, "
            << op.newton_iterations << " Newton iterations"
            << rescue_note(op.used_gmin_stepping, op.used_source_stepping) << ")\n";
}

void render_tran(const api::AnalysisOutcome& outcome, spice::Circuit& ckt,
                 double tstop, SeriesSink& sink) {
  const spice::TranResult& res = outcome.tran;
  if (!res.ok) {
    std::cerr << "error: transient failed [" << to_string(res.failure.kind)
              << "]: " << res.error << "\n";
    std::cerr << "  (" << res.time.size() << " points accepted, "
              << res.rejected_steps << " rejected steps, " << res.total_newton_iters
              << " Newton iters"
              << rescue_note(res.used_gmin_stepping, res.used_source_stepping)
              << ")\n";
    return;
  }
  std::cout << "\n=== .tran to " << tstop << " s (" << res.time.size()
            << " points, " << res.total_newton_iters << " Newton iters, "
            << res.rejected_steps << " rejected steps"
            << rescue_note(res.used_gmin_stepping, res.used_source_stepping)
            << ") ===\n";
  const api::SeriesView view = api::series_view(outcome, ckt);
  sink.emit(view.columns, view.rows, view.row_at);
}

void render_ac(const api::AnalysisOutcome& outcome, spice::Circuit& ckt,
               const spice::AcOptions& opts, SeriesSink& sink) {
  const spice::AcResult& res = outcome.ac;
  if (!res.ok) {
    std::cerr << "error: ac failed [" << to_string(res.failure.kind)
              << "]: " << res.error << "\n";
    return;
  }
  std::cout << "\n=== .ac " << opts.f_start << " .. " << opts.f_stop << " Hz ===\n";
  const api::SeriesView view = api::series_view(outcome, ckt);
  sink.emit(view.columns, view.rows, view.row_at);
}

int run_single(const std::string& text, const std::string& csv, int assembly_threads,
               int solve_threads, int refactor_threads, spice::PartitionMode partition,
               const std::string& hdl_mode, double timeout_ms,
               const std::vector<std::string>& set_specs) {
  api::Session session(text, hdl_mode);  // NetlistError -> main -> exit 2
  if (!session.title().empty()) std::cout << "*" << session.title() << "\n";
  spice::Circuit& ckt = session.circuit();
  SeriesSink sink(csv);

  api::JobRequest jr;
  for (const auto& spec : set_specs) {
    api::ParamOverride ov;
    if (!api::parse_override(spec, ov)) {
      std::cerr << "error: bad --set '" << spec << "' (want DEV.PARAM=value)\n";
      return 2;
    }
    jr.overrides.push_back(std::move(ov));
  }
  jr.options.assembly_threads = assembly_threads;
  jr.options.solve_threads = solve_threads;
  jr.options.refactor_threads = refactor_threads;
  jr.options.partition = partition;
  // The timeout budgets each ANALYSIS CARD, not the whole netlist: the
  // engine polls one deadline per run_op/run_tran/run_ac call.
  jr.options.timeout_ms = timeout_ms;

  if (session.cards().empty()) std::cout << "(no analysis cards; running .op)\n";

  const auto& cards = session.cards();
  const api::JobResult result = session.run(
      jr, [&](std::size_t index, const api::AnalysisOutcome& outcome) {
        switch (outcome.kind) {
          case spice::AnalysisCard::Kind::op:
            render_op(ckt, outcome.op);
            break;
          case spice::AnalysisCard::Kind::tran:
            render_tran(outcome, ckt, cards[index].tran.tstop, sink);
            break;
          case spice::AnalysisCard::Kind::ac:
            render_ac(outcome, ckt, cards[index].ac, sink);
            break;
        }
      });
  // Failures inside analyses were already rendered by the callback; what
  // remains is the pre-analysis path (a rejected --set override).
  if (!result.ok && result.analyses.empty())
    std::cerr << "error: " << result.error << "\n";
  return result.exit_code;
}

// --- lint mode ---------------------------------------------------------------

/// Parse errors — malformed cards (NetlistError) and circuit-construction
/// conflicts like duplicate device names (CircuitError) — are netlist
/// problems: exit 2. A CircuitError thrown later, during an ANALYSIS, is a
/// runtime failure and keeps exit code 1.
spice::Netlist parse_netlist(const std::string& text, const std::string& hdl_mode) {
  auto parser = core::make_full_parser();
  if (!hdl_mode.empty()) parser.set_option("hdl", hdl_mode);
  try {
    return parser.parse(text);
  } catch (const spice::CircuitError& e) {
    throw spice::NetlistError(0, e.what());
  }
}

/// `usim --lint`: parse, bind, run the full static analyzer, print findings,
/// and report via the exit code. Analyses never run. `warn_threshold` makes
/// warnings count as failures (--lint=warn).
int run_lint(const std::string& text, const std::string& hdl_mode,
             bool warn_threshold, bool json) {
  spice::Netlist net = parse_netlist(text, hdl_mode);
  spice::LintReport report;
  try {
    report = spice::lint_circuit(*net.circuit);
  } catch (const spice::CircuitError& e) {
    // Bind-time rejections (malformed HDL bytecode throws inside bind) are
    // themselves diagnostics; render one error finding instead of dying.
    spice::LintDiag d;
    d.severity = spice::LintSeverity::error;
    d.rule = "hdl-layout";
    d.message = e.what();
    report.diags.push_back(std::move(d));
  }
  if (json) {
    std::cout << report.to_json() << "\n";
  } else if (report.clean()) {
    std::cout << "lint: clean\n";
  } else {
    std::cout << report.to_text();
  }
  const bool fail =
      report.has_errors() || (warn_threshold && report.warning_count() > 0);
  return fail ? 1 : 0;
}

// --- sweep mode --------------------------------------------------------------
//
// Parsing ({name} substitution, dist specs) and per-point execution live in
// the library now — api::substitute_params / api::run_sweep_point and
// spice::parse_sweep_entry / mc_grid — shared verbatim with the server's
// sweep op. This file only renders the result table and the stats summary.

int run_sweep(const std::string& text, const std::vector<spice::SweepAxis>& axes,
              const std::vector<spice::ParamDist>& dists,
              const std::vector<spice::MeasureSpec>& measures,
              const spice::McOptions& mc, int threads, const std::string& csv,
              const std::string& stats_out, const std::string& hdl_mode,
              double timeout_ms, const spice::SweepOptions& sweep_opts) {
  const auto grid = spice::mc_grid(axes, dists, mc);
  if (grid.empty()) {
    std::cerr << "error: empty sweep grid\n";
    return 2;
  }
  const bool statistical = mc.samples > 1 || !dists.empty() || !measures.empty();
  spice::SweepRunner runner(threads);
  std::cout << "=== sweep: " << grid.size() << " points x " << axes.size()
            << " axes on " << runner.thread_count() << " threads";
  if (statistical)
    std::cout << " (mc=" << mc.samples << ", seed=" << mc.seed << ", "
              << dists.size() << " dists)";
  if (sweep_opts.shard_count > 1)
    std::cout << " (shard " << sweep_opts.shard_index << "/" << sweep_opts.shard_count
              << ")";
  std::cout << " ===\n";
  // Grid parallelism wins in sweep mode: each point assembles serially so
  // points x threads never oversubscribes the machine.
  const auto results = runner.run(
      grid,
      [&](const spice::SweepPoint& p, int attempt) {
        api::JobOptions opts;
        opts.assembly_threads = 1;
        opts.timeout_ms = timeout_ms;
        return api::run_sweep_point(text, p, hdl_mode, opts, attempt);
      },
      sweep_opts);

  // Tabulate: global index + parameter columns (every point carries the
  // same names: axes, corners, then drawn/constant params) + the union of
  // metric names across successful points, first-seen order. (Metric sets
  // can legitimately differ per point — e.g. sweeping an array size across
  // the per-node aggregation threshold — so a point missing a column shows
  // '-' there, not 'failed'.) The leading index column is what keeps
  // per-shard result files alignable: row i of any shard's CSV names the
  // same grid point as row i of the full run.
  std::vector<std::string> metric_names;
  for (const auto& result : results) {
    if (!result.ok) continue;
    for (const auto& [name, value] : result.metrics) {
      if (std::find(metric_names.begin(), metric_names.end(), name) ==
          metric_names.end())
        metric_names.push_back(name);
    }
  }
  std::vector<std::string> headers;
  headers.push_back("index");
  for (const auto& [name, value] : grid[0].params) headers.push_back(name);
  headers.insert(headers.end(), metric_names.begin(), metric_names.end());
  headers.push_back("status");

  spice::StatsRun stats;
  stats.seed_text = std::to_string(mc.seed);
  stats.total_points = static_cast<long>(grid.size());
  stats.mc = std::max(1, mc.samples);
  if (sweep_opts.shard_count > 1) {
    stats.shard_index = sweep_opts.shard_index;
    stats.shard_count = sweep_opts.shard_count;
  }
  stats.measures = measures;

  AsciiTable t(headers);
  std::vector<std::vector<double>> csv_rows;
  int failures = 0;
  int restored = 0;
  int skipped = 0;
  std::vector<std::pair<FailureKind, int>> failure_counts;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    stats.add_outcome(static_cast<long>(i), grid[i], results[i]);
    std::vector<std::string> cells;
    std::vector<double> row;
    cells.push_back(std::to_string(i));
    row.push_back(static_cast<double>(i));
    for (const auto& [name, value] : grid[i].params) {
      cells.push_back(fmt_num(value, 6));
      row.push_back(value);
    }
    if (results[i].ok) {
      if (results[i].restored) ++restored;
      for (const auto& name : metric_names) {
        const auto& metrics = results[i].metrics;
        const auto it =
            std::find_if(metrics.begin(), metrics.end(),
                         [&](const auto& m) { return m.first == name; });
        if (it == metrics.end()) {
          cells.push_back("-");
          row.push_back(std::numeric_limits<double>::quiet_NaN());
        } else {
          cells.push_back(fmt_sci(it->second, 4));
          row.push_back(it->second);
        }
      }
      cells.push_back(results[i].restored ? "ok (restored)" : "ok");
      csv_rows.push_back(std::move(row));
    } else if (results[i].skipped) {
      ++skipped;
      for (std::size_t m = 0; m < metric_names.size(); ++m) cells.push_back("-");
      cells.push_back("(other shard)");
    } else {
      ++failures;
      const FailureKind kind = results[i].failure.kind;
      const auto it = std::find_if(failure_counts.begin(), failure_counts.end(),
                                   [&](const auto& fc) { return fc.first == kind; });
      if (it == failure_counts.end()) {
        failure_counts.emplace_back(kind, 1);
      } else {
        ++it->second;
      }
      for (std::size_t m = 0; m < metric_names.size(); ++m) cells.push_back("-");
      std::string status(to_string(kind));
      if (results[i].attempts > 1)
        status += " (x" + std::to_string(results[i].attempts) + ")";
      cells.push_back(std::move(status));
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);
  if (restored > 0)
    std::cout << restored << " point(s) restored from " << sweep_opts.resume_path << "\n";
  if (failures > 0) {
    std::cout << failures << " of " << grid.size() - skipped << " points failed (";
    bool first = true;
    for (const auto& [kind, count] : failure_counts) {
      if (!first) std::cout << ", ";
      first = false;
      std::cout << count << " " << to_string(kind);
    }
    std::cout << ")\n";
  }
  if (!sweep_opts.checkpoint_path.empty())
    std::cout << "checkpoint -> " << sweep_opts.checkpoint_path << "\n";
  if (!csv.empty() && !csv_rows.empty()) {
    // Sharded runs aiming at one --csv path must not clobber each other:
    // each shard writes its own .shardKofN file (identity when unsharded).
    const std::string csv_path = spice::shard_suffixed_path(
        csv, sweep_opts.shard_index, sweep_opts.shard_count);
    std::vector<std::string> csv_headers(headers.begin(), headers.end() - 1);
    if (write_csv(csv_path, csv_headers, csv_rows))
      std::cout << "sweep table -> " << csv_path << "\n";
  }

  if (statistical) {
    const auto summaries = stats.metric_summaries();
    if (!summaries.empty()) {
      std::cout << "\n=== stats ===\n";
      AsciiTable st({"metric", "n", "mean", "stddev", "min", "max", "p05",
                     "p50", "p95"});
      for (const auto& s : summaries) {
        auto q_at = [&](double q) {
          for (const auto& qp : s.quantiles)
            if (qp.q == q) return fmt_sci(qp.value, 4);
          return std::string("-");
        };
        st.add_row({s.name, std::to_string(s.n), fmt_sci(s.mean, 4),
                    fmt_sci(s.stddev, 4), fmt_sci(s.min, 4), fmt_sci(s.max, 4),
                    q_at(0.05), q_at(0.5), q_at(0.95)});
      }
      st.print(std::cout);
    }
    const spice::YieldSummary y = stats.yield();
    std::cout << "yield: " << y.pass << "/" << y.n << " points pass ("
              << fmt_num(100.0 * y.yield, 4) << "%)\n";
    for (const auto& [label, fails] : y.measure_failures)
      if (fails > 0)
        std::cout << "  measure " << label << ": " << fails << " failure(s)\n";
  }
  if (!stats_out.empty()) {
    const std::string stats_path = spice::shard_suffixed_path(
        stats_out, sweep_opts.shard_index, sweep_opts.shard_count);
    std::string err;
    if (spice::write_stats(stats_path, stats, &err)) {
      std::cout << "stats -> " << stats_path << "\n";
    } else {
      std::cerr << "warning: failed to write stats '" << stats_path
                << "': " << err << "\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

// --- merge-stats mode --------------------------------------------------------

/// `usim --merge-stats=<out> a.jsonl b.jsonl ...`: fuse per-shard stats
/// files into the canonical single-run document. Summaries are recomputed
/// from the merged point set, so the output is byte-identical to the file a
/// single unsharded process with the same seed would have written.
int run_merge_stats(const std::vector<std::string>& inputs,
                    const std::string& out_path) {
  if (inputs.empty()) {
    std::cerr << "error: --merge-stats needs input stats files as positional "
                 "arguments\n";
    return 2;
  }
  spice::StatsRun merged;
  std::string err;
  if (!spice::merge_stats(inputs, merged, &err)) {
    std::cerr << "error: " << err << "\n";
    return 2;
  }
  if (!spice::write_stats(out_path, merged, &err)) {
    std::cerr << "error: " << err << "\n";
    return 2;
  }
  const spice::YieldSummary y = merged.yield();
  std::cout << "merged " << inputs.size() << " stats file(s): " << y.n << " of "
            << merged.total_points << " points, yield " << y.pass << "/" << y.n
            << " -> " << out_path << "\n";
  return 0;
}

void print_usage(std::ostream& os) {
  os << "usage: usim <netlist.cir> [--csv=<path>] "
        "[--sweep <name>=<spec>]... [--mc=N] [--seed=S] [--stats-out=<path>] "
        "[--set <DEV.PARAM=value>]... "
        "[--threads=N] [--solve-threads=N] [--refactor-threads=N] "
        "[--partition=auto|off] [--hdl-mode=<mode>] [--timeout=<ms>] "
        "[--retries=N] [--checkpoint=<path>] [--resume=<path>] [--shard=k/n] "
        "[--lint[=error|warn]] [--lint-format=text|json] [--quiet]\n"
        "       usim --merge-stats=<out.jsonl> <shard.jsonl>...\n"
        "       usim --serve=<socket> [--serve-workers=N] [--serve-queue=N] "
        "[--serve-cache=N]\n"
        "       usim --client=<socket> <netlist.cir> [--sweep ...] [--mc=N] "
        "[--seed=S] [--set ...] [--timeout=<ms>] [--no-cache]\n"
        "       usim --client=<socket> --stats | --ping | --shutdown\n"
        "\n"
        "  --lint[=error|warn] run the static diagnostics pass instead of the\n"
        "                      analysis cards: circuit structure (floating nodes,\n"
        "                      V-loops, structural singularity, parameter sanity,\n"
        "                      unconnected array cells) plus the HDL bytecode\n"
        "                      verifier. Exits 1 when findings reach the threshold\n"
        "                      (error = default; warn also fails on warnings), 0\n"
        "                      otherwise, 2 on parse errors. With --sweep axes the\n"
        "                      first grid point is substituted for {name} markers\n"
        "  --lint-format=F     lint output format: text (default) or json (schema\n"
        "                      in docs/diagnostics.md)\n"
        "  --csv=<path>        write full .tran/.ac series (or the sweep table) as\n"
        "                      CSV; written via temp file + rename, so concurrent\n"
        "                      jobs targeting one path never interleave output\n"
        "  --sweep name=spec   add one grid axis (lo:hi:n or v1,v2,...) or one\n"
        "                      statistical parameter (normal(mu,sigma),\n"
        "                      uniform(lo,hi), corner(v1,...), or a constant);\n"
        "                      every {name} in the netlist is substituted per\n"
        "                      point. Netlist '.param name dist=...' cards declare\n"
        "                      the same thing inline; a --sweep dist of the same\n"
        "                      name overrides the card (docs/sweeps.md)\n"
        "  --mc=N              sweep mode: N Monte Carlo draws per grid/corner\n"
        "                      combination (default 1); normal/uniform params are\n"
        "                      redrawn per point, the MC index runs fastest\n"
        "  --seed=S            sweep mode: RNG seed, decimal uint64 (default 0).\n"
        "                      Draws are keyed on (seed, global point index, param\n"
        "                      name hash), so any point is reproducible in\n"
        "                      isolation and streams are bit-identical across\n"
        "                      --threads counts, --shard splits, and --resume\n"
        "  --stats-out=<path>  sweep mode: write the stats JSONL document (header,\n"
        "                      per-point params/metrics/pass, quantile + yield\n"
        "                      summaries; schema in docs/sweeps.md). Sharded runs\n"
        "                      write <path>.shardKofN instead of clobbering\n"
        "  --merge-stats=<out> merge per-shard stats JSONL files (given as\n"
        "                      positional arguments) into <out>; the merged file\n"
        "                      is byte-identical to the same run unsharded. Exits\n"
        "                      0 on success, 2 on unreadable/incompatible inputs\n"
        "  --set DEV.PARAM=V   override one device parameter on the bound circuit\n"
        "                      (no re-parse; lower-case netlist keys: R1.r, C3.c,\n"
        "                      XK2.k, V1.dc, ...). Repeatable; SPICE number syntax.\n"
        "                      Works in single-run and --client modes\n"
        "  --threads=N         sweep mode: N parallel grid workers (0 = auto);\n"
        "                      single-run mode: N-thread parallel MNA assembly\n"
        "  --solve-threads=N   single-run mode: N-thread level-scheduled triangular\n"
        "                      solves (0 = auto); shares the assembly thread pool.\n"
        "                      Threading is bit-identical to serial — results never\n"
        "                      depend on N\n"
        "  --refactor-threads=N single-run mode: N-thread level-scheduled parallel\n"
        "                      numeric refactorization (0 = auto); shares the same\n"
        "                      pool and is likewise bit-identical to serial for any\n"
        "                      thread count\n"
        "  --partition=M       single-run mode: island/Schur decomposition of the\n"
        "                      MNA system (docs/partitioning.md). auto = partition\n"
        "                      when the circuit has usable island structure (e.g.\n"
        "                      transducer arrays), falling back to the monolithic\n"
        "                      solver otherwise; off = always monolithic (default).\n"
        "                      Partitioned results match monolithic to solver\n"
        "                      tolerance and are bit-identical across thread counts\n"
        "  --hdl-mode=<mode>   execution mode for HDL behavioral cards: ast (the\n"
        "                      paper's interpreted walk), bytecode (VM, default), or\n"
        "                      codegen (natively compiled; falls back to the VM when\n"
        "                      no host compiler is available). Same as a leading\n"
        "                      '.options hdl=<mode>'; per-card 'mode=' overrides\n"
        "  --timeout=<ms>      wall-clock budget per analysis card (per sweep point\n"
        "                      in sweep mode; whole job in --client mode); an\n"
        "                      expired run stops at the next solver poll and reports\n"
        "                      a timeout failure (exit 3 in single-run mode).\n"
        "                      0 = unlimited (default)\n"
        "  --retries=N         sweep mode: re-run a failed point up to N extra times\n"
        "                      with doubled Newton iteration limits per attempt\n"
        "  --checkpoint=<path> sweep mode: journal each finished point to a JSONL\n"
        "                      checkpoint (appended + flushed per point)\n"
        "  --resume=<path>     sweep mode: restore completed points from a previous\n"
        "                      checkpoint (bit-identical) and re-run only unfinished\n"
        "                      ones; keeps journaling to the same file unless\n"
        "                      --checkpoint overrides\n"
        "  --shard=k/n         sweep mode: run only the k-th of n deterministic grid\n"
        "                      partitions (k is 1-based; point i belongs to shard\n"
        "                      (i mod n)+1). Shard checkpoint files merge by plain\n"
        "                      concatenation\n"
        "  --serve=<socket>    run as a long-lived daemon on a Unix socket: jobs\n"
        "                      arrive as line-delimited JSON (docs/server.md) and\n"
        "                      repeat submissions of the same netlist hit a warm\n"
        "                      engine cache (skip parse/bind/symbolic). Blocks until\n"
        "                      a shutdown request\n"
        "  --serve-workers=N   server mode: worker threads executing jobs (default 2)\n"
        "  --serve-queue=N     server mode: queued-job capacity before submissions\n"
        "                      are rejected with a busy frame (default 16)\n"
        "  --serve-cache=N     server mode: warm engine cache capacity; up to 2xN\n"
        "                      sessions are kept in a cooled state (default 8)\n"
        "  --client=<socket>   submit the netlist to a --serve daemon and stream the\n"
        "                      response frames (line-delimited JSON) to stdout; the\n"
        "                      exit code comes from the done frame\n"
        "  --stats             with --client: request the server's /stats snapshot\n"
        "                      (jobs/s, cache hit rates, queue depth, p50/p99)\n"
        "  --ping              with --client: liveness probe (pong)\n"
        "  --shutdown          with --client: ask the daemon to exit cleanly\n"
        "  --no-cache          with --client: bypass the server's result cache\n"
        "                      (benchmarking; the engine cache still applies)\n"
        "  --quiet             suppress info/warn chatter (keeps errors)\n"
        "  --help              print this and exit 0\n"
        "\n"
        "exit codes: 0 = all analyses (all sweep points) succeeded\n"
        "            1 = an analysis failed to converge / a sweep point failed /\n"
        "                the server queue was full (busy)\n"
        "            2 = usage, file, netlist, or request errors\n"
        "            3 = stopped by the --timeout deadline (or a cancel request)\n";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream file(path);
  if (!file) return false;
  std::stringstream buf;
  buf << file.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(std::cout);
      return 0;
    }
  }
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  std::string netlist_path;
  std::vector<std::string> positionals;  // netlist, or --merge-stats inputs
  std::string csv;
  std::string hdl_mode;  // flag absent: the netlist (or bytecode) decides
  std::vector<spice::SweepAxis> axes;
  std::vector<spice::ParamDist> cli_dists;  // --sweep name=dist(...) entries
  std::vector<std::string> sweep_raw;       // verbatim --sweep specs (--client)
  int mc_samples = 1;
  bool mc_given = false;  // --mc alone (no axes/dists) still forces sweep mode
  std::uint64_t seed = 0;
  std::string stats_out;
  std::string merge_out;  // --merge-stats=<out>: merge mode
  std::vector<std::string> set_specs;
  int threads = -1;           // flag absent: sweep mode = auto, assembly = serial
  int solve_threads = -1;     // flag absent: serial triangular solves
  int refactor_threads = -1;  // flag absent: serial numeric refactorization
  spice::PartitionMode partition = spice::PartitionMode::off;
  bool partition_flag = false;  // for the sweep-mode "ignored" note
  double timeout_ms = 0.0;
  bool lint_mode = false;
  bool lint_warn = false;   // --lint=warn: warnings fail too
  bool lint_json = false;   // --lint-format=json
  spice::SweepOptions sweep_opts;
  server::ServerOptions serve_opts;
  std::string client_path;
  server::Request::Op client_op = server::Request::Op::run;
  bool client_control = false;  // --stats / --ping / --shutdown given
  bool no_cache = false;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') {
      positionals.emplace_back(argv[i]);
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      csv = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--sweep") == 0 && i + 1 < argc) {
      const std::string arg = argv[++i];
      std::string why;
      auto entry = spice::parse_sweep_entry(arg, &why);
      if (!entry) {
        std::cerr << "error: bad --sweep spec '" << arg << "': " << why << "\n";
        return 2;
      }
      const std::string& pname = entry->is_dist ? entry->dist.name : entry->axis.name;
      // {i}, {i+N}, {i-N} belong to the netlist's .array construct; a sweep
      // parameter with one of those names would rewrite array placeholders
      // before the parser ever sees them.
      const bool array_like =
          pname == "i" ||
          ((pname.rfind("i+", 0) == 0 || pname.rfind("i-", 0) == 0) &&
           pname.find_first_not_of("0123456789", 2) == std::string::npos);
      if (array_like) {
        std::cerr << "error: sweep parameter '" << pname
                  << "' collides with .array {i} placeholders; pick another name\n";
        return 2;
      }
      sweep_raw.push_back(arg);
      if (entry->is_dist) {
        cli_dists.push_back(std::move(entry->dist));
      } else {
        axes.push_back(std::move(entry->axis));
      }
    } else if (std::strncmp(argv[i], "--mc=", 5) == 0) {
      mc_samples = std::atoi(argv[i] + 5);
      if (mc_samples < 1 || mc_samples > 10'000'000) {
        std::cerr << "error: --mc must be in [1, 1e7]\n";
        return 2;
      }
      mc_given = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      const char* s = argv[i] + 7;
      char* end = nullptr;
      errno = 0;
      const unsigned long long v = std::strtoull(s, &end, 10);
      if (*s == '\0' || !std::isdigit(static_cast<unsigned char>(*s)) ||
          *end != '\0' || errno == ERANGE) {
        std::cerr << "error: --seed must be a decimal unsigned 64-bit integer\n";
        return 2;
      }
      seed = static_cast<std::uint64_t>(v);
    } else if (std::strncmp(argv[i], "--stats-out=", 12) == 0) {
      stats_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--merge-stats=", 14) == 0) {
      merge_out = argv[i] + 14;
      if (merge_out.empty()) {
        std::cerr << "error: --merge-stats needs an output path\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--set") == 0 && i + 1 < argc) {
      set_specs.emplace_back(argv[++i]);
    } else if (std::strncmp(argv[i], "--set=", 6) == 0) {
      set_specs.emplace_back(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      if (threads < 0) {
        std::cerr << "error: --threads must be >= 0 (0 = auto)\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--solve-threads=", 16) == 0) {
      solve_threads = std::atoi(argv[i] + 16);
      if (solve_threads < 0) {
        std::cerr << "error: --solve-threads must be >= 0 (0 = auto)\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--refactor-threads=", 19) == 0) {
      refactor_threads = std::atoi(argv[i] + 19);
      if (refactor_threads < 0) {
        std::cerr << "error: --refactor-threads must be >= 0 (0 = auto)\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--partition=", 12) == 0) {
      const std::string mode = argv[i] + 12;
      if (mode == "auto") {
        partition = spice::PartitionMode::auto_mode;
      } else if (mode != "off") {
        std::cerr << "error: bad --partition '" << mode << "' (auto|off)\n";
        return 2;
      }
      partition_flag = true;
    } else if (std::strncmp(argv[i], "--hdl-mode=", 11) == 0) {
      hdl_mode = argv[i] + 11;
      hdl::HdlExecMode parsed{};
      if (!hdl::parse_exec_mode(hdl_mode, parsed)) {
        std::cerr << "error: bad --hdl-mode '" << hdl_mode
                  << "' (ast|bytecode|codegen)\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--timeout=", 10) == 0) {
      timeout_ms = std::atof(argv[i] + 10);
      if (timeout_ms < 0.0) {
        std::cerr << "error: --timeout must be >= 0 milliseconds (0 = unlimited)\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      sweep_opts.retries = std::atoi(argv[i] + 10);
      if (sweep_opts.retries < 0) {
        std::cerr << "error: --retries must be >= 0\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--checkpoint=", 13) == 0) {
      sweep_opts.checkpoint_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--resume=", 9) == 0) {
      sweep_opts.resume_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--shard=", 8) == 0) {
      const std::string spec = argv[i] + 8;
      const auto slash = spec.find('/');
      const int k = slash == std::string::npos ? 0 : std::atoi(spec.substr(0, slash).c_str());
      const int n = slash == std::string::npos ? 0 : std::atoi(spec.substr(slash + 1).c_str());
      if (slash == std::string::npos || n < 1 || k < 1 || k > n) {
        std::cerr << "error: bad --shard '" << spec << "' (want k/n with 1 <= k <= n)\n";
        return 2;
      }
      sweep_opts.shard_index = k;
      sweep_opts.shard_count = n;
    } else if (std::strncmp(argv[i], "--lint-format=", 14) == 0) {
      const std::string fmt = argv[i] + 14;
      if (fmt == "json") {
        lint_json = true;
      } else if (fmt != "text") {
        std::cerr << "error: bad --lint-format '" << fmt << "' (text|json)\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint_mode = true;
    } else if (std::strncmp(argv[i], "--lint=", 7) == 0) {
      const std::string level = argv[i] + 7;
      if (level == "warn") {
        lint_warn = true;
      } else if (level != "error") {
        std::cerr << "error: bad --lint level '" << level << "' (error|warn)\n";
        return 2;
      }
      lint_mode = true;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve_opts.socket_path = argv[i] + 8;
      if (serve_opts.socket_path.empty()) {
        std::cerr << "error: --serve needs a socket path\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--serve-workers=", 16) == 0) {
      serve_opts.workers = std::atoi(argv[i] + 16);
      if (serve_opts.workers < 1) {
        std::cerr << "error: --serve-workers must be >= 1\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--serve-queue=", 14) == 0) {
      serve_opts.queue_capacity = std::atoi(argv[i] + 14);
      if (serve_opts.queue_capacity < 1) {
        std::cerr << "error: --serve-queue must be >= 1\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--serve-cache=", 14) == 0) {
      serve_opts.engine_cache_capacity = std::atoi(argv[i] + 14);
      if (serve_opts.engine_cache_capacity < 1) {
        std::cerr << "error: --serve-cache must be >= 1\n";
        return 2;
      }
    } else if (std::strncmp(argv[i], "--client=", 9) == 0) {
      client_path = argv[i] + 9;
      if (client_path.empty()) {
        std::cerr << "error: --client needs a socket path\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      client_op = server::Request::Op::stats;
      client_control = true;
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      client_op = server::Request::Op::ping;
      client_control = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      client_op = server::Request::Op::shutdown;
      client_control = true;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      no_cache = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      // Long-documented flag: suppress info/warn chatter (keeps errors).
      set_log_level(LogLevel::error);
    } else {
      std::cerr << "error: unknown flag '" << argv[i] << "'\n";
      return 2;
    }
  }

  // --- merge-stats mode ------------------------------------------------------
  // Positional arguments are the per-shard input files, not a netlist.
  if (!merge_out.empty()) {
    if (!serve_opts.socket_path.empty() || !client_path.empty()) {
      std::cerr << "error: --merge-stats is a local mode (no --serve/--client)\n";
      return 2;
    }
    return run_merge_stats(positionals, merge_out);
  }
  if (positionals.size() > 1) {
    std::cerr << "error: more than one netlist ('" << positionals[0] << "', '"
              << positionals[1] << "')\n";
    return 2;
  }
  if (!positionals.empty()) netlist_path = positionals[0];

  // --- server mode -----------------------------------------------------------
  if (!serve_opts.socket_path.empty()) {
    if (!client_path.empty()) {
      std::cerr << "error: --serve and --client are mutually exclusive\n";
      return 2;
    }
    return server::serve_blocking(serve_opts);
  }

  // --- client mode -----------------------------------------------------------
  if (!client_path.empty()) {
    server::Request req;
    req.op = client_op;
    if (!client_control) {
      if (netlist_path.empty()) {
        std::cerr << "error: --client needs a netlist (or --stats/--ping/--shutdown)\n";
        return 2;
      }
      if (!read_file(netlist_path, req.netlist)) {
        std::cerr << "error: cannot open '" << netlist_path << "'\n";
        return 2;
      }
      req.hdl_mode = hdl_mode;
      req.set_specs = set_specs;
      req.timeout_ms = timeout_ms;
      req.threads = threads < 0 ? 1 : threads;
      req.partition = partition == spice::PartitionMode::auto_mode;
      req.no_cache = no_cache;
      // Any sweep/MC ingredient — a --sweep spec, --mc, or a netlist that
      // declares .param distributions — upgrades the submission to the
      // server's sweep op. Specs travel verbatim; the server re-parses them
      // with the same spice::parse_sweep_entry grammar.
      bool wants_sweep = !sweep_raw.empty() || mc_given;
      if (!wants_sweep) {
        try {
          wants_sweep = !spice::parse_param_dists(req.netlist).empty();
        } catch (const spice::NetlistError&) {
          // Malformed .param cards: let the server produce the error frame.
        }
      }
      if (wants_sweep) {
        req.op = server::Request::Op::sweep;
        req.sweep_specs = sweep_raw;
        req.mc = mc_samples;
        req.seed = std::to_string(seed);
      }
    }
    return server::run_client(client_path, req, std::cout, std::cerr);
  }
  if (client_control || no_cache) {
    std::cerr << "error: --stats/--ping/--shutdown/--no-cache need --client=<socket>\n";
    return 2;
  }

  // --- local modes -----------------------------------------------------------
  if (netlist_path.empty()) {
    print_usage(std::cerr);
    return 2;
  }
  std::string text;
  if (!read_file(netlist_path, text)) {
    std::cerr << "error: cannot open '" << netlist_path << "'\n";
    return 2;
  }

  try {
    // Statistical pre-passes over the RAW netlist text: .param declares
    // per-point distributions, .measure declares yield bounds. A --sweep
    // dist of the same name overrides the netlist card (CLI wins).
    std::vector<spice::ParamDist> dists = spice::parse_param_dists(text);
    const std::vector<spice::MeasureSpec> measures = spice::parse_measures(text);
    for (const auto& d : cli_dists) {
      const auto it = std::find_if(dists.begin(), dists.end(),
                                   [&](const auto& x) { return x.name == d.name; });
      if (it == dists.end()) {
        dists.push_back(d);
      } else {
        *it = d;
      }
    }
    for (const auto& axis : axes) {
      for (const auto& d : dists) {
        if (axis.name == d.name) {
          std::cerr << "error: '" << axis.name
                    << "' is both a sweep axis and a parameter distribution\n";
          return 2;
        }
      }
    }
    const bool sweep_mode = !axes.empty() || !dists.empty() || mc_given;
    if (lint_mode) {
      std::string ltext = text;
      if (sweep_mode) {
        // Parameterized netlists lint at the first grid point.
        const auto grid = spice::mc_grid(axes, dists, {seed, 1});
        if (!grid.empty()) ltext = api::substitute_params(ltext, grid[0]);
      }
      return run_lint(ltext, hdl_mode, lint_warn, lint_json);
    }
    if (sweep_mode) {
      if ((solve_threads >= 0 && solve_threads != 1) ||
          (refactor_threads >= 0 && refactor_threads != 1) ||
          (partition_flag && partition != spice::PartitionMode::off))
        std::cerr << "note: --solve-threads/--refactor-threads/--partition are "
                     "ignored in sweep mode (grid parallelism wins; each point "
                     "solves serially and monolithically)\n";
      if (!set_specs.empty())
        std::cerr << "note: --set applies to single-run and --client modes only "
                     "(use a --sweep axis with one value instead)\n";
      // --resume keeps journaling to the same file, so an interrupted resume
      // can itself be resumed; an explicit --checkpoint overrides.
      if (!sweep_opts.resume_path.empty() && sweep_opts.checkpoint_path.empty())
        sweep_opts.checkpoint_path = sweep_opts.resume_path;
      return run_sweep(text, axes, dists, measures, {seed, mc_samples},
                       threads < 0 ? 0 : threads, csv, stats_out, hdl_mode,
                       timeout_ms, sweep_opts);
    }
    if (sweep_opts.retries > 0 || !sweep_opts.checkpoint_path.empty() ||
        !sweep_opts.resume_path.empty() || sweep_opts.shard_count > 0 ||
        !stats_out.empty())
      std::cerr << "note: --retries/--checkpoint/--resume/--shard/--stats-out "
                   "apply to sweep mode only (no --sweep axis given)\n";
    return run_single(text, csv, threads < 0 ? 1 : threads,
                      solve_threads < 0 ? 1 : solve_threads,
                      refactor_threads < 0 ? 1 : refactor_threads, partition,
                      hdl_mode, timeout_ms, set_specs);
  } catch (const spice::NetlistError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
