// Regenerates Table 2: input impedances and internal energies of the four
// electromechanical transducers, as closed forms and as sweeps over the
// displacement, cross-checked against the behavioral devices' stamps.
#include <iostream>

#include "common/table.hpp"
#include "core/reference.hpp"

using namespace usys;
using namespace usys::core;

int main() {
  std::cout << "=== Table 2: impedances and energies of electromechanical transducers ===\n\n";

  TransducerGeometry ga;  // (a) transverse electrostatic (Table 4 values)
  ga.area = 1e-4;
  ga.gap = 0.15e-3;
  TransducerGeometry gb;  // (b) parallel electrostatic
  gb.depth = 1e-3;
  gb.length = 2e-3;
  gb.gap = 1e-5;
  TransducerGeometry gc;  // (c) electromagnetic
  gc.area = 1e-4;
  gc.gap = 1e-3;
  gc.turns = 100;
  TransducerGeometry gd;  // (d) electrodynamic
  gd.turns = 100;
  gd.radius = 5e-3;
  gd.b_field = 0.5;

  AsciiTable t({"transducer", "input impedance", "internal energy (V=10 or i=0.1, x=0)"});
  t.add_row({"a) transverse electrostatic",
             "C(x) = e0*er*A/(d+x) = " + fmt_sci(capacitance_transverse(ga, 0.0)) + " F",
             fmt_sci(energy_transverse(ga, 10.0, 0.0)) + " J"});
  t.add_row({"b) parallel electrostatic",
             "C(x) = e0*er*h*(l-x)/d = " + fmt_sci(capacitance_parallel(gb, 0.0)) + " F",
             fmt_sci(energy_parallel(gb, 10.0, 0.0)) + " J"});
  t.add_row({"c) electromagnetic",
             "L(x) = mu0*A*N^2/(2(d+x)) = " + fmt_sci(inductance_electromagnetic(gc, 0.0)) +
                 " H",
             fmt_sci(energy_electromagnetic(gc, 0.1, 0.0)) + " J"});
  t.add_row({"d) electrodynamic",
             "L = mu0*N^2*r/2 = " + fmt_sci(inductance_electrodynamic(gd)) + " H",
             fmt_sci(energy_electrodynamic(gd, 0.1)) + " J"});
  t.print(std::cout);

  std::cout << "\n--- displacement sweeps (impedance versus x) ---\n";
  AsciiTable s({"x [m]", "C_a(x) [F]", "C_b(x) [F]", "L_c(x) [H]"});
  for (int i = -4; i <= 4; ++i) {
    const double xa = static_cast<double>(i) * 1.5e-5;  // within +-10% of gap
    const double xb = static_cast<double>(i) * 2e-4;    // within overlap
    const double xc = static_cast<double>(i) * 1e-4;
    s.add_row({fmt_num(xa), fmt_sci(capacitance_transverse(ga, xa)),
               fmt_sci(capacitance_parallel(gb, xb)),
               fmt_sci(inductance_electromagnetic(gc, xc))});
  }
  s.print(std::cout);

  std::cout << "\n--- invariants ---\n";
  const double c0 = capacitance_transverse(ga, 0.0);
  std::cout << "C_a(x)*(d+x) constant: "
            << fmt_num(capacitance_transverse(ga, 3e-5) * (ga.gap + 3e-5) /
                       (c0 * ga.gap))
            << " (expect 1)\n";
  std::cout << "W_a = C V^2/2 identity: "
            << fmt_num(energy_transverse(ga, 10.0, 0.0) / (0.5 * c0 * 100.0))
            << " (expect 1)\n";
  return 0;
}
