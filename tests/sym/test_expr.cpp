#include <gtest/gtest.h>

#include <cmath>

#include "sym/expr.hpp"

namespace usys::sym {
namespace {

TEST(Expr, ConstantsAndVariables) {
  const Expr c = 2.5;
  EXPECT_TRUE(c.is_constant());
  EXPECT_DOUBLE_EQ(c.value(), 2.5);
  const Expr x = var("x");
  EXPECT_TRUE(x.is_variable());
  EXPECT_EQ(x.name(), "x");
  EXPECT_THROW((void)c.name(), std::logic_error);
  EXPECT_THROW((void)x.value(), std::logic_error);
}

TEST(Expr, DefaultIsZero) {
  const Expr e;
  EXPECT_TRUE(e.is_constant(0.0));
}

TEST(Expr, EvalArithmetic) {
  const Expr e = (var("x") + 2.0) * (var("y") - 1.0) / 2.0;
  EXPECT_DOUBLE_EQ(eval(e, {{"x", 4.0}, {"y", 3.0}}), 6.0);
}

TEST(Expr, EvalFunctions) {
  EXPECT_NEAR(eval(sin(var("x")), {{"x", 0.5}}), std::sin(0.5), 1e-15);
  EXPECT_NEAR(eval(exp(log(var("x"))), {{"x", 2.7}}), 2.7, 1e-12);
  EXPECT_NEAR(eval(sqrt(var("x")), {{"x", 9.0}}), 3.0, 1e-15);
  EXPECT_NEAR(eval(pow(var("x"), Expr(3.0)), {{"x", 2.0}}), 8.0, 1e-15);
  EXPECT_NEAR(eval(abs(var("x")), {{"x", -4.0}}), 4.0, 1e-15);
}

TEST(Expr, EvalUnboundVariableThrows) {
  EXPECT_THROW(eval(var("nope"), {}), std::out_of_range);
}

TEST(Expr, EvalDomainErrors) {
  EXPECT_THROW(eval(log(var("x")), {{"x", -1.0}}), std::domain_error);
  EXPECT_THROW(eval(sqrt(var("x")), {{"x", -1.0}}), std::domain_error);
}

TEST(Expr, StructuralEquality) {
  const Expr a = var("x") + 1.0;
  const Expr b = var("x") + 1.0;
  const Expr c = var("x") + 2.0;
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(a.equals(var("x")));
}

TEST(Expr, VariablesCollected) {
  const Expr e = var("b") * var("a") + sin(var("c")) - var("a");
  const auto vars = e.variables();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], "a");  // sorted
  EXPECT_EQ(vars[1], "b");
  EXPECT_EQ(vars[2], "c");
}

TEST(Expr, DependsOn) {
  const Expr e = var("x") / (var("y") + 1.0);
  EXPECT_TRUE(e.depends_on("x"));
  EXPECT_TRUE(e.depends_on("y"));
  EXPECT_FALSE(e.depends_on("z"));
}

TEST(Expr, Substitute) {
  const Expr e = var("x") * var("x") + var("y");
  const Expr s = substitute(e, "x", var("y") + 1.0);
  EXPECT_DOUBLE_EQ(eval(s, {{"y", 2.0}}), 11.0);
  // Untouched expressions share structure.
  const Expr t = substitute(e, "z", Expr(5.0));
  EXPECT_EQ(t.raw(), e.raw());
}

TEST(Expr, NodeCount) {
  EXPECT_EQ(node_count(Expr(1.0)), 1u);
  EXPECT_EQ(node_count(var("x") + 1.0), 3u);
}

TEST(Expr, PrinterPrecedence) {
  EXPECT_EQ(to_text(var("a") * (var("b") + var("c"))), "a*(b + c)");
  EXPECT_EQ(to_text(var("a") + var("b") * var("c")), "a + b*c");
  EXPECT_EQ(to_text(-(var("a") + var("b"))), "-(a + b)");
  EXPECT_EQ(to_text(var("a") / (var("b") / var("c"))), "a/(b/c)");
  EXPECT_EQ(to_text(var("a") - (var("b") - var("c"))), "a - (b - c)");
}

TEST(Expr, HdlPowerExpansion) {
  // HDL rendering expands small integer powers into products (Listing 1
  // writes (d+x)*(d+x)).
  const Expr e = pow(var("d") + var("x"), Expr(2.0));
  EXPECT_EQ(to_hdl(e), "(d + x)*(d + x)");
  EXPECT_EQ(to_text(e), "(d + x)^2.0");
}

}  // namespace
}  // namespace usys::sym
