// Integration-method properties: convergence orders (BE ~ O(h),
// trapezoidal/gear2 ~ O(h^2)), L-stability (ringing suppression), and
// cross-method agreement — the ablation dimension DESIGN.md calls out.
#include <gtest/gtest.h>

#include <cmath>

#include "api/api.hpp"
#include "common/constants.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

namespace usys::spice {
namespace {

/// RC lowpass driven by a sine; returns |v_out(t_end) - exact| for a fixed
/// step size. The exact steady-state is reached by starting from the DC
/// point of the in-phase component... simpler: compare against a very fine
/// trapezoidal reference run.
double rc_error(IntegMethod method, double dt, double* ref_cache) {
  auto build = [](Circuit& ckt, int* out) {
    const int in = ckt.add_node("in", Nature::electrical);
    *out = ckt.add_node("out", Nature::electrical);
    ckt.add<VSource>("V1", in, Circuit::kGround,
                     std::make_unique<SinWave>(0.0, 1.0, 50.0));
    ckt.add<Resistor>("R1", in, *out, 1e3);
    ckt.add<Capacitor>("C1", *out, Circuit::kGround, 1e-6);
  };
  const double t_end = 20e-3;

  if (*ref_cache == 0.0) {
    Circuit ref;
    int out = -1;
    build(ref, &out);
    TranOptions fine;
    fine.tstop = t_end;
    fine.adaptive = false;
    fine.dt_init = 1e-6;
    fine.method = IntegMethod::trapezoidal;
    const TranResult r = api::transient(ref, fine);
    EXPECT_TRUE(r.ok);
    *ref_cache = r.at(r.time.size() - 1, out);
  }

  Circuit ckt;
  int out = -1;
  build(ckt, &out);
  TranOptions opts;
  opts.tstop = t_end;
  opts.adaptive = false;
  opts.dt_init = dt;
  opts.method = method;
  const TranResult res = api::transient(ckt, opts);
  EXPECT_TRUE(res.ok) << res.error;
  return std::abs(res.at(res.time.size() - 1, out) - *ref_cache);
}

TEST(Integrators, BackwardEulerIsFirstOrder) {
  double ref = 0.0;
  const double e1 = rc_error(IntegMethod::backward_euler, 1e-4, &ref);
  const double e2 = rc_error(IntegMethod::backward_euler, 5e-5, &ref);
  // Halving h should roughly halve the error (order 1).
  EXPECT_NEAR(e1 / e2, 2.0, 0.5);
}

TEST(Integrators, TrapezoidalIsSecondOrder) {
  double ref = 0.0;
  const double e1 = rc_error(IntegMethod::trapezoidal, 2e-4, &ref);
  const double e2 = rc_error(IntegMethod::trapezoidal, 1e-4, &ref);
  EXPECT_NEAR(e1 / e2, 4.0, 1.2);
}

TEST(Integrators, Gear2IsSecondOrder) {
  double ref = 0.0;
  const double e1 = rc_error(IntegMethod::gear2, 2e-4, &ref);
  const double e2 = rc_error(IntegMethod::gear2, 1e-4, &ref);
  EXPECT_NEAR(e1 / e2, 4.0, 1.2);
}

TEST(Integrators, Gear2BeatsBackwardEulerAtSameStep) {
  double ref = 0.0;
  const double e_be = rc_error(IntegMethod::backward_euler, 1e-4, &ref);
  const double e_g2 = rc_error(IntegMethod::gear2, 1e-4, &ref);
  EXPECT_LT(e_g2, e_be);
}

TEST(Integrators, Gear2DampsTrapezoidalRinging) {
  // A stiff algebraic-ish branch (ideal source onto a capacitor through a
  // tiny resistor) makes trapezoidal branch currents ring sample-to-sample;
  // gear2 (L-stable) must not. Measured as the high-frequency content of
  // the source branch current late in the run.
  auto ringing = [](IntegMethod method) {
    Circuit ckt;
    const int in = ckt.add_node("in", Nature::electrical);
    const int out = ckt.add_node("out", Nature::electrical);
    auto& vs = ckt.add<VSource>("V1", in, Circuit::kGround,
                                std::make_unique<PulseWave>(0.0, 1.0, 0.0, 1e-7, 1e-7, 1.0));
    ckt.add<Resistor>("R1", in, out, 1e-3);
    ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-6);
    TranOptions opts;
    opts.tstop = 1e-3;
    opts.adaptive = false;
    opts.dt_init = 1e-5;
    opts.method = method;
    const TranResult res = api::transient(ckt, opts);
    EXPECT_TRUE(res.ok);
    double hf = 0.0;
    const auto i = res.signal(vs.branch());
    for (std::size_t k = i.size() / 2 + 1; k < i.size(); ++k)
      hf = std::max(hf, std::abs(i[k] - i[k - 1]));
    return hf;
  };
  const double ring_trap = ringing(IntegMethod::trapezoidal);
  const double ring_gear = ringing(IntegMethod::gear2);
  EXPECT_LT(ring_gear, ring_trap * 0.5 + 1e-15);
}

TEST(Integrators, AllMethodsAgreeOnSmoothProblem) {
  auto final_value = [](IntegMethod method) {
    Circuit ckt;
    const int in = ckt.add_node("in", Nature::electrical);
    const int out = ckt.add_node("out", Nature::electrical);
    ckt.add<VSource>("V1", in, Circuit::kGround,
                     std::make_unique<PulseWave>(0.0, 2.0, 1e-4, 1e-4, 1e-4, 1.0));
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, Circuit::kGround, 1e-6);
    TranOptions opts;
    opts.tstop = 8e-3;
    opts.method = method;
    const TranResult res = api::transient(ckt, opts);
    EXPECT_TRUE(res.ok);
    return res.sample(8e-3, out);
  };
  const double be = final_value(IntegMethod::backward_euler);
  const double tr = final_value(IntegMethod::trapezoidal);
  const double g2 = final_value(IntegMethod::gear2);
  EXPECT_NEAR(be, tr, 2e-3);
  EXPECT_NEAR(g2, tr, 2e-3);
}

class MethodSweep : public ::testing::TestWithParam<IntegMethod> {};

TEST_P(MethodSweep, LcTankFrequencyPreserved) {
  // All methods must produce the right oscillation frequency on an LC tank
  // (phase errors differ, frequency must not drift at these step sizes).
  Circuit ckt;
  const int n = ckt.add_node("n", Nature::electrical);
  ckt.add<ISource>("I1", Circuit::kGround, n,
                   std::make_unique<PulseWave>(0.0, 1e-3, 0.0, 1e-9, 1e-9, 1e-5));
  ckt.add<Capacitor>("C1", n, Circuit::kGround, 1e-6);
  ckt.add<Inductor>("L1", n, Circuit::kGround, 1e-3);
  TranOptions opts;
  opts.tstop = 0.6e-3;
  opts.adaptive = false;
  opts.dt_init = 1e-6;
  opts.method = GetParam();
  const TranResult res = api::transient(ckt, opts);
  ASSERT_TRUE(res.ok);
  const auto v = res.signal(n);
  int crossings = 0;
  double first = -1.0;
  double last = -1.0;
  for (std::size_t k = 1; k < v.size(); ++k) {
    if (v[k - 1] < 0.0 && v[k] >= 0.0) {
      ++crossings;
      if (first < 0) first = res.time[k];
      last = res.time[k];
    }
  }
  ASSERT_GE(crossings, 2);
  const double period = (last - first) / (crossings - 1);
  const double expected = 2.0 * kPi * std::sqrt(1e-3 * 1e-6);
  EXPECT_NEAR(period, expected, 0.03 * expected);
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodSweep,
                         ::testing::Values(IntegMethod::backward_euler,
                                           IntegMethod::trapezoidal,
                                           IntegMethod::gear2));

}  // namespace
}  // namespace usys::spice
