// Reproduces the paper's performance observation: "The drawback is a strong
// penalty in simulation performance (a factor of 10 was observed)" for
// interpreted HDL-A models versus native SPICE primitives.
//
// We time the identical Fig. 3 transient several ways:
//   native        — hand-coded C++ TransverseElectrostatic device
//   hdl           — bytecode-compiled HDL-AT Listing 1 (BytecodeVm, default)
//   hdl_codegen   — natively compiled Listing 1 (HdlExecMode::codegen: the
//                   bytecode program translated to C++, built once per model
//                   shape, dlopen'd; skipped when no host compiler exists)
//   hdl_energy    — bytecode-compiled energy-complete model (one more term)
//   hdl_ast       — the AST tree walker (HdlExecMode::ast): the paper's
//                   interpreted path, kept as the reference for the 10x figure
// and report the wall-clock ratios. google-benchmark binary; also prints a
// summary table at exit. CI records the JSON trajectory so the interpreted
// penalty is tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "api/api.hpp"
#include "core/resonator_system.hpp"
#include "hdl/interpreter.hpp"
#include "hdl/stdlib.hpp"
#include "spice/analysis.hpp"
#include "spice/devices_controlled.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_source.hpp"

using namespace usys;

namespace {

constexpr double kTstop = 0.06;  // one 10 V pulse window

spice::TranOptions tran_opts() {
  spice::TranOptions o;
  o.tstop = kTstop;
  o.dt_max = 1e-4;
  return o;
}

double run_native() {
  core::ResonatorParams p;
  auto sys = core::build_resonator_system(
      p, core::TransducerModelKind::behavioral,
      spice::make_fig5_pulse_train({10.0}, kTstop, 2e-3, 2e-3));
  const auto res = api::transient(*sys.circuit, tran_opts());
  return res.ok ? res.x.back()[static_cast<std::size_t>(sys.node_disp)] : 0.0;
}

double run_hdl(const std::string& src, const std::string& entity,
               hdl::HdlExecMode mode = hdl::HdlExecMode::bytecode) {
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  const int disp = ckt.add_node("disp", Nature::mechanical_translation);
  ckt.add<spice::VSource>("V1", drive, spice::Circuit::kGround,
                          spice::make_fig5_pulse_train({10.0}, kTstop, 2e-3, 2e-3));
  ckt.add_device(hdl::instantiate(
      "XT", src, entity, {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
      {drive, spice::Circuit::kGround, vel, spice::Circuit::kGround}, mode));
  ckt.add<spice::Mass>("M1", vel, 1e-4);
  ckt.add<spice::Spring>("K1", vel, spice::Circuit::kGround, 200.0);
  ckt.add<spice::Damper>("D1", vel, spice::Circuit::kGround, 40e-3);
  ckt.add<spice::StateIntegrator>("XD", disp, vel);
  const auto res = api::transient(ckt, tran_opts());
  return res.ok ? res.x.back()[static_cast<std::size_t>(disp)] : 0.0;
}

void BM_NativeDevice(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_native());
}
BENCHMARK(BM_NativeDevice)->Unit(benchmark::kMillisecond);

void BM_HdlListing1(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_hdl(hdl::stdlib::paper_listing1(), "eletran"));
}
BENCHMARK(BM_HdlListing1)->Unit(benchmark::kMillisecond);

/// Pre-flight for the codegen series: bind one Listing 1 instance and check
/// the native object actually loaded. Checking compiler_available() alone is
/// not enough — a compile failure would silently fall back to the VM and the
/// benchmark would record VM time under the codegen label, poisoning the CI
/// trajectory.
bool codegen_ready() {
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add_device(hdl::instantiate(
      "XT", hdl::stdlib::paper_listing1(), "eletran",
      {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
      {drive, spice::Circuit::kGround, vel, spice::Circuit::kGround},
      hdl::HdlExecMode::codegen));
  ckt.bind_all();
  auto* dev = dynamic_cast<hdl::HdlDevice*>(ckt.find_device("XT"));
  return dev != nullptr && dev->codegen_active();
}

void BM_HdlListing1Codegen(benchmark::State& state) {
  if (!codegen_ready()) {
    state.SkipWithError("HDL codegen unavailable (no compiler or compile failed)");
    return;
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(run_hdl(hdl::stdlib::paper_listing1(), "eletran",
                                     hdl::HdlExecMode::codegen));
}
BENCHMARK(BM_HdlListing1Codegen)->Unit(benchmark::kMillisecond);

void BM_HdlEnergyComplete(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(run_hdl(hdl::stdlib::transverse_energy(), "etransverse"));
}
BENCHMARK(BM_HdlEnergyComplete)->Unit(benchmark::kMillisecond);

void BM_HdlListing1Ast(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_hdl(hdl::stdlib::paper_listing1(), "eletran", hdl::HdlExecMode::ast));
}
BENCHMARK(BM_HdlListing1Ast)->Unit(benchmark::kMillisecond);

/// Also time one *model evaluation* in isolation (stamp-level overhead).
void BM_StampNative(benchmark::State& state) {
  core::ResonatorParams p;
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  auto& dev = ckt.add<core::TransverseElectrostatic>(
      "XT", drive, spice::Circuit::kGround, vel, spice::Circuit::kGround, p.geom);
  ckt.bind_all();
  const std::size_t n = static_cast<std::size_t>(ckt.unknown_count());
  DVector x(n, 0.0), f(n), q(n);
  DMatrix jf(n, n), jq(n, n);
  x[0] = 10.0;
  spice::EvalCtx ctx;
  ctx.mode = spice::AnalysisMode::transient;
  ctx.integ_c1 = 1e-5;
  ctx.x = &x;
  ctx.f = &f;
  ctx.q = &q;
  ctx.jf = &jf;
  ctx.jq = &jq;
  for (auto _ : state) {
    dev.evaluate(ctx);
    benchmark::DoNotOptimize(f.data());
  }
}
BENCHMARK(BM_StampNative);

void stamp_hdl_mode(benchmark::State& state, hdl::HdlExecMode mode) {
  spice::Circuit ckt;
  const int drive = ckt.add_node("drive", Nature::electrical);
  const int vel = ckt.add_node("vel", Nature::mechanical_translation);
  ckt.add_device(hdl::instantiate(
      "XT", hdl::stdlib::paper_listing1(), "eletran",
      {{"A", 1e-4}, {"d", 0.15e-3}, {"er", 1.0}},
      {drive, spice::Circuit::kGround, vel, spice::Circuit::kGround}, mode));
  ckt.bind_all();
  auto* dev = ckt.find_device("XT");
  const std::size_t n = static_cast<std::size_t>(ckt.unknown_count());
  DVector x(n, 0.0), f(n), q(n);
  DMatrix jf(n, n), jq(n, n);
  x[0] = 10.0;
  spice::EvalCtx ctx;
  ctx.mode = spice::AnalysisMode::transient;
  ctx.integ_c1 = 1e-5;
  ctx.x = &x;
  ctx.f = &f;
  ctx.q = &q;
  ctx.jf = &jf;
  ctx.jq = &jq;
  for (auto _ : state) {
    dev->evaluate(ctx);
    benchmark::DoNotOptimize(f.data());
  }
}

void BM_StampHdl(benchmark::State& state) {
  stamp_hdl_mode(state, hdl::HdlExecMode::bytecode);
}
BENCHMARK(BM_StampHdl);

void BM_StampHdlCodegen(benchmark::State& state) {
  if (!codegen_ready()) {
    state.SkipWithError("HDL codegen unavailable (no compiler or compile failed)");
    return;
  }
  stamp_hdl_mode(state, hdl::HdlExecMode::codegen);
}
BENCHMARK(BM_StampHdlCodegen);

void BM_StampHdlAst(benchmark::State& state) {
  stamp_hdl_mode(state, hdl::HdlExecMode::ast);
}
BENCHMARK(BM_StampHdlAst);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::puts("\nInterpretation: the paper reports ~10x penalty for interpreted");
  std::puts("HDL-A vs native primitives; BM_HdlListing1Ast / BM_NativeDevice");
  std::puts("reproduces it. The bytecode VM (BM_HdlListing1, the default");
  std::puts("executor) closes most of the gap and native codegen");
  std::puts("(BM_HdlListing1Codegen, --hdl-mode=codegen) the rest; compare");
  std::puts("BM_StampHdl[Codegen|Ast] / BM_StampNative for the per-evaluation");
  std::puts("overhead. docs/hdl.md tabulates the measured per-stamp costs.");
  return 0;
}
