// Physical "natures" — the generalized-variable system of Table 1.
//
// The paper builds on bond-graph theory: each terminal port carries an
// *effort* (across/intensive) variable and a *flow* (through) variable whose
// product is a power. The flow is the time derivative of the *state*
// (extensive) variable. Under the force-current (FI) analogy used by the
// paper, the mechanical across variable is velocity and the through variable
// is force, so electrical and mechanical networks share the same nodal
// topology and one nodal solver handles both.
//
// Table 1 of the paper enumerates four domains; we add `thermal` as a fifth
// (mentioned in the paper's energy-sum methodology step 2) for completeness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

namespace usys {

/// Physical domain of a node / terminal-port pin.
enum class Nature : std::uint8_t {
  electrical,             ///< effort = voltage [V], flow = current [A]
  mechanical_translation, ///< effort = velocity [m/s], flow = force [N] (FI analogy)
  mechanical_rotation,    ///< effort = angular velocity [rad/s], flow = torque [N*m]
  hydraulic,              ///< effort = pressure [Pa], flow = volume flow rate [m^3/s]
  thermal,                ///< effort = temperature [K], flow = heat flow [W] (pseudo bond graph)
};

/// Static metadata describing one row of Table 1.
struct NatureInfo {
  Nature nature;
  std::string_view name;          ///< canonical lowercase name used by the HDL and netlists
  std::string_view effort_name;   ///< e.g. "voltage"
  std::string_view effort_unit;   ///< e.g. "V"
  std::string_view flow_name;     ///< e.g. "current"
  std::string_view flow_unit;     ///< e.g. "A"
  std::string_view state_name;    ///< e.g. "charge" — integral of the flow
  std::string_view state_unit;    ///< e.g. "C"
  std::string_view momentum_name; ///< generalized momentum, integral of the effort
  std::string_view momentum_unit;
};

/// Metadata for a nature (never fails; all enum values covered).
const NatureInfo& nature_info(Nature n) noexcept;

/// Parses a nature name as used in HDL-AT pin declarations and netlists.
/// Accepts the paper's HDL-A spellings ("electrical", "mechanical1") as well
/// as our canonical names. Returns true on success.
bool parse_nature(std::string_view text, Nature& out) noexcept;

/// Canonical name, e.g. "electrical".
std::string_view to_string(Nature n) noexcept;

/// Number of natures (for iteration in tests/benches).
inline constexpr int kNatureCount = 5;

/// All natures in declaration order.
Nature nature_at(int index) noexcept;

std::ostream& operator<<(std::ostream& os, Nature n);

}  // namespace usys
