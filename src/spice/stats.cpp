#include "spice/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hpp"

namespace usys::spice {

bool measure_passes(
    const std::vector<std::pair<std::string, double>>& metrics,
    const MeasureSpec& m) noexcept {
  for (const auto& [name, value] : metrics) {
    if (name != m.metric) continue;
    if (!std::isfinite(value)) return false;
    if (m.has_lo && value < m.lo) return false;
    if (m.has_hi && value > m.hi) return false;
    return true;
  }
  return false;  // metric absent: the bound cannot be verified -> fail
}

bool measures_pass(
    const std::vector<std::pair<std::string, double>>& metrics,
    const std::vector<MeasureSpec>& measures) noexcept {
  for (const auto& m : measures)
    if (!measure_passes(metrics, m)) return false;
  return true;
}

void MetricStats::add(double v) {
  if (std::isfinite(v)) samples_.push_back(v);
}

double MetricStats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double MetricStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double v : samples_) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double MetricStats::min_value() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double MetricStats::max_value() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double MetricStats::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

MetricSummary MetricStats::summary(const std::string& name,
                                   const std::vector<double>& qs) const {
  MetricSummary s;
  s.name = name;
  s.n = count();
  s.mean = mean();
  s.stddev = stddev();
  s.min = min_value();
  s.max = max_value();
  // One sort shared by all quantile levels.
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  for (double q : qs) {
    QuantilePoint p;
    p.q = q;
    if (sorted.empty()) {
      p.value = 0.0;
    } else if (q <= 0.0) {
      p.value = sorted.front();
    } else if (q >= 1.0) {
      p.value = sorted.back();
    } else {
      const double h = q * static_cast<double>(sorted.size() - 1);
      const auto lo = static_cast<std::size_t>(h);
      p.value = (lo + 1 >= sorted.size())
                    ? sorted.back()
                    : sorted[lo] + (h - static_cast<double>(lo)) *
                                       (sorted[lo + 1] - sorted[lo]);
    }
    s.quantiles.push_back(p);
  }
  return s;
}

const std::vector<double>& default_quantiles() {
  static const std::vector<double> qs = {0.01, 0.05, 0.25, 0.5,
                                         0.75, 0.95, 0.99};
  return qs;
}

void StatsRun::add_outcome(long index, const SweepPoint& point,
                           const SweepOutcome& outcome) {
  if (outcome.skipped) return;
  StatsPoint sp;
  sp.index = index;
  sp.point = point;
  sp.ok = outcome.ok;
  sp.metrics = outcome.metrics;
  sp.pass = outcome.ok && measures_pass(outcome.metrics, measures);
  points[index] = std::move(sp);
}

std::vector<MetricSummary> StatsRun::metric_summaries() const {
  // Accumulate in ascending point index; metric columns in first-seen
  // order. Both orders are deterministic, so the summaries are too.
  std::vector<std::string> names;
  std::vector<MetricStats> stats;
  for (const auto& [index, sp] : points) {
    if (!sp.ok) continue;
    for (const auto& [name, value] : sp.metrics) {
      std::size_t slot = 0;
      for (; slot < names.size(); ++slot)
        if (names[slot] == name) break;
      if (slot == names.size()) {
        names.push_back(name);
        stats.emplace_back();
      }
      stats[slot].add(value);
    }
  }
  std::vector<MetricSummary> out;
  out.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i)
    out.push_back(stats[i].summary(names[i], default_quantiles()));
  return out;
}

YieldSummary StatsRun::yield() const {
  YieldSummary y;
  std::vector<long> fails(measures.size(), 0);
  for (const auto& [index, sp] : points) {
    ++y.n;
    if (!sp.ok) continue;
    ++y.ok;
    if (sp.pass) ++y.pass;
    for (std::size_t m = 0; m < measures.size(); ++m)
      if (!measure_passes(sp.metrics, measures[m])) ++fails[m];
  }
  y.yield = y.n > 0 ? static_cast<double>(y.pass) / static_cast<double>(y.n)
                    : 0.0;
  for (std::size_t m = 0; m < measures.size(); ++m)
    y.measure_failures.emplace_back(measures[m].label, fails[m]);
  return y;
}

namespace {

void append_params(std::string& out,
                   const std::vector<std::pair<std::string, double>>& kv) {
  out += '[';
  bool first = true;
  for (const auto& [name, value] : kv) {
    if (!first) out += ',';
    first = false;
    out += '[';
    json_append_escaped(out, name);
    out += ',';
    json_append_double(out, value);
    out += ']';
  }
  out += ']';
}

}  // namespace

std::string StatsRun::to_jsonl() const {
  std::string out;
  out.reserve(128 + points.size() * 96);

  // Header. The seed travels as a decimal string so the full uint64 range
  // survives the double-only JSON number model.
  out += "{\"v\":1,\"stats\":\"header\",\"seed\":";
  json_append_escaped(out, seed_text);
  out += ",\"points\":" + std::to_string(total_points);
  out += ",\"mc\":" + std::to_string(mc);
  out += ",\"shard\":";
  if (shard_count > 1)
    json_append_escaped(out, std::to_string(shard_index) + "/" +
                                 std::to_string(shard_count));
  else
    json_append_escaped(out, std::string("full"));
  out += ",\"measures\":[";
  for (std::size_t m = 0; m < measures.size(); ++m) {
    if (m) out += ',';
    out += '[';
    json_append_escaped(out, measures[m].label);
    out += ',';
    json_append_escaped(out, measures[m].metric);
    out += ',';
    if (measures[m].has_lo)
      json_append_double(out, measures[m].lo);
    else
      out += "null";
    out += ',';
    if (measures[m].has_hi)
      json_append_double(out, measures[m].hi);
    else
      out += "null";
    out += ']';
  }
  out += "]}\n";

  // Points, ascending global index (std::map order).
  for (const auto& [index, sp] : points) {
    out += "{\"stats\":\"point\",\"i\":" + std::to_string(index);
    out += sp.ok ? ",\"ok\":true" : ",\"ok\":false";
    out += sp.pass ? ",\"pass\":true" : ",\"pass\":false";
    out += ",\"params\":";
    append_params(out, sp.point.params);
    out += ",\"metrics\":";
    append_params(out, sp.metrics);
    out += "}\n";
  }

  // Derived summaries.
  for (const auto& s : metric_summaries()) {
    out += "{\"stats\":\"metric\",\"name\":";
    json_append_escaped(out, s.name);
    out += ",\"n\":" + std::to_string(s.n);
    out += ",\"mean\":";
    json_append_double(out, s.mean);
    out += ",\"stddev\":";
    json_append_double(out, s.stddev);
    out += ",\"min\":";
    json_append_double(out, s.min);
    out += ",\"max\":";
    json_append_double(out, s.max);
    out += ",\"q\":[";
    for (std::size_t i = 0; i < s.quantiles.size(); ++i) {
      if (i) out += ',';
      out += '[';
      json_append_double(out, s.quantiles[i].q);
      out += ',';
      json_append_double(out, s.quantiles[i].value);
      out += ']';
    }
    out += "]}\n";
  }

  const YieldSummary y = yield();
  out += "{\"stats\":\"yield\",\"n\":" + std::to_string(y.n);
  out += ",\"ok\":" + std::to_string(y.ok);
  out += ",\"pass\":" + std::to_string(y.pass);
  out += ",\"yield\":";
  json_append_double(out, y.yield);
  out += ",\"measures\":[";
  for (std::size_t m = 0; m < y.measure_failures.size(); ++m) {
    if (m) out += ',';
    out += '[';
    json_append_escaped(out, y.measure_failures[m].first);
    out += ',';
    out += std::to_string(y.measure_failures[m].second);
    out += ']';
  }
  out += "]}\n";
  return out;
}

bool write_stats(const std::string& path, const StatsRun& run,
                 std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error) *error = "cannot open '" + tmp + "' for writing";
      return false;
    }
    out << run.to_jsonl();
    if (!out) {
      if (error) *error = "write to '" + tmp + "' failed";
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "cannot rename '" + tmp + "' to '" + path + "'";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

namespace {

bool parse_kv_pairs(const JsonValue& v,
                    std::vector<std::pair<std::string, double>>& out) {
  if (!v.is_array()) return false;
  for (const auto& item : v.items()) {
    if (!item.is_array() || item.items().size() != 2 ||
        !item.items()[0].is_string())
      return false;
    out.emplace_back(item.items()[0].as_string(),
                     item.items()[1].as_number());
  }
  return true;
}

bool measures_equal(const std::vector<MeasureSpec>& a,
                    const std::vector<MeasureSpec>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].metric != b[i].metric ||
        a[i].has_lo != b[i].has_lo || a[i].has_hi != b[i].has_hi)
      return false;
    if (a[i].has_lo && a[i].lo != b[i].lo) return false;
    if (a[i].has_hi && a[i].hi != b[i].hi) return false;
  }
  return true;
}

}  // namespace

bool load_stats(const std::string& path, StatsRun& run, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open stats file '" + path + "'";
    return false;
  }
  run = StatsRun{};
  bool saw_header = false;
  std::string line;
  long lineno = 0;
  auto fail = [&](const std::string& why) {
    if (error)
      *error = path + ":" + std::to_string(lineno) + ": " + why;
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto doc = json_parse(line);
    if (!doc || !doc->is_object()) return fail("not a JSON object");
    const std::string kind = doc->get_string("stats");
    if (kind == "header") {
      saw_header = true;
      run.seed_text = doc->get_string("seed", "0");
      run.total_points = static_cast<long>(doc->get_number("points"));
      run.mc = static_cast<int>(doc->get_number("mc", 1));
      const std::string shard = doc->get_string("shard", "full");
      if (shard != "full") {
        const auto slash = shard.find('/');
        if (slash == std::string::npos) return fail("bad shard field");
        run.shard_index = std::atoi(shard.substr(0, slash).c_str());
        run.shard_count = std::atoi(shard.substr(slash + 1).c_str());
      }
      if (const JsonValue* ms = doc->find("measures")) {
        if (!ms->is_array()) return fail("bad measures field");
        for (const auto& item : ms->items()) {
          if (!item.is_array() || item.items().size() != 4 ||
              !item.items()[0].is_string() || !item.items()[1].is_string())
            return fail("bad measure entry");
          MeasureSpec spec;
          spec.label = item.items()[0].as_string();
          spec.metric = item.items()[1].as_string();
          if (item.items()[2].is_number()) {
            spec.has_lo = true;
            spec.lo = item.items()[2].as_number();
          }
          if (item.items()[3].is_number()) {
            spec.has_hi = true;
            spec.hi = item.items()[3].as_number();
          }
          run.measures.push_back(std::move(spec));
        }
      }
    } else if (kind == "point") {
      StatsPoint sp;
      sp.index = static_cast<long>(doc->get_number("i", -1));
      if (sp.index < 0) return fail("point without index");
      sp.ok = doc->get_bool("ok");
      sp.pass = doc->get_bool("pass");
      const JsonValue* params = doc->find("params");
      const JsonValue* metrics = doc->find("metrics");
      if (!params || !parse_kv_pairs(*params, sp.point.params))
        return fail("bad params field");
      if (!metrics || !parse_kv_pairs(*metrics, sp.metrics))
        return fail("bad metrics field");
      run.points[sp.index] = std::move(sp);
    }
    // metric / yield summary lines are derived state: ignored on load.
  }
  if (!saw_header) {
    if (error) *error = path + ": missing stats header line";
    return false;
  }
  return true;
}

bool merge_stats(const std::vector<std::string>& inputs, StatsRun& out,
                 std::string* error) {
  if (inputs.empty()) {
    if (error) *error = "no stats files to merge";
    return false;
  }
  out = StatsRun{};
  bool first = true;
  for (const auto& path : inputs) {
    StatsRun shard;
    if (!load_stats(path, shard, error)) return false;
    if (first) {
      out.seed_text = shard.seed_text;
      out.total_points = shard.total_points;
      out.mc = shard.mc;
      out.measures = shard.measures;
      first = false;
    } else if (shard.seed_text != out.seed_text ||
               shard.total_points != out.total_points ||
               shard.mc != out.mc ||
               !measures_equal(shard.measures, out.measures)) {
      if (error)
        *error = "'" + path +
                 "' is from a different run (seed/points/mc/measures "
                 "mismatch) — refusing to merge";
      return false;
    }
    for (auto& [index, sp] : shard.points) out.points[index] = std::move(sp);
  }
  // The merged document is the canonical unsharded form.
  out.shard_index = 0;
  out.shard_count = 0;
  return true;
}

}  // namespace usys::spice
